/**
 * @file
 * Ablation: MGX MAC-granularity sweep (64 B .. 4 KB) on a streaming
 * DNN workload (ResNet-50, Cloud) and on DLRM, whose random embedding
 * gathers punish coarse granularities with read amplification —
 * the design-choice analysis behind the paper's 512 B default and the
 * DLRM 64 B exception (§VI-A, Memory Protection).
 *
 * Traces are generated once; the per-point Experiment re-simulates
 * them under the swept config. The "coarse" DLRM variant strips the
 * per-access fine-MAC override from the trace, which is exactly what
 * Experiment's explicit-trace path exists for.
 */

#include "bench_util.h"

int
main()
{
    using namespace mgx;
    using protection::Scheme;

    std::printf("Ablation: MGX MAC granularity sweep\n");
    bench::printHeader("traffic increase vs granularity",
                       {"gran(B)", "ResNet", "DLRM", "DLRM-fine-emb"});

    core::Trace resnet_trace =
        sim::makeKernel("dnn/ResNet")->generate();

    // DLRM with the embedding override active (64 B fine MACs on
    // tables) vs suppressed (tables use the sweep granularity).
    core::Trace fine_trace = sim::makeKernel("dnn/DLRM")->generate();
    core::Trace coarse_trace = fine_trace;
    for (auto phase : coarse_trace) // mutable views into the trace
        for (auto &acc : phase.accesses)
            acc.macGranularity = 0; // default for every access

    for (u32 gran : {64u, 128u, 256u, 512u, 1024u, 2048u, 4096u}) {
        protection::ProtectionConfig base;
        base.macGranularity = gran;
        sim::ResultSet rs = sim::Experiment()
                                .trace("ResNet", resnet_trace)
                                .trace("DLRM", coarse_trace)
                                .trace("DLRM-fine", fine_trace)
                                .platform(sim::cloudPlatform())
                                .schemes({Scheme::NP, Scheme::MGX})
                                .config(base)
                                .run();
        bench::printRow(
            std::to_string(gran),
            {rs.trafficIncrease("ResNet", "Cloud", Scheme::MGX)
                 .value(),
             rs.trafficIncrease("DLRM", "Cloud", Scheme::MGX).value(),
             rs.trafficIncrease("DLRM-fine", "Cloud", Scheme::MGX)
                 .value()});
    }
    std::printf("(expected: streaming ResNet improves monotonically "
                "with coarser MACs; DLRM without the fine-grained "
                "embedding override blows up past 512 B)\n");
    return 0;
}
