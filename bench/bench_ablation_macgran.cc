/**
 * @file
 * Ablation: MGX MAC-granularity sweep (64 B .. 4 KB) on a streaming
 * DNN workload (ResNet-50, Cloud) and on DLRM, whose random embedding
 * gathers punish coarse granularities with read amplification —
 * the design-choice analysis behind the paper's 512 B default and the
 * DLRM 64 B exception (§VI-A, Memory Protection).
 */

#include "bench_util.h"

int
main()
{
    using namespace mgx;
    using protection::Scheme;

    std::printf("Ablation: MGX MAC granularity sweep\n");
    bench::printHeader("traffic increase vs granularity",
                       {"gran(B)", "ResNet", "DLRM", "DLRM-fine-emb"});

    for (u32 gran : {64u, 128u, 256u, 512u, 1024u, 2048u, 4096u}) {
        protection::ProtectionConfig base;
        base.macGranularity = gran;

        dnn::DnnKernel resnet(dnn::resnet50(), dnn::cloudAccel());
        auto rc = sim::compareSchemes(resnet.generate(),
                                      sim::cloudPlatform(), base,
                                      {Scheme::NP, Scheme::MGX});

        // DLRM with the embedding override active (64 B fine MACs on
        // tables) vs suppressed (tables use the sweep granularity).
        dnn::DnnKernel dlrm_fine(dnn::dlrm(), dnn::cloudAccel());
        core::Trace fine_trace = dlrm_fine.generate();
        core::Trace coarse_trace = fine_trace;
        for (auto &phase : coarse_trace)
            for (auto &acc : phase.accesses)
                acc.macGranularity = 0; // default for every access
        auto dc = sim::compareSchemes(coarse_trace,
                                      sim::cloudPlatform(), base,
                                      {Scheme::NP, Scheme::MGX});
        auto df = sim::compareSchemes(fine_trace, sim::cloudPlatform(),
                                      base,
                                      {Scheme::NP, Scheme::MGX});

        bench::printRow(std::to_string(gran),
                        {rc.trafficIncrease(Scheme::MGX),
                         dc.trafficIncrease(Scheme::MGX),
                         df.trafficIncrease(Scheme::MGX)});
    }
    std::printf("(expected: streaming ResNet improves monotonically "
                "with coarser MACs; DLRM without the fine-grained "
                "embedding override blows up past 512 B)\n");
    return 0;
}
