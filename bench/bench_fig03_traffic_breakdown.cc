/**
 * @file
 * Reproduces paper Fig. 3: the memory-traffic overhead of the
 * traditional (BP) protection scheme, broken down into MAC accesses
 * and VN accesses (VN lines + integrity tree), for every benchmark:
 * six DNN inference workloads, five DNN training workloads, and
 * PageRank/BFS over six graphs.
 *
 * Expected shape: every bar between ~23% and ~55%; training above
 * inference; VN overhead (incl. tree) comparable to or above MAC
 * overhead; DLRM the worst case.
 *
 * One Experiment covers the whole figure: with no platform axis set,
 * each workload runs on its domain's paper platform (DNN on Cloud,
 * graph on the GraphLily-like accelerator).
 */

#include <cstdio>

#include "bench_util.h"
#include "graph/graph_gen.h"

namespace mgx {
namespace {

using protection::Scheme;

struct Breakdown
{
    double mac = 0, vn = 0, total = 0;
};

Breakdown
breakdownOf(const sim::RunResult &bp)
{
    const auto &t = bp.traffic;
    const double data = static_cast<double>(t.dataBytes);
    Breakdown b;
    b.mac = 100.0 * static_cast<double>(t.macBytes) / data;
    b.vn = 100.0 * static_cast<double>(t.vnBytes + t.treeBytes) / data;
    b.total = b.mac + b.vn +
              100.0 * static_cast<double>(t.expandBytes) / data;
    return b;
}

void
row(const std::string &name, const Breakdown &b, double &sum, int &n)
{
    std::printf("%-22s %8.1f %8.1f %8.1f\n", name.c_str(), b.mac, b.vn,
                b.total);
    sum += b.total;
    ++n;
}

std::string
graphWorkload(const std::string &graph_name, const char *alg)
{
    return "graph/" + graph_name + "/" + alg;
}

} // namespace
} // namespace mgx

int
main()
{
    using namespace mgx;
    std::printf("Figure 3: memory traffic overhead of traditional "
                "protection (%% of data traffic)\n");
    std::printf("%-22s %8s %8s %8s\n", "workload", "MAC", "VN", "total");

    sim::Experiment experiment;
    for (const auto &m : bench::inferenceModels())
        experiment.workload(bench::dnnWorkload(m, false));
    for (const auto &m : bench::trainingModels())
        experiment.workload(bench::dnnWorkload(m, true));
    for (const auto &g : graph::paperGraphs())
        for (const char *alg : {"pagerank", "bfs"})
            experiment.workload(graphWorkload(g.name, alg));
    sim::ResultSet rs = experiment.schemes({Scheme::BP}).run();

    auto bp = [&](const std::string &w, const char *platform) {
        return breakdownOf(*rs.find(w, platform, Scheme::BP));
    };

    double sum_inf = 0, sum_train = 0, sum_pr = 0, sum_bfs = 0;
    int n_inf = 0, n_train = 0, n_pr = 0, n_bfs = 0;

    for (const auto &m : bench::inferenceModels())
        row(m + "-Inf", bp(bench::dnnWorkload(m, false), "Cloud"),
            sum_inf, n_inf);
    for (const auto &m : bench::trainingModels())
        row(m + "-Train", bp(bench::dnnWorkload(m, true), "Cloud"),
            sum_train, n_train);
    for (const auto &g : graph::paperGraphs())
        row("PR-" + g.name,
            bp(graphWorkload(g.name, "pagerank"), "Graph"), sum_pr,
            n_pr);
    for (const auto &g : graph::paperGraphs())
        row("BFS-" + g.name, bp(graphWorkload(g.name, "bfs"), "Graph"),
            sum_bfs, n_bfs);

    std::printf("\naverages (paper: Inf 36.1%%, Train 40.4%%, "
                "PR 26.3%%, BFS 25.6%%):\n");
    std::printf("  DNN inference: %.1f%%\n", sum_inf / n_inf);
    std::printf("  DNN training:  %.1f%%\n", sum_train / n_train);
    std::printf("  PageRank:      %.1f%%\n", sum_pr / n_pr);
    std::printf("  BFS:           %.1f%%\n", sum_bfs / n_bfs);
    return 0;
}
