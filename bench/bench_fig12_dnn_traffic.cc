/**
 * @file
 * Reproduces paper Fig. 12: memory-traffic increase of DNN inference
 * (a) and training (b) under MGX and BP on the Cloud and Edge
 * configurations, normalized to no protection.
 *
 * Expected shape: BP ~1.3-1.55x (DLRM worst), MGX ~1.02-1.04x;
 * training above inference for BP.
 *
 * Each section is one Experiment: the full model x platform x scheme
 * grid runs on the thread pool, with each model's trace generated
 * once per accelerator config.
 */

#include "bench_util.h"

namespace mgx {
namespace {

using protection::Scheme;

void
runSection(const char *title, const std::vector<std::string> &models,
           bool training, double paper_bp_cloud, double paper_mgx_cloud)
{
    bench::printHeader(title, {"model", "Cloud-MGX", "Cloud-BP",
                               "Edge-MGX", "Edge-BP"});
    sim::Experiment experiment;
    for (const auto &m : models)
        experiment.workload(bench::dnnWorkload(m, training));
    sim::ResultSet rs =
        experiment
            .platforms({sim::cloudPlatform(), sim::edgePlatform()})
            .schemes({Scheme::NP, Scheme::MGX, Scheme::BP})
            .run();

    double sums[4] = {};
    for (const auto &m : models) {
        const std::string w = bench::dnnWorkload(m, training);
        const double v[4] = {
            rs.trafficIncrease(w, "Cloud", Scheme::MGX).value(),
            rs.trafficIncrease(w, "Cloud", Scheme::BP).value(),
            rs.trafficIncrease(w, "Edge", Scheme::MGX).value(),
            rs.trafficIncrease(w, "Edge", Scheme::BP).value()};
        bench::printRow(m, {v[0], v[1], v[2], v[3]});
        for (int i = 0; i < 4; ++i)
            sums[i] += v[i];
    }
    const double n = static_cast<double>(models.size());
    bench::printRow("average",
                    {sums[0] / n, sums[1] / n, sums[2] / n,
                     sums[3] / n});
    std::printf("(paper averages: Cloud-BP %.3f, Cloud-MGX %.3f)\n",
                paper_bp_cloud, paper_mgx_cloud);
}

} // namespace
} // namespace mgx

int
main()
{
    using namespace mgx;
    std::printf("Figure 12: DNN memory traffic increase "
                "(normalized to no protection)\n");
    runSection("(a) inference", bench::inferenceModels(),
               /*training=*/false, 1.360, 1.024);
    runSection("(b) training", bench::trainingModels(),
               /*training=*/true, 1.378, 1.027);
    return 0;
}
