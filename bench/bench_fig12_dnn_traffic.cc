/**
 * @file
 * Reproduces paper Fig. 12: memory-traffic increase of DNN inference
 * (a) and training (b) under MGX and BP on the Cloud and Edge
 * configurations, normalized to no protection.
 *
 * Expected shape: BP ~1.3-1.55x (DLRM worst), MGX ~1.02-1.04x;
 * training above inference for BP.
 */

#include "bench_util.h"

namespace mgx {
namespace {

using protection::Scheme;

void
runSection(const char *title, const std::vector<std::string> &models,
           dnn::DnnTask task, double paper_bp_cloud,
           double paper_mgx_cloud)
{
    bench::printHeader(title, {"model", "Cloud-MGX", "Cloud-BP",
                               "Edge-MGX", "Edge-BP"});
    double sums[4] = {};
    for (const auto &m : models) {
        auto cloud = bench::runDnnWorkload(
            m, task, false, {Scheme::NP, Scheme::MGX, Scheme::BP});
        auto edge = bench::runDnnWorkload(
            m, task, true, {Scheme::NP, Scheme::MGX, Scheme::BP});
        const double v[4] = {cloud.trafficIncrease(Scheme::MGX),
                             cloud.trafficIncrease(Scheme::BP),
                             edge.trafficIncrease(Scheme::MGX),
                             edge.trafficIncrease(Scheme::BP)};
        bench::printRow(m, {v[0], v[1], v[2], v[3]});
        for (int i = 0; i < 4; ++i)
            sums[i] += v[i];
    }
    const double n = static_cast<double>(models.size());
    bench::printRow("average",
                    {sums[0] / n, sums[1] / n, sums[2] / n,
                     sums[3] / n});
    std::printf("(paper averages: Cloud-BP %.3f, Cloud-MGX %.3f)\n",
                paper_bp_cloud, paper_mgx_cloud);
}

} // namespace
} // namespace mgx

int
main()
{
    using namespace mgx;
    std::printf("Figure 12: DNN memory traffic increase "
                "(normalized to no protection)\n");
    runSection("(a) inference", bench::inferenceModels(),
               dnn::DnnTask::Inference, 1.360, 1.024);
    runSection("(b) training", bench::trainingModels(),
               dnn::DnnTask::Training, 1.378, 1.027);
    return 0;
}
