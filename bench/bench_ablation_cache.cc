/**
 * @file
 * Ablation: baseline VN/MAC cache-size sweep.
 *
 * The paper (§VI-A) argues that "because the DNN accelerator has a
 * largely streaming memory access pattern, increasing the VN/MAC
 * cache does not help unless it is big enough to capture temporal
 * locality across layers". This bench sweeps the metadata cache from
 * 8 KB to 8 MB on a streaming workload (ResNet-50) and a random-gather
 * workload (DLRM) and prints BP's traffic increase at each point.
 *
 * Expected shape: essentially flat through the tens-of-KB range, with
 * gains only once the cache approaches the workload's whole metadata
 * footprint.
 */

#include "bench_util.h"

int
main()
{
    using namespace mgx;
    using protection::Scheme;

    std::printf("Ablation: BP metadata cache-size sweep "
                "(traffic increase)\n");
    bench::printHeader("BP traffic vs VN/MAC cache size",
                       {"cache(KB)", "ResNet", "DLRM"});

    dnn::DnnKernel resnet(dnn::resnet50(), dnn::cloudAccel());
    core::Trace resnet_trace = resnet.generate();
    dnn::DnnKernel dlrm(dnn::dlrm(), dnn::cloudAccel());
    core::Trace dlrm_trace = dlrm.generate();

    for (u32 kb : {8u, 16u, 32u, 64u, 128u, 512u, 2048u, 8192u}) {
        protection::ProtectionConfig base;
        base.metaCacheBytes = kb << 10;
        auto rc = sim::compareSchemes(resnet_trace,
                                      sim::cloudPlatform(), base,
                                      {Scheme::NP, Scheme::BP});
        auto dc = sim::compareSchemes(dlrm_trace, sim::cloudPlatform(),
                                      base, {Scheme::NP, Scheme::BP});
        bench::printRow(std::to_string(kb),
                        {rc.trafficIncrease(Scheme::BP),
                         dc.trafficIncrease(Scheme::BP)});
    }
    std::printf("(paper claim: streaming workloads see no benefit "
                "from a larger cache until it captures cross-layer "
                "temporal locality)\n");
    return 0;
}
