/**
 * @file
 * Ablation: baseline VN/MAC cache-size sweep.
 *
 * The paper (§VI-A) argues that "because the DNN accelerator has a
 * largely streaming memory access pattern, increasing the VN/MAC
 * cache does not help unless it is big enough to capture temporal
 * locality across layers". This bench sweeps the metadata cache from
 * 8 KB to 8 MB on a streaming workload (ResNet-50) and a random-gather
 * workload (DLRM) and prints BP's traffic increase at each point.
 *
 * Expected shape: essentially flat through the tens-of-KB range, with
 * gains only once the cache approaches the workload's whole metadata
 * footprint.
 *
 * The traces are generated once and re-simulated at every sweep point
 * through Experiment's explicit-trace path (the sweep changes only
 * the protection config, not the schedule).
 */

#include "bench_util.h"

int
main()
{
    using namespace mgx;
    using protection::Scheme;

    std::printf("Ablation: BP metadata cache-size sweep "
                "(traffic increase)\n");
    bench::printHeader("BP traffic vs VN/MAC cache size",
                       {"cache(KB)", "ResNet", "DLRM"});

    core::Trace resnet_trace =
        sim::makeKernel("dnn/ResNet")->generate();
    core::Trace dlrm_trace = sim::makeKernel("dnn/DLRM")->generate();

    for (u32 kb : {8u, 16u, 32u, 64u, 128u, 512u, 2048u, 8192u}) {
        protection::ProtectionConfig base;
        base.metaCacheBytes = kb << 10;
        sim::ResultSet rs = sim::Experiment()
                                .trace("ResNet", resnet_trace)
                                .trace("DLRM", dlrm_trace)
                                .platform(sim::cloudPlatform())
                                .schemes({Scheme::NP, Scheme::BP})
                                .config(base)
                                .run();
        bench::printRow(
            std::to_string(kb),
            {rs.trafficIncrease("ResNet", "Cloud", Scheme::BP).value(),
             rs.trafficIncrease("DLRM", "Cloud", Scheme::BP).value()});
    }
    std::printf("(paper claim: streaming workloads see no benefit "
                "from a larger cache until it captures cross-layer "
                "temporal locality)\n");
    return 0;
}
