/**
 * @file
 * Reproduces paper Fig. 13: normalized execution time of DNN
 * inference (a) and training (b) under MGX, the two ablations
 * (MGX_VN: on-chip VNs + fine MACs; MGX_MAC: off-chip VNs + coarse
 * MACs), and BP, on the Cloud and Edge accelerators.
 *
 * Expected shape: MGX lowest (paper averages 3.2% inference, 4.7%
 * training), MGX_VN next (~1.08-1.12x), MGX_MAC higher
 * (~1.16-1.20x), BP worst (~1.24-1.32x).
 */

#include "bench_util.h"

namespace mgx {
namespace {

using protection::Scheme;

void
runSection(const char *title, const std::vector<std::string> &models,
           bool training)
{
    bench::printHeader(
        title, {"model", "C-MGX", "C-MGXVN", "C-MGXMAC", "C-BP",
                "E-MGX", "E-MGXVN", "E-MGXMAC", "E-BP"});
    sim::Experiment experiment;
    for (const auto &m : models)
        experiment.workload(bench::dnnWorkload(m, training));
    sim::ResultSet rs =
        experiment
            .platforms({sim::cloudPlatform(), sim::edgePlatform()})
            .schemes(sim::allSchemes())
            .run();

    const Scheme cols[] = {Scheme::MGX, Scheme::MGX_VN,
                           Scheme::MGX_MAC, Scheme::BP};
    double sums[8] = {};
    for (const auto &m : models) {
        const std::string w = bench::dnnWorkload(m, training);
        double v[8];
        for (int i = 0; i < 4; ++i) {
            v[i] = rs.normalizedTime(w, "Cloud", cols[i]).value();
            v[4 + i] = rs.normalizedTime(w, "Edge", cols[i]).value();
        }
        bench::printRow(m, {v[0], v[1], v[2], v[3], v[4], v[5], v[6],
                            v[7]});
        for (int i = 0; i < 8; ++i)
            sums[i] += v[i];
    }
    const double n = static_cast<double>(models.size());
    bench::printRow("average",
                    {sums[0] / n, sums[1] / n, sums[2] / n, sums[3] / n,
                     sums[4] / n, sums[5] / n, sums[6] / n,
                     sums[7] / n});
    const double mgx_avg = (sums[0] + sums[4]) / (2 * n);
    const double bp_avg = (sums[3] + sums[7]) / (2 * n);
    std::printf("MGX average overhead: %.1f%%   BP average slowdown: "
                "%.2fx\n",
                100.0 * (mgx_avg - 1.0), bp_avg);
}

} // namespace
} // namespace mgx

int
main()
{
    using namespace mgx;
    std::printf("Figure 13: normalized DNN execution time "
                "(paper: MGX 3.2%% inf / 4.7%% train; BP 1.24-1.32x)\n");
    runSection("(a) inference", bench::inferenceModels(),
               /*training=*/false);
    runSection("(b) training", bench::trainingModels(),
               /*training=*/true);
    return 0;
}
