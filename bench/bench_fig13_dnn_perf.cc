/**
 * @file
 * Reproduces paper Fig. 13: normalized execution time of DNN
 * inference (a) and training (b) under MGX, the two ablations
 * (MGX_VN: on-chip VNs + fine MACs; MGX_MAC: off-chip VNs + coarse
 * MACs), and BP, on the Cloud and Edge accelerators.
 *
 * Expected shape: MGX lowest (paper averages 3.2% inference, 4.7%
 * training), MGX_VN next (~1.08-1.12x), MGX_MAC higher
 * (~1.16-1.20x), BP worst (~1.24-1.32x).
 */

#include "bench_util.h"

namespace mgx {
namespace {

using protection::Scheme;

void
runSection(const char *title, const std::vector<std::string> &models,
           dnn::DnnTask task)
{
    bench::printHeader(
        title, {"model", "C-MGX", "C-MGXVN", "C-MGXMAC", "C-BP",
                "E-MGX", "E-MGXVN", "E-MGXMAC", "E-BP"});
    const std::vector<Scheme> schemes = sim::allSchemes();
    double sums[8] = {};
    for (const auto &m : models) {
        auto cloud = bench::runDnnWorkload(m, task, false, schemes);
        auto edge = bench::runDnnWorkload(m, task, true, schemes);
        const double v[8] = {cloud.normalizedTime(Scheme::MGX),
                             cloud.normalizedTime(Scheme::MGX_VN),
                             cloud.normalizedTime(Scheme::MGX_MAC),
                             cloud.normalizedTime(Scheme::BP),
                             edge.normalizedTime(Scheme::MGX),
                             edge.normalizedTime(Scheme::MGX_VN),
                             edge.normalizedTime(Scheme::MGX_MAC),
                             edge.normalizedTime(Scheme::BP)};
        bench::printRow(m, {v[0], v[1], v[2], v[3], v[4], v[5], v[6],
                            v[7]});
        for (int i = 0; i < 8; ++i)
            sums[i] += v[i];
    }
    const double n = static_cast<double>(models.size());
    bench::printRow("average",
                    {sums[0] / n, sums[1] / n, sums[2] / n, sums[3] / n,
                     sums[4] / n, sums[5] / n, sums[6] / n,
                     sums[7] / n});
    const double mgx_avg = (sums[0] + sums[4]) / (2 * n);
    const double bp_avg = (sums[3] + sums[7]) / (2 * n);
    std::printf("MGX average overhead: %.1f%%   BP average slowdown: "
                "%.2fx\n",
                100.0 * (mgx_avg - 1.0), bp_avg);
}

} // namespace
} // namespace mgx

int
main()
{
    using namespace mgx;
    std::printf("Figure 13: normalized DNN execution time "
                "(paper: MGX 3.2%% inf / 4.7%% train; BP 1.24-1.32x)\n");
    runSection("(a) inference", bench::inferenceModels(),
               dnn::DnnTask::Inference);
    runSection("(b) training", bench::trainingModels(),
               dnn::DnnTask::Training);
    return 0;
}
