/**
 * @file
 * Reproduces paper Fig. 14: (a) memory-traffic increase and (b)
 * normalized execution time of PageRank and BFS on the GraphLily-like
 * accelerator over the six benchmark graphs.
 *
 * Expected shape: BP ~1.25x traffic / up to 1.42x slowdown; MGX
 * ~1.015x traffic / ~1.05x time; ablations in between (MGX_VN ~1.09x,
 * MGX_MAC ~1.18x time on average).
 *
 * One Experiment runs all graph x algorithm x scheme cells in
 * parallel; both sub-figures read from the same ResultSet (per-scheme
 * results are independent, so sharing runs changes nothing).
 */

#include "bench_util.h"
#include "graph/graph_gen.h"

namespace mgx {
namespace {

using protection::Scheme;

std::string
workloadName(const std::string &graph_name, const char *alg)
{
    return "graph/" + graph_name + "/" + alg;
}

} // namespace
} // namespace mgx

int
main()
{
    using namespace mgx;
    std::printf("Figure 14: graph accelerator under memory "
                "protection (scaled graphs, see DESIGN.md)\n");

    sim::Experiment experiment;
    for (const auto &spec : graph::paperGraphs())
        for (const char *alg : {"pagerank", "bfs"})
            experiment.workload(workloadName(spec.name, alg));
    sim::ResultSet rs = experiment.schemes(sim::allSchemes()).run();

    auto traffic = [&](const std::string &w, Scheme s) {
        return rs.trafficIncrease(w, "Graph", s).value();
    };
    auto time = [&](const std::string &w, Scheme s) {
        return rs.normalizedTime(w, "Graph", s).value();
    };

    bench::printHeader("(a) memory traffic increase",
                       {"graph", "PR-MGX", "PR-BP", "BFS-MGX",
                        "BFS-BP"});
    for (const auto &spec : graph::paperGraphs()) {
        const std::string pr = workloadName(spec.name, "pagerank");
        const std::string bfs = workloadName(spec.name, "bfs");
        bench::printRow(spec.name, {traffic(pr, Scheme::MGX),
                                    traffic(pr, Scheme::BP),
                                    traffic(bfs, Scheme::MGX),
                                    traffic(bfs, Scheme::BP)});
    }

    bench::printHeader("(b) normalized execution time",
                       {"graph", "PR-MGX", "PR-MGXVN", "PR-MGXMAC",
                        "PR-BP", "BFS-MGX", "BFS-MGXVN", "BFS-MGXMAC",
                        "BFS-BP"});
    double sums[8] = {};
    int n = 0;
    for (const auto &spec : graph::paperGraphs()) {
        const std::string pr = workloadName(spec.name, "pagerank");
        const std::string bfs = workloadName(spec.name, "bfs");
        const double v[8] = {time(pr, Scheme::MGX),
                             time(pr, Scheme::MGX_VN),
                             time(pr, Scheme::MGX_MAC),
                             time(pr, Scheme::BP),
                             time(bfs, Scheme::MGX),
                             time(bfs, Scheme::MGX_VN),
                             time(bfs, Scheme::MGX_MAC),
                             time(bfs, Scheme::BP)};
        bench::printRow(spec.name, {v[0], v[1], v[2], v[3], v[4], v[5],
                                    v[6], v[7]});
        for (int i = 0; i < 8; ++i)
            sums[i] += v[i];
        ++n;
    }
    bench::printRow("average",
                    {sums[0] / n, sums[1] / n, sums[2] / n, sums[3] / n,
                     sums[4] / n, sums[5] / n, sums[6] / n,
                     sums[7] / n});
    std::printf("(paper: PR-MGX 5.1%%, BFS-MGX 4.9%%, BP avg 1.33x, "
                "max 1.42x; MGX_VN 9.4%%, MGX_MAC 18.0%% across all)\n");

    // §V-B's SpMSpV discussion: random per-element vector gathers need
    // fine-grained MACs on the vector but keep the same VN scheme; MGX
    // still cuts most of the metadata traffic.
    bench::printHeader("SpMSpV (random vector gathers), pokec",
                       {"access", "MGX", "BP"});
    sim::ResultSet spmspv =
        sim::Experiment()
            .workloads({"graph/pokec/pagerank?iters=2&vector=seq",
                        "graph/pokec/pagerank?iters=2&vector=random"})
            .schemes({Scheme::NP, Scheme::MGX, Scheme::BP})
            .run();
    for (const auto &w : spmspv.workloads()) {
        const bool random = w.find("random") != std::string::npos;
        bench::printRow(
            random ? "SpMSpV" : "SpMV",
            {spmspv.trafficIncrease(w, "Graph", Scheme::MGX).value(),
             spmspv.trafficIncrease(w, "Graph", Scheme::BP).value()});
    }
    return 0;
}
