/**
 * @file
 * Reproduces paper Fig. 14: (a) memory-traffic increase and (b)
 * normalized execution time of PageRank and BFS on the GraphLily-like
 * accelerator over the six benchmark graphs.
 *
 * Expected shape: BP ~1.25x traffic / up to 1.42x slowdown; MGX
 * ~1.015x traffic / ~1.05x time; ablations in between (MGX_VN ~1.09x,
 * MGX_MAC ~1.18x time on average).
 */

#include "bench_util.h"
#include "graph/graph_gen.h"
#include "graph/graph_kernel.h"

namespace mgx {
namespace {

using protection::Scheme;

sim::SchemeComparison
runGraph(const graph::GraphSpec &spec, graph::GraphAlgorithm alg,
         const std::vector<Scheme> &schemes)
{
    graph::GraphTiles tiles =
        graph::buildTiles(spec, 512 << 10, 512 << 10, 11);
    graph::GraphKernel kernel(
        tiles, alg, alg == graph::GraphAlgorithm::PageRank ? 3 : 4);
    core::Trace trace = kernel.generate();
    protection::ProtectionConfig base;
    return sim::compareSchemes(trace, sim::graphPlatform(), base,
                               schemes);
}

} // namespace
} // namespace mgx

int
main()
{
    using namespace mgx;
    std::printf("Figure 14: graph accelerator under memory "
                "protection (scaled graphs, see DESIGN.md)\n");

    bench::printHeader("(a) memory traffic increase",
                       {"graph", "PR-MGX", "PR-BP", "BFS-MGX",
                        "BFS-BP"});
    for (const auto &spec : graph::paperGraphs()) {
        auto pr = runGraph(spec, graph::GraphAlgorithm::PageRank,
                           {Scheme::NP, Scheme::MGX, Scheme::BP});
        auto bfs = runGraph(spec, graph::GraphAlgorithm::BFS,
                            {Scheme::NP, Scheme::MGX, Scheme::BP});
        bench::printRow(spec.name, {pr.trafficIncrease(Scheme::MGX),
                                    pr.trafficIncrease(Scheme::BP),
                                    bfs.trafficIncrease(Scheme::MGX),
                                    bfs.trafficIncrease(Scheme::BP)});
    }

    bench::printHeader("(b) normalized execution time",
                       {"graph", "PR-MGX", "PR-MGXVN", "PR-MGXMAC",
                        "PR-BP", "BFS-MGX", "BFS-MGXVN", "BFS-MGXMAC",
                        "BFS-BP"});
    double sums[8] = {};
    int n = 0;
    for (const auto &spec : graph::paperGraphs()) {
        auto pr = runGraph(spec, graph::GraphAlgorithm::PageRank,
                           sim::allSchemes());
        auto bfs = runGraph(spec, graph::GraphAlgorithm::BFS,
                            sim::allSchemes());
        const double v[8] = {pr.normalizedTime(Scheme::MGX),
                             pr.normalizedTime(Scheme::MGX_VN),
                             pr.normalizedTime(Scheme::MGX_MAC),
                             pr.normalizedTime(Scheme::BP),
                             bfs.normalizedTime(Scheme::MGX),
                             bfs.normalizedTime(Scheme::MGX_VN),
                             bfs.normalizedTime(Scheme::MGX_MAC),
                             bfs.normalizedTime(Scheme::BP)};
        bench::printRow(spec.name, {v[0], v[1], v[2], v[3], v[4], v[5],
                                    v[6], v[7]});
        for (int i = 0; i < 8; ++i)
            sums[i] += v[i];
        ++n;
    }
    bench::printRow("average",
                    {sums[0] / n, sums[1] / n, sums[2] / n, sums[3] / n,
                     sums[4] / n, sums[5] / n, sums[6] / n,
                     sums[7] / n});
    std::printf("(paper: PR-MGX 5.1%%, BFS-MGX 4.9%%, BP avg 1.33x, "
                "max 1.42x; MGX_VN 9.4%%, MGX_MAC 18.0%% across all)\n");

    // §V-B's SpMSpV discussion: random per-element vector gathers need
    // fine-grained MACs on the vector but keep the same VN scheme; MGX
    // still cuts most of the metadata traffic.
    bench::printHeader("SpMSpV (random vector gathers), pokec",
                       {"access", "MGX", "BP"});
    for (auto va : {graph::VectorAccess::Sequential,
                    graph::VectorAccess::Random}) {
        graph::GraphSpec spec = graph::graphByName("pokec");
        graph::GraphTiles tiles =
            graph::buildTiles(spec, 512 << 10, 512 << 10, 11);
        graph::GraphKernel kernel(
            tiles, graph::GraphAlgorithm::PageRank, 2, {}, va);
        core::Trace trace = kernel.generate();
        protection::ProtectionConfig base;
        auto cmp = sim::compareSchemes(
            trace, sim::graphPlatform(), base,
            {Scheme::NP, Scheme::MGX, Scheme::BP});
        bench::printRow(va == graph::VectorAccess::Sequential
                            ? "SpMV"
                            : "SpMSpV",
                        {cmp.trafficIncrease(Scheme::MGX),
                         cmp.trafficIncrease(Scheme::BP)});
    }
    return 0;
}
