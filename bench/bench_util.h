/**
 * @file
 * Shared helpers for the figure-reproduction benches: fixed-width
 * table printing and the standard workload -> SchemeComparison runs.
 */

#ifndef MGX_BENCH_BENCH_UTIL_H
#define MGX_BENCH_BENCH_UTIL_H

#include <cstdio>
#include <string>
#include <vector>

#include "dnn/dnn_kernel.h"
#include "dnn/models.h"
#include "sim/runner.h"

namespace mgx::bench {

/** Print a header row followed by a separator. */
inline void
printHeader(const std::string &title,
            const std::vector<std::string> &columns)
{
    std::printf("\n== %s ==\n", title.c_str());
    for (const auto &col : columns)
        std::printf("%-14s", col.c_str());
    std::printf("\n");
    for (std::size_t i = 0; i < columns.size(); ++i)
        std::printf("--------------");
    std::printf("\n");
}

/** One labelled row of ratios. */
inline void
printRow(const std::string &label, const std::vector<double> &values)
{
    std::printf("%-14s", label.c_str());
    for (double v : values)
        std::printf("%-14.3f", v);
    std::printf("\n");
}

/** Run one DNN workload on a platform and compare schemes. */
inline sim::SchemeComparison
runDnnWorkload(const std::string &model_name, dnn::DnnTask task,
               bool edge, const std::vector<protection::Scheme> &schemes)
{
    dnn::DnnKernel kernel(dnn::modelByName(model_name),
                          edge ? dnn::edgeAccel() : dnn::cloudAccel(),
                          task);
    core::Trace trace = kernel.generate();
    protection::ProtectionConfig base;
    return sim::compareSchemes(trace,
                               edge ? sim::edgePlatform()
                                    : sim::cloudPlatform(),
                               base, schemes);
}

/** The models the paper plots for inference and training. */
inline std::vector<std::string>
inferenceModels()
{
    return {"VGG", "AlexNet", "GoogleNet", "ResNet", "BERT", "DLRM"};
}

inline std::vector<std::string>
trainingModels()
{
    return {"VGG", "AlexNet", "GoogleNet", "ResNet", "BERT"};
}

} // namespace mgx::bench

#endif // MGX_BENCH_BENCH_UTIL_H
