/**
 * @file
 * Shared formatting glue for the figure-reproduction benches:
 * fixed-width table printing and the registry names of the paper's
 * DNN workload lists. The actual runs go through sim::Experiment.
 */

#ifndef MGX_BENCH_BENCH_UTIL_H
#define MGX_BENCH_BENCH_UTIL_H

#include <cstdio>
#include <string>
#include <vector>

#include "sim/experiment.h"
#include "sim/workload_registry.h"

namespace mgx::bench {

/** Print a header row followed by a separator. */
inline void
printHeader(const std::string &title,
            const std::vector<std::string> &columns)
{
    std::printf("\n== %s ==\n", title.c_str());
    for (const auto &col : columns)
        std::printf("%-14s", col.c_str());
    std::printf("\n");
    for (std::size_t i = 0; i < columns.size(); ++i)
        std::printf("--------------");
    std::printf("\n");
}

/** One labelled row of ratios. */
inline void
printRow(const std::string &label, const std::vector<double> &values)
{
    std::printf("%-14s", label.c_str());
    for (double v : values)
        std::printf("%-14.3f", v);
    std::printf("\n");
}

/** The models the paper plots for inference and training. */
inline std::vector<std::string>
inferenceModels()
{
    return {"VGG", "AlexNet", "GoogleNet", "ResNet", "BERT", "DLRM"};
}

inline std::vector<std::string>
trainingModels()
{
    return {"VGG", "AlexNet", "GoogleNet", "ResNet", "BERT"};
}

/** Registry name of one DNN workload ("dnn/VGG?task=training"). */
inline std::string
dnnWorkload(const std::string &model, bool training)
{
    return "dnn/" + model +
           (training ? "?task=training" : "?task=inference");
}

} // namespace mgx::bench

#endif // MGX_BENCH_BENCH_UTIL_H
