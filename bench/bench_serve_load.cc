/**
 * @file
 * Load generator for the experiment service: starts an in-process
 * Server on a private unix socket and temp trace-cache dir, then
 *
 *   1. cold burst — N clients fire the same cold-cache request at
 *      once, so the singleflight + trace-cache layers should collapse
 *      the N engine runs (dedupCollapsed lands between 0 and
 *      (N-1) x cells, racing arrival order; > 0 on any real overlap),
 *   2. sustained — the N clients hammer the warm cell for a fixed
 *      wall-clock window, measuring served requests and cells/second.
 *
 * `--chaos` turns the sustained phase into a fault drill: a rotation
 * thread arms one trace_io failpoint set after another (ENOSPC, torn
 * renames, corrupt reads, EINTR storms — never a livelocking spec)
 * while the clients keep hammering, and every 200 body is checked
 * byte-for-byte against a fault-free reference. The run fails if any
 * request errors or any body drifts: injected cache faults must cost
 * only cache reuse, never correctness or availability.
 *
 * Emits an `mgx-servebench-v1` JSON document on stdout for trajectory
 * tracking; the human-readable line goes to stderr.
 */

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "common/failpoint.h"
#include "serve/client.h"
#include "serve/server.h"

namespace {

using namespace mgx;
using Clock = std::chrono::steady_clock;

struct Options
{
    unsigned clients = 4;
    double seconds = 2.0;
    std::string workload = "core/matmul";
    std::string schemes = "NP,BP";
    bool chaos = false;
};

/**
 * The chaos rotation: every entry is a complete MGX_FAILPOINTS-style
 * list armed for one slice of the sustained window. Specs are
 * recurring (every:N / prob) so faults keep firing across requests.
 * `lock.eintr=always` is deliberately absent — the flock retry loop
 * would livelock; an every:2 storm exercises the same retry path and
 * always makes progress.
 */
const char *const kChaosRotation[] = {
    "trace_io.read.open=every:3,trace_io.read.corrupt=every:2",
    "trace_io.write.open=every:2,trace_io.write.enospc=every:3",
    "trace_io.write.short=every:3,trace_io.write.torn=every:2",
    "trace_io.lock.open=every:3,trace_io.lock.eintr=every:2",
    "trace_io.read.corrupt=prob:0.5:1234,trace_io.write.enospc=prob:0.5:5678",
};

} // namespace

int
main(int argc, char **argv)
{
    Options opt;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr,
                             "bench_serve_load: %s needs a value\n",
                             arg.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--clients")
            opt.clients = static_cast<unsigned>(
                std::strtoul(value(), nullptr, 10));
        else if (arg == "--seconds")
            opt.seconds = std::strtod(value(), nullptr);
        else if (arg == "--workload")
            opt.workload = value();
        else if (arg == "--schemes")
            opt.schemes = value();
        else if (arg == "--chaos")
            opt.chaos = true;
        else {
            std::fprintf(stderr,
                         "usage: bench_serve_load [--clients N] "
                         "[--seconds S] [--workload W] [--schemes "
                         "S,...] [--chaos]\n");
            return 2;
        }
    }
    if (opt.clients == 0)
        opt.clients = 1;

    const std::string tag = std::to_string(::getpid());
    const std::string sock = "/tmp/mgx-serve-bench-" + tag + ".sock";
    const std::string cache_dir =
        std::filesystem::temp_directory_path() /
        ("mgx-serve-bench-cache-" + tag);

    serve::ServerOptions sopts;
    sopts.listen.unixPath = sock;
    sopts.workers = opt.clients;
    sopts.admissionCapacity = opt.clients * 2;
    sopts.traceCacheDir = cache_dir;
    serve::Server server(sopts);
    server.start();

    const std::string target =
        "/run?workload=" + serve::percentEncode(opt.workload) +
        "&schemes=" + opt.schemes;
    const serve::SocketAddress addr{sock, "127.0.0.1", 0};

    // --- Phase 1: cold burst -------------------------------------
    std::atomic<unsigned> ready{0};
    std::atomic<bool> go{false};
    std::atomic<unsigned> burst_ok{0};
    std::vector<std::thread> threads;
    for (unsigned i = 0; i < opt.clients; ++i) {
        threads.emplace_back([&] {
            ready.fetch_add(1);
            while (!go.load(std::memory_order_acquire))
                std::this_thread::yield();
            serve::HttpResponse resp;
            std::string error;
            if (serve::httpGet(addr, target, &resp, &error) &&
                resp.status == 200)
                burst_ok.fetch_add(1);
        });
    }
    while (ready.load() < opt.clients)
        std::this_thread::yield();
    const auto burst_start = Clock::now();
    go.store(true, std::memory_order_release);
    for (auto &t : threads)
        t.join();
    const double burst_secs =
        std::chrono::duration<double>(Clock::now() - burst_start)
            .count();
    const auto after_burst = server.metricsSnapshot();

    // --- Phase 2: sustained warm-cache load ----------------------
    // Fault-free reference body for --chaos byte-identity: the serve
    // layer promises injected cache faults never change a response.
    std::string reference;
    if (opt.chaos) {
        serve::HttpResponse resp;
        std::string error;
        if (!serve::httpGet(addr, target, &resp, &error) ||
            resp.status != 200) {
            std::fprintf(stderr,
                         "bench_serve_load: reference request failed: "
                         "%s\n",
                         error.c_str());
            return 1;
        }
        reference = resp.body;
    }

    std::atomic<unsigned long long> sustained_ok{0};
    std::atomic<unsigned long long> sustained_failed{0};
    std::atomic<unsigned long long> body_mismatches{0};
    std::atomic<unsigned long long> chaos_rotations{0};
    std::atomic<bool> stop_chaos{false};
    const auto deadline =
        Clock::now() + std::chrono::duration_cast<Clock::duration>(
                           std::chrono::duration<double>(opt.seconds));
    threads.clear();
    const auto sustained_start = Clock::now();

    std::thread chaos;
    if (opt.chaos) {
        chaos = std::thread([&] {
            std::size_t i = 0;
            while (!stop_chaos.load(std::memory_order_acquire)) {
                failpoint::disarmAll();
                failpoint::armSpecList(
                    kChaosRotation[i++ %
                                   (sizeof kChaosRotation /
                                    sizeof kChaosRotation[0])]);
                chaos_rotations.fetch_add(1);
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(100));
            }
            failpoint::disarmAll();
        });
    }

    for (unsigned i = 0; i < opt.clients; ++i) {
        threads.emplace_back([&] {
            while (Clock::now() < deadline) {
                serve::HttpResponse resp;
                std::string error;
                if (serve::httpGet(addr, target, &resp, &error) &&
                    resp.status == 200) {
                    sustained_ok.fetch_add(1);
                    if (opt.chaos && resp.body != reference)
                        body_mismatches.fetch_add(1);
                } else if (opt.chaos) {
                    // Under trace_io chaos every request must still
                    // be answered: faults cost reuse, not service.
                    sustained_failed.fetch_add(1);
                }
            }
        });
    }
    for (auto &t : threads)
        t.join();
    if (chaos.joinable()) {
        stop_chaos.store(true, std::memory_order_release);
        chaos.join();
    }
    const double sustained_secs =
        std::chrono::duration<double>(Clock::now() - sustained_start)
            .count();

    const auto final_stats = server.metricsSnapshot();
    server.shutdown();

    // Injected read corruption must leave quarantine evidence, not
    // wedge the cache: count the `.trace.bad` files before cleanup.
    unsigned long long quarantined = 0;
    if (opt.chaos) {
        std::error_code ec;
        for (const auto &entry : std::filesystem::directory_iterator(
                 cache_dir, ec))
            if (entry.path().filename().string().find(".trace.bad") !=
                std::string::npos)
                ++quarantined;
    }
    std::filesystem::remove_all(cache_dir);

    const unsigned cells_per_request =
        [&] {
            unsigned n = 1;
            for (char c : opt.schemes)
                if (c == ',')
                    ++n;
            return n;
        }();
    const unsigned long long sustained_cells =
        sustained_ok.load() * cells_per_request;
    const double cells_per_sec =
        sustained_secs > 0 ? sustained_cells / sustained_secs : 0;

    std::fprintf(stderr,
                 "bench_serve_load: %u clients, burst %.3fs "
                 "(%u ok, collapsed %llu, cellsRun %llu), sustained "
                 "%.1fs: %llu requests, %.1f cells/s\n",
                 opt.clients, burst_secs, burst_ok.load(),
                 static_cast<unsigned long long>(
                     after_burst.dedupCollapsed),
                 static_cast<unsigned long long>(after_burst.cellsRun),
                 sustained_secs,
                 static_cast<unsigned long long>(sustained_ok.load()),
                 cells_per_sec);
    if (opt.chaos)
        std::fprintf(stderr,
                     "bench_serve_load: chaos %llu rotations, "
                     "%llu failures, %llu body mismatches, "
                     "%llu quarantined\n",
                     chaos_rotations.load(), sustained_failed.load(),
                     body_mismatches.load(), quarantined);

    std::printf(
        "{\n  \"schema\": \"mgx-servebench-v1\",\n"
        "  \"clients\": %u,\n  \"workload\": \"%s\",\n"
        "  \"schemes\": \"%s\",\n"
        "  \"burst\": {\"seconds\": %.6f, \"ok\": %u, "
        "\"cellsRun\": %llu, \"dedupCollapsed\": %llu},\n"
        "  \"sustained\": {\"seconds\": %.6f, \"requests\": %llu, "
        "\"cellsPerSecond\": %.3f},\n"
        "  \"chaos\": {\"enabled\": %s, \"rotations\": %llu, "
        "\"failures\": %llu, \"bodyMismatches\": %llu, "
        "\"quarantined\": %llu},\n"
        "  \"stats\": {\"served\": %llu, \"rejected\": %llu, "
        "\"traceCacheHits\": %llu, \"traceCacheMisses\": %llu}\n}\n",
        opt.clients, opt.workload.c_str(), opt.schemes.c_str(),
        burst_secs, burst_ok.load(),
        static_cast<unsigned long long>(after_burst.cellsRun),
        static_cast<unsigned long long>(after_burst.dedupCollapsed),
        sustained_secs,
        static_cast<unsigned long long>(sustained_ok.load()),
        cells_per_sec, opt.chaos ? "true" : "false",
        chaos_rotations.load(), sustained_failed.load(),
        body_mismatches.load(), quarantined,
        static_cast<unsigned long long>(final_stats.served),
        static_cast<unsigned long long>(final_stats.rejected),
        static_cast<unsigned long long>(final_stats.traceCacheHits),
        static_cast<unsigned long long>(final_stats.traceCacheMisses));

    const bool chaos_clean =
        body_mismatches.load() == 0 && sustained_failed.load() == 0;
    return burst_ok.load() == opt.clients && chaos_clean ? 0 : 1;
}
