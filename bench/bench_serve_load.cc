/**
 * @file
 * Load generator for the experiment service: starts an in-process
 * Server on a private unix socket and temp trace-cache dir, then
 *
 *   1. cold burst — N clients fire the same cold-cache request at
 *      once, so the singleflight + trace-cache layers should collapse
 *      the N engine runs (dedupCollapsed lands between 0 and
 *      (N-1) x cells, racing arrival order; > 0 on any real overlap),
 *   2. sustained — the N clients hammer the warm cell for a fixed
 *      wall-clock window, measuring served requests and cells/second.
 *
 * `--chaos` turns the sustained phase into a fault drill: a rotation
 * thread arms one trace_io failpoint set after another (ENOSPC, torn
 * renames, corrupt reads, EINTR storms — never a livelocking spec)
 * while the clients keep hammering, and every 200 body is checked
 * byte-for-byte against a fault-free reference. The run fails if any
 * request errors or any body drifts: injected cache faults must cost
 * only cache reuse, never correctness or availability.
 *
 * `--fleet` swaps the in-process Server for a real fleet::Fleet —
 * forked mgx_serve workers behind the consistent-hash proxy — and
 * the fault drill becomes process murder: `--kill-every-ms N` runs a
 * killer thread SIGKILLing one worker after another while the
 * clients hammer. Pass criteria: zero failed requests, zero body
 * drift, every worker restarted, and shutdown leaves no orphan
 * processes or sockets.
 *
 * Emits an `mgx-servebench-v1` (or `mgx-fleetbench-v1`) JSON document
 * on stdout for trajectory tracking; the human-readable line goes to
 * stderr.
 */

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "common/failpoint.h"
#include "fleet/fleet.h"
#include "serve/client.h"
#include "serve/server.h"

namespace {

using namespace mgx;
using Clock = std::chrono::steady_clock;

struct Options
{
    unsigned clients = 4;
    double seconds = 2.0;
    std::string workload = "core/matmul";
    std::string schemes = "NP,BP";
    bool chaos = false;
    bool fleet = false;
    int fleetWorkers = 3;
    int killEveryMs = 2000; ///< 0 = no killer (fleet mode)
};

/**
 * The chaos rotation: every entry is a complete MGX_FAILPOINTS-style
 * list armed for one slice of the sustained window. Specs are
 * recurring (every:N / prob) so faults keep firing across requests.
 * `lock.eintr=always` is deliberately absent — the flock retry loop
 * would livelock; an every:2 storm exercises the same retry path and
 * always makes progress.
 */
const char *const kChaosRotation[] = {
    "trace_io.read.open=every:3,trace_io.read.corrupt=every:2",
    "trace_io.write.open=every:2,trace_io.write.enospc=every:3",
    "trace_io.write.short=every:3,trace_io.write.torn=every:2",
    "trace_io.lock.open=every:3,trace_io.lock.eintr=every:2",
    "trace_io.read.corrupt=prob:0.5:1234,trace_io.write.enospc=prob:0.5:5678",
};

/**
 * The fleet drill: forked mgx_serve workers behind the proxy, a
 * killer SIGKILLing one after another, clients that must never see a
 * failure or a drifted body. Returns the process exit code.
 */
int
runFleetBench(const Options &opt)
{
    namespace fs = std::filesystem;
    const std::string tag = std::to_string(::getpid());
    const fs::path dir =
        fs::temp_directory_path() / ("mgx-fleet-bench-" + tag);
    fs::create_directories(dir);

    fleet::FleetOptions fopts;
    fopts.supervisor.workers = opt.fleetWorkers;
    fopts.supervisor.socketDir = dir.string();
    fopts.supervisor.traceCacheDir = (dir / "cache").string();
    fopts.supervisor.probeIntervalMs = 100;
    fopts.supervisor.restartBackoffMs = 100;
    // Deliberate murder is not flapping: a worker that survives its
    // first half second is "stable", so the killer's cadence never
    // trips the breaker and parks the very recovery being measured.
    fopts.supervisor.flapWindowMs = 500;
    fopts.proxy.listen.unixPath = (dir / "proxy.sock").string();
    fopts.proxy.failoverPauseMs = 50;
    fleet::Fleet f(fopts);
    f.start();
    const serve::SocketAddress addr{fopts.proxy.listen.unixPath,
                                    "127.0.0.1", 0};
    const std::string target =
        "/run?workload=" + serve::percentEncode(opt.workload) +
        "&schemes=" + opt.schemes;

    // Warm the shared trace cache, then take the reference from the
    // warm path: from here on every worker deserializes the same
    // cached traces, so every answer must be bitwise identical.
    std::string reference;
    {
        serve::HttpResponse resp;
        std::string error;
        serve::RetryOptions retry;
        retry.retries = 3;
        for (int i = 0; i < 2; ++i) {
            if (!serve::httpGetRetry(addr, target, &resp, &error,
                                     120000, retry) ||
                resp.status != 200) {
                std::fprintf(stderr,
                             "bench_serve_load: fleet warmup failed: "
                             "%d %s\n",
                             resp.status, error.c_str());
                f.shutdown();
                fs::remove_all(dir);
                return 1;
            }
        }
        reference = resp.body;
    }

    std::atomic<bool> stop{false};
    std::atomic<unsigned long long> kills{0};
    std::thread killer;
    if (opt.killEveryMs > 0) {
        killer = std::thread([&] {
            std::size_t next = 0;
            while (!stop.load(std::memory_order_acquire)) {
                for (int waited = 0;
                     waited < opt.killEveryMs &&
                     !stop.load(std::memory_order_acquire);
                     waited += 20)
                    std::this_thread::sleep_for(
                        std::chrono::milliseconds(20));
                if (stop.load(std::memory_order_acquire))
                    break;
                const auto workers = f.supervisor().status();
                // Round-robin through the fleet so every worker gets
                // murdered, not just the unlucky ring owner.
                for (std::size_t i = 0; i < workers.size(); ++i) {
                    const auto &w =
                        workers[(next + i) % workers.size()];
                    if (w.pid > 0 && ::kill(w.pid, SIGKILL) == 0) {
                        kills.fetch_add(1);
                        next = (next + i + 1) % workers.size();
                        break;
                    }
                }
            }
        });
    }

    std::atomic<unsigned long long> ok{0};
    std::atomic<unsigned long long> failed{0};
    std::atomic<unsigned long long> mismatches{0};
    serve::RetryStats all_stats;
    std::mutex stats_mu;
    const auto start = Clock::now();
    const auto deadline =
        start + std::chrono::duration_cast<Clock::duration>(
                    std::chrono::duration<double>(opt.seconds));
    std::vector<std::thread> threads;
    for (unsigned i = 0; i < opt.clients; ++i) {
        threads.emplace_back([&] {
            serve::RetryOptions retry;
            retry.retries = 3;
            retry.backoffMs = 50;
            serve::RetryStats mine;
            while (Clock::now() < deadline) {
                serve::HttpResponse resp;
                std::string error;
                if (serve::httpGetRetry(addr, target, &resp, &error,
                                        120000, retry, nullptr,
                                        &mine) &&
                    resp.status == 200) {
                    ok.fetch_add(1);
                    if (resp.body != reference)
                        mismatches.fetch_add(1);
                } else {
                    failed.fetch_add(1);
                }
            }
            std::lock_guard<std::mutex> lock(stats_mu);
            all_stats.add(mine);
        });
    }
    for (auto &t : threads)
        t.join();
    const double secs =
        std::chrono::duration<double>(Clock::now() - start).count();
    stop.store(true, std::memory_order_release);
    if (killer.joinable())
        killer.join();

    // Recovery: every worker must come back after the last kill.
    bool all_restarted = false;
    const auto recover_deadline =
        Clock::now() + std::chrono::seconds(10);
    while (Clock::now() < recover_deadline) {
        const auto workers = f.supervisor().status();
        all_restarted = true;
        for (const auto &w : workers)
            all_restarted =
                all_restarted && w.pid > 0 && w.inRotation;
        if (all_restarted)
            break;
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }

    const u64 restarts = f.supervisor().restartCount();
    const u64 failovers = f.proxy().metrics().failovers.load();
    const u64 routed = f.proxy().metrics().routed.load();

    // Shutdown hygiene: no worker survives, no socket lingers.
    std::vector<pid_t> pids;
    for (const auto &w : f.supervisor().status())
        if (w.pid > 0)
            pids.push_back(w.pid);
    f.shutdown();
    unsigned orphans = 0;
    for (const pid_t pid : pids)
        if (::kill(pid, 0) == 0)
            ++orphans;
    unsigned leftover_sockets = 0;
    std::error_code ec;
    for (const auto &entry : fs::directory_iterator(dir, ec))
        if (entry.path().extension() == ".sock")
            ++leftover_sockets;
    fs::remove_all(dir);

    const bool clean = failed.load() == 0 && mismatches.load() == 0 &&
                       orphans == 0 && leftover_sockets == 0 &&
                       (opt.killEveryMs == 0 ||
                        (kills.load() > 0 && all_restarted));

    std::fprintf(
        stderr,
        "bench_serve_load: fleet %d workers, %.1fs: %llu ok, "
        "%llu failed, %llu drifted, %llu kills, %llu restarts, "
        "%llu failovers, retried partials %llu, connects %llu%s\n",
        opt.fleetWorkers, secs, ok.load(), failed.load(),
        mismatches.load(), kills.load(),
        static_cast<unsigned long long>(restarts),
        static_cast<unsigned long long>(failovers),
        static_cast<unsigned long long>(all_stats.partialResponses),
        static_cast<unsigned long long>(all_stats.connectFailures),
        clean ? "" : "  ** FAIL **");

    std::printf(
        "{\n  \"schema\": \"mgx-fleetbench-v1\",\n"
        "  \"clients\": %u,\n  \"workers\": %d,\n"
        "  \"workload\": \"%s\",\n  \"schemes\": \"%s\",\n"
        "  \"seconds\": %.6f,\n  \"requests\": %llu,\n"
        "  \"requestsPerSecond\": %.3f,\n"
        "  \"failed\": %llu,\n  \"bodyMismatches\": %llu,\n"
        "  \"kills\": %llu,\n  \"restarts\": %llu,\n"
        "  \"failovers\": %llu,\n  \"routed\": %llu,\n"
        "  \"clientRetries\": {\"attempts\": %llu, "
        "\"connectFailures\": %llu, \"partialResponses\": %llu, "
        "\"recvFailures\": %llu, \"backpressure\": %llu},\n"
        "  \"allRestarted\": %s,\n  \"orphans\": %u,\n"
        "  \"leftoverSockets\": %u\n}\n",
        opt.clients, opt.fleetWorkers, opt.workload.c_str(),
        opt.schemes.c_str(), secs, ok.load(),
        secs > 0 ? ok.load() / secs : 0.0, failed.load(),
        mismatches.load(), kills.load(),
        static_cast<unsigned long long>(restarts),
        static_cast<unsigned long long>(failovers),
        static_cast<unsigned long long>(routed),
        static_cast<unsigned long long>(all_stats.attempts),
        static_cast<unsigned long long>(all_stats.connectFailures),
        static_cast<unsigned long long>(all_stats.partialResponses),
        static_cast<unsigned long long>(all_stats.recvFailures),
        static_cast<unsigned long long>(all_stats.backpressure),
        all_restarted ? "true" : "false", orphans,
        leftover_sockets);
    return clean ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr,
                             "bench_serve_load: %s needs a value\n",
                             arg.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--clients")
            opt.clients = static_cast<unsigned>(
                std::strtoul(value(), nullptr, 10));
        else if (arg == "--seconds")
            opt.seconds = std::strtod(value(), nullptr);
        else if (arg == "--workload")
            opt.workload = value();
        else if (arg == "--schemes")
            opt.schemes = value();
        else if (arg == "--chaos")
            opt.chaos = true;
        else if (arg == "--fleet")
            opt.fleet = true;
        else if (arg == "--fleet-workers")
            opt.fleetWorkers = static_cast<int>(
                std::strtol(value(), nullptr, 10));
        else if (arg == "--kill-every-ms")
            opt.killEveryMs = static_cast<int>(
                std::strtol(value(), nullptr, 10));
        else {
            std::fprintf(stderr,
                         "usage: bench_serve_load [--clients N] "
                         "[--seconds S] [--workload W] [--schemes "
                         "S,...] [--chaos] [--fleet "
                         "[--fleet-workers N] [--kill-every-ms N]]\n");
            return 2;
        }
    }
    if (opt.clients == 0)
        opt.clients = 1;
    if (opt.fleet) {
        if (opt.chaos) {
            // trace_io failpoints arm in *this* process; the fleet's
            // faults are real SIGKILLs in the workers instead.
            std::fprintf(stderr, "bench_serve_load: --chaos and "
                                 "--fleet are mutually exclusive\n");
            return 2;
        }
        return runFleetBench(opt);
    }

    const std::string tag = std::to_string(::getpid());
    const std::string sock = "/tmp/mgx-serve-bench-" + tag + ".sock";
    const std::string cache_dir =
        std::filesystem::temp_directory_path() /
        ("mgx-serve-bench-cache-" + tag);

    serve::ServerOptions sopts;
    sopts.listen.unixPath = sock;
    sopts.workers = opt.clients;
    sopts.admissionCapacity = opt.clients * 2;
    sopts.traceCacheDir = cache_dir;
    serve::Server server(sopts);
    server.start();

    const std::string target =
        "/run?workload=" + serve::percentEncode(opt.workload) +
        "&schemes=" + opt.schemes;
    const serve::SocketAddress addr{sock, "127.0.0.1", 0};

    // --- Phase 1: cold burst -------------------------------------
    std::atomic<unsigned> ready{0};
    std::atomic<bool> go{false};
    std::atomic<unsigned> burst_ok{0};
    std::vector<std::thread> threads;
    for (unsigned i = 0; i < opt.clients; ++i) {
        threads.emplace_back([&] {
            ready.fetch_add(1);
            while (!go.load(std::memory_order_acquire))
                std::this_thread::yield();
            serve::HttpResponse resp;
            std::string error;
            if (serve::httpGet(addr, target, &resp, &error) &&
                resp.status == 200)
                burst_ok.fetch_add(1);
        });
    }
    while (ready.load() < opt.clients)
        std::this_thread::yield();
    const auto burst_start = Clock::now();
    go.store(true, std::memory_order_release);
    for (auto &t : threads)
        t.join();
    const double burst_secs =
        std::chrono::duration<double>(Clock::now() - burst_start)
            .count();
    const auto after_burst = server.metricsSnapshot();

    // --- Phase 2: sustained warm-cache load ----------------------
    // Fault-free reference body for --chaos byte-identity: the serve
    // layer promises injected cache faults never change a response.
    std::string reference;
    if (opt.chaos) {
        serve::HttpResponse resp;
        std::string error;
        if (!serve::httpGet(addr, target, &resp, &error) ||
            resp.status != 200) {
            std::fprintf(stderr,
                         "bench_serve_load: reference request failed: "
                         "%s\n",
                         error.c_str());
            return 1;
        }
        reference = resp.body;
    }

    std::atomic<unsigned long long> sustained_ok{0};
    std::atomic<unsigned long long> sustained_failed{0};
    std::atomic<unsigned long long> body_mismatches{0};
    std::atomic<unsigned long long> chaos_rotations{0};
    std::atomic<bool> stop_chaos{false};
    const auto deadline =
        Clock::now() + std::chrono::duration_cast<Clock::duration>(
                           std::chrono::duration<double>(opt.seconds));
    threads.clear();
    const auto sustained_start = Clock::now();

    std::thread chaos;
    if (opt.chaos) {
        chaos = std::thread([&] {
            std::size_t i = 0;
            while (!stop_chaos.load(std::memory_order_acquire)) {
                failpoint::disarmAll();
                failpoint::armSpecList(
                    kChaosRotation[i++ %
                                   (sizeof kChaosRotation /
                                    sizeof kChaosRotation[0])]);
                chaos_rotations.fetch_add(1);
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(100));
            }
            failpoint::disarmAll();
        });
    }

    for (unsigned i = 0; i < opt.clients; ++i) {
        threads.emplace_back([&] {
            while (Clock::now() < deadline) {
                serve::HttpResponse resp;
                std::string error;
                if (serve::httpGet(addr, target, &resp, &error) &&
                    resp.status == 200) {
                    sustained_ok.fetch_add(1);
                    if (opt.chaos && resp.body != reference)
                        body_mismatches.fetch_add(1);
                } else if (opt.chaos) {
                    // Under trace_io chaos every request must still
                    // be answered: faults cost reuse, not service.
                    sustained_failed.fetch_add(1);
                }
            }
        });
    }
    for (auto &t : threads)
        t.join();
    if (chaos.joinable()) {
        stop_chaos.store(true, std::memory_order_release);
        chaos.join();
    }
    const double sustained_secs =
        std::chrono::duration<double>(Clock::now() - sustained_start)
            .count();

    const auto final_stats = server.metricsSnapshot();
    server.shutdown();

    // Injected read corruption must leave quarantine evidence, not
    // wedge the cache: count the `.trace.bad` files before cleanup.
    unsigned long long quarantined = 0;
    if (opt.chaos) {
        std::error_code ec;
        for (const auto &entry : std::filesystem::directory_iterator(
                 cache_dir, ec))
            if (entry.path().filename().string().find(".trace.bad") !=
                std::string::npos)
                ++quarantined;
    }
    std::filesystem::remove_all(cache_dir);

    const unsigned cells_per_request =
        [&] {
            unsigned n = 1;
            for (char c : opt.schemes)
                if (c == ',')
                    ++n;
            return n;
        }();
    const unsigned long long sustained_cells =
        sustained_ok.load() * cells_per_request;
    const double cells_per_sec =
        sustained_secs > 0 ? sustained_cells / sustained_secs : 0;

    std::fprintf(stderr,
                 "bench_serve_load: %u clients, burst %.3fs "
                 "(%u ok, collapsed %llu, cellsRun %llu), sustained "
                 "%.1fs: %llu requests, %.1f cells/s\n",
                 opt.clients, burst_secs, burst_ok.load(),
                 static_cast<unsigned long long>(
                     after_burst.dedupCollapsed),
                 static_cast<unsigned long long>(after_burst.cellsRun),
                 sustained_secs,
                 static_cast<unsigned long long>(sustained_ok.load()),
                 cells_per_sec);
    if (opt.chaos)
        std::fprintf(stderr,
                     "bench_serve_load: chaos %llu rotations, "
                     "%llu failures, %llu body mismatches, "
                     "%llu quarantined\n",
                     chaos_rotations.load(), sustained_failed.load(),
                     body_mismatches.load(), quarantined);

    std::printf(
        "{\n  \"schema\": \"mgx-servebench-v1\",\n"
        "  \"clients\": %u,\n  \"workload\": \"%s\",\n"
        "  \"schemes\": \"%s\",\n"
        "  \"burst\": {\"seconds\": %.6f, \"ok\": %u, "
        "\"cellsRun\": %llu, \"dedupCollapsed\": %llu},\n"
        "  \"sustained\": {\"seconds\": %.6f, \"requests\": %llu, "
        "\"cellsPerSecond\": %.3f},\n"
        "  \"chaos\": {\"enabled\": %s, \"rotations\": %llu, "
        "\"failures\": %llu, \"bodyMismatches\": %llu, "
        "\"quarantined\": %llu},\n"
        "  \"stats\": {\"served\": %llu, \"rejected\": %llu, "
        "\"traceCacheHits\": %llu, \"traceCacheMisses\": %llu}\n}\n",
        opt.clients, opt.workload.c_str(), opt.schemes.c_str(),
        burst_secs, burst_ok.load(),
        static_cast<unsigned long long>(after_burst.cellsRun),
        static_cast<unsigned long long>(after_burst.dedupCollapsed),
        sustained_secs,
        static_cast<unsigned long long>(sustained_ok.load()),
        cells_per_sec, opt.chaos ? "true" : "false",
        chaos_rotations.load(), sustained_failed.load(),
        body_mismatches.load(), quarantined,
        static_cast<unsigned long long>(final_stats.served),
        static_cast<unsigned long long>(final_stats.rejected),
        static_cast<unsigned long long>(final_stats.traceCacheHits),
        static_cast<unsigned long long>(final_stats.traceCacheMisses));

    const bool chaos_clean =
        body_mismatches.load() == 0 && sustained_failed.load() == 0;
    return burst_ok.load() == opt.clients && chaos_clean ? 0 : 1;
}
