/**
 * @file
 * §VII-A H.264 study: traffic and execution time of the decoder's
 * frame-buffer accesses under each scheme, plus a functional
 * correctness pass of the CTR_IN || F VN rule through SecureMemory
 * (the paper's RTL-simulation check, reproduced functionally).
 */

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "protection/secure_memory.h"
#include "video/video_kernel.h"

int
main()
{
    using namespace mgx;
    using protection::Scheme;

    std::printf("H.264 decoder case study (Figs. 17-19)\n");

    // Timing: a 1080p IBPB stream.
    const std::string w = "video/h264?frames=16";
    sim::ResultSet rs = sim::Experiment()
                            .workload(w)
                            .schemes(sim::allSchemes())
                            .run();
    bench::printHeader("1080p IBPB decode, 16 frames",
                       {"scheme", "norm-time", "traffic"});
    for (Scheme s : sim::allSchemes()) {
        bench::printRow(
            protection::schemeName(s),
            {rs.normalizedTime(w, "Genome", s).value(),
             rs.trafficIncrease(w, "Genome", s).value()});
    }

    // Functional pass: decode QCIF frames through SecureMemory and
    // verify that every inter-prediction read decrypts correctly.
    video::VideoConfig f;
    f.width = 176;
    f.height = 144;
    f.bytesPerPixel = 1.5;
    f.numFrames = 12;
    video::VideoKernel vk(f);
    vk.generate();

    protection::SecureMemoryConfig mcfg;
    mcfg.encKey[0] = 0x11;
    mcfg.macKey[0] = 0x22;
    protection::SecureMemory mem(mcfg);
    const u64 fb = (f.frameBytes() + 511) & ~511ull;

    u64 verified_reads = 0;
    bool all_ok = true;
    for (const auto &frame : video::buildDecodeSchedule(f)) {
        for (std::size_t r = 0; r < frame.refDisplayNumbers.size();
             ++r) {
            std::vector<u8> ref(fb);
            all_ok &= mem.read(
                vk.bufferAddr(frame.refBufferIndices[r]), ref,
                vk.frameVn(frame.refDisplayNumbers[r]));
            ++verified_reads;
        }
        std::vector<u8> pixels(fb,
                               static_cast<u8>(frame.displayNumber));
        mem.write(vk.bufferAddr(frame.bufferIndex), pixels,
                  vk.frameVn(frame.displayNumber));
    }
    std::printf("\nfunctional decode: %llu reference reads, "
                "all verified: %s\n",
                static_cast<unsigned long long>(verified_reads),
                all_ok ? "yes" : "NO");
    return all_ok ? 0 : 1;
}
