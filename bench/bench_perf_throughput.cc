/**
 * @file
 * Simulator-throughput benchmark: how fast the timing model itself
 * replays traces, measured in simulated 64-byte DRAM lines per wall
 * second. This quantifies the *simulator* (the repo's hot path), not
 * the modeled hardware — the companion of bench_micro's substrate
 * numbers and the source of the BENCH_perf.json trajectory artifact.
 *
 * Each (workload, scheme) cell generates the trace once, then replays
 * it through a fresh DramSystem + ProtectionEngine + PerfModel until
 * the wall-time budget is spent. Every replay of a trace is
 * deterministic, so the bench also asserts that repeated replays
 * produce identical cycle counts — a cheap self-check that the hot
 * path stays bitwise-stable while it is being optimized.
 *
 * Usage:
 *   bench_perf_throughput [--set micro|full] [--min-seconds S]
 *                         [--json FILE] [--quiet]
 *
 * Besides the replay cells, the bench times a fixed AES-128 loop and
 * reports it as a calibration score: lines-per-second divided by the
 * score is roughly hardware-independent, so CI can normalize a fresh
 * measurement to the committed baseline's runner before applying its
 * regression gate.
 *
 * JSON schema "mgx-bench-v1": {schema, bench, unit,
 *   calibration: {aesBlocksPerSecond, blocks, wallSeconds, checksum},
 *   results:[
 *   {workload, platform, scheme, mode (replay|stream|pipeline|shard),
 *    linesPerSecond, wallSeconds, replays, linesPerReplay,
 *    cyclesPerReplay, traceBytes, tracePhases}]}
 */

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "crypto/aes128.h"
#include "sim/experiment.h"
#include "sim/pipeline.h"
#include "sim/report.h"
#include "sim/shard.h"
#include "sim/workload_registry.h"

namespace {

using namespace mgx;
using Clock = std::chrono::steady_clock;

struct CellResult
{
    std::string workload;
    std::string platform;
    protection::Scheme scheme = protection::Scheme::NP;
    /**
     * Measurement axis: "replay" times the materialized hot path,
     * "stream" generates + replays serially per rep, "pipeline" runs
     * the same end-to-end stream with generation and replay on two
     * threads over the SPSC phase ring (sim/pipeline.h), "shard"
     * replays each rep's stream channel-sharded over a width-4
     * ShardPool (sim/shard.h).
     */
    const char *mode = "replay";
    double linesPerSecond = 0.0;
    double wallSeconds = 0.0;
    u64 replays = 0;
    u64 linesPerReplay = 0;
    Cycles cyclesPerReplay = 0;
    u64 traceBytes = 0;
    u64 tracePhases = 0;
};

double
secondsSince(Clock::time_point t0)
{
    return std::chrono::duration<double>(Clock::now() - t0).count();
}

/** Hardware calibration score (see file header). */
struct Calibration
{
    double aesBlocksPerSecond = 0.0;
    double wallSeconds = 0.0;
    u64 blocks = 0;
    u8 checksum = 0; ///< fold of the final block (pins determinism)
};

/**
 * Time a fixed, dependency-chained AES-128 encryption loop. The work
 * is deterministic and compute-bound with a tiny footprint, so the
 * score tracks the single-core speed of the machine rather than the
 * simulator — the denominator CI uses to compare runners.
 */
Calibration
measureCalibration()
{
    Calibration cal;
    cal.blocks = 1u << 20;
    const crypto::Key key = {0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae,
                             0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88,
                             0x09, 0xcf, 0x4f, 0x3c};
    const crypto::Aes128 aes(key);
    crypto::Block block = {};
    const auto t0 = Clock::now();
    // Each encryption consumes the previous ciphertext, so the chain
    // cannot be reordered or elided.
    for (u64 i = 0; i < cal.blocks; ++i)
        block = aes.encryptBlock(block);
    cal.wallSeconds = secondsSince(t0);
    for (u8 b : block)
        cal.checksum ^= b;
    cal.aesBlocksPerSecond =
        static_cast<double>(cal.blocks) / cal.wallSeconds;
    return cal;
}

/** Which thread shape the streamed axis runs under. */
enum class StreamAxis { Serial, Pipelined, Sharded };

/**
 * Stream @p workload end to end (fresh kernel, pull-based replay, no
 * materialized trace) under @p scheme until the budget is spent — the
 * throughput of the streaming pipeline, generation included. With
 * StreamAxis::Pipelined, generation and replay run on two threads
 * over the SPSC phase ring instead of interleaving on one; with
 * StreamAxis::Sharded, replay is channel-sharded over a width-4
 * ShardPool. Same work, same results either way (the self-check still
 * compares cycle counts), different wall clock on a multi-core host.
 */
CellResult
measureStreamedCell(const std::string &workload,
                    const sim::Platform &platform,
                    protection::Scheme scheme, double min_seconds,
                    StreamAxis axis = StreamAxis::Serial)
{
    CellResult cell;
    cell.workload = workload;
    cell.platform = platform.name;
    cell.scheme = scheme;
    cell.mode = axis == StreamAxis::Pipelined ? "pipeline"
                : axis == StreamAxis::Sharded ? "shard"
                                              : "stream";

    protection::ProtectionConfig cfg;
    cfg.scheme = scheme;

    const auto t0 = Clock::now();
    Cycles cycles = 0;
    u64 lines = 0;
    u64 reps = 0;
    do {
        dram::DramSystem dram(platform.dram);
        protection::ProtectionEngine engine(cfg, &dram);
        sim::PerfModel model(&engine, platform.clockMhz);
        auto kernel = sim::makeKernel(workload, platform);
        auto source = kernel->stream();
        sim::RunResult r;
        switch (axis) {
        case StreamAxis::Pipelined:
            r = sim::runPipelined(model, *source);
            break;
        case StreamAxis::Sharded: {
            sim::ShardPool shard(dram, 4);
            r = model.run(*source, shard);
            break;
        }
        case StreamAxis::Serial:
            r = model.run(*source);
            break;
        }
        if (reps == 0) {
            cycles = r.totalCycles;
            lines = dram.accessCount();
            cell.traceBytes = r.peakPhaseBytes; // stream high-water mark
            cell.tracePhases = 0; // never materialized
        } else if (cycles != r.totalCycles ||
                   lines != dram.accessCount()) {
            std::fprintf(stderr,
                         "bench_perf_throughput: %s rep %llu of "
                         "%s/%s diverged (nondeterministic stream!)\n",
                         cell.mode,
                         static_cast<unsigned long long>(reps),
                         workload.c_str(),
                         protection::schemeName(scheme));
            std::exit(1);
        }
        ++reps;
    } while (reps < 2 || secondsSince(t0) < min_seconds);

    cell.wallSeconds = secondsSince(t0);
    cell.replays = reps;
    cell.linesPerReplay = lines;
    cell.cyclesPerReplay = cycles;
    cell.linesPerSecond = static_cast<double>(lines) *
                          static_cast<double>(reps) / cell.wallSeconds;
    return cell;
}

/** Replay @p trace under @p scheme until the time budget is spent. */
CellResult
measureCell(const std::string &workload, const sim::Platform &platform,
            const core::Trace &trace, protection::Scheme scheme,
            double min_seconds)
{
    CellResult cell;
    cell.workload = workload;
    cell.platform = platform.name;
    cell.scheme = scheme;
    cell.traceBytes = trace.memoryBytes();
    cell.tracePhases = trace.size();

    protection::ProtectionConfig cfg;
    cfg.scheme = scheme;

    const auto t0 = Clock::now();
    Cycles cycles = 0;
    u64 lines = 0;
    u64 reps = 0;
    do {
        dram::DramSystem dram(platform.dram);
        protection::ProtectionEngine engine(cfg, &dram);
        sim::PerfModel model(&engine, platform.clockMhz);
        const sim::RunResult r = model.run(trace);
        if (reps == 0) {
            cycles = r.totalCycles;
            lines = dram.accessCount();
        } else if (cycles != r.totalCycles ||
                   lines != dram.accessCount()) {
            std::fprintf(stderr,
                         "bench_perf_throughput: replay %llu of %s/%s "
                         "diverged (nondeterministic hot path!)\n",
                         static_cast<unsigned long long>(reps),
                         workload.c_str(),
                         protection::schemeName(scheme));
            std::exit(1);
        }
        ++reps;
    } while (reps < 2 || secondsSince(t0) < min_seconds);

    cell.wallSeconds = secondsSince(t0);
    cell.replays = reps;
    cell.linesPerReplay = lines;
    cell.cyclesPerReplay = cycles;
    cell.linesPerSecond = static_cast<double>(lines) *
                          static_cast<double>(reps) / cell.wallSeconds;
    return cell;
}

void
writeJson(const std::vector<CellResult> &cells, const Calibration &cal,
          std::ostream &out)
{
    char cnum[64];
    std::snprintf(cnum, sizeof cnum, "%.6g", cal.aesBlocksPerSecond);
    out << "{\n  \"schema\": \"mgx-bench-v1\",\n"
        << "  \"bench\": \"perf_throughput\",\n"
        << "  \"unit\": \"simulated_lines_per_second\",\n"
        << "  \"calibration\": {\"aesBlocksPerSecond\": " << cnum
        << ", \"blocks\": " << cal.blocks;
    std::snprintf(cnum, sizeof cnum, "%.6g", cal.wallSeconds);
    out << ", \"wallSeconds\": " << cnum
        << ", \"checksum\": " << static_cast<unsigned>(cal.checksum)
        << "},\n"
        << "  \"results\": [";
    bool first = true;
    for (const auto &c : cells) {
        char num[64];
        std::snprintf(num, sizeof num, "%.6g", c.linesPerSecond);
        out << (first ? "\n" : ",\n") << "    {\"workload\": \""
            << c.workload << "\", \"platform\": \"" << c.platform
            << "\", \"scheme\": \"" << protection::schemeName(c.scheme)
            << "\", \"mode\": \"" << c.mode
            << "\",\n     \"linesPerSecond\": " << num;
        std::snprintf(num, sizeof num, "%.6g", c.wallSeconds);
        out << ", \"wallSeconds\": " << num
            << ", \"replays\": " << c.replays
            << ",\n     \"linesPerReplay\": " << c.linesPerReplay
            << ", \"cyclesPerReplay\": " << c.cyclesPerReplay
            << ", \"traceBytes\": " << c.traceBytes
            << ", \"tracePhases\": " << c.tracePhases << "}";
        first = false;
    }
    out << "\n  ]\n}\n";
}

int
usage(std::FILE *out)
{
    std::fprintf(
        out,
        "usage: bench_perf_throughput [options]\n"
        "  --set micro|full    workload set (default micro)\n"
        "                      micro: the tiled-MatMul cells under\n"
        "                             NP/MGX/BP on the replay, stream,\n"
        "                             pipeline and shard axes, plus\n"
        "                             genome and video BP cells (the\n"
        "                             floor)\n"
        "                      full:  + dnn/resnet50 + graph/pokec\n"
        "  --min-seconds S     time budget per cell (default 0.5)\n"
        "  --json FILE         write the mgx-bench-v1 artifact\n"
        "  --quiet             suppress the table\n");
    return out == stdout ? 0 : 2;
}

/** One bench workload and the schemes it replays / streams under. */
struct WorkloadSpec
{
    const char *workload;
    std::vector<protection::Scheme> schemes;
    std::vector<protection::Scheme> streamedSchemes;
    std::vector<protection::Scheme> pipelinedSchemes;
    std::vector<protection::Scheme> shardedSchemes;
};

/**
 * The micro set covers every BP cell the perf gate watches: the
 * MatMul replay under all three headline schemes, plus one genome and
 * one video cell pinned to BP — the throughput floor — so the floor
 * is tracked across domains without full-set runtimes. The full set
 * adds the DNN and graph workloads, completing all five domains.
 */
std::vector<WorkloadSpec>
workloadSet(const std::string &set)
{
    using protection::Scheme;
    const std::vector<Scheme> all = {Scheme::NP, Scheme::MGX,
                                     Scheme::BP};
    const std::vector<Scheme> bp = {Scheme::BP};
    const std::vector<Scheme> none;
    // The MatMul cells also run on the streamed axis (fresh kernel +
    // pull-based replay per rep): the end-to-end throughput of the
    // default mgx_run path, tracked next to the pure-replay numbers.
    // The pipeline axis repeats the streamed cells over the two-thread
    // phase ring, so stream-vs-pipeline is a direct wall-clock
    // comparison of serial and pipelined single-cell replay; the
    // shard axis repeats them with replay channel-sharded over a
    // width-4 pool, the per-channel parallel path.
    std::vector<WorkloadSpec> specs = {
        {"core/matmul?m=256&n=256&k=256", all, all, all, all},
        {"genome/chr1PacBio?reads=2", bp, none, none, none},
        {"video/h264?frames=2", bp, none, none, none},
    };
    if (set == "full") {
        specs.push_back(
            {"dnn/resnet50?task=inference", all, none, none, none});
        specs.push_back({"graph/pokec/pagerank", all, all, bp, bp});
    }
    return specs;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string set = "micro";
    std::string json_path;
    double min_seconds = 0.5;
    bool quiet = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr,
                             "bench_perf_throughput: %s needs a value\n",
                             arg.c_str());
                std::exit(usage(stderr));
            }
            return argv[++i];
        };
        if (arg == "--help" || arg == "-h")
            return usage(stdout);
        if (arg == "--set")
            set = value();
        else if (arg == "--min-seconds")
            min_seconds = std::strtod(value(), nullptr);
        else if (arg == "--json")
            json_path = value();
        else if (arg == "--quiet" || arg == "-q")
            quiet = true;
        else {
            std::fprintf(stderr,
                         "bench_perf_throughput: unknown option '%s'\n",
                         arg.c_str());
            return usage(stderr);
        }
    }

    if (set != "micro" && set != "full") {
        std::fprintf(stderr,
                     "bench_perf_throughput: unknown set '%s'\n",
                     set.c_str());
        return usage(stderr);
    }

    const Calibration cal = measureCalibration();
    if (!quiet)
        std::printf("calibration: %.4g AES blocks/sec "
                    "(checksum %u)\n\n",
                    cal.aesBlocksPerSecond,
                    static_cast<unsigned>(cal.checksum));

    std::vector<CellResult> cells;
    const auto printCell = [quiet](const CellResult &c) {
        if (quiet)
            return;
        std::printf("%-34s %-8s %-8s %-8s %14.0f %9llu %8.2f\n",
                    c.workload.c_str(), c.platform.c_str(),
                    protection::schemeName(c.scheme),
                    c.mode, c.linesPerSecond,
                    static_cast<unsigned long long>(c.replays),
                    c.wallSeconds);
    };
    if (!quiet)
        std::printf("%-34s %-8s %-8s %-8s %14s %9s %8s\n", "workload",
                    "platform", "scheme", "mode", "lines/sec",
                    "replays", "wall(s)");
    for (const WorkloadSpec &spec : workloadSet(set)) {
        const std::string w = spec.workload;
        const sim::Platform platform = sim::defaultPlatform(w);
        const core::Trace trace =
            sim::makeKernel(w, platform)->generate();
        for (protection::Scheme s : spec.schemes) {
            cells.push_back(
                measureCell(w, platform, trace, s, min_seconds));
            printCell(cells.back());
        }
        for (protection::Scheme s : spec.streamedSchemes) {
            cells.push_back(
                measureStreamedCell(w, platform, s, min_seconds));
            printCell(cells.back());
        }
        for (protection::Scheme s : spec.pipelinedSchemes) {
            cells.push_back(
                measureStreamedCell(w, platform, s, min_seconds,
                                    StreamAxis::Pipelined));
            printCell(cells.back());
        }
        for (protection::Scheme s : spec.shardedSchemes) {
            cells.push_back(
                measureStreamedCell(w, platform, s, min_seconds,
                                    StreamAxis::Sharded));
            printCell(cells.back());
        }
    }

    if (!json_path.empty()) {
        std::ofstream out(json_path);
        if (!out) {
            std::fprintf(stderr,
                         "bench_perf_throughput: cannot write '%s'\n",
                         json_path.c_str());
            return 1;
        }
        writeJson(cells, cal, out);
        if (!quiet)
            std::printf("\nwrote %zu results to %s\n", cells.size(),
                        json_path.c_str());
    }
    return 0;
}
