/**
 * @file
 * google-benchmark microbenchmarks of the substrates: crypto
 * primitives, the Merkle tree, the DRAM timing model, the metadata
 * cache, and end-to-end trace generation. These quantify simulator
 * throughput, not modeled hardware performance.
 */

#include <benchmark/benchmark.h>

#include <vector>

#include "crypto/aes128.h"
#include "crypto/ctr_mode.h"
#include "crypto/mac.h"
#include "crypto/merkle_tree.h"
#include "crypto/sha256.h"
#include "dnn/dnn_kernel.h"
#include "dnn/models.h"
#include "dram/dram_system.h"
#include "protection/meta_cache.h"
#include "protection/protection_engine.h"
#include "sim/experiment.h"
#include "sim/workload_registry.h"

namespace {

using namespace mgx;

void
BM_AesEncryptBlock(benchmark::State &state)
{
    crypto::Key key{};
    key[0] = 1;
    crypto::Aes128 aes(key);
    crypto::Block block{};
    for (auto _ : state) {
        block = aes.encryptBlock(block);
        benchmark::DoNotOptimize(block);
    }
    state.SetBytesProcessed(static_cast<i64>(state.iterations()) * 16);
}
BENCHMARK(BM_AesEncryptBlock);

void
BM_CtrCrypt4k(benchmark::State &state)
{
    crypto::Key key{};
    crypto::CtrEngine engine(key);
    std::vector<u8> buf(4096, 0x5a);
    for (auto _ : state) {
        engine.crypt(0x1000, 7, buf);
        benchmark::DoNotOptimize(buf.data());
    }
    state.SetBytesProcessed(static_cast<i64>(state.iterations()) * 4096);
}
BENCHMARK(BM_CtrCrypt4k);

void
BM_CmacTag512(benchmark::State &state)
{
    crypto::Key key{};
    crypto::CmacEngine cmac(key);
    std::vector<u8> buf(512, 0x33);
    for (auto _ : state) {
        u64 tag = cmac.tag(buf, 0x2000, 9);
        benchmark::DoNotOptimize(tag);
    }
    state.SetBytesProcessed(static_cast<i64>(state.iterations()) * 512);
}
BENCHMARK(BM_CmacTag512);

void
BM_Sha256_64B(benchmark::State &state)
{
    std::vector<u8> buf(64, 0x77);
    for (auto _ : state) {
        auto digest = crypto::sha256(buf);
        benchmark::DoNotOptimize(digest);
    }
    state.SetBytesProcessed(static_cast<i64>(state.iterations()) * 64);
}
BENCHMARK(BM_Sha256_64B);

void
BM_MerkleUpdateLeaf(benchmark::State &state)
{
    crypto::MerkleTree tree(static_cast<std::size_t>(state.range(0)),
                            8);
    std::vector<u8> leaf(64, 0x11);
    std::size_t i = 0;
    for (auto _ : state) {
        tree.updateLeaf(i++ % tree.numLeaves(), leaf);
    }
}
BENCHMARK(BM_MerkleUpdateLeaf)->Arg(64)->Arg(4096)->Arg(262144);

void
BM_DramStream(benchmark::State &state)
{
    for (auto _ : state) {
        state.PauseTiming();
        dram::DramSystem sys(
            dram::ddr4_2400(static_cast<u32>(state.range(0))));
        state.ResumeTiming();
        benchmark::DoNotOptimize(
            sys.accessRange(0, 1 << 20, false, 0));
    }
    state.SetBytesProcessed(static_cast<i64>(state.iterations()) *
                            (1 << 20));
}
BENCHMARK(BM_DramStream)->Arg(1)->Arg(4);

void
BM_MetaCacheAccess(benchmark::State &state)
{
    protection::MetaCache cache(32 << 10, 8);
    Addr a = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(cache.access(a, false));
        a += 64;
    }
}
BENCHMARK(BM_MetaCacheAccess);

void
BM_ProtectionEngineStream(benchmark::State &state)
{
    const auto scheme =
        static_cast<protection::Scheme>(state.range(0));
    for (auto _ : state) {
        state.PauseTiming();
        dram::DramSystem dram(dram::ddr4_2400(4));
        protection::ProtectionConfig cfg;
        cfg.scheme = scheme;
        protection::ProtectionEngine engine(cfg, &dram);
        state.ResumeTiming();
        benchmark::DoNotOptimize(engine.access(
            {0, 1 << 20, 1, AccessType::Read, DataClass::Generic, 0},
            0));
    }
    state.SetBytesProcessed(static_cast<i64>(state.iterations()) *
                            (1 << 20));
}
BENCHMARK(BM_ProtectionEngineStream)
    ->Arg(static_cast<int>(protection::Scheme::NP))
    ->Arg(static_cast<int>(protection::Scheme::MGX))
    ->Arg(static_cast<int>(protection::Scheme::BP));

void
BM_DnnTraceGeneration(benchmark::State &state)
{
    for (auto _ : state) {
        dnn::DnnKernel kernel(dnn::resnet50(), dnn::cloudAccel());
        benchmark::DoNotOptimize(kernel.generate());
    }
}
BENCHMARK(BM_DnnTraceGeneration);

void
BM_RegistryMakeKernel(benchmark::State &state)
{
    // Name parse + model build, without trace generation.
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            sim::makeKernel("dnn/resnet50?task=inference"));
    }
}
BENCHMARK(BM_RegistryMakeKernel);

void
BM_ExperimentMatMulGrid(benchmark::State &state)
{
    // A full scheme grid through the experiment thread pool; range is
    // the worker count (0 = all cores), so the pool's scaling is
    // measurable against the serial baseline.
    for (auto _ : state) {
        sim::ResultSet rs =
            sim::Experiment()
                .workload("core/matmul?m=256&n=256&k=256")
                .threads(static_cast<u32>(state.range(0)))
                .run();
        benchmark::DoNotOptimize(rs.records().data());
    }
}
BENCHMARK(BM_ExperimentMatMulGrid)->Arg(1)->Arg(0);

} // namespace

BENCHMARK_MAIN();
