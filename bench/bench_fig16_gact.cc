/**
 * @file
 * Reproduces paper Fig. 16: normalized execution time of the GACT
 * genome-alignment accelerator under BP and MGX_VN for the nine
 * chr{1,X,Y} x {PacBio, ONT2D, ONT1D} workloads.
 *
 * Only MGX_VN is evaluated (as in the paper): GACT's chunk loads are
 * small, variable-sized and randomly placed, so coarse MACs do not
 * apply. Expected shape: BP ~1.14x average, MGX_VN ~1.04x; traffic
 * overhead BP ~34%, MGX_VN ~12.5%.
 */

#include "bench_util.h"
#include "genome/gact.h"

int
main()
{
    using namespace mgx;
    using protection::Scheme;

    std::printf("Figure 16: GACT normalized execution time\n");
    bench::printHeader("GACT (reference-guided assembly)",
                       {"workload", "MGX_VN", "BP", "t-MGX_VN",
                        "t-BP"});

    sim::Experiment experiment;
    for (const auto &workload : genome::paperWorkloads(64))
        experiment.workload("genome/" + workload.name);
    sim::ResultSet rs =
        experiment.schemes({Scheme::NP, Scheme::MGX_VN, Scheme::BP})
            .run();

    double sum_vn = 0, sum_bp = 0, sum_tvn = 0, sum_tbp = 0;
    int n = 0;
    for (const auto &workload : genome::paperWorkloads(64)) {
        const std::string w = "genome/" + workload.name;
        const double vn =
            rs.normalizedTime(w, "Genome", Scheme::MGX_VN).value();
        const double bp =
            rs.normalizedTime(w, "Genome", Scheme::BP).value();
        const double tvn =
            rs.trafficIncrease(w, "Genome", Scheme::MGX_VN).value();
        const double tbp =
            rs.trafficIncrease(w, "Genome", Scheme::BP).value();
        bench::printRow(workload.name, {vn, bp, tvn, tbp});
        sum_vn += vn;
        sum_bp += bp;
        sum_tvn += tvn;
        sum_tbp += tbp;
        ++n;
    }
    bench::printRow("average", {sum_vn / n, sum_bp / n, sum_tvn / n,
                                sum_tbp / n});
    std::printf("(paper: BP 14%% avg slowdown / 34%% traffic; "
                "MGX_VN 4%% / 12.5%%)\n");
    return 0;
}
