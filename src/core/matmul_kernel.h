/**
 * @file
 * The tiled matrix-multiplication kernel of paper §III-C / Fig. 4.
 *
 * C[M x N] = A[M x K] * B[K x N], with the K dimension split into
 * `kTiles` partial-sum rounds. Within one round every C tile is written
 * exactly once, so all C tiles share one VN value that increments once
 * per round — exactly the schedule of Fig. 4(c).
 */

#ifndef MGX_CORE_MATMUL_KERNEL_H
#define MGX_CORE_MATMUL_KERNEL_H

#include "kernel.h"

namespace mgx::core {

/** Shape and schedule parameters of the tiled MatMul. */
struct MatMulParams
{
    u64 m = 512;          ///< rows of A / C
    u64 n = 512;          ///< cols of B / C
    u64 k = 512;          ///< inner dimension
    u64 mTiles = 1;       ///< tiling of the M dimension
    u64 nTiles = 2;       ///< tiling of the N dimension
    u64 kTiles = 2;       ///< partial-sum rounds over K
    u32 elemBytes = 4;
    u64 peCount = 1024;   ///< MAC units, for the compute-cycle model
    Addr baseA = 0;       ///< where A lives in protected memory
    Addr baseB = 1ull << 24;
    Addr baseC = 1ull << 25;
    Vn initialVn = 0;     ///< VN with which A and B were pre-written
};

/** Fig. 4's kernel: generates the VN-annotated trace of the schedule. */
class MatMulKernel : public Kernel
{
  public:
    explicit MatMulKernel(const MatMulParams &params);

    std::string name() const override { return "tiled-matmul"; }

    /**
     * Stream the schedule's phases. The first emitted phase also
     * contains the initial writes of A and B with `initialVn`,
     * modeling the session setup that loads the operands into
     * protected memory.
     */
    std::unique_ptr<PhaseSource> stream() override;

    /** VN the final C tiles were written with (initialVn + kTiles). */
    Vn finalOutputVn() const;

    const MatMulParams &params() const { return params_; }

  private:
    class Source; // the streaming producer (matmul_kernel.cc)

    Addr tileAddrA(u64 mi, u64 ki) const;
    Addr tileAddrB(u64 ki, u64 ni) const;
    Addr tileAddrC(u64 mi, u64 ni) const;

    MatMulParams params_;
};

} // namespace mgx::core

#endif // MGX_CORE_MATMUL_KERNEL_H
