#include "vn_state.h"

#include "common/log.h"

namespace mgx::core {

Vn
VnState::counter(const std::string &name) const
{
    auto it = scalars_.find(name);
    return it == scalars_.end() ? 0 : it->second;
}

void
VnState::setCounter(const std::string &name, Vn value)
{
    scalars_[name] = value;
}

Vn
VnState::bumpCounter(const std::string &name)
{
    return ++scalars_[name];
}

void
VnState::makeTable(const std::string &name, std::size_t entries, Vn init)
{
    tables_[name].assign(entries, init);
}

const std::vector<Vn> &
VnState::findTable(const std::string &name) const
{
    auto it = tables_.find(name);
    if (it == tables_.end())
        panic("VnState: unknown table '%s'", name.c_str());
    return it->second;
}

Vn
VnState::table(const std::string &name, std::size_t idx) const
{
    const auto &t = findTable(name);
    if (idx >= t.size())
        panic("VnState: table '%s' index %zu out of range (%zu)",
              name.c_str(), idx, t.size());
    return t[idx];
}

void
VnState::setTable(const std::string &name, std::size_t idx, Vn value)
{
    auto &t = tables_[name];
    if (idx >= t.size())
        panic("VnState: table '%s' index %zu out of range (%zu)",
              name.c_str(), idx, t.size());
    t[idx] = value;
}

Vn
VnState::bumpTable(const std::string &name, std::size_t idx)
{
    auto &t = tables_[name];
    if (idx >= t.size())
        panic("VnState: table '%s' index %zu out of range (%zu)",
              name.c_str(), idx, t.size());
    return ++t[idx];
}

u64
VnState::onChipBytes() const
{
    u64 entries = scalars_.size();
    for (const auto &[name, t] : tables_)
        entries += t.size();
    return entries * sizeof(Vn);
}

void
VnState::clear()
{
    scalars_.clear();
    tables_.clear();
}

} // namespace mgx::core
