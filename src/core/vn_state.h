/**
 * @file
 * The kernel's on-chip VN program state.
 *
 * Everything a kernel needs to (re)generate version numbers lives here:
 * scalar counters (Iter for graph algorithms, CTR_genome/CTR_query for
 * Darwin, CTR_IN and the frame number for H.264, VN_W for weights) and
 * indexed tables (VN_F per layer's feature map, VN_G per gradient
 * tensor). The class also accounts for its own on-chip storage cost so
 * benches can report it (the paper quotes ~1 KB for a 127-layer DNN).
 */

#ifndef MGX_CORE_VN_STATE_H
#define MGX_CORE_VN_STATE_H

#include <map>
#include <string>
#include <vector>

#include "common/types.h"
#include "counter.h"

namespace mgx::core {

/** On-chip version-number state tracked by a kernel. */
class VnState
{
  public:
    // -- scalar counters --------------------------------------------------

    /** Read scalar counter @p name (created at zero on first use). */
    Vn counter(const std::string &name) const;

    /** Set scalar counter @p name. */
    void setCounter(const std::string &name, Vn value);

    /** Increment and return the new value. */
    Vn bumpCounter(const std::string &name);

    // -- indexed VN tables ------------------------------------------------

    /**
     * Create (or resize) table @p name with @p entries slots, all
     * initialized to @p init.
     */
    void makeTable(const std::string &name, std::size_t entries,
                   Vn init = 0);

    /** Read entry @p idx of table @p name. */
    Vn table(const std::string &name, std::size_t idx) const;

    /** Overwrite entry @p idx of table @p name. */
    void setTable(const std::string &name, std::size_t idx, Vn value);

    /** Increment entry @p idx and return the new value. */
    Vn bumpTable(const std::string &name, std::size_t idx);

    // -- bookkeeping -------------------------------------------------------

    /**
     * Total on-chip storage this state occupies, in bytes (8 bytes per
     * scalar counter or table entry).
     */
    u64 onChipBytes() const;

    /** Reset everything (new session / re-key). */
    void clear();

  private:
    const std::vector<Vn> &findTable(const std::string &name) const;

    std::map<std::string, Vn> scalars_;
    std::map<std::string, std::vector<Vn>> tables_;
};

} // namespace mgx::core

#endif // MGX_CORE_VN_STATE_H
