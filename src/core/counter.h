/**
 * @file
 * MGX counter construction (paper Fig. 6).
 *
 * The 128-bit AES-CTR counter is (64-bit address || 64-bit VN). The top
 * two bits of the VN carry a data-class tag so that features, weights
 * and gradients (and, in other domains, structurally distinct data
 * classes) can never produce colliding counters even when their raw VN
 * values coincide. The remaining 62 bits hold the kernel-generated
 * version value.
 */

#ifndef MGX_CORE_COUNTER_H
#define MGX_CORE_COUNTER_H

#include "common/log.h"
#include "common/types.h"

namespace mgx::core {

/** Number of tag bits reserved at the top of the VN. */
constexpr unsigned kVnTagBits = 2;

/** Usable width of the version value underneath the tag. */
constexpr unsigned kVnValueBits = 64 - kVnTagBits;

/** Largest raw version value before the kernel must re-key. */
constexpr Vn kVnValueMax = (Vn{1} << kVnValueBits) - 1;

/** 2-bit counter tags from Fig. 6 (graph/genome/video reuse the space). */
enum class VnTag : u8 {
    Feature = 0b00,  ///< also graph vectors, video frames
    Weight = 0b01,   ///< also graph matrices, genome tables
    Gradient = 0b10, ///< also genome query/traceback streams
    Aux = 0b11,      ///< spare class for kernel-defined data
};

/** Map a data class onto its 2-bit counter tag. */
constexpr VnTag
tagForClass(DataClass dc)
{
    switch (dc) {
      case DataClass::Feature:
      case DataClass::GraphVector:
      case DataClass::VideoFrame:
        return VnTag::Feature;
      case DataClass::Weight:
      case DataClass::GraphMatrix:
      case DataClass::GenomeTable:
        return VnTag::Weight;
      case DataClass::Gradient:
      case DataClass::GenomeQuery:
        return VnTag::Gradient;
      case DataClass::Generic:
        return VnTag::Aux;
    }
    return VnTag::Aux;
}

/**
 * Compose the full 64-bit VN from a tag and a raw version value.
 * Overflow of the 62-bit value space is a hard error: the paper's
 * remedy (re-encrypt under a fresh key) must be triggered by the
 * kernel before this point.
 */
inline Vn
makeVn(VnTag tag, Vn value)
{
    if (value > kVnValueMax)
        fatal("VN value overflow (%llu): kernel must re-key",
              static_cast<unsigned long long>(value));
    return (static_cast<Vn>(tag) << kVnValueBits) | value;
}

/** Convenience overload deriving the tag from the data class. */
inline Vn
makeVn(DataClass dc, Vn value)
{
    return makeVn(tagForClass(dc), value);
}

/** Extract the raw version value (drops the tag). */
constexpr Vn
vnValue(Vn vn)
{
    return vn & kVnValueMax;
}

/** Extract the tag bits. */
constexpr VnTag
vnTag(Vn vn)
{
    return static_cast<VnTag>(vn >> kVnValueBits);
}

} // namespace mgx::core

#endif // MGX_CORE_COUNTER_H
