#include "phase.h"

namespace mgx::core {

u64
traceDataBytes(const Trace &trace)
{
    u64 total = 0;
    for (const auto &phase : trace)
        for (const auto &acc : phase.accesses)
            total += acc.bytes;
    return total;
}

Cycles
traceComputeCycles(const Trace &trace)
{
    Cycles total = 0;
    for (const auto &phase : trace)
        total += phase.computeCycles;
    return total;
}

} // namespace mgx::core
