#include "phase.h"

namespace mgx::core {

u32
Trace::internName(const std::string &name)
{
    auto it = nameIndex_.find(name);
    if (it != nameIndex_.end())
        return it->second;
    const u32 offset = static_cast<u32>(names_.size());
    names_.insert(names_.end(), name.begin(), name.end());
    nameIndex_.emplace(name, offset);
    return offset;
}

void
Trace::push_back(const Phase &p)
{
    PhaseRec rec;
    rec.nameOffset = internName(p.name);
    rec.nameLength = static_cast<u32>(p.name.size());
    rec.accessBegin = accesses_.size();
    rec.accessCount = static_cast<u32>(p.accesses.size());
    rec.computeCycles = p.computeCycles;
    accesses_.insert(accesses_.end(), p.accesses.begin(),
                     p.accesses.end());
    computeCycles_ += p.computeCycles;
    phases_.push_back(rec);
}

void
Trace::appendAccess(const LogicalAccess &acc)
{
    // The last phase's run is the arena tail, so extending it is O(1).
    accesses_.push_back(acc);
    ++phases_.back().accessCount;
}

u64
traceDataBytes(const Trace &trace)
{
    return trace.dataBytes();
}

Cycles
traceComputeCycles(const Trace &trace)
{
    return trace.computeCycles();
}

} // namespace mgx::core
