/**
 * @file
 * A simulation phase: one schedulable step of accelerator execution
 * with its compute cost and the off-chip traffic it generates.
 *
 * Accelerators double-buffer: while tile i is computed, tile i+1's data
 * streams in and tile i-1's results stream out. The performance model
 * therefore charges each phase max(compute, memory) plus pipeline
 * fill/drain (see sim::PerfModel).
 */

#ifndef MGX_CORE_PHASE_H
#define MGX_CORE_PHASE_H

#include <string>
#include <vector>

#include "access.h"
#include "common/types.h"

namespace mgx::core {

/** One double-buffered execution step. */
struct Phase
{
    std::string name;          ///< for trace dumps and stats
    Cycles computeCycles = 0;  ///< accelerator-clock compute time
    AccessList accesses;       ///< off-chip traffic of this step
};

/** A whole workload: the ordered phase list one kernel run produces. */
using Trace = std::vector<Phase>;

/** Total data bytes moved by a trace (excludes protection metadata). */
u64 traceDataBytes(const Trace &trace);

/** Total compute cycles of a trace. */
Cycles traceComputeCycles(const Trace &trace);

} // namespace mgx::core

#endif // MGX_CORE_PHASE_H
