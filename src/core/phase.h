/**
 * @file
 * A simulation phase: one schedulable step of accelerator execution
 * with its compute cost and the off-chip traffic it generates.
 *
 * Accelerators double-buffer: while tile i is computed, tile i+1's data
 * streams in and tile i-1's results stream out. The performance model
 * therefore charges each phase max(compute, memory) plus pipeline
 * fill/drain (see sim::PerfModel).
 *
 * Kernels build phases with the plain `Phase` struct (an owning name
 * string plus an AccessList) and push them into a `Trace`. The Trace
 * itself stores an arena-backed compact layout: every access of every
 * phase lives in one flat array, phase names are interned into a
 * shared character arena, and iteration hands out lightweight views —
 * a trace of N phases costs three allocations-amortized arenas instead
 * of 2N+1 heap blocks. memoryBytes() reports the footprint so result
 * sinks can track it.
 */

#ifndef MGX_CORE_PHASE_H
#define MGX_CORE_PHASE_H

#include <cstddef>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "access.h"
#include "common/types.h"

namespace mgx::core {

/** One double-buffered execution step (builder form; see Trace). */
struct Phase
{
    std::string name;          ///< for trace dumps and stats
    Cycles computeCycles = 0;  ///< accelerator-clock compute time
    AccessList accesses;       ///< off-chip traffic of this step
};

/** Read-only view of one packed phase. */
struct PhaseView
{
    std::string_view name;     ///< interned; lives as long as the Trace
    Cycles computeCycles = 0;
    std::span<const LogicalAccess> accesses;
};

/** Mutable view: accesses may be edited in place (trace surgery). */
struct MutablePhaseView
{
    std::string_view name;
    Cycles computeCycles = 0;
    std::span<LogicalAccess> accesses;
};

/**
 * A whole workload: the ordered phase list one kernel run produces,
 * in the compact arena layout described in the file header.
 */
class Trace
{
  public:
    /** Append one phase; its name is interned, accesses packed. */
    void push_back(const Phase &p);

    /**
     * Append one access to the last pushed phase — the streaming
     * build path (trace parsers). The trace must not be empty.
     */
    void appendAccess(const LogicalAccess &acc);

    /** Pre-size the arenas (counts are hints, not limits). */
    void
    reserve(std::size_t phases, std::size_t accesses = 0)
    {
        phases_.reserve(phases);
        if (accesses != 0)
            accesses_.reserve(accesses);
    }

    std::size_t size() const { return phases_.size(); }
    bool empty() const { return phases_.empty(); }

    PhaseView
    operator[](std::size_t i) const
    {
        const PhaseRec &rec = phases_[i];
        return {nameOf(rec), rec.computeCycles,
                {accesses_.data() + rec.accessBegin, rec.accessCount}};
    }

    MutablePhaseView
    operator[](std::size_t i)
    {
        const PhaseRec &rec = phases_[i];
        return {nameOf(rec), rec.computeCycles,
                {accesses_.data() + rec.accessBegin, rec.accessCount}};
    }

    /** Forward iterator over PhaseView / MutablePhaseView values. */
    template <typename TraceT, typename ViewT>
    class Iter
    {
      public:
        using value_type = ViewT;
        using difference_type = std::ptrdiff_t;

        Iter() = default;
        Iter(TraceT *t, std::size_t i) : trace_(t), index_(i) {}

        ViewT operator*() const { return (*trace_)[index_]; }
        Iter &operator++() { ++index_; return *this; }
        Iter operator++(int) { Iter o = *this; ++index_; return o; }
        bool operator==(const Iter &o) const { return index_ == o.index_; }
        bool operator!=(const Iter &o) const { return index_ != o.index_; }

      private:
        TraceT *trace_ = nullptr;
        std::size_t index_ = 0;
    };

    using const_iterator = Iter<const Trace, PhaseView>;
    using iterator = Iter<Trace, MutablePhaseView>;

    const_iterator begin() const { return {this, 0}; }
    const_iterator end() const { return {this, phases_.size()}; }
    iterator begin() { return {this, 0}; }
    iterator end() { return {this, phases_.size()}; }

    /** All accesses of all phases, flat (analysis passes). */
    std::span<const LogicalAccess>
    allAccesses() const
    {
        return {accesses_.data(), accesses_.size()};
    }

    /**
     * Total data bytes moved (excludes protection metadata). Summed
     * from the arena on demand: mutable views may edit access sizes,
     * so a cached total could silently go stale.
     */
    u64
    dataBytes() const
    {
        u64 total = 0;
        for (const LogicalAccess &acc : accesses_)
            total += acc.bytes;
        return total;
    }

    /** Total compute cycles across phases. */
    Cycles computeCycles() const { return computeCycles_; }

    /** Heap footprint of the packed representation, in bytes. */
    u64
    memoryBytes() const
    {
        return accesses_.capacity() * sizeof(LogicalAccess) +
               phases_.capacity() * sizeof(PhaseRec) +
               names_.capacity() +
               nameIndex_.size() *
                   (sizeof(std::string) + 2 * sizeof(void *));
    }

  private:
    /** Packed per-phase record: 32 bytes, arena offsets only. */
    struct PhaseRec
    {
        u32 nameOffset = 0;   ///< into names_
        u32 nameLength = 0;
        u64 accessBegin = 0;  ///< into accesses_
        u32 accessCount = 0;
        Cycles computeCycles = 0;
    };

    std::string_view
    nameOf(const PhaseRec &rec) const
    {
        return {names_.data() + rec.nameOffset, rec.nameLength};
    }

    u32 internName(const std::string &name);

    std::vector<LogicalAccess> accesses_; ///< flat arena, phase-contiguous
    std::vector<PhaseRec> phases_;
    std::vector<char> names_;             ///< interned name characters
    std::unordered_map<std::string, u32> nameIndex_; ///< name -> offset
    Cycles computeCycles_ = 0; ///< views cannot edit compute, safe to cache
};

/** Total data bytes moved by a trace (excludes protection metadata). */
u64 traceDataBytes(const Trace &trace);

/** Total compute cycles of a trace. */
Cycles traceComputeCycles(const Trace &trace);

} // namespace mgx::core

#endif // MGX_CORE_PHASE_H
