/**
 * @file
 * Re-keying support (paper §IV-C): "If an overflow happens, MGX
 * requires the memory to be re-encrypted with a new key."
 *
 * The RekeyManager watches the kernel's VN consumption and, when a
 * counter approaches the 62-bit value space, emits the re-encryption
 * schedule: every live region is read under the old key/VN and
 * rewritten under the new key with VNs restarting from 1. The trace
 * it produces runs through the normal protection engine, so the cost
 * of a re-key is measurable like any other workload.
 */

#ifndef MGX_CORE_REKEY_H
#define MGX_CORE_REKEY_H

#include <vector>

#include "access.h"
#include "counter.h"
#include "phase.h"

namespace mgx::core {

/** One live region that must survive a re-key. */
struct LiveRegion
{
    Addr addr = 0;
    u64 bytes = 0;
    DataClass cls = DataClass::Generic;
    Vn currentVn = 0; ///< VN of the last write (raw value, no tag)
};

/** Plans and costs re-encryption epochs. */
class RekeyManager
{
  public:
    /**
     * @param headroom trigger a re-key when a VN value climbs within
     *        @p headroom of the 62-bit maximum (generous by default;
     *        tests use small values to exercise the path)
     */
    explicit RekeyManager(Vn headroom = Vn{1} << 32);

    /** True if @p vn_value is close enough to overflow to re-key. */
    bool needsRekey(Vn vn_value) const;

    /**
     * Build the re-encryption trace: for each region, a phase that
     * reads it with its current VN (old key) and rewrites it with
     * VN 1 (new key). Chunked so each phase moves at most
     * @p chunk_bytes (the on-chip staging buffer size).
     */
    Trace planRekey(const std::vector<LiveRegion> &regions,
                    u64 chunk_bytes = 1 << 20) const;

    /** Epoch counter: how many re-keys have been planned. */
    u64 epoch() const { return epoch_; }

  private:
    Vn headroom_;
    mutable u64 epoch_ = 0;
};

} // namespace mgx::core

#endif // MGX_CORE_REKEY_H
