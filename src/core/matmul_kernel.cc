#include "matmul_kernel.h"

#include "common/bitops.h"
#include "common/log.h"

namespace mgx::core {

MatMulKernel::MatMulKernel(const MatMulParams &params) : params_(params)
{
    if (params_.m % params_.mTiles || params_.n % params_.nTiles ||
        params_.k % params_.kTiles) {
        fatal("MatMul dimensions must divide evenly into tiles");
    }
    state_.setCounter("VN[A]", params_.initialVn);
    state_.setCounter("VN[B]", params_.initialVn);
    state_.setCounter("VN[C]", params_.initialVn);
}

Addr
MatMulKernel::tileAddrA(u64 mi, u64 ki) const
{
    const u64 tile_bytes =
        (params_.m / params_.mTiles) * (params_.k / params_.kTiles) *
        params_.elemBytes;
    return params_.baseA + (mi * params_.kTiles + ki) * tile_bytes;
}

Addr
MatMulKernel::tileAddrB(u64 ki, u64 ni) const
{
    const u64 tile_bytes =
        (params_.k / params_.kTiles) * (params_.n / params_.nTiles) *
        params_.elemBytes;
    return params_.baseB + (ki * params_.nTiles + ni) * tile_bytes;
}

Addr
MatMulKernel::tileAddrC(u64 mi, u64 ni) const
{
    const u64 tile_bytes =
        (params_.m / params_.mTiles) * (params_.n / params_.nTiles) *
        params_.elemBytes;
    return params_.baseC + (mi * params_.nTiles + ni) * tile_bytes;
}

Trace
MatMulKernel::generate()
{
    const u64 tm = params_.m / params_.mTiles;
    const u64 tn = params_.n / params_.nTiles;
    const u64 tk = params_.k / params_.kTiles;
    const u64 bytes_a = tm * tk * params_.elemBytes;
    const u64 bytes_b = tk * tn * params_.elemBytes;
    const u64 bytes_c = tm * tn * params_.elemBytes;
    const Vn vn_in = makeVn(DataClass::Generic, params_.initialVn);

    Trace trace;
    trace.reserve(1 + params_.kTiles * params_.mTiles * params_.nTiles);

    // Session setup: the host loads A and B with the initial VN.
    Phase setup;
    setup.name = "load-operands";
    setup.accesses.reserve(params_.mTiles * params_.kTiles +
                           params_.kTiles * params_.nTiles);
    for (u64 mi = 0; mi < params_.mTiles; ++mi)
        for (u64 ki = 0; ki < params_.kTiles; ++ki)
            setup.accesses.push_back({tileAddrA(mi, ki), bytes_a, vn_in,
                                      AccessType::Write,
                                      DataClass::Generic, 0});
    for (u64 ki = 0; ki < params_.kTiles; ++ki)
        for (u64 ni = 0; ni < params_.nTiles; ++ni)
            setup.accesses.push_back({tileAddrB(ki, ni), bytes_b, vn_in,
                                      AccessType::Write,
                                      DataClass::Generic, 0});
    trace.push_back(std::move(setup));

    // Fig. 4(b): outer loop over K rounds; VN[C] bumps once per round.
    for (u64 ki = 0; ki < params_.kTiles; ++ki) {
        const Vn vn_c_read =
            makeVn(DataClass::Generic, state_.counter("VN[C]"));
        const Vn vn_c_write =
            makeVn(DataClass::Generic, state_.bumpCounter("VN[C]"));
        for (u64 mi = 0; mi < params_.mTiles; ++mi) {
            for (u64 ni = 0; ni < params_.nTiles; ++ni) {
                Phase p;
                p.name = "round" + std::to_string(ki) + "-tile(" +
                         std::to_string(mi) + "," + std::to_string(ni) +
                         ")";
                // MACs / PEs, one MAC per PE per cycle.
                p.computeCycles = divCeil(tm * tn * tk, params_.peCount);
                p.accesses.reserve(ki > 0 ? 4 : 3);
                p.accesses.push_back({tileAddrA(mi, ki), bytes_a, vn_in,
                                      AccessType::Read,
                                      DataClass::Generic, 0});
                p.accesses.push_back({tileAddrB(ki, ni), bytes_b, vn_in,
                                      AccessType::Read,
                                      DataClass::Generic, 0});
                if (ki > 0) {
                    // Accumulate: re-read the partial result with the VN
                    // it was last written with.
                    p.accesses.push_back({tileAddrC(mi, ni), bytes_c,
                                          vn_c_read, AccessType::Read,
                                          DataClass::Generic, 0});
                }
                p.accesses.push_back({tileAddrC(mi, ni), bytes_c,
                                      vn_c_write, AccessType::Write,
                                      DataClass::Generic, 0});
                trace.push_back(std::move(p));
            }
        }
    }
    return trace;
}

Vn
MatMulKernel::finalOutputVn() const
{
    return makeVn(DataClass::Generic, state_.counter("VN[C]"));
}

} // namespace mgx::core
