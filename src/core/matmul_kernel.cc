#include "matmul_kernel.h"

#include "common/bitops.h"
#include "common/log.h"

namespace mgx::core {

MatMulKernel::MatMulKernel(const MatMulParams &params) : params_(params)
{
    if (params_.m % params_.mTiles || params_.n % params_.nTiles ||
        params_.k % params_.kTiles) {
        fatal("MatMul dimensions must divide evenly into tiles");
    }
    state_.setCounter("VN[A]", params_.initialVn);
    state_.setCounter("VN[B]", params_.initialVn);
    state_.setCounter("VN[C]", params_.initialVn);
}

Addr
MatMulKernel::tileAddrA(u64 mi, u64 ki) const
{
    const u64 tile_bytes =
        (params_.m / params_.mTiles) * (params_.k / params_.kTiles) *
        params_.elemBytes;
    return params_.baseA + (mi * params_.kTiles + ki) * tile_bytes;
}

Addr
MatMulKernel::tileAddrB(u64 ki, u64 ni) const
{
    const u64 tile_bytes =
        (params_.k / params_.kTiles) * (params_.n / params_.nTiles) *
        params_.elemBytes;
    return params_.baseB + (ki * params_.nTiles + ni) * tile_bytes;
}

Addr
MatMulKernel::tileAddrC(u64 mi, u64 ni) const
{
    const u64 tile_bytes =
        (params_.m / params_.mTiles) * (params_.n / params_.nTiles) *
        params_.elemBytes;
    return params_.baseC + (mi * params_.nTiles + ni) * tile_bytes;
}

/**
 * Streaming producer for the Fig. 4(b) schedule: the setup phase, then
 * one compute phase per (ki, mi, ni) tile, with VN[C] bumped exactly
 * when round ki begins — the same order and state evolution the
 * materializing loop had. One phase per chunk through a reused
 * scratch Phase, so the producer-side footprint is one phase.
 */
class MatMulKernel::Source final : public PhaseSource
{
  public:
    explicit Source(MatMulKernel &kernel)
        : k_(&kernel),
          tm_(kernel.params_.m / kernel.params_.mTiles),
          tn_(kernel.params_.n / kernel.params_.nTiles),
          tk_(kernel.params_.k / kernel.params_.kTiles),
          bytesA_(tm_ * tk_ * kernel.params_.elemBytes),
          bytesB_(tk_ * tn_ * kernel.params_.elemBytes),
          bytesC_(tm_ * tn_ * kernel.params_.elemBytes),
          vnIn_(makeVn(DataClass::Generic, kernel.params_.initialVn))
    {
    }

    bool
    nextChunk(PhaseSink &sink) override
    {
        const MatMulParams &p = k_->params_;
        scratch_.name.clear();
        scratch_.accesses.clear();
        scratch_.computeCycles = 0;

        if (!setupDone_) {
            // Session setup: the host loads A and B with the initial VN.
            scratch_.name = "load-operands";
            scratch_.accesses.reserve(p.mTiles * p.kTiles +
                                      p.kTiles * p.nTiles);
            for (u64 mi = 0; mi < p.mTiles; ++mi)
                for (u64 ki = 0; ki < p.kTiles; ++ki)
                    scratch_.accesses.push_back(
                        {k_->tileAddrA(mi, ki), bytesA_, vnIn_,
                         AccessType::Write, DataClass::Generic, 0});
            for (u64 ki = 0; ki < p.kTiles; ++ki)
                for (u64 ni = 0; ni < p.nTiles; ++ni)
                    scratch_.accesses.push_back(
                        {k_->tileAddrB(ki, ni), bytesB_, vnIn_,
                         AccessType::Write, DataClass::Generic, 0});
            sink.consume(scratch_);
            setupDone_ = true;
            return ki_ < p.kTiles;
        }
        if (ki_ >= p.kTiles)
            return false;

        // Fig. 4(b): outer loop over K rounds; VN[C] bumps once per
        // round, as the first tile of the round is scheduled.
        if (mi_ == 0 && ni_ == 0) {
            vnCRead_ =
                makeVn(DataClass::Generic, k_->state_.counter("VN[C]"));
            vnCWrite_ = makeVn(DataClass::Generic,
                               k_->state_.bumpCounter("VN[C]"));
        }
        scratch_.name = "round" + std::to_string(ki_) + "-tile(" +
                        std::to_string(mi_) + "," + std::to_string(ni_) +
                        ")";
        // MACs / PEs, one MAC per PE per cycle.
        scratch_.computeCycles = divCeil(tm_ * tn_ * tk_, p.peCount);
        scratch_.accesses.reserve(ki_ > 0 ? 4 : 3);
        scratch_.accesses.push_back({k_->tileAddrA(mi_, ki_), bytesA_,
                                     vnIn_, AccessType::Read,
                                     DataClass::Generic, 0});
        scratch_.accesses.push_back({k_->tileAddrB(ki_, ni_), bytesB_,
                                     vnIn_, AccessType::Read,
                                     DataClass::Generic, 0});
        if (ki_ > 0) {
            // Accumulate: re-read the partial result with the VN it
            // was last written with.
            scratch_.accesses.push_back({k_->tileAddrC(mi_, ni_), bytesC_,
                                         vnCRead_, AccessType::Read,
                                         DataClass::Generic, 0});
        }
        scratch_.accesses.push_back({k_->tileAddrC(mi_, ni_), bytesC_,
                                     vnCWrite_, AccessType::Write,
                                     DataClass::Generic, 0});
        sink.consume(scratch_);

        if (++ni_ == p.nTiles) {
            ni_ = 0;
            if (++mi_ == p.mTiles) {
                mi_ = 0;
                ++ki_;
            }
        }
        return ki_ < p.kTiles;
    }

  private:
    MatMulKernel *k_;
    u64 tm_, tn_, tk_;
    u64 bytesA_, bytesB_, bytesC_;
    Vn vnIn_;
    Vn vnCRead_ = 0;
    Vn vnCWrite_ = 0;
    bool setupDone_ = false;
    u64 ki_ = 0, mi_ = 0, ni_ = 0;
    Phase scratch_;
};

std::unique_ptr<PhaseSource>
MatMulKernel::stream()
{
    return std::make_unique<Source>(*this);
}

Vn
MatMulKernel::finalOutputVn() const
{
    return makeVn(DataClass::Generic, state_.counter("VN[C]"));
}

} // namespace mgx::core
