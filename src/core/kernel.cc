#include "kernel.h"

namespace mgx::core {

Trace
Kernel::generate()
{
    Trace trace;
    TraceBuildSink sink(trace);
    stream()->drainTo(sink);
    return trace;
}

} // namespace mgx::core
