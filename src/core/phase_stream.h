/**
 * @file
 * The streaming phase pipeline: pull-based, chunked phase production.
 *
 * MGX derives version numbers from attested kernel state, so a trace
 * never has to be materialized to be replayed — the kernel can hand
 * phases to the consumer as it schedules them. `PhaseSource` is the
 * pull side of that pipeline: the consumer repeatedly asks for the
 * next chunk, and the source pushes the chunk's phases into a
 * `PhaseSink`. Memory stays bounded by one chunk (in practice one
 * phase: sources reuse one scratch `Phase` between emissions), so
 * workload size is no longer capped by RAM.
 *
 * The materialized path still exists — `Kernel::generate()` is now
 * "stream into an arena" (TraceBuildSink) and `TracePhaseSource`
 * replays an existing arena-backed Trace — and both paths are
 * bitwise-identical by construction: they emit the same phases in the
 * same order to the same consumers.
 */

#ifndef MGX_CORE_PHASE_STREAM_H
#define MGX_CORE_PHASE_STREAM_H

#include <cstddef>

#include "phase.h"

namespace mgx::core {

/**
 * Consumer side of the phase pipeline.
 *
 * Contract: the sink must not retain references into the consumed
 * phase after consume() returns — sources reuse the backing storage
 * for the next phase.
 */
class PhaseSink
{
  public:
    virtual ~PhaseSink();

    /** Take one phase (copy out anything that must outlive the call). */
    virtual void consume(const Phase &phase) = 0;
};

/**
 * Producer side: a pull-based, chunked phase stream.
 *
 * A source is single-pass and stateful; kernels' sources mutate the
 * kernel's VN state exactly as generate() did, so draining a fresh
 * kernel's stream is one further execution of the kernel. Never run
 * two streams of the same kernel concurrently.
 */
class PhaseSource
{
  public:
    virtual ~PhaseSource();

    /**
     * Emit the next chunk of phases (usually one) into @p sink.
     * Returns false once the stream is exhausted; the final call may
     * still have emitted phases before returning false.
     */
    virtual bool nextChunk(PhaseSink &sink) = 0;

    /** Pull every remaining chunk into @p sink. */
    void
    drainTo(PhaseSink &sink)
    {
        while (nextChunk(sink)) {
        }
    }
};

/** Sink that materializes the stream into an arena-backed Trace. */
class TraceBuildSink final : public PhaseSink
{
  public:
    explicit TraceBuildSink(Trace &trace) : trace_(&trace) {}

    void consume(const Phase &phase) override;

  private:
    Trace *trace_;
};

/**
 * Source over an already-materialized Trace: emits @p chunkPhases
 * phases per nextChunk() through one reused scratch Phase. Used to
 * feed trace files and edited traces into streaming consumers, and by
 * the chunk-boundary property tests (results must be invariant under
 * the chunk size).
 */
class TracePhaseSource final : public PhaseSource
{
  public:
    explicit TracePhaseSource(const Trace &trace,
                              std::size_t chunk_phases = 1)
        : trace_(&trace),
          chunk_(chunk_phases == 0 ? 1 : chunk_phases)
    {
    }

    bool nextChunk(PhaseSink &sink) override;

  private:
    const Trace *trace_;
    std::size_t next_ = 0;
    std::size_t chunk_;
    Phase scratch_;
};

/**
 * Arena bytes this phase would add to a materialized Trace (packed
 * access records, name characters, one phase record). Size-based and
 * deterministic. Summed over a stream it estimates the materialized
 * footprint the streaming path avoided (RunResult::traceBytes); its
 * per-phase maximum is the buffered high-water mark
 * (RunResult::peakPhaseBytes) — so peak <= total by construction.
 */
inline u64
phaseArenaBytes(const Phase &phase)
{
    return phase.accesses.size() * sizeof(LogicalAccess) +
           phase.name.size() + 32; // 32 = sizeof(Trace::PhaseRec)
}

} // namespace mgx::core

#endif // MGX_CORE_PHASE_STREAM_H
