#include "invariant_checker.h"

#include <cstdio>

#include "common/bitops.h"
#include "common/log.h"

namespace mgx::core {

InvariantChecker::InvariantChecker(u32 block_bytes, bool exhaustive)
    : blockBytes_(block_bytes), exhaustive_(exhaustive)
{
    if (!isPow2(block_bytes))
        fatal("InvariantChecker granularity must be a power of two");
}

void
InvariantChecker::violation(std::string msg)
{
    report_.ok = false;
    if (report_.violations.size() < 16)
        report_.violations.push_back(std::move(msg));
}

void
InvariantChecker::observe(const LogicalAccess &acc)
{
    const VnTag tag = vnTag(acc.vn);
    const Vn value = vnValue(acc.vn);
    const Addr first = acc.addr / blockBytes_;
    const Addr last = (acc.addr + acc.bytes - 1) / blockBytes_;

    char buf[160];
    for (Addr b = first; b <= last; ++b) {
        const u64 k = key(b, tag);
        if (acc.type == AccessType::Write) {
            ++report_.writesChecked;
            auto it = lastWrite_.find(k);
            if (it != lastWrite_.end() && value <= vnValue(it->second)) {
                std::snprintf(buf, sizeof(buf),
                              "write block %#llx tag %u: VN %llu not above "
                              "previous %llu",
                              static_cast<unsigned long long>(b *
                                                              blockBytes_),
                              static_cast<unsigned>(tag),
                              static_cast<unsigned long long>(value),
                              static_cast<unsigned long long>(
                                  vnValue(it->second)));
                violation(buf);
            }
            if (exhaustive_) {
                auto &set = used_[k];
                if (!set.insert(acc.vn).second) {
                    std::snprintf(buf, sizeof(buf),
                                  "write block %#llx: VN %llu reused",
                                  static_cast<unsigned long long>(
                                      b * blockBytes_),
                                  static_cast<unsigned long long>(value));
                    violation(buf);
                }
            }
            lastWrite_[k] = acc.vn;
        } else {
            ++report_.readsChecked;
            auto it = lastWrite_.find(k);
            if (it == lastWrite_.end()) {
                if (!allowUnwrittenReads_) {
                    std::snprintf(buf, sizeof(buf),
                                  "read block %#llx tag %u never written",
                                  static_cast<unsigned long long>(
                                      b * blockBytes_),
                                  static_cast<unsigned>(tag));
                    violation(buf);
                }
            } else if (it->second != acc.vn) {
                std::snprintf(buf, sizeof(buf),
                              "read block %#llx tag %u: VN %llu != last "
                              "write VN %llu",
                              static_cast<unsigned long long>(b *
                                                              blockBytes_),
                              static_cast<unsigned>(tag),
                              static_cast<unsigned long long>(value),
                              static_cast<unsigned long long>(
                                  vnValue(it->second)));
                violation(buf);
            }
        }
    }
}

void
InvariantChecker::observeTrace(const Trace &trace)
{
    for (const auto &phase : trace)
        for (const auto &acc : phase.accesses)
            observe(acc);
}

CheckReport
InvariantChecker::report() const
{
    return report_;
}

} // namespace mgx::core
