/**
 * @file
 * Base class for accelerator kernels.
 *
 * In MGX the *kernel* — the attested program on the accelerator's
 * control processor — is the component that generates version numbers.
 * Each domain (DNN, graph, genome, video, and the tiled-MatMul example)
 * subclasses Kernel, maintains its VN program state in a VnState, and
 * produces phases whose logical accesses carry fully formed VNs.
 *
 * Production is streaming-first: subclasses implement stream(), a
 * pull-based chunked PhaseSource, so consumers can replay a workload
 * without ever materializing it (the memory ceiling that used to cap
 * workload size at RAM). generate() remains for every caller that
 * wants a whole Trace — it simply drains the stream into an arena, so
 * the two paths emit identical phases by construction.
 */

#ifndef MGX_CORE_KERNEL_H
#define MGX_CORE_KERNEL_H

#include <memory>
#include <string>

#include "phase.h"
#include "phase_stream.h"
#include "vn_state.h"

namespace mgx::core {

/** An attested control-processor program that generates VNs. */
class Kernel
{
  public:
    virtual ~Kernel() = default;

    /** Human-readable kernel name for reports. */
    virtual std::string name() const = 0;

    /**
     * Begin one execution of the kernel's schedule as a pull-based
     * phase stream. The source borrows the kernel (the kernel must
     * outlive it) and advances the kernel's VN state exactly as
     * generate() does; fully draining the stream is one further
     * execution (e.g. one more training iteration). Never run two
     * streams of the same kernel at once.
     */
    virtual std::unique_ptr<PhaseSource> stream() = 0;

    /**
     * Run the kernel's schedule and materialize the phase trace:
     * stream() drained into an arena. Same state-advance semantics as
     * stream(); needs O(workload) memory, unlike the stream path.
     */
    Trace generate();

    /** The kernel's on-chip VN state (for storage-cost reporting). */
    const VnState &state() const { return state_; }

  protected:
    VnState state_;
};

} // namespace mgx::core

#endif // MGX_CORE_KERNEL_H
