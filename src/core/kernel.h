/**
 * @file
 * Base class for accelerator kernels.
 *
 * In MGX the *kernel* — the attested program on the accelerator's
 * control processor — is the component that generates version numbers.
 * Each domain (DNN, graph, genome, video, and the tiled-MatMul example)
 * subclasses Kernel, maintains its VN program state in a VnState, and
 * emits a Trace whose logical accesses carry fully formed VNs.
 */

#ifndef MGX_CORE_KERNEL_H
#define MGX_CORE_KERNEL_H

#include <string>

#include "phase.h"
#include "vn_state.h"

namespace mgx::core {

/** An attested control-processor program that generates VNs. */
class Kernel
{
  public:
    virtual ~Kernel() = default;

    /** Human-readable kernel name for reports. */
    virtual std::string name() const = 0;

    /**
     * Run the kernel's schedule and emit the phase trace. Idempotent
     * only if the subclass resets its state; callers should treat each
     * call as one further execution (e.g. one more training iteration).
     */
    virtual Trace generate() = 0;

    /** The kernel's on-chip VN state (for storage-cost reporting). */
    const VnState &state() const { return state_; }

  protected:
    VnState state_;
};

} // namespace mgx::core

#endif // MGX_CORE_KERNEL_H
