#include "rekey.h"

#include <algorithm>

#include "common/log.h"

namespace mgx::core {

RekeyManager::RekeyManager(Vn headroom) : headroom_(headroom)
{
    if (headroom_ == 0 || headroom_ >= kVnValueMax)
        fatal("re-key headroom must be in (0, 2^62)");
}

bool
RekeyManager::needsRekey(Vn vn_value) const
{
    return vn_value >= kVnValueMax - headroom_;
}

Trace
RekeyManager::planRekey(const std::vector<LiveRegion> &regions,
                        u64 chunk_bytes) const
{
    ++epoch_;
    Trace trace;
    for (const LiveRegion &region : regions) {
        u64 off = 0;
        u32 chunk_idx = 0;
        while (off < region.bytes) {
            const u64 len =
                std::min(chunk_bytes, region.bytes - off);
            Phase p;
            p.name = "rekey-" + std::to_string(epoch_) + "-" +
                     dataClassName(region.cls) + "-" +
                     std::to_string(chunk_idx++);
            // Decrypt under the old key with the region's current VN,
            // re-encrypt under the new key with the epoch-fresh VN 1.
            // (The key change itself is free: AES key expansion is a
            // handful of cycles, invisible next to the data movement.)
            p.computeCycles = 1;
            p.accesses.push_back({region.addr + off, len,
                                  makeVn(region.cls, region.currentVn),
                                  AccessType::Read, region.cls, 0});
            p.accesses.push_back({region.addr + off, len,
                                  makeVn(region.cls, 1),
                                  AccessType::Write, region.cls, 0});
            trace.push_back(std::move(p));
            off += len;
        }
    }
    return trace;
}

} // namespace mgx::core
