#include "phase_stream.h"

namespace mgx::core {

PhaseSink::~PhaseSink() = default;

PhaseSource::~PhaseSource() = default;

void
TraceBuildSink::consume(const Phase &phase)
{
    trace_->push_back(phase);
}

bool
TracePhaseSource::nextChunk(PhaseSink &sink)
{
    const std::size_t n = trace_->size();
    for (std::size_t i = 0; i < chunk_ && next_ < n; ++i, ++next_) {
        const PhaseView view = (*trace_)[next_];
        scratch_.name.assign(view.name);
        scratch_.computeCycles = view.computeCycles;
        scratch_.accesses.assign(view.accesses.begin(),
                                 view.accesses.end());
        sink.consume(scratch_);
    }
    return next_ < n;
}

} // namespace mgx::core
