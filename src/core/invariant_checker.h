/**
 * @file
 * Security-invariant checker for VN generation.
 *
 * The MGX security argument (paper §III-D) reduces to one property:
 * a (address, VN) pair is never used for more than one write, and every
 * read regenerates exactly the VN of the most recent write covering its
 * address. This checker validates both properties over a kernel trace.
 *
 * Two modes:
 *  - Monotonic (default): each write to a block must carry a strictly
 *    larger VN value than the previous write with the same counter tag.
 *    This is a sufficient condition for uniqueness and holds for every
 *    kernel in the paper; it needs only one remembered VN per block.
 *  - Exhaustive: additionally remembers the full set of VNs ever used
 *    per block, catching any reuse pattern. Memory-hungry; for unit
 *    tests on small traces.
 */

#ifndef MGX_CORE_INVARIANT_CHECKER_H
#define MGX_CORE_INVARIANT_CHECKER_H

#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "access.h"
#include "common/types.h"
#include "counter.h"
#include "phase.h"

namespace mgx::core {

/** Result of checking one trace. */
struct CheckReport
{
    bool ok = true;
    u64 writesChecked = 0;
    u64 readsChecked = 0;
    std::vector<std::string> violations; ///< capped at 16 entries
};

/** Validates the no-counter-reuse and read-regeneration invariants. */
class InvariantChecker
{
  public:
    /**
     * @param block_bytes  tracking granularity; VNs are uniform within a
     *                     logical access, so any granularity that divides
     *                     the smallest access is exact. Default 64.
     * @param exhaustive   remember all VNs per block (see file comment)
     */
    explicit InvariantChecker(u32 block_bytes = 64, bool exhaustive = false);

    /** Observe one access; records violations internally. */
    void observe(const LogicalAccess &acc);

    /** Observe every access of a trace in order. */
    void observeTrace(const Trace &trace);

    /** Produce the final report. */
    CheckReport report() const;

    /** Allow reads of blocks never written (pre-loaded input regions). */
    void
    allowUnwrittenReads(bool allow)
    {
        allowUnwrittenReads_ = allow;
    }

  private:
    void violation(std::string msg);

    /** Map (block index, tag) to a single key. */
    static u64
    key(Addr block, VnTag tag)
    {
        return (block << kVnTagBits) | static_cast<u64>(tag);
    }

    u32 blockBytes_;
    bool exhaustive_;
    bool allowUnwrittenReads_ = true;
    CheckReport report_;
    std::unordered_map<u64, Vn> lastWrite_;
    std::unordered_map<u64, std::unordered_set<Vn>> used_;
};

} // namespace mgx::core

#endif // MGX_CORE_INVARIANT_CHECKER_H
