#include "phase_ring.h"

#include <algorithm>

namespace mgx::core {

PhaseRing::PhaseRing(std::size_t capacity)
    : slots_(std::max<std::size_t>(capacity, 1))
{
}

bool
PhaseRing::push(const Phase &phase)
{
    std::unique_lock<std::mutex> lock(mu_);
    while (count_ == slots_.size() && !consumerDone_) {
        ++stats_.producerWaits;
        notFull_.wait(lock);
    }
    if (consumerDone_)
        return false;
    // Copy into the slot via assign so the slot's string/vector
    // capacity is reused across the run (no per-phase allocation once
    // the ring is warm).
    Phase &slot = slots_[(head_ + count_) % slots_.size()];
    slot.name.assign(phase.name);
    slot.computeCycles = phase.computeCycles;
    slot.accesses.assign(phase.accesses.begin(), phase.accesses.end());
    ++count_;
    ++stats_.phases;
    stats_.maxOccupancy =
        std::max<u64>(stats_.maxOccupancy, count_);
    lock.unlock();
    notEmpty_.notify_one();
    return true;
}

void
PhaseRing::closeProducer()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        producerDone_ = true;
    }
    notEmpty_.notify_one();
}

void
PhaseRing::fail(std::exception_ptr error)
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        error_ = std::move(error);
        producerDone_ = true;
    }
    notEmpty_.notify_one();
}

bool
PhaseRing::pop(Phase &out)
{
    std::unique_lock<std::mutex> lock(mu_);
    while (count_ == 0 && !producerDone_) {
        ++stats_.consumerWaits;
        notEmpty_.wait(lock);
    }
    if (count_ == 0) {
        // Stream over: deliver the producer's failure, if any, only
        // after the buffered prefix has drained.
        if (error_ != nullptr)
            std::rethrow_exception(error_);
        return false;
    }
    const Phase &slot = slots_[head_];
    out.name.assign(slot.name);
    out.computeCycles = slot.computeCycles;
    out.accesses.assign(slot.accesses.begin(), slot.accesses.end());
    head_ = (head_ + 1) % slots_.size();
    --count_;
    lock.unlock();
    notFull_.notify_one();
    return true;
}

void
PhaseRing::closeConsumer()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        consumerDone_ = true;
    }
    notFull_.notify_one();
}

PhaseRing::Stats
PhaseRing::stats() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
}

} // namespace mgx::core
