/**
 * @file
 * Bounded single-producer/single-consumer phase ring: the seam that
 * lets one cell's kernel streaming and replay run on separate
 * threads.
 *
 * The ring owns a fixed number of `Phase` slots. push() copies the
 * producer's scratch phase into the next free slot (the slot's
 * std::string / std::vector capacity is reused across the whole run,
 * so a warmed-up ring allocates nothing per phase); pop() copies the
 * oldest slot into the consumer's scratch phase. Both ends block —
 * push() while the ring is full, pop() while it is empty — so the
 * ring is also the pipeline's back-pressure: a fast producer gets at
 * most `capacity` phases ahead of the replay.
 *
 * Because phases cross the ring strictly in production order and the
 * consumer replays them one at a time, a pipelined replay consumes
 * the exact same phase sequence as a serial one — bitwise identity of
 * every model output is preserved by construction (phases only
 * serialize through the perf model's mem_free recurrence, which the
 * consumer alone advances).
 *
 * Shutdown is two-sided so neither thread can deadlock on the other:
 *  - closeProducer() marks the stream complete; pop() drains the
 *    buffered phases and then returns false.
 *  - fail(ptr) is closeProducer() for a producer that threw; pop()
 *    drains the buffered prefix and then rethrows the producer's
 *    exception on the consumer thread.
 *  - closeConsumer() makes every present and future push() return
 *    false, releasing a producer blocked on a full ring when the
 *    consumer stops early.
 */

#ifndef MGX_CORE_PHASE_RING_H
#define MGX_CORE_PHASE_RING_H

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <mutex>
#include <vector>

#include "phase.h"
#include "phase_stream.h"

namespace mgx::core {

/** Bounded SPSC phase queue with blocking push/pop and shutdown. */
class PhaseRing
{
  public:
    /** Occupancy / stall counters, readable once both sides are done. */
    struct Stats
    {
        u64 phases = 0;        ///< phases that crossed the ring
        u64 producerWaits = 0; ///< push() blocked: ring full (slow consumer)
        u64 consumerWaits = 0; ///< pop() blocked: ring empty (slow producer)
        u64 maxOccupancy = 0;  ///< most phases buffered at once
    };

    /** @param capacity slot count; 0 is clamped to 1. */
    explicit PhaseRing(std::size_t capacity);

    PhaseRing(const PhaseRing &) = delete;
    PhaseRing &operator=(const PhaseRing &) = delete;

    /**
     * Producer: copy @p phase into the ring, blocking while it is
     * full. Returns false once the consumer has closed its end — the
     * producer should stop generating.
     */
    bool push(const Phase &phase);

    /** Producer: the stream is complete; wakes a blocked consumer. */
    void closeProducer();

    /**
     * Producer: the stream failed. pop() rethrows @p error on the
     * consumer thread after the buffered prefix drains. Implies
     * closeProducer().
     */
    void fail(std::exception_ptr error);

    /**
     * Consumer: copy the oldest phase into @p out, blocking while the
     * ring is empty. Returns false once the producer has closed and
     * every buffered phase was delivered; rethrows the producer's
     * exception (see fail()) once the buffered prefix is drained.
     */
    bool pop(Phase &out);

    /**
     * Consumer: no further pop() calls will happen; wakes and turns
     * away a producer blocked on a full ring.
     */
    void closeConsumer();

    std::size_t capacity() const { return slots_.size(); }

    /** Counter snapshot (take after both sides have shut down). */
    Stats stats() const;

  private:
    mutable std::mutex mu_;
    std::condition_variable notFull_;  ///< producer waits here
    std::condition_variable notEmpty_; ///< consumer waits here
    std::vector<Phase> slots_;
    std::size_t head_ = 0;  ///< oldest buffered phase
    std::size_t count_ = 0; ///< buffered phases
    bool producerDone_ = false;
    bool consumerDone_ = false;
    std::exception_ptr error_;
    Stats stats_;
};

/**
 * Producer-side adapter: a PhaseSink that pushes every consumed phase
 * into a ring — plug a Kernel::stream() or FilePhaseSource drain
 * straight into it. An optional tee sink sees each phase first, on
 * the producer thread (e.g. a TraceFileWriteSink populating the trace
 * cache while the consumer replays concurrently).
 *
 * When the consumer closes the ring early, consume() throws
 * ConsumerClosed to unwind the producer's drain loop; the producer
 * thread should catch it and treat it as a clean stop.
 */
class RingPushSink final : public PhaseSink
{
  public:
    /** Thrown by consume() once the ring's consumer end is closed. */
    struct ConsumerClosed
    {
    };

    explicit RingPushSink(PhaseRing &ring, PhaseSink *tee = nullptr)
        : ring_(&ring), tee_(tee)
    {
    }

    void
    consume(const Phase &phase) override
    {
        if (tee_ != nullptr)
            tee_->consume(phase);
        if (!ring_->push(phase))
            throw ConsumerClosed{};
    }

  private:
    PhaseRing *ring_;
    PhaseSink *tee_;
};

/**
 * Consumer-side adapter: a PhaseSource that pops one phase per
 * nextChunk() through a reused scratch phase — feed it to
 * PerfModel::run(PhaseSource&) and the replay path is unchanged.
 */
class PhaseRingSource final : public PhaseSource
{
  public:
    explicit PhaseRingSource(PhaseRing &ring) : ring_(&ring) {}

    bool
    nextChunk(PhaseSink &sink) override
    {
        if (!ring_->pop(scratch_))
            return false;
        sink.consume(scratch_);
        return true;
    }

  private:
    PhaseRing *ring_;
    Phase scratch_;
};

} // namespace mgx::core

#endif // MGX_CORE_PHASE_RING_H
