/**
 * @file
 * The logical memory access: the unit of data movement an accelerator
 * kernel requests from the memory-protection unit.
 *
 * A logical access is one contiguous transfer at the accelerator's own
 * granularity (a tensor tile, a chunk of adjacency matrix, a frame
 * slice, ...). The protection engine expands it into 64-byte DRAM
 * requests for data and metadata according to the active scheme.
 */

#ifndef MGX_CORE_ACCESS_H
#define MGX_CORE_ACCESS_H

#include <vector>

#include "common/types.h"

namespace mgx::core {

/**
 * One contiguous data transfer with its generated version number.
 * Field order packs the struct into 32 bytes (the 8-byte members
 * first); traces hold millions of these, so the layout is part of the
 * trace memory budget reported by Trace::memoryBytes().
 */
struct LogicalAccess
{
    Addr addr = 0;          ///< start byte address
    u64 bytes = 0;          ///< transfer length
    Vn vn = 0;              ///< full 64-bit VN (type tag in top bits)
    AccessType type = AccessType::Read;
    DataClass cls = DataClass::Generic;

    /**
     * Per-access MAC granularity override in bytes; 0 selects the
     * scheme default. DLRM embedding-table gathers and GACT chunk loads
     * set 64 here because their access pattern is fine-grained.
     */
    u32 macGranularity = 0;
};

static_assert(sizeof(LogicalAccess) == 32,
              "LogicalAccess is a hot trace type; keep it packed");

/** A batch of logical accesses (one simulation phase's traffic). */
using AccessList = std::vector<LogicalAccess>;

} // namespace mgx::core

#endif // MGX_CORE_ACCESS_H
