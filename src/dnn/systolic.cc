#include "systolic.h"

#include "common/bitops.h"

namespace mgx::dnn {

DnnAccelConfig
cloudAccel()
{
    return {"Cloud", 256, 256, 24ull << 20, 700.0, 4, 1};
}

DnnAccelConfig
edgeAccel()
{
    return {"Edge", 32, 32, 4608ull << 10 /* 4.5 MB */, 900.0, 1, 1};
}

namespace {

/**
 * GEMM cycles for a P x Co output with a K-deep reduction under the
 * configured dataflow (SCALE-Sim's analytical forms):
 *
 *  - OS: spatial (P, Co), temporal K; each tile pays K + array fill.
 *  - WS: spatial (K, Co), temporal P; each weight tile is loaded
 *    (peRows cycles) and then P activations stream through.
 *  - IS: symmetric to WS with inputs pinned: spatial (K, P),
 *    temporal Co.
 */
Cycles
gemmCycles(u64 p, u64 co, u64 k, const DnnAccelConfig &cfg)
{
    const u64 fill = cfg.peRows + cfg.peCols - 2;
    switch (cfg.dataflow) {
      case Dataflow::OutputStationary: {
        const u64 row_tiles = divCeil(p, cfg.peRows);
        const u64 col_tiles = divCeil(co, cfg.peCols);
        return row_tiles * col_tiles * (k + fill);
      }
      case Dataflow::WeightStationary: {
        const u64 k_tiles = divCeil(k, cfg.peRows);
        const u64 col_tiles = divCeil(co, cfg.peCols);
        return k_tiles * col_tiles * (cfg.peRows + p + fill);
      }
      case Dataflow::InputStationary: {
        const u64 k_tiles = divCeil(k, cfg.peRows);
        const u64 row_tiles = divCeil(p, cfg.peCols);
        return k_tiles * row_tiles * (cfg.peRows + co + fill);
      }
    }
    return 0;
}

} // namespace

Cycles
layerComputeCycles(const Layer &l, u32 batch, const DnnAccelConfig &cfg)
{
    switch (l.kind) {
      case LayerKind::Conv:
        return gemmCycles(static_cast<u64>(batch) * l.outH() * l.outW(),
                          l.outC,
                          static_cast<u64>(l.inC) * l.kH * l.kW, cfg);
      case LayerKind::Depthwise:
        // One filter per channel: no channel reduction, so the array
        // maps output pixels x channels with K = kH*kW only.
        return gemmCycles(static_cast<u64>(batch) * l.outH() * l.outW(),
                          l.outC, static_cast<u64>(l.kH) * l.kW, cfg);
      case LayerKind::Dense:
        return gemmCycles(batch, l.outC, l.inC, cfg);
      case LayerKind::MatMul:
        return gemmCycles(static_cast<u64>(batch) * l.mmBatch * l.mmM,
                          l.mmN, l.mmK, cfg);
      case LayerKind::Pool:
      case LayerKind::Eltwise:
      case LayerKind::Embedding:
        // Vector unit, one element per column per cycle.
        return divCeil(static_cast<u64>(batch) * l.outputElems(),
                       cfg.peCols);
    }
    return 0;
}

} // namespace mgx::dnn
