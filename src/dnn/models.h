/**
 * @file
 * The benchmark model zoo (paper §VI-A): AlexNet, VGG-16, GoogLeNet,
 * ResNet-50 for image classification, BERT-base for language
 * pretraining, and DLRM for personalized recommendation.
 *
 * Token-wise dense layers of BERT are expressed as 1x1 convolutions
 * over the sequence dimension, which yields identical MAC counts,
 * weight footprints and feature shapes.
 */

#ifndef MGX_DNN_MODELS_H
#define MGX_DNN_MODELS_H

#include "layer.h"

namespace mgx::dnn {

/** AlexNet (227x227 input). */
Model alexnet();

/** VGG-16 (224x224 input). */
Model vgg16();

/** GoogLeNet / Inception-v1 (224x224 input). */
Model googlenet();

/** ResNet-50 (224x224 input, bottleneck residual blocks). */
Model resnet50();

/** MobileNet-v1 (depthwise-separable convolutions; paper ref [21]). */
Model mobilenetV1();

/** BERT-base encoder, @p seq_len tokens (12 layers, hidden 768). */
Model bertBase(u32 seq_len = 512);

/** DLRM-style recommender: MLPs + 26 embedding tables. */
Model dlrm(u64 rows_per_table = 1u << 20, u32 row_dim = 64);

/** All six benchmark models keyed by the paper's display names. */
std::vector<Model> paperModels();

/** Look up one of the paper models by name ("VGG", "AlexNet", ...). */
Model modelByName(const std::string &name);

} // namespace mgx::dnn

#endif // MGX_DNN_MODELS_H
