#include "chaidnn.h"

#include "common/log.h"

namespace mgx::dnn {

bool
chaiSupports(const Model &model)
{
    for (const Layer &l : model.layers) {
        switch (l.kind) {
          case LayerKind::Conv:
          case LayerKind::Depthwise:
          case LayerKind::Dense:
          case LayerKind::Pool:
          case LayerKind::Eltwise: // fused into producers
            break;
          case LayerKind::MatMul:
          case LayerKind::Embedding:
            return false;
        }
    }
    return true;
}

ChaiProgram
compileForChai(const Model &model, u32 elem_bytes)
{
    if (!chaiSupports(model))
        fatal("model '%s' uses operations outside CHaiDNN's "
              "Convolution/Deconvolution/Pooling interface",
              model.name.c_str());

    ChaiProgram program;
    program.modelName = model.name;
    u32 slot = 0;
    for (const Layer &l : model.layers) {
        if (l.kind == LayerKind::Eltwise)
            continue; // fused: the producing op writes the merged map
        ChaiInstruction inst;
        inst.name = l.name;
        inst.vnTableIndex = slot++;
        inst.inputBytes = l.inputElems() * elem_bytes;
        inst.weightBytes = l.weightElems() * elem_bytes;
        inst.outputBytes = l.outputElems() * elem_bytes;
        switch (l.kind) {
          case LayerKind::Conv:
          case LayerKind::Depthwise:
          case LayerKind::Dense: // lowered to 1x1 convolution
            inst.op = ChaiOp::Convolution;
            break;
          case LayerKind::Pool:
            inst.op = ChaiOp::Pooling;
            break;
          default:
            break;
        }
        program.instructions.push_back(std::move(inst));
    }
    return program;
}

} // namespace mgx::dnn
