#include "layer.h"

#include "common/log.h"

namespace mgx::dnn {

u32
Layer::outH() const
{
    if (kind == LayerKind::Dense || kind == LayerKind::Embedding)
        return 1;
    if (kind == LayerKind::MatMul)
        return 1;
    if (inH + 2 * pad < kH)
        panic("layer %s: kernel larger than padded input", name.c_str());
    return (inH + 2 * pad - kH) / stride + 1;
}

u32
Layer::outW() const
{
    if (kind == LayerKind::Dense || kind == LayerKind::Embedding)
        return 1;
    if (kind == LayerKind::MatMul)
        return 1;
    return (inW + 2 * pad - kW) / stride + 1;
}

u64
Layer::outputElems() const
{
    switch (kind) {
      case LayerKind::Conv:
      case LayerKind::Depthwise:
      case LayerKind::Pool:
        return static_cast<u64>(outC) * outH() * outW();
      case LayerKind::Dense:
        return outC;
      case LayerKind::MatMul:
        return static_cast<u64>(mmBatch) * mmM * mmN;
      case LayerKind::Eltwise:
        return static_cast<u64>(outC) * inH * inW;
      case LayerKind::Embedding:
        return static_cast<u64>(lookupsPerSample) * rowDim;
    }
    return 0;
}

u64
Layer::inputElems() const
{
    switch (kind) {
      case LayerKind::Conv:
      case LayerKind::Depthwise:
      case LayerKind::Pool:
      case LayerKind::Eltwise:
        return static_cast<u64>(inC) * inH * inW;
      case LayerKind::Dense:
        return inC;
      case LayerKind::MatMul:
        return static_cast<u64>(mmBatch) * mmM * mmK;
      case LayerKind::Embedding:
        // The gathered rows; the index vector is negligible.
        return static_cast<u64>(lookupsPerSample) * rowDim;
    }
    return 0;
}

u64
Layer::weightElems() const
{
    switch (kind) {
      case LayerKind::Conv:
        return static_cast<u64>(outC) * inC * kH * kW;
      case LayerKind::Depthwise:
        return static_cast<u64>(outC) * kH * kW;
      case LayerKind::Dense:
        return static_cast<u64>(outC) * inC;
      case LayerKind::Embedding:
        return numRows * rowDim; // resident table (read sparsely)
      case LayerKind::Pool:
      case LayerKind::Eltwise:
      case LayerKind::MatMul:
        return 0;
    }
    return 0;
}

u64
Layer::macs() const
{
    switch (kind) {
      case LayerKind::Conv:
        return static_cast<u64>(outC) * outH() * outW() * inC * kH * kW;
      case LayerKind::Depthwise:
        return static_cast<u64>(outC) * outH() * outW() * kH * kW;
      case LayerKind::Dense:
        return static_cast<u64>(outC) * inC;
      case LayerKind::MatMul:
        return static_cast<u64>(mmBatch) * mmM * mmN * mmK;
      case LayerKind::Pool:
        return outputElems(); // comparisons, roughly one op per output
      case LayerKind::Eltwise:
        return outputElems();
      case LayerKind::Embedding:
        return outputElems(); // gather + reduce
    }
    return 0;
}

u64
Model::weightBytes(u32 elem_bytes) const
{
    u64 total = 0;
    for (const auto &layer : layers)
        total += layer.weightElems() * elem_bytes;
    return total;
}

u64
Model::totalMacs() const
{
    u64 total = 0;
    for (const auto &layer : layers)
        total += layer.macs();
    return total;
}

} // namespace mgx::dnn
