/**
 * @file
 * DNN layer descriptors: the shapes from which the trace generator
 * derives off-chip traffic and the systolic model derives compute
 * cycles. Activation / normalization layers are assumed fused into the
 * producing layer (standard accelerator practice, also what CHaiDNN
 * and TPU-v1 do), so they add no DRAM traffic.
 */

#ifndef MGX_DNN_LAYER_H
#define MGX_DNN_LAYER_H

#include <string>
#include <vector>

#include "common/types.h"

namespace mgx::dnn {

/** Layer categories that generate distinct traffic patterns. */
enum class LayerKind : u8 {
    Conv,      ///< 2-D convolution (stride/pad aware)
    Depthwise, ///< depthwise convolution (one filter per channel)
    Dense,     ///< fully connected
    MatMul,    ///< activation x activation (attention scores/context)
    Pool,      ///< max/avg pooling: pure data movement
    Eltwise,   ///< residual add / concat: reads N inputs, writes one
    Embedding, ///< table gather (DLRM): random fine-grained reads
};

/** One layer of a model. */
struct Layer
{
    std::string name;
    LayerKind kind = LayerKind::Conv;

    // Conv/Pool geometry (input feature map is inC x inH x inW).
    u32 inC = 0, inH = 0, inW = 0;
    u32 outC = 0;
    u32 kH = 1, kW = 1;
    u32 stride = 1;
    u32 pad = 0;

    // Dense: inC -> outC (inH = inW = 1).
    // MatMul: (mmM x mmK) * (mmK x mmN), mmBatch independent products.
    u32 mmM = 0, mmN = 0, mmK = 0, mmBatch = 1;

    // Embedding: numRows rows of rowDim elements; lookupsPerSample
    // random rows are gathered per input sample.
    u64 numRows = 0;
    u32 rowDim = 0;
    u32 lookupsPerSample = 1;

    /**
     * Producer layers whose outputs this layer consumes; -1 denotes the
     * external model input. Eltwise layers list two or more producers
     * (the residual pattern of paper Fig. 8).
     */
    std::vector<int> inputs{-1};

    // -- derived shapes ----------------------------------------------------

    /** Output feature-map height. */
    u32 outH() const;
    /** Output feature-map width. */
    u32 outW() const;

    /** Elements in one sample's output tensor. */
    u64 outputElems() const;
    /** Elements in one sample's input tensor (per listed input). */
    u64 inputElems() const;
    /** Weight elements (0 for Pool/Eltwise/MatMul). */
    u64 weightElems() const;
    /** Multiply-accumulate count for one sample. */
    u64 macs() const;
};

/** A whole network plus its default batch size. */
struct Model
{
    std::string name;
    std::vector<Layer> layers;
    u32 defaultBatch = 8;

    /** Total weight bytes at @p elem_bytes per element. */
    u64 weightBytes(u32 elem_bytes) const;
    /** Total MACs for one sample. */
    u64 totalMacs() const;
};

} // namespace mgx::dnn

#endif // MGX_DNN_LAYER_H
