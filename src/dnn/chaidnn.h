/**
 * @file
 * CHaiDNN case study (paper §VI-C).
 *
 * CHaiDNN is Xilinx's HLS DNN accelerator with a three-operation
 * interface — Convolution, Deconvolution, Pooling — with activations
 * fused into the producing operation, so "a deep neural network like
 * AlexNet can be expressed in less than 20 instructions".
 *
 * This module compiles our Model descriptors to that instruction set
 * and models the MGX retrofit the paper describes: a microcontroller
 * that keeps an on-chip VN table with one entry per instruction's
 * output plus two counters (weights and inputs), driving AES-GCM
 * cores for memory protection.
 */

#ifndef MGX_DNN_CHAIDNN_H
#define MGX_DNN_CHAIDNN_H

#include <string>
#include <vector>

#include "layer.h"

namespace mgx::dnn {

/** CHaiDNN's high-level operation set. */
enum class ChaiOp : u8 { Convolution, Deconvolution, Pooling };

/** One CHaiDNN instruction (a DNN layer with fused activation). */
struct ChaiInstruction
{
    ChaiOp op = ChaiOp::Convolution;
    std::string name;
    u64 inputBytes = 0;
    u64 weightBytes = 0;
    u64 outputBytes = 0;
    bool fusedActivation = true;
    u32 vnTableIndex = 0; ///< microcontroller VN-table slot
};

/** The compiled program plus the microcontroller's VN-table layout. */
struct ChaiProgram
{
    std::string modelName;
    std::vector<ChaiInstruction> instructions;

    /** On-chip VN-table bytes: 8 B per instruction + the VN_W and
     *  input counters (paper §VI-C). */
    u64
    vnTableBytes() const
    {
        return (instructions.size() + 2) * 8;
    }
};

/**
 * Compile @p model for CHaiDNN: conv/deconv/pool map directly;
 * dense layers lower to 1x1 convolutions; eltwise/concat layers fuse
 * into their producers (they add no instruction, as in CHaiDNN's
 * fused execution). Models with embeddings or attention matmuls are
 * rejected — CHaiDNN's interface cannot express them.
 * @param elem_bytes data width used for the traffic estimates
 */
ChaiProgram compileForChai(const Model &model, u32 elem_bytes = 1);

/** True if the model only uses operations CHaiDNN supports. */
bool chaiSupports(const Model &model);

} // namespace mgx::dnn

#endif // MGX_DNN_CHAIDNN_H
