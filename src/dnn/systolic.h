/**
 * @file
 * SCALE-Sim-like compute-cycle model of a systolic DNN accelerator.
 *
 * Output-stationary mapping: output pixels spread over PE rows, output
 * channels over PE columns, with the reduction dimension streamed
 * through. Each spatial tile pays the pipeline fill (R + C - 2) on top
 * of its K reduction steps, reproducing SCALE-Sim's utilization
 * behaviour for small layers. Vector-ish layers (pool, eltwise,
 * embedding reduce) run on a column-wide vector unit.
 */

#ifndef MGX_DNN_SYSTOLIC_H
#define MGX_DNN_SYSTOLIC_H

#include "common/types.h"
#include "layer.h"

namespace mgx::dnn {

/**
 * Systolic-array dataflow (SCALE-Sim's three mappings). The choice
 * changes which operand stays pinned in the PEs and therefore the
 * pipeline-fill structure of the compute-cycle model; traffic shapes
 * are handled by the trace generator's tiling and are dataflow-
 * agnostic at the granularity MGX cares about.
 */
enum class Dataflow : u8 {
    OutputStationary, ///< outputs accumulate in place (default)
    WeightStationary, ///< weights pinned; inputs stream through
    InputStationary,  ///< inputs pinned; weights stream through
};

/** Accelerator configuration (paper §VI-A, Cloud and Edge). */
struct DnnAccelConfig
{
    std::string name = "Cloud";
    u32 peRows = 256;
    u32 peCols = 256;
    u64 sramBytes = 24ull << 20;
    double clockMhz = 700.0;
    u32 dramChannels = 4;
    u32 elemBytes = 1; ///< int8 inference by default
    Dataflow dataflow = Dataflow::OutputStationary;
};

/** TPU-v1-like configuration: 64k PEs, 24 MB SRAM, 700 MHz, 4 ch. */
DnnAccelConfig cloudAccel();

/** Samsung-NPU-like configuration: 1k PEs, 4.5 MB SRAM, 900 MHz, 1 ch. */
DnnAccelConfig edgeAccel();

/** Compute cycles for layer @p l at batch @p batch on @p cfg. */
Cycles layerComputeCycles(const Layer &l, u32 batch,
                          const DnnAccelConfig &cfg);

} // namespace mgx::dnn

#endif // MGX_DNN_SYSTOLIC_H
