/**
 * @file
 * DNN pruning support (paper §VII-B).
 *
 * Static pruning simply produces a smaller network (handled by editing
 * the Model). Dynamic pruning skips input-dependent fractions of the
 * feature maps at run time; MGX remains secure because skipped VNs are
 * never reused — the unpruned features are written and later read with
 * the same shared VN_F. This header provides compressed-sparse-format
 * size models (CSR / CSC / RLC) used to pick realistic densities, and
 * a helper that applies dynamic pruning to a kernel.
 */

#ifndef MGX_DNN_PRUNING_H
#define MGX_DNN_PRUNING_H

#include "dnn_kernel.h"

namespace mgx::dnn {

/** Sparse-feature compression formats (paper cites all three). */
enum class SparseFormat { CSR, CSC, RLC };

/**
 * Bytes needed to store a @p rows x @p cols feature map with
 * @p density non-zeros at @p elem_bytes per value in @p format.
 * CSR/CSC carry one index per non-zero plus a pointer per row/column;
 * RLC carries a run header per non-zero (4-bit run length amortized).
 */
u64 compressedBytes(u64 rows, u64 cols, double density, u32 elem_bytes,
                    SparseFormat format);

/**
 * Effective feature density (stored bytes / dense bytes) of a map with
 * @p value_density non-zeros under @p format — what the trace
 * generator's setFeatureDensity() expects.
 */
double effectiveDensity(u64 rows, u64 cols, double value_density,
                        u32 elem_bytes, SparseFormat format);

/**
 * Channel-pruned variant of @p model: every conv layer's output
 * channels (and the next layer's input channels) scaled by @p keep.
 * Models static structured pruning.
 */
Model staticChannelPrune(const Model &model, double keep);

} // namespace mgx::dnn

#endif // MGX_DNN_PRUNING_H
