#include "dnn_kernel.h"

#include <algorithm>

#include "common/bitops.h"
#include "common/log.h"
#include "common/rng.h"
#include "core/counter.h"

namespace mgx::dnn {

using core::AccessList;
using core::LogicalAccess;
using core::makeVn;
using core::Phase;
using core::Trace;

namespace {

/** Feature buffers start here; weights live below. */
constexpr Addr kFeatureBase = 4ull << 30;
constexpr u64 kFeatureRegion = 4ull << 30;
constexpr Addr kGradientBase = 8ull << 30;
constexpr u64 kGradientRegion = 8ull << 30;

/** Tensor-buffer alignment: one coarse-MAC line span (8 x 512 B), so
 *  adjacent tensors never share a MAC block. */
constexpr u64 kTensorAlign = 4096;

/**
 * Byte range of slice @p i of @p parts over a @p total-byte tensor,
 * with slice boundaries aligned to kTensorAlign so disjoint slices
 * never share a MAC block (a shared block would mean two writes with
 * the same VN to the same counter — forbidden).
 */
std::pair<u64, u64>
sliceRange(u64 total, u64 parts, u64 i)
{
    u64 begin = alignDown(total * i / parts, kTensorAlign);
    u64 end = (i + 1 == parts)
                  ? total
                  : alignDown(total * (i + 1) / parts, kTensorAlign);
    if (begin > total)
        begin = total;
    if (end > total)
        end = total;
    return {begin, end};
}

} // namespace

// ---------------------------------------------------------------------------
// RegionAllocator
// ---------------------------------------------------------------------------

RegionAllocator::RegionAllocator(Addr base, u64 size, u64 align)
    : base_(base), align_(align)
{
    freeList_.push_back({base, size});
}

Addr
RegionAllocator::alloc(u64 bytes)
{
    bytes = alignUp(std::max<u64>(bytes, 1), align_);
    for (std::size_t i = 0; i < freeList_.size(); ++i) {
        Block &blk = freeList_[i];
        if (blk.size >= bytes) {
            const Addr addr = blk.addr;
            blk.addr += bytes;
            blk.size -= bytes;
            if (blk.size == 0)
                freeList_.erase(freeList_.begin() +
                                static_cast<std::ptrdiff_t>(i));
            allocated_[addr] = bytes;
            liveBytes_ += bytes;
            return addr;
        }
    }
    fatal("RegionAllocator: out of space (%llu live, wanted %llu)",
          static_cast<unsigned long long>(liveBytes_),
          static_cast<unsigned long long>(bytes));
}

void
RegionAllocator::free(Addr addr)
{
    auto it = allocated_.find(addr);
    if (it == allocated_.end())
        panic("RegionAllocator: double free at %#llx",
              static_cast<unsigned long long>(addr));
    const u64 size = it->second;
    liveBytes_ -= size;
    allocated_.erase(it);

    // Insert sorted and coalesce with neighbours.
    auto pos = std::lower_bound(
        freeList_.begin(), freeList_.end(), addr,
        [](const Block &b, Addr a) { return b.addr < a; });
    pos = freeList_.insert(pos, {addr, size});
    if (pos + 1 != freeList_.end() &&
        pos->addr + pos->size == (pos + 1)->addr) {
        pos->size += (pos + 1)->size;
        freeList_.erase(pos + 1);
    }
    if (pos != freeList_.begin()) {
        auto prev = pos - 1;
        if (prev->addr + prev->size == pos->addr) {
            prev->size += pos->size;
            freeList_.erase(pos);
        }
    }
}

// ---------------------------------------------------------------------------
// DnnKernel
// ---------------------------------------------------------------------------

DnnKernel::DnnKernel(Model model, DnnAccelConfig accel, DnnTask task,
                     u32 batch, u64 seed)
    : model_(std::move(model)), accel_(std::move(accel)), task_(task),
      batch_(batch ? batch : model_.defaultBatch), seed_(seed)
{
    // Static weight placement: one aligned block per parameterized layer.
    weightAddr_.resize(model_.layers.size(), 0);
    Addr next = weightBase_;
    for (std::size_t i = 0; i < model_.layers.size(); ++i) {
        const u64 wb =
            model_.layers[i].weightElems() * accel_.elemBytes;
        if (wb > 0) {
            weightAddr_[i] = next;
            next += alignUp(wb, kTensorAlign);
        }
    }
    if (next > kFeatureBase)
        fatal("model '%s' weights (%llu B) exceed the weight region",
              model_.name.c_str(), static_cast<unsigned long long>(next));
}

std::string
DnnKernel::name() const
{
    return model_.name + (task_ == DnnTask::Training ? "-Train" : "-Inf");
}

void
DnnKernel::setFeatureDensity(double density)
{
    if (density <= 0.0 || density > 1.0)
        fatal("feature density must be in (0, 1]");
    density_ = density;
}

u64
DnnKernel::prunedBytes(u64 bytes) const
{
    if (density_ >= 1.0)
        return bytes;
    return alignUp(static_cast<u64>(static_cast<double>(bytes) *
                                    density_) |
                       1,
                   64);
}

Vn
DnnKernel::bumpFeatureVn()
{
    return state_.bumpCounter("VN_F_next");
}

Vn
DnnKernel::bumpGradientVn()
{
    return state_.bumpCounter("VN_G_next");
}

void
DnnKernel::pushInputReads(const Layer &l, AccessList &out)
{
    if (l.kind == LayerKind::Embedding)
        return; // indices are on-chip; row gathers are emitted separately
    for (int p : l.inputs) {
        if (p < 0) {
            const u64 bytes =
                prunedBytes(static_cast<u64>(batch_) * l.inputElems() *
                            accel_.elemBytes);
            out.push_back({inputAddr_, bytes,
                           makeVn(DataClass::Feature,
                                  state_.counter("VN_input")),
                           AccessType::Read, DataClass::Feature, 0});
        } else {
            const TensorInfo &t =
                features_[static_cast<std::size_t>(p)];
            out.push_back({t.addr, t.bytes,
                           makeVn(DataClass::Feature, t.vn),
                           AccessType::Read, DataClass::Feature, 0});
        }
    }
}

void
DnnKernel::pushWeightRead(std::size_t idx, AccessList &out)
{
    const Layer &l = model_.layers[idx];
    const u64 wb = l.weightElems() * accel_.elemBytes;
    if (wb == 0 || l.kind == LayerKind::Embedding)
        return;
    out.push_back({weightAddr_[idx], wb,
                   makeVn(DataClass::Weight, state_.counter("VN_W")),
                   AccessType::Read, DataClass::Weight, 0});
}

void
DnnKernel::emitForwardLayer(std::size_t idx, core::PhaseSink &sink)
{
    const Layer &l = model_.layers[idx];
    const u64 eb = accel_.elemBytes;
    const u64 out_full = static_cast<u64>(batch_) * l.outputElems() * eb;
    const u64 out_bytes = prunedBytes(out_full);

    // Allocate the output buffer (full size; pruning shrinks traffic,
    // not the reservation).
    TensorInfo &t = features_[idx];
    t.addr = featureAlloc_->alloc(out_full);
    t.bytes = out_bytes;

    const Cycles compute = layerComputeCycles(l, batch_, accel_);

    if (l.kind == LayerKind::Embedding) {
        // Random row gathers; fine-grained MACs on the table.
        Rng rng(seed_ ^ (idx * 0x9e37u));
        Phase p;
        p.name = l.name;
        p.computeCycles = compute;
        const u64 row_bytes = static_cast<u64>(l.rowDim) * eb;
        const Vn vn_w =
            makeVn(DataClass::Weight, state_.counter("VN_W"));
        const u64 lookups =
            static_cast<u64>(batch_) * l.lookupsPerSample;
        for (u64 i = 0; i < lookups; ++i) {
            const u64 row = rng.below(l.numRows);
            p.accesses.push_back({weightAddr_[idx] + row * row_bytes,
                                  row_bytes, vn_w, AccessType::Read,
                                  DataClass::Weight, 64});
        }
        const Vn vn_out = bumpFeatureVn();
        t.vn = vn_out;
        t.writes = 1;
        state_.setTable("VN_F", idx, vn_out);
        p.accesses.push_back({t.addr, t.bytes,
                              makeVn(DataClass::Feature, vn_out),
                              AccessType::Write, DataClass::Feature, 0});
        sink.consume(p);
        return;
    }

    // Tiling decision (paper Fig. 7): K-tiling when the weights exceed
    // half the double-buffered budget, band-tiling when the working set
    // still does not fit.
    const u64 budget = accel_.sramBytes / 2;
    const u64 wb = l.weightElems() * eb;
    u64 in_bytes = 0;
    for (int p : l.inputs) {
        in_bytes += p < 0 ? static_cast<u64>(batch_) * l.inputElems() * eb
                          : features_[static_cast<std::size_t>(p)].bytes;
    }

    u64 k_rounds = 1;
    if (wb > budget / 2)
        k_rounds = divCeil(wb, budget / 2);
    // Limit K rounds to something the reduction dimension supports.
    u64 k_dim = 1;
    switch (l.kind) {
      case LayerKind::Conv:
        k_dim = static_cast<u64>(l.inC) * l.kH * l.kW;
        break;
      case LayerKind::Depthwise:
        k_dim = static_cast<u64>(l.kH) * l.kW;
        break;
      case LayerKind::Dense:
        k_dim = l.inC;
        break;
      case LayerKind::MatMul:
        k_dim = l.mmK;
        break;
      default:
        break;
    }
    k_rounds = std::max<u64>(1, std::min(k_rounds, std::max<u64>(k_dim, 1)));

    u64 bands = 1;
    const u64 per_round = wb / k_rounds + in_bytes / k_rounds + out_bytes;
    if (per_round > budget) {
        const u64 avail = budget > wb / k_rounds
                              ? budget - wb / k_rounds
                              : budget / 2;
        bands = std::max<u64>(
            1, divCeil(in_bytes / k_rounds + out_bytes, avail));
        bands = std::min(bands, std::max<u64>(out_bytes / kTensorAlign, 1));
    }

    const Cycles phase_compute =
        std::max<Cycles>(1, compute / (k_rounds * bands));

    Vn vn_prev = 0;
    for (u64 k = 0; k < k_rounds; ++k) {
        const Vn vn_write = bumpFeatureVn();
        for (u64 band = 0; band < bands; ++band) {
            auto [ob, oe] = sliceRange(out_bytes, bands, band);
            if (ob >= oe)
                continue;
            Phase p;
            p.name = l.name + "[k" + std::to_string(k) + ".b" +
                     std::to_string(band) + "]";
            p.computeCycles = phase_compute;

            // Weights chunk for this round (read once, in band 0).
            if (wb > 0 && band == 0) {
                auto [wbgn, wend] = sliceRange(wb, k_rounds, k);
                if (wbgn < wend) {
                    p.accesses.push_back(
                        {weightAddr_[idx] + wbgn, wend - wbgn,
                         makeVn(DataClass::Weight, state_.counter("VN_W")),
                         AccessType::Read, DataClass::Weight, 0});
                }
            }

            // Input slice: one of k_rounds x bands pieces per producer.
            const u64 part = k * bands + band;
            for (int prod : l.inputs) {
                const bool external = prod < 0;
                const Addr base =
                    external
                        ? inputAddr_
                        : features_[static_cast<std::size_t>(prod)].addr;
                const u64 total =
                    external
                        ? prunedBytes(static_cast<u64>(batch_) *
                                      l.inputElems() * eb)
                        : features_[static_cast<std::size_t>(prod)].bytes;
                const Vn vn_in =
                    external
                        ? makeVn(DataClass::Feature,
                                 state_.counter("VN_input"))
                        : makeVn(DataClass::Feature,
                                 features_[static_cast<std::size_t>(prod)]
                                     .vn);
                auto [ib, ie] =
                    sliceRange(total, k_rounds * bands, part);
                if (ib < ie) {
                    p.accesses.push_back({base + ib, ie - ib, vn_in,
                                          AccessType::Read,
                                          DataClass::Feature, 0});
                }
            }

            // Partial-sum read-back (Fig. 7 lines 11-13).
            if (k > 0) {
                p.accesses.push_back(
                    {t.addr + ob, oe - ob,
                     makeVn(DataClass::Feature, vn_prev), AccessType::Read,
                     DataClass::Feature, 0});
            }
            // Output write with the round's VN (Fig. 7 lines 15-16).
            p.accesses.push_back({t.addr + ob, oe - ob,
                                  makeVn(DataClass::Feature, vn_write),
                                  AccessType::Write, DataClass::Feature, 0});
            sink.consume(p);
        }
        vn_prev = vn_write;
        ++t.writes;
        t.vn = vn_write;
    }
    state_.setTable("VN_F", idx, t.vn);
}

void
DnnKernel::emitBackwardLayer(std::size_t idx, core::PhaseSink &sink)
{
    const Layer &l = model_.layers[idx];
    const u64 eb = accel_.elemBytes;
    TensorInfo &gy = gradients_[idx];
    if (gy.writes == 0)
        return; // no consumer produced a gradient (dead output)

    const u64 wb = l.weightElems() * eb;
    const Cycles compute = 2 * layerComputeCycles(l, batch_, accel_);

    if (l.kind == LayerKind::Embedding) {
        Phase p;
        p.name = l.name + ".bwd";
        p.computeCycles = compute;
        p.accesses.push_back({gy.addr, gy.bytes,
                              makeVn(DataClass::Gradient, gy.vn),
                              AccessType::Read, DataClass::Gradient, 0});
        const u64 row_bytes = static_cast<u64>(l.rowDim) * eb;
        const u64 lookups =
            static_cast<u64>(batch_) * l.lookupsPerSample;
        const Vn vn_gw = bumpGradientVn();
        // Gathered-row gradients are written densely into a staging
        // buffer (the sparse scatter is resolved by the optimizer,
        // which the paper does not emulate either).
        const Addr scatter =
            kGradientBase + kGradientRegion - (64ull << 20);
        for (u64 i = 0; i < lookups; ++i) {
            p.accesses.push_back({scatter + i * row_bytes, row_bytes,
                                  makeVn(DataClass::Gradient, vn_gw),
                                  AccessType::Write, DataClass::Gradient, 64});
        }
        sink.consume(p);
        return;
    }

    // Band-split so the working set fits on chip; one VN for the whole
    // gx tensor since each address is written once (no K-tiling in the
    // simplified backward schedule).
    const u64 budget = accel_.sramBytes / 2;
    u64 work = gy.bytes + wb;
    for (int prod : l.inputs)
        if (prod >= 0)
            work += 2 * features_[static_cast<std::size_t>(prod)].bytes;
    const u64 bands = std::max<u64>(1, divCeil(work, budget));

    // Gradient VNs for each producer's gx written by this layer.
    struct GxTarget
    {
        std::size_t prod;
        Vn vnRead = 0; ///< valid if accumulating into an existing gx
        Vn vnWrite = 0;
        bool accumulate = false;
    };
    std::vector<GxTarget> targets;
    for (int prod : l.inputs) {
        if (prod < 0)
            continue;
        const auto pi = static_cast<std::size_t>(prod);
        TensorInfo &gx = gradients_[pi];
        GxTarget tgt;
        tgt.prod = pi;
        if (gx.writes == 0) {
            gx.addr = featureAlloc_->alloc(features_[pi].bytes);
            gx.bytes = features_[pi].bytes;
        } else {
            tgt.accumulate = true;
            tgt.vnRead = gx.vn;
        }
        tgt.vnWrite = bumpGradientVn();
        gx.vn = tgt.vnWrite;
        ++gx.writes;
        state_.setTable("VN_G", pi, gx.vn);
        targets.push_back(tgt);
    }
    const Vn vn_gw = wb > 0 ? bumpGradientVn() : 0;
    const Addr gw_addr =
        wb > 0 ? kGradientBase + (weightAddr_[idx] % kGradientRegion) : 0;

    const Cycles phase_compute = std::max<Cycles>(1, compute / bands);
    for (u64 band = 0; band < bands; ++band) {
        Phase p;
        p.name = l.name + ".bwd[b" + std::to_string(band) + "]";
        p.computeCycles = phase_compute;

        // Incoming gradient slice.
        auto [gb, ge] = sliceRange(gy.bytes, bands, band);
        if (gb < ge) {
            p.accesses.push_back({gy.addr + gb, ge - gb,
                                  makeVn(DataClass::Gradient, gy.vn),
                                  AccessType::Read, DataClass::Gradient, 0});
        }
        // Saved features (for gw) and weights (for gx). The external
        // input is re-read too: the first layer's gw needs it.
        for (int prod : l.inputs) {
            const bool external = prod < 0;
            const Addr base =
                external
                    ? inputAddr_
                    : features_[static_cast<std::size_t>(prod)].addr;
            const u64 total =
                external
                    ? inputBytes_
                    : features_[static_cast<std::size_t>(prod)].bytes;
            const Vn vn =
                external
                    ? state_.counter("VN_input")
                    : features_[static_cast<std::size_t>(prod)].vn;
            auto [xb, xe] = sliceRange(total, bands, band);
            if (xb < xe) {
                p.accesses.push_back(
                    {base + xb, xe - xb, makeVn(DataClass::Feature, vn),
                     AccessType::Read, DataClass::Feature, 0});
            }
        }
        if (wb > 0 && band == 0) {
            p.accesses.push_back(
                {weightAddr_[idx], wb,
                 makeVn(DataClass::Weight, state_.counter("VN_W")),
                 AccessType::Read, DataClass::Weight, 0});
        }

        // Outgoing gradients.
        for (const GxTarget &tgt : targets) {
            TensorInfo &gx = gradients_[tgt.prod];
            auto [ob, oe] = sliceRange(gx.bytes, bands, band);
            if (ob >= oe)
                continue;
            if (tgt.accumulate) {
                p.accesses.push_back(
                    {gx.addr + ob, oe - ob,
                     makeVn(DataClass::Gradient, tgt.vnRead),
                     AccessType::Read, DataClass::Gradient, 0});
            }
            p.accesses.push_back({gx.addr + ob, oe - ob,
                                  makeVn(DataClass::Gradient, tgt.vnWrite),
                                  AccessType::Write, DataClass::Gradient, 0});
        }
        // Weight gradient slice.
        if (wb > 0) {
            auto [ob, oe] = sliceRange(wb, bands, band);
            if (ob < oe) {
                p.accesses.push_back(
                    {gw_addr + ob, oe - ob,
                     makeVn(DataClass::Gradient, vn_gw), AccessType::Write,
                     DataClass::Gradient, 0});
            }
        }
        sink.consume(p);
    }

    // gy is fully consumed; recycle its buffer.
    featureAlloc_->free(gy.addr);
    gy.writes = 0;
}

void
DnnKernel::beginRun()
{
    const std::size_t n = model_.layers.size();
    features_.assign(n, {});
    gradients_.assign(n, {});
    remainingUses_.assign(n, 0);
    featureAlloc_.emplace(kFeatureBase, kFeatureRegion);
    state_.makeTable("VN_F", n);
    state_.makeTable("VN_G", n);
    if (state_.counter("VN_W") == 0)
        state_.setCounter("VN_W", 1); // weights loaded once at setup
    state_.bumpCounter("VN_input");   // a new input arrived

    // Consumer counts for buffer recycling.
    for (const auto &l : model_.layers)
        for (int p : l.inputs)
            if (p >= 0)
                ++remainingUses_[static_cast<std::size_t>(p)];

    // The external input tensor.
    inputBytes_ = static_cast<u64>(batch_) *
                  model_.layers.front().inputElems() * accel_.elemBytes;
    inputAddr_ = featureAlloc_->alloc(std::max<u64>(inputBytes_, 64));
}

/**
 * Streaming producer: one layer's phases per chunk — forward layers in
 * order, then (training) the loss-gradient seed and the backward
 * layers in reverse. Buffer recycling happens as each layer is
 * emitted, so the address map and VN tables evolve exactly as the
 * materializing loop evolved them.
 */
class DnnKernel::Source final : public core::PhaseSource
{
  public:
    explicit Source(DnnKernel &kernel) : k_(&kernel)
    {
        k_->beginRun();
    }

    bool
    nextChunk(core::PhaseSink &sink) override
    {
        const std::size_t n = k_->model_.layers.size();
        switch (stage_) {
          case Stage::Forward: {
            k_->emitForwardLayer(idx_, sink);
            // Recycle producers that have no remaining consumers
            // (inference only; training keeps features for backward).
            if (k_->task_ == DnnTask::Inference) {
                for (int p : k_->model_.layers[idx_].inputs) {
                    if (p < 0)
                        continue;
                    auto pi = static_cast<std::size_t>(p);
                    if (--k_->remainingUses_[pi] == 0)
                        k_->featureAlloc_->free(k_->features_[pi].addr);
                }
            }
            if (++idx_ < n)
                return true;
            if (k_->task_ != DnnTask::Training) {
                stage_ = Stage::Done;
                return false;
            }
            stage_ = Stage::Loss;
            return true;
          }
          case Stage::Loss: {
            // Loss gradient seeds the backward pass.
            TensorInfo &gl = k_->gradients_[n - 1];
            gl.bytes = k_->features_[n - 1].bytes;
            gl.addr = k_->featureAlloc_->alloc(gl.bytes);
            gl.vn = k_->bumpGradientVn();
            gl.writes = 1;
            Phase loss;
            loss.name = "loss-grad";
            loss.computeCycles = 1;
            loss.accesses.push_back(
                {gl.addr, gl.bytes, makeVn(DataClass::Gradient, gl.vn),
                 AccessType::Write, DataClass::Gradient, 0});
            sink.consume(loss);
            stage_ = Stage::Backward;
            idx_ = n; // emitted as idx_ - 1, counting down
            return true;
          }
          case Stage::Backward: {
            k_->emitBackwardLayer(idx_ - 1, sink);
            if (--idx_ > 0)
                return true;
            stage_ = Stage::Done;
            return false;
          }
          case Stage::Done:
            return false;
        }
        return false;
    }

  private:
    enum class Stage { Forward, Loss, Backward, Done };

    DnnKernel *k_;
    Stage stage_ = Stage::Forward;
    std::size_t idx_ = 0;
};

std::unique_ptr<core::PhaseSource>
DnnKernel::stream()
{
    return std::make_unique<Source>(*this);
}

} // namespace mgx::dnn
