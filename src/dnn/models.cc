#include "models.h"

#include <tuple>

#include "common/log.h"

namespace mgx::dnn {
namespace {

/** Running builder state: tracks the previous layer's output shape. */
class Builder
{
  public:
    explicit Builder(std::string model_name)
    {
        model_.name = std::move(model_name);
    }

    /** Index of the most recently added layer. */
    int last() const { return static_cast<int>(model_.layers.size()) - 1; }

    int
    conv(const std::string &name, u32 in_c, u32 in_h, u32 in_w, u32 out_c,
         u32 k, u32 stride, u32 pad, std::vector<int> inputs)
    {
        Layer l;
        l.name = name;
        l.kind = LayerKind::Conv;
        l.inC = in_c;
        l.inH = in_h;
        l.inW = in_w;
        l.outC = out_c;
        l.kH = l.kW = k;
        l.stride = stride;
        l.pad = pad;
        l.inputs = std::move(inputs);
        model_.layers.push_back(l);
        return last();
    }

    /** Conv whose input is the previous layer's output shape. */
    int
    convAuto(const std::string &name, u32 out_c, u32 k, u32 stride,
             u32 pad, int input = -2)
    {
        auto [c, h, w] = outShape(input);
        return conv(name, c, h, w, out_c, k, stride, pad,
                    {input == -2 ? last() : input});
    }

    int
    pool(const std::string &name, u32 k, u32 stride, int input = -2)
    {
        auto [c, h, w] = outShape(input);
        Layer l;
        l.name = name;
        l.kind = LayerKind::Pool;
        l.inC = c;
        l.inH = h;
        l.inW = w;
        l.outC = c;
        l.kH = l.kW = k;
        l.stride = stride;
        l.inputs = {input == -2 ? last() : input};
        model_.layers.push_back(l);
        return last();
    }

    int
    dense(const std::string &name, u32 in_f, u32 out_f, int input = -2)
    {
        Layer l;
        l.name = name;
        l.kind = LayerKind::Dense;
        l.inC = in_f;
        l.outC = out_f;
        l.inH = l.inW = 1;
        l.inputs = {input == -2 ? last() : input};
        model_.layers.push_back(l);
        return last();
    }

    int
    eltwise(const std::string &name, std::vector<int> inputs)
    {
        auto [c, h, w] = outShape(inputs.front());
        Layer l;
        l.name = name;
        l.kind = LayerKind::Eltwise;
        l.inC = c;
        l.inH = h;
        l.inW = w;
        l.outC = c;
        l.inputs = std::move(inputs);
        model_.layers.push_back(l);
        return last();
    }

    /** Depthwise conv taking the previous layer's output shape. */
    int
    depthwise(const std::string &name, u32 k, u32 stride, u32 pad,
              int input = -2)
    {
        auto [c, h, w] = outShape(input);
        Layer l;
        l.name = name;
        l.kind = LayerKind::Depthwise;
        l.inC = c;
        l.inH = h;
        l.inW = w;
        l.outC = c;
        l.kH = l.kW = k;
        l.stride = stride;
        l.pad = pad;
        l.inputs = {input == -2 ? last() : input};
        model_.layers.push_back(l);
        return last();
    }

    /** Channel-wise concatenation of branches (Inception). */
    int
    concat(const std::string &name, std::vector<int> inputs)
    {
        int idx = eltwise(name, inputs);
        Layer &l = model_.layers[static_cast<std::size_t>(idx)];
        u32 total_c = 0;
        for (int in : inputs)
            total_c +=
                model_.layers[static_cast<std::size_t>(in)].outC;
        l.inC = l.outC = total_c;
        return idx;
    }

    int
    matmul(const std::string &name, u32 batch, u32 m, u32 k, u32 n,
           std::vector<int> inputs)
    {
        Layer l;
        l.name = name;
        l.kind = LayerKind::MatMul;
        l.mmBatch = batch;
        l.mmM = m;
        l.mmK = k;
        l.mmN = n;
        l.inputs = std::move(inputs);
        model_.layers.push_back(l);
        return last();
    }

    int
    embedding(const std::string &name, u64 rows, u32 dim, u32 lookups)
    {
        Layer l;
        l.name = name;
        l.kind = LayerKind::Embedding;
        l.numRows = rows;
        l.rowDim = dim;
        l.lookupsPerSample = lookups;
        l.inputs = {-1};
        model_.layers.push_back(l);
        return last();
    }

    Model
    finish(u32 batch)
    {
        model_.defaultBatch = batch;
        return std::move(model_);
    }

  private:
    /** (channels, height, width) produced by layer @p idx (-2 = last). */
    std::tuple<u32, u32, u32>
    outShape(int idx) const
    {
        const int i = idx == -2 ? last() : idx;
        if (i < 0)
            panic("builder: no producer for auto-shaped layer");
        const Layer &l = model_.layers[static_cast<std::size_t>(i)];
        return {l.outC, l.outH(), l.outW()};
    }

    Model model_;
};

/** Bottleneck residual block (ResNet-50), returns the output index. */
int
bottleneck(Builder &b, const std::string &name, int input, u32 in_c,
           u32 mid_c, u32 out_c, u32 in_hw, u32 stride)
{
    const u32 out_hw = in_hw / stride;
    int c1 = b.conv(name + ".conv1", in_c, in_hw, in_hw, mid_c, 1, 1, 0,
                    {input});
    int c2 = b.conv(name + ".conv2", mid_c, in_hw, in_hw, mid_c, 3,
                    stride, 1, {c1});
    int c3 = b.conv(name + ".conv3", mid_c, out_hw, out_hw, out_c, 1, 1,
                    0, {c2});
    int skip = input;
    if (stride != 1 || in_c != out_c) {
        skip = b.conv(name + ".down", in_c, in_hw, in_hw, out_c, 1,
                      stride, 0, {input});
    }
    return b.eltwise(name + ".add", {c3, skip});
}

/** Inception module: four parallel branches concatenated. */
int
inception(Builder &b, const std::string &name, int input, u32 in_c,
          u32 hw, u32 c1, u32 c3r, u32 c3, u32 c5r, u32 c5, u32 cp)
{
    int b1 = b.conv(name + ".1x1", in_c, hw, hw, c1, 1, 1, 0, {input});
    int b2r = b.conv(name + ".3x3r", in_c, hw, hw, c3r, 1, 1, 0, {input});
    int b2 = b.conv(name + ".3x3", c3r, hw, hw, c3, 3, 1, 1, {b2r});
    int b3r = b.conv(name + ".5x5r", in_c, hw, hw, c5r, 1, 1, 0, {input});
    int b3 = b.conv(name + ".5x5", c5r, hw, hw, c5, 5, 1, 2, {b3r});
    int bp = b.pool(name + ".pool", 3, 1, input);
    int bpp = b.conv(name + ".poolproj", in_c, hw, hw, cp, 1, 1, 0, {bp});
    // Concatenation is modeled as a gather of the branches that writes
    // the combined feature map once.
    return b.concat(name + ".concat", {b1, b2, b3, bpp});
}

} // namespace

Model
alexnet()
{
    Builder b("AlexNet");
    b.conv("conv1", 3, 227, 227, 96, 11, 4, 0, {-1});
    b.pool("pool1", 3, 2);
    b.convAuto("conv2", 256, 5, 1, 2);
    b.pool("pool2", 3, 2);
    b.convAuto("conv3", 384, 3, 1, 1);
    b.convAuto("conv4", 384, 3, 1, 1);
    b.convAuto("conv5", 256, 3, 1, 1);
    b.pool("pool5", 3, 2);
    b.dense("fc6", 9216, 4096);
    b.dense("fc7", 4096, 4096);
    b.dense("fc8", 4096, 1000);
    return b.finish(8);
}

Model
vgg16()
{
    Builder b("VGG");
    b.conv("conv1_1", 3, 224, 224, 64, 3, 1, 1, {-1});
    b.convAuto("conv1_2", 64, 3, 1, 1);
    b.pool("pool1", 2, 2);
    b.convAuto("conv2_1", 128, 3, 1, 1);
    b.convAuto("conv2_2", 128, 3, 1, 1);
    b.pool("pool2", 2, 2);
    b.convAuto("conv3_1", 256, 3, 1, 1);
    b.convAuto("conv3_2", 256, 3, 1, 1);
    b.convAuto("conv3_3", 256, 3, 1, 1);
    b.pool("pool3", 2, 2);
    b.convAuto("conv4_1", 512, 3, 1, 1);
    b.convAuto("conv4_2", 512, 3, 1, 1);
    b.convAuto("conv4_3", 512, 3, 1, 1);
    b.pool("pool4", 2, 2);
    b.convAuto("conv5_1", 512, 3, 1, 1);
    b.convAuto("conv5_2", 512, 3, 1, 1);
    b.convAuto("conv5_3", 512, 3, 1, 1);
    b.pool("pool5", 2, 2);
    b.dense("fc6", 25088, 4096);
    b.dense("fc7", 4096, 4096);
    b.dense("fc8", 4096, 1000);
    return b.finish(8);
}

Model
googlenet()
{
    Builder b("GoogleNet");
    b.conv("conv1", 3, 224, 224, 64, 7, 2, 3, {-1});
    b.pool("pool1", 3, 2);
    b.convAuto("conv2r", 64, 1, 1, 0);
    b.convAuto("conv2", 192, 3, 1, 1);
    b.pool("pool2", 3, 2);
    int x = b.last();
    x = inception(b, "3a", x, 192, 28, 64, 96, 128, 16, 32, 32);
    x = inception(b, "3b", x, 256, 28, 128, 128, 192, 32, 96, 64);
    x = b.pool("pool3", 3, 2, x);
    x = inception(b, "4a", x, 480, 14, 192, 96, 208, 16, 48, 64);
    x = inception(b, "4b", x, 512, 14, 160, 112, 224, 24, 64, 64);
    x = inception(b, "4c", x, 512, 14, 128, 128, 256, 24, 64, 64);
    x = inception(b, "4d", x, 512, 14, 112, 144, 288, 32, 64, 64);
    x = inception(b, "4e", x, 528, 14, 256, 160, 320, 32, 128, 128);
    x = b.pool("pool4", 3, 2, x);
    x = inception(b, "5a", x, 832, 7, 256, 160, 320, 32, 128, 128);
    x = inception(b, "5b", x, 832, 7, 384, 192, 384, 48, 128, 128);
    x = b.pool("pool5", 7, 1, x);
    b.dense("fc", 1024, 1000, x);
    return b.finish(8);
}

Model
resnet50()
{
    Builder b("ResNet");
    b.conv("conv1", 3, 224, 224, 64, 7, 2, 3, {-1});
    int x = b.pool("pool1", 3, 2);

    struct Stage { u32 blocks, mid, out, hw, stride; };
    const Stage stages[] = {
        {3, 64, 256, 56, 1},
        {4, 128, 512, 56, 2},
        {6, 256, 1024, 28, 2},
        {3, 512, 2048, 14, 2},
    };
    u32 in_c = 64;
    for (unsigned s = 0; s < 4; ++s) {
        const Stage &st = stages[s];
        u32 hw = st.hw;
        for (u32 blk = 0; blk < st.blocks; ++blk) {
            const u32 stride = blk == 0 ? st.stride : 1;
            const std::string name =
                "res" + std::to_string(s + 2) + "." + std::to_string(blk);
            x = bottleneck(b, name, x, in_c, st.mid, st.out, hw, stride);
            if (blk == 0)
                hw /= st.stride;
            in_c = st.out;
        }
    }
    x = b.pool("avgpool", 7, 1, x);
    b.dense("fc", 2048, 1000, x);
    return b.finish(8);
}

Model
mobilenetV1()
{
    Builder b("MobileNet");
    b.conv("conv1", 3, 224, 224, 32, 3, 2, 1, {-1});
    // 13 depthwise-separable blocks (MobileNet-v1 geometry).
    struct Block { u32 out; u32 stride; };
    const Block blocks[] = {{64, 1},  {128, 2}, {128, 1}, {256, 2},
                            {256, 1}, {512, 2}, {512, 1}, {512, 1},
                            {512, 1}, {512, 1}, {512, 1}, {1024, 2},
                            {1024, 1}};
    int i = 0;
    for (const Block &blk : blocks) {
        const std::string p = "dw" + std::to_string(++i);
        b.depthwise(p + ".dw", 3, blk.stride, 1);
        b.convAuto(p + ".pw", blk.out, 1, 1, 0);
    }
    b.pool("avgpool", 7, 1);
    b.dense("fc", 1024, 1000);
    return b.finish(8);
}

Model
bertBase(u32 seq_len)
{
    constexpr u32 kHidden = 768;
    constexpr u32 kHeads = 12;
    constexpr u32 kHeadDim = kHidden / kHeads;
    constexpr u32 kFfn = 3072;

    Builder b("BERT");
    // Token + position embeddings: one row gather per token.
    int x = b.embedding("embed", 30522, kHidden, seq_len);
    for (u32 l = 0; l < 12; ++l) {
        const std::string p = "enc" + std::to_string(l);
        // Token-wise dense layers as 1x1 convs over the sequence dim.
        int qkv = b.conv(p + ".qkv", kHidden, seq_len, 1, 3 * kHidden, 1,
                         1, 0, {x});
        int scores = b.matmul(p + ".scores", kHeads, seq_len, kHeadDim,
                              seq_len, {qkv});
        int ctx = b.matmul(p + ".context", kHeads, seq_len, seq_len,
                           kHeadDim, {scores, qkv});
        int proj = b.conv(p + ".proj", kHidden, seq_len, 1, kHidden, 1, 1,
                          0, {ctx});
        int add1 = b.eltwise(p + ".add1", {proj, x});
        int ff1 = b.conv(p + ".ffn1", kHidden, seq_len, 1, kFfn, 1, 1, 0,
                         {add1});
        int ff2 = b.conv(p + ".ffn2", kFfn, seq_len, 1, kHidden, 1, 1, 0,
                         {ff1});
        x = b.eltwise(p + ".add2", {ff2, add1});
    }
    b.dense("pooler", kHidden, kHidden, x);
    return b.finish(8);
}

Model
dlrm(u64 rows_per_table, u32 row_dim)
{
    Builder b("DLRM");
    // Bottom MLP over 13 dense features (MLPerf DLRM geometry).
    b.dense("bot0", 13, 512);
    b.dense("bot1", 512, 256);
    b.dense("bot2", 256, 128);
    // 26 sparse-feature embedding tables, one lookup each.
    for (int t = 0; t < 26; ++t)
        b.embedding("emb" + std::to_string(t), rows_per_table, row_dim,
                    1);
    // Pairwise feature interaction: 27 vectors of row_dim.
    b.matmul("interact", 1, 27, row_dim, 27, {b.last()});
    // Top MLP over the 27*26/2 interaction terms + dense features.
    b.dense("top0", 479, 1024);
    b.dense("top1", 1024, 1024);
    b.dense("top2", 1024, 512);
    b.dense("top3", 512, 256);
    b.dense("top4", 256, 1);
    return b.finish(128);
}

std::vector<Model>
paperModels()
{
    return {vgg16(),   alexnet(), googlenet(),
            resnet50(), bertBase(), dlrm()};
}

Model
modelByName(const std::string &name)
{
    if (name == "VGG")
        return vgg16();
    if (name == "AlexNet")
        return alexnet();
    if (name == "GoogleNet")
        return googlenet();
    if (name == "ResNet")
        return resnet50();
    if (name == "BERT")
        return bertBase();
    if (name == "DLRM")
        return dlrm();
    if (name == "MobileNet")
        return mobilenetV1();
    fatal("unknown model '%s'", name.c_str());
}

} // namespace mgx::dnn
