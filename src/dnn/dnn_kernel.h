/**
 * @file
 * The DNN accelerator kernel: schedules a model onto the systolic
 * array, manages the feature/weight/gradient address map, and — the
 * MGX contribution — generates every access's version number from
 * on-chip state exactly as paper §IV-C prescribes:
 *
 *  - VN_F: one entry per layer output; the value comes from a global
 *    monotonic feature counter, bumped once per DRAM write of the
 *    tensor (so K-tiled layers that rewrite their output t times use
 *    t successive values — Fig. 7).
 *  - VN_W: one counter for all weights; constant during inference.
 *  - VN_G: per-gradient-tensor entries during backpropagation, from a
 *    global gradient counter (Fig. 8b).
 *
 * Feature buffers are recycled once all consumers have read them, so
 * the same DRAM addresses are reused across layers with strictly
 * increasing VNs — the property the InvariantChecker validates.
 */

#ifndef MGX_DNN_DNN_KERNEL_H
#define MGX_DNN_DNN_KERNEL_H

#include <map>
#include <optional>

#include "core/kernel.h"
#include "layer.h"
#include "systolic.h"

namespace mgx::dnn {

/** Inference (forward only) or training (forward + backward). */
enum class DnnTask { Inference, Training };

/** A simple first-fit allocator over the feature region. */
class RegionAllocator
{
  public:
    RegionAllocator(Addr base, u64 size, u64 align = 4096);

    /** Allocate @p bytes; fatal on exhaustion. */
    Addr alloc(u64 bytes);

    /** Return a block to the free list (coalescing neighbours). */
    void free(Addr addr);

    /** Bytes currently allocated. */
    u64 liveBytes() const { return liveBytes_; }

  private:
    struct Block { Addr addr; u64 size; };
    Addr base_;
    u64 align_;
    u64 liveBytes_ = 0;
    std::vector<Block> freeList_;          ///< sorted by address
    std::map<Addr, u64> allocated_;        ///< addr -> size
};

/** Where each tensor of the run lives and its current VN value. */
struct TensorInfo
{
    Addr addr = 0;
    u64 bytes = 0;
    Vn vn = 0;       ///< raw VN value of the last completed write
    u32 writes = 0;  ///< times written so far (t in Fig. 7)
};

/** The control-processor program for one DNN workload. */
class DnnKernel : public core::Kernel
{
  public:
    /**
     * @param model  network description
     * @param accel  array dimensions / SRAM / clock
     * @param task   inference or training
     * @param batch  0 = the model's default batch
     * @param seed   RNG seed for embedding-lookup synthesis
     */
    DnnKernel(Model model, DnnAccelConfig accel,
              DnnTask task = DnnTask::Inference, u32 batch = 0,
              u64 seed = 1);

    std::string name() const override;

    /** Stream one forward (+ backward when training) pass, one layer's
     *  phases per chunk. */
    std::unique_ptr<core::PhaseSource> stream() override;

    /** Per-layer output tensor info after generate() (tests). */
    const std::vector<TensorInfo> &featureTensors() const
    {
        return features_;
    }

    /** On-chip VN state footprint in bytes (paper: ~1 KB / 127 layers). */
    u64 vnStateBytes() const { return state_.onChipBytes(); }

    /**
     * Per-layer feature density for pruning studies (paper §VII-B):
     * fraction of output feature bytes actually written/read. 1.0 =
     * dense. Values < 1 emit accesses only for the unpruned prefix of
     * each tile while keeping the same shared VN_F.
     */
    void setFeatureDensity(double density);

    const Model &model() const { return model_; }
    u32 batch() const { return batch_; }

  private:
    class Source; // the streaming producer (dnn_kernel.cc)

    /** Reset per-run state: address map, VN tables, consumer counts. */
    void beginRun();

    /** Emit the phases of one forward layer into @p sink. */
    void emitForwardLayer(std::size_t idx, core::PhaseSink &sink);

    /** Emit the phases of one backward layer into @p sink. */
    void emitBackwardLayer(std::size_t idx, core::PhaseSink &sink);

    /** Read accesses for layer inputs (features or model input). */
    void pushInputReads(const Layer &l, core::AccessList &out);

    /** Weight-read access for layer @p idx (if it has weights). */
    void pushWeightRead(std::size_t idx, core::AccessList &out);

    /** Next value of the global feature counter (also bumps it). */
    Vn bumpFeatureVn();
    Vn bumpGradientVn();

    /** Scale bytes by the pruning density (64 B floor). */
    u64 prunedBytes(u64 bytes) const;

    Model model_;
    DnnAccelConfig accel_;
    DnnTask task_;
    u32 batch_;
    u64 seed_;
    double density_ = 1.0;

    // Address map.
    Addr weightBase_ = 0;
    std::vector<Addr> weightAddr_;    ///< per layer (0 if none)
    std::optional<RegionAllocator> featureAlloc_;
    std::vector<TensorInfo> features_;   ///< per layer output
    std::vector<TensorInfo> gradients_;  ///< per layer d(output)
    std::vector<int> remainingUses_;     ///< consumers not yet run
    Addr inputAddr_ = 0;              ///< the external input tensor
    u64 inputBytes_ = 0;
};

} // namespace mgx::dnn

#endif // MGX_DNN_DNN_KERNEL_H
