#include "pruning.h"

#include <algorithm>
#include <cmath>

#include "common/log.h"

namespace mgx::dnn {

u64
compressedBytes(u64 rows, u64 cols, double density, u32 elem_bytes,
                SparseFormat format)
{
    const u64 total = rows * cols;
    const u64 nnz = static_cast<u64>(
        std::ceil(static_cast<double>(total) * density));
    switch (format) {
      case SparseFormat::CSR:
        // values + 2 B column index per nnz + 4 B row pointer per row.
        return nnz * elem_bytes + nnz * 2 + rows * 4;
      case SparseFormat::CSC:
        return nnz * elem_bytes + nnz * 2 + cols * 4;
      case SparseFormat::RLC:
        // value + 4-bit run length per nnz (packed two per byte).
        return nnz * elem_bytes + (nnz + 1) / 2;
    }
    return total * elem_bytes;
}

double
effectiveDensity(u64 rows, u64 cols, double value_density, u32 elem_bytes,
                 SparseFormat format)
{
    const double dense =
        static_cast<double>(rows * cols) * elem_bytes;
    const double stored = static_cast<double>(
        compressedBytes(rows, cols, value_density, elem_bytes, format));
    return std::min(1.0, stored / dense);
}

Model
staticChannelPrune(const Model &model, double keep)
{
    if (keep <= 0.0 || keep > 1.0)
        fatal("channel keep ratio must be in (0, 1]");
    Model pruned = model;
    pruned.name = model.name + "-pruned";
    auto scale = [keep](u32 c) {
        return std::max<u32>(
            1, static_cast<u32>(std::lround(c * keep)));
    };
    for (std::size_t i = 0; i < pruned.layers.size(); ++i) {
        Layer &l = pruned.layers[i];
        if (l.kind != LayerKind::Conv)
            continue;
        // Keep the stem's input channels (images stay 3-channel).
        bool external = false;
        for (int p : l.inputs)
            external |= p < 0;
        if (!external)
            l.inC = scale(l.inC);
        l.outC = scale(l.outC);
    }
    // Propagate to dependent pool/eltwise shapes.
    for (Layer &l : pruned.layers) {
        if (l.kind == LayerKind::Pool || l.kind == LayerKind::Eltwise) {
            for (int p : l.inputs) {
                if (p >= 0) {
                    l.inC = pruned.layers[static_cast<std::size_t>(p)]
                                .outC;
                    l.outC = l.inC;
                    break;
                }
            }
        }
    }
    return pruned;
}

} // namespace mgx::dnn
