/**
 * @file
 * AES counter-mode encryption with the MGX counter construction.
 *
 * The counter block fed to AES is the concatenation of a 64-bit address
 * field and a 64-bit version number (paper Fig. 6). The top two bits of
 * the VN field carry the data-class tag (features 00, weights 01,
 * gradients 10, other classes remapped onto the same 2-bit space per
 * kernel) so that two data classes sharing a VN value can never produce
 * the same counter.
 */

#ifndef MGX_CRYPTO_CTR_MODE_H
#define MGX_CRYPTO_CTR_MODE_H

#include <cstddef>
#include <span>

#include "aes128.h"
#include "common/types.h"

namespace mgx::crypto {

/**
 * Build the 128-bit counter block from (address, version number).
 * Big-endian packing: bytes 0..7 hold the address, bytes 8..15 the VN.
 */
Block makeCounter(Addr addr, Vn vn);

/**
 * AES-CTR encryption engine bound to one key.
 *
 * A data buffer of N bytes starting at @p addr is treated as a run of
 * 16-byte AES blocks; block i uses counter makeCounter(addr + 16*i, vn).
 * Encryption and decryption are the same XOR operation.
 */
class CtrEngine
{
  public:
    explicit CtrEngine(const Key &key) : aes_(key) {}

    /**
     * XOR @p data in place with the keystream for (@p addr, @p vn).
     * @p data.size() need not be a multiple of 16; the trailing partial
     * block uses a truncated keystream block.
     */
    void crypt(Addr addr, Vn vn, std::span<u8> data) const;

    /** Keystream block for one counter (exposed for tests). */
    Block keystreamBlock(Addr addr, Vn vn) const;

  private:
    Aes128 aes_;
};

} // namespace mgx::crypto

#endif // MGX_CRYPTO_CTR_MODE_H
