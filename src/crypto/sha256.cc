#include "sha256.h"

#include <cstring>

#include "common/bitops.h"

namespace mgx::crypto {
namespace {

constexpr u32 kK[64] = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1,
    0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3,
    0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786,
    0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
    0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13,
    0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a,
    0x5b9cca4f, 0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
};

void
compress(u32 state[8], const u8 block[64])
{
    u32 w[64];
    for (int i = 0; i < 16; ++i)
        w[i] = (u32{block[4 * i]} << 24) | (u32{block[4 * i + 1]} << 16) |
               (u32{block[4 * i + 2]} << 8) | u32{block[4 * i + 3]};
    for (int i = 16; i < 64; ++i) {
        u32 s0 = rotr32(w[i - 15], 7) ^ rotr32(w[i - 15], 18) ^
                 (w[i - 15] >> 3);
        u32 s1 = rotr32(w[i - 2], 17) ^ rotr32(w[i - 2], 19) ^
                 (w[i - 2] >> 10);
        w[i] = w[i - 16] + s0 + w[i - 7] + s1;
    }

    u32 a = state[0], b = state[1], c = state[2], d = state[3];
    u32 e = state[4], f = state[5], g = state[6], h = state[7];
    for (int i = 0; i < 64; ++i) {
        u32 s1 = rotr32(e, 6) ^ rotr32(e, 11) ^ rotr32(e, 25);
        u32 ch = (e & f) ^ (~e & g);
        u32 temp1 = h + s1 + ch + kK[i] + w[i];
        u32 s0 = rotr32(a, 2) ^ rotr32(a, 13) ^ rotr32(a, 22);
        u32 maj = (a & b) ^ (a & c) ^ (b & c);
        u32 temp2 = s0 + maj;
        h = g;
        g = f;
        f = e;
        e = d + temp1;
        d = c;
        c = b;
        b = a;
        a = temp1 + temp2;
    }
    state[0] += a;
    state[1] += b;
    state[2] += c;
    state[3] += d;
    state[4] += e;
    state[5] += f;
    state[6] += g;
    state[7] += h;
}

} // namespace

Digest
sha256(std::span<const u8> data)
{
    u32 state[8] = {0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a,
                    0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19};

    const std::size_t len = data.size();
    std::size_t off = 0;
    while (len - off >= 64) {
        compress(state, data.data() + off);
        off += 64;
    }

    // Final padded block(s).
    u8 tail[128] = {};
    std::size_t rem = len - off;
    if (rem)
        std::memcpy(tail, data.data() + off, rem);
    tail[rem] = 0x80;
    std::size_t tail_len = (rem + 9 <= 64) ? 64 : 128;
    u64 bitlen = static_cast<u64>(len) * 8;
    for (int i = 0; i < 8; ++i)
        tail[tail_len - 8 + i] = static_cast<u8>(bitlen >> (56 - 8 * i));
    compress(state, tail);
    if (tail_len == 128)
        compress(state, tail + 64);

    Digest out;
    for (int i = 0; i < 8; ++i)
        for (int b = 0; b < 4; ++b)
            out[4 * i + b] = static_cast<u8>(state[i] >> (24 - 8 * b));
    return out;
}

u64
digestPrefix64(const Digest &d)
{
    u64 v = 0;
    for (int i = 0; i < 8; ++i)
        v = (v << 8) | d[i];
    return v;
}

} // namespace mgx::crypto
