/**
 * @file
 * Keyed message authentication for memory integrity verification.
 *
 * Implements AES-CMAC (RFC 4493 / NIST SP 800-38B) truncated to 64 bits,
 * which is the construction the paper assumes: a 64-bit MAC of
 * (ciphertext || address || version number) per protected block.
 */

#ifndef MGX_CRYPTO_MAC_H
#define MGX_CRYPTO_MAC_H

#include <span>

#include "aes128.h"
#include "common/types.h"

namespace mgx::crypto {

/** Size in bytes of the stored (truncated) MAC tag. */
constexpr std::size_t kMacBytes = 8;

/**
 * AES-CMAC engine bound to one integrity key. The K1/K2 subkeys are
 * derived at construction per RFC 4493 §2.3.
 */
class CmacEngine
{
  public:
    explicit CmacEngine(const Key &key);

    /** Full 128-bit CMAC of @p message. */
    Block mac(std::span<const u8> message) const;

    /**
     * 64-bit memory-protection tag: CMAC(data || addr || vn), truncated.
     * @param addr the block's physical address (bound into the tag to
     *             defeat relocation attacks)
     * @param vn   the version number (defeats replay attacks)
     */
    u64 tag(std::span<const u8> data, Addr addr, Vn vn) const;

  private:
    Aes128 aes_;
    Block k1_;
    Block k2_;
};

} // namespace mgx::crypto

#endif // MGX_CRYPTO_MAC_H
