/**
 * @file
 * SHA-256 (FIPS 180-4), used as the collision-resistant hash for the
 * baseline scheme's Merkle tree. Verified against the NIST test vectors
 * in sha256_test.cc.
 */

#ifndef MGX_CRYPTO_SHA256_H
#define MGX_CRYPTO_SHA256_H

#include <array>
#include <span>

#include "common/types.h"

namespace mgx::crypto {

/** A 256-bit digest. */
using Digest = std::array<u8, 32>;

/** One-shot SHA-256 of @p data. */
Digest sha256(std::span<const u8> data);

/** Convenience: first 8 bytes of the digest as a big-endian u64. */
u64 digestPrefix64(const Digest &d);

} // namespace mgx::crypto

#endif // MGX_CRYPTO_SHA256_H
