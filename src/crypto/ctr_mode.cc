#include "ctr_mode.h"

namespace mgx::crypto {

Block
makeCounter(Addr addr, Vn vn)
{
    Block ctr;
    for (int i = 0; i < 8; ++i) {
        ctr[i] = static_cast<u8>(addr >> (56 - 8 * i));
        ctr[8 + i] = static_cast<u8>(vn >> (56 - 8 * i));
    }
    return ctr;
}

Block
CtrEngine::keystreamBlock(Addr addr, Vn vn) const
{
    return aes_.encryptBlock(makeCounter(addr, vn));
}

void
CtrEngine::crypt(Addr addr, Vn vn, std::span<u8> data) const
{
    std::size_t off = 0;
    while (off < data.size()) {
        Block ks = keystreamBlock(addr + off, vn);
        std::size_t n = std::min<std::size_t>(kAesBlockBytes,
                                              data.size() - off);
        for (std::size_t i = 0; i < n; ++i)
            data[off + i] ^= ks[i];
        off += n;
    }
}

} // namespace mgx::crypto
