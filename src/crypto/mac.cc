#include "mac.h"

#include <cstring>
#include <vector>

namespace mgx::crypto {
namespace {

/** Left-shift a 128-bit value by one bit (RFC 4493 subkey derivation). */
Block
shiftLeft(const Block &in)
{
    Block out{};
    u8 carry = 0;
    for (int i = 15; i >= 0; --i) {
        out[i] = static_cast<u8>((in[i] << 1) | carry);
        carry = (in[i] & 0x80) ? 1 : 0;
    }
    return out;
}

constexpr u8 kRb = 0x87;

} // namespace

CmacEngine::CmacEngine(const Key &key) : aes_(key)
{
    Block zero{};
    Block l = aes_.encryptBlock(zero);
    k1_ = shiftLeft(l);
    if (l[0] & 0x80)
        k1_[15] ^= kRb;
    k2_ = shiftLeft(k1_);
    if (k1_[0] & 0x80)
        k2_[15] ^= kRb;
}

Block
CmacEngine::mac(std::span<const u8> message) const
{
    const std::size_t len = message.size();
    const std::size_t nblocks =
        len == 0 ? 1 : (len + kAesBlockBytes - 1) / kAesBlockBytes;
    const bool complete = len != 0 && len % kAesBlockBytes == 0;

    Block x{};
    for (std::size_t b = 0; b + 1 < nblocks; ++b) {
        for (std::size_t i = 0; i < kAesBlockBytes; ++i)
            x[i] ^= message[b * kAesBlockBytes + i];
        x = aes_.encryptBlock(x);
    }

    // Last block: XOR with K1 when complete, pad + K2 otherwise.
    Block last{};
    const std::size_t tail_off = (nblocks - 1) * kAesBlockBytes;
    const std::size_t tail_len = len - tail_off;
    std::memcpy(last.data(), message.data() + tail_off, tail_len);
    if (!complete)
        last[tail_len] = 0x80;
    const Block &subkey = complete ? k1_ : k2_;
    for (std::size_t i = 0; i < kAesBlockBytes; ++i)
        x[i] ^= last[i] ^ subkey[i];
    return aes_.encryptBlock(x);
}

u64
CmacEngine::tag(std::span<const u8> data, Addr addr, Vn vn) const
{
    std::vector<u8> msg(data.begin(), data.end());
    for (int i = 0; i < 8; ++i)
        msg.push_back(static_cast<u8>(addr >> (56 - 8 * i)));
    for (int i = 0; i < 8; ++i)
        msg.push_back(static_cast<u8>(vn >> (56 - 8 * i)));
    Block full = mac(msg);
    u64 t = 0;
    for (int i = 0; i < 8; ++i)
        t = (t << 8) | full[i];
    return t;
}

} // namespace mgx::crypto
