/**
 * @file
 * AES-128 block cipher. A straightforward, table-free byte-oriented
 * implementation (SubBytes / ShiftRows / MixColumns / AddRoundKey) that
 * favors clarity and portability over raw speed; the simulator encrypts
 * at most a few hundred megabytes in functional-correctness tests.
 *
 * Verified against the FIPS-197 appendix vectors in aes128_test.cc.
 */

#ifndef MGX_CRYPTO_AES128_H
#define MGX_CRYPTO_AES128_H

#include <array>
#include <cstddef>

#include "common/types.h"

namespace mgx::crypto {

/** AES block size in bytes. */
constexpr std::size_t kAesBlockBytes = 16;

/** AES-128 key size in bytes. */
constexpr std::size_t kAesKeyBytes = 16;

/** A 128-bit block. */
using Block = std::array<u8, kAesBlockBytes>;

/** A 128-bit key. */
using Key = std::array<u8, kAesKeyBytes>;

/**
 * AES-128 with a precomputed key schedule. Construction runs the key
 * expansion once; encryptBlock is then stateless and const.
 */
class Aes128
{
  public:
    /** Expand @p key into the 11 round keys. */
    explicit Aes128(const Key &key);

    /** Encrypt one 16-byte block (ECB primitive). */
    Block encryptBlock(const Block &plaintext) const;

    /** Decrypt one 16-byte block (used only by tests; CTR never needs it). */
    Block decryptBlock(const Block &ciphertext) const;

  private:
    /// 11 round keys of 16 bytes each.
    std::array<u8, 176> roundKeys_;
};

} // namespace mgx::crypto

#endif // MGX_CRYPTO_AES128_H
