/**
 * @file
 * Functional k-ary Merkle (hash) tree over fixed-size leaves.
 *
 * The baseline protection scheme stores version numbers in DRAM and
 * protects their integrity and freshness with a Merkle tree whose root
 * lives on-chip (paper Fig. 2a). This class provides the functional
 * model used by SecureMemory and the tests: build, leaf update with
 * path recomputation, and leaf verification against the root.
 *
 * The timing model (protection_engine) never instantiates this class;
 * it only counts the tree levels touched per access.
 */

#ifndef MGX_CRYPTO_MERKLE_TREE_H
#define MGX_CRYPTO_MERKLE_TREE_H

#include <span>
#include <vector>

#include "common/types.h"
#include "sha256.h"

namespace mgx::crypto {

/**
 * k-ary hash tree. Leaves are byte buffers supplied by the caller; every
 * internal node is the SHA-256 of the concatenation of its children's
 * digests. The root digest is kept by value (modeling on-chip storage).
 */
class MerkleTree
{
  public:
    /**
     * @param num_leaves  number of leaf slots (rounded up internally to a
     *                    full k-ary tree)
     * @param arity       fan-out of each internal node (8 for Intel MEE)
     */
    MerkleTree(std::size_t num_leaves, unsigned arity = 8);

    /** Recompute the digest of leaf @p index from @p data and re-hash
     *  the path up to the root. */
    void updateLeaf(std::size_t index, std::span<const u8> data);

    /**
     * Verify leaf @p index against the stored tree and on-chip root.
     * @return true iff the leaf digest matches @p data and every node on
     *         the path to the root is consistent.
     */
    bool verifyLeaf(std::size_t index, std::span<const u8> data) const;

    /** On-chip root digest. */
    const Digest &root() const { return root_; }

    /** Number of tree levels above the leaves (the path length). */
    unsigned depth() const { return depth_; }

    /** Leaf capacity after rounding to a full tree. */
    std::size_t numLeaves() const { return numLeaves_; }

    /**
     * Corrupt a stored node digest (test hook emulating an attacker who
     * rewrites tree nodes in untrusted DRAM). Level 0 is the leaf level.
     */
    void tamperNode(unsigned level, std::size_t index);

  private:
    /** Recompute the internal digest chain for leaf @p index upward. */
    void rehashPath(std::size_t index);

    /** Hash of the @p arity children of node (level, index). */
    Digest hashChildren(unsigned level, std::size_t index) const;

    unsigned arity_;
    unsigned depth_;
    std::size_t numLeaves_;
    /// levels_[0] = leaf digests; levels_.back() = children of the root.
    std::vector<std::vector<Digest>> levels_;
    Digest root_{};
};

} // namespace mgx::crypto

#endif // MGX_CRYPTO_MERKLE_TREE_H
