#include "merkle_tree.h"

#include <cstring>

#include "common/log.h"

namespace mgx::crypto {

MerkleTree::MerkleTree(std::size_t num_leaves, unsigned arity)
    : arity_(arity)
{
    if (arity_ < 2)
        fatal("MerkleTree arity must be >= 2 (got %u)", arity_);
    if (num_leaves == 0)
        fatal("MerkleTree needs at least one leaf");

    // Round the leaf count up to a full arity^depth tree (depth >= 1).
    depth_ = 1;
    std::size_t cap = arity_;
    while (cap < num_leaves) {
        cap *= arity_;
        ++depth_;
    }
    numLeaves_ = cap;

    levels_.resize(depth_);
    std::size_t width = numLeaves_;
    for (unsigned l = 0; l < depth_; ++l) {
        levels_[l].assign(width, Digest{});
        width /= arity_;
    }

    // Initialize all leaves as digests of the empty buffer and build up.
    Digest empty = sha256({});
    for (auto &d : levels_[0])
        d = empty;
    for (unsigned l = 1; l < depth_; ++l)
        for (std::size_t i = 0; i < levels_[l].size(); ++i)
            levels_[l][i] = hashChildren(l - 1, i);
    root_ = hashChildren(depth_ - 1, 0);
}

Digest
MerkleTree::hashChildren(unsigned level, std::size_t index) const
{
    std::vector<u8> buf;
    buf.reserve(arity_ * sizeof(Digest));
    for (unsigned c = 0; c < arity_; ++c) {
        const Digest &child = levels_[level][index * arity_ + c];
        buf.insert(buf.end(), child.begin(), child.end());
    }
    return sha256(buf);
}

void
MerkleTree::updateLeaf(std::size_t index, std::span<const u8> data)
{
    if (index >= numLeaves_)
        panic("MerkleTree leaf %zu out of range (%zu)", index, numLeaves_);
    levels_[0][index] = sha256(data);
    rehashPath(index);
}

void
MerkleTree::rehashPath(std::size_t index)
{
    std::size_t node = index;
    for (unsigned l = 1; l < depth_; ++l) {
        node /= arity_;
        levels_[l][node] = hashChildren(l - 1, node);
    }
    root_ = hashChildren(depth_ - 1, 0);
}

bool
MerkleTree::verifyLeaf(std::size_t index, std::span<const u8> data) const
{
    if (index >= numLeaves_)
        panic("MerkleTree leaf %zu out of range (%zu)", index, numLeaves_);

    // Recompute the leaf digest from the (untrusted) data, then check
    // each stored parent on the path, finishing at the on-chip root.
    Digest current = sha256(data);
    std::size_t node = index;
    for (unsigned l = 0; l < depth_; ++l) {
        std::size_t parent = node / arity_;
        std::vector<u8> buf;
        buf.reserve(arity_ * sizeof(Digest));
        for (unsigned c = 0; c < arity_; ++c) {
            std::size_t child = parent * arity_ + c;
            const Digest &d =
                (child == node) ? current : levels_[l][child];
            buf.insert(buf.end(), d.begin(), d.end());
        }
        Digest computed = sha256(buf);
        const Digest &expected =
            (l + 1 < depth_) ? levels_[l + 1][parent] : root_;
        if (computed != expected)
            return false;
        current = computed;
        node = parent;
    }
    return true;
}

void
MerkleTree::tamperNode(unsigned level, std::size_t index)
{
    if (level >= depth_ || index >= levels_[level].size())
        panic("MerkleTree tamper target (%u, %zu) out of range", level,
              index);
    levels_[level][index][0] ^= 0xff;
}

} // namespace mgx::crypto
