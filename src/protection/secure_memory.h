/**
 * @file
 * Functional (bit-accurate) models of protected off-chip memory.
 *
 * Two classes mirror the two schemes' semantics:
 *
 *  - SecureMemory: MGX semantics. The trusted kernel supplies the VN
 *    for every read and write; nothing but ciphertext and MAC tags
 *    lives in (attacker-controlled) memory. One MAC tag covers one
 *    MAC block (the configured granularity).
 *
 *  - BaselineSecureMemory: traditional secure-processor semantics. A
 *    per-64 B-block VN lives in attacker-controlled memory, a Merkle
 *    tree over the VN lines provides freshness, and reads need no
 *    caller-supplied VN.
 *
 * Both expose an attacker surface (tamper / snapshot / restore) so
 * tests can demonstrate detection of spoofing, splicing and replay.
 * The timing model (ProtectionEngine) is intentionally independent;
 * these classes are used by tests and the runnable examples.
 */

#ifndef MGX_PROTECTION_SECURE_MEMORY_H
#define MGX_PROTECTION_SECURE_MEMORY_H

#include <span>
#include <unordered_map>
#include <vector>

#include "common/types.h"
#include "crypto/ctr_mode.h"
#include "crypto/mac.h"
#include "crypto/merkle_tree.h"

namespace mgx::protection {

/** Sparse byte store standing in for DRAM contents. */
class SparseBytes
{
  public:
    void write(Addr addr, std::span<const u8> data);
    void read(Addr addr, std::span<u8> out) const;
    /** XOR one byte (attacker tampering). */
    void flipByte(Addr addr);

  private:
    static constexpr u64 kPageBytes = 4096;
    std::unordered_map<u64, std::vector<u8>> pages_;
};

/** Keys and parameters of a functional secure memory. */
struct SecureMemoryConfig
{
    crypto::Key encKey{};    ///< AES-CTR encryption key
    crypto::Key macKey{};    ///< CMAC integrity key
    u32 macGranularity = 512;
};

/** MGX-semantics encrypted + authenticated memory. */
class SecureMemory
{
  public:
    explicit SecureMemory(const SecureMemoryConfig &cfg);

    /**
     * Encrypt @p plaintext under (addr, vn) and store ciphertext and
     * per-block tags. @p addr and the length must be multiples of the
     * MAC granularity — MGX requires writes at the protection
     * granularity (this is the property the kernel schedules for).
     */
    void write(Addr addr, std::span<const u8> plaintext, Vn vn);

    /**
     * Fetch, verify and decrypt. The caller (kernel) regenerates @p vn.
     * @return false if any covered block fails MAC verification; the
     *         output buffer is zeroed in that case.
     */
    [[nodiscard]] bool read(Addr addr, std::span<u8> plaintext_out,
                            Vn vn);

    // -- attacker surface --------------------------------------------------

    /** Flip one ciphertext byte. */
    void tamperCiphertext(Addr addr);

    /** Flip a bit of the stored tag for the block containing @p addr. */
    void tamperTag(Addr addr);

    /** Snapshot of one MAC block (ciphertext + tag) for replay tests. */
    struct BlockSnapshot
    {
        Addr addr = 0;
        std::vector<u8> ciphertext;
        u64 tag = 0;
    };
    BlockSnapshot snapshotBlock(Addr addr) const;
    void restoreBlock(const BlockSnapshot &snap);

    /**
     * Move a block's ciphertext+tag to a different aligned address
     * (relocation / splicing attack); reads at the destination must
     * fail because the MAC binds the address.
     */
    void spliceBlock(Addr from, Addr to);

    u32 macGranularity() const { return cfg_.macGranularity; }

  private:
    u64 blockIndex(Addr addr) const { return addr / cfg_.macGranularity; }

    SecureMemoryConfig cfg_;
    crypto::CtrEngine ctr_;
    crypto::CmacEngine cmac_;
    SparseBytes store_;
    std::unordered_map<u64, u64> tags_; ///< block index -> tag
};

/** Traditional (BP) memory: off-chip VNs + Merkle tree over VN lines. */
class BaselineSecureMemory
{
  public:
    static constexpr u32 kBlockBytes = 64;
    static constexpr u32 kVnsPerLeaf = 8; ///< 64 B VN line

    /**
     * @param memory_bytes size of the protected region (tree is sized
     *        for it; keep modest in tests)
     */
    BaselineSecureMemory(const SecureMemoryConfig &cfg, u64 memory_bytes,
                         u32 tree_arity = 8);

    /** Encrypt and store; VNs are managed internally (incremented per
     *  64 B block write) as in a conventional secure processor. */
    void write(Addr addr, std::span<const u8> plaintext);

    /** Fetch, check the tree, verify the MAC, decrypt. */
    [[nodiscard]] bool read(Addr addr, std::span<u8> plaintext_out);

    // -- attacker surface --------------------------------------------------

    void tamperCiphertext(Addr addr);

    /** Overwrite a stored VN without fixing the tree (must be caught). */
    void tamperVn(Addr addr);

    /** Full replay: restore ciphertext, tag AND stored VN of a block to
     *  an earlier snapshot. Only the Merkle tree can catch this. */
    struct ReplaySnapshot
    {
        Addr addr = 0;
        std::vector<u8> ciphertext;
        u64 tag = 0;
        Vn vn = 0;
    };
    ReplaySnapshot snapshotBlock(Addr addr) const;
    void restoreBlock(const ReplaySnapshot &snap);

    /** Disable the tree check (to demonstrate the replay attack that
     *  motivates the tree; test-only). */
    void setTreeCheckEnabled(bool enabled) { treeCheck_ = enabled; }

  private:
    u64 blockIndex(Addr addr) const { return addr / kBlockBytes; }
    u64 leafIndex(Addr addr) const
    {
        return blockIndex(addr) / kVnsPerLeaf;
    }
    /** Serialize the 8 VNs of a leaf for hashing. */
    std::vector<u8> leafBytes(u64 leaf) const;

    SecureMemoryConfig cfg_;
    crypto::CtrEngine ctr_;
    crypto::CmacEngine cmac_;
    SparseBytes store_;
    std::vector<Vn> vns_;               ///< off-chip VN array
    std::unordered_map<u64, u64> tags_; ///< block index -> tag
    crypto::MerkleTree tree_;
    bool treeCheck_ = true;
};

} // namespace mgx::protection

#endif // MGX_PROTECTION_SECURE_MEMORY_H
