#include "scheme.h"

namespace mgx::protection {

const char *
schemeName(Scheme s)
{
    switch (s) {
      case Scheme::NP: return "NP";
      case Scheme::BP: return "BP";
      case Scheme::MGX: return "MGX";
      case Scheme::MGX_VN: return "MGX_VN";
      case Scheme::MGX_MAC: return "MGX_MAC";
    }
    return "?";
}

} // namespace mgx::protection
