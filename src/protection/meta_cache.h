/**
 * @file
 * The baseline scheme's on-chip VN/MAC/tree cache: set-associative,
 * LRU, write-back, write-allocate, 64-byte lines (paper §VI-A).
 *
 * Every resident line is tagged with the metadata class it caches
 * (VN, MAC, or integrity-tree), so dirty-victim writebacks — mid-run
 * evictions and the end-of-run flush alike — can be attributed to the
 * correct traffic category by the caller.
 */

#ifndef MGX_PROTECTION_META_CACHE_H
#define MGX_PROTECTION_META_CACHE_H

#include <vector>

#include "common/stats.h"
#include "common/types.h"

namespace mgx::protection {

/** Which metadata region a cached line belongs to. */
enum class MetaClass : u8 { Vn, Mac, Tree };

/** Human-readable class name (tests and stat dumps). */
const char *metaClassName(MetaClass cls);

/** Outcome of one cache access. */
struct CacheResult
{
    bool hit = false;
    bool writeback = false; ///< a dirty victim was evicted
    Addr victimAddr = 0;    ///< its line address, valid iff writeback
    MetaClass victimClass = MetaClass::Vn; ///< valid iff writeback
};

/** Set-associative write-back metadata cache. */
class MetaCache
{
  public:
    static constexpr u32 kLineBytes = 64;

    /**
     * @param capacity_bytes total capacity (e.g. 32 KB)
     * @param ways           associativity
     * @param stats          optional stat sink (hits/misses/writebacks)
     */
    MetaCache(u32 capacity_bytes, u32 ways, StatGroup *stats = nullptr);

    /**
     * Access line containing @p addr. On a miss the line is allocated
     * (write-allocate), possibly evicting a dirty victim that the
     * caller must write back to DRAM.
     * @param dirty mark the line dirty (a metadata update)
     * @param cls   metadata class of the line being accessed
     */
    CacheResult access(Addr addr, bool dirty,
                       MetaClass cls = MetaClass::Vn);

    /** A dirty line surrendered by flush(). */
    struct FlushedLine
    {
        Addr addr = 0;
        MetaClass cls = MetaClass::Vn;
    };

    /** Flush all dirty lines; returns their addresses and classes. */
    std::vector<FlushedLine> flush();

    /** Invalidate everything without writeback (new session). */
    void reset();

    u32 numSets() const { return numSets_; }

  private:
    struct Line
    {
        bool valid = false;
        bool dirty = false;
        MetaClass cls = MetaClass::Vn;
        Addr tag = 0;  ///< full line address
        u64 lruTick = 0;
    };

    u32 ways_;
    u32 numSets_;
    u64 tick_ = 0;
    std::vector<Line> lines_; ///< numSets_ x ways_, row-major

    StatGroup::Counter statHits_;
    StatGroup::Counter statMisses_;
    StatGroup::Counter statWritebacks_;
};

} // namespace mgx::protection

#endif // MGX_PROTECTION_META_CACHE_H
