/**
 * @file
 * The baseline scheme's on-chip VN/MAC/tree cache: set-associative,
 * LRU, write-back, write-allocate, 64-byte lines (paper §VI-A).
 */

#ifndef MGX_PROTECTION_META_CACHE_H
#define MGX_PROTECTION_META_CACHE_H

#include <vector>

#include "common/stats.h"
#include "common/types.h"

namespace mgx::protection {

/** Outcome of one cache access. */
struct CacheResult
{
    bool hit = false;
    bool writeback = false; ///< a dirty victim was evicted
    Addr victimAddr = 0;    ///< its line address, valid iff writeback
};

/** Set-associative write-back metadata cache. */
class MetaCache
{
  public:
    static constexpr u32 kLineBytes = 64;

    /**
     * @param capacity_bytes total capacity (e.g. 32 KB)
     * @param ways           associativity
     * @param stats          optional stat sink (hits/misses/writebacks)
     */
    MetaCache(u32 capacity_bytes, u32 ways, StatGroup *stats = nullptr);

    /**
     * Access line containing @p addr. On a miss the line is allocated
     * (write-allocate), possibly evicting a dirty victim that the
     * caller must write back to DRAM.
     * @param dirty mark the line dirty (a metadata update)
     */
    CacheResult access(Addr addr, bool dirty);

    /** Flush all dirty lines; returns their line addresses. */
    std::vector<Addr> flush();

    /** Invalidate everything without writeback (new session). */
    void reset();

    u32 numSets() const { return numSets_; }

  private:
    struct Line
    {
        bool valid = false;
        bool dirty = false;
        Addr tag = 0;  ///< full line address
        u64 lruTick = 0;
    };

    u32 ways_;
    u32 numSets_;
    u64 tick_ = 0;
    StatGroup *stats_;
    std::vector<Line> lines_; ///< numSets_ x ways_, row-major
};

} // namespace mgx::protection

#endif // MGX_PROTECTION_META_CACHE_H
