/**
 * @file
 * The baseline scheme's on-chip VN/MAC/tree cache: set-associative,
 * LRU, write-back, write-allocate, 64-byte lines (paper §VI-A).
 *
 * Every resident line is tagged with the metadata class it caches
 * (VN, MAC, or integrity-tree), so dirty-victim writebacks — mid-run
 * evictions and the end-of-run flush alike — can be attributed to the
 * correct traffic category by the caller.
 *
 * Hot-path note: consecutive data blocks usually map to the *same*
 * VN/MAC/tree line, so the baseline engine re-probes the same set for
 * the same tag millions of times. The Memo/touch() API short-circuits
 * that case: a memo remembers the line an access() resolved to, and
 * touch() replays exactly the hit path (LRU update, dirty
 * accumulation, hit counter) without the set-associative probe. A memo
 * self-invalidates when its line is evicted — eviction bumps
 * generation(), and a stale memo fails the residency re-check — so
 * the shortcut is bitwise-identical to always probing.
 */

#ifndef MGX_PROTECTION_META_CACHE_H
#define MGX_PROTECTION_META_CACHE_H

#include <vector>

#include "common/stats.h"
#include "common/types.h"

namespace mgx::protection {

/** Which metadata region a cached line belongs to. */
enum class MetaClass : u8 { Vn, Mac, Tree };

/** Human-readable class name (tests and stat dumps). */
const char *metaClassName(MetaClass cls);

/** Outcome of one cache access. */
struct CacheResult
{
    bool hit = false;
    bool writeback = false; ///< a dirty victim was evicted
    Addr victimAddr = 0;    ///< its line address, valid iff writeback
    MetaClass victimClass = MetaClass::Vn; ///< valid iff writeback
};

/** Set-associative write-back metadata cache. */
class MetaCache
{
  private:
    struct Line; // resident-line state, defined below

  public:
    static constexpr u32 kLineBytes = 64;

    /**
     * @param capacity_bytes total capacity (e.g. 32 KB)
     * @param ways           associativity
     * @param stats          optional stat sink (hits/misses/writebacks)
     */
    MetaCache(u32 capacity_bytes, u32 ways, StatGroup *stats = nullptr);

    /**
     * Probe-skipping handle to the line the last access() of one
     * request stream resolved to. Default-constructed memos never
     * match; passing one to access() arms it. Holders must not
     * outlive the cache.
     */
    class Memo
    {
      public:
        Memo() = default;

      private:
        friend class MetaCache;
        Line *line_ = nullptr;
        Addr addr_ = ~static_cast<Addr>(0); ///< armed line address
        u64 generation_ = 0; ///< eviction tick at arming/validation
    };

    /**
     * Access line containing @p addr. On a miss the line is allocated
     * (write-allocate), possibly evicting a dirty victim that the
     * caller must write back to DRAM.
     * @param dirty mark the line dirty (a metadata update)
     * @param cls   metadata class of the line being accessed
     * @param memo  when non-null, armed with the accessed line so a
     *              follow-up touch() of the same line skips the probe
     */
    CacheResult access(Addr addr, bool dirty,
                       MetaClass cls = MetaClass::Vn,
                       Memo *memo = nullptr);

    /**
     * Hit-path shortcut: when @p addr is @p memo's armed line and that
     * line is still resident, perform exactly what access() would do
     * on this (guaranteed) hit — LRU touch, dirty accumulation, hit
     * counter — without the set-associative probe, and return true.
     * Returns false with no state change otherwise; the caller then
     * falls back to access(). @p addr must be line-aligned, as every
     * MetadataLayout address is.
     */
    bool
    touch(Memo &memo, Addr addr, bool dirty)
    {
        if (addr != memo.addr_)
            return false;
        if (memo.generation_ != generation_) {
            // An eviction (or flush) happened since the memo was last
            // validated; it may have claimed this line. Re-check
            // residency and re-validate against the new generation.
            if (!memo.line_->valid || memo.line_->tag != addr)
                return false;
            memo.generation_ = generation_;
        }
        ++tick_;
        memo.line_->lruTick = tick_;
        memo.line_->dirty |= dirty;
        statHits_.add();
        return true;
    }

    /**
     * Eviction tick: bumped whenever a resident line is replaced or
     * the cache is flushed/reset — i.e. whenever an armed memo may
     * have lost its line. Unchanged generation proves every resident
     * line is where it was.
     */
    u64 generation() const { return generation_; }

    /** A dirty line surrendered by flush(). */
    struct FlushedLine
    {
        Addr addr = 0;
        MetaClass cls = MetaClass::Vn;
    };

    /**
     * Flush all dirty lines into @p out (cleared first), invalidating
     * the whole cache. The caller owns @p out, so steady-state
     * flushes reuse its capacity instead of allocating a fresh
     * vector per call.
     */
    void flush(std::vector<FlushedLine> &out);

    /** Invalidate everything without writeback (new session). */
    void reset();

    u32 numSets() const { return numSets_; }

    /** Cumulative hit count (0 when constructed without stats). */
    u64 hits() const { return statHits_.value(); }

    /** Cumulative miss count (0 when constructed without stats). */
    u64 misses() const { return statMisses_.value(); }

    /** Cumulative dirty-eviction count (0 without stats). */
    u64 writebacks() const { return statWritebacks_.value(); }

  private:
    struct Line
    {
        bool valid = false;
        bool dirty = false;
        MetaClass cls = MetaClass::Vn;
        Addr tag = 0;  ///< full line address
        u64 lruTick = 0;
    };

    u32 ways_;
    u32 numSets_;
    u64 tick_ = 0;
    u64 generation_ = 0;
    std::vector<Line> lines_; ///< numSets_ x ways_, row-major

    StatGroup::Counter statHits_;
    StatGroup::Counter statMisses_;
    StatGroup::Counter statWritebacks_;
};

} // namespace mgx::protection

#endif // MGX_PROTECTION_META_CACHE_H
