/**
 * @file
 * Protection-scheme identifiers and configuration.
 *
 * Five schemes are modeled (paper §VI):
 *  - NP      no protection; data traffic only.
 *  - BP      baseline, Intel-MEE-like: 64 B protection granularity,
 *            per-block VNs stored in DRAM, 8-ary integrity tree over
 *            the VN lines, per-block MACs, shared 32 KB metadata cache.
 *  - MGX     on-chip VN generation (no VN/tree traffic) + coarse MACs
 *            matched to the accelerator granularity (512 B default).
 *  - MGX_VN  ablation: on-chip VNs but fine-grained 64 B MACs.
 *  - MGX_MAC ablation: coarse MACs but off-chip VNs + tree like BP.
 */

#ifndef MGX_PROTECTION_SCHEME_H
#define MGX_PROTECTION_SCHEME_H

#include <string>

#include "common/types.h"

namespace mgx::protection {

/** Which protection scheme the engine models. */
enum class Scheme { NP, BP, MGX, MGX_VN, MGX_MAC };

/** Short display name ("BP", "MGX_VN", ...). */
const char *schemeName(Scheme s);

/** All evaluated schemes, in the paper's plotting order. */
inline constexpr Scheme kAllSchemes[] = {
    Scheme::NP, Scheme::MGX, Scheme::MGX_VN, Scheme::MGX_MAC, Scheme::BP,
};

/** Static parameters of the protection unit. */
struct ProtectionConfig
{
    Scheme scheme = Scheme::MGX;

    /** Size of the protected data region (paper: 16 GB). */
    u64 protectedBytes = 16ull << 30;

    /** MAC granularity for MGX / MGX_MAC (bytes of data per tag). */
    u32 macGranularity = 512;

    /** Granularity of the baseline scheme (cache-block). */
    u32 baselineGranularity = 64;

    /** Bytes of stored MAC tag per protected block. */
    u32 macBytes = 8;

    /** Bytes of stored VN per baseline block (56-bit VN padded). */
    u32 vnBytes = 8;

    /** Arity of the baseline integrity tree. */
    u32 treeArity = 8;

    /** Shared VN/MAC/tree cache for BP and MGX_MAC (bytes). */
    u32 metaCacheBytes = 32 << 10;

    /** Cache associativity. */
    u32 metaCacheWays = 8;

    /** AES-CTR pipeline latency added to a phase's read path (cycles). */
    u32 cryptoLatency = 40;

    /** True if this scheme keeps VNs on-chip (no VN/tree traffic). */
    bool
    onChipVn() const
    {
        return scheme == Scheme::MGX || scheme == Scheme::MGX_VN ||
               scheme == Scheme::NP;
    }

    /** True if this scheme uses the shared metadata cache. */
    bool
    usesMetaCache() const
    {
        return scheme == Scheme::BP || scheme == Scheme::MGX_MAC;
    }

    /** Effective MAC granularity for a given per-access override. */
    u32
    effectiveMacGranularity(u32 access_override) const
    {
        switch (scheme) {
          case Scheme::NP:
            return 0; // unused
          case Scheme::BP:
          case Scheme::MGX_VN:
            return baselineGranularity;
          case Scheme::MGX:
          case Scheme::MGX_MAC:
            return access_override ? access_override : macGranularity;
        }
        return macGranularity;
    }
};

} // namespace mgx::protection

#endif // MGX_PROTECTION_SCHEME_H
