/**
 * @file
 * Timing model of the memory-protection unit (paper Fig. 2).
 *
 * The engine sits between the accelerator and DRAM. For every logical
 * access it issues the data requests plus whatever metadata traffic the
 * active scheme requires:
 *
 *  - NP:      data only.
 *  - BP:      per-64 B VN + MAC lines and an integrity-tree walk, all
 *             through the shared 32 KB write-back metadata cache; tree
 *             walks stop at the first cached (trusted) node.
 *  - MGX:     data plus uncached coarse-grained MAC lines. Reads expand
 *             to MAC-block boundaries (the whole block is needed to
 *             verify the tag); partial-block writes read-modify-write
 *             the block edges and tag lines.
 *  - MGX_VN:  like MGX with the MAC granularity forced to 64 B.
 *  - MGX_MAC: BP's VN/tree path combined with MGX's coarse MAC path.
 *
 * The engine never touches data bytes; functional security lives in
 * SecureMemory. Both consume the same kernel-generated VNs.
 */

#ifndef MGX_PROTECTION_PROTECTION_ENGINE_H
#define MGX_PROTECTION_PROTECTION_ENGINE_H

#include <memory>

#include "common/stats.h"
#include "core/access.h"
#include "dram/dram_system.h"
#include "meta_cache.h"
#include "metadata_layout.h"
#include "scheme.h"

namespace mgx::protection {

/** Per-category traffic counters of one engine run. */
struct TrafficBreakdown
{
    u64 dataBytes = 0;   ///< requested data traffic (as issued by NP)
    u64 expandBytes = 0; ///< read/write amplification from coarse MACs
    u64 macBytes = 0;    ///< MAC tag lines
    u64 vnBytes = 0;     ///< VN lines (BP / MGX_MAC)
    u64 treeBytes = 0;   ///< integrity-tree lines (BP / MGX_MAC)

    u64
    totalBytes() const
    {
        return dataBytes + expandBytes + macBytes + vnBytes + treeBytes;
    }

    /** Metadata bytes per data byte, the paper's traffic overhead. */
    double
    overhead() const
    {
        return dataBytes == 0
                   ? 0.0
                   : static_cast<double>(totalBytes() - dataBytes) /
                         static_cast<double>(dataBytes);
    }
};

/** The protection unit's timing model. */
class ProtectionEngine
{
  public:
    ProtectionEngine(const ProtectionConfig &cfg, dram::DramSystem *dram);

    /**
     * Issue one logical access and all implied metadata traffic.
     * @param arrival controller cycle the access becomes ready
     * @return completion cycle of the last implied DRAM burst (plus the
     *         AES pipeline latency on the read path)
     */
    Cycles access(const core::LogicalAccess &acc, Cycles arrival);

    /** Write back all dirty metadata (end of run). */
    Cycles flush(Cycles arrival);

    /** Per-category traffic counters. */
    const TrafficBreakdown &traffic() const { return traffic_; }

    /** Cache and engine statistics. */
    const StatGroup &stats() const { return stats_; }

    /** The shared metadata cache (hit/miss/writeback counters). */
    const MetaCache &metaCache() const { return cache_; }

    /** Logical accesses served (the kernel-facing request count). */
    u64 logicalAccesses() const { return statLogicalAccesses_.value(); }

    /** The DRAM system behind this engine (real access counts). */
    const dram::DramSystem &dram() const { return *dram_; }
    dram::DramSystem &dram() { return *dram_; }

    const ProtectionConfig &config() const { return cfg_; }
    const MetadataLayout &layout() const { return layout_; }

  private:
    /** Data+MAC path shared by MGX and MGX_VN (and MGX_MAC's MAC half). */
    Cycles mgxMacPath(const core::LogicalAccess &acc, u32 gran,
                      Cycles arrival, bool data_too);

    /** BP's per-64 B VN + tree (+ optional MAC) path. */
    Cycles baselinePath(const core::LogicalAccess &acc, Cycles arrival,
                        bool mac_per_block);

    /** The traffic counter a @p cls metadata line is charged to. */
    u64 &trafficFor(MetaClass cls);

    ProtectionConfig cfg_;
    MetadataLayout layout_;
    dram::DramSystem *dram_;
    StatGroup stats_;
    MetaCache cache_;
    TrafficBreakdown traffic_;
    StatGroup::Counter statLogicalAccesses_;
    // Scratch queues reused across baselinePath calls so the per-access
    // hot path never allocates once their high-water mark is reached;
    // replayed in push order through DramSystem::accessBatch.
    std::vector<dram::Request> metaReqs_;
    std::vector<dram::Request> macReqs_;
    // Same-line coalescing memos: consecutive baseline blocks usually
    // share their VN/MAC line and level-1 tree node, so the common
    // case touches the memoized line instead of re-probing the set
    // (see MetaCache::touch). One memo per metadata request stream.
    MetaCache::Memo vnMemo_;
    MetaCache::Memo macMemo_;
    MetaCache::Memo treeMemo_;
    // End-of-run flush scratch (same reuse pattern as the queues).
    std::vector<MetaCache::FlushedLine> flushScratch_;
};

} // namespace mgx::protection

#endif // MGX_PROTECTION_PROTECTION_ENGINE_H
