#include "meta_cache.h"

#include "common/bitops.h"
#include "common/log.h"

namespace mgx::protection {

const char *
metaClassName(MetaClass cls)
{
    switch (cls) {
      case MetaClass::Vn: return "vn";
      case MetaClass::Mac: return "mac";
      case MetaClass::Tree: return "tree";
    }
    return "?";
}

MetaCache::MetaCache(u32 capacity_bytes, u32 ways, StatGroup *stats)
    : ways_(ways)
{
    const u32 num_lines = capacity_bytes / kLineBytes;
    if (ways_ == 0 || num_lines % ways_ != 0)
        fatal("meta cache: %u lines not divisible into %u ways",
              num_lines, ways_);
    numSets_ = num_lines / ways_;
    if (!isPow2(numSets_))
        fatal("meta cache: set count %u must be a power of two", numSets_);
    lines_.resize(static_cast<std::size_t>(numSets_) * ways_);
    if (stats != nullptr) {
        statHits_ = stats->counter("meta_cache_hits");
        statMisses_ = stats->counter("meta_cache_misses");
        statWritebacks_ = stats->counter("meta_cache_writebacks");
    }
}

CacheResult
MetaCache::access(Addr addr, bool dirty, MetaClass cls, Memo *memo)
{
    const Addr line_addr = alignDown(addr, kLineBytes);
    const u32 set =
        static_cast<u32>((line_addr / kLineBytes) & (numSets_ - 1));
    Line *base = &lines_[static_cast<std::size_t>(set) * ways_];
    ++tick_;

    // One pass finds the hit or the replacement victim — the LRU way,
    // preferring the first invalid one. The fused scan picks the same
    // victim a separate scan would: once an invalid way is seen the
    // victim is pinned there, exactly where a dedicated loop would
    // have stopped.
    Line *victim = base;
    bool invalid_found = false;
    for (u32 w = 0; w < ways_; ++w) {
        Line &line = base[w];
        if (line.valid && line.tag == line_addr) {
            line.lruTick = tick_;
            line.dirty |= dirty;
            statHits_.add();
            if (memo != nullptr) {
                memo->line_ = &line;
                memo->addr_ = line_addr;
                memo->generation_ = generation_;
            }
            return {true, false, 0, MetaClass::Vn};
        }
        if (invalid_found)
            continue;
        if (!line.valid) {
            victim = &line;
            invalid_found = true;
        } else if (line.lruTick < victim->lruTick) {
            victim = &line;
        }
    }

    CacheResult result;
    result.hit = false;
    if (victim->valid) {
        // Replacing a resident line: any memo armed for it is stale.
        ++generation_;
        if (victim->dirty) {
            result.writeback = true;
            result.victimAddr = victim->tag;
            result.victimClass = victim->cls;
            statWritebacks_.add();
        }
    }
    victim->valid = true;
    victim->dirty = dirty;
    victim->cls = cls;
    victim->tag = line_addr;
    victim->lruTick = tick_;
    statMisses_.add();
    if (memo != nullptr) {
        memo->line_ = victim;
        memo->addr_ = line_addr;
        memo->generation_ = generation_;
    }
    return result;
}

void
MetaCache::flush(std::vector<FlushedLine> &out)
{
    out.clear();
    for (auto &line : lines_) {
        if (line.valid && line.dirty)
            out.push_back({line.tag, line.cls});
        line.valid = false;
        line.dirty = false;
    }
    ++generation_;
}

void
MetaCache::reset()
{
    for (auto &line : lines_) {
        line.valid = false;
        line.dirty = false;
    }
    ++generation_;
}

} // namespace mgx::protection
