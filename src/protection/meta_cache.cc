#include "meta_cache.h"

#include "common/bitops.h"
#include "common/log.h"

namespace mgx::protection {

const char *
metaClassName(MetaClass cls)
{
    switch (cls) {
      case MetaClass::Vn: return "vn";
      case MetaClass::Mac: return "mac";
      case MetaClass::Tree: return "tree";
    }
    return "?";
}

MetaCache::MetaCache(u32 capacity_bytes, u32 ways, StatGroup *stats)
    : ways_(ways)
{
    const u32 num_lines = capacity_bytes / kLineBytes;
    if (ways_ == 0 || num_lines % ways_ != 0)
        fatal("meta cache: %u lines not divisible into %u ways",
              num_lines, ways_);
    numSets_ = num_lines / ways_;
    if (!isPow2(numSets_))
        fatal("meta cache: set count %u must be a power of two", numSets_);
    lines_.resize(static_cast<std::size_t>(numSets_) * ways_);
    if (stats != nullptr) {
        statHits_ = stats->counter("meta_cache_hits");
        statMisses_ = stats->counter("meta_cache_misses");
        statWritebacks_ = stats->counter("meta_cache_writebacks");
    }
}

CacheResult
MetaCache::access(Addr addr, bool dirty, MetaClass cls)
{
    const Addr line_addr = alignDown(addr, kLineBytes);
    const u32 set =
        static_cast<u32>((line_addr / kLineBytes) & (numSets_ - 1));
    Line *base = &lines_[static_cast<std::size_t>(set) * ways_];
    ++tick_;

    // Hit path.
    for (u32 w = 0; w < ways_; ++w) {
        Line &line = base[w];
        if (line.valid && line.tag == line_addr) {
            line.lruTick = tick_;
            line.dirty |= dirty;
            statHits_.add();
            return {true, false, 0, MetaClass::Vn};
        }
    }

    // Miss: pick the LRU way (preferring an invalid one).
    Line *victim = base;
    for (u32 w = 0; w < ways_; ++w) {
        Line &line = base[w];
        if (!line.valid) {
            victim = &line;
            break;
        }
        if (line.lruTick < victim->lruTick)
            victim = &line;
    }

    CacheResult result;
    result.hit = false;
    if (victim->valid && victim->dirty) {
        result.writeback = true;
        result.victimAddr = victim->tag;
        result.victimClass = victim->cls;
        statWritebacks_.add();
    }
    victim->valid = true;
    victim->dirty = dirty;
    victim->cls = cls;
    victim->tag = line_addr;
    victim->lruTick = tick_;
    statMisses_.add();
    return result;
}

std::vector<MetaCache::FlushedLine>
MetaCache::flush()
{
    std::vector<FlushedLine> dirty_lines;
    for (auto &line : lines_) {
        if (line.valid && line.dirty)
            dirty_lines.push_back({line.tag, line.cls});
        line.valid = false;
        line.dirty = false;
    }
    return dirty_lines;
}

void
MetaCache::reset()
{
    for (auto &line : lines_) {
        line.valid = false;
        line.dirty = false;
    }
}

} // namespace mgx::protection
