/**
 * @file
 * Address-space layout of protection metadata.
 *
 * The protected data region occupies [0, protectedBytes). Metadata
 * regions are appended above it in DRAM:
 *
 *   [macBase, ...)   one tag per MAC block of data
 *   [vnBase,  ...)   one VN per baseline block (BP / MGX_MAC only)
 *   [treeBase[l], .) integrity-tree levels over the VN lines, level 1
 *                    nearest the leaves; the root stays on-chip
 *
 * All metadata is accessed at 64-byte line granularity, matching the
 * DRAM burst size.
 */

#ifndef MGX_PROTECTION_METADATA_LAYOUT_H
#define MGX_PROTECTION_METADATA_LAYOUT_H

#include <vector>

#include "common/bitops.h"
#include "common/types.h"
#include "scheme.h"

namespace mgx::protection {

/** Computes metadata addresses for one ProtectionConfig. */
class MetadataLayout
{
  public:
    static constexpr u32 kLineBytes = 64;

    explicit MetadataLayout(const ProtectionConfig &cfg);

    /** 64 B-aligned address of the MAC line holding the tag for the MAC
     *  block containing @p data_addr, at granularity @p mac_gran. */
    Addr macLineAddr(Addr data_addr, u32 mac_gran) const;

    /** 64 B-aligned address of the VN line for baseline block
     *  @p data_addr. */
    Addr vnLineAddr(Addr data_addr) const;

    /** Number of in-DRAM tree levels (root excluded). */
    u32 treeLevels() const { return static_cast<u32>(treeBase_.size()); }

    /**
     * Address of the tree node at @p level (1 = closest to the VN
     * lines) on the path of baseline block @p data_addr.
     */
    Addr treeNodeAddr(u32 level, Addr data_addr) const;

    /**
     * Incremental metadata-address stream over consecutive baseline
     * blocks: the VN line, level-1 tree node, and
     * baseline-granularity MAC line of each block in a range, derived
     * with two adds per step instead of the per-block shift chains of
     * the point queries. Produced by baselineWalker(); next()
     * advances exactly one baseline block and matches vnLineAddr(),
     * treeNodeAddr(1, .) and macLineAddr(., baselineGranularity) bit
     * for bit (pinned by bp_pipeline_test.cc).
     */
    class BaselineWalker
    {
      public:
        /** VN line of the current block (== vnLineAddr). */
        Addr
        vnLine() const
        {
            return alignDown(vnBase_ + vnOff_, kLineBytes);
        }

        /** Level-1 tree node of the current block (== treeNodeAddr(1,.)).
         *  Only meaningful when the layout has at least one level. */
        Addr
        treeNode1() const
        {
            return treeBase1_ +
                   ((vnOff_ / kLineBytes) >> arityShift_) * kLineBytes;
        }

        /** Baseline-granularity MAC line (== macLineAddr(., gran)). */
        Addr
        macLine() const
        {
            return alignDown(macBase_ + macOff_, kLineBytes);
        }

        /** Advance to the next consecutive baseline block. */
        void
        next()
        {
            vnOff_ += vnStride_;
            macOff_ += macStride_;
        }

      private:
        friend class MetadataLayout;
        Addr vnBase_ = 0;
        Addr macBase_ = 0;
        Addr treeBase1_ = 0;
        u64 vnOff_ = 0;     ///< byte offset into the VN region
        u64 macOff_ = 0;    ///< byte offset into the MAC region
        u32 vnStride_ = 0;  ///< VN bytes per baseline block
        u32 macStride_ = 0; ///< MAC bytes per baseline block
        u32 arityShift_ = 0;
    };

    /** Start a metadata walk at the baseline block of @p data_addr. */
    BaselineWalker baselineWalker(Addr data_addr) const;

    /** Total DRAM bytes occupied by metadata for this configuration. */
    u64 metadataBytes() const { return totalMetadataBytes_; }

    /** Start of the MAC region (for tests). */
    Addr macBase() const { return macBase_; }

    /** Start of the VN region (for tests). */
    Addr vnBase() const { return vnBase_; }

  private:
    ProtectionConfig cfg_;
    Addr macBase_ = 0;
    Addr vnBase_ = 0;
    std::vector<Addr> treeBase_; ///< treeBase_[l-1] = base of level l
    u64 totalMetadataBytes_ = 0;
    // log2 of the pow2-validated config values: the per-block address
    // computations shift instead of divide.
    u32 baselineShift_ = 0;
    u32 vnBytesShift_ = 0;
    u32 macBytesShift_ = 0;
    u32 arityShift_ = 0;
};

} // namespace mgx::protection

#endif // MGX_PROTECTION_METADATA_LAYOUT_H
