#include "session.h"

#include <cstring>
#include <vector>

namespace mgx::protection {

crypto::Key
SecureSession::deriveKey(const crypto::Key &secret,
                         const std::string &label, u64 context)
{
    // KDF in counter mode (SP 800-108): K_i = PRF(secret,
    // i || label || 0x00 || context || L). One AES-CMAC block gives
    // the full 128-bit key.
    crypto::CmacEngine prf(secret);
    std::vector<u8> input;
    input.push_back(1); // counter i = 1
    input.insert(input.end(), label.begin(), label.end());
    input.push_back(0);
    for (int b = 0; b < 8; ++b)
        input.push_back(static_cast<u8>(context >> (56 - 8 * b)));
    input.push_back(128); // output length in bits
    crypto::Block out = prf.mac(input);
    crypto::Key key;
    std::memcpy(key.data(), out.data(), key.size());
    return key;
}

crypto::Block
SecureSession::macReport(const crypto::Key &device_secret,
                         const AttestationReport &report)
{
    crypto::CmacEngine prf(
        deriveKey(device_secret, "mgx-attest", report.sessionId));
    std::vector<u8> msg;
    msg.insert(msg.end(), report.firmwareHash.begin(),
               report.firmwareHash.end());
    msg.insert(msg.end(), report.kernelHash.begin(),
               report.kernelHash.end());
    for (int b = 0; b < 8; ++b)
        msg.push_back(static_cast<u8>(report.userNonce >> (56 - 8 * b)));
    for (int b = 0; b < 8; ++b)
        msg.push_back(static_cast<u8>(report.sessionId >> (56 - 8 * b)));
    return prf.mac(msg);
}

SecureSession::SecureSession(const crypto::Key &device_secret,
                             u64 user_nonce,
                             std::span<const u8> kernel_image,
                             std::span<const u8> firmware,
                             u64 session_id)
{
    // Fresh session keys: bound to the session id and the user nonce
    // so no two sessions ever share AES-CTR counter streams.
    const u64 context = session_id ^ (user_nonce * 0x9e3779b97f4a7c15ULL);
    encKey_ = deriveKey(device_secret, "mgx-enc", context);
    macKey_ = deriveKey(device_secret, "mgx-mac", context);

    report_.firmwareHash = crypto::sha256(firmware);
    report_.kernelHash = crypto::sha256(kernel_image);
    report_.userNonce = user_nonce;
    report_.sessionId = session_id;
    report_.reportMac = macReport(device_secret, report_);
}

bool
SecureSession::verifyReport(const crypto::Key &device_secret,
                            const AttestationReport &report,
                            const crypto::Digest &expected_kernel,
                            u64 expected_nonce)
{
    if (report.kernelHash != expected_kernel ||
        report.userNonce != expected_nonce)
        return false;
    return macReport(device_secret, report) == report.reportMac;
}

} // namespace mgx::protection
