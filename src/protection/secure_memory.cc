#include "secure_memory.h"

#include <algorithm>
#include <cstring>

#include "common/bitops.h"
#include "common/log.h"

namespace mgx::protection {

// ---------------------------------------------------------------------------
// SparseBytes
// ---------------------------------------------------------------------------

void
SparseBytes::write(Addr addr, std::span<const u8> data)
{
    std::size_t off = 0;
    while (off < data.size()) {
        const u64 page = (addr + off) / kPageBytes;
        const u64 in_page = (addr + off) % kPageBytes;
        const std::size_t n = std::min<std::size_t>(
            kPageBytes - in_page, data.size() - off);
        auto &bytes = pages_[page];
        if (bytes.empty())
            bytes.assign(kPageBytes, 0);
        std::memcpy(bytes.data() + in_page, data.data() + off, n);
        off += n;
    }
}

void
SparseBytes::read(Addr addr, std::span<u8> out) const
{
    std::size_t off = 0;
    while (off < out.size()) {
        const u64 page = (addr + off) / kPageBytes;
        const u64 in_page = (addr + off) % kPageBytes;
        const std::size_t n = std::min<std::size_t>(
            kPageBytes - in_page, out.size() - off);
        auto it = pages_.find(page);
        if (it == pages_.end())
            std::memset(out.data() + off, 0, n);
        else
            std::memcpy(out.data() + off, it->second.data() + in_page, n);
        off += n;
    }
}

void
SparseBytes::flipByte(Addr addr)
{
    u8 b;
    read(addr, {&b, 1});
    b ^= 0xa5;
    write(addr, {&b, 1});
}

// ---------------------------------------------------------------------------
// SecureMemory (MGX semantics)
// ---------------------------------------------------------------------------

SecureMemory::SecureMemory(const SecureMemoryConfig &cfg)
    : cfg_(cfg), ctr_(cfg.encKey), cmac_(cfg.macKey)
{
    if (!isPow2(cfg_.macGranularity) || cfg_.macGranularity < 16)
        fatal("SecureMemory MAC granularity must be a power of two >= 16");
}

void
SecureMemory::write(Addr addr, std::span<const u8> plaintext, Vn vn)
{
    const u32 gran = cfg_.macGranularity;
    if (addr % gran != 0 || plaintext.size() % gran != 0)
        fatal("MGX write at %#llx (+%zu) not aligned to the %u-byte MAC "
              "granularity",
              static_cast<unsigned long long>(addr), plaintext.size(),
              gran);

    std::vector<u8> block(gran);
    for (std::size_t off = 0; off < plaintext.size(); off += gran) {
        const Addr block_addr = addr + off;
        std::memcpy(block.data(), plaintext.data() + off, gran);
        ctr_.crypt(block_addr, vn, block);
        store_.write(block_addr, block);
        tags_[blockIndex(block_addr)] =
            cmac_.tag(block, block_addr, vn);
    }
}

bool
SecureMemory::read(Addr addr, std::span<u8> plaintext_out, Vn vn)
{
    const u32 gran = cfg_.macGranularity;
    const Addr begin = alignDown(addr, gran);
    const Addr end = alignUp(addr + plaintext_out.size(), gran);

    std::vector<u8> block(gran);
    for (Addr block_addr = begin; block_addr < end; block_addr += gran) {
        store_.read(block_addr, block);
        auto it = tags_.find(blockIndex(block_addr));
        const u64 expect = cmac_.tag(block, block_addr, vn);
        if (it == tags_.end() || it->second != expect) {
            std::fill(plaintext_out.begin(), plaintext_out.end(), u8{0});
            return false;
        }
        ctr_.crypt(block_addr, vn, block);
        // Copy the overlap of this block with the requested range.
        const Addr lo = std::max(block_addr, addr);
        const Addr hi = std::min<Addr>(block_addr + gran,
                                       addr + plaintext_out.size());
        std::memcpy(plaintext_out.data() + (lo - addr),
                    block.data() + (lo - block_addr), hi - lo);
    }
    return true;
}

void
SecureMemory::tamperCiphertext(Addr addr)
{
    store_.flipByte(addr);
}

void
SecureMemory::tamperTag(Addr addr)
{
    auto it = tags_.find(blockIndex(addr));
    if (it != tags_.end())
        it->second ^= 1;
}

SecureMemory::BlockSnapshot
SecureMemory::snapshotBlock(Addr addr) const
{
    const u32 gran = cfg_.macGranularity;
    BlockSnapshot snap;
    snap.addr = alignDown(addr, gran);
    snap.ciphertext.resize(gran);
    store_.read(snap.addr, snap.ciphertext);
    auto it = tags_.find(snap.addr / gran);
    snap.tag = it == tags_.end() ? 0 : it->second;
    return snap;
}

void
SecureMemory::restoreBlock(const BlockSnapshot &snap)
{
    store_.write(snap.addr, snap.ciphertext);
    tags_[blockIndex(snap.addr)] = snap.tag;
}

void
SecureMemory::spliceBlock(Addr from, Addr to)
{
    BlockSnapshot snap = snapshotBlock(from);
    snap.addr = alignDown(to, cfg_.macGranularity);
    restoreBlock(snap);
}

// ---------------------------------------------------------------------------
// BaselineSecureMemory
// ---------------------------------------------------------------------------

BaselineSecureMemory::BaselineSecureMemory(const SecureMemoryConfig &cfg,
                                           u64 memory_bytes, u32 tree_arity)
    : cfg_(cfg), ctr_(cfg.encKey), cmac_(cfg.macKey),
      vns_(memory_bytes / kBlockBytes, 0),
      tree_(divCeil(memory_bytes / kBlockBytes, kVnsPerLeaf), tree_arity)
{
    // Install the all-zero VN leaves so unwritten regions verify.
    for (u64 leaf = 0; leaf < divCeil(vns_.size(), kVnsPerLeaf); ++leaf)
        tree_.updateLeaf(leaf, leafBytes(leaf));
}

std::vector<u8>
BaselineSecureMemory::leafBytes(u64 leaf) const
{
    std::vector<u8> bytes(kVnsPerLeaf * sizeof(Vn), 0);
    for (u32 i = 0; i < kVnsPerLeaf; ++i) {
        const u64 idx = leaf * kVnsPerLeaf + i;
        const Vn vn = idx < vns_.size() ? vns_[idx] : 0;
        for (int b = 0; b < 8; ++b)
            bytes[i * 8 + b] = static_cast<u8>(vn >> (56 - 8 * b));
    }
    return bytes;
}

void
BaselineSecureMemory::write(Addr addr, std::span<const u8> plaintext)
{
    if (addr % kBlockBytes != 0 || plaintext.size() % kBlockBytes != 0)
        fatal("baseline write at %#llx (+%zu) not 64 B aligned",
              static_cast<unsigned long long>(addr), plaintext.size());

    std::vector<u8> block(kBlockBytes);
    for (std::size_t off = 0; off < plaintext.size();
         off += kBlockBytes) {
        const Addr block_addr = addr + off;
        const u64 idx = blockIndex(block_addr);
        if (idx >= vns_.size())
            fatal("baseline write beyond protected region");
        const Vn vn = ++vns_[idx];
        std::memcpy(block.data(), plaintext.data() + off, kBlockBytes);
        ctr_.crypt(block_addr, vn, block);
        store_.write(block_addr, block);
        tags_[idx] = cmac_.tag(block, block_addr, vn);
        const u64 leaf = idx / kVnsPerLeaf;
        tree_.updateLeaf(leaf, leafBytes(leaf));
    }
}

bool
BaselineSecureMemory::read(Addr addr, std::span<u8> plaintext_out)
{
    const Addr begin = alignDown(addr, kBlockBytes);
    const Addr end = alignUp(addr + plaintext_out.size(), kBlockBytes);

    std::vector<u8> block(kBlockBytes);
    for (Addr block_addr = begin; block_addr < end;
         block_addr += kBlockBytes) {
        const u64 idx = blockIndex(block_addr);
        if (idx >= vns_.size())
            return false;
        // Freshness: the VN line must verify against the on-chip root.
        if (treeCheck_ &&
            !tree_.verifyLeaf(idx / kVnsPerLeaf,
                              leafBytes(idx / kVnsPerLeaf))) {
            std::fill(plaintext_out.begin(), plaintext_out.end(), u8{0});
            return false;
        }
        const Vn vn = vns_[idx];
        store_.read(block_addr, block);
        auto it = tags_.find(idx);
        const u64 expect = cmac_.tag(block, block_addr, vn);
        if ((it == tags_.end() && vn != 0) ||
            (it != tags_.end() && it->second != expect)) {
            std::fill(plaintext_out.begin(), plaintext_out.end(), u8{0});
            return false;
        }
        if (it == tags_.end()) {
            // Never-written block reads as zeros.
            std::memset(block.data(), 0, kBlockBytes);
        } else {
            ctr_.crypt(block_addr, vn, block);
        }
        const Addr lo = std::max(block_addr, addr);
        const Addr hi = std::min<Addr>(block_addr + kBlockBytes,
                                       addr + plaintext_out.size());
        std::memcpy(plaintext_out.data() + (lo - addr),
                    block.data() + (lo - block_addr), hi - lo);
    }
    return true;
}

void
BaselineSecureMemory::tamperCiphertext(Addr addr)
{
    store_.flipByte(addr);
}

void
BaselineSecureMemory::tamperVn(Addr addr)
{
    vns_[blockIndex(addr)] += 1; // attacker edits the off-chip VN
}

BaselineSecureMemory::ReplaySnapshot
BaselineSecureMemory::snapshotBlock(Addr addr) const
{
    ReplaySnapshot snap;
    snap.addr = alignDown(addr, kBlockBytes);
    snap.ciphertext.resize(kBlockBytes);
    store_.read(snap.addr, snap.ciphertext);
    const u64 idx = snap.addr / kBlockBytes;
    auto it = tags_.find(idx);
    snap.tag = it == tags_.end() ? 0 : it->second;
    snap.vn = vns_[idx];
    return snap;
}

void
BaselineSecureMemory::restoreBlock(const ReplaySnapshot &snap)
{
    store_.write(snap.addr, snap.ciphertext);
    const u64 idx = snap.addr / kBlockBytes;
    tags_[idx] = snap.tag;
    vns_[idx] = snap.vn; // note: the Merkle tree is NOT updated
}

} // namespace mgx::protection
