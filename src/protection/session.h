/**
 * @file
 * Secure-session setup (paper §II, Fig. 1).
 *
 * Models the workflow that precedes protected execution: the user
 * initiates a session; the accelerator clears state, derives fresh
 * symmetric keys for memory encryption and integrity verification,
 * and produces a remote-attestation report binding the device
 * identity, the firmware/configuration hash and the hash of the
 * application kernel that will generate version numbers.
 *
 * Simplification (documented in DESIGN.md): the paper assumes a PKI
 * with a per-device private key (SK_Accel). Without a bignum/ECC
 * substrate we model the device identity as a 128-bit device secret
 * and authenticate the attestation report with a MAC under a key
 * derived from it; a verifier holding the device secret (standing in
 * for the certificate authority's verification path) can check it.
 * Key derivation follows NIST SP 800-108 KDF-in-counter-mode with
 * AES-CMAC as the PRF.
 */

#ifndef MGX_PROTECTION_SESSION_H
#define MGX_PROTECTION_SESSION_H

#include <span>
#include <string>

#include "crypto/mac.h"
#include "crypto/sha256.h"
#include "secure_memory.h"

namespace mgx::protection {

/** The attestation report returned to the user after session setup. */
struct AttestationReport
{
    crypto::Digest firmwareHash{};  ///< accelerator configuration
    crypto::Digest kernelHash{};    ///< the attested VN-generating kernel
    u64 userNonce = 0;              ///< freshness from the user
    u64 sessionId = 0;              ///< accelerator-chosen session id
    crypto::Block reportMac{};      ///< MAC over all of the above
};

/**
 * One protected accelerator session: fresh keys, an attested kernel,
 * and a factory for the session's SecureMemory.
 */
class SecureSession
{
  public:
    /**
     * Establish a session on the accelerator side.
     * @param device_secret the device's embedded identity secret
     * @param user_nonce    freshness challenge from the user
     * @param kernel_image  bytes of the kernel to attest
     * @param firmware      bytes of firmware/configuration to attest
     * @param session_id    monotonically increasing per-device value
     */
    SecureSession(const crypto::Key &device_secret, u64 user_nonce,
                  std::span<const u8> kernel_image,
                  std::span<const u8> firmware, u64 session_id);

    /** The attestation report sent back to the user. */
    const AttestationReport &report() const { return report_; }

    /** Session memory-encryption key (derived, never the device key). */
    const crypto::Key &encryptionKey() const { return encKey_; }

    /** Session integrity key. */
    const crypto::Key &macKey() const { return macKey_; }

    /** Construct the session's protected memory. */
    SecureMemory
    makeSecureMemory(u32 mac_granularity = 512) const
    {
        SecureMemoryConfig cfg;
        cfg.encKey = encKey_;
        cfg.macKey = macKey_;
        cfg.macGranularity = mac_granularity;
        return SecureMemory(cfg);
    }

    /**
     * Verifier side: check a report against the expected kernel and
     * firmware hashes. Models the user's PKI-backed verification.
     */
    static bool verifyReport(const crypto::Key &device_secret,
                             const AttestationReport &report,
                             const crypto::Digest &expected_kernel,
                             u64 expected_nonce);

  private:
    /** SP 800-108 counter-mode KDF: PRF = AES-CMAC(device-derived). */
    static crypto::Key deriveKey(const crypto::Key &secret,
                                 const std::string &label, u64 context);

    static crypto::Block macReport(const crypto::Key &device_secret,
                                   const AttestationReport &report);

    crypto::Key encKey_{};
    crypto::Key macKey_{};
    AttestationReport report_;
};

} // namespace mgx::protection

#endif // MGX_PROTECTION_SESSION_H
