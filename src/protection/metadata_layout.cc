#include "metadata_layout.h"

#include "common/bitops.h"
#include "common/log.h"

namespace mgx::protection {

MetadataLayout::MetadataLayout(const ProtectionConfig &cfg) : cfg_(cfg)
{
    if (!isPow2(cfg_.baselineGranularity) || !isPow2(cfg_.macGranularity))
        fatal("protection granularities must be powers of two");
    if (!isPow2(cfg_.vnBytes) || !isPow2(cfg_.macBytes) ||
        !isPow2(cfg_.treeArity))
        fatal("protection metadata sizes must be powers of two");

    // The hot-path address computations below reduce to shifts; the
    // constructor is the only place that divides.
    baselineShift_ = log2i(cfg_.baselineGranularity);
    vnBytesShift_ = log2i(cfg_.vnBytes);
    macBytesShift_ = log2i(cfg_.macBytes);
    arityShift_ = log2i(cfg_.treeArity);

    macBase_ = cfg_.protectedBytes;
    // Size the MAC region for the finest granularity any access may
    // request (the baseline 64 B blocks), so per-access overrides fit.
    const u64 mac_region =
        cfg_.protectedBytes / cfg_.baselineGranularity * cfg_.macBytes;
    vnBase_ = macBase_ + mac_region;

    const u64 vn_region =
        cfg_.protectedBytes / cfg_.baselineGranularity * cfg_.vnBytes;
    u64 next_base = vnBase_ + vn_region;
    totalMetadataBytes_ = mac_region;

    if (!cfg_.onChipVn()) {
        totalMetadataBytes_ += vn_region;
        // Integrity-tree levels over the VN lines; the level with a
        // single node is the on-chip root and is not stored.
        u64 nodes = divCeil(vn_region, kLineBytes);
        while (nodes > 1) {
            nodes = divCeil(nodes, cfg_.treeArity);
            if (nodes <= 1)
                break;
            treeBase_.push_back(next_base);
            next_base += nodes * kLineBytes;
            totalMetadataBytes_ += nodes * kLineBytes;
        }
    }
}

Addr
MetadataLayout::macLineAddr(Addr data_addr, u32 mac_gran) const
{
    // Per-access overrides are not validated at config time, so fall
    // back to the division for the (unseen in practice) non-pow2 case.
    const u64 tag_index = isPow2(mac_gran)
                              ? data_addr >> log2i(mac_gran)
                              : data_addr / mac_gran;
    return alignDown(macBase_ + (tag_index << macBytesShift_),
                     kLineBytes);
}

Addr
MetadataLayout::vnLineAddr(Addr data_addr) const
{
    const u64 vn_off =
        (data_addr >> baselineShift_) << vnBytesShift_;
    return alignDown(vnBase_ + vn_off, kLineBytes);
}

MetadataLayout::BaselineWalker
MetadataLayout::baselineWalker(Addr data_addr) const
{
    BaselineWalker w;
    w.vnBase_ = vnBase_;
    w.macBase_ = macBase_;
    w.treeBase1_ = treeBase_.empty() ? 0 : treeBase_[0];
    // Offsets replicate the point queries exactly: both regions index
    // by baseline-block number, scaled by the per-block entry size.
    w.vnOff_ = (data_addr >> baselineShift_) << vnBytesShift_;
    w.macOff_ = (data_addr >> baselineShift_) << macBytesShift_;
    w.vnStride_ = cfg_.vnBytes;
    w.macStride_ = cfg_.macBytes;
    w.arityShift_ = arityShift_;
    return w;
}

Addr
MetadataLayout::treeNodeAddr(u32 level, Addr data_addr) const
{
    if (level == 0 || level > treeLevels())
        panic("tree level %u out of range (1..%u)", level, treeLevels());
    const u64 vn_off =
        (data_addr >> baselineShift_) << vnBytesShift_;
    // Dividing by a power of two L times is one shift by L * log2.
    const u64 idx = (vn_off / kLineBytes) >> (level * arityShift_);
    return treeBase_[level - 1] + idx * kLineBytes;
}

} // namespace mgx::protection
