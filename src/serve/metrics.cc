#include "metrics.h"

#include <sstream>

namespace mgx::serve {

ServeMetrics::Snapshot
ServeMetrics::snapshot() const
{
    Snapshot s;
    s.accepted = accepted.load(std::memory_order_relaxed);
    s.rejected = rejected.load(std::memory_order_relaxed);
    s.served = served.load(std::memory_order_relaxed);
    s.failed = failed.load(std::memory_order_relaxed);
    s.badRequests = badRequests.load(std::memory_order_relaxed);
    s.dedupCollapsed = dedupCollapsed.load(std::memory_order_relaxed);
    s.cellsRun = cellsRun.load(std::memory_order_relaxed);
    s.resultMemoHits = resultMemoHits.load(std::memory_order_relaxed);
    s.traceCacheHits = traceCacheHits.load(std::memory_order_relaxed);
    s.traceCacheMisses =
        traceCacheMisses.load(std::memory_order_relaxed);
    s.inFlight = inFlight.load(std::memory_order_relaxed);
    s.queueDepth = queueDepth.load(std::memory_order_relaxed);
    s.maxQueueDepth = maxQueueDepth.load(std::memory_order_relaxed);
    s.deadlineExceeded =
        deadlineExceeded.load(std::memory_order_relaxed);
    s.oversized = oversized.load(std::memory_order_relaxed);
    s.keepAliveReused =
        keepAliveReused.load(std::memory_order_relaxed);
    s.cacheDegraded = cacheDegraded.load(std::memory_order_relaxed);
    s.draining = draining.load(std::memory_order_relaxed);
    return s;
}

std::string
statsJson(const ServeMetrics::Snapshot &s)
{
    std::ostringstream out;
    out << "{\n  \"schema\": \"mgx-servestats-v1\",\n"
        << "  \"accepted\": " << s.accepted
        << ",\n  \"rejected\": " << s.rejected
        << ",\n  \"served\": " << s.served
        << ",\n  \"failed\": " << s.failed
        << ",\n  \"badRequests\": " << s.badRequests
        << ",\n  \"dedupCollapsed\": " << s.dedupCollapsed
        << ",\n  \"cellsRun\": " << s.cellsRun
        << ",\n  \"resultMemoHits\": " << s.resultMemoHits
        << ",\n  \"traceCache\": {\"hits\": " << s.traceCacheHits
        << ", \"misses\": " << s.traceCacheMisses << "}"
        << ",\n  \"inFlight\": " << s.inFlight
        << ",\n  \"queueDepth\": " << s.queueDepth
        << ",\n  \"maxQueueDepth\": " << s.maxQueueDepth
        << ",\n  \"deadlineExceeded\": " << s.deadlineExceeded
        << ",\n  \"oversized\": " << s.oversized
        << ",\n  \"keepAliveReused\": " << s.keepAliveReused
        << ",\n  \"cacheDegraded\": "
        << (s.cacheDegraded ? "true" : "false")
        << ",\n  \"draining\": " << (s.draining ? "true" : "false")
        << "\n}\n";
    return out.str();
}

} // namespace mgx::serve
