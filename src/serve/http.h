/**
 * @file
 * Minimal HTTP/1.1 framing for the experiment service: an incremental
 * request parser for the server side, a response parser for the client
 * side, and percent-encoding helpers for query strings.
 *
 * Deliberately tiny — mgx speaks whole GET requests over local
 * sockets, so there is no chunked encoding and no multipart. Since the
 * fleet proxy landed, connections can be reused: a request carrying
 * `Connection: keep-alive` may be answered in kind, and the
 * incremental HttpResponseParser frames responses by Content-Length so
 * a reader does not need EOF to know the body ended. Requests are
 * capped at 1 MiB so a confused peer cannot balloon the daemon.
 */

#ifndef MGX_SERVE_HTTP_H
#define MGX_SERVE_HTTP_H

#include <cstddef>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace mgx::serve {

/** One parsed request: request line, split query, headers, body. */
struct HttpRequest
{
    std::string method;  ///< "GET", "POST", ...
    std::string target;  ///< raw request target, e.g. "/run?w=x"
    std::string path;    ///< target up to '?', percent-decoded
    /// Query parameters in declaration order, percent-decoded;
    /// repeated keys are preserved (e.g. several workload=).
    std::vector<std::pair<std::string, std::string>> query;
    /// Header name (lower-cased) / value pairs in arrival order.
    std::vector<std::pair<std::string, std::string>> headers;
    std::string body;

    /** First value of query key @p key, if present. */
    std::optional<std::string> queryValue(const std::string &key) const;

    /** Every value of query key @p key, in order. */
    std::vector<std::string> queryValues(const std::string &key) const;

    /** Value of header @p name (case-insensitive), if present. */
    std::optional<std::string> header(const std::string &name) const;
};

/**
 * Incremental parser: feed() bytes as they arrive off the socket until
 * the status leaves Incomplete. Tolerates bare-LF line endings. On
 * Error, error() holds a one-line description and the connection
 * should answer 400 and close.
 */
class HttpRequestParser
{
  public:
    enum class Status { Incomplete, Complete, Error };

    Status feed(const char *data, std::size_t n);

    Status status() const { return status_; }
    const HttpRequest &request() const { return request_; }
    const std::string &error() const { return error_; }

    /** True when the Error is specifically the 1 MiB request cap —
     *  the connection should answer 431 instead of 400 so a confused
     *  peer can tell "you sent too much" from "you sent garbage". */
    bool tooLarge() const { return tooLarge_; }

    /** Total bytes fed so far (0 = the peer never said anything —
     *  a clean close on an idle keep-alive connection, not an error). */
    std::size_t bytesFed() const { return buffer_.size(); }

    /** After Complete: bytes fed beyond the parsed request. A peer
     *  that streams back-to-back requests on one connection leaves the
     *  start of the next one here; seed the next parser with it. */
    std::string surplus() const
    {
        return status_ == Status::Complete ? buffer_.substr(consumed_)
                                           : std::string();
    }

  private:
    Status parseBuffered();
    Status fail(const std::string &message);

    std::string buffer_;
    HttpRequest request_;
    std::string error_;
    Status status_ = Status::Incomplete;
    bool tooLarge_ = false;
    std::size_t consumed_ = 0; ///< bytes of buffer_ the request used
};

/** A parsed response (client side). */
struct HttpResponse
{
    int status = 0;
    std::string reason;
    std::vector<std::pair<std::string, std::string>> headers;
    std::string body;

    /** Value of header @p name (case-insensitive), if present. */
    std::optional<std::string> header(const std::string &name) const;
};

/**
 * Parse a complete raw response (read to EOF — the service always
 * closes after one response). Returns false with @p error set on
 * malformed input.
 */
bool parseHttpResponse(const std::string &raw, HttpResponse *out,
                       std::string *error);

/**
 * Incremental response parser for connection reuse: feed() bytes off
 * the socket; once the header block and Content-Length bytes of body
 * have arrived the status flips to Complete without waiting for EOF —
 * the property that lets the fleet proxy and ClientConnection keep a
 * backend socket open across requests. A response with no
 * Content-Length only completes at finishEof(), exactly like the old
 * read-to-EOF contract.
 */
class HttpResponseParser
{
  public:
    enum class Status { Incomplete, Complete, Error };

    Status feed(const char *data, std::size_t n);

    /** The peer closed: a length-less body is complete, anything else
     *  mid-flight is an error ("connection closed mid-response"). */
    Status finishEof();

    Status status() const { return status_; }
    const HttpResponse &response() const { return response_; }
    const std::string &error() const { return error_; }

    /** True once the status line + headers have fully arrived. */
    bool headersComplete() const { return headers_done_; }

    /** Body bytes received so far (diagnostics for partial reads). */
    std::size_t bodyBytes() const;

  private:
    Status parseBuffered();
    Status fail(const std::string &message);

    std::string buffer_;
    HttpResponse response_;
    std::string error_;
    Status status_ = Status::Incomplete;
    bool headers_done_ = false;
    bool has_length_ = false;
    std::size_t content_length_ = 0;
    std::size_t body_start_ = 0;
};

/**
 * Serialize a complete response with Content-Length. The connection
 * header is `close` unless @p keep_alive — the server only sets it
 * when the request explicitly asked to keep the connection open.
 * @p extra_headers lines are inserted verbatim (no trailing CRLF).
 */
std::string
httpResponse(int status, const std::string &content_type,
             const std::string &body,
             const std::vector<std::string> &extra_headers = {},
             bool keep_alive = false);

/** The standard reason phrase for the handful of codes we emit. */
const char *httpReason(int status);

/** %XX-decode @p s (also turns '+' into ' '). */
std::string percentDecode(const std::string &s);

/** Encode @p s so it is safe inside one query value. */
std::string percentEncode(const std::string &s);

} // namespace mgx::serve

#endif // MGX_SERVE_HTTP_H
