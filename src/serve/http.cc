#include "http.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>

namespace mgx::serve {
namespace {

/// Total request size cap: request line + headers + body.
constexpr std::size_t kMaxRequestBytes = 1u << 20;

std::string
toLower(std::string s)
{
    std::transform(s.begin(), s.end(), s.begin(), [](unsigned char c) {
        return static_cast<char>(std::tolower(c));
    });
    return s;
}

/** Strip one trailing '\r' (we split on '\n' and tolerate bare LF). */
std::string_view
stripCr(std::string_view line)
{
    if (!line.empty() && line.back() == '\r')
        line.remove_suffix(1);
    return line;
}

int
hexValue(char c)
{
    if (c >= '0' && c <= '9')
        return c - '0';
    if (c >= 'a' && c <= 'f')
        return c - 'a' + 10;
    if (c >= 'A' && c <= 'F')
        return c - 'A' + 10;
    return -1;
}

/** Split `key=value&key=value` into decoded pairs. */
std::vector<std::pair<std::string, std::string>>
parseQueryString(const std::string &raw)
{
    std::vector<std::pair<std::string, std::string>> out;
    std::size_t start = 0;
    while (start <= raw.size()) {
        std::size_t amp = raw.find('&', start);
        if (amp == std::string::npos)
            amp = raw.size();
        const std::string kv = raw.substr(start, amp - start);
        if (!kv.empty()) {
            const std::size_t eq = kv.find('=');
            if (eq == std::string::npos)
                out.emplace_back(percentDecode(kv), "");
            else
                out.emplace_back(percentDecode(kv.substr(0, eq)),
                                 percentDecode(kv.substr(eq + 1)));
        }
        start = amp + 1;
    }
    return out;
}

} // namespace

std::optional<std::string>
HttpRequest::queryValue(const std::string &key) const
{
    for (const auto &kv : query)
        if (kv.first == key)
            return kv.second;
    return std::nullopt;
}

std::vector<std::string>
HttpRequest::queryValues(const std::string &key) const
{
    std::vector<std::string> out;
    for (const auto &kv : query)
        if (kv.first == key)
            out.push_back(kv.second);
    return out;
}

std::optional<std::string>
HttpRequest::header(const std::string &name) const
{
    const std::string key = toLower(name);
    for (const auto &kv : headers)
        if (kv.first == key)
            return kv.second;
    return std::nullopt;
}

std::optional<std::string>
HttpResponse::header(const std::string &name) const
{
    const std::string key = toLower(name);
    for (const auto &kv : headers)
        if (kv.first == key)
            return kv.second;
    return std::nullopt;
}

HttpRequestParser::Status
HttpRequestParser::fail(const std::string &message)
{
    error_ = message;
    status_ = Status::Error;
    return status_;
}

HttpRequestParser::Status
HttpRequestParser::feed(const char *data, std::size_t n)
{
    if (status_ != Status::Incomplete)
        return status_;
    buffer_.append(data, n);
    if (buffer_.size() > kMaxRequestBytes) {
        tooLarge_ = true;
        return fail("request exceeds 1 MiB");
    }
    return parseBuffered();
}

HttpRequestParser::Status
HttpRequestParser::parseBuffered()
{
    // Wait for the end of the header block before parsing anything;
    // requests are tiny, so re-scanning per feed() is fine.
    std::size_t header_end = buffer_.find("\r\n\r\n");
    std::size_t body_start;
    if (header_end != std::string::npos) {
        body_start = header_end + 4;
    } else {
        header_end = buffer_.find("\n\n");
        if (header_end == std::string::npos)
            return status_;
        body_start = header_end + 2;
    }

    HttpRequest req;
    std::size_t pos = 0;
    bool first_line = true;
    while (pos < header_end) {
        std::size_t eol = buffer_.find('\n', pos);
        if (eol == std::string::npos || eol > header_end)
            eol = header_end;
        const std::string_view line =
            stripCr({buffer_.data() + pos, eol - pos});
        pos = eol + 1;
        if (first_line) {
            first_line = false;
            const std::size_t sp1 = line.find(' ');
            const std::size_t sp2 =
                sp1 == std::string_view::npos ? sp1
                                              : line.find(' ', sp1 + 1);
            if (sp1 == std::string_view::npos ||
                sp2 == std::string_view::npos)
                return fail("malformed request line");
            req.method = std::string(line.substr(0, sp1));
            req.target =
                std::string(line.substr(sp1 + 1, sp2 - sp1 - 1));
            const std::string_view version = line.substr(sp2 + 1);
            if (version.rfind("HTTP/1.", 0) != 0)
                return fail("unsupported HTTP version");
            if (req.target.empty() || req.target[0] != '/')
                return fail("request target must be absolute path");
            continue;
        }
        if (line.empty())
            continue;
        const std::size_t colon = line.find(':');
        if (colon == std::string_view::npos || colon == 0)
            return fail("malformed header line");
        std::string value(line.substr(colon + 1));
        const std::size_t ns = value.find_first_not_of(" \t");
        value = ns == std::string::npos ? "" : value.substr(ns);
        req.headers.emplace_back(
            toLower(std::string(line.substr(0, colon))),
            std::move(value));
    }

    std::size_t content_length = 0;
    for (const auto &h : req.headers) {
        if (h.first != "content-length")
            continue;
        char *end = nullptr;
        content_length = std::strtoull(h.second.c_str(), &end, 10);
        if (end == h.second.c_str() || *end != '\0')
            return fail("malformed Content-Length");
    }
    if (content_length > kMaxRequestBytes) {
        tooLarge_ = true;
        return fail("request exceeds 1 MiB");
    }
    if (buffer_.size() - body_start < content_length)
        return status_; // body still in flight
    req.body = buffer_.substr(body_start, content_length);
    consumed_ = body_start + content_length;

    const std::size_t qpos = req.target.find('?');
    req.path = percentDecode(req.target.substr(0, qpos));
    if (qpos != std::string::npos)
        req.query = parseQueryString(req.target.substr(qpos + 1));

    request_ = std::move(req);
    status_ = Status::Complete;
    return status_;
}

bool
parseHttpResponse(const std::string &raw, HttpResponse *out,
                  std::string *error)
{
    const auto fail = [&](const char *msg) {
        if (error)
            *error = msg;
        return false;
    };
    std::size_t header_end = raw.find("\r\n\r\n");
    std::size_t body_start;
    if (header_end != std::string::npos) {
        body_start = header_end + 4;
    } else {
        header_end = raw.find("\n\n");
        if (header_end == std::string::npos)
            return fail("no header terminator");
        body_start = header_end + 2;
    }

    HttpResponse resp;
    std::size_t pos = 0;
    bool first_line = true;
    while (pos < header_end) {
        std::size_t eol = raw.find('\n', pos);
        if (eol == std::string::npos || eol > header_end)
            eol = header_end;
        const std::string_view line =
            stripCr({raw.data() + pos, eol - pos});
        pos = eol + 1;
        if (first_line) {
            first_line = false;
            if (line.rfind("HTTP/1.", 0) != 0)
                return fail("malformed status line");
            const std::size_t sp1 = line.find(' ');
            if (sp1 == std::string_view::npos)
                return fail("malformed status line");
            const std::size_t sp2 = line.find(' ', sp1 + 1);
            const std::string code(line.substr(
                sp1 + 1, sp2 == std::string_view::npos ? sp2
                                                       : sp2 - sp1 - 1));
            char *end = nullptr;
            resp.status =
                static_cast<int>(std::strtol(code.c_str(), &end, 10));
            if (end == code.c_str() || *end != '\0')
                return fail("malformed status code");
            if (sp2 != std::string_view::npos)
                resp.reason = std::string(line.substr(sp2 + 1));
            continue;
        }
        if (line.empty())
            continue;
        const std::size_t colon = line.find(':');
        if (colon == std::string_view::npos || colon == 0)
            return fail("malformed header line");
        std::string value(line.substr(colon + 1));
        const std::size_t ns = value.find_first_not_of(" \t");
        value = ns == std::string::npos ? "" : value.substr(ns);
        resp.headers.emplace_back(
            toLower(std::string(line.substr(0, colon))),
            std::move(value));
    }
    resp.body = raw.substr(body_start);
    if (out)
        *out = std::move(resp);
    return true;
}

HttpResponseParser::Status
HttpResponseParser::fail(const std::string &message)
{
    error_ = message;
    status_ = Status::Error;
    return status_;
}

std::size_t
HttpResponseParser::bodyBytes() const
{
    if (!headers_done_ || buffer_.size() < body_start_)
        return 0;
    return buffer_.size() - body_start_;
}

HttpResponseParser::Status
HttpResponseParser::feed(const char *data, std::size_t n)
{
    if (status_ != Status::Incomplete)
        return status_;
    buffer_.append(data, n);
    return parseBuffered();
}

HttpResponseParser::Status
HttpResponseParser::finishEof()
{
    if (status_ != Status::Incomplete)
        return status_;
    if (!headers_done_)
        return fail(buffer_.empty()
                        ? "connection closed before any response"
                        : "connection closed inside response headers");
    if (has_length_)
        return fail("connection closed mid-response (" +
                    std::to_string(bodyBytes()) + " of " +
                    std::to_string(content_length_) + " body bytes)");
    // Length-less body: EOF is the terminator.
    response_.body = buffer_.substr(body_start_);
    status_ = Status::Complete;
    return status_;
}

HttpResponseParser::Status
HttpResponseParser::parseBuffered()
{
    if (!headers_done_) {
        std::size_t header_end = buffer_.find("\r\n\r\n");
        if (header_end != std::string::npos) {
            body_start_ = header_end + 4;
        } else {
            header_end = buffer_.find("\n\n");
            if (header_end == std::string::npos)
                return status_;
            body_start_ = header_end + 2;
        }
        HttpResponse resp;
        std::string error;
        // The header block is complete: the batch parser's header
        // logic applies verbatim (body handled incrementally below).
        if (!parseHttpResponse(buffer_.substr(0, body_start_), &resp,
                               &error))
            return fail(error);
        resp.body.clear();
        for (const auto &h : resp.headers) {
            if (h.first != "content-length")
                continue;
            char *end = nullptr;
            content_length_ =
                std::strtoull(h.second.c_str(), &end, 10);
            if (end == h.second.c_str() || *end != '\0')
                return fail("malformed Content-Length");
            has_length_ = true;
        }
        response_ = std::move(resp);
        headers_done_ = true;
    }
    if (!has_length_)
        return status_; // only finishEof() can complete this one
    if (buffer_.size() - body_start_ < content_length_)
        return status_;
    response_.body = buffer_.substr(body_start_, content_length_);
    status_ = Status::Complete;
    return status_;
}

const char *
httpReason(int status)
{
    switch (status) {
      case 200: return "OK";
      case 400: return "Bad Request";
      case 404: return "Not Found";
      case 405: return "Method Not Allowed";
      case 429: return "Too Many Requests";
      case 431: return "Request Header Fields Too Large";
      case 500: return "Internal Server Error";
      case 503: return "Service Unavailable";
      default: return "Unknown";
    }
}

std::string
httpResponse(int status, const std::string &content_type,
             const std::string &body,
             const std::vector<std::string> &extra_headers,
             bool keep_alive)
{
    std::string out = "HTTP/1.1 " + std::to_string(status) + " " +
                      httpReason(status) + "\r\n";
    out += "Content-Type: " + content_type + "\r\n";
    out += "Content-Length: " + std::to_string(body.size()) + "\r\n";
    for (const auto &h : extra_headers)
        out += h + "\r\n";
    out += keep_alive ? "Connection: keep-alive\r\n\r\n"
                      : "Connection: close\r\n\r\n";
    out += body;
    return out;
}

std::string
percentDecode(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (std::size_t i = 0; i < s.size(); ++i) {
        if (s[i] == '+') {
            out += ' ';
            continue;
        }
        if (s[i] == '%' && i + 2 < s.size()) {
            const int hi = hexValue(s[i + 1]);
            const int lo = hexValue(s[i + 2]);
            if (hi >= 0 && lo >= 0) {
                out += static_cast<char>(hi * 16 + lo);
                i += 2;
                continue;
            }
        }
        out += s[i];
    }
    return out;
}

std::string
percentEncode(const std::string &s)
{
    static const char *hex = "0123456789ABCDEF";
    std::string out;
    out.reserve(s.size());
    for (unsigned char c : s) {
        const bool safe = (c >= 'a' && c <= 'z') ||
                          (c >= 'A' && c <= 'Z') ||
                          (c >= '0' && c <= '9') || c == '-' ||
                          c == '_' || c == '.' || c == '~' || c == '/';
        if (safe) {
            out += static_cast<char>(c);
        } else {
            out += '%';
            out += hex[c >> 4];
            out += hex[c & 0xf];
        }
    }
    return out;
}

} // namespace mgx::serve
