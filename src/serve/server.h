/**
 * @file
 * The experiment service: a long-running daemon that accepts
 * workload x platform x scheme requests over a local socket (unix
 * path or TCP loopback), runs them through sim::Experiment, and
 * answers with the same `mgx-resultset-v1` JSON that `mgx_run --json`
 * writes — byte-identical for the same grid, so clients can switch
 * between the CLI and the service without re-baselining artifacts.
 *
 * Endpoints (HTTP/1.1; one request per connection by default, but a
 * request carrying `Connection: keep-alive` keeps the connection open
 * for the next one, bounded by ServerOptions::keepAliveIdleMs):
 *
 *   GET /run?workload=W[&workload=W2...][&platforms=cloud,edge]
 *           [&schemes=NP,MGX,...]
 *       Run the grid; 200 with the resultset JSON, 400 on unknown
 *       workloads / platforms / schemes (the registry's own message).
 *   GET /stats
 *       Operational counters as `mgx-servestats-v1` JSON.
 *   GET /healthz
 *       Liveness: 200 with {"ok": true, ...} whenever the daemon can
 *       answer at all — draining and cache-degraded states are
 *       reported in the body, not as failures.
 *   GET /shutdown
 *       Acknowledge, then begin graceful shutdown.
 *
 * Concurrency model — three layers:
 *
 *   admission   A bounded connection queue between one acceptor
 *               thread and N worker threads. When the queue is full
 *               the acceptor answers 429 immediately instead of
 *               letting latency grow unboundedly (explicit
 *               back-pressure; clients retry or go run mgx_run).
 *   memo        A bounded in-memory LRU of finished cell results
 *               keyed like the singleflight: a warm repeat skips the
 *               engine entirely (metrics.resultMemoHits). Safe
 *               because cell results are deterministic — the memo'd
 *               record is bitwise what a re-run would produce.
 *   coalescing  Each grid cell runs under a SingleFlight keyed by
 *               workload|platform|scheme: concurrent requests that
 *               resolve to the same cell cost one engine run, the
 *               rest are followers (metrics.dedupCollapsed).
 *   cache       Cells share the on-disk trace cache; the per-key
 *               flock (sim::TraceCacheLock) extends "generate once"
 *               across processes sharing the directory.
 *
 * Per-request replay budgets: /run accepts `pipeline=0|1` and
 * `replayThreads=N` to pipeline and/or channel-shard each cell's
 * replay. The daemon-side cap ServerOptions::maxRequestThreads is the
 * Experiment thread budget each cell runs under, so a request can
 * never make a cell cost more threads than the operator allowed —
 * oversized asks clamp (the Experiment budget machinery), they do not
 * fail. Response bodies stay byte-identical to `mgx_run --no-pipeline
 * --json` for every mode: the scheduling-dependent pipeline/shard
 * diagnostics are scrubbed before serialization, which also keeps the
 * memo and singleflight keys budget-free.
 *
 * Graceful shutdown: stop accepting, drain the queued and in-flight
 * requests, join every thread. Connections arriving while draining
 * get 503.
 */

#ifndef MGX_SERVE_SERVER_H
#define MGX_SERVE_SERVER_H

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <functional>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "http.h"
#include "metrics.h"
#include "singleflight.h"
#include "sim/experiment.h"

namespace mgx::serve {

/** Where to listen / connect: unix path if set, else TCP loopback. */
struct SocketAddress
{
    std::string unixPath; ///< non-empty selects AF_UNIX
    std::string host = "127.0.0.1";
    u16 port = 0; ///< 0 = kernel-assigned (see Server::port())
};

struct ServerOptions
{
    SocketAddress listen;
    u32 workers = 2;                  ///< request handler threads
    std::size_t admissionCapacity = 16; ///< queued connections before 429
    std::string traceCacheDir;        ///< "" = no trace cache
    u64 traceCacheMaxBytes = 0;       ///< LRU cap (needs traceCacheDir)
    int ioTimeoutMs = 30000;          ///< per-connection read/write timeout
    /// Wall-clock budget for one /run request, 0 = none. On expiry
    /// the request answers 503 immediately; the cell that was running
    /// finishes on a background thread (engine runs cannot be
    /// cancelled) so a retry joins it instead of duplicating work.
    int requestDeadlineMs = 0;
    /// How long to bypass the trace cache after a run reports it
    /// degraded before probing it again (see cacheDegraded()).
    int cacheRetryMs = 5000;
    /// Honor `Connection: keep-alive` requests by keeping the
    /// connection open for the next request (false restores the old
    /// one-request-per-connection behavior for every peer).
    bool keepAlive = true;
    /// Close a kept-alive connection after this long with no next
    /// request — bounds both idle FDs and how long a worker thread
    /// can be parked on one peer.
    int keepAliveIdleMs = 2000;
    /// Finished-cell results memoized in memory (LRU, keyed like the
    /// singleflight); 0 disables the memo.
    std::size_t resultMemoCapacity = 64;
    /// Experiment thread budget per cell — the ceiling a request's
    /// pipeline=/replayThreads= ask is clamped under. 1 (default)
    /// keeps every cell serial regardless of what clients request.
    u32 maxRequestThreads = 1;
};

/** What a /run request asked for a cell's replay execution. */
struct RunBudget
{
    bool pipelined = false;
    u32 replayThreads = 1;
};

/** One grid cell: the unit of deduplication. */
struct CellKey
{
    std::string workload;
    sim::Platform platform;
    protection::Scheme scheme = protection::Scheme::NP;

    /** The singleflight key. */
    std::string key() const;
};

/** What one cell's run produced. */
struct CellOutcome
{
    sim::RunRecord record;
    u64 cacheHits = 0;
    u64 cacheMisses = 0;
};

/**
 * How a cell is simulated; injectable so tests can substitute a
 * deterministic (or deliberately blocking) runner. The injected form
 * ignores the request's replay budget — tests run synthetic cells.
 */
using CellRunner = std::function<CellOutcome(const CellKey &)>;

/**
 * Bounded LRU memo of finished cell records, shared by every worker.
 * Hits return a copy; the stored record is never mutated, so a memo'd
 * answer is bitwise the answer a fresh engine run would give (cell
 * results are deterministic by construction — see sim/shard.h for why
 * that holds across replay modes).
 */
class ResultMemo
{
  public:
    explicit ResultMemo(std::size_t capacity) : capacity_(capacity) {}

    /** The memo'd record for @p key, refreshing its recency. */
    std::optional<sim::RunRecord> get(const std::string &key);

    /** Memoize @p record under @p key, evicting the LRU entry at
     *  capacity. Idempotent for concurrent followers of one flight. */
    void put(const std::string &key, const sim::RunRecord &record);

    std::size_t size() const;

  private:
    struct Entry
    {
        std::list<std::string>::iterator order;
        sim::RunRecord record;
    };

    mutable std::mutex mu_;
    std::size_t capacity_;
    std::list<std::string> order_; ///< front = most recently used
    std::map<std::string, Entry> entries_;
};

class Server
{
  public:
    explicit Server(ServerOptions opts);
    ~Server();

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /** Bind, listen, and spawn the acceptor + workers. Fatal on bind
     *  failure (the address is caller-chosen configuration). */
    void start();

    /** The bound TCP port (after start(); meaningless for unix). */
    u16 port() const { return boundPort_; }

    /** Human-readable bound address, e.g. "unix:/tmp/x.sock". */
    std::string addressDescription() const;

    /** Stop admission and begin draining; returns immediately. */
    void requestShutdown();

    /** requestShutdown() + drain queued and in-flight + join threads.
     *  Idempotent; also run by the destructor. */
    void shutdown();

    bool stopping() const;

    /** True while the trace cache is being bypassed after a fault. */
    bool cacheDegraded() const
    {
        return cacheDegraded_.load(std::memory_order_relaxed);
    }

    ServeMetrics::Snapshot metricsSnapshot() const;

    /** Replace the engine-backed cell runner (tests only). */
    void setCellRunnerForTest(CellRunner runner);

    /** The per-cell flight table (tests observe waiters()). */
    SingleFlight<CellOutcome> &cellFlights() { return flights_; }

    /** The finished-cell memo (tests observe size()). */
    ResultMemo &resultMemo() { return memo_; }

  private:
    void acceptLoop();
    void workerLoop();
    void handleConnection(int fd);
    /// Serve one request off @p fd (seeded with @p carry bytes from
    /// the previous request on this connection). Returns false when
    /// the connection is done (peer closed, error, or the exchange
    /// chose Connection: close); true means keep it open and @p carry
    /// holds any bytes of the next request that already arrived.
    /// @p first distinguishes a fresh connection from a reused one.
    bool serveOneRequest(int fd, std::string *carry, bool first);
    std::string handleRequest(const HttpRequest &req, int *status_out);
    std::string handleRun(const HttpRequest &req, int *status_out);
    CellOutcome runCellWithEngine(const CellKey &cell,
                                  const RunBudget &budget);
    bool validateWorkload(const std::string &name, std::string *error);
    void sendAll(int fd, const std::string &data) const;
    /// Fold one run's cache health into the degraded state: a
    /// degraded run opens (or extends) the bypass window with one
    /// warning log; a healthy run while degraded logs recovery.
    void noteCacheHealth(bool degraded);
    /// Whether runCellWithEngine should pass the cache dir right now
    /// (false while degraded and the re-probe window has not opened).
    bool cacheUsableNow();

    ServerOptions opts_;
    ServeMetrics metrics_;
    SingleFlight<CellOutcome> flights_;
    ResultMemo memo_; ///< capacity from opts_ (ctor init order)
    /// Engine-backed by default (honors the request budget); test
    /// runners installed via setCellRunnerForTest ignore the budget.
    std::function<CellOutcome(const CellKey &, const RunBudget &)>
        runner_;

    int listenFd_ = -1;
    u16 boundPort_ = 0;
    bool started_ = false;
    bool joined_ = false;

    std::thread acceptor_;
    std::vector<std::thread> workers_;

    mutable std::mutex qmu_;
    std::condition_variable qcv_;
    std::deque<int> pending_; ///< accepted fds awaiting a worker
    bool draining_ = false;   ///< guarded by qmu_

    std::mutex validmu_;
    /// workload name -> registry error ("" = known-good); memoized so
    /// repeated requests skip kernel construction during validation.
    std::map<std::string, std::string> validation_;

    std::atomic<bool> cacheDegraded_{false};
    std::mutex cachemu_;
    /// When degraded: the next moment a cell may probe the cache
    /// again (guarded by cachemu_).
    std::chrono::steady_clock::time_point cacheRetryAt_{};
};

} // namespace mgx::serve

#endif // MGX_SERVE_SERVER_H
