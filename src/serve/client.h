/**
 * @file
 * Blocking one-shot HTTP client for the experiment service: connect
 * to a SocketAddress, send one GET, read to EOF (the server always
 * closes after one response), parse. Shared by mgx_client, the load
 * bench, and the tests.
 */

#ifndef MGX_SERVE_CLIENT_H
#define MGX_SERVE_CLIENT_H

#include <string>

#include "http.h"
#include "server.h"

namespace mgx::serve {

/**
 * GET @p target from the server at @p addr. Returns false with
 * @p error set on connect/IO/parse failure; @p out holds the parsed
 * response otherwise (including non-2xx statuses — those are valid
 * answers, e.g. 429 back-pressure).
 */
bool httpGet(const SocketAddress &addr, const std::string &target,
             HttpResponse *out, std::string *error,
             int timeout_ms = 30000);

} // namespace mgx::serve

#endif // MGX_SERVE_CLIENT_H
