/**
 * @file
 * Blocking HTTP client for the experiment service. Two shapes:
 *
 *  - httpGet / httpGetRetry: one-shot — connect, send one GET with
 *    `Connection: close`, read the full response, close. Shared by
 *    mgx_client, the load bench, and the tests.
 *  - ClientConnection: a reusable keep-alive connection — sends
 *    `Connection: keep-alive`, frames responses by Content-Length via
 *    HttpResponseParser, and keeps the socket open across requests.
 *    Used by the fleet proxy's backend pool and mgx_client.
 *
 * Failures are classified (GetFailure) so callers can tell a refused
 * connect from a connection reset after partial response bytes — the
 * latter is what a SIGKILLed worker mid-response looks like, and it
 * is retryable: the request never completed, and /run is idempotent.
 */

#ifndef MGX_SERVE_CLIENT_H
#define MGX_SERVE_CLIENT_H

#include <string>

#include "http.h"
#include "server.h"

namespace mgx::serve {

/** Where a failed GET fell apart, coarsest useful grain. */
enum class GetFailure
{
    None,            ///< it worked
    Connect,         ///< connect() refused / no socket
    Send,            ///< request never left and nothing came back
    Recv,            ///< zero response bytes (timeout / reset at idle)
    PartialResponse, ///< connection died after some response bytes
    Parse,           ///< malformed response
};

/** Stable lower-case name for a GetFailure (stats keys, logs). */
const char *getFailureName(GetFailure f);

/**
 * GET @p target from the server at @p addr. Returns false with
 * @p error set on connect/IO/parse failure; @p out holds the parsed
 * response otherwise (including non-2xx statuses — those are valid
 * answers, e.g. 429 back-pressure). @p failure (optional) reports
 * the failure class; a response truncated mid-body is a failure
 * (PartialResponse), never silently parsed as success.
 */
bool httpGet(const SocketAddress &addr, const std::string &target,
             HttpResponse *out, std::string *error,
             int timeout_ms = 30000, GetFailure *failure = nullptr);

/** Retry policy for httpGetRetry. */
struct RetryOptions
{
    int retries = 0;      ///< attempts beyond the first
    int backoffMs = 100;  ///< base delay; doubles per retry
    int maxBackoffMs = 5000; ///< ceiling for one delay
    u64 seed = 0;         ///< jitter seed; 0 = derive from pid+clock
};

/** Client-side counters accumulated across httpGetRetry attempts. */
struct RetryStats
{
    u64 attempts = 0;         ///< GETs actually issued
    u64 connectFailures = 0;  ///< GetFailure::Connect
    u64 sendFailures = 0;     ///< GetFailure::Send
    u64 recvFailures = 0;     ///< GetFailure::Recv
    u64 partialResponses = 0; ///< GetFailure::PartialResponse
    u64 parseFailures = 0;    ///< GetFailure::Parse
    u64 backpressure = 0;     ///< 429/503 answers that were retried

    void add(const RetryStats &o);
    void count(GetFailure f);
};

/**
 * httpGet with retries: transient failures — connect refused, IO
 * errors, a connection reset after partial response bytes, and
 * 429/503 answers (the server saying "try again") — are retried up
 * to opts.retries times with exponential backoff and full jitter
 * (each delay is uniform in [base/2, base], base doubling per
 * attempt and capped at maxBackoffMs). Definite answers (2xx, 4xx
 * other than 429) return immediately. Returns false with @p error
 * describing the *last* failure once attempts are exhausted;
 * @p attempts_out (optional) reports how many attempts were made and
 * @p stats (optional) accumulates per-class failure counts.
 *
 * A retried 429/503 that never improves is returned as a success
 * with that status — the caller distinguishes "the server answered
 * no" from "the server never answered".
 */
bool httpGetRetry(const SocketAddress &addr, const std::string &target,
                  HttpResponse *out, std::string *error,
                  int timeout_ms, const RetryOptions &opts,
                  int *attempts_out = nullptr,
                  RetryStats *stats = nullptr);

/**
 * A keep-alive connection to one server. get() reuses the open
 * socket when there is one; if the reused socket turns out stale
 * (the server closed it between requests — the classic reuse race)
 * the request is transparently retried once on a fresh connect.
 * The socket is closed when the response says `Connection: close`,
 * has no Content-Length (EOF-framed), or any failure occurs.
 */
class ClientConnection
{
  public:
    explicit ClientConnection(const SocketAddress &addr) : addr_(addr)
    {
    }
    ~ClientConnection() { close(); }

    ClientConnection(const ClientConnection &) = delete;
    ClientConnection &operator=(const ClientConnection &) = delete;

    /** GET @p target; same contract as httpGet. */
    bool get(const std::string &target, HttpResponse *out,
             std::string *error, int timeout_ms = 30000,
             GetFailure *failure = nullptr);

    /** True while a socket is open and eligible for reuse. */
    bool connected() const { return fd_ >= 0; }

    /** True when the last successful get() rode a reused socket. */
    bool lastReused() const { return last_reused_; }

    const SocketAddress &address() const { return addr_; }

    void close();

  private:
    bool getOnce(const std::string &target, HttpResponse *out,
                 std::string *error, int timeout_ms,
                 GetFailure *failure, bool *reused_attempt);

    SocketAddress addr_;
    int fd_ = -1;
    bool last_reused_ = false;
};

} // namespace mgx::serve

#endif // MGX_SERVE_CLIENT_H
