/**
 * @file
 * Blocking one-shot HTTP client for the experiment service: connect
 * to a SocketAddress, send one GET, read to EOF (the server always
 * closes after one response), parse. Shared by mgx_client, the load
 * bench, and the tests.
 */

#ifndef MGX_SERVE_CLIENT_H
#define MGX_SERVE_CLIENT_H

#include <string>

#include "http.h"
#include "server.h"

namespace mgx::serve {

/**
 * GET @p target from the server at @p addr. Returns false with
 * @p error set on connect/IO/parse failure; @p out holds the parsed
 * response otherwise (including non-2xx statuses — those are valid
 * answers, e.g. 429 back-pressure).
 */
bool httpGet(const SocketAddress &addr, const std::string &target,
             HttpResponse *out, std::string *error,
             int timeout_ms = 30000);

/** Retry policy for httpGetRetry. */
struct RetryOptions
{
    int retries = 0;      ///< attempts beyond the first
    int backoffMs = 100;  ///< base delay; doubles per retry
    int maxBackoffMs = 5000; ///< ceiling for one delay
    u64 seed = 0;         ///< jitter seed; 0 = derive from pid+clock
};

/**
 * httpGet with retries: transient failures — connect refused, IO
 * errors, and 429/503 answers (the server saying "try again") — are
 * retried up to opts.retries times with exponential backoff and full
 * jitter (each delay is uniform in [base/2, base], base doubling per
 * attempt and capped at maxBackoffMs). Definite answers (2xx, 4xx
 * other than 429) return immediately. Returns false with @p error
 * describing the *last* failure once attempts are exhausted;
 * @p attempts_out (optional) reports how many attempts were made.
 *
 * A retried 429/503 that never improves is returned as a success
 * with that status — the caller distinguishes "the server answered
 * no" from "the server never answered".
 */
bool httpGetRetry(const SocketAddress &addr, const std::string &target,
                  HttpResponse *out, std::string *error,
                  int timeout_ms, const RetryOptions &opts,
                  int *attempts_out = nullptr);

} // namespace mgx::serve

#endif // MGX_SERVE_CLIENT_H
