#include "server.h"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <cstring>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "common/failpoint.h"
#include "common/log.h"
#include "sim/report.h"
#include "sim/workload_registry.h"

namespace mgx::serve {
namespace {

// The service's socket boundaries are failpoints too, registered at
// load so failpoint::all() sees the complete set (see
// common/failpoint.h for the arming grammar).
failpoint::Point &fpAcceptFail =
    failpoint::Point::get("serve.accept.fail");
failpoint::Point &fpRecvFail =
    failpoint::Point::get("serve.recv.fail");
failpoint::Point &fpSendFail =
    failpoint::Point::get("serve.send.fail");

/** The same platform vocabulary mgx_run accepts. */
bool
platformByName(const std::string &name, sim::Platform &out)
{
    if (name == "cloud")
        out = sim::cloudPlatform();
    else if (name == "edge")
        out = sim::edgePlatform();
    else if (name == "graph")
        out = sim::graphPlatform();
    else if (name == "genome")
        out = sim::genomePlatform();
    else
        return false;
    return true;
}

/** Non-fatal sibling of sim::schemeByName. */
bool
schemeByNameNoFatal(const std::string &name, protection::Scheme &out)
{
    for (protection::Scheme s : protection::kAllSchemes) {
        if (name == protection::schemeName(s)) {
            out = s;
            return true;
        }
    }
    return false;
}

std::vector<std::string>
splitCommas(const std::string &arg)
{
    std::vector<std::string> parts;
    std::size_t start = 0;
    while (start <= arg.size()) {
        std::size_t pos = arg.find(',', start);
        if (pos == std::string::npos)
            pos = arg.size();
        if (pos > start)
            parts.push_back(arg.substr(start, pos - start));
        start = pos + 1;
    }
    return parts;
}

std::string
jsonError(const std::string &message)
{
    std::string escaped;
    for (char c : message) {
        if (c == '"' || c == '\\')
            escaped += '\\';
        escaped += c;
    }
    return "{\"error\": \"" + escaped + "\"}\n";
}

void
setSocketTimeout(int fd, int ms)
{
    timeval tv{};
    tv.tv_sec = ms / 1000;
    tv.tv_usec = (ms % 1000) * 1000;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
    ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);
}

} // namespace

std::string
CellKey::key() const
{
    return workload + "|" + platform.name + "|" +
           protection::schemeName(scheme);
}

std::optional<sim::RunRecord>
ResultMemo::get(const std::string &key)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(key);
    if (it == entries_.end())
        return std::nullopt;
    order_.splice(order_.begin(), order_, it->second.order);
    return it->second.record;
}

void
ResultMemo::put(const std::string &key, const sim::RunRecord &record)
{
    if (capacity_ == 0)
        return;
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(key);
    if (it != entries_.end()) {
        // A follower re-inserting the leader's result: refresh only.
        order_.splice(order_.begin(), order_, it->second.order);
        return;
    }
    while (entries_.size() >= capacity_) {
        entries_.erase(order_.back());
        order_.pop_back();
    }
    order_.push_front(key);
    entries_.emplace(key, Entry{order_.begin(), record});
}

std::size_t
ResultMemo::size() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return entries_.size();
}

Server::Server(ServerOptions opts)
    : opts_(std::move(opts)), memo_(opts_.resultMemoCapacity)
{
    if (opts_.workers == 0)
        opts_.workers = 1;
    if (opts_.admissionCapacity == 0)
        opts_.admissionCapacity = 1;
}

Server::~Server()
{
    shutdown();
}

std::string
Server::addressDescription() const
{
    if (!opts_.listen.unixPath.empty())
        return "unix:" + opts_.listen.unixPath;
    return opts_.listen.host + ":" + std::to_string(boundPort_);
}

void
Server::start()
{
    if (started_)
        return;

    if (!runner_) {
        runner_ = [this](const CellKey &cell,
                         const RunBudget &budget) {
            return runCellWithEngine(cell, budget);
        };
    }

    if (!opts_.listen.unixPath.empty()) {
        listenFd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
        if (listenFd_ < 0)
            fatal("mgx_serve: socket: %s", std::strerror(errno));
        sockaddr_un addr{};
        addr.sun_family = AF_UNIX;
        if (opts_.listen.unixPath.size() >= sizeof addr.sun_path)
            fatal("mgx_serve: unix path too long: '%s'",
                  opts_.listen.unixPath.c_str());
        std::strncpy(addr.sun_path, opts_.listen.unixPath.c_str(),
                     sizeof addr.sun_path - 1);
        ::unlink(opts_.listen.unixPath.c_str());
        if (::bind(listenFd_, reinterpret_cast<sockaddr *>(&addr),
                   sizeof addr) != 0)
            fatal("mgx_serve: bind '%s': %s",
                  opts_.listen.unixPath.c_str(), std::strerror(errno));
    } else {
        listenFd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
        if (listenFd_ < 0)
            fatal("mgx_serve: socket: %s", std::strerror(errno));
        const int one = 1;
        ::setsockopt(listenFd_, SOL_SOCKET, SO_REUSEADDR, &one,
                     sizeof one);
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_port = htons(opts_.listen.port);
        if (::inet_pton(AF_INET, opts_.listen.host.c_str(),
                        &addr.sin_addr) != 1)
            fatal("mgx_serve: bad listen host '%s'",
                  opts_.listen.host.c_str());
        if (::bind(listenFd_, reinterpret_cast<sockaddr *>(&addr),
                   sizeof addr) != 0)
            fatal("mgx_serve: bind %s:%u: %s",
                  opts_.listen.host.c_str(), opts_.listen.port,
                  std::strerror(errno));
        sockaddr_in bound{};
        socklen_t len = sizeof bound;
        if (::getsockname(listenFd_,
                          reinterpret_cast<sockaddr *>(&bound),
                          &len) == 0)
            boundPort_ = ntohs(bound.sin_port);
    }

    if (::listen(listenFd_, 64) != 0)
        fatal("mgx_serve: listen: %s", std::strerror(errno));

    started_ = true;
    acceptor_ = std::thread([this] { acceptLoop(); });
    for (u32 i = 0; i < opts_.workers; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

void
Server::requestShutdown()
{
    {
        std::lock_guard<std::mutex> lock(qmu_);
        if (draining_)
            return;
        draining_ = true;
    }
    metrics_.draining.store(true, std::memory_order_relaxed);
    qcv_.notify_all();
}

void
Server::shutdown()
{
    if (!started_ || joined_)
        return;
    requestShutdown();
    if (acceptor_.joinable())
        acceptor_.join();
    for (auto &w : workers_)
        if (w.joinable())
            w.join();
    workers_.clear();
    // Cells whose requests hit the deadline keep running detached;
    // wait for them so no engine run is torn down mid-simulation.
    // Unbounded by design — see SingleFlight::drainBackground().
    flights_.drainBackground();
    if (listenFd_ >= 0) {
        ::close(listenFd_);
        listenFd_ = -1;
    }
    if (!opts_.listen.unixPath.empty())
        ::unlink(opts_.listen.unixPath.c_str());
    joined_ = true;
}

bool
Server::stopping() const
{
    std::lock_guard<std::mutex> lock(qmu_);
    return draining_;
}

ServeMetrics::Snapshot
Server::metricsSnapshot() const
{
    return metrics_.snapshot();
}

void
Server::setCellRunnerForTest(CellRunner runner)
{
    runner_ = [runner = std::move(runner)](const CellKey &cell,
                                           const RunBudget &) {
        return runner(cell);
    };
}

void
Server::acceptLoop()
{
    while (true) {
        pollfd pfd{listenFd_, POLLIN, 0};
        const int ready = ::poll(&pfd, 1, 100);
        {
            std::lock_guard<std::mutex> lock(qmu_);
            if (draining_)
                return;
        }
        if (ready <= 0)
            continue;
        const int fd =
            ::accept4(listenFd_, nullptr, nullptr, SOCK_CLOEXEC);
        if (fd < 0)
            continue;
        if (fpAcceptFail.fire()) {
            // Simulated transient accept failure (ECONNABORTED-like):
            // the connection is lost but the loop must keep serving.
            ::close(fd);
            continue;
        }
        metrics_.accepted.fetch_add(1, std::memory_order_relaxed);
        setSocketTimeout(fd, opts_.ioTimeoutMs);

        int turn_away = 0; // 0 = admitted, else status to answer with
        {
            std::lock_guard<std::mutex> lock(qmu_);
            if (draining_) {
                turn_away = 503;
            } else if (pending_.size() >= opts_.admissionCapacity) {
                turn_away = 429;
            } else {
                pending_.push_back(fd);
                metrics_.noteQueueDepth(pending_.size());
            }
        }
        if (turn_away == 0) {
            qcv_.notify_one();
            continue;
        }
        if (turn_away == 429)
            metrics_.rejected.fetch_add(1, std::memory_order_relaxed);
        // Answer without reading the request: the point of
        // back-pressure is that a full server does no request work.
        sendAll(fd, httpResponse(
                        turn_away, "application/json",
                        jsonError(turn_away == 429
                                      ? "admission queue full, retry"
                                      : "shutting down")));
        ::close(fd);
    }
}

void
Server::workerLoop()
{
    while (true) {
        int fd = -1;
        {
            std::unique_lock<std::mutex> lock(qmu_);
            qcv_.wait(lock, [this] {
                return !pending_.empty() || draining_;
            });
            if (pending_.empty()) {
                // draining_ and nothing queued: the drain is done.
                return;
            }
            fd = pending_.front();
            pending_.pop_front();
            metrics_.noteQueueDepth(pending_.size());
        }
        metrics_.inFlight.fetch_add(1, std::memory_order_relaxed);
        handleConnection(fd);
        metrics_.inFlight.fetch_sub(1, std::memory_order_relaxed);
    }
}

void
Server::handleConnection(int fd)
{
    std::string carry;
    bool first = true;
    while (serveOneRequest(fd, &carry, first))
        first = false;
    ::close(fd);
}

bool
Server::serveOneRequest(int fd, std::string *carry, bool first)
{
    HttpRequestParser parser;
    if (!carry->empty()) {
        parser.feed(carry->data(), carry->size());
        carry->clear();
    }

    // A reused connection with nothing buffered is idle: wait for the
    // next request up to the keep-alive idle cutoff, in short poll
    // slices so a drain — or a backlog of connections waiting for a
    // worker — reclaims this thread quickly instead of letting one
    // quiet peer park it.
    if (!first &&
        parser.status() == HttpRequestParser::Status::Incomplete &&
        parser.bytesFed() == 0) {
        int waited = 0;
        bool readable = false;
        while (waited < opts_.keepAliveIdleMs) {
            {
                std::lock_guard<std::mutex> lock(qmu_);
                if (draining_ || !pending_.empty())
                    return false;
            }
            const int slice =
                std::min(50, opts_.keepAliveIdleMs - waited);
            pollfd pfd{fd, POLLIN, 0};
            const int r = ::poll(&pfd, 1, slice);
            if (r > 0) {
                readable = true;
                break;
            }
            if (r < 0 && errno != EINTR)
                return false;
            waited += slice;
        }
        if (!readable)
            return false; // idle cutoff: close to bound open FDs
    }

    bool injected_recv_fail = false;
    bool peer_eof = false;
    char buf[4096];
    while (parser.status() == HttpRequestParser::Status::Incomplete) {
        if (fpRecvFail.fire()) {
            injected_recv_fail = true;
            break; // simulated mid-request connection loss
        }
        const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
        if (n < 0 && errno == EINTR)
            continue;
        if (n == 0)
            peer_eof = true;
        if (n <= 0)
            break; // peer closed, timed out, or errored
        parser.feed(buf, static_cast<std::size_t>(n));
    }

    if (parser.status() != HttpRequestParser::Status::Complete) {
        // A peer that closed (real EOF) without sending anything is a
        // clean close — the normal end of a kept-alive connection —
        // not a malformed request. A peer that went silent until the
        // receive timeout still gets the 400 below.
        if (peer_eof && parser.bytesFed() == 0 && !injected_recv_fail)
            return false;
        metrics_.badRequests.fetch_add(1, std::memory_order_relaxed);
        if (parser.tooLarge())
            metrics_.oversized.fetch_add(1, std::memory_order_relaxed);
        // An oversized request gets a clean 431 instead of a generic
        // 400: the peer is told exactly why it was refused, and the
        // daemon sheds the connection without reading the rest.
        sendAll(fd, httpResponse(
                        parser.tooLarge() ? 431 : 400,
                        "application/json",
                        jsonError(parser.error().empty()
                                      ? "incomplete request"
                                      : parser.error())));
        return false;
    }

    if (!first)
        metrics_.keepAliveReused.fetch_add(1,
                                           std::memory_order_relaxed);

    int status = 500;
    std::string body;
    try {
        body = handleRequest(parser.request(), &status);
    } catch (const std::exception &e) {
        status = 500;
        body = jsonError(e.what());
    }
    if (status < 400)
        metrics_.served.fetch_add(1, std::memory_order_relaxed);
    else if (status >= 500)
        metrics_.failed.fetch_add(1, std::memory_order_relaxed);
    else
        metrics_.badRequests.fetch_add(1, std::memory_order_relaxed);

    // Keep the connection only when the peer explicitly asked to —
    // legacy clients send `Connection: close` (or nothing) and get
    // the old one-request-per-connection behavior unchanged.
    bool keep = false;
    if (opts_.keepAlive && !stopping()) {
        if (auto conn = parser.request().header("connection")) {
            std::string v = *conn;
            std::transform(v.begin(), v.end(), v.begin(),
                           [](unsigned char c) {
                               return static_cast<char>(
                                   std::tolower(c));
                           });
            keep = v == "keep-alive";
        }
    }
    sendAll(fd, httpResponse(status, "application/json", body, {},
                             keep));
    if (keep)
        *carry = parser.surplus();
    return keep;
}

std::string
Server::handleRequest(const HttpRequest &req, int *status_out)
{
    if (req.method != "GET") {
        *status_out = 405;
        return jsonError("only GET is supported");
    }
    if (req.path == "/run")
        return handleRun(req, status_out);
    if (req.path == "/stats") {
        *status_out = 200;
        return statsJson(metrics_.snapshot());
    }
    if (req.path == "/healthz") {
        // Liveness, not readiness: 200 whenever the daemon can answer
        // at all. Degraded states are reported, not treated as death.
        *status_out = 200;
        std::string body = "{\"ok\": true";
        body += std::string(", \"draining\": ") +
                (stopping() ? "true" : "false");
        body += std::string(", \"cacheDegraded\": ") +
                (cacheDegraded() ? "true" : "false");
        body += "}\n";
        return body;
    }
    if (req.path == "/shutdown") {
        *status_out = 200;
        requestShutdown();
        return "{\"shutdown\": true}\n";
    }
    *status_out = 404;
    return jsonError("no such endpoint: " + req.path);
}

bool
Server::validateWorkload(const std::string &name, std::string *error)
{
    {
        std::lock_guard<std::mutex> lock(validmu_);
        auto it = validation_.find(name);
        if (it != validation_.end()) {
            if (error)
                *error = it->second;
            return it->second.empty();
        }
    }
    // Construct outside the lock — kernels are cheap to build but not
    // free, and two threads validating one name is harmless.
    std::string message;
    auto kernel =
        sim::tryMakeKernel(name, sim::cloudPlatform(), &message);
    if (kernel)
        message.clear();
    {
        std::lock_guard<std::mutex> lock(validmu_);
        validation_.emplace(name, message);
    }
    if (error)
        *error = message;
    return message.empty();
}

std::string
Server::handleRun(const HttpRequest &req, int *status_out)
{
    std::vector<std::string> workloads;
    for (const auto &v : req.queryValues("workload"))
        for (auto &w : splitCommas(v))
            workloads.push_back(w);
    if (workloads.empty()) {
        *status_out = 400;
        return jsonError("missing workload= parameter");
    }

    std::string error;
    for (const auto &w : workloads) {
        if (!validateWorkload(w, &error)) {
            *status_out = 400;
            return jsonError(error);
        }
    }

    std::vector<sim::Platform> platforms;
    if (auto p = req.queryValue("platforms")) {
        for (const auto &name : splitCommas(*p)) {
            sim::Platform platform;
            if (!platformByName(name, platform)) {
                *status_out = 400;
                return jsonError("unknown platform '" + name +
                                 "' (expected cloud, edge, graph or "
                                 "genome)");
            }
            platforms.push_back(platform);
        }
    }

    std::vector<protection::Scheme> schemes;
    if (auto s = req.queryValue("schemes")) {
        for (const auto &name : splitCommas(*s)) {
            protection::Scheme scheme;
            if (!schemeByNameNoFatal(name, scheme)) {
                *status_out = 400;
                return jsonError("unknown scheme '" + name +
                                 "' (expected NP, MGX, MGX_VN, "
                                 "MGX_MAC or BP)");
            }
            schemes.push_back(scheme);
        }
    }
    if (schemes.empty())
        schemes = sim::allSchemes();

    // Per-request replay budget: how each cell executes, never what
    // it answers (diagnostics are scrubbed; see runCellWithEngine).
    // The effective thread cost is clamped under maxRequestThreads by
    // the Experiment budget machinery, so an oversized ask degrades
    // to whatever the operator allowed instead of failing.
    RunBudget budget;
    if (auto p = req.queryValue("pipeline")) {
        if (*p == "1")
            budget.pipelined = true;
        else if (*p != "0") {
            *status_out = 400;
            return jsonError("pipeline= must be 0 or 1");
        }
    }
    if (auto r = req.queryValue("replayThreads")) {
        char *end = nullptr;
        const unsigned long n = std::strtoul(r->c_str(), &end, 10);
        if (r->empty() || end == nullptr || *end != '\0' || n == 0) {
            *status_out = 400;
            return jsonError(
                "replayThreads= must be a positive integer");
        }
        budget.replayThreads = static_cast<u32>(n);
    }

    // One wall-clock budget for the whole request, not per cell: the
    // client asked one question, so the question has one deadline.
    const bool deadlined = opts_.requestDeadlineMs > 0;
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::milliseconds(opts_.requestDeadlineMs);

    // mgx_run's grid order (workloads x platforms x schemes, default
    // platform per workload when the axis is unset) so the assembled
    // ResultSet — and its JSON — matches the CLI byte for byte.
    sim::ResultSet rs;
    u64 hits = 0, misses = 0;
    for (const auto &w : workloads) {
        std::vector<sim::Platform> cell_platforms = platforms;
        if (cell_platforms.empty())
            cell_platforms.push_back(sim::defaultPlatform(w));
        for (const auto &platform : cell_platforms) {
            for (protection::Scheme scheme : schemes) {
                CellKey cell{w, platform, scheme};
                // Warm repeat: the memo'd record is bitwise what a
                // re-run would produce, so skip the engine entirely.
                // The memo key is budget-free — results don't depend
                // on the replay mode.
                if (auto memo = memo_.get(cell.key())) {
                    metrics_.resultMemoHits.fetch_add(
                        1, std::memory_order_relaxed);
                    rs.add(std::move(*memo));
                    continue;
                }
                // The cell (not &: runFor's leader lambda outlives
                // this frame when the deadline expires first).
                const auto body = [this, cell,
                                   budget]() -> CellOutcome {
                    metrics_.cellsRun.fetch_add(
                        1, std::memory_order_relaxed);
                    return runner_(cell, budget);
                };
                SingleFlight<CellOutcome>::Outcome outcome;
                if (deadlined) {
                    const auto left =
                        std::chrono::duration_cast<
                            std::chrono::milliseconds>(
                            deadline -
                            std::chrono::steady_clock::now());
                    outcome = flights_.runFor(
                        cell.key(), body,
                        std::max(left,
                                 std::chrono::milliseconds(0)));
                    if (!outcome.value) {
                        // Deadline hit. The cell finishes on its
                        // background thread; a retry joins it
                        // instead of paying for a second run.
                        metrics_.deadlineExceeded.fetch_add(
                            1, std::memory_order_relaxed);
                        *status_out = 503;
                        return jsonError(
                            "deadline exceeded after " +
                            std::to_string(
                                opts_.requestDeadlineMs) +
                            " ms (cell " + cell.key() +
                            " still running; retry to join it)");
                    }
                } else {
                    outcome = flights_.run(cell.key(), body);
                }
                if (!outcome.leader)
                    metrics_.dedupCollapsed.fetch_add(
                        1, std::memory_order_relaxed);
                rs.add(outcome.value->record);
                memo_.put(cell.key(), outcome.value->record);
                hits += outcome.value->cacheHits;
                misses += outcome.value->cacheMisses;
            }
        }
    }
    rs.setTraceCacheStats(hits, misses);
    metrics_.traceCacheHits.fetch_add(hits,
                                      std::memory_order_relaxed);
    metrics_.traceCacheMisses.fetch_add(misses,
                                        std::memory_order_relaxed);

    *status_out = 200;
    return sim::toJson(rs);
}

bool
Server::cacheUsableNow()
{
    if (opts_.traceCacheDir.empty())
        return false;
    if (!cacheDegraded_.load(std::memory_order_relaxed))
        return true;
    // Degraded: bypass the cache until the re-probe window opens,
    // then let exactly this cell probe it (the window is pushed
    // forward so concurrent cells keep bypassing meanwhile).
    std::lock_guard<std::mutex> lock(cachemu_);
    const auto now = std::chrono::steady_clock::now();
    if (now < cacheRetryAt_)
        return false;
    cacheRetryAt_ =
        now + std::chrono::milliseconds(opts_.cacheRetryMs);
    return true;
}

void
Server::noteCacheHealth(bool degraded)
{
    if (degraded) {
        {
            std::lock_guard<std::mutex> lock(cachemu_);
            cacheRetryAt_ =
                std::chrono::steady_clock::now() +
                std::chrono::milliseconds(opts_.cacheRetryMs);
        }
        if (!cacheDegraded_.exchange(true,
                                     std::memory_order_relaxed))
            MGX_WARN(
                "mgx_serve: trace cache degraded ('%s'); serving "
                "uncached, re-probing every %d ms",
                opts_.traceCacheDir.c_str(), opts_.cacheRetryMs);
    } else if (cacheDegraded_.exchange(false,
                                       std::memory_order_relaxed)) {
        MGX_WARN("mgx_serve: trace cache recovered ('%s')",
                 opts_.traceCacheDir.c_str());
    }
    metrics_.cacheDegraded.store(
        cacheDegraded_.load(std::memory_order_relaxed),
        std::memory_order_relaxed);
}

CellOutcome
Server::runCellWithEngine(const CellKey &cell, const RunBudget &budget)
{
    // One cell per run. The request's replay budget selects the
    // execution mode under the operator's thread cap — the Experiment
    // budget machinery clamps an oversized ask rather than
    // oversubscribing. Model outputs are bitwise-identical across
    // modes (see sim/shard.h), and the scheduling-dependent
    // pipeline/shard diagnostics are scrubbed below, so the response
    // body stays byte-identical to `mgx_run --no-pipeline --json`
    // whatever the client asked for.
    sim::Experiment experiment;
    experiment.workload(cell.workload)
        .platform(cell.platform)
        .schemes({cell.scheme})
        .threads(std::max(1u, opts_.maxRequestThreads))
        .pipelined(budget.pipelined)
        .replayThreads(budget.replayThreads);
    const bool with_cache = cacheUsableNow();
    if (with_cache) {
        experiment.traceCacheDir(opts_.traceCacheDir);
        if (opts_.traceCacheMaxBytes != 0)
            experiment.traceCacheMaxBytes(opts_.traceCacheMaxBytes);
    }
    sim::ResultSet rs = experiment.run();
    if (rs.records().size() != 1)
        fatal("mgx_serve: single-cell experiment produced %zu records",
              rs.records().size());
    // Only a run that actually touched the cache votes on its
    // health; bypassing cells would otherwise "recover" it blindly.
    if (with_cache)
        noteCacheHealth(rs.cacheDegraded());
    CellOutcome out{rs.records()[0], rs.traceCacheHits(),
                    rs.traceCacheMisses()};
    // Scrub the replay-mode diagnostics: they are the only fields
    // that vary with the budget (or with scheduling), and removing
    // them keeps responses — and the memo — byte-identical across
    // modes.
    out.record.result.pipelineProducerWaits = 0;
    out.record.result.pipelineConsumerWaits = 0;
    out.record.result.pipelineMaxOccupancy = 0;
    out.record.result.shardReplayThreads = 0;
    out.record.result.shardMergeWaits = 0;
    out.record.result.shardChannels.clear();
    return out;
}

void
Server::sendAll(int fd, const std::string &data) const
{
    if (fpSendFail.fire())
        return; // simulated peer death before the response went out
    std::size_t sent = 0;
    while (sent < data.size()) {
        const ssize_t n = ::send(fd, data.data() + sent,
                                 data.size() - sent, MSG_NOSIGNAL);
        if (n <= 0) {
            if (n < 0 && errno == EINTR)
                continue;
            return; // peer went away; nothing useful to do
        }
        sent += static_cast<std::size_t>(n);
    }
}

} // namespace mgx::serve
