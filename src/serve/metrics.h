/**
 * @file
 * Lock-free operational counters for mgx_serve, surfaced by the
 * /stats endpoint as `mgx-servestats-v1` JSON. Counters are plain
 * relaxed atomics — they are diagnostics, not synchronization; the
 * server's queue mutex orders the state they describe.
 */

#ifndef MGX_SERVE_METRICS_H
#define MGX_SERVE_METRICS_H

#include <atomic>
#include <string>

#include "common/types.h"

namespace mgx::serve {

class ServeMetrics
{
  public:
    /** A consistent-enough copy for reporting. */
    struct Snapshot
    {
        u64 accepted = 0;       ///< connections accepted
        u64 rejected = 0;       ///< 429s: admission queue was full
        u64 served = 0;         ///< responses with status < 400
        u64 failed = 0;         ///< responses with status >= 500
        u64 badRequests = 0;    ///< 4xx other than queue rejections
        u64 dedupCollapsed = 0; ///< cell requests served as followers
        u64 cellsRun = 0;       ///< cells actually simulated (leaders)
        u64 resultMemoHits = 0; ///< cells answered from the result memo
        u64 traceCacheHits = 0;
        u64 traceCacheMisses = 0;
        u64 inFlight = 0;       ///< requests being handled right now
        u64 queueDepth = 0;     ///< connections waiting for a worker
        u64 maxQueueDepth = 0;  ///< high-water mark of queueDepth
        u64 deadlineExceeded = 0; ///< 503s: request deadline expired
        u64 oversized = 0;      ///< 431s: request exceeded the 1 MiB cap
        u64 keepAliveReused = 0; ///< requests served on a reused connection
        bool cacheDegraded = false; ///< trace cache bypassed (see Server)
        bool draining = false;  ///< shutdown requested
    };

    std::atomic<u64> accepted{0};
    std::atomic<u64> rejected{0};
    std::atomic<u64> served{0};
    std::atomic<u64> failed{0};
    std::atomic<u64> badRequests{0};
    std::atomic<u64> dedupCollapsed{0};
    std::atomic<u64> cellsRun{0};
    std::atomic<u64> resultMemoHits{0};
    std::atomic<u64> traceCacheHits{0};
    std::atomic<u64> traceCacheMisses{0};
    std::atomic<u64> inFlight{0};
    std::atomic<u64> queueDepth{0};
    std::atomic<u64> maxQueueDepth{0};
    std::atomic<u64> deadlineExceeded{0};
    std::atomic<u64> oversized{0};
    std::atomic<u64> keepAliveReused{0};
    std::atomic<bool> cacheDegraded{false};
    std::atomic<bool> draining{false};

    /** Raise maxQueueDepth to at least @p depth. */
    void
    noteQueueDepth(u64 depth)
    {
        queueDepth.store(depth, std::memory_order_relaxed);
        u64 seen = maxQueueDepth.load(std::memory_order_relaxed);
        while (depth > seen &&
               !maxQueueDepth.compare_exchange_weak(
                   seen, depth, std::memory_order_relaxed))
            ;
    }

    Snapshot snapshot() const;
};

/** Serialize @p s as the `mgx-servestats-v1` JSON document. */
std::string statsJson(const ServeMetrics::Snapshot &s);

} // namespace mgx::serve

#endif // MGX_SERVE_METRICS_H
