#include "client.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace mgx::serve {
namespace {

int
connectTo(const SocketAddress &addr, std::string *error)
{
    const auto fail = [&](const std::string &what) {
        if (error)
            *error = what + ": " + std::strerror(errno);
        return -1;
    };
    if (!addr.unixPath.empty()) {
        const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
        if (fd < 0)
            return fail("socket");
        sockaddr_un sa{};
        sa.sun_family = AF_UNIX;
        if (addr.unixPath.size() >= sizeof sa.sun_path) {
            ::close(fd);
            if (error)
                *error = "unix path too long: " + addr.unixPath;
            return -1;
        }
        std::strncpy(sa.sun_path, addr.unixPath.c_str(),
                     sizeof sa.sun_path - 1);
        if (::connect(fd, reinterpret_cast<sockaddr *>(&sa),
                      sizeof sa) != 0) {
            const int r = fail("connect " + addr.unixPath);
            ::close(fd);
            return r;
        }
        return fd;
    }
    const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0)
        return fail("socket");
    sockaddr_in sa{};
    sa.sin_family = AF_INET;
    sa.sin_port = htons(addr.port);
    if (::inet_pton(AF_INET, addr.host.c_str(), &sa.sin_addr) != 1) {
        ::close(fd);
        if (error)
            *error = "bad host: " + addr.host;
        return -1;
    }
    if (::connect(fd, reinterpret_cast<sockaddr *>(&sa), sizeof sa) !=
        0) {
        const int r = fail("connect " + addr.host + ":" +
                           std::to_string(addr.port));
        ::close(fd);
        return r;
    }
    return fd;
}

void
setFailure(GetFailure *failure, GetFailure f)
{
    if (failure)
        *failure = f;
}

/**
 * Issue one GET on an already-connected @p fd and read the response.
 * @p keep_alive selects the Connection request header. On success
 * @p reusable_out says whether the socket is still good for another
 * request (Content-Length-framed response that did not ask to close).
 * Classifies failures; never parses a truncated body as success.
 */
bool
requestOnFd(int fd, const std::string &target, bool keep_alive,
            HttpResponse *out, std::string *error, int timeout_ms,
            GetFailure *failure, bool *reusable_out)
{
    setFailure(failure, GetFailure::None);
    if (reusable_out)
        *reusable_out = false;

    timeval tv{};
    tv.tv_sec = timeout_ms / 1000;
    tv.tv_usec = (timeout_ms % 1000) * 1000;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
    ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);

    const std::string request =
        "GET " + target + " HTTP/1.1\r\nHost: mgx\r\nConnection: " +
        (keep_alive ? "keep-alive" : "close") + "\r\n\r\n";
    std::size_t sent = 0;
    std::string send_error;
    while (sent < request.size()) {
        const ssize_t n = ::send(fd, request.data() + sent,
                                 request.size() - sent, MSG_NOSIGNAL);
        if (n <= 0) {
            if (n < 0 && errno == EINTR)
                continue;
            // The server may answer-and-close without reading the
            // request — that is how admission rejection (429) works,
            // so a failed send is not fatal: the response can already
            // be sitting in our receive queue. Only report the send
            // error if nothing comes back.
            send_error = std::string("send: ") + std::strerror(errno);
            break;
        }
        sent += static_cast<std::size_t>(n);
    }

    HttpResponseParser parser;
    char buf[4096];
    std::string recv_error;
    bool eof = false;
    while (parser.status() == HttpResponseParser::Status::Incomplete) {
        const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
        if (n < 0 && errno == EINTR)
            continue;
        if (n < 0) {
            recv_error = std::string("recv: ") + std::strerror(errno);
            break;
        }
        if (n == 0) {
            eof = true;
            parser.finishEof();
            break;
        }
        parser.feed(buf, static_cast<std::size_t>(n));
    }

    if (parser.status() == HttpResponseParser::Status::Complete) {
        const HttpResponse &resp = parser.response();
        const auto conn = resp.header("connection");
        if (reusable_out)
            *reusable_out = !eof && keep_alive &&
                            resp.header("content-length").has_value() &&
                            (!conn || *conn != "close");
        if (out)
            *out = resp;
        return true;
    }

    // Failure: classify by how far we got.
    std::string why;
    GetFailure cls;
    if (parser.status() == HttpResponseParser::Status::Error &&
        !parser.headersComplete() &&
        parser.error().rfind("connection closed", 0) != 0) {
        cls = GetFailure::Parse;
        why = "parse: " + parser.error();
    } else if (parser.headersComplete() ||
               (parser.status() == HttpResponseParser::Status::Error &&
                parser.error().rfind("connection closed inside", 0) ==
                    0)) {
        cls = GetFailure::PartialResponse;
        why = "partial response: " +
              (recv_error.empty()
                   ? (parser.error().empty() ? "connection closed"
                                             : parser.error())
                   : recv_error);
    } else if (!send_error.empty()) {
        cls = GetFailure::Send;
        why = send_error;
    } else {
        cls = GetFailure::Recv;
        why = recv_error.empty() ? "recv: connection closed"
                                 : recv_error;
    }
    setFailure(failure, cls);
    if (error)
        *error = why;
    return false;
}

} // namespace

const char *
getFailureName(GetFailure f)
{
    switch (f) {
      case GetFailure::None: return "none";
      case GetFailure::Connect: return "connect";
      case GetFailure::Send: return "send";
      case GetFailure::Recv: return "recv";
      case GetFailure::PartialResponse: return "partialResponse";
      case GetFailure::Parse: return "parse";
    }
    return "unknown";
}

void
RetryStats::add(const RetryStats &o)
{
    attempts += o.attempts;
    connectFailures += o.connectFailures;
    sendFailures += o.sendFailures;
    recvFailures += o.recvFailures;
    partialResponses += o.partialResponses;
    parseFailures += o.parseFailures;
    backpressure += o.backpressure;
}

void
RetryStats::count(GetFailure f)
{
    switch (f) {
      case GetFailure::None: break;
      case GetFailure::Connect: ++connectFailures; break;
      case GetFailure::Send: ++sendFailures; break;
      case GetFailure::Recv: ++recvFailures; break;
      case GetFailure::PartialResponse: ++partialResponses; break;
      case GetFailure::Parse: ++parseFailures; break;
    }
}

bool
httpGet(const SocketAddress &addr, const std::string &target,
        HttpResponse *out, std::string *error, int timeout_ms,
        GetFailure *failure)
{
    setFailure(failure, GetFailure::None);
    const int fd = connectTo(addr, error);
    if (fd < 0) {
        setFailure(failure, GetFailure::Connect);
        return false;
    }
    const bool ok = requestOnFd(fd, target, /*keep_alive=*/false, out,
                                error, timeout_ms, failure, nullptr);
    ::close(fd);
    return ok;
}

bool
httpGetRetry(const SocketAddress &addr, const std::string &target,
             HttpResponse *out, std::string *error, int timeout_ms,
             const RetryOptions &opts, int *attempts_out,
             RetryStats *stats)
{
    // Full-jitter backoff off a tiny LCG: good enough to decorrelate
    // a stampede of clients, deterministic under a caller-given seed.
    u64 rng = opts.seed;
    if (rng == 0)
        rng = static_cast<u64>(::getpid()) * 2654435761u +
              static_cast<u64>(
                  std::chrono::steady_clock::now()
                      .time_since_epoch()
                      .count());
    const auto next = [&rng] {
        rng = rng * 6364136223846793005ull + 1442695040888963407ull;
        return rng >> 33;
    };

    const int attempts = 1 + std::max(0, opts.retries);
    bool ok = false;
    for (int attempt = 0; attempt < attempts; ++attempt) {
        if (attempt > 0) {
            u64 base = static_cast<u64>(std::max(1, opts.backoffMs))
                       << (attempt - 1);
            base = std::min<u64>(
                base, static_cast<u64>(std::max(1, opts.maxBackoffMs)));
            const u64 delay = base / 2 + next() % (base - base / 2 + 1);
            std::this_thread::sleep_for(
                std::chrono::milliseconds(delay));
        }
        GetFailure f = GetFailure::None;
        ok = httpGet(addr, target, out, error, timeout_ms, &f);
        if (stats)
            ++stats->attempts;
        if (attempts_out)
            *attempts_out = attempt + 1;
        if (!ok) {
            if (stats)
                stats->count(f);
            continue; // transport failure (incl. partial): retry
        }
        if (out->status == 429 || out->status == 503) {
            if (stats && attempt + 1 < attempts)
                ++stats->backpressure;
            continue; // explicit back-pressure: retry
        }
        return true;  // definite answer (2xx, 4xx, 5xx other)
    }
    // Exhausted. A parsed 429/503 still counts as "the server
    // answered" — hand it back so the caller can report the status.
    return ok;
}

void
ClientConnection::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

bool
ClientConnection::getOnce(const std::string &target, HttpResponse *out,
                          std::string *error, int timeout_ms,
                          GetFailure *failure, bool *reused_attempt)
{
    const bool reused = fd_ >= 0;
    if (reused_attempt)
        *reused_attempt = reused;
    if (!reused) {
        fd_ = connectTo(addr_, error);
        if (fd_ < 0) {
            setFailure(failure, GetFailure::Connect);
            return false;
        }
    }
    bool reusable = false;
    const bool ok = requestOnFd(fd_, target, /*keep_alive=*/true, out,
                                error, timeout_ms, failure, &reusable);
    if (!ok || !reusable)
        close();
    if (ok)
        last_reused_ = reused;
    return ok;
}

bool
ClientConnection::get(const std::string &target, HttpResponse *out,
                      std::string *error, int timeout_ms,
                      GetFailure *failure)
{
    setFailure(failure, GetFailure::None);
    bool reused = false;
    GetFailure f = GetFailure::None;
    std::string err;
    if (getOnce(target, out, &err, timeout_ms, &f, &reused))
        return true;
    // The reuse race: the server closed the idle socket just as we
    // wrote into it. Our request never ran — retry once on a fresh
    // connect. A failure on a *fresh* socket is reported as-is.
    if (reused && f != GetFailure::Parse) {
        err.clear();
        f = GetFailure::None;
        if (getOnce(target, out, &err, timeout_ms, &f, &reused))
            return true;
    }
    setFailure(failure, f);
    if (error)
        *error = err;
    return false;
}

} // namespace mgx::serve
