#include "client.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace mgx::serve {
namespace {

int
connectTo(const SocketAddress &addr, std::string *error)
{
    const auto fail = [&](const std::string &what) {
        if (error)
            *error = what + ": " + std::strerror(errno);
        return -1;
    };
    if (!addr.unixPath.empty()) {
        const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
        if (fd < 0)
            return fail("socket");
        sockaddr_un sa{};
        sa.sun_family = AF_UNIX;
        if (addr.unixPath.size() >= sizeof sa.sun_path) {
            ::close(fd);
            if (error)
                *error = "unix path too long: " + addr.unixPath;
            return -1;
        }
        std::strncpy(sa.sun_path, addr.unixPath.c_str(),
                     sizeof sa.sun_path - 1);
        if (::connect(fd, reinterpret_cast<sockaddr *>(&sa),
                      sizeof sa) != 0) {
            const int r = fail("connect " + addr.unixPath);
            ::close(fd);
            return r;
        }
        return fd;
    }
    const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0)
        return fail("socket");
    sockaddr_in sa{};
    sa.sin_family = AF_INET;
    sa.sin_port = htons(addr.port);
    if (::inet_pton(AF_INET, addr.host.c_str(), &sa.sin_addr) != 1) {
        ::close(fd);
        if (error)
            *error = "bad host: " + addr.host;
        return -1;
    }
    if (::connect(fd, reinterpret_cast<sockaddr *>(&sa), sizeof sa) !=
        0) {
        const int r = fail("connect " + addr.host + ":" +
                           std::to_string(addr.port));
        ::close(fd);
        return r;
    }
    return fd;
}

} // namespace

bool
httpGet(const SocketAddress &addr, const std::string &target,
        HttpResponse *out, std::string *error, int timeout_ms)
{
    const int fd = connectTo(addr, error);
    if (fd < 0)
        return false;

    timeval tv{};
    tv.tv_sec = timeout_ms / 1000;
    tv.tv_usec = (timeout_ms % 1000) * 1000;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
    ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);

    const std::string request = "GET " + target +
                                " HTTP/1.1\r\nHost: mgx\r\n"
                                "Connection: close\r\n\r\n";
    std::size_t sent = 0;
    std::string send_error;
    while (sent < request.size()) {
        const ssize_t n = ::send(fd, request.data() + sent,
                                 request.size() - sent, MSG_NOSIGNAL);
        if (n <= 0) {
            if (n < 0 && errno == EINTR)
                continue;
            // The server may answer-and-close without reading the
            // request — that is how admission rejection (429) works,
            // so a failed send is not fatal: the response can already
            // be sitting in our receive queue. Only report the send
            // error if nothing comes back.
            send_error = std::string("send: ") + std::strerror(errno);
            break;
        }
        sent += static_cast<std::size_t>(n);
    }

    std::string raw;
    char buf[4096];
    while (true) {
        const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
        if (n < 0 && errno == EINTR)
            continue;
        if (n < 0) {
            if (raw.empty()) {
                if (error)
                    *error = std::string("recv: ") +
                             std::strerror(errno);
                ::close(fd);
                return false;
            }
            break; // got a response before the connection dropped
        }
        if (n == 0)
            break;
        raw.append(buf, static_cast<std::size_t>(n));
    }
    ::close(fd);

    if (raw.empty() && !send_error.empty()) {
        if (error)
            *error = send_error;
        return false;
    }
    return parseHttpResponse(raw, out, error);
}

bool
httpGetRetry(const SocketAddress &addr, const std::string &target,
             HttpResponse *out, std::string *error, int timeout_ms,
             const RetryOptions &opts, int *attempts_out)
{
    // Full-jitter backoff off a tiny LCG: good enough to decorrelate
    // a stampede of clients, deterministic under a caller-given seed.
    u64 rng = opts.seed;
    if (rng == 0)
        rng = static_cast<u64>(::getpid()) * 2654435761u +
              static_cast<u64>(
                  std::chrono::steady_clock::now()
                      .time_since_epoch()
                      .count());
    const auto next = [&rng] {
        rng = rng * 6364136223846793005ull + 1442695040888963407ull;
        return rng >> 33;
    };

    const int attempts = 1 + std::max(0, opts.retries);
    bool ok = false;
    for (int attempt = 0; attempt < attempts; ++attempt) {
        if (attempt > 0) {
            u64 base = static_cast<u64>(std::max(1, opts.backoffMs))
                       << (attempt - 1);
            base = std::min<u64>(
                base, static_cast<u64>(std::max(1, opts.maxBackoffMs)));
            const u64 delay = base / 2 + next() % (base - base / 2 + 1);
            std::this_thread::sleep_for(
                std::chrono::milliseconds(delay));
        }
        ok = httpGet(addr, target, out, error, timeout_ms);
        if (attempts_out)
            *attempts_out = attempt + 1;
        if (!ok)
            continue; // transport failure: retry
        if (out->status == 429 || out->status == 503)
            continue; // explicit back-pressure: retry
        return true;  // definite answer (2xx, 4xx, 5xx other)
    }
    // Exhausted. A parsed 429/503 still counts as "the server
    // answered" — hand it back so the caller can report the status.
    return ok;
}

} // namespace mgx::serve
