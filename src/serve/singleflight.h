/**
 * @file
 * In-process request coalescing: concurrent run(key, fn) calls with
 * equal keys execute fn exactly once — the first caller (the leader)
 * computes while the rest (followers) block on the shared entry and
 * wake with the same result. The cross-process layer of the same idea
 * is sim::TraceCacheLock; mgx_serve stacks the two, so N clients on
 * one key cost one engine run in this process and concurrent daemons
 * sharing a cache directory still generate each trace once.
 */

#ifndef MGX_SERVE_SINGLEFLIGHT_H
#define MGX_SERVE_SINGLEFLIGHT_H

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>

namespace mgx::serve {

template <typename T>
class SingleFlight
{
  public:
    /** run()'s result: the shared value, and who computed it. */
    struct Outcome
    {
        std::shared_ptr<const T> value;
        bool leader = false;
    };

    /**
     * If no call for @p key is in flight, invoke @p fn and wake every
     * follower that joined meanwhile; otherwise wait for the in-flight
     * leader. If the leader's fn throws, the exception is rethrown in
     * the leader *and* every follower. The key is retired before
     * followers wake, so a later run() with the same key computes
     * afresh — a result must not be served forever, only shared with
     * the callers that overlapped its computation.
     */
    template <typename Fn>
    Outcome
    run(const std::string &key, Fn &&fn)
    {
        std::shared_ptr<Entry> entry;
        bool leader = false;
        {
            std::lock_guard<std::mutex> lock(mu_);
            auto it = inflight_.find(key);
            if (it == inflight_.end()) {
                entry = std::make_shared<Entry>();
                inflight_.emplace(key, entry);
                leader = true;
            } else {
                entry = it->second;
                ++entry->waiters;
            }
        }

        if (!leader) {
            std::unique_lock<std::mutex> lk(entry->m);
            entry->cv.wait(lk, [&] { return entry->done; });
            if (entry->error)
                std::rethrow_exception(entry->error);
            return {entry->value, false};
        }

        std::shared_ptr<const T> value;
        std::exception_ptr error;
        try {
            value = std::make_shared<const T>(fn());
        } catch (...) {
            error = std::current_exception();
        }
        {
            // Retire the key first: run() calls arriving from here on
            // start a fresh flight instead of joining a finished one.
            std::lock_guard<std::mutex> lock(mu_);
            inflight_.erase(key);
        }
        {
            std::lock_guard<std::mutex> lk(entry->m);
            entry->value = value;
            entry->error = error;
            entry->done = true;
        }
        entry->cv.notify_all();
        if (error)
            std::rethrow_exception(error);
        return {value, true};
    }

    /**
     * run() with a deadline: like run(), but the computation happens
     * on a detached background thread and the caller waits at most
     * @p timeout for it. On timeout the returned Outcome has a null
     * value — the flight itself keeps running in the background, so
     * the engine work is never duplicated or abandoned half-done:
     * later calls with the same key join it as followers, and when it
     * completes the key retires normally (a completed-but-unclaimed
     * result is simply dropped; correctness never depended on serving
     * it). If fn throws, every waiter that did not time out rethrows.
     *
     * The background thread references this SingleFlight, so the
     * owner must drainBackground() before destroying it — the
     * destructor does so as a backstop.
     */
    template <typename Fn>
    Outcome
    runFor(const std::string &key, Fn &&fn,
           std::chrono::milliseconds timeout)
    {
        std::shared_ptr<Entry> entry;
        bool leader = false;
        {
            std::lock_guard<std::mutex> lock(mu_);
            auto it = inflight_.find(key);
            if (it == inflight_.end()) {
                entry = std::make_shared<Entry>();
                inflight_.emplace(key, entry);
                leader = true;
                ++background_;
            } else {
                entry = it->second;
                ++entry->waiters;
            }
        }

        if (leader) {
            std::thread([this, entry, key,
                         fn = std::forward<Fn>(fn)]() mutable {
                std::shared_ptr<const T> value;
                std::exception_ptr error;
                try {
                    value = std::make_shared<const T>(fn());
                } catch (...) {
                    error = std::current_exception();
                }
                {
                    // Compare-erase: only retire the key if it still
                    // maps to *this* flight (a racing future flight
                    // must not lose its registration).
                    std::lock_guard<std::mutex> lock(mu_);
                    auto it = inflight_.find(key);
                    if (it != inflight_.end() && it->second == entry)
                        inflight_.erase(it);
                }
                {
                    std::lock_guard<std::mutex> lk(entry->m);
                    entry->value = std::move(value);
                    entry->error = error;
                    entry->done = true;
                }
                entry->cv.notify_all();
                {
                    // Notify under the lock: a drainBackground()er
                    // may destroy this object the instant it sees
                    // background_ hit zero, so the notify must not
                    // touch bgcv_ after the lock is released.
                    std::lock_guard<std::mutex> lock(mu_);
                    --background_;
                    bgcv_.notify_all();
                }
            }).detach();
        }

        std::unique_lock<std::mutex> lk(entry->m);
        if (!entry->cv.wait_for(lk, timeout,
                                [&] { return entry->done; }))
            return {nullptr, leader}; // deadline hit; flight continues
        if (entry->error)
            std::rethrow_exception(entry->error);
        return {entry->value, leader};
    }

    /**
     * Block until every detached runFor() leader thread has finished.
     * Unbounded by design: an engine run cannot be cancelled, only
     * disowned, and disowning it at shutdown would tear down the
     * process under a live simulation.
     */
    void
    drainBackground()
    {
        std::unique_lock<std::mutex> lock(mu_);
        bgcv_.wait(lock, [&] { return background_ == 0; });
    }

    /** Detached leader threads still running (diagnostics/tests). */
    std::size_t
    backgroundRuns() const
    {
        std::lock_guard<std::mutex> lock(mu_);
        return background_;
    }

    ~SingleFlight() { drainBackground(); }

    /**
     * Followers currently blocked on @p key (0 when no flight is
     * open). Lets tests park a leader until every concurrent request
     * has provably joined the flight, making collapse counts exact
     * instead of racy.
     */
    std::size_t
    waiters(const std::string &key) const
    {
        std::lock_guard<std::mutex> lock(mu_);
        auto it = inflight_.find(key);
        return it == inflight_.end() ? 0 : it->second->waiters;
    }

  private:
    struct Entry
    {
        std::mutex m;
        std::condition_variable cv;
        bool done = false;
        std::shared_ptr<const T> value;
        std::exception_ptr error;
        std::size_t waiters = 0; ///< guarded by SingleFlight::mu_
    };

    mutable std::mutex mu_;
    std::condition_variable bgcv_;
    std::map<std::string, std::shared_ptr<Entry>> inflight_;
    std::size_t background_ = 0; ///< live detached leaders (see runFor)
};

} // namespace mgx::serve

#endif // MGX_SERVE_SINGLEFLIGHT_H
