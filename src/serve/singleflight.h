/**
 * @file
 * In-process request coalescing: concurrent run(key, fn) calls with
 * equal keys execute fn exactly once — the first caller (the leader)
 * computes while the rest (followers) block on the shared entry and
 * wake with the same result. The cross-process layer of the same idea
 * is sim::TraceCacheLock; mgx_serve stacks the two, so N clients on
 * one key cost one engine run in this process and concurrent daemons
 * sharing a cache directory still generate each trace once.
 */

#ifndef MGX_SERVE_SINGLEFLIGHT_H
#define MGX_SERVE_SINGLEFLIGHT_H

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>

namespace mgx::serve {

template <typename T>
class SingleFlight
{
  public:
    /** run()'s result: the shared value, and who computed it. */
    struct Outcome
    {
        std::shared_ptr<const T> value;
        bool leader = false;
    };

    /**
     * If no call for @p key is in flight, invoke @p fn and wake every
     * follower that joined meanwhile; otherwise wait for the in-flight
     * leader. If the leader's fn throws, the exception is rethrown in
     * the leader *and* every follower. The key is retired before
     * followers wake, so a later run() with the same key computes
     * afresh — a result must not be served forever, only shared with
     * the callers that overlapped its computation.
     */
    template <typename Fn>
    Outcome
    run(const std::string &key, Fn &&fn)
    {
        std::shared_ptr<Entry> entry;
        bool leader = false;
        {
            std::lock_guard<std::mutex> lock(mu_);
            auto it = inflight_.find(key);
            if (it == inflight_.end()) {
                entry = std::make_shared<Entry>();
                inflight_.emplace(key, entry);
                leader = true;
            } else {
                entry = it->second;
                ++entry->waiters;
            }
        }

        if (!leader) {
            std::unique_lock<std::mutex> lk(entry->m);
            entry->cv.wait(lk, [&] { return entry->done; });
            if (entry->error)
                std::rethrow_exception(entry->error);
            return {entry->value, false};
        }

        std::shared_ptr<const T> value;
        std::exception_ptr error;
        try {
            value = std::make_shared<const T>(fn());
        } catch (...) {
            error = std::current_exception();
        }
        {
            // Retire the key first: run() calls arriving from here on
            // start a fresh flight instead of joining a finished one.
            std::lock_guard<std::mutex> lock(mu_);
            inflight_.erase(key);
        }
        {
            std::lock_guard<std::mutex> lk(entry->m);
            entry->value = value;
            entry->error = error;
            entry->done = true;
        }
        entry->cv.notify_all();
        if (error)
            std::rethrow_exception(error);
        return {value, true};
    }

    /**
     * Followers currently blocked on @p key (0 when no flight is
     * open). Lets tests park a leader until every concurrent request
     * has provably joined the flight, making collapse counts exact
     * instead of racy.
     */
    std::size_t
    waiters(const std::string &key) const
    {
        std::lock_guard<std::mutex> lock(mu_);
        auto it = inflight_.find(key);
        return it == inflight_.end() ? 0 : it->second->waiters;
    }

  private:
    struct Entry
    {
        std::mutex m;
        std::condition_variable cv;
        bool done = false;
        std::shared_ptr<const T> value;
        std::exception_ptr error;
        std::size_t waiters = 0; ///< guarded by SingleFlight::mu_
    };

    mutable std::mutex mu_;
    std::map<std::string, std::shared_ptr<Entry>> inflight_;
};

} // namespace mgx::serve

#endif // MGX_SERVE_SINGLEFLIGHT_H
