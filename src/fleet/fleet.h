/**
 * @file
 * The fleet facade: one object that owns the Supervisor (N forked
 * mgx_serve workers on unix sockets, shared trace cache) and the
 * Proxy (consistent-hash routing + failover front end), wired
 * together. mgx_fleet and bench_serve_load --fleet drive this.
 */

#ifndef MGX_FLEET_FLEET_H
#define MGX_FLEET_FLEET_H

#include <memory>

#include "proxy.h"
#include "supervisor.h"

namespace mgx::fleet {

struct FleetOptions
{
    SupervisorOptions supervisor;
    ProxyOptions proxy;
    /// How long start() waits for the first worker to answer
    /// /healthz before serving anyway (workers may still be warming).
    int readyTimeoutMs = 10000;
};

class Fleet
{
  public:
    explicit Fleet(FleetOptions opts);
    ~Fleet();

    Fleet(const Fleet &) = delete;
    Fleet &operator=(const Fleet &) = delete;

    /** Spawn the workers, wait for first readiness, open the front
     *  door. */
    void start();

    /** Drain the proxy, then stop the workers. Idempotent. */
    void shutdown();

    /** True once a /shutdown request (or shutdown()) began a drain. */
    bool stopping() const { return proxy_->stopping(); }

    Supervisor &supervisor() { return *supervisor_; }
    Proxy &proxy() { return *proxy_; }

  private:
    FleetOptions opts_;
    std::unique_ptr<Supervisor> supervisor_;
    std::unique_ptr<Proxy> proxy_;
    bool started_ = false;
    bool shutdown_ = false;
};

} // namespace mgx::fleet

#endif // MGX_FLEET_FLEET_H
