/**
 * @file
 * Worker supervision for the fleet: fork+exec N mgx_serve processes
 * (one unix socket each, one shared trace-cache dir), detect death
 * with waitpid, probe liveness over /healthz, restart with capped
 * exponential backoff, and take a flapping worker out of rotation
 * behind a cool-off (the flap breaker).
 *
 * Per-worker state machine (see docs/ARCHITECTURE.md):
 *
 *             spawn              first probe OK
 *   Starting ------------------------------------> Up
 *      |  ^                                        |
 *      |  | backoff elapsed                        | waitpid reaped
 *      v  |                                        v
 *    (respawn) <--- backoff = base << rapidDeaths --- Down
 *                 \
 *                  \ rapidDeaths >= flapThreshold
 *                   v
 *                 Broken --- coolOff elapsed ---> (respawn, probation)
 *
 * A death within flapWindowMs of the last spawn counts as "rapid";
 * surviving the window resets the count. Because every worker shares
 * the trace cache dir (TraceCacheLock makes that safe, and flock
 * auto-releases when a process dies), a worker's in-memory state is
 * disposable: killing and restarting one loses nothing but warmth.
 */

#ifndef MGX_FLEET_SUPERVISOR_H
#define MGX_FLEET_SUPERVISOR_H

#include <atomic>
#include <chrono>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <sys/types.h>

#include "backend.h"

namespace mgx::fleet {

enum class WorkerState { Starting, Up, Down, Broken };

const char *workerStateName(WorkerState s);

struct SupervisorOptions
{
    int workers = 3;
    std::string socketDir;     ///< worker sockets live here
    std::string traceCacheDir; ///< shared; "" = workers run uncached
    u64 traceCacheMaxBytes = 0;
    u32 workerThreads = 2;       ///< --workers for each mgx_serve
    std::size_t workerQueue = 16; ///< --queue for each mgx_serve
    int workerDeadlineMs = 0;    ///< --deadline-ms for each mgx_serve

    int probeIntervalMs = 200;  ///< /healthz cadence per worker
    int probeTimeoutMs = 1000;
    int probeFailThreshold = 2; ///< consecutive misses -> out of rotation

    int restartBackoffMs = 100;    ///< base; doubles per rapid death
    int restartBackoffMaxMs = 5000;
    int flapWindowMs = 10000; ///< death sooner than this is "rapid"
    int flapThreshold = 5;    ///< rapid deaths before Broken
    int coolOffMs = 10000;    ///< Broken probation before respawn

    std::string serveBinary; ///< "" = locate next to this executable
};

struct WorkerStatus
{
    int id = 0;
    std::string name; ///< ring node name, "w<id>"
    std::string socketPath;
    pid_t pid = -1; ///< -1 while not running
    WorkerState state = WorkerState::Starting;
    bool inRotation = false;
    bool cacheDegraded = false; ///< from the last /healthz body
    u64 restarts = 0;    ///< respawns after the initial spawn
    u64 rapidDeaths = 0; ///< current flap streak
    u64 probeFailures = 0;
};

/** Injectable spawner (tests): return the child pid, or -1. */
using SpawnFn =
    std::function<pid_t(int workerId, const std::string &socketPath)>;

class Supervisor : public BackendDirectory
{
  public:
    explicit Supervisor(SupervisorOptions opts);
    ~Supervisor() override;

    Supervisor(const Supervisor &) = delete;
    Supervisor &operator=(const Supervisor &) = delete;

    /** Spawn every worker and the monitor thread. */
    void start();

    /** True once at least one worker answers /healthz; waits up to
     *  @p timeout_ms. Call between start() and serving traffic. */
    bool waitUntilReady(int timeout_ms);

    /** SIGTERM all workers, reap them (SIGKILL stragglers after
     *  @p grace_ms), join the monitor. Idempotent. */
    void shutdown(int grace_ms = 3000);

    // BackendDirectory
    std::vector<std::string> backendNames() const override;
    serve::SocketAddress address(
        const std::string &name) const override;
    bool inRotation(const std::string &name) const override;
    bool cacheDegraded(const std::string &name) const override;
    std::string statusJson() const override;

    std::vector<WorkerStatus> status() const;

    /** Total respawns across all workers (chaos-test observable). */
    u64 restartCount() const;

    /** Substitute the fork+exec spawner (tests). Call before start. */
    void setSpawnFnForTest(SpawnFn fn) { spawn_ = std::move(fn); }

  private:
    using Clock = std::chrono::steady_clock;

    struct Worker
    {
        int id = 0;
        std::string name;
        std::string socketPath;
        pid_t pid = -1;
        WorkerState state = WorkerState::Starting;
        bool healthy = false; ///< passing probes (=> in rotation)
        bool cacheDegraded = false; ///< last /healthz body said so
        u64 restarts = 0;
        u64 rapidDeaths = 0;
        u64 probeFailures = 0;   ///< lifetime count (stats)
        int consecProbeMisses = 0;
        Clock::time_point lastSpawn{};
        Clock::time_point nextRestartAt{};
        Clock::time_point nextProbeAt{};
    };

    void monitorLoop();
    /** Fork+exec one worker; updates @p w under mu_. */
    void spawnLocked(Worker &w);
    void reapLocked(Worker &w, Clock::time_point now);
    void probeOne(int index);

    SupervisorOptions opts_;
    SpawnFn spawn_; ///< defaults to fork+exec of mgx_serve
    std::string binary_;

    mutable std::mutex mu_;
    std::vector<Worker> workers_;
    std::atomic<u64> restartCount_{0};

    std::thread monitor_;
    std::atomic<bool> stop_{false};
    bool started_ = false;
    bool shutdown_ = false;
};

/**
 * Find the mgx_serve binary near the running executable: same
 * directory first, then ../examples (tests and benches live in
 * sibling build dirs). Returns "" when not found.
 */
std::string locateServeBinary();

} // namespace mgx::fleet

#endif // MGX_FLEET_SUPERVISOR_H
