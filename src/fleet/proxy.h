/**
 * @file
 * The fleet front end: one listening socket (unix or TCP loopback)
 * that routes /run requests across the worker fleet by consistent
 * hash of the request's cell set — the same cells always land on the
 * same worker, so that worker's SingleFlight coalesces concurrent
 * identical requests and its warm caches stay warm.
 *
 * Robustness model: the proxy buffers a backend's entire response
 * before relaying one byte to the client, so a worker SIGKILLed
 * mid-response costs a failover, never a truncated client read. On
 * any transport failure (connect refused, reset, deadline) it walks
 * the hash ring's failover order — in-rotation workers first, then
 * everyone (probe state lags reality) — across several passes with a
 * short pause, before finally answering 503. Optional hedging
 * (hedgeMs > 0) launches a second attempt at the next worker when
 * the owner is slow, taking whichever finishes first.
 *
 * Endpoints: /run (routed), /stats (proxy counters + per-worker
 * supervision state + live worker stats), /healthz (ok while at
 * least one worker is in rotation), /shutdown (via callback).
 */

#ifndef MGX_FLEET_PROXY_H
#define MGX_FLEET_PROXY_H

#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "backend.h"
#include "hash_ring.h"
#include "serve/client.h"

namespace mgx::fleet {

struct ProxyOptions
{
    serve::SocketAddress listen;
    u32 workers = 4;                    ///< proxy handler threads
    std::size_t admissionCapacity = 32; ///< queued conns before 429
    int ioTimeoutMs = 30000;      ///< client-side read/write timeout
    int backendTimeoutMs = 120000; ///< one backend attempt's budget
    int failoverPasses = 3;  ///< sweeps over the ring before 503
    int failoverPauseMs = 100; ///< pause between sweeps
    int hedgeMs = 0; ///< >0: hedge /run to the next worker when slow
    bool keepAlive = true;     ///< honor client Connection: keep-alive
    int keepAliveIdleMs = 2000;
    u32 ringVnodes = 64;
};

/** Relaxed counters mirrored into /stats (mgx-fleetstats-v1). */
struct ProxyMetrics
{
    std::atomic<u64> accepted{0};
    std::atomic<u64> rejected{0};
    std::atomic<u64> served{0};
    std::atomic<u64> failed{0};
    std::atomic<u64> badRequests{0};
    std::atomic<u64> routed{0};       ///< /run requests routed
    std::atomic<u64> failovers{0};    ///< attempts beyond the first
    std::atomic<u64> backendErrors{0}; ///< failed backend attempts
    std::atomic<u64> partialResponses{0}; ///< backend died mid-body
    std::atomic<u64> noBackend{0};    ///< 503: every attempt failed
    std::atomic<u64> hedgesLaunched{0};
    std::atomic<u64> hedgeWins{0};    ///< hedge finished first
    std::atomic<u64> keepAliveReused{0};
    std::atomic<u64> backendReused{0}; ///< pooled backend conn reused
};

class Proxy
{
  public:
    Proxy(ProxyOptions opts, BackendDirectory *directory);
    ~Proxy();

    Proxy(const Proxy &) = delete;
    Proxy &operator=(const Proxy &) = delete;

    void start();
    void requestShutdown();
    void shutdown();
    bool stopping() const;

    u16 port() const { return boundPort_; }
    std::string addressDescription() const;

    /** Invoked when a client GETs /shutdown (mgx_fleet hooks the
     *  whole-fleet drain here). */
    void setShutdownHook(std::function<void()> hook)
    {
        shutdownHook_ = std::move(hook);
    }

    const ProxyMetrics &metrics() const { return metrics_; }
    std::string statsJson() const;

    /** Routing key for a /run target (exposed for tests): the
     *  request's cell-defining query values, normalized. */
    static std::string routingKey(const serve::HttpRequest &req);

  private:
    struct BackendAttempt
    {
        bool ok = false;
        serve::HttpResponse response;
        std::string error;
        serve::GetFailure failure = serve::GetFailure::None;
    };

    void acceptLoop();
    void workerLoop();
    void handleConnection(int fd);
    bool serveOneRequest(int fd, std::string *carry, bool first);
    std::string handleRequest(const serve::HttpRequest &req,
                              int *status_out,
                              std::string *content_type);
    std::string handleRun(const serve::HttpRequest &req,
                          int *status_out);

    /** One buffered request to one backend over a pooled keep-alive
     *  connection (with the fleet.backend.* failpoints applied). */
    BackendAttempt fetchFromBackend(const std::string &name,
                                    const std::string &target);
    BackendAttempt fetchWithHedge(
        const std::vector<std::string> &order, std::size_t primary,
        const std::string &target);

    /** Failover order for @p key: ring order, in-rotation first. */
    std::vector<std::string> candidateOrder(
        const std::string &key) const;

    std::unique_ptr<serve::ClientConnection> checkoutConnection(
        const std::string &name);
    void checkinConnection(const std::string &name,
                           std::unique_ptr<serve::ClientConnection>);

    void sendAll(int fd, const std::string &data) const;

    ProxyOptions opts_;
    BackendDirectory *directory_;
    HashRing ring_;
    ProxyMetrics metrics_;

    int listenFd_ = -1;
    u16 boundPort_ = 0;
    bool started_ = false;
    bool joined_ = false;

    std::thread acceptor_;
    std::vector<std::thread> workers_;

    mutable std::mutex qmu_;
    std::condition_variable qcv_;
    std::deque<int> pending_;
    bool draining_ = false;

    std::mutex poolmu_;
    /// name -> idle pooled connections (small, FDs are bounded by
    /// pool size x workers).
    std::vector<std::pair<
        std::string,
        std::vector<std::unique_ptr<serve::ClientConnection>>>>
        pool_;

    /// Detached hedge threads still running (shutdown waits on it —
    /// they capture `this`).
    std::atomic<u64> bgOps_{0};

    std::function<void()> shutdownHook_;
};

} // namespace mgx::fleet

#endif // MGX_FLEET_PROXY_H
