#include "hash_ring.h"

namespace mgx::fleet {
namespace {

/** splitmix64 finisher: spreads FNV's weak low bits over the ring. */
u64
mix(u64 x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

} // namespace

u64
HashRing::hash(const std::string &s)
{
    u64 h = 14695981039346656037ull; // FNV-1a
    for (unsigned char c : s) {
        h ^= c;
        h *= 1099511628211ull;
    }
    return mix(h);
}

HashRing::HashRing(u32 vnodes)
    : vnodes_(vnodes == 0 ? 1 : vnodes)
{
}

void
HashRing::add(const std::string &node)
{
    if (!nodes_.insert(node).second)
        return;
    for (u32 i = 0; i < vnodes_; ++i) {
        u64 point = hash(node + "#" + std::to_string(i));
        // A collision between two nodes' points is astronomically
        // unlikely but would silently drop a vnode; probe forward.
        while (ring_.count(point))
            ++point;
        ring_.emplace(point, node);
    }
}

void
HashRing::remove(const std::string &node)
{
    if (nodes_.erase(node) == 0)
        return;
    for (auto it = ring_.begin(); it != ring_.end();) {
        if (it->second == node)
            it = ring_.erase(it);
        else
            ++it;
    }
}

bool
HashRing::contains(const std::string &node) const
{
    return nodes_.count(node) != 0;
}

std::string
HashRing::owner(const std::string &key) const
{
    if (ring_.empty())
        return "";
    auto it = ring_.lower_bound(hash(key));
    if (it == ring_.end())
        it = ring_.begin(); // wrap: the ring is circular
    return it->second;
}

std::vector<std::string>
HashRing::route(const std::string &key) const
{
    std::vector<std::string> order;
    if (ring_.empty())
        return order;
    order.reserve(nodes_.size());
    std::set<std::string> seen;
    auto it = ring_.lower_bound(hash(key));
    for (std::size_t steps = 0;
         steps < ring_.size() && order.size() < nodes_.size();
         ++steps, ++it) {
        if (it == ring_.end())
            it = ring_.begin();
        if (seen.insert(it->second).second)
            order.push_back(it->second);
    }
    return order;
}

} // namespace mgx::fleet
