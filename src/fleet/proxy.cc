#include "proxy.h"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <chrono>
#include <cstring>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "common/failpoint.h"
#include "common/log.h"

namespace mgx::fleet {
namespace {

// The proxy's backend boundaries are failpoints so chaos runs can
// attack the fleet layer itself, not just the workers under it.
failpoint::Point &fpBackendConnect =
    failpoint::Point::get("fleet.backend.connect");
failpoint::Point &fpBackendReset =
    failpoint::Point::get("fleet.backend.reset");

std::string
jsonError(const std::string &message)
{
    std::string escaped;
    for (char c : message) {
        if (c == '"' || c == '\\')
            escaped += '\\';
        escaped += c;
    }
    return "{\"error\": \"" + escaped + "\"}\n";
}

std::string
trimmed(std::string s)
{
    while (!s.empty() &&
           (s.back() == '\n' || s.back() == '\r' || s.back() == ' '))
        s.pop_back();
    return s;
}

void
setSocketTimeout(int fd, int ms)
{
    timeval tv{};
    tv.tv_sec = ms / 1000;
    tv.tv_usec = (ms % 1000) * 1000;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
    ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);
}

} // namespace

Proxy::Proxy(ProxyOptions opts, BackendDirectory *directory)
    : opts_(std::move(opts)), directory_(directory),
      ring_(opts_.ringVnodes)
{
    if (opts_.workers == 0)
        opts_.workers = 1;
    if (opts_.admissionCapacity == 0)
        opts_.admissionCapacity = 1;
}

Proxy::~Proxy()
{
    shutdown();
}

std::string
Proxy::addressDescription() const
{
    if (!opts_.listen.unixPath.empty())
        return "unix:" + opts_.listen.unixPath;
    return opts_.listen.host + ":" + std::to_string(boundPort_);
}

void
Proxy::start()
{
    if (started_)
        return;

    for (const auto &name : directory_->backendNames())
        ring_.add(name);

    if (!opts_.listen.unixPath.empty()) {
        listenFd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
        if (listenFd_ < 0)
            fatal("mgx_fleet: socket: %s", std::strerror(errno));
        sockaddr_un addr{};
        addr.sun_family = AF_UNIX;
        if (opts_.listen.unixPath.size() >= sizeof addr.sun_path)
            fatal("mgx_fleet: unix path too long: '%s'",
                  opts_.listen.unixPath.c_str());
        std::strncpy(addr.sun_path, opts_.listen.unixPath.c_str(),
                     sizeof addr.sun_path - 1);
        ::unlink(opts_.listen.unixPath.c_str());
        if (::bind(listenFd_, reinterpret_cast<sockaddr *>(&addr),
                   sizeof addr) != 0)
            fatal("mgx_fleet: bind '%s': %s",
                  opts_.listen.unixPath.c_str(),
                  std::strerror(errno));
    } else {
        listenFd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
        if (listenFd_ < 0)
            fatal("mgx_fleet: socket: %s", std::strerror(errno));
        const int one = 1;
        ::setsockopt(listenFd_, SOL_SOCKET, SO_REUSEADDR, &one,
                     sizeof one);
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_port = htons(opts_.listen.port);
        if (::inet_pton(AF_INET, opts_.listen.host.c_str(),
                        &addr.sin_addr) != 1)
            fatal("mgx_fleet: bad listen host '%s'",
                  opts_.listen.host.c_str());
        if (::bind(listenFd_, reinterpret_cast<sockaddr *>(&addr),
                   sizeof addr) != 0)
            fatal("mgx_fleet: bind %s:%u: %s",
                  opts_.listen.host.c_str(), opts_.listen.port,
                  std::strerror(errno));
        sockaddr_in bound{};
        socklen_t len = sizeof bound;
        if (::getsockname(listenFd_,
                          reinterpret_cast<sockaddr *>(&bound),
                          &len) == 0)
            boundPort_ = ntohs(bound.sin_port);
    }

    if (::listen(listenFd_, 64) != 0)
        fatal("mgx_fleet: listen: %s", std::strerror(errno));

    started_ = true;
    acceptor_ = std::thread([this] { acceptLoop(); });
    for (u32 i = 0; i < opts_.workers; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

void
Proxy::requestShutdown()
{
    {
        std::lock_guard<std::mutex> lock(qmu_);
        if (draining_)
            return;
        draining_ = true;
    }
    qcv_.notify_all();
}

void
Proxy::shutdown()
{
    if (!started_ || joined_)
        return;
    requestShutdown();
    if (acceptor_.joinable())
        acceptor_.join();
    for (auto &w : workers_)
        if (w.joinable())
            w.join();
    workers_.clear();
    // Hedge losers may still be in flight; they reference this
    // object, so outlive them before tearing anything down.
    while (bgOps_.load(std::memory_order_relaxed) != 0)
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    if (listenFd_ >= 0) {
        ::close(listenFd_);
        listenFd_ = -1;
    }
    if (!opts_.listen.unixPath.empty())
        ::unlink(opts_.listen.unixPath.c_str());
    {
        std::lock_guard<std::mutex> lock(poolmu_);
        pool_.clear(); // closes every pooled backend connection
    }
    joined_ = true;
}

bool
Proxy::stopping() const
{
    std::lock_guard<std::mutex> lock(qmu_);
    return draining_;
}

void
Proxy::acceptLoop()
{
    while (true) {
        pollfd pfd{listenFd_, POLLIN, 0};
        const int ready = ::poll(&pfd, 1, 100);
        {
            std::lock_guard<std::mutex> lock(qmu_);
            if (draining_)
                return;
        }
        if (ready <= 0)
            continue;
        const int fd =
            ::accept4(listenFd_, nullptr, nullptr, SOCK_CLOEXEC);
        if (fd < 0)
            continue;
        metrics_.accepted.fetch_add(1, std::memory_order_relaxed);
        setSocketTimeout(fd, opts_.ioTimeoutMs);

        int turn_away = 0;
        {
            std::lock_guard<std::mutex> lock(qmu_);
            if (draining_) {
                turn_away = 503;
            } else if (pending_.size() >= opts_.admissionCapacity) {
                turn_away = 429;
            } else {
                pending_.push_back(fd);
            }
        }
        if (turn_away == 0) {
            qcv_.notify_one();
            continue;
        }
        if (turn_away == 429)
            metrics_.rejected.fetch_add(1,
                                        std::memory_order_relaxed);
        sendAll(fd, serve::httpResponse(
                        turn_away, "application/json",
                        jsonError(turn_away == 429
                                      ? "proxy admission queue full, "
                                        "retry"
                                      : "shutting down")));
        ::close(fd);
    }
}

void
Proxy::workerLoop()
{
    while (true) {
        int fd = -1;
        {
            std::unique_lock<std::mutex> lock(qmu_);
            qcv_.wait(lock, [this] {
                return !pending_.empty() || draining_;
            });
            if (pending_.empty())
                return;
            fd = pending_.front();
            pending_.pop_front();
        }
        handleConnection(fd);
    }
}

void
Proxy::handleConnection(int fd)
{
    std::string carry;
    bool first = true;
    while (serveOneRequest(fd, &carry, first))
        first = false;
    ::close(fd);
}

bool
Proxy::serveOneRequest(int fd, std::string *carry, bool first)
{
    serve::HttpRequestParser parser;
    if (!carry->empty()) {
        parser.feed(carry->data(), carry->size());
        carry->clear();
    }

    if (!first &&
        parser.status() ==
            serve::HttpRequestParser::Status::Incomplete &&
        parser.bytesFed() == 0) {
        int waited = 0;
        bool readable = false;
        while (waited < opts_.keepAliveIdleMs) {
            {
                std::lock_guard<std::mutex> lock(qmu_);
                if (draining_ || !pending_.empty())
                    return false;
            }
            const int slice =
                std::min(50, opts_.keepAliveIdleMs - waited);
            pollfd pfd{fd, POLLIN, 0};
            const int r = ::poll(&pfd, 1, slice);
            if (r > 0) {
                readable = true;
                break;
            }
            if (r < 0 && errno != EINTR)
                return false;
            waited += slice;
        }
        if (!readable)
            return false;
    }

    char buf[4096];
    while (parser.status() ==
           serve::HttpRequestParser::Status::Incomplete) {
        const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
        if (n < 0 && errno == EINTR)
            continue;
        if (n <= 0)
            break;
        parser.feed(buf, static_cast<std::size_t>(n));
    }

    if (parser.status() !=
        serve::HttpRequestParser::Status::Complete) {
        if (parser.bytesFed() == 0)
            return false; // clean close
        metrics_.badRequests.fetch_add(1,
                                       std::memory_order_relaxed);
        sendAll(fd,
                serve::httpResponse(
                    parser.tooLarge() ? 431 : 400,
                    "application/json",
                    jsonError(parser.error().empty()
                                  ? "incomplete request"
                                  : parser.error())));
        return false;
    }

    if (!first)
        metrics_.keepAliveReused.fetch_add(
            1, std::memory_order_relaxed);

    int status = 500;
    std::string content_type = "application/json";
    std::string body;
    try {
        body = handleRequest(parser.request(), &status,
                             &content_type);
    } catch (const std::exception &e) {
        status = 500;
        body = jsonError(e.what());
    }
    if (status < 400)
        metrics_.served.fetch_add(1, std::memory_order_relaxed);
    else if (status >= 500)
        metrics_.failed.fetch_add(1, std::memory_order_relaxed);
    else
        metrics_.badRequests.fetch_add(1,
                                       std::memory_order_relaxed);

    bool keep = false;
    if (opts_.keepAlive && !stopping()) {
        if (auto conn = parser.request().header("connection")) {
            std::string v = *conn;
            std::transform(v.begin(), v.end(), v.begin(),
                           [](unsigned char c) {
                               return static_cast<char>(
                                   std::tolower(c));
                           });
            keep = v == "keep-alive";
        }
    }
    sendAll(fd, serve::httpResponse(status, content_type, body, {},
                                    keep));
    if (keep)
        *carry = parser.surplus();
    return keep;
}

std::string
Proxy::routingKey(const serve::HttpRequest &req)
{
    // The cell set, normalized: sorted workloads plus the platform /
    // scheme axes. Requests that resolve to the same cells hash to
    // the same worker regardless of parameter order, which is what
    // keeps one cell's singleflight on one worker.
    std::vector<std::string> workloads =
        req.queryValues("workload");
    std::sort(workloads.begin(), workloads.end());
    std::string key = "w:";
    for (const auto &w : workloads) {
        key += w;
        key += ';';
    }
    key += "|p:" + req.queryValue("platforms").value_or("");
    key += "|s:" + req.queryValue("schemes").value_or("");
    return key;
}

std::vector<std::string>
Proxy::candidateOrder(const std::string &key) const
{
    std::vector<std::string> order = ring_.route(key);
    // Three preference classes, stable within each (ring order is
    // preserved so ownership stays deterministic):
    //   0  in rotation, cache healthy
    //   1  in rotation, cache degraded — correct but re-generates
    //      traces, so only take it when every healthy peer is gone
    //   2  out of rotation — last resort; probe state lags reality,
    //      and a "down" worker that is actually up beats a 503.
    // Snapshot each rank once — the directory is concurrently
    // updated by probes, and a rank that changed mid-sort would
    // break the comparator's strict weak ordering.
    std::vector<std::pair<int, std::string>> ranked;
    ranked.reserve(order.size());
    for (auto &name : order) {
        int rank = 2;
        if (directory_->inRotation(name))
            rank = directory_->cacheDegraded(name) ? 1 : 0;
        ranked.emplace_back(rank, std::move(name));
    }
    std::stable_sort(ranked.begin(), ranked.end(),
                     [](const auto &a, const auto &b) {
                         return a.first < b.first;
                     });
    for (std::size_t i = 0; i < ranked.size(); ++i)
        order[i] = std::move(ranked[i].second);
    return order;
}

std::unique_ptr<serve::ClientConnection>
Proxy::checkoutConnection(const std::string &name)
{
    {
        std::lock_guard<std::mutex> lock(poolmu_);
        for (auto &[n, conns] : pool_) {
            if (n != name || conns.empty())
                continue;
            auto conn = std::move(conns.back());
            conns.pop_back();
            return conn;
        }
    }
    return std::make_unique<serve::ClientConnection>(
        directory_->address(name));
}

void
Proxy::checkinConnection(
    const std::string &name,
    std::unique_ptr<serve::ClientConnection> conn)
{
    if (!conn || !conn->connected())
        return;
    std::lock_guard<std::mutex> lock(poolmu_);
    for (auto &[n, conns] : pool_) {
        if (n != name)
            continue;
        if (conns.size() < 2) // small pool bounds idle backend FDs
            conns.push_back(std::move(conn));
        return;
    }
    pool_.emplace_back(name, decltype(pool_)::value_type::second_type{});
    pool_.back().second.push_back(std::move(conn));
}

Proxy::BackendAttempt
Proxy::fetchFromBackend(const std::string &name,
                        const std::string &target)
{
    BackendAttempt a;
    if (fpBackendConnect.fire()) {
        // Simulated connect-refused at the fleet boundary.
        a.failure = serve::GetFailure::Connect;
        a.error = "injected backend connect failure (" + name + ")";
        return a;
    }
    auto conn = checkoutConnection(name);
    a.ok = conn->get(target, &a.response, &a.error,
                     opts_.backendTimeoutMs, &a.failure);
    if (a.ok && fpBackendReset.fire()) {
        // Simulated worker death after it sent part of the body: the
        // full response is discarded — the client must never see a
        // byte of it — and the attempt reports a partial response.
        a = BackendAttempt{};
        a.failure = serve::GetFailure::PartialResponse;
        a.error =
            "injected backend mid-response reset (" + name + ")";
        conn->close();
        return a;
    }
    if (a.ok) {
        if (conn->lastReused())
            metrics_.backendReused.fetch_add(
                1, std::memory_order_relaxed);
        checkinConnection(name, std::move(conn));
    }
    return a;
}

Proxy::BackendAttempt
Proxy::fetchWithHedge(const std::vector<std::string> &order,
                      std::size_t primary, const std::string &target)
{
    struct State
    {
        std::mutex mu;
        std::condition_variable cv;
        int outstanding = 0;
        bool haveOk = false;
        bool okFromHedge = false;
        BackendAttempt ok;
        BackendAttempt lastFail;
    };
    auto st = std::make_shared<State>();

    const auto launch = [this, st, target](const std::string &name,
                                           bool is_hedge) {
        {
            std::lock_guard<std::mutex> lock(st->mu);
            ++st->outstanding;
        }
        bgOps_.fetch_add(1, std::memory_order_relaxed);
        std::thread([this, st, target, name, is_hedge] {
            BackendAttempt a = fetchFromBackend(name, target);
            {
                std::lock_guard<std::mutex> lock(st->mu);
                --st->outstanding;
                if (a.ok && !st->haveOk) {
                    st->haveOk = true;
                    st->okFromHedge = is_hedge;
                    st->ok = std::move(a);
                } else if (!a.ok) {
                    st->lastFail = std::move(a);
                }
            }
            st->cv.notify_all();
            bgOps_.fetch_sub(1, std::memory_order_relaxed);
        }).detach();
    };

    launch(order[primary], false);
    std::unique_lock<std::mutex> lock(st->mu);
    st->cv.wait_for(lock, std::chrono::milliseconds(opts_.hedgeMs),
                    [&] {
                        return st->haveOk || st->outstanding == 0;
                    });
    if (!st->haveOk && st->outstanding > 0 &&
        primary + 1 < order.size()) {
        // The owner is slow; race the next candidate against it.
        metrics_.hedgesLaunched.fetch_add(1,
                                          std::memory_order_relaxed);
        lock.unlock();
        launch(order[primary + 1], true);
        lock.lock();
    }
    st->cv.wait(lock, [&] {
        return st->haveOk || st->outstanding == 0;
    });
    if (st->haveOk) {
        if (st->okFromHedge)
            metrics_.hedgeWins.fetch_add(1,
                                         std::memory_order_relaxed);
        return st->ok;
    }
    return st->lastFail;
}

std::string
Proxy::handleRun(const serve::HttpRequest &req, int *status_out)
{
    metrics_.routed.fetch_add(1, std::memory_order_relaxed);
    const std::string key = routingKey(req);
    const std::vector<std::string> order = candidateOrder(key);
    if (order.empty()) {
        metrics_.noBackend.fetch_add(1, std::memory_order_relaxed);
        *status_out = 503;
        return jsonError("no workers configured");
    }

    std::string last_error = "no attempt made";
    int attempts = 0;
    for (int pass = 0; pass < std::max(1, opts_.failoverPasses);
         ++pass) {
        if (pass > 0)
            std::this_thread::sleep_for(
                std::chrono::milliseconds(opts_.failoverPauseMs));
        for (std::size_t i = 0; i < order.size(); ++i) {
            if (attempts > 0)
                metrics_.failovers.fetch_add(
                    1, std::memory_order_relaxed);
            ++attempts;
            BackendAttempt a =
                (opts_.hedgeMs > 0 && attempts == 1 &&
                 order.size() > 1)
                    ? fetchWithHedge(order, i, req.target)
                    : fetchFromBackend(order[i], req.target);
            if (a.ok && a.response.status == 503) {
                // The worker is draining (or its deadline tripped):
                // it answered, but another worker can do better.
                a.ok = false;
                a.error = "backend answered 503";
            }
            if (a.ok) {
                *status_out = a.response.status;
                return a.response.body;
            }
            metrics_.backendErrors.fetch_add(
                1, std::memory_order_relaxed);
            if (a.failure == serve::GetFailure::PartialResponse)
                metrics_.partialResponses.fetch_add(
                    1, std::memory_order_relaxed);
            last_error = a.error;
        }
    }
    metrics_.noBackend.fetch_add(1, std::memory_order_relaxed);
    *status_out = 503;
    return jsonError("no worker could serve the request (last: " +
                     last_error + "); retry");
}

std::string
Proxy::statsJson() const
{
    const auto L = [](const std::atomic<u64> &a) {
        return std::to_string(a.load(std::memory_order_relaxed));
    };
    std::string out = "{\n  \"schema\": \"mgx-fleetstats-v1\",\n";
    out += "  \"proxy\": {";
    out += "\"accepted\": " + L(metrics_.accepted);
    out += ", \"rejected\": " + L(metrics_.rejected);
    out += ", \"served\": " + L(metrics_.served);
    out += ", \"failed\": " + L(metrics_.failed);
    out += ", \"badRequests\": " + L(metrics_.badRequests);
    out += ", \"routed\": " + L(metrics_.routed);
    out += ", \"failovers\": " + L(metrics_.failovers);
    out += ", \"backendErrors\": " + L(metrics_.backendErrors);
    out += ", \"partialResponses\": " + L(metrics_.partialResponses);
    out += ", \"noBackend\": " + L(metrics_.noBackend);
    out += ", \"hedgesLaunched\": " + L(metrics_.hedgesLaunched);
    out += ", \"hedgeWins\": " + L(metrics_.hedgeWins);
    out += ", \"keepAliveReused\": " + L(metrics_.keepAliveReused);
    out += ", \"backendReused\": " + L(metrics_.backendReused);
    out += "},\n";
    out += "  \"workers\": " + directory_->statusJson() + ",\n";

    // Live per-worker counters, best effort: a worker that cannot
    // answer right now reports null rather than failing the whole
    // document.
    out += "  \"workerStats\": {";
    bool first = true;
    for (const auto &name : directory_->backendNames()) {
        if (!first)
            out += ", ";
        first = false;
        out += "\"" + name + "\": ";
        serve::HttpResponse resp;
        std::string error;
        if (directory_->inRotation(name) &&
            serve::httpGet(directory_->address(name), "/stats",
                           &resp, &error, 2000) &&
            resp.status == 200)
            out += trimmed(resp.body);
        else
            out += "null";
    }
    out += "}\n}\n";
    return out;
}

std::string
Proxy::handleRequest(const serve::HttpRequest &req, int *status_out,
                     std::string *content_type)
{
    *content_type = "application/json";
    if (req.method != "GET") {
        *status_out = 405;
        return jsonError("only GET is supported");
    }
    if (req.path == "/run")
        return handleRun(req, status_out);
    if (req.path == "/stats") {
        *status_out = 200;
        return statsJson();
    }
    if (req.path == "/healthz") {
        const auto names = directory_->backendNames();
        std::size_t in_rotation = 0;
        for (const auto &n : names)
            if (directory_->inRotation(n))
                ++in_rotation;
        *status_out = 200;
        std::string body = "{\"ok\": ";
        body += in_rotation > 0 ? "true" : "false";
        body += ", \"workers\": " + std::to_string(names.size());
        body +=
            ", \"inRotation\": " + std::to_string(in_rotation);
        body += ", \"draining\": ";
        body += stopping() ? "true" : "false";
        body += "}\n";
        return body;
    }
    if (req.path == "/shutdown") {
        *status_out = 200;
        if (shutdownHook_)
            shutdownHook_();
        requestShutdown();
        return "{\"shutdown\": true}\n";
    }
    *status_out = 404;
    return jsonError("no such endpoint: " + req.path);
}

void
Proxy::sendAll(int fd, const std::string &data) const
{
    std::size_t sent = 0;
    while (sent < data.size()) {
        const ssize_t n = ::send(fd, data.data() + sent,
                                 data.size() - sent, MSG_NOSIGNAL);
        if (n <= 0) {
            if (n < 0 && errno == EINTR)
                continue;
            return;
        }
        sent += static_cast<std::size_t>(n);
    }
}

} // namespace mgx::fleet
