/**
 * @file
 * Consistent-hash ring for fleet request routing. Each node is
 * projected onto the ring at `vnodes` pseudo-random points; a key is
 * owned by the first node point clockwise from the key's hash. The
 * property the fleet leans on: adding or removing one node out of N
 * moves only ~1/N of the keyspace, so worker churn (a crash, a
 * restart, a scale-up) barely disturbs which worker owns which
 * cell's singleflight and warm state.
 *
 * route() additionally yields the full failover order — every
 * distinct node in ring order starting at the key — so the proxy can
 * walk "owner, then next, then next" deterministically when the
 * owner is down.
 */

#ifndef MGX_FLEET_HASH_RING_H
#define MGX_FLEET_HASH_RING_H

#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/types.h"

namespace mgx::fleet {

class HashRing
{
  public:
    /** @p vnodes points per node; more = smoother key distribution
     *  at O(vnodes * log) update cost. 64 is plenty for small N. */
    explicit HashRing(u32 vnodes = 64);

    void add(const std::string &node);
    void remove(const std::string &node);
    bool contains(const std::string &node) const;

    /** Number of distinct nodes. */
    std::size_t size() const { return nodes_.size(); }

    /** The node owning @p key; "" when the ring is empty. */
    std::string owner(const std::string &key) const;

    /**
     * Every distinct node in ring order starting at @p key's
     * position: route(key)[0] == owner(key), and the rest is the
     * failover sequence.
     */
    std::vector<std::string> route(const std::string &key) const;

    /** Stable hash of @p s (exposed for tests / diagnostics). */
    static u64 hash(const std::string &s);

  private:
    u32 vnodes_;
    std::map<u64, std::string> ring_; ///< point -> node
    std::set<std::string> nodes_;
};

} // namespace mgx::fleet

#endif // MGX_FLEET_HASH_RING_H
