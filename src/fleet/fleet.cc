#include "fleet.h"

#include "common/log.h"

namespace mgx::fleet {

Fleet::Fleet(FleetOptions opts)
    : opts_(std::move(opts))
{
    supervisor_ = std::make_unique<Supervisor>(opts_.supervisor);
    proxy_ = std::make_unique<Proxy>(opts_.proxy, supervisor_.get());
}

Fleet::~Fleet()
{
    shutdown();
}

void
Fleet::start()
{
    if (started_)
        return;
    started_ = true;
    supervisor_->start();
    if (!supervisor_->waitUntilReady(opts_.readyTimeoutMs))
        MGX_WARN("mgx_fleet: no worker became healthy within %d ms; "
                 "serving anyway (requests fail over until one "
                 "does)",
                 opts_.readyTimeoutMs);
    proxy_->start();
}

void
Fleet::shutdown()
{
    if (!started_ || shutdown_)
        return;
    shutdown_ = true;
    // Front door first so no request arrives at a dying worker.
    proxy_->shutdown();
    supervisor_->shutdown();
}

} // namespace mgx::fleet
