#include "supervisor.h"

#include <algorithm>
#include <cerrno>
#include <csignal>
#include <cstring>

#include <sys/wait.h>
#include <unistd.h>

#ifdef __linux__
#include <sys/prctl.h>
#endif

#include "common/failpoint.h"
#include "common/log.h"
#include "serve/client.h"

namespace mgx::fleet {
namespace {

// Fleet-boundary failpoints, registered at load so failpoint::all()
// audits them alongside the serve ones (see common/failpoint.h).
failpoint::Point &fpForkFail =
    failpoint::Point::get("fleet.fork.fail");
failpoint::Point &fpProbeTimeout =
    failpoint::Point::get("fleet.probe.timeout");

} // namespace

const char *
workerStateName(WorkerState s)
{
    switch (s) {
      case WorkerState::Starting: return "Starting";
      case WorkerState::Up: return "Up";
      case WorkerState::Down: return "Down";
      case WorkerState::Broken: return "Broken";
    }
    return "Unknown";
}

std::string
locateServeBinary()
{
    char buf[4096];
    const ssize_t n =
        ::readlink("/proc/self/exe", buf, sizeof buf - 1);
    if (n <= 0)
        return "";
    buf[n] = '\0';
    std::string self(buf);
    const std::size_t slash = self.rfind('/');
    if (slash == std::string::npos)
        return "";
    const std::string dir = self.substr(0, slash);
    for (const std::string &candidate :
         {dir + "/mgx_serve", dir + "/../examples/mgx_serve"}) {
        if (::access(candidate.c_str(), X_OK) == 0)
            return candidate;
    }
    return "";
}

Supervisor::Supervisor(SupervisorOptions opts)
    : opts_(std::move(opts))
{
    if (opts_.workers < 1)
        opts_.workers = 1;
    binary_ = opts_.serveBinary;
}

Supervisor::~Supervisor()
{
    shutdown();
}

void
Supervisor::start()
{
    if (started_)
        return;
    started_ = true;

    if (!spawn_) {
        if (binary_.empty())
            binary_ = locateServeBinary();
        if (binary_.empty())
            fatal("mgx_fleet: cannot locate the mgx_serve binary "
                  "(pass SupervisorOptions::serveBinary)");
    }
    if (opts_.socketDir.empty())
        fatal("mgx_fleet: SupervisorOptions::socketDir is required");

    {
        std::lock_guard<std::mutex> lock(mu_);
        workers_.resize(static_cast<std::size_t>(opts_.workers));
        for (int i = 0; i < opts_.workers; ++i) {
            Worker &w = workers_[static_cast<std::size_t>(i)];
            w.id = i;
            w.name = "w" + std::to_string(i);
            w.socketPath =
                opts_.socketDir + "/" + w.name + ".sock";
            spawnLocked(w);
        }
    }
    monitor_ = std::thread([this] { monitorLoop(); });
}

void
Supervisor::spawnLocked(Worker &w)
{
    const auto now = Clock::now();
    const bool respawn = w.lastSpawn.time_since_epoch().count() != 0;

    if (fpForkFail.fire() ||
        [&] {
            if (spawn_) {
                w.pid = spawn_(w.id, w.socketPath);
                return w.pid <= 0;
            }
            // A stale socket file from a SIGKILLed predecessor would
            // make clients connect into nothing; the worker unlinks
            // it again before bind, but clear it here too so the
            // window is as small as possible.
            ::unlink(w.socketPath.c_str());
            std::vector<std::string> args = {
                binary_,
                "--socket", w.socketPath,
                "--workers", std::to_string(opts_.workerThreads),
                "--queue", std::to_string(opts_.workerQueue),
                "--quiet"};
            if (!opts_.traceCacheDir.empty()) {
                args.push_back("--trace-cache");
                args.push_back(opts_.traceCacheDir);
            }
            if (opts_.traceCacheMaxBytes != 0) {
                args.push_back("--trace-cache-max-bytes");
                args.push_back(
                    std::to_string(opts_.traceCacheMaxBytes));
            }
            if (opts_.workerDeadlineMs > 0) {
                args.push_back("--deadline-ms");
                args.push_back(
                    std::to_string(opts_.workerDeadlineMs));
            }
            const pid_t pid = ::fork();
            if (pid < 0) {
                w.pid = -1;
                return true;
            }
            if (pid == 0) {
                // Child: die with the supervisor so a crashed parent
                // never strands workers, then become mgx_serve.
#ifdef __linux__
                ::prctl(PR_SET_PDEATHSIG, SIGKILL);
#endif
                std::vector<char *> argv;
                argv.reserve(args.size() + 1);
                for (auto &a : args)
                    argv.push_back(a.data());
                argv.push_back(nullptr);
                ::execv(argv[0], argv.data());
                ::_exit(127);
            }
            w.pid = pid;
            return false;
        }()) {
        // Spawn failed (fork error or injected): treat it like a
        // rapid death so the same backoff / flap machinery applies.
        w.pid = -1;
        w.state = WorkerState::Down;
        w.healthy = false;
        ++w.rapidDeaths;
        const int shift = std::min<u64>(w.rapidDeaths, 12);
        const int backoff = std::min(
            opts_.restartBackoffMaxMs,
            std::max(1, opts_.restartBackoffMs) * (1 << shift));
        w.nextRestartAt =
            now + std::chrono::milliseconds(backoff);
        MGX_WARN("mgx_fleet: spawning %s failed; retry in %d ms",
                 w.name.c_str(), backoff);
        return;
    }

    w.state = WorkerState::Starting;
    w.healthy = false;
    w.consecProbeMisses = 0;
    w.lastSpawn = now;
    w.nextProbeAt = now; // probe as soon as possible
    if (respawn) {
        ++w.restarts;
        restartCount_.fetch_add(1, std::memory_order_relaxed);
    }
}

void
Supervisor::reapLocked(Worker &w, Clock::time_point now)
{
    const bool rapid =
        now - w.lastSpawn <
        std::chrono::milliseconds(opts_.flapWindowMs);
    w.pid = -1;
    w.healthy = false;
    w.cacheDegraded = false; // a fresh process starts undegraded
    if (rapid)
        ++w.rapidDeaths;
    else
        w.rapidDeaths = 0; // it had settled; fresh slate

    if (rapid &&
        w.rapidDeaths >= static_cast<u64>(opts_.flapThreshold)) {
        // The flap breaker: this worker keeps dying right after
        // spawn (bad state, poisoned cell, resource exhaustion).
        // Park it for a cool-off instead of burning CPU on a
        // crash loop; after the cool-off it gets a probation spawn.
        w.state = WorkerState::Broken;
        w.nextRestartAt =
            now + std::chrono::milliseconds(opts_.coolOffMs);
        MGX_WARN("mgx_fleet: %s died %llu times in quick "
                 "succession; out of rotation for %d ms",
                 w.name.c_str(),
                 static_cast<unsigned long long>(w.rapidDeaths),
                 opts_.coolOffMs);
        return;
    }

    w.state = WorkerState::Down;
    const int shift = std::min<u64>(w.rapidDeaths, 12);
    const int backoff = std::min(
        opts_.restartBackoffMaxMs,
        std::max(1, opts_.restartBackoffMs) *
            (w.rapidDeaths == 0 ? 1 : (1 << shift)));
    w.nextRestartAt = now + std::chrono::milliseconds(
                                w.rapidDeaths == 0 ? 0 : backoff);
}

void
Supervisor::monitorLoop()
{
    while (!stop_.load(std::memory_order_relaxed)) {
        const auto now = Clock::now();
        {
            std::lock_guard<std::mutex> lock(mu_);
            for (Worker &w : workers_) {
                if (w.pid > 0) {
                    int status = 0;
                    const pid_t r =
                        ::waitpid(w.pid, &status, WNOHANG);
                    if (r == w.pid)
                        reapLocked(w, now);
                }
                if (w.pid <= 0 && now >= w.nextRestartAt)
                    spawnLocked(w);
            }
        }
        for (std::size_t i = 0; i < workers_.size(); ++i)
            probeOne(static_cast<int>(i));
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
}

void
Supervisor::probeOne(int index)
{
    serve::SocketAddress addr;
    {
        std::lock_guard<std::mutex> lock(mu_);
        Worker &w = workers_[static_cast<std::size_t>(index)];
        if (w.pid <= 0 || Clock::now() < w.nextProbeAt)
            return;
        w.nextProbeAt =
            Clock::now() +
            std::chrono::milliseconds(opts_.probeIntervalMs);
        addr.unixPath = w.socketPath;
    }

    bool ok = false;
    bool degraded = false;
    if (fpProbeTimeout.fire()) {
        // Simulated probe timeout: the worker is fine but the probe
        // never lands — exercises spurious-out-of-rotation handling.
        ok = false;
    } else {
        serve::HttpResponse resp;
        std::string error;
        ok = serve::httpGet(addr, "/healthz", &resp, &error,
                            opts_.probeTimeoutMs) &&
             resp.status == 200;
        // The liveness body also carries cache health; a degraded
        // worker stays in rotation but the proxy demotes it in
        // routing order (it re-generates traces instead of sharing
        // the cache — correct, just slower).
        if (ok)
            degraded = resp.body.find("\"cacheDegraded\": true") !=
                       std::string::npos;
    }

    std::lock_guard<std::mutex> lock(mu_);
    Worker &w = workers_[static_cast<std::size_t>(index)];
    if (w.pid <= 0)
        return; // died while we probed; the reaper owns it now
    if (ok) {
        w.consecProbeMisses = 0;
        w.healthy = true;
        w.cacheDegraded = degraded;
        if (w.state == WorkerState::Starting ||
            w.state == WorkerState::Broken)
            w.state = WorkerState::Up;
        // A worker that has stayed up past the flap window has
        // settled; forget its streak.
        if (w.rapidDeaths != 0 &&
            Clock::now() - w.lastSpawn >=
                std::chrono::milliseconds(opts_.flapWindowMs))
            w.rapidDeaths = 0;
    } else {
        ++w.probeFailures;
        if (++w.consecProbeMisses >= opts_.probeFailThreshold)
            w.healthy = false;
    }
}

bool
Supervisor::waitUntilReady(int timeout_ms)
{
    const auto deadline =
        Clock::now() + std::chrono::milliseconds(timeout_ms);
    while (Clock::now() < deadline) {
        {
            std::lock_guard<std::mutex> lock(mu_);
            for (const Worker &w : workers_)
                if (w.healthy)
                    return true;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    return false;
}

void
Supervisor::shutdown(int grace_ms)
{
    if (!started_ || shutdown_)
        return;
    shutdown_ = true;
    stop_.store(true, std::memory_order_relaxed);
    if (monitor_.joinable())
        monitor_.join();

    std::vector<std::pair<pid_t, std::string>> live;
    {
        std::lock_guard<std::mutex> lock(mu_);
        for (Worker &w : workers_) {
            if (w.pid > 0) {
                ::kill(w.pid, SIGTERM);
                live.emplace_back(w.pid, w.socketPath);
            }
            w.healthy = false;
        }
    }
    const auto deadline =
        Clock::now() + std::chrono::milliseconds(grace_ms);
    for (auto &[pid, socket] : live) {
        int status = 0;
        while (true) {
            const pid_t r = ::waitpid(pid, &status, WNOHANG);
            if (r == pid || (r < 0 && errno == ECHILD))
                break;
            if (Clock::now() >= deadline) {
                ::kill(pid, SIGKILL);
                ::waitpid(pid, &status, 0);
                break;
            }
            std::this_thread::sleep_for(
                std::chrono::milliseconds(10));
        }
        // A SIGKILLed worker cannot unlink its socket; leave no
        // strays behind (the CI fleet job asserts this).
        ::unlink(socket.c_str());
    }
    {
        std::lock_guard<std::mutex> lock(mu_);
        for (Worker &w : workers_)
            w.pid = -1;
    }
}

std::vector<std::string>
Supervisor::backendNames() const
{
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<std::string> names;
    names.reserve(workers_.size());
    for (const Worker &w : workers_)
        names.push_back(w.name);
    return names;
}

serve::SocketAddress
Supervisor::address(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(mu_);
    for (const Worker &w : workers_)
        if (w.name == name)
            return serve::SocketAddress{w.socketPath, "127.0.0.1",
                                        0};
    return {};
}

bool
Supervisor::inRotation(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(mu_);
    for (const Worker &w : workers_)
        if (w.name == name)
            return w.healthy && w.pid > 0;
    return false;
}

bool
Supervisor::cacheDegraded(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(mu_);
    for (const Worker &w : workers_)
        if (w.name == name)
            return w.cacheDegraded;
    return false;
}

std::vector<WorkerStatus>
Supervisor::status() const
{
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<WorkerStatus> out;
    out.reserve(workers_.size());
    for (const Worker &w : workers_) {
        WorkerStatus s;
        s.id = w.id;
        s.name = w.name;
        s.socketPath = w.socketPath;
        s.pid = w.pid;
        s.state = w.state;
        s.inRotation = w.healthy && w.pid > 0;
        s.cacheDegraded = w.cacheDegraded;
        s.restarts = w.restarts;
        s.rapidDeaths = w.rapidDeaths;
        s.probeFailures = w.probeFailures;
        out.push_back(s);
    }
    return out;
}

u64
Supervisor::restartCount() const
{
    return restartCount_.load(std::memory_order_relaxed);
}

std::string
Supervisor::statusJson() const
{
    const auto ws = status();
    std::string out = "{";
    bool first = true;
    for (const auto &w : ws) {
        if (!first)
            out += ", ";
        first = false;
        out += "\"" + w.name + "\": {\"state\": \"" +
               workerStateName(w.state) + "\", \"pid\": " +
               std::to_string(w.pid) + ", \"inRotation\": " +
               (w.inRotation ? "true" : "false") +
               ", \"cacheDegraded\": " +
               (w.cacheDegraded ? "true" : "false") +
               ", \"restarts\": " + std::to_string(w.restarts) +
               ", \"rapidDeaths\": " +
               std::to_string(w.rapidDeaths) +
               ", \"probeFailures\": " +
               std::to_string(w.probeFailures) + "}";
    }
    return out + "}";
}

} // namespace mgx::fleet
