/**
 * @file
 * The proxy's view of its backends, decoupled from how they are run.
 * In production the Supervisor (which forks real mgx_serve
 * processes) implements this; tests implement it with in-process
 * serve::Servers so routing, failover and stats aggregation are unit
 * testable without fork/exec.
 */

#ifndef MGX_FLEET_BACKEND_H
#define MGX_FLEET_BACKEND_H

#include <mutex>
#include <string>
#include <vector>

#include "serve/server.h"

namespace mgx::fleet {

class BackendDirectory
{
  public:
    virtual ~BackendDirectory() = default;

    /** Stable backend names ("w0".."wN-1"): the hash-ring nodes.
     *  Fixed after start — a restarted worker keeps its name, which
     *  is what keeps ring ownership stable across crashes. */
    virtual std::vector<std::string> backendNames() const = 0;

    /** Where @p name listens. Stable across restarts. */
    virtual serve::SocketAddress address(
        const std::string &name) const = 0;

    /** True while @p name is believed able to serve (alive and
     *  passing health probes). Routing prefers in-rotation backends
     *  but may still try out-of-rotation ones as a last resort —
     *  probe state lags reality in both directions. */
    virtual bool inRotation(const std::string &name) const = 0;

    /** True while @p name last reported its trace cache degraded
     *  (the /healthz body's cacheDegraded flag). A degraded worker
     *  still serves correct answers — it just re-generates traces —
     *  so routing demotes it below healthy peers rather than
     *  skipping it. Default: never degraded (test fakes). */
    virtual bool cacheDegraded(const std::string & /*name*/) const
    {
        return false;
    }

    /** One JSON object describing per-backend state, embedded into
     *  the proxy's /stats document. */
    virtual std::string statusJson() const = 0;
};

/** A fixed set of backends; rotation is externally toggled (tests). */
class StaticDirectory : public BackendDirectory
{
  public:
    void add(const std::string &name,
             const serve::SocketAddress &addr)
    {
        std::lock_guard<std::mutex> lock(mu_);
        names_.push_back(name);
        addrs_.push_back(addr);
        rotation_.push_back(true);
        degraded_.push_back(false);
    }

    void setInRotation(const std::string &name, bool in)
    {
        std::lock_guard<std::mutex> lock(mu_);
        for (std::size_t i = 0; i < names_.size(); ++i)
            if (names_[i] == name)
                rotation_[i] = in;
    }

    void setCacheDegraded(const std::string &name, bool degraded)
    {
        std::lock_guard<std::mutex> lock(mu_);
        for (std::size_t i = 0; i < names_.size(); ++i)
            if (names_[i] == name)
                degraded_[i] = degraded;
    }

    std::vector<std::string> backendNames() const override
    {
        std::lock_guard<std::mutex> lock(mu_);
        return names_;
    }

    serve::SocketAddress address(
        const std::string &name) const override
    {
        std::lock_guard<std::mutex> lock(mu_);
        for (std::size_t i = 0; i < names_.size(); ++i)
            if (names_[i] == name)
                return addrs_[i];
        return {};
    }

    bool inRotation(const std::string &name) const override
    {
        std::lock_guard<std::mutex> lock(mu_);
        for (std::size_t i = 0; i < names_.size(); ++i)
            if (names_[i] == name)
                return rotation_[i];
        return false;
    }

    bool cacheDegraded(const std::string &name) const override
    {
        std::lock_guard<std::mutex> lock(mu_);
        for (std::size_t i = 0; i < names_.size(); ++i)
            if (names_[i] == name)
                return degraded_[i];
        return false;
    }

    std::string statusJson() const override
    {
        std::lock_guard<std::mutex> lock(mu_);
        std::string out = "{";
        for (std::size_t i = 0; i < names_.size(); ++i) {
            if (i)
                out += ", ";
            out += "\"" + names_[i] + "\": {\"inRotation\": " +
                   (rotation_[i] ? "true" : "false") +
                   ", \"cacheDegraded\": " +
                   (degraded_[i] ? "true" : "false") + "}";
        }
        return out + "}";
    }

  private:
    mutable std::mutex mu_;
    std::vector<std::string> names_;
    std::vector<serve::SocketAddress> addrs_;
    std::vector<bool> rotation_;
    std::vector<bool> degraded_;
};

} // namespace mgx::fleet

#endif // MGX_FLEET_BACKEND_H
