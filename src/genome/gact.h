/**
 * @file
 * Model of Darwin's GACT alignment accelerator (paper §VII-A, Fig. 15).
 *
 * Darwin performs reference-guided assembly: D-SOFT (software in our
 * setup, as in the paper's evaluation) produces candidate positions;
 * GACT arrays then align tiles of (reference chunk, query chunk),
 * writing traceback pointers to DRAM. We model the published ASIC
 * configuration: 64 independent GACT arrays of 64 PEs at 800 MHz.
 *
 * Memory behaviour per tile: a reference chunk load from an effectively
 * random chromosome offset, a query chunk load from the current batch,
 * and a sequential traceback write. Because chunk loads are small and
 * randomly placed and tiles are variable-sized, MGX uses fine-grained
 * (64 B) MACs here and only the MGX_VN mode is meaningful — matching
 * the paper, which evaluates BP vs MGX_VN for GACT.
 */

#ifndef MGX_GENOME_GACT_H
#define MGX_GENOME_GACT_H

#include <string>
#include <vector>

#include "common/types.h"

namespace mgx::genome {

/** GACT hardware configuration (Darwin ASIC defaults). */
struct GactConfig
{
    u32 arrays = 64;        ///< independent GACT arrays
    u32 pesPerArray = 64;   ///< PEs per array
    double clockMhz = 800.0;
    u32 tileBases = 512;    ///< alignment tile side length
    u32 refChunkBytes = 512;   ///< reference bytes loaded per tile
    u32 queryChunkBytes = 512; ///< query bytes loaded per tile
    u32 tracebackBytesPerTile = 2048; ///< pointers written per tile

    /** Systolic DP cycles for one tile on one array. */
    Cycles
    tileComputeCycles() const
    {
        // tileBases x tileBases cells, one column of PEs wide.
        return static_cast<Cycles>(tileBases) * tileBases / pesPerArray;
    }
};

/** Sequencer error/length profiles (paper: PacBio, ONT2D, ONT1D). */
struct SequencerProfile
{
    std::string name;
    u32 meanReadLen = 10000;
    double errorRate = 0.12;
};

SequencerProfile pacbioProfile();
SequencerProfile ont2dProfile();
SequencerProfile ont1dProfile();

/** One evaluated workload: a chromosome x sequencer pair (Fig. 16). */
struct GactWorkload
{
    std::string name;        ///< e.g. "chr1PacBio"
    u64 referenceBases = 0;  ///< chromosome length
    SequencerProfile profile;
    u64 numReads = 0;        ///< reads simulated (subset, as the paper)
};

/** The nine Fig. 16 workloads: chr{1,X,Y} x {PacBio, ONT2D, ONT1D}. */
std::vector<GactWorkload> paperWorkloads(u64 reads_per_workload = 64);

} // namespace mgx::genome

#endif // MGX_GENOME_GACT_H
