#include "gact.h"

#include <vector>

namespace mgx::genome {

SequencerProfile
pacbioProfile()
{
    return {"PacBio", 10000, 0.12};
}

SequencerProfile
ont2dProfile()
{
    return {"ONT2D", 8000, 0.14};
}

SequencerProfile
ont1dProfile()
{
    return {"ONT1D", 10000, 0.22};
}

std::vector<GactWorkload>
paperWorkloads(u64 reads_per_workload)
{
    // GRCh38 chromosome lengths (bases).
    constexpr u64 kChr1 = 248956422;
    constexpr u64 kChrX = 156040895;
    constexpr u64 kChrY = 57227415;

    std::vector<GactWorkload> workloads;
    const struct { const char *chr; u64 bases; } chrs[] = {
        {"chr1", kChr1}, {"chrX", kChrX}, {"chrY", kChrY}};
    const SequencerProfile profiles[] = {pacbioProfile(), ont2dProfile(),
                                         ont1dProfile()};
    for (const auto &c : chrs) {
        for (const auto &p : profiles) {
            workloads.push_back(
                {std::string(c.chr) + p.name, c.bases, p,
                 reads_per_workload});
        }
    }
    return workloads;
}

} // namespace mgx::genome
