#include "genome_kernel.h"

#include <algorithm>

#include "common/bitops.h"
#include "common/rng.h"
#include "core/counter.h"

namespace mgx::genome {

using core::makeVn;
using core::Phase;
using core::Trace;

GenomeKernel::GenomeKernel(GactWorkload workload, GactConfig config,
                           u64 seed)
    : workload_(std::move(workload)), config_(config), seed_(seed)
{
    state_.setCounter("CTR_genome", 1); // this assembly
    state_.setCounter("CTR_query", 0);
}

Vn
GenomeKernel::queryVn() const
{
    return (state_.counter("CTR_genome") << 32) |
           state_.counter("CTR_query");
}

core::Trace
GenomeKernel::generate()
{
    Rng rng(seed_);
    Trace trace;

    // One new query batch per generate() call.
    state_.bumpCounter("CTR_query");
    const Vn vn_ref = makeVn(DataClass::GenomeTable,
                             state_.counter("CTR_genome"));
    const Vn vn_query = makeVn(DataClass::GenomeQuery, queryVn());

    // Tiles per read: a chain along the read, with error-driven overlap
    // (higher error rate -> smaller effective step -> more tiles).
    const double step = static_cast<double>(config_.tileBases) *
                        std::max(0.2, 1.0 - 2.0 * workload_.profile
                                                    .errorRate);
    const u64 tiles_per_read = std::max<u64>(
        1, static_cast<u64>(workload_.profile.meanReadLen / step));

    // Each read aligns at one random locus; its tile chain then walks
    // the reference sequentially from there (GACT extends tile by
    // tile along the alignment). Each GACT array processes one read's
    // chain, so a "wave" takes the next tile of up to `arrays` reads.
    const u64 ref_span = std::max<u64>(workload_.referenceBases / 2, 1);
    std::vector<Addr> locus(workload_.numReads);
    for (auto &l : locus)
        l = alignDown(referenceBase_ + rng.below(ref_span), 64);

    Addr traceback = tracebackBase_;
    u64 query_off = 0;
    for (u64 batch = 0; batch < workload_.numReads;
         batch += config_.arrays) {
        const u64 reads =
            std::min<u64>(config_.arrays, workload_.numReads - batch);
        for (u64 t = 0; t < tiles_per_read; ++t) {
            Phase p;
            // Built in place: const char* + rvalue-string trips GCC
            // 12's -Wrestrict false positive (PR105651) under -O2.
            p.name = "b";
            p.name += std::to_string(batch / config_.arrays);
            p.name += ".w";
            p.name += std::to_string(t);
            p.computeCycles = config_.tileComputeCycles();
            for (u64 r = 0; r < reads; ++r) {
                // Reference chunk: sequential within the read's chain.
                const Addr ref_addr =
                    locus[batch + r] + t * config_.refChunkBytes;
                p.accesses.push_back({ref_addr, config_.refChunkBytes,
                                      vn_ref, AccessType::Read,
                                      DataClass::GenomeTable, 64});
                // Query chunk: sequential within the batch.
                p.accesses.push_back(
                    {queryBase_ + query_off, config_.queryChunkBytes,
                     vn_query, AccessType::Read, DataClass::GenomeQuery, 64});
                query_off += config_.queryChunkBytes;
                // Traceback pointers: written once, sequentially.
                p.accesses.push_back(
                    {traceback, config_.tracebackBytesPerTile, vn_query,
                     AccessType::Write, DataClass::GenomeQuery, 64});
                traceback += config_.tracebackBytesPerTile;
            }
            trace.push_back(std::move(p));
        }
    }
    return trace;
}

} // namespace mgx::genome
