#include "genome_kernel.h"

#include <algorithm>
#include <cstdio>

#include "common/bitops.h"
#include "common/rng.h"
#include "core/counter.h"

namespace mgx::genome {

using core::makeVn;
using core::Phase;
using core::Trace;

GenomeKernel::GenomeKernel(GactWorkload workload, GactConfig config,
                           u64 seed)
    : workload_(std::move(workload)), config_(config), seed_(seed)
{
    state_.setCounter("CTR_genome", 1); // this assembly
    state_.setCounter("CTR_query", 0);
}

Vn
GenomeKernel::queryVn() const
{
    return (state_.counter("CTR_genome") << 32) |
           state_.counter("CTR_query");
}

/**
 * Streaming producer: one GACT wave phase per chunk. The per-read
 * alignment loci (the schedule metadata — 8 bytes per read, not the
 * trace) are drawn at stream creation in the same Rng order the
 * materializing loop used, and CTR_query bumps there too, so the
 * emitted phase sequence and end state are identical.
 */
class GenomeKernel::Source final : public core::PhaseSource
{
  public:
    explicit Source(GenomeKernel &kernel) : k_(&kernel)
    {
        Rng rng(k_->seed_);

        // One new query batch per stream() call.
        k_->state_.bumpCounter("CTR_query");
        vnRef_ = makeVn(DataClass::GenomeTable,
                        k_->state_.counter("CTR_genome"));
        vnQuery_ = makeVn(DataClass::GenomeQuery, k_->queryVn());

        // Tiles per read: a chain along the read, with error-driven
        // overlap (higher error rate -> smaller effective step ->
        // more tiles).
        const double step =
            static_cast<double>(k_->config_.tileBases) *
            std::max(0.2, 1.0 - 2.0 * k_->workload_.profile.errorRate);
        tilesPerRead_ = std::max<u64>(
            1,
            static_cast<u64>(k_->workload_.profile.meanReadLen / step));

        // Each read aligns at one random locus; its tile chain then
        // walks the reference sequentially from there (GACT extends
        // tile by tile along the alignment). Each GACT array processes
        // one read's chain, so a "wave" takes the next tile of up to
        // `arrays` reads.
        const u64 ref_span =
            std::max<u64>(k_->workload_.referenceBases / 2, 1);
        locus_.resize(k_->workload_.numReads);
        for (auto &l : locus_)
            l = alignDown(k_->referenceBase_ + rng.below(ref_span), 64);

        traceback_ = k_->tracebackBase_;
    }

    bool
    nextChunk(core::PhaseSink &sink) override
    {
        const GactConfig &cfg = k_->config_;
        const u64 num_reads = k_->workload_.numReads;
        if (batch_ >= num_reads)
            return false;

        const u64 reads = std::min<u64>(cfg.arrays, num_reads - batch_);
        // Formatted into a flat buffer: string concatenation here
        // trips GCC 12's -Wrestrict false positive (PR105651).
        char name[48];
        std::snprintf(name, sizeof name, "b%llu.w%llu",
                      static_cast<unsigned long long>(batch_ /
                                                      cfg.arrays),
                      static_cast<unsigned long long>(t_));
        scratch_.name = name;
        scratch_.computeCycles = cfg.tileComputeCycles();
        scratch_.accesses.clear();
        for (u64 r = 0; r < reads; ++r) {
            // Reference chunk: sequential within the read's chain.
            const Addr ref_addr =
                locus_[batch_ + r] + t_ * cfg.refChunkBytes;
            scratch_.accesses.push_back({ref_addr, cfg.refChunkBytes,
                                         vnRef_, AccessType::Read,
                                         DataClass::GenomeTable, 64});
            // Query chunk: sequential within the batch.
            scratch_.accesses.push_back(
                {k_->queryBase_ + queryOff_, cfg.queryChunkBytes,
                 vnQuery_, AccessType::Read, DataClass::GenomeQuery,
                 64});
            queryOff_ += cfg.queryChunkBytes;
            // Traceback pointers: written once, sequentially.
            scratch_.accesses.push_back(
                {traceback_, cfg.tracebackBytesPerTile, vnQuery_,
                 AccessType::Write, DataClass::GenomeQuery, 64});
            traceback_ += cfg.tracebackBytesPerTile;
        }
        sink.consume(scratch_);

        if (++t_ == tilesPerRead_) {
            t_ = 0;
            batch_ += cfg.arrays;
        }
        return batch_ < num_reads;
    }

  private:
    GenomeKernel *k_;
    Vn vnRef_ = 0;
    Vn vnQuery_ = 0;
    u64 tilesPerRead_ = 1;
    std::vector<Addr> locus_;
    Addr traceback_ = 0;
    u64 queryOff_ = 0;
    u64 batch_ = 0;
    u64 t_ = 0;
    Phase scratch_;
};

std::unique_ptr<core::PhaseSource>
GenomeKernel::stream()
{
    return std::make_unique<Source>(*this);
}

} // namespace mgx::genome
