/**
 * @file
 * The Darwin control-processor kernel: schedules GACT tile batches and
 * generates VNs from two counters (paper §VII-A):
 *
 *  - CTR_genome increments per assembly; reference sequence, seed
 *    table and position table are written once per assembly and then
 *    read-only, so their VN is just CTR_genome.
 *  - CTR_query increments per query batch; query sequences (read) and
 *    traceback pointers (written once, sequentially) use the
 *    concatenation CTR_genome || CTR_query.
 */

#ifndef MGX_GENOME_GENOME_KERNEL_H
#define MGX_GENOME_GENOME_KERNEL_H

#include "core/kernel.h"
#include "gact.h"

namespace mgx::genome {

/** Control-processor kernel for one GACT workload. */
class GenomeKernel : public core::Kernel
{
  public:
    GenomeKernel(GactWorkload workload, GactConfig config = {},
                 u64 seed = 7);

    std::string name() const override { return workload_.name; }

    /** Stream one query batch (CTR_query bumps at stream creation),
     *  one GACT wave phase per chunk. */
    std::unique_ptr<core::PhaseSource> stream() override;

    /** VN value used for query/traceback data (tests). */
    Vn queryVn() const;

  private:
    class Source; // the streaming producer (genome_kernel.cc)

    GactWorkload workload_;
    GactConfig config_;
    u64 seed_;

    // Address map (Fig. 15's regions).
    Addr referenceBase_ = 0;               ///< up to 4 GB
    Addr queryBase_ = 6ull << 30;          ///< query batches
    Addr tracebackBase_ = 12ull << 30;     ///< traceback pointers
};

} // namespace mgx::genome

#endif // MGX_GENOME_GENOME_KERNEL_H
