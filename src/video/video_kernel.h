/**
 * @file
 * The H.264 decoder's MGX kernel: emits the frame-buffer traffic of the
 * decode schedule with VN = CTR_IN || F, and exposes the per-access VN
 * rule so the functional test can decode through SecureMemory.
 */

#ifndef MGX_VIDEO_VIDEO_KERNEL_H
#define MGX_VIDEO_VIDEO_KERNEL_H

#include "core/kernel.h"
#include "h264_model.h"

namespace mgx::video {

/** Control-processor kernel for one bitstream decode. */
class VideoKernel : public core::Kernel
{
  public:
    explicit VideoKernel(VideoConfig config = {});

    std::string name() const override { return "h264-decode"; }

    /**
     * One stream()/generate() call decodes one bitstream (CTR_IN
     * increments), emitting per-frame phases: reference reads then
     * the output write. The stream produces one frame per chunk.
     */
    std::unique_ptr<core::PhaseSource> stream() override;

    /** VN for (this bitstream, display frame @p f) — the Fig. 19 rule. */
    Vn frameVn(u32 f) const;

    /** Frame-buffer base address of buffer @p index. */
    Addr bufferAddr(u32 index) const;

    const VideoConfig &config() const { return config_; }

  private:
    class Source; // the streaming producer (video_kernel.cc)

    VideoConfig config_;
    Addr bufferBase_ = 2ull << 30;
};

} // namespace mgx::video

#endif // MGX_VIDEO_VIDEO_KERNEL_H
