#include "h264_model.h"

namespace mgx::video {

std::vector<DecodedFrame>
buildDecodeSchedule(const VideoConfig &cfg)
{
    std::vector<DecodedFrame> schedule;
    // Anchors live at even display numbers: I every gopPeriod frames,
    // P at the other even positions. A B frame at odd display number f
    // is decoded right after its future anchor f+1... i.e. after the
    // anchor at f+1 in display terms (f-1 and f+1 are both even).
    for (u32 f = 0; f < cfg.numFrames; f += 2) {
        DecodedFrame anchor;
        anchor.displayNumber = f;
        anchor.type = (f % cfg.gopPeriod == 0) ? FrameType::I
                                               : FrameType::P;
        anchor.bufferIndex = (f / 2) % 2;
        if (anchor.type == FrameType::P) {
            anchor.refDisplayNumbers = {f - 2};
            anchor.refBufferIndices = {(f / 2 - 1) % 2u};
        }
        schedule.push_back(anchor);

        if (f > 0) {
            // The B frame between the previous anchor and this one.
            DecodedFrame b;
            b.displayNumber = f - 1;
            b.type = FrameType::B;
            b.bufferIndex = 2;
            b.refDisplayNumbers = {f - 2, f};
            b.refBufferIndices = {(f / 2 - 1) % 2u, (f / 2) % 2u};
            schedule.push_back(b);
        }
    }
    return schedule;
}

} // namespace mgx::video
