#include "video_kernel.h"

#include "common/bitops.h"
#include "core/counter.h"

namespace mgx::video {

using core::makeVn;
using core::Phase;
using core::Trace;

VideoKernel::VideoKernel(VideoConfig config) : config_(config)
{
    state_.setCounter("CTR_IN", 0);
}

Vn
VideoKernel::frameVn(u32 f) const
{
    // CTR_IN in the upper half, display frame number in the lower.
    return makeVn(DataClass::VideoFrame,
                  (state_.counter("CTR_IN") << 32) | f);
}

Addr
VideoKernel::bufferAddr(u32 index) const
{
    return bufferBase_ + static_cast<Addr>(index) *
                             alignUp(config_.frameBytes(), 4096);
}

Trace
VideoKernel::generate()
{
    state_.bumpCounter("CTR_IN"); // a new bitstream arrives
    Trace trace;

    const u64 frame_bytes = config_.frameBytes();
    const u64 macroblocks = static_cast<u64>(divCeil(config_.width, 16)) *
                            divCeil(config_.height, 16);

    for (const DecodedFrame &frame : buildDecodeSchedule(config_)) {
        Phase p;
        p.name = "frame" + std::to_string(frame.displayNumber) +
                 (frame.type == FrameType::I
                      ? "(I)"
                      : frame.type == FrameType::P ? "(P)" : "(B)");
        p.computeCycles = macroblocks * config_.cyclesPerMacroblock;

        // Inter-prediction reads the reference frame(s); motion search
        // touches roughly the co-located region, i.e. ~one frame's
        // worth of reference data per reference.
        for (std::size_t r = 0; r < frame.refDisplayNumbers.size();
             ++r) {
            p.accesses.push_back(
                {bufferAddr(frame.refBufferIndices[r]), frame_bytes,
                 frameVn(frame.refDisplayNumbers[r]), AccessType::Read,
                 DataClass::VideoFrame, 0});
        }
        // The output frame: written exactly once per address.
        p.accesses.push_back({bufferAddr(frame.bufferIndex), frame_bytes,
                              frameVn(frame.displayNumber),
                              AccessType::Write, DataClass::VideoFrame, 0});
        trace.push_back(std::move(p));
    }
    return trace;
}

} // namespace mgx::video
