#include "video_kernel.h"

#include "common/bitops.h"
#include "core/counter.h"

namespace mgx::video {

using core::makeVn;
using core::Phase;
using core::Trace;

VideoKernel::VideoKernel(VideoConfig config) : config_(config)
{
    state_.setCounter("CTR_IN", 0);
}

Vn
VideoKernel::frameVn(u32 f) const
{
    // CTR_IN in the upper half, display frame number in the lower.
    return makeVn(DataClass::VideoFrame,
                  (state_.counter("CTR_IN") << 32) | f);
}

Addr
VideoKernel::bufferAddr(u32 index) const
{
    return bufferBase_ + static_cast<Addr>(index) *
                             alignUp(config_.frameBytes(), 4096);
}

/**
 * Streaming producer: one decoded frame per chunk, in decode order.
 * CTR_IN bumps at stream creation (a new bitstream arrives), exactly
 * where the materializing loop bumped it.
 */
class VideoKernel::Source final : public core::PhaseSource
{
  public:
    explicit Source(VideoKernel &kernel)
        : k_(&kernel), schedule_(buildDecodeSchedule(kernel.config_)),
          frameBytes_(kernel.config_.frameBytes()),
          macroblocks_(
              static_cast<u64>(divCeil(kernel.config_.width, 16)) *
              divCeil(kernel.config_.height, 16))
    {
        k_->state_.bumpCounter("CTR_IN"); // a new bitstream arrives
    }

    bool
    nextChunk(core::PhaseSink &sink) override
    {
        if (next_ >= schedule_.size())
            return false;
        const DecodedFrame &frame = schedule_[next_];
        scratch_.name = "frame" + std::to_string(frame.displayNumber) +
                        (frame.type == FrameType::I
                             ? "(I)"
                             : frame.type == FrameType::P ? "(P)"
                                                          : "(B)");
        scratch_.computeCycles =
            macroblocks_ * k_->config_.cyclesPerMacroblock;
        scratch_.accesses.clear();

        // Inter-prediction reads the reference frame(s); motion search
        // touches roughly the co-located region, i.e. ~one frame's
        // worth of reference data per reference.
        for (std::size_t r = 0; r < frame.refDisplayNumbers.size();
             ++r) {
            scratch_.accesses.push_back(
                {k_->bufferAddr(frame.refBufferIndices[r]), frameBytes_,
                 k_->frameVn(frame.refDisplayNumbers[r]),
                 AccessType::Read, DataClass::VideoFrame, 0});
        }
        // The output frame: written exactly once per address.
        scratch_.accesses.push_back(
            {k_->bufferAddr(frame.bufferIndex), frameBytes_,
             k_->frameVn(frame.displayNumber), AccessType::Write,
             DataClass::VideoFrame, 0});
        sink.consume(scratch_);
        return ++next_ < schedule_.size();
    }

  private:
    VideoKernel *k_;
    std::vector<DecodedFrame> schedule_;
    u64 frameBytes_;
    u64 macroblocks_;
    std::size_t next_ = 0;
    Phase scratch_;
};

std::unique_ptr<core::PhaseSource>
VideoKernel::stream()
{
    return std::make_unique<Source>(*this);
}

} // namespace mgx::video
