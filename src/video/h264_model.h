/**
 * @file
 * H.264 decoder memory model (paper §VII-A, Figs. 17-19).
 *
 * The decoder keeps three frame buffers in off-chip memory: two anchor
 * (I/P) reference buffers and one for the B frame in flight. Each
 * output frame is written exactly once per address; inter-prediction
 * reads reference frames. Decode order differs from display order
 * (I0 P2 B1 P4 B3 ... for an IBPB GOP).
 *
 * MGX VN rule: VN = CTR_IN || F where F is the *display* frame number
 * and CTR_IN counts input bitstreams. A P frame reads its anchor with
 * (CTR_IN || F-2); a B frame reads (CTR_IN || F-1) and (CTR_IN || F+1).
 */

#ifndef MGX_VIDEO_H264_MODEL_H
#define MGX_VIDEO_H264_MODEL_H

#include <string>
#include <vector>

#include "common/types.h"

namespace mgx::video {

/** Frame type in the GOP. */
enum class FrameType : u8 { I, P, B };

/** One frame in decode order with its references. */
struct DecodedFrame
{
    u32 displayNumber = 0; ///< F in the VN construction
    FrameType type = FrameType::I;
    u32 bufferIndex = 0;   ///< which of the 3 frame buffers it writes
    std::vector<u32> refDisplayNumbers; ///< frames it reads
    std::vector<u32> refBufferIndices;  ///< where those frames live
};

/** Stream geometry. */
struct VideoConfig
{
    u32 width = 1920;
    u32 height = 1080;
    u32 numFrames = 16;   ///< frames decoded in this run
    u32 gopPeriod = 4;    ///< I/P anchor every gopPeriod/2 frames
    double bytesPerPixel = 1.5; ///< YUV420
    double clockMhz = 450.0;
    Cycles cyclesPerMacroblock = 256;

    u64
    frameBytes() const
    {
        return static_cast<u64>(static_cast<double>(width) * height *
                                bytesPerPixel);
    }
};

/**
 * Build the decode-order schedule of an IBPB... sequence: anchors at
 * even display numbers (I every gopPeriod, P otherwise) decoded first,
 * B frames between them decoded after their future anchor. Buffer
 * assignment: anchors alternate buffers 0/1, B frames use buffer 2.
 */
std::vector<DecodedFrame> buildDecodeSchedule(const VideoConfig &cfg);

} // namespace mgx::video

#endif // MGX_VIDEO_H264_MODEL_H
