/**
 * @file
 * Minimal logging / fatal-error facility in the spirit of gem5's
 * base/logging.hh. `fatal` reports user-level configuration errors;
 * `panic` reports internal invariant violations and aborts.
 */

#ifndef MGX_COMMON_LOG_H
#define MGX_COMMON_LOG_H

#include <cstdio>
#include <cstdlib>
#include <string>

namespace mgx {

/** Severity levels for runtime messages. */
enum class LogLevel { Debug, Info, Warn, Error };

namespace detail {

/** Global log threshold; messages below it are suppressed. */
LogLevel &logThreshold();

void vlog(LogLevel lvl, const char *fmt, ...)
    __attribute__((format(printf, 2, 3)));

} // namespace detail

/** Set the global minimum level that will be printed. */
void setLogLevel(LogLevel lvl);

/** Informational message for the user. */
#define MGX_INFO(...) ::mgx::detail::vlog(::mgx::LogLevel::Info, __VA_ARGS__)

/** Something may be mis-modelled but the run can continue. */
#define MGX_WARN(...) ::mgx::detail::vlog(::mgx::LogLevel::Warn, __VA_ARGS__)

/** Debug-level tracing, off by default. */
#define MGX_DEBUG(...) \
    ::mgx::detail::vlog(::mgx::LogLevel::Debug, __VA_ARGS__)

/**
 * Unrecoverable user error (bad configuration, invalid workload):
 * print and exit(1).
 */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Internal invariant violation (a bug in MGX itself): print and abort().
 */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

} // namespace mgx

#endif // MGX_COMMON_LOG_H
