/**
 * @file
 * Fundamental integer type aliases and core value types shared by every
 * MGX subsystem.
 */

#ifndef MGX_COMMON_TYPES_H
#define MGX_COMMON_TYPES_H

#include <cstdint>
#include <string>

namespace mgx {

using u8 = std::uint8_t;
using u16 = std::uint16_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;
using i8 = std::int8_t;
using i16 = std::int16_t;
using i32 = std::int32_t;
using i64 = std::int64_t;

/** Physical byte address in the accelerator's protected DRAM space. */
using Addr = u64;

/** Simulated clock cycle count. */
using Cycles = u64;

/** 64-bit version number used as the non-address half of an AES counter. */
using Vn = u64;

/** Direction of a memory access. */
enum class AccessType : u8 { Read, Write };

/**
 * Data class carried by every logical access. The counter construction
 * (paper Fig. 6) tags the VN with a 2-bit type so features, weights, and
 * gradients can never collide even when their VN values coincide; the
 * remaining classes cover the graph / genome / video case studies.
 */
enum class DataClass : u8 {
    Feature,      ///< DNN activations (VN_F)
    Weight,       ///< DNN weights (VN_W)
    Gradient,     ///< DNN gradients (VN_G)
    GraphMatrix,  ///< sparse adjacency structure (constant VN)
    GraphVector,  ///< dense rank / frontier vectors (VN = Iter)
    GenomeTable,  ///< reference, seed and position tables (CTR_genome)
    GenomeQuery,  ///< query batches and traceback output (CTR_query)
    VideoFrame,   ///< decoded frame buffers (CTR_IN || F)
    Generic,      ///< anything else (MatMul example, raw buffers)
};

/** Human-readable name for a data class (stats and trace dumps). */
const char *dataClassName(DataClass dc);

/** Human-readable name for an access type. */
inline const char *
accessTypeName(AccessType t)
{
    return t == AccessType::Read ? "read" : "write";
}

} // namespace mgx

#endif // MGX_COMMON_TYPES_H
