/**
 * @file
 * Lightweight named-counter statistics, loosely modeled on gem5's stats
 * package. Each subsystem owns a StatGroup; benches read counters out to
 * build the paper's tables.
 */

#ifndef MGX_COMMON_STATS_H
#define MGX_COMMON_STATS_H

#include <cstdio>
#include <map>
#include <string>

#include "types.h"

namespace mgx {

/**
 * A flat map of named 64-bit counters plus derived-ratio helpers.
 * Not thread-safe; the simulator is single-threaded by design.
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string name) : name_(std::move(name)) {}

    /** Add @p delta to counter @p key (creating it at zero). */
    void
    add(const std::string &key, u64 delta = 1)
    {
        counters_[key] += delta;
    }

    /** Overwrite counter @p key. */
    void
    set(const std::string &key, u64 value)
    {
        counters_[key] = value;
    }

    /** Read a counter; missing keys read as zero. */
    u64
    get(const std::string &key) const
    {
        auto it = counters_.find(key);
        return it == counters_.end() ? 0 : it->second;
    }

    /** Ratio of two counters; returns 0 when the denominator is zero. */
    double
    ratio(const std::string &num, const std::string &den) const
    {
        u64 d = get(den);
        return d == 0 ? 0.0 : static_cast<double>(get(num)) / d;
    }

    /** Reset all counters to zero. */
    void clear() { counters_.clear(); }

    /** Group name given at construction. */
    const std::string &name() const { return name_; }

    /** All counters, sorted by key (std::map iteration order). */
    const std::map<std::string, u64> &counters() const { return counters_; }

    /** Dump `group.key value` lines to @p out. */
    void
    dump(std::FILE *out = stdout) const
    {
        for (const auto &[key, value] : counters_)
            std::fprintf(out, "%s.%s %llu\n", name_.c_str(), key.c_str(),
                         static_cast<unsigned long long>(value));
    }

  private:
    std::string name_;
    std::map<std::string, u64> counters_;
};

} // namespace mgx

#endif // MGX_COMMON_STATS_H
