/**
 * @file
 * Lightweight named-counter statistics, loosely modeled on gem5's stats
 * package. Each subsystem owns a StatGroup; benches read counters out to
 * build the paper's tables.
 *
 * The hot path is handle-based: a subsystem resolves a Counter handle
 * per named statistic once at construction and bumps through it with a
 * single pointer-chase — no string hashing, map walk, or allocation per
 * event. The string-keyed API (add/set/get/ratio/dump) survives for
 * cold-path readers and ad-hoc counters; both views share the same
 * slots, so `group.counter("x").add()` and `group.get("x")` always
 * agree.
 */

#ifndef MGX_COMMON_STATS_H
#define MGX_COMMON_STATS_H

#include <cstdio>
#include <deque>
#include <map>
#include <string>

#include "types.h"

namespace mgx {

/**
 * A flat group of named 64-bit counters plus derived-ratio helpers.
 * Not thread-safe; each simulated cell owns its groups.
 */
class StatGroup
{
  public:
    /**
     * Hot-path handle to one counter slot. A default-constructed
     * Counter is a null sink: bumps are dropped, reads are zero — the
     * null-object for subsystems whose stats pointer is optional.
     */
    class Counter
    {
      public:
        Counter() = default;

        /** Add @p delta to the underlying slot (no-op when null). */
        void
        add(u64 delta = 1)
        {
            if (slot_ != nullptr)
                *slot_ += delta;
        }

        Counter &
        operator+=(u64 delta)
        {
            add(delta);
            return *this;
        }

        Counter &
        operator++()
        {
            add(1);
            return *this;
        }

        /** Current value (zero when null). */
        u64 value() const { return slot_ == nullptr ? 0 : *slot_; }

        bool valid() const { return slot_ != nullptr; }

      private:
        friend class StatGroup;
        explicit Counter(u64 *slot) : slot_(slot) {}
        u64 *slot_ = nullptr;
    };

    explicit StatGroup(std::string name) : name_(std::move(name)) {}

    // StatGroup hands out pointers into slots_; moving or copying the
    // group would silently detach every resolved handle.
    StatGroup(const StatGroup &) = delete;
    StatGroup &operator=(const StatGroup &) = delete;

    /**
     * Resolve (creating at zero) the handle for counter @p key. Do this
     * once at construction; the handle stays valid for the group's
     * lifetime (slots are deque-backed and never move).
     */
    Counter
    counter(const std::string &key)
    {
        return Counter(slotFor(key));
    }

    /** Add @p delta to counter @p key (creating it at zero). */
    void
    add(const std::string &key, u64 delta = 1)
    {
        *slotFor(key) += delta;
    }

    /** Overwrite counter @p key. */
    void
    set(const std::string &key, u64 value)
    {
        *slotFor(key) = value;
    }

    /** Read a counter; missing keys read as zero. */
    u64
    get(const std::string &key) const
    {
        auto it = index_.find(key);
        return it == index_.end() ? 0 : *it->second;
    }

    /** Ratio of two counters; returns 0 when the denominator is zero. */
    double
    ratio(const std::string &num, const std::string &den) const
    {
        u64 d = get(den);
        return d == 0 ? 0.0 : static_cast<double>(get(num)) / d;
    }

    /**
     * Reset all counters to zero. Registrations (and therefore resolved
     * handles) survive; only the values clear.
     */
    void
    clear()
    {
        for (u64 &slot : slots_)
            slot = 0;
    }

    /** Group name given at construction. */
    const std::string &name() const { return name_; }

    /** All counters by key (snapshot; sorted by key). */
    std::map<std::string, u64>
    counters() const
    {
        std::map<std::string, u64> out;
        for (const auto &[key, slot] : index_)
            out.emplace(key, *slot);
        return out;
    }

    /** Dump `group.key value` lines to @p out. */
    void
    dump(std::FILE *out = stdout) const
    {
        for (const auto &[key, slot] : index_)
            std::fprintf(out, "%s.%s %llu\n", name_.c_str(), key.c_str(),
                         static_cast<unsigned long long>(*slot));
    }

  private:
    /** Find-or-create the slot for @p key. */
    u64 *
    slotFor(const std::string &key)
    {
        auto it = index_.find(key);
        if (it != index_.end())
            return it->second;
        slots_.push_back(0);
        u64 *slot = &slots_.back();
        index_.emplace(key, slot);
        return slot;
    }

    std::string name_;
    std::deque<u64> slots_; ///< stable storage: handles never dangle
    std::map<std::string, u64 *> index_;
};

} // namespace mgx

#endif // MGX_COMMON_STATS_H
