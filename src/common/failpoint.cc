#include "common/failpoint.h"

#include <cstdlib>
#include <map>
#include <memory>
#include <mutex>

namespace mgx::failpoint {

namespace {

enum class Mode { Off, Times, EveryN, Prob, Always };

/** xorshift-free minimal LCG: deterministic, per-point stream. */
u32
lcgNext(u64 *state)
{
    *state = *state * 6364136223846793005ull + 1442695040888963407ull;
    return static_cast<u32>(*state >> 33);
}

u64
fnv1a(std::string_view s)
{
    u64 h = 14695981039346656037ull;
    for (char c : s)
        h = (h ^ static_cast<unsigned char>(c)) * 1099511628211ull;
    return h;
}

} // namespace

struct Point::State {
    mutable std::mutex mu;
    Mode mode = Mode::Off;
    u64 n = 0;           // Times / EveryN parameter
    u32 probPermille = 0; // Prob threshold out of 1000000
    u64 rng = 0;
    u64 evaluations = 0;
    u64 hits = 0;
    std::string spec = "off";
};

class Registry
{
  public:
    static Registry &instance()
    {
        static Registry reg;
        return reg;
    }

    Point &get(std::string_view name)
    {
        std::lock_guard<std::mutex> lk(mu_);
        auto it = points_.find(std::string(name));
        if (it != points_.end())
            return *it->second;
        auto point =
            std::unique_ptr<Point>(new Point(std::string(name)));
        Point &ref = *point;
        points_.emplace(ref.name(), std::move(point));
        auto pending = pending_.find(ref.name());
        if (pending != pending_.end()) {
            ref.arm(pending->second);
            pending_.erase(pending);
        }
        return ref;
    }

    bool armSpec(const std::string &name, const std::string &spec,
                 std::string *error)
    {
        std::unique_lock<std::mutex> lk(mu_);
        auto it = points_.find(name);
        if (it == points_.end()) {
            // Hold until the point registers (env arming can run
            // before the owning translation unit's statics).
            pending_[name] = spec;
            return true;
        }
        Point &point = *it->second;
        lk.unlock();
        if (!point.arm(spec)) {
            if (error != nullptr)
                *error = "bad failpoint spec '" + spec + "' for '" +
                         name + "'";
            return false;
        }
        return true;
    }

    void disarmAll()
    {
        std::lock_guard<std::mutex> lk(mu_);
        pending_.clear();
        for (auto &entry : points_)
            entry.second->disarm();
    }

    void resetCounters()
    {
        std::lock_guard<std::mutex> lk(mu_);
        for (auto &entry : points_) {
            std::lock_guard<std::mutex> plk(entry.second->state_->mu);
            entry.second->state_->evaluations = 0;
            entry.second->state_->hits = 0;
        }
    }

    std::vector<PointInfo> all()
    {
        std::lock_guard<std::mutex> lk(mu_);
        std::vector<PointInfo> out;
        out.reserve(points_.size());
        for (const auto &entry : points_) {
            const Point &point = *entry.second;
            out.push_back({point.name(), point.spec(),
                           point.evaluations(), point.hits()});
        }
        return out;
    }

  private:
    Registry()
    {
        if (const char *env = std::getenv("MGX_FAILPOINTS"))
            parseListLocked(env);
    }

    /** Ctor-only: no registered points yet, everything is pending. */
    void parseListLocked(const std::string &list)
    {
        std::size_t pos = 0;
        while (pos < list.size()) {
            std::size_t end = list.find(',', pos);
            if (end == std::string::npos)
                end = list.size();
            const std::string entry = list.substr(pos, end - pos);
            const std::size_t eq = entry.find('=');
            if (eq != std::string::npos && eq > 0)
                pending_[entry.substr(0, eq)] = entry.substr(eq + 1);
            pos = end + 1;
        }
    }

    std::mutex mu_;
    // Points are heap-owned and never destroyed while the process
    // lives; &*value stays stable across rehashes.
    std::map<std::string, std::unique_ptr<Point>> points_;
    std::map<std::string, std::string> pending_;
};

Point::Point(std::string name)
    : state_(new State), name_(std::move(name))
{
}

Point &
Point::get(std::string_view name)
{
    return Registry::instance().get(name);
}

bool
Point::fire()
{
    std::lock_guard<std::mutex> lk(state_->mu);
    ++state_->evaluations;
    bool hit = false;
    switch (state_->mode) {
    case Mode::Off:
        break;
    case Mode::Times:
        if (state_->n > 0) {
            --state_->n;
            hit = true;
        }
        break;
    case Mode::EveryN:
        hit = state_->evaluations % state_->n == 0;
        break;
    case Mode::Prob:
        hit = lcgNext(&state_->rng) % 1000000u < state_->probPermille;
        break;
    case Mode::Always:
        hit = true;
        break;
    }
    if (hit)
        ++state_->hits;
    return hit;
}

bool
Point::arm(const std::string &spec)
{
    Mode mode;
    u64 n = 0;
    u32 prob = 0;
    u64 seed = fnv1a(name_);
    if (spec == "off") {
        mode = Mode::Off;
    } else if (spec == "once") {
        mode = Mode::Times;
        n = 1;
    } else if (spec == "always") {
        mode = Mode::Always;
    } else if (spec.rfind("times:", 0) == 0) {
        mode = Mode::Times;
        char *end = nullptr;
        n = std::strtoull(spec.c_str() + 6, &end, 10);
        if (end == nullptr || *end != '\0' || n == 0)
            return false;
    } else if (spec.rfind("every:", 0) == 0) {
        mode = Mode::EveryN;
        char *end = nullptr;
        n = std::strtoull(spec.c_str() + 6, &end, 10);
        if (end == nullptr || *end != '\0' || n == 0)
            return false;
    } else if (spec.rfind("prob:", 0) == 0) {
        mode = Mode::Prob;
        char *end = nullptr;
        const double p = std::strtod(spec.c_str() + 5, &end);
        if (end == nullptr || p < 0.0 || p > 1.0)
            return false;
        if (*end == ':') {
            char *seedEnd = nullptr;
            seed = std::strtoull(end + 1, &seedEnd, 10);
            if (seedEnd == nullptr || *seedEnd != '\0')
                return false;
        } else if (*end != '\0') {
            return false;
        }
        prob = static_cast<u32>(p * 1000000.0);
    } else {
        return false;
    }
    std::lock_guard<std::mutex> lk(state_->mu);
    state_->mode = mode;
    state_->n = n;
    state_->probPermille = prob;
    state_->rng = seed;
    state_->spec = spec;
    return true;
}

void
Point::disarm()
{
    std::lock_guard<std::mutex> lk(state_->mu);
    state_->mode = Mode::Off;
    state_->n = 0;
    state_->spec = "off";
}

std::string
Point::spec() const
{
    std::lock_guard<std::mutex> lk(state_->mu);
    return state_->spec;
}

u64
Point::evaluations() const
{
    std::lock_guard<std::mutex> lk(state_->mu);
    return state_->evaluations;
}

u64
Point::hits() const
{
    std::lock_guard<std::mutex> lk(state_->mu);
    return state_->hits;
}

bool
armSpecList(const std::string &list, std::string *error)
{
    std::size_t pos = 0;
    while (pos < list.size()) {
        std::size_t end = list.find(',', pos);
        if (end == std::string::npos)
            end = list.size();
        const std::string entry = list.substr(pos, end - pos);
        pos = end + 1;
        if (entry.empty())
            continue;
        const std::size_t eq = entry.find('=');
        if (eq == std::string::npos || eq == 0) {
            if (error != nullptr)
                *error = "bad failpoint entry '" + entry +
                         "' (want name=spec)";
            return false;
        }
        if (!Registry::instance().armSpec(
                entry.substr(0, eq), entry.substr(eq + 1), error))
            return false;
    }
    return true;
}

void
disarmAll()
{
    Registry::instance().disarmAll();
}

void
resetCounters()
{
    Registry::instance().resetCounters();
}

std::vector<PointInfo>
all()
{
    return Registry::instance().all();
}

} // namespace mgx::failpoint
