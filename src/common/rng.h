/**
 * @file
 * Deterministic random-number generation for workload synthesis.
 *
 * Every simulated workload (graph topology, genome reads, DLRM embedding
 * indices, ...) must be reproducible run-to-run, so all randomness flows
 * through this xoshiro256** generator seeded explicitly by the caller.
 */

#ifndef MGX_COMMON_RNG_H
#define MGX_COMMON_RNG_H

#include <cmath>

#include "types.h"

namespace mgx {

/**
 * xoshiro256** PRNG. Small, fast, and fully deterministic across
 * platforms (unlike std::mt19937 distributions, whose output is not
 * specified identically across standard-library implementations).
 */
class Rng
{
  public:
    /** Seed via splitmix64 expansion of a single 64-bit value. */
    explicit Rng(u64 seed) { reseed(seed); }

    /** Re-initialize the state from @p seed. */
    void
    reseed(u64 seed)
    {
        // splitmix64 to fill the four state words.
        u64 x = seed;
        for (auto &word : state_) {
            x += 0x9e3779b97f4a7c15ULL;
            u64 z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
            word = z ^ (z >> 31);
        }
    }

    /** Next raw 64-bit value. */
    u64
    next()
    {
        const u64 result = rotl(state_[1] * 5, 7) * 9;
        const u64 t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound). @p bound must be nonzero. */
    u64
    below(u64 bound)
    {
        // Lemire-style rejection-free multiply-shift is fine here; the
        // tiny modulo bias of a plain multiply-high is acceptable for
        // workload synthesis but we reject to keep it exact.
        u64 threshold = (-bound) % bound;
        for (;;) {
            u64 r = next();
            if (r >= threshold)
                return r % bound;
        }
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli trial with probability @p p. */
    bool chance(double p) { return uniform() < p; }

    /**
     * Geometric-ish heavy-tail sample used for power-law degree
     * distributions: returns floor(x) where x ~ Pareto(alpha, xmin).
     */
    u64
    pareto(double alpha, double xmin)
    {
        double u = 1.0 - uniform(); // (0, 1]
        return static_cast<u64>(xmin / std::pow(u, 1.0 / alpha));
    }

  private:
    static constexpr u64
    rotl(u64 v, int n)
    {
        return (v << n) | (v >> (64 - n));
    }

    u64 state_[4] = {};
};

} // namespace mgx

#endif // MGX_COMMON_RNG_H
