/**
 * @file
 * Failpoint registry: deterministic fault injection for tests and
 * chaos benches.
 *
 * A failpoint is a named site in production code where a failure can
 * be simulated on demand — a syscall boundary in trace_io, an accept
 * or recv in the service loop. Sites evaluate `Point::fire()`; the
 * call is a cheap no-op unless the point has been armed, either
 * programmatically (`arm`, `armSpecList`) or through the
 * `MGX_FAILPOINTS` environment variable, which is parsed once when
 * the registry first initializes:
 *
 *   MGX_FAILPOINTS="trace_io.write.enospc=once,trace_io.lock.eintr=times:5"
 *
 * Arm specs:
 *   off          never fires (default)
 *   once         fires on the first evaluation only (= times:1)
 *   times:N      fires on the first N evaluations (EINTR storms)
 *   every:N      fires on every Nth evaluation (N >= 1)
 *   prob:P       fires with probability P in [0,1], from a
 *   prob:P:SEED  deterministic per-point LCG (seeded by the point
 *                name unless SEED is given)
 *   always       fires on every evaluation
 *
 * Points register themselves on first `Point::get(name)` — usually
 * from a namespace-scope `static Point &` in the file that owns the
 * site, so every failpoint in a linked binary is visible to
 * `failpoint::all()` before any test arms it. Specs for names that
 * have not registered yet are held and applied on registration, so
 * env arming works regardless of static-init order.
 *
 * Everything is thread-safe; `fire()` takes a per-point mutex, so
 * keep sites at coarse boundaries (per file, per phase, per request —
 * never per trace line).
 */
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "common/types.h"

namespace mgx::failpoint {

class Point
{
  public:
    /** Register-or-fetch; the returned reference is stable forever. */
    static Point &get(std::string_view name);

    /**
     * Evaluate the point: true when the armed spec says this site
     * should simulate its failure now. Counts evaluations and hits.
     */
    bool fire();

    /** Arm with a spec string (see file comment). False = bad spec. */
    bool arm(const std::string &spec);
    void disarm();

    const std::string &name() const { return name_; }
    std::string spec() const;
    u64 evaluations() const;
    u64 hits() const;

  private:
    explicit Point(std::string name);
    Point(const Point &) = delete;
    Point &operator=(const Point &) = delete;

    friend class Registry;
    struct State;
    State *state_; // owned by the registry, lives forever
    std::string name_;
};

/** One registered point's observable state, for tests and stats. */
struct PointInfo {
    std::string name;
    std::string spec;
    u64 evaluations = 0;
    u64 hits = 0;
};

/**
 * Arm a comma-separated `name=spec` list (the MGX_FAILPOINTS
 * grammar). Unknown names are held and applied when the point
 * registers. Returns false and fills `error` on a malformed entry;
 * earlier entries in the list stay armed.
 */
bool armSpecList(const std::string &list, std::string *error = nullptr);

/** Disarm every registered point and drop pending specs. */
void disarmAll();

/** Reset hit/evaluation counters on every registered point. */
void resetCounters();

/** Snapshot of every registered point, sorted by name. */
std::vector<PointInfo> all();

} // namespace mgx::failpoint
