/**
 * @file
 * Small bit-manipulation helpers used across the DRAM address mapper, the
 * crypto substrate and the protection metadata layouts.
 */

#ifndef MGX_COMMON_BITOPS_H
#define MGX_COMMON_BITOPS_H

#include <bit>
#include <cassert>

#include "types.h"

namespace mgx {

/** True iff @p v is a power of two (0 is not). */
constexpr bool
isPow2(u64 v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/** log2 of a power-of-two value. */
constexpr u32
log2i(u64 v)
{
    return static_cast<u32>(std::bit_width(v) - 1);
}

/** Smallest power of two >= @p v. */
constexpr u64
ceilPow2(u64 v)
{
    return std::bit_ceil(v);
}

/** Integer division rounding up. */
constexpr u64
divCeil(u64 a, u64 b)
{
    return (a + b - 1) / b;
}

/** Round @p v up to a multiple of @p align (align must be a power of two). */
constexpr u64
alignUp(u64 v, u64 align)
{
    return (v + align - 1) & ~(align - 1);
}

/** Round @p v down to a multiple of @p align (power of two). */
constexpr u64
alignDown(u64 v, u64 align)
{
    return v & ~(align - 1);
}

/** Extract bits [lo, lo+len) of @p v. */
constexpr u64
bits(u64 v, u32 lo, u32 len)
{
    return (v >> lo) & ((len >= 64) ? ~u64{0} : ((u64{1} << len) - 1));
}

/** Rotate left within 32 bits. */
constexpr u32
rotl32(u32 v, u32 n)
{
    return std::rotl(v, static_cast<int>(n));
}

/** Rotate right within 32 bits. */
constexpr u32
rotr32(u32 v, u32 n)
{
    return std::rotr(v, static_cast<int>(n));
}

} // namespace mgx

#endif // MGX_COMMON_BITOPS_H
