#include "log.h"

#include <cstdarg>

namespace mgx {
namespace detail {

LogLevel &
logThreshold()
{
    static LogLevel level = LogLevel::Info;
    return level;
}

static const char *
levelTag(LogLevel lvl)
{
    switch (lvl) {
      case LogLevel::Debug: return "debug";
      case LogLevel::Info: return "info";
      case LogLevel::Warn: return "warn";
      case LogLevel::Error: return "error";
    }
    return "?";
}

void
vlog(LogLevel lvl, const char *fmt, ...)
{
    if (static_cast<int>(lvl) < static_cast<int>(logThreshold()))
        return;
    std::fprintf(stderr, "[mgx:%s] ", levelTag(lvl));
    va_list ap;
    va_start(ap, fmt);
    std::vfprintf(stderr, fmt, ap);
    va_end(ap);
    std::fputc('\n', stderr);
}

} // namespace detail

void
setLogLevel(LogLevel lvl)
{
    detail::logThreshold() = lvl;
}

void
fatal(const char *fmt, ...)
{
    std::fprintf(stderr, "[mgx:fatal] ");
    va_list ap;
    va_start(ap, fmt);
    std::vfprintf(stderr, fmt, ap);
    va_end(ap);
    std::fputc('\n', stderr);
    std::exit(1);
}

void
panic(const char *fmt, ...)
{
    std::fprintf(stderr, "[mgx:panic] ");
    va_list ap;
    va_start(ap, fmt);
    std::vfprintf(stderr, fmt, ap);
    va_end(ap);
    std::fputc('\n', stderr);
    std::abort();
}

} // namespace mgx
