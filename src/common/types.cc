#include "types.h"

namespace mgx {

const char *
dataClassName(DataClass dc)
{
    switch (dc) {
      case DataClass::Feature: return "feature";
      case DataClass::Weight: return "weight";
      case DataClass::Gradient: return "gradient";
      case DataClass::GraphMatrix: return "graph-matrix";
      case DataClass::GraphVector: return "graph-vector";
      case DataClass::GenomeTable: return "genome-table";
      case DataClass::GenomeQuery: return "genome-query";
      case DataClass::VideoFrame: return "video-frame";
      case DataClass::Generic: return "generic";
    }
    return "unknown";
}

} // namespace mgx
