/**
 * @file
 * CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) — the checksum
 * guarding `*.trace` cache files against truncation and bit rot.
 *
 * zlib-style incremental API: start from 0 and feed chunks in order;
 * `crc32Update(crc32Update(0, a, na), b, nb)` equals the CRC of the
 * concatenation. The classic check vector: crc32Update(0,
 * "123456789", 9) == 0xCBF43926.
 */
#pragma once

#include <cstddef>

#include "common/types.h"

namespace mgx {

inline u32
crc32Update(u32 crc, const void *data, std::size_t len)
{
    static const auto table = [] {
        struct Table {
            u32 entry[256];
        } t;
        for (u32 i = 0; i < 256; ++i) {
            u32 c = i;
            for (int bit = 0; bit < 8; ++bit)
                c = (c >> 1) ^ (0xEDB88320u & (0u - (c & 1u)));
            t.entry[i] = c;
        }
        return t;
    }();
    const unsigned char *p = static_cast<const unsigned char *>(data);
    crc ^= 0xFFFFFFFFu;
    for (std::size_t i = 0; i < len; ++i)
        crc = (crc >> 8) ^ table.entry[(crc ^ p[i]) & 0xFFu];
    return crc ^ 0xFFFFFFFFu;
}

} // namespace mgx
