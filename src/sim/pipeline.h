/**
 * @file
 * Pipelined intra-cell replay: one workload x scheme cell split onto
 * two threads — a producer draining a PhaseSource (a streaming
 * kernel, a trace-cache file, ...) into a bounded SPSC PhaseRing, and
 * the calling thread replaying phases off the ring through the
 * unchanged PerfModel::run(PhaseSource&) path.
 *
 * Phases cross the ring strictly in production order and only
 * serialize through the perf model's mem_free recurrence, which the
 * consumer alone advances — so a pipelined replay is bitwise-
 * identical to a serial one on every RunResult field derived from the
 * phase stream (cycles, traffic, access counts, metaCache counters,
 * traceBytes, peakPhaseBytes). Only the pipeline occupancy/stall
 * counters themselves (RunResult::pipeline*) depend on thread
 * scheduling and vary run to run.
 */

#ifndef MGX_SIM_PIPELINE_H
#define MGX_SIM_PIPELINE_H

#include <cstddef>

#include "core/phase_ring.h"
#include "core/phase_stream.h"
#include "perf_model.h"

namespace mgx::sim {

class ShardPool; // sim/shard.h

/** Knobs for one pipelined replay. */
struct PipelineOptions
{
    /**
     * Ring slots. Results are invariant under the capacity (see
     * pipeline_replay_test); it only tunes how far the producer may
     * run ahead of the replay.
     */
    std::size_t ringCapacity = 8;

    /**
     * Optional producer-side tee: sees every phase (on the producer
     * thread) before it enters the ring. Used to populate the on-disk
     * trace cache while a cache-miss cell replays concurrently. The
     * caller must not touch the tee until runPipelined() returns.
     */
    core::PhaseSink *tee = nullptr;

    /**
     * Optional channel-shard pool (see sim/shard.h): the consumer
     * side replays each phase's DRAM lanes across the pool instead of
     * inline, composing the producer/consumer split with channel
     * sharding — still bitwise-identical on every deterministic
     * field. The pool must outlive the call and drive the model's
     * DramSystem.
     */
    ShardPool *shard = nullptr;
};

/**
 * Replay @p source through @p model with kernel streaming and replay
 * pipelined over a bounded SPSC ring. Blocks until both sides finish;
 * the producer thread is always joined on return, including when the
 * producer's drain throws (the exception resurfaces here, on the
 * calling thread, after the buffered prefix has been replayed).
 *
 * The returned RunResult carries the ring's occupancy/stall counters
 * (pipelineProducerWaits / pipelineConsumerWaits /
 * pipelineMaxOccupancy); every other field is bitwise-identical to
 * model.run(source) on one thread.
 */
RunResult runPipelined(PerfModel &model, core::PhaseSource &source,
                       const PipelineOptions &options = {});

} // namespace mgx::sim

#endif // MGX_SIM_PIPELINE_H
