/**
 * @file
 * Result sinks for experiment ResultSets: the classic fixed-width
 * terminal table and a machine-readable JSON writer for trajectory
 * tracking (BENCH_*.json-style artifacts).
 *
 * JSON schema (`"schema": "mgx-resultset-v1"`): one record per grid
 * cell with workload / platform / scheme coordinates, raw cycle and
 * traffic numbers, the traffic breakdown, and the NP-normalized
 * ratios (null when the grid has no NP baseline for that cell — the
 * missing-baseline case is explicit, not a fake 0).
 */

#ifndef MGX_SIM_REPORT_H
#define MGX_SIM_REPORT_H

#include <cstdio>
#include <iosfwd>
#include <string>

#include "experiment.h"

namespace mgx::sim {

/** Parse a scheme name ("NP", "MGX_VN", ...); fatal on unknown. */
protection::Scheme schemeByName(const std::string &name);

/**
 * Print @p rs as a fixed-width table, one row per grid cell:
 * workload, platform, scheme, time, normalized time, traffic ratio.
 */
void printTable(const ResultSet &rs, std::FILE *out = stdout);

/** Serialize @p rs as mgx-resultset-v1 JSON. */
void writeJson(const ResultSet &rs, std::ostream &out);

/** writeJson into a string (tests, small sets). */
std::string toJson(const ResultSet &rs);

} // namespace mgx::sim

#endif // MGX_SIM_REPORT_H
