#include "pipeline.h"

#include <thread>

namespace mgx::sim {

RunResult
runPipelined(PerfModel &model, core::PhaseSource &source,
             const PipelineOptions &options)
{
    core::PhaseRing ring(options.ringCapacity);

    // Producer: drain the source into the ring (through the tee, if
    // any). Every exit path closes the ring so the consumer can never
    // block forever: a clean drain and a consumer-initiated stop both
    // end the stream, and a throwing producer hands its exception to
    // the consumer via fail().
    std::thread producer([&ring, &source, tee = options.tee] {
        try {
            core::RingPushSink sink(ring, tee);
            source.drainTo(sink);
            ring.closeProducer();
        } catch (const core::RingPushSink::ConsumerClosed &) {
            ring.closeProducer(); // consumer stopped early: clean exit
        } catch (...) {
            ring.fail(std::current_exception());
        }
    });

    RunResult result;
    try {
        core::PhaseRingSource ringSource(ring);
        result = options.shard != nullptr
                     ? model.run(ringSource, *options.shard)
                     : model.run(ringSource);
    } catch (...) {
        // Replay failed (or the producer's exception resurfaced from
        // pop()): release and join the producer before rethrowing so
        // no thread outlives the call.
        ring.closeConsumer();
        producer.join();
        throw;
    }
    ring.closeConsumer();
    producer.join();

    const core::PhaseRing::Stats stats = ring.stats();
    result.pipelineProducerWaits = stats.producerWaits;
    result.pipelineConsumerWaits = stats.consumerWaits;
    result.pipelineMaxOccupancy = stats.maxOccupancy;
    return result;
}

} // namespace mgx::sim
