#include "shard.h"

#include <algorithm>

namespace mgx::sim {

ShardPool::ShardPool(dram::DramSystem &dram, u32 threads)
    : dram_(dram),
      width_(std::clamp(threads, 1u, std::max(1u, dram.channelCount()))),
      loads_(dram.channelCount()), results_(dram.channelCount())
{
    workers_.reserve(width_ - 1);
    for (u32 p = 1; p < width_; ++p)
        workers_.emplace_back([this, p] { workerLoop(p); });
}

ShardPool::~ShardPool()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        stop_ = true;
    }
    startCv_.notify_all();
    for (std::thread &t : workers_)
        t.join();
}

void
ShardPool::replayLanes(u32 p)
{
    const dram::CaptureBuffer &buf = *buf_;
    const Cycles issue = issue_;
    for (u32 c = p; c < buf.channels(); c += width_) {
        LaneResult r;
        dram::DramChannel &channel = dram_.channel(c);
        for (const dram::CapturedRequest &req : buf.lane(c)) {
            const Cycles t =
                channel.access(req.coord, req.isWrite, issue);
            Cycles &group = req.crypto ? r.cryptoMax : r.plainMax;
            group = std::max(group, t);
        }
        results_[c] = r;
    }
}

void
ShardPool::workerLoop(u32 p)
{
    u64 seen = 0;
    for (;;) {
        {
            std::unique_lock<std::mutex> lock(mu_);
            startCv_.wait(lock, [this, seen] {
                return stop_ || generation_ != seen;
            });
            if (stop_)
                return;
            seen = generation_;
        }
        // buf_/issue_ were written before generation_ was bumped under
        // mu_, so the wait above orders them; results_ writes below are
        // ordered before the caller's read by the pending_ handshake.
        replayLanes(p);
        bool last = false;
        {
            std::lock_guard<std::mutex> lock(mu_);
            last = --pending_ == 0;
        }
        if (last)
            doneCv_.notify_one();
    }
}

Cycles
ShardPool::replay(const dram::CaptureBuffer &buf, Cycles issue,
                  Cycles crypto_latency)
{
    const u32 channels = buf.channels();
    if (width_ > 1) {
        std::lock_guard<std::mutex> lock(mu_);
        buf_ = &buf;
        issue_ = issue;
        pending_ = width_ - 1;
        ++generation_;
    }
    if (width_ > 1)
        startCv_.notify_all();
    else {
        buf_ = &buf;
        issue_ = issue;
    }

    // The calling thread is participant 0.
    replayLanes(0);

    if (width_ > 1) {
        std::unique_lock<std::mutex> lock(mu_);
        if (pending_ != 0) {
            ++mergeWaits_;
            doneCv_.wait(lock, [this] { return pending_ == 0; });
        }
    }

    // Merge: data_ready is the max over channel completions, with the
    // constant AES latency folded onto the crypto group (see file
    // header of shard.h). Channel iteration order is fixed, and max
    // and += are insensitive to which thread produced each lane, so
    // the merge is deterministic for every pool width.
    Cycles ready = issue;
    Cycles crypto_max = 0;
    for (u32 c = 0; c < channels; ++c) {
        if (buf.lane(c).empty())
            continue;
        const LaneResult &r = results_[c];
        ready = std::max(ready, r.plainMax);
        crypto_max = std::max(crypto_max, r.cryptoMax);
        const Cycles last = std::max(r.plainMax, r.cryptoMax);
        loads_[c].requests += buf.lane(c).size();
        loads_[c].busyCycles += last > issue ? last - issue : 0;
    }
    if (crypto_max != 0)
        ready = std::max(ready, crypto_max + crypto_latency);
    return ready;
}

} // namespace mgx::sim
