/**
 * @file
 * Text serialization of kernel traces.
 *
 * One line per phase header and one per access, so traces can be
 * diffed, inspected with standard tools, archived as experiment
 * artifacts, and replayed without re-running the kernel:
 *
 *   P <name> <computeCycles>
 *   A <r|w> <addr-hex> <bytes> <class> <vn-hex> <macGran>
 */

#ifndef MGX_SIM_TRACE_IO_H
#define MGX_SIM_TRACE_IO_H

#include <iosfwd>
#include <string>

#include "core/phase.h"

namespace mgx::sim {

/** Serialize @p trace to @p out. */
void writeTrace(const core::Trace &trace, std::ostream &out);

/** Serialize to a string (tests / small traces). */
std::string traceToString(const core::Trace &trace);

/**
 * Parse a serialized trace. Fatal on malformed input with the
 * offending line number.
 */
core::Trace readTrace(std::istream &in);

/** Parse from a string. */
core::Trace traceFromString(const std::string &text);

} // namespace mgx::sim

#endif // MGX_SIM_TRACE_IO_H
