/**
 * @file
 * Text serialization of kernel traces.
 *
 * One line per phase header and one per access, so traces can be
 * diffed, inspected with standard tools, archived as experiment
 * artifacts, and replayed without re-running the kernel:
 *
 *   P <name> <computeCycles>
 *   A <r|w> <addr-hex> <bytes> <class> <vn-hex> <macGran>
 *
 * Both directions stream: TraceWriteSink / TraceFileWriteSink are
 * PhaseSinks that serialize phases as a producer emits them (so a
 * kernel stream can be archived without materializing), and
 * FilePhaseSource replays a serialized trace as a pull-based
 * PhaseSource holding one phase in memory at a time. The
 * whole-trace read/write functions are thin wrappers over the same
 * line format, so the two paths cannot drift.
 */

#ifndef MGX_SIM_TRACE_IO_H
#define MGX_SIM_TRACE_IO_H

#include <iosfwd>
#include <memory>
#include <optional>
#include <string>

#include "core/phase.h"
#include "core/phase_stream.h"

namespace mgx::sim {

/** Serialize @p trace to @p out. */
void writeTrace(const core::Trace &trace, std::ostream &out);

/** Serialize to a string (tests / small traces). */
std::string traceToString(const core::Trace &trace);

/**
 * Parse a serialized trace. Fatal on malformed input with the
 * offending line number.
 */
core::Trace readTrace(std::istream &in);

/** Parse from a string. */
core::Trace traceFromString(const std::string &text);

/** Read a trace from @p path. Fatal on IO or parse errors. */
core::Trace readTraceFile(const std::string &path);

/**
 * Non-fatal variant of readTraceFile: nullopt when @p path cannot be
 * opened — for callers racing a concurrent evictor in a shared trace
 * cache (the file is either absent or complete, thanks to the atomic
 * tmp+rename publish, so parse errors stay fatal).
 */
std::optional<core::Trace>
readTraceFileIfReadable(const std::string &path);

/**
 * Cross-process mutual exclusion around one trace-cache key: an
 * exclusive advisory flock(2) on `<path>.lock`, held for the object's
 * lifetime. Two processes (or two threads — each acquisition opens
 * its own descriptor) missing on the same key serialize here, so only
 * the first generates the trace; the second re-checks after acquiring
 * and finds the published file. The kernel drops the lock when the
 * holder dies, so a crashed generator never wedges the key. The
 * `.lock` file itself is left behind (unlinking it would race new
 * acquirers); LRU eviction only ever deletes `*.trace` files, so the
 * locks never collide with it.
 */
class TraceCacheLock
{
  public:
    /** Blocks until the lock on `<trace_path>.lock` is held. Fatal on
     *  IO errors (e.g. the cache directory vanished). */
    explicit TraceCacheLock(const std::string &trace_path);
    ~TraceCacheLock();

    TraceCacheLock(const TraceCacheLock &) = delete;
    TraceCacheLock &operator=(const TraceCacheLock &) = delete;

    const std::string &lockPath() const { return lockPath_; }

  private:
    std::string lockPath_;
    int fd_ = -1;
};

/**
 * Atomically publish @p trace at @p path: serialize into a
 * process-unique temporary sibling, then rename it into place, so a
 * concurrent reader (another experiment process sharing a trace
 * cache) never observes a partially written trace. Fatal on IO
 * errors.
 */
void writeTraceFile(const core::Trace &trace, const std::string &path);

/** PhaseSink that serializes each consumed phase to a stream. */
class TraceWriteSink final : public core::PhaseSink
{
  public:
    explicit TraceWriteSink(std::ostream &out) : out_(&out) {}

    void consume(const core::Phase &phase) override;

    u64 phases() const { return phases_; }
    u64 dataBytes() const { return dataBytes_; }

  private:
    std::ostream *out_;
    u64 phases_ = 0;
    u64 dataBytes_ = 0;
};

/**
 * Streaming equivalent of writeTraceFile(): consumes phases into a
 * process-unique temporary and publishes it at @p path by atomic
 * rename when finish() is called. Destroying the sink without
 * finish() discards the temporary (abandoned write). Fatal on IO
 * errors.
 */
class TraceFileWriteSink final : public core::PhaseSink
{
  public:
    explicit TraceFileWriteSink(const std::string &path);
    ~TraceFileWriteSink() override;

    TraceFileWriteSink(const TraceFileWriteSink &) = delete;
    TraceFileWriteSink &operator=(const TraceFileWriteSink &) = delete;

    void consume(const core::Phase &phase) override;

    /** Flush and atomically publish the file. Call exactly once. */
    void finish();

    u64 phases() const;
    u64 dataBytes() const;

  private:
    struct Impl;
    std::unique_ptr<Impl> impl_;
};

/**
 * Pull-based reader of a serialized trace: emits one phase per
 * nextChunk() through a reused scratch buffer, so replaying a
 * trace file needs memory for one phase, not the workload. Fatal on
 * open failure and on malformed input (with the line number), like
 * readTraceFile.
 */
class FilePhaseSource final : public core::PhaseSource
{
  public:
    explicit FilePhaseSource(const std::string &path);
    ~FilePhaseSource() override;

    /**
     * Non-fatal variant: nullptr when @p path cannot be opened — for
     * callers with a fallback (e.g. a shared trace cache whose file a
     * concurrent process may have evicted between the existence check
     * and the replay).
     */
    static std::unique_ptr<FilePhaseSource>
    openIfReadable(const std::string &path);

    bool nextChunk(core::PhaseSink &sink) override;

  private:
    struct Impl;

    explicit FilePhaseSource(std::unique_ptr<Impl> impl);

    std::unique_ptr<Impl> impl_;
};

} // namespace mgx::sim

#endif // MGX_SIM_TRACE_IO_H
