/**
 * @file
 * Text serialization of kernel traces.
 *
 * One line per phase header and one per access, so traces can be
 * diffed, inspected with standard tools, archived as experiment
 * artifacts, and replayed without re-running the kernel:
 *
 *   P <name> <computeCycles>
 *   A <r|w> <addr-hex> <bytes> <class> <vn-hex> <macGran>
 */

#ifndef MGX_SIM_TRACE_IO_H
#define MGX_SIM_TRACE_IO_H

#include <iosfwd>
#include <string>

#include "core/phase.h"

namespace mgx::sim {

/** Serialize @p trace to @p out. */
void writeTrace(const core::Trace &trace, std::ostream &out);

/** Serialize to a string (tests / small traces). */
std::string traceToString(const core::Trace &trace);

/**
 * Parse a serialized trace. Fatal on malformed input with the
 * offending line number.
 */
core::Trace readTrace(std::istream &in);

/** Parse from a string. */
core::Trace traceFromString(const std::string &text);

/** Read a trace from @p path. Fatal on IO or parse errors. */
core::Trace readTraceFile(const std::string &path);

/**
 * Atomically publish @p trace at @p path: serialize into a
 * process-unique temporary sibling, then rename it into place, so a
 * concurrent reader (another experiment process sharing a trace
 * cache) never observes a partially written trace. Fatal on IO
 * errors.
 */
void writeTraceFile(const core::Trace &trace, const std::string &path);

} // namespace mgx::sim

#endif // MGX_SIM_TRACE_IO_H
