/**
 * @file
 * Text serialization of kernel traces.
 *
 * One line per phase header and one per access, so traces can be
 * diffed, inspected with standard tools, archived as experiment
 * artifacts, and replayed without re-running the kernel:
 *
 *   P <name> <computeCycles>
 *   A <r|w> <addr-hex> <bytes> <class> <vn-hex> <macGran>
 *
 * Files written by TraceFileWriteSink (and writeTraceFile, which
 * wraps it) carry an integrity envelope around that payload — a
 * versioned magic header and a running CRC32 footer:
 *
 *   M mgx-trace 2
 *   P ...                        | payload, CRC32-covered
 *   A ...                        | byte for byte
 *   C <crc32-hex> <payloadBytes>
 *
 * Readers verify the envelope when present: a CRC or byte-count
 * mismatch, a missing footer (truncation), or any malformed line
 * raises TraceIoError instead of killing the process, so a daemon
 * sharing a trace-cache directory with unreliable disks and peer
 * processes can quarantine the file (quarantineTraceFile) and
 * regenerate from the kernel. Headerless legacy streams still parse
 * in lenient mode — writeTrace/traceToString stay envelope-free so
 * dumps remain diffable and content comparisons format-agnostic —
 * while `requireChecksum` rejects any file without a verified
 * envelope (what Experiment uses for cache files, where v2 names
 * guarantee one).
 *
 * Both directions stream: TraceWriteSink / TraceFileWriteSink are
 * PhaseSinks that serialize phases as a producer emits them (so a
 * kernel stream can be archived without materializing), and
 * FilePhaseSource replays a serialized trace as a pull-based
 * PhaseSource holding one phase in memory at a time. The
 * whole-trace read/write functions are thin wrappers over the same
 * line format, so the two paths cannot drift.
 *
 * Every filesystem boundary in this file is a named failpoint (see
 * common/failpoint.h, `trace_io.*`), so tests and chaos benches can
 * deterministically inject ENOSPC, torn renames, corrupt reads, and
 * EINTR storms.
 */

#ifndef MGX_SIM_TRACE_IO_H
#define MGX_SIM_TRACE_IO_H

#include <iosfwd>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>

#include "core/phase.h"
#include "core/phase_stream.h"

namespace mgx::sim {

/** Trace-file format version written by TraceFileWriteSink. */
inline constexpr unsigned kTraceFormatVersion = 2;

/**
 * Any trace I/O failure: open/write/rename errors, malformed lines
 * (with the line number), checksum mismatches, truncation. CLIs let
 * it propagate to a fatal top-level handler; the Experiment cache
 * paths and the serve daemon catch it and degrade.
 */
class TraceIoError : public std::runtime_error
{
  public:
    explicit TraceIoError(const std::string &what)
        : std::runtime_error(what)
    {
    }
};

/** Serialize @p trace to @p out (payload only, no envelope). */
void writeTrace(const core::Trace &trace, std::ostream &out);

/** Serialize to a string (tests / small traces). */
std::string traceToString(const core::Trace &trace);

/**
 * Parse a serialized trace. Throws TraceIoError on malformed input
 * with the offending line number. @p require_checksum additionally
 * rejects input without a verified integrity envelope.
 */
core::Trace readTrace(std::istream &in, bool require_checksum = false);

/** Parse from a string. */
core::Trace traceFromString(const std::string &text);

/** Read a trace from @p path. Throws TraceIoError on IO or parse
 *  errors. */
core::Trace readTraceFile(const std::string &path);

/**
 * Non-fatal-open variant of readTraceFile: nullopt when @p path
 * cannot be opened — for callers racing a concurrent evictor in a
 * shared trace cache. Parse/checksum errors on a file that *did*
 * open still throw TraceIoError (the caller quarantines).
 */
std::optional<core::Trace>
readTraceFileIfReadable(const std::string &path,
                        bool require_checksum = false);

/**
 * Move a failed-verification trace file out of the cache's way:
 * rename `<path>` to `<path>.bad` (replacing any previous quarantine
 * of the same key) so the next miss regenerates while the corrupt
 * bytes stay inspectable. Returns false if the rename failed (the
 * file is then removed outright as a last resort). Never throws.
 */
bool quarantineTraceFile(const std::string &path) noexcept;

/**
 * Cross-process mutual exclusion around one trace-cache key: an
 * exclusive advisory flock(2) on `<path>.lock`, held for the object's
 * lifetime. Two processes (or two threads — each acquisition opens
 * its own descriptor) missing on the same key serialize here, so only
 * the first generates the trace; the second re-checks after acquiring
 * and finds the published file. The kernel drops the lock when the
 * holder dies, so a crashed generator never wedges the key. The
 * `.lock` file itself is left behind (unlinking it would race new
 * acquirers); LRU eviction only ever deletes `*.trace` files, so the
 * locks never collide with it. EINTR during the wait is retried.
 */
class TraceCacheLock
{
  public:
    /** Blocks until the lock on `<trace_path>.lock` is held. Throws
     *  TraceIoError on IO errors (e.g. the cache directory
     *  vanished). */
    explicit TraceCacheLock(const std::string &trace_path);
    ~TraceCacheLock();

    TraceCacheLock(const TraceCacheLock &) = delete;
    TraceCacheLock &operator=(const TraceCacheLock &) = delete;

    const std::string &lockPath() const { return lockPath_; }

  private:
    std::string lockPath_;
    int fd_ = -1;
};

/**
 * Atomically publish @p trace at @p path: serialize into a
 * process-unique temporary sibling, then rename it into place, so a
 * concurrent reader (another experiment process sharing a trace
 * cache) never observes a partially written trace. Throws
 * TraceIoError on IO errors.
 */
void writeTraceFile(const core::Trace &trace, const std::string &path);

/** PhaseSink that serializes each consumed phase to a stream. */
class TraceWriteSink final : public core::PhaseSink
{
  public:
    explicit TraceWriteSink(std::ostream &out) : out_(&out) {}

    void consume(const core::Phase &phase) override;

    u64 phases() const { return phases_; }
    u64 dataBytes() const { return dataBytes_; }

  private:
    std::ostream *out_;
    u64 phases_ = 0;
    u64 dataBytes_ = 0;
};

/**
 * Streaming equivalent of writeTraceFile(): consumes phases into a
 * process-unique temporary and publishes it at @p path by atomic
 * rename when finish() is called, wrapped in the checksummed v2
 * envelope. Destroying the sink without finish() discards the
 * temporary (abandoned write). Throws TraceIoError on IO errors; a
 * failed consume() removes the temporary before throwing, so a full
 * disk never publishes (or leaks) anything.
 */
class TraceFileWriteSink final : public core::PhaseSink
{
  public:
    explicit TraceFileWriteSink(const std::string &path);
    ~TraceFileWriteSink() override;

    TraceFileWriteSink(const TraceFileWriteSink &) = delete;
    TraceFileWriteSink &operator=(const TraceFileWriteSink &) = delete;

    void consume(const core::Phase &phase) override;

    /** Flush and atomically publish the file. Call exactly once. */
    void finish();

    u64 phases() const;
    u64 dataBytes() const;

  private:
    struct Impl;
    std::unique_ptr<Impl> impl_;
};

/**
 * Pull-based reader of a serialized trace: emits one phase per
 * nextChunk() through a reused scratch buffer, so replaying a
 * trace file needs memory for one phase, not the workload. Throws
 * TraceIoError on open failure and on malformed/corrupt input (with
 * the line number), like readTraceFile; note the checksum footer is
 * only reached by the *last* nextChunk(), so a corrupt tail
 * surfaces near the end of a replay — callers that recover must
 * discard the partial run and restart from the kernel.
 */
class FilePhaseSource final : public core::PhaseSource
{
  public:
    explicit FilePhaseSource(const std::string &path,
                             bool require_checksum = false);
    ~FilePhaseSource() override;

    /**
     * Non-fatal-open variant: nullptr when @p path cannot be opened —
     * for callers with a fallback (e.g. a shared trace cache whose
     * file a concurrent process may have evicted between the
     * existence check and the replay).
     */
    static std::unique_ptr<FilePhaseSource>
    openIfReadable(const std::string &path,
                   bool require_checksum = false);

    bool nextChunk(core::PhaseSink &sink) override;

  private:
    struct Impl;

    explicit FilePhaseSource(std::unique_ptr<Impl> impl);

    std::unique_ptr<Impl> impl_;
};

} // namespace mgx::sim

#endif // MGX_SIM_TRACE_IO_H
