#include "runner.h"

#include "common/log.h"

namespace mgx::sim {

double
SchemeComparison::normalizedTime(protection::Scheme s) const
{
    auto np = results.find(protection::Scheme::NP);
    auto it = results.find(s);
    if (np == results.end() || it == results.end() ||
        np->second.totalCycles == 0)
        return 0.0;
    return static_cast<double>(it->second.totalCycles) /
           static_cast<double>(np->second.totalCycles);
}

double
SchemeComparison::trafficIncrease(protection::Scheme s) const
{
    auto np = results.find(protection::Scheme::NP);
    auto it = results.find(s);
    if (np == results.end() || it == results.end() ||
        np->second.traffic.totalBytes() == 0)
        return 0.0;
    return static_cast<double>(it->second.traffic.totalBytes()) /
           static_cast<double>(np->second.traffic.totalBytes());
}

SchemeComparison
compareSchemes(const core::Trace &trace, const Platform &platform,
               const protection::ProtectionConfig &base,
               const std::vector<protection::Scheme> &schemes)
{
    SchemeComparison cmp;
    for (protection::Scheme scheme : schemes) {
        dram::DramSystem dram(platform.dram);
        protection::ProtectionConfig cfg = base;
        cfg.scheme = scheme;
        protection::ProtectionEngine engine(cfg, &dram);
        PerfModel model(&engine, platform.clockMhz);
        cmp.results[scheme] = model.run(trace);
    }
    return cmp;
}

std::vector<protection::Scheme>
allSchemes()
{
    using protection::Scheme;
    return {Scheme::NP, Scheme::MGX, Scheme::MGX_VN, Scheme::MGX_MAC,
            Scheme::BP};
}

std::vector<protection::Scheme>
trafficSchemes()
{
    using protection::Scheme;
    return {Scheme::NP, Scheme::MGX, Scheme::BP};
}

Platform
cloudPlatform()
{
    return {"Cloud", 700.0, dram::ddr4_2400(4)};
}

Platform
edgePlatform()
{
    return {"Edge", 900.0, dram::ddr4_2400(1)};
}

Platform
graphPlatform()
{
    return {"Graph", 800.0, dram::ddr4_2400(4)};
}

Platform
genomePlatform()
{
    return {"Genome", 800.0, dram::ddr4_2400(4)};
}

} // namespace mgx::sim
