#include "runner.h"

#include <cassert>

#include "experiment.h"

namespace mgx::sim {

double
SchemeComparison::normalizedTime(protection::Scheme s) const
{
    auto np = results.find(protection::Scheme::NP);
    auto it = results.find(s);
    assert(np != results.end() &&
           "SchemeComparison: no NP baseline was run");
    assert(it != results.end() &&
           "SchemeComparison: scheme was not run");
    assert(np->second.totalCycles != 0);
    return static_cast<double>(it->second.totalCycles) /
           static_cast<double>(np->second.totalCycles);
}

double
SchemeComparison::trafficIncrease(protection::Scheme s) const
{
    auto np = results.find(protection::Scheme::NP);
    auto it = results.find(s);
    assert(np != results.end() &&
           "SchemeComparison: no NP baseline was run");
    assert(it != results.end() &&
           "SchemeComparison: scheme was not run");
    assert(np->second.traffic.totalBytes() != 0);
    return static_cast<double>(it->second.traffic.totalBytes()) /
           static_cast<double>(np->second.traffic.totalBytes());
}

SchemeComparison
compareSchemes(const core::Trace &trace, const Platform &platform,
               const protection::ProtectionConfig &base,
               const std::vector<protection::Scheme> &schemes)
{
    ResultSet rs = Experiment()
                       .trace("trace", trace)
                       .platform(platform)
                       .schemes(schemes)
                       .config(base)
                       .run();
    return rs.comparison("trace", platform.name);
}

std::vector<protection::Scheme>
allSchemes()
{
    using protection::Scheme;
    return {Scheme::NP, Scheme::MGX, Scheme::MGX_VN, Scheme::MGX_MAC,
            Scheme::BP};
}

std::vector<protection::Scheme>
trafficSchemes()
{
    using protection::Scheme;
    return {Scheme::NP, Scheme::MGX, Scheme::BP};
}

Platform
cloudPlatform()
{
    return {"Cloud", 700.0, dram::ddr4_2400(4)};
}

Platform
edgePlatform()
{
    return {"Edge", 900.0, dram::ddr4_2400(1)};
}

Platform
graphPlatform()
{
    return {"Graph", 800.0, dram::ddr4_2400(4)};
}

Platform
genomePlatform()
{
    return {"Genome", 800.0, dram::ddr4_2400(4)};
}

} // namespace mgx::sim
