#include "report.h"

#include <ostream>
#include <sstream>

#include "common/log.h"

namespace mgx::sim {
namespace {

/** JSON string escaping (control chars, quote, backslash). */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

/** Shortest round-trip double representation. */
std::string
jsonNumber(double v)
{
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    return buf;
}

std::string
jsonOptional(const std::optional<double> &v)
{
    return v ? jsonNumber(*v) : "null";
}

} // namespace

protection::Scheme
schemeByName(const std::string &name)
{
    for (protection::Scheme s : protection::kAllSchemes)
        if (name == protection::schemeName(s))
            return s;
    fatal("unknown scheme '%s' (expected NP, MGX, MGX_VN, MGX_MAC "
          "or BP)",
          name.c_str());
}

void
printTable(const ResultSet &rs, std::FILE *out)
{
    std::fprintf(out, "%-36s %-8s %-8s %12s %10s %10s %10s %5s\n",
                 "workload", "platform", "scheme", "time(ms)",
                 "norm.time", "traffic", "peak(KB)", "ring");
    std::fprintf(out,
                 "--------------------------------------------------"
                 "-----------------------------------------------\n");
    for (const auto &r : rs.records()) {
        const auto norm = rs.normalizedTime(
            r.key.workload, r.key.platform, r.key.scheme);
        const auto traffic = rs.trafficIncrease(
            r.key.workload, r.key.platform, r.key.scheme);
        std::fprintf(out, "%-36s %-8s %-8s %12.3f ",
                     r.key.workload.c_str(), r.key.platform.c_str(),
                     protection::schemeName(r.key.scheme),
                     r.result.seconds * 1e3);
        if (norm)
            std::fprintf(out, "%10.3f ", *norm);
        else
            std::fprintf(out, "%10s ", "n/a");
        if (traffic)
            std::fprintf(out, "%10.3f ", *traffic);
        else
            std::fprintf(out, "%10s ", "n/a");
        // The replay's phase-buffer high-water mark: one chunk when
        // streamed, the whole trace when materialized.
        std::fprintf(out, "%10.1f ",
                     static_cast<double>(r.result.peakPhaseBytes) /
                         1024.0);
        // Pipelined cells report the SPSC ring's occupancy high-water
        // mark; serial cells have no ring.
        if (r.result.pipelineMaxOccupancy > 0)
            std::fprintf(out, "%5llu\n",
                         static_cast<unsigned long long>(
                             r.result.pipelineMaxOccupancy));
        else
            std::fprintf(out, "%5s\n", "-");
    }
}

void
writeJson(const ResultSet &rs, std::ostream &out)
{
    out << "{\n  \"schema\": \"mgx-resultset-v1\",\n  \"records\": [";
    bool first = true;
    for (const auto &r : rs.records()) {
        const auto &t = r.result.traffic;
        out << (first ? "\n" : ",\n") << "    {"
            << "\"workload\": \"" << jsonEscape(r.key.workload)
            << "\", \"platform\": \"" << jsonEscape(r.key.platform)
            << "\", \"scheme\": \""
            << protection::schemeName(r.key.scheme) << "\",\n"
            << "     \"cycles\": " << r.result.totalCycles
            << ", \"computeCycles\": " << r.result.computeCycles
            << ", \"memoryCycles\": " << r.result.memoryCycles
            << ", \"seconds\": " << jsonNumber(r.result.seconds)
            << ", \"dramAccesses\": " << r.result.dramAccesses
            << ", \"logicalAccesses\": " << r.result.logicalAccesses
            << ", \"traceBytes\": " << r.result.traceBytes
            << ", \"peakPhaseBytes\": " << r.result.peakPhaseBytes
            << ",\n"
            << "     \"metaCache\": {\"hits\": "
            << r.result.metaCacheHits
            << ", \"misses\": " << r.result.metaCacheMisses
            << ", \"writebacks\": " << r.result.metaCacheWritebacks
            << "},\n"
            // Scheduling-dependent pipeline diagnostics: all zero on
            // serial replays, nondeterministic when pipelined — mask
            // them in bitwise comparisons.
            << "     \"pipeline\": {\"producerWaits\": "
            << r.result.pipelineProducerWaits
            << ", \"consumerWaits\": " << r.result.pipelineConsumerWaits
            << ", \"maxOccupancy\": " << r.result.pipelineMaxOccupancy
            << "},\n"
            // Channel-shard diagnostics: replayThreads/channels are
            // deterministic for a given width (channels even across
            // widths); mergeWaits is scheduling-dependent like the
            // pipeline counters. Empty/zero on serial replays.
            << "     \"shard\": {\"replayThreads\": "
            << r.result.shardReplayThreads
            << ", \"mergeWaits\": " << r.result.shardMergeWaits
            << ", \"channels\": [";
        for (std::size_t c = 0; c < r.result.shardChannels.size();
             ++c) {
            const ShardChannelLoad &load = r.result.shardChannels[c];
            out << (c == 0 ? "" : ", ")
                << "{\"requests\": " << load.requests
                << ", \"busyCycles\": " << load.busyCycles << "}";
        }
        out << "]},\n"
            << "     \"traffic\": {\"data\": " << t.dataBytes
            << ", \"expand\": " << t.expandBytes
            << ", \"mac\": " << t.macBytes << ", \"vn\": " << t.vnBytes
            << ", \"tree\": " << t.treeBytes
            << ", \"total\": " << t.totalBytes() << "},\n"
            << "     \"normalizedTime\": "
            << jsonOptional(rs.normalizedTime(
                   r.key.workload, r.key.platform, r.key.scheme))
            << ", \"trafficIncrease\": "
            << jsonOptional(rs.trafficIncrease(
                   r.key.workload, r.key.platform, r.key.scheme))
            << "}";
        first = false;
    }
    out << "\n  ]\n}\n";
}

std::string
toJson(const ResultSet &rs)
{
    std::ostringstream out;
    writeJson(rs, out);
    return out.str();
}

} // namespace mgx::sim
