/**
 * @file
 * The performance evaluator (paper Fig. 11, rightmost box).
 *
 * Consumes a kernel trace phase by phase. Memory traffic of consecutive
 * phases pipelines through the protection engine and DRAM back to back,
 * while compute overlaps with the next phase's data movement — the
 * double-buffering every streaming accelerator uses. Phase i's compute
 * starts once its data has arrived and the previous phase's compute has
 * finished:
 *
 *   m_i = c_{i-1}                (memory stream is serial)
 *   c_i = engine.access(..., m_i) completion
 *   s_i = max(c_i, e_{i-1});  e_i = s_i + compute_i
 *
 * Total time is max(e_N, c_N) plus the final metadata flush.
 *
 * Two entry points share one per-phase step, so they are
 * bitwise-identical by construction: run(const Trace&) replays a
 * materialized trace, run(PhaseSource&) pulls phases straight off a
 * producer (a streaming kernel or trace file) and never holds more
 * than the producer's chunk in memory — the peak is reported as
 * RunResult::peakPhaseBytes.
 */

#ifndef MGX_SIM_PERF_MODEL_H
#define MGX_SIM_PERF_MODEL_H

#include <span>
#include <vector>

#include "core/phase.h"
#include "core/phase_stream.h"
#include "protection/protection_engine.h"

namespace mgx::sim {

class ShardPool; // sim/shard.h

/**
 * Deterministic per-channel load of one channel-sharded replay: how
 * many requests the channel served and the cycles its completions
 * extended past each phase's issue edge. Both depend only on the
 * captured lanes, not on how lanes were spread over worker threads,
 * so they are identical for every replay-thread count.
 */
struct ShardChannelLoad
{
    u64 requests = 0;
    Cycles busyCycles = 0;
};

/** Outcome of one simulated run. */
struct RunResult
{
    Cycles totalCycles = 0;   ///< controller cycles, end of run
    Cycles computeCycles = 0; ///< sum of compute (controller cycles)
    Cycles memoryCycles = 0;  ///< busy span of the memory stream
    protection::TrafficBreakdown traffic;
    u64 dramAccesses = 0;     ///< 64 B DRAM requests actually issued
    u64 logicalAccesses = 0;  ///< kernel-level requests into the engine
    u64 traceBytes = 0;       ///< trace footprint: resident (materialized
                              ///< replay) or cumulative-streamed estimate
    u64 peakPhaseBytes = 0;   ///< high-water mark of phase bytes buffered
                              ///< at once (streamed: one chunk; whole
                              ///< trace when materialized)
    u64 metaCacheHits = 0;       ///< metadata-cache hits (BP/MGX_MAC)
    u64 metaCacheMisses = 0;     ///< metadata-cache misses
    u64 metaCacheWritebacks = 0; ///< dirty metadata evictions

    /**
     * Pipelined-replay diagnostics (see sim/pipeline.h): how often
     * each side of the SPSC phase ring blocked on the other, and the
     * most phases buffered at once. All zero on a serial replay
     * (maxOccupancy >= 1 identifies a pipelined run). Unlike every
     * other field these depend on thread scheduling, so they vary run
     * to run — equivalence checks must mask them.
     */
    u64 pipelineProducerWaits = 0; ///< producer blocked: ring full
    u64 pipelineConsumerWaits = 0; ///< replay blocked: ring empty
    u64 pipelineMaxOccupancy = 0;  ///< ring high-water mark (0 = serial)

    /**
     * Channel-sharded replay diagnostics (see sim/shard.h). Zero /
     * empty on a serial replay. shardReplayThreads (the pool's
     * participant count, min(requested, channels)) and shardChannels
     * are deterministic for a given pool width; shardChannels is
     * furthermore identical across pool widths. shardMergeWaits —
     * how often the merge barrier actually blocked on a worker — is
     * thread-scheduling-dependent like the pipeline counters, so
     * equivalence checks must mask it.
     */
    u64 shardReplayThreads = 0;
    u64 shardMergeWaits = 0;
    std::vector<ShardChannelLoad> shardChannels;
    double seconds = 0.0;

    /** Memory traffic relative to the pure data traffic (>= 1). */
    double
    trafficIncrease() const
    {
        return traffic.dataBytes == 0
                   ? 1.0
                   : static_cast<double>(traffic.totalBytes()) /
                         static_cast<double>(traffic.dataBytes);
    }
};

/** Runs one trace through a protection engine and times it. */
class PerfModel
{
  public:
    /**
     * @param engine  protection engine (owns no DRAM; see runner)
     * @param accel_mhz   accelerator clock (compute cycles domain)
     * @param ctrl_mhz    DRAM controller clock (timing domain)
     */
    PerfModel(protection::ProtectionEngine *engine, double accel_mhz,
              double ctrl_mhz = 1200.0);

    /** Simulate @p trace from cycle 0; returns the aggregate result. */
    RunResult run(const core::Trace &trace);

    /**
     * Simulate a phase stream from cycle 0, consuming chunks as the
     * producer emits them. Identical cycle/traffic results to running
     * the materialized equivalent; memory stays bounded by the
     * producer's chunk (RunResult::peakPhaseBytes).
     */
    RunResult run(core::PhaseSource &source);

    /**
     * Channel-sharded variant of run(PhaseSource&): each phase's
     * accesses expand through the engine in exactly the serial order
     * (so every metadata stream, MetaCache transition, and traffic
     * counter matches bit for bit) into per-channel pre-decoded
     * request lanes, which @p shard replays concurrently against
     * channel-local DramChannel state; data_ready merges as the max
     * over channel completions before mem_free advances. Bitwise-
     * identical to run(source) on every field except the shard
     * diagnostics (see RunResult). @p shard must drive this model's
     * engine's DramSystem.
     */
    RunResult run(core::PhaseSource &source, ShardPool &shard);

  private:
    /** Accumulator state of one replay (the recurrence above). */
    struct Replay
    {
        Cycles memFree = 0;     ///< when the memory stream can take phase i
        Cycles computeDone = 0; ///< e_{i-1}
        Cycles memBusy = 0;
        Cycles computeTotal = 0;
    };

    class StreamSink; // PhaseSink feeding step() (perf_model.cc)
    class ShardSink;  // PhaseSink feeding stepSharded() (perf_model.cc)

    /** Replay one phase: the serialized memory stream + overlap rule. */
    void step(Replay &rep, Cycles compute_cycles,
              std::span<const core::LogicalAccess> accesses);

    /** step() with the DRAM half captured and replayed by @p shard. */
    void stepSharded(Replay &rep, Cycles compute_cycles,
                     std::span<const core::LogicalAccess> accesses,
                     ShardPool &shard, dram::CaptureBuffer &capture);

    /** Flush the engine and package the aggregate result. */
    RunResult finish(const Replay &rep, u64 trace_bytes,
                     u64 peak_phase_bytes);

    /** Package the aggregate result given the flush completion. */
    RunResult package(const Replay &rep, Cycles flushed, u64 trace_bytes,
                      u64 peak_phase_bytes);

    /** Convert accelerator cycles to controller cycles (rounding up). */
    Cycles toCtrl(Cycles accel_cycles) const;

    protection::ProtectionEngine *engine_;
    double accelMhz_;
    double ctrlMhz_;
};

} // namespace mgx::sim

#endif // MGX_SIM_PERF_MODEL_H
