/**
 * @file
 * Named workload registry: constructs any of the paper's kernels from
 * a string key, so experiments, tools and tests can sweep every
 * workload that exists without touching domain headers.
 *
 * Names are `domain/path[?key=value&key=value...]`:
 *
 *   dnn/<model>           VGG AlexNet GoogleNet ResNet BERT DLRM
 *                         MobileNet (case-insensitive; resnet50, vgg16,
 *                         inception, bert-base, mobilenetv1 aliases)
 *                         params: task=inference|training, batch=N,
 *                         accel=cloud|edge, density=0..1, seed=N
 *   graph/<name>/<alg>    six paper graphs x pagerank|bfs|sssp
 *                         params: iters=N (default 3 for pagerank,
 *                         4 otherwise), vector=seq|random, scale=N,
 *                         seed=N
 *   genome/<workload>     the nine chr{1,X,Y}{PacBio,ONT2D,ONT1D}
 *                         GACT workloads; params: reads=N. The bare
 *                         chromosome names chr1 / chrX / chrY are
 *                         whole-chromosome PacBio runs: reads defaults
 *                         to ~1x coverage (referenceBases / readLen)
 *                         instead of the figure subset of 64
 *   video/h264            IBPB decode; params: frames=N, width=N,
 *                         height=N, gop=N
 *   core/matmul           Fig. 4's tiled MatMul; params: m=N, n=N,
 *                         k=N, mtiles=N, ntiles=N, ktiles=N
 *
 * Unknown names and unknown parameter keys are fatal() — a typo should
 * fail loudly, not silently run the default workload.
 */

#ifndef MGX_SIM_WORKLOAD_REGISTRY_H
#define MGX_SIM_WORKLOAD_REGISTRY_H

#include <memory>
#include <string>
#include <vector>

#include "core/kernel.h"
#include "runner.h"

namespace mgx::sim {

/**
 * Construct the kernel named by @p name on its default platform
 * (Cloud accelerator config for DNN workloads). Fatal on unknown
 * names or parameters.
 */
std::unique_ptr<core::Kernel> makeKernel(const std::string &name);

/**
 * Construct the kernel named by @p name for @p platform. Only DNN
 * workloads are platform-sensitive: their tiling follows the
 * accelerator's SRAM, so a run on the Edge platform uses the
 * ChaiDNN-like edge accelerator config unless the name pins one with
 * `accel=`. All other domains ignore the platform here (it only sets
 * clocks and DRAM channels at simulation time).
 */
std::unique_ptr<core::Kernel> makeKernel(const std::string &name,
                                         const Platform &platform);

/**
 * Non-fatal variant of makeKernel for long-running services: any
 * registry error — malformed name, unknown workload, bad or unknown
 * parameters — returns nullptr with @p error set (same message
 * makeKernel would have died with) instead of exiting the process.
 * The admission layer of mgx_serve validates every requested workload
 * through this before committing an engine run.
 */
std::unique_ptr<core::Kernel> tryMakeKernel(const std::string &name,
                                            const Platform &platform,
                                            std::string *error);

/**
 * Key under which @p name's generated trace may be cached when run on
 * @p platform. Equal keys guarantee equal traces: platform-independent
 * workloads share one key across platforms (so a Cloud+Edge grid
 * generates their trace once), DNN workloads get one key per
 * accelerator config.
 */
std::string traceCacheKey(const std::string &name,
                          const Platform &platform);

/** The platform a workload's domain is evaluated on in the paper. */
Platform defaultPlatform(const std::string &name);

/**
 * Every canonical workload name: all DNN models x inference/training,
 * the six graphs x pagerank/bfs/sssp, the nine GACT workloads, the
 * H.264 stream and the MatMul example. Each listed name constructs
 * via makeKernel() and generates a non-empty trace.
 */
std::vector<std::string> listWorkloads();

/**
 * One deliberately oversized workload per domain — the paper's
 * full-scale inputs (whole-chromosome alignment, unscaled graphs,
 * large-batch training, long high-resolution video, deeply tiled
 * MatMul). These are ordinary registry names, but they are kept out
 * of listWorkloads() (and so out of `--all` and the golden grids)
 * because materializing them costs O(workload) memory: they are meant
 * for the streaming path, where replay memory stays bounded by one
 * phase (RunResult::peakPhaseBytes).
 */
std::vector<std::string> listScaledWorkloads();

} // namespace mgx::sim

#endif // MGX_SIM_WORKLOAD_REGISTRY_H
