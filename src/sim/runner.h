/**
 * @file
 * Platform definitions and the legacy single-trace scheme-comparison
 * harness. New code should use the Experiment builder (experiment.h),
 * which runs whole workload x platform x scheme grids in parallel;
 * compareSchemes() remains as a thin serial-looking wrapper over it.
 */

#ifndef MGX_SIM_RUNNER_H
#define MGX_SIM_RUNNER_H

#include <map>
#include <vector>

#include "core/phase.h"
#include "dram/ddr4_timing.h"
#include "perf_model.h"
#include "protection/scheme.h"

namespace mgx::sim {

/** One accelerator platform (clock + memory system). */
struct Platform
{
    std::string name;        ///< "Cloud", "Edge", ...
    double clockMhz = 700.0; ///< accelerator clock
    dram::Ddr4Config dram;   ///< channel count etc.
};

/**
 * Results per scheme, plus normalization against NP.
 *
 * Legacy surface: ResultSet (experiment.h) supersedes this and
 * reports a missing NP baseline explicitly via std::optional. Here
 * the normalized accessors *assert* that both runs exist — asking for
 * a ratio without a baseline is a caller bug, not a 0.0.
 */
struct SchemeComparison
{
    std::map<protection::Scheme, RunResult> results;

    /** Execution time normalized to the no-protection run. */
    double normalizedTime(protection::Scheme s) const;

    /** Memory traffic normalized to the no-protection run. */
    double trafficIncrease(protection::Scheme s) const;
};

/**
 * Run @p trace once per scheme in @p schemes on @p platform,
 * instantiating a fresh DRAM system and protection engine per run so
 * state never leaks between schemes.
 * @param base protection parameters shared by all schemes (granularity,
 *             cache size, ...); the scheme field is overwritten per run
 */
SchemeComparison
compareSchemes(const core::Trace &trace, const Platform &platform,
               const protection::ProtectionConfig &base,
               const std::vector<protection::Scheme> &schemes);

/** The paper's default scheme set: NP, MGX, MGX_VN, MGX_MAC, BP. */
std::vector<protection::Scheme> allSchemes();

/** Just NP, MGX, BP (traffic figures). */
std::vector<protection::Scheme> trafficSchemes();

/** TPU-v1-like cloud platform (256x256 PEs, 700 MHz, 4 channels). */
Platform cloudPlatform();

/** Samsung-NPU-like edge platform (32x32 PEs, 900 MHz, 1 channel). */
Platform edgePlatform();

/** GraphLily-like graph-accelerator platform (800 MHz, 4 channels). */
Platform graphPlatform();

/** Darwin/GACT genome platform (800 MHz, 4 channels). */
Platform genomePlatform();

} // namespace mgx::sim

#endif // MGX_SIM_RUNNER_H
