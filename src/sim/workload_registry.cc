#include "workload_registry.h"

#include <algorithm>
#include <cctype>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <utility>

#include "common/log.h"
#include "core/matmul_kernel.h"
#include "dnn/dnn_kernel.h"
#include "dnn/models.h"
#include "genome/genome_kernel.h"
#include "graph/graph_gen.h"
#include "graph/graph_kernel.h"
#include "video/video_kernel.h"

namespace mgx::sim {
namespace {

/**
 * Registry errors are thrown internally so a long-running service can
 * reject a bad request (tryMakeKernel) without dying; the classic
 * makeKernel() surface converts them back to fatal() for the CLI and
 * tools, with byte-identical messages.
 */
struct BadWorkload
{
    std::string message;
};

[[noreturn]] __attribute__((format(printf, 1, 2))) void
badWorkload(const char *fmt, ...)
{
    char buf[512];
    va_list args;
    va_start(args, fmt);
    std::vsnprintf(buf, sizeof buf, fmt, args);
    va_end(args);
    throw BadWorkload{buf};
}

std::string
toLower(std::string s)
{
    std::transform(s.begin(), s.end(), s.begin(), [](unsigned char c) {
        return static_cast<char>(std::tolower(c));
    });
    return s;
}

std::vector<std::string>
split(const std::string &s, char sep)
{
    std::vector<std::string> parts;
    std::size_t start = 0;
    while (true) {
        std::size_t pos = s.find(sep, start);
        parts.push_back(s.substr(start, pos - start));
        if (pos == std::string::npos)
            break;
        start = pos + 1;
    }
    return parts;
}

/** The `?key=value&...` suffix, with unknown-key detection. */
class Query
{
  public:
    Query(const std::string &name, const std::string &query)
        : name_(name)
    {
        if (query.empty())
            return;
        for (const auto &kv : split(query, '&')) {
            std::size_t eq = kv.find('=');
            if (eq == std::string::npos || eq == 0)
                badWorkload("workload '%s': malformed parameter '%s'",
                      name.c_str(), kv.c_str());
            params_.emplace_back(toLower(kv.substr(0, eq)),
                                 kv.substr(eq + 1));
        }
    }

    /** String value of @p key, or @p def if absent. */
    std::string
    str(const std::string &key, const std::string &def = "")
    {
        for (auto &p : params_) {
            if (p.first == key) {
                consumed_.push_back(key);
                return p.second;
            }
        }
        return def;
    }

    u64
    num(const std::string &key, u64 def)
    {
        const std::string v = str(key);
        if (v.empty())
            return def;
        char *end = nullptr;
        u64 parsed = std::strtoull(v.c_str(), &end, 10);
        if (end == v.c_str() || *end != '\0')
            badWorkload("workload '%s': parameter %s=%s is not a number",
                  name_.c_str(), key.c_str(), v.c_str());
        return parsed;
    }

    double
    real(const std::string &key, double def)
    {
        const std::string v = str(key);
        if (v.empty())
            return def;
        char *end = nullptr;
        double parsed = std::strtod(v.c_str(), &end);
        if (end == v.c_str() || *end != '\0')
            badWorkload("workload '%s': parameter %s=%s is not a number",
                  name_.c_str(), key.c_str(), v.c_str());
        return parsed;
    }

    /** Fatal if any parameter was never consumed (typo protection). */
    void
    finish() const
    {
        for (const auto &p : params_) {
            if (std::find(consumed_.begin(), consumed_.end(),
                          p.first) == consumed_.end())
                badWorkload("workload '%s': unknown parameter '%s'",
                      name_.c_str(), p.first.c_str());
        }
    }

  private:
    std::string name_;
    std::vector<std::pair<std::string, std::string>> params_;
    std::vector<std::string> consumed_;
};

/** domain, path segments after the domain, and the query. */
struct ParsedName
{
    std::string domain;
    std::vector<std::string> path;
    Query query;
};

ParsedName
parseName(const std::string &name)
{
    const std::size_t qpos = name.find('?');
    const std::string path_part = name.substr(0, qpos);
    const std::string query_part =
        qpos == std::string::npos ? "" : name.substr(qpos + 1);
    std::vector<std::string> segs = split(path_part, '/');
    if (segs.size() < 2 || segs[0].empty() || segs[1].empty())
        badWorkload("workload '%s': expected domain/name[?params]",
              name.c_str());
    ParsedName parsed{toLower(segs[0]),
                      {segs.begin() + 1, segs.end()},
                      Query(name, query_part)};
    return parsed;
}

/** Paper display name for a model key, accepting common aliases. */
std::string
canonicalModel(const std::string &name, const std::string &model)
{
    static const std::pair<const char *, const char *> kModels[] = {
        {"vgg", "VGG"},           {"vgg16", "VGG"},
        {"alexnet", "AlexNet"},   {"googlenet", "GoogleNet"},
        {"inception", "GoogleNet"}, {"resnet", "ResNet"},
        {"resnet50", "ResNet"},   {"bert", "BERT"},
        {"bert-base", "BERT"},    {"dlrm", "DLRM"},
        {"mobilenet", "MobileNet"}, {"mobilenetv1", "MobileNet"},
    };
    const std::string key = toLower(model);
    for (const auto &[alias, display] : kModels)
        if (key == alias)
            return display;
    badWorkload("workload '%s': unknown DNN model '%s'", name.c_str(),
          model.c_str());
}

std::unique_ptr<core::Kernel>
makeDnn(const std::string &name, ParsedName &p, bool edge_platform)
{
    if (p.path.size() != 1)
        badWorkload("workload '%s': expected dnn/<model>", name.c_str());
    const std::string model = canonicalModel(name, p.path[0]);

    const std::string task_str =
        toLower(p.query.str("task", "inference"));
    dnn::DnnTask task;
    if (task_str == "inference")
        task = dnn::DnnTask::Inference;
    else if (task_str == "training")
        task = dnn::DnnTask::Training;
    else
        badWorkload("workload '%s': task must be inference or training",
              name.c_str());

    const std::string accel_str = toLower(p.query.str("accel"));
    bool edge = edge_platform;
    if (accel_str == "cloud")
        edge = false;
    else if (accel_str == "edge")
        edge = true;
    else if (!accel_str.empty())
        badWorkload("workload '%s': accel must be cloud or edge",
              name.c_str());

    const u32 batch = static_cast<u32>(p.query.num("batch", 0));
    const u64 seed = p.query.num("seed", 1);
    const double density = p.query.real("density", 1.0);
    p.query.finish();

    auto kernel = std::make_unique<dnn::DnnKernel>(
        dnn::modelByName(model),
        edge ? dnn::edgeAccel() : dnn::cloudAccel(), task, batch, seed);
    if (density < 1.0)
        kernel->setFeatureDensity(density);
    return kernel;
}

std::unique_ptr<core::Kernel>
makeGraph(const std::string &name, ParsedName &p)
{
    if (p.path.size() != 2)
        badWorkload("workload '%s': expected graph/<name>/<algorithm>",
              name.c_str());
    // graphByName() is fatal-on-unknown (it lives below the registry's
    // throw boundary), so check existence here first.
    const auto specs = graph::paperGraphs();
    if (std::none_of(specs.begin(), specs.end(), [&](const auto &s) {
            return s.name == p.path[0];
        }))
        badWorkload("workload '%s': unknown graph '%s'", name.c_str(),
                    p.path[0].c_str());
    graph::GraphSpec spec = graph::graphByName(p.path[0]);

    const std::string alg_str = toLower(p.path[1]);
    graph::GraphAlgorithm alg;
    if (alg_str == "pagerank")
        alg = graph::GraphAlgorithm::PageRank;
    else if (alg_str == "bfs")
        alg = graph::GraphAlgorithm::BFS;
    else if (alg_str == "sssp")
        alg = graph::GraphAlgorithm::SSSP;
    else
        badWorkload("workload '%s': algorithm must be pagerank, bfs or sssp",
              name.c_str());

    // The figure-14 defaults: PageRank converges in 3 sweeps on the
    // scaled graphs, the frontier algorithms run one more.
    const u32 iters = static_cast<u32>(p.query.num(
        "iters", alg == graph::GraphAlgorithm::PageRank ? 3 : 4));
    spec.scale = static_cast<u32>(p.query.num("scale", spec.scale));
    const u64 seed = p.query.num("seed", 11);

    const std::string vec_str = toLower(p.query.str("vector", "seq"));
    graph::VectorAccess vec;
    if (vec_str == "seq" || vec_str == "sequential")
        vec = graph::VectorAccess::Sequential;
    else if (vec_str == "random")
        vec = graph::VectorAccess::Random;
    else
        badWorkload("workload '%s': vector must be seq or random",
              name.c_str());
    p.query.finish();

    graph::SpmvEngineConfig engine;
    graph::GraphTiles tiles = graph::buildTiles(
        spec, engine.dstBlockVertices, engine.srcTileVertices, seed);
    return std::make_unique<graph::GraphKernel>(std::move(tiles), alg,
                                                iters, engine, vec);
}

std::unique_ptr<core::Kernel>
makeGenome(const std::string &name, ParsedName &p)
{
    if (p.path.size() != 1)
        badWorkload("workload '%s': expected genome/<workload>",
              name.c_str());
    const std::string key = toLower(p.path[0]);
    // Bare chromosome names are the whole-chromosome PacBio runs the
    // paper's full-scale evaluation uses: enough reads for ~1x
    // coverage rather than the figure subset. Only feasible through
    // the streaming path — a materialized chr1 trace is hundreds of
    // MB.
    if (key == "chr1" || key == "chrx" || key == "chry") {
        for (auto &w : genome::paperWorkloads()) {
            if (toLower(w.name) != key + "pacbio")
                continue;
            w.numReads = p.query.num(
                "reads", w.referenceBases / w.profile.meanReadLen);
            p.query.finish();
            return std::make_unique<genome::GenomeKernel>(w);
        }
    }
    const u64 reads = p.query.num("reads", 64);
    p.query.finish();
    for (const auto &w : genome::paperWorkloads(reads))
        if (toLower(w.name) == key)
            return std::make_unique<genome::GenomeKernel>(w);
    badWorkload("workload '%s': unknown GACT workload '%s'", name.c_str(),
          p.path[0].c_str());
}

std::unique_ptr<core::Kernel>
makeVideo(const std::string &name, ParsedName &p)
{
    if (p.path.size() != 1 || toLower(p.path[0]) != "h264")
        badWorkload("workload '%s': expected video/h264", name.c_str());
    video::VideoConfig cfg;
    cfg.numFrames = static_cast<u32>(p.query.num("frames", cfg.numFrames));
    cfg.width = static_cast<u32>(p.query.num("width", cfg.width));
    cfg.height = static_cast<u32>(p.query.num("height", cfg.height));
    cfg.gopPeriod = static_cast<u32>(p.query.num("gop", cfg.gopPeriod));
    p.query.finish();
    return std::make_unique<video::VideoKernel>(cfg);
}

std::unique_ptr<core::Kernel>
makeMatMul(const std::string &name, ParsedName &p)
{
    if (p.path.size() != 1 || toLower(p.path[0]) != "matmul")
        badWorkload("workload '%s': expected core/matmul", name.c_str());
    core::MatMulParams params;
    params.m = p.query.num("m", params.m);
    params.n = p.query.num("n", params.n);
    params.k = p.query.num("k", params.k);
    params.mTiles = p.query.num("mtiles", params.mTiles);
    params.nTiles = p.query.num("ntiles", params.nTiles);
    params.kTiles = p.query.num("ktiles", params.kTiles);
    p.query.finish();
    return std::make_unique<core::MatMulKernel>(params);
}

std::unique_ptr<core::Kernel>
makeKernelImpl(const std::string &name, const Platform &platform)
{
    ParsedName p = parseName(name);
    if (p.domain == "dnn")
        return makeDnn(name, p, platform.name == "Edge");
    if (p.domain == "graph")
        return makeGraph(name, p);
    if (p.domain == "genome")
        return makeGenome(name, p);
    if (p.domain == "video")
        return makeVideo(name, p);
    if (p.domain == "core")
        return makeMatMul(name, p);
    badWorkload("workload '%s': unknown domain '%s'", name.c_str(),
          p.domain.c_str());
}

} // namespace

std::unique_ptr<core::Kernel>
makeKernel(const std::string &name, const Platform &platform)
{
    try {
        return makeKernelImpl(name, platform);
    } catch (const BadWorkload &e) {
        fatal("%s", e.message.c_str());
    }
}

std::unique_ptr<core::Kernel>
makeKernel(const std::string &name)
{
    return makeKernel(name, defaultPlatform(name));
}

std::unique_ptr<core::Kernel>
tryMakeKernel(const std::string &name, const Platform &platform,
              std::string *error)
{
    try {
        return makeKernelImpl(name, platform);
    } catch (const BadWorkload &e) {
        if (error)
            *error = e.message;
        return nullptr;
    }
}

std::string
traceCacheKey(const std::string &name, const Platform &platform)
{
    ParsedName p = [&] {
        try {
            return parseName(name);
        } catch (const BadWorkload &e) {
            fatal("%s", e.message.c_str());
        }
    }();
    if (p.domain != "dnn")
        return name;
    // DNN tiling follows the accelerator's SRAM, so the trace is
    // per-accel; an explicit accel= pins it regardless of platform.
    const std::string accel_str = toLower(p.query.str("accel"));
    const bool edge = accel_str.empty() ? platform.name == "Edge"
                                        : accel_str == "edge";
    return name + (edge ? "@edge" : "@cloud");
}

Platform
defaultPlatform(const std::string &name)
{
    const std::string domain = [&] {
        try {
            return parseName(name).domain;
        } catch (const BadWorkload &e) {
            fatal("%s", e.message.c_str());
        }
    }();
    if (domain == "graph")
        return graphPlatform();
    // The H.264 study and GACT share the 800 MHz / 4-channel platform.
    if (domain == "genome" || domain == "video")
        return genomePlatform();
    return cloudPlatform();
}

std::vector<std::string>
listWorkloads()
{
    std::vector<std::string> names;
    for (const char *model : {"VGG", "AlexNet", "GoogleNet", "ResNet",
                              "BERT", "DLRM", "MobileNet"}) {
        names.push_back(std::string("dnn/") + model +
                        "?task=inference");
        names.push_back(std::string("dnn/") + model + "?task=training");
    }
    for (const auto &spec : graph::paperGraphs())
        for (const char *alg : {"pagerank", "bfs", "sssp"})
            names.push_back("graph/" + spec.name + "/" + alg);
    for (const auto &w : genome::paperWorkloads())
        names.push_back("genome/" + w.name);
    names.push_back("video/h264");
    names.push_back("core/matmul");
    return names;
}

std::vector<std::string>
listScaledWorkloads()
{
    return {
        // 64^3 partial-sum rounds: ~262K phases / ~1M accesses.
        "core/matmul?m=4096&n=4096&k=4096&mtiles=64&ntiles=64&ktiles=64",
        // Production-recommendation training batch: the 26 embedding
        // tables gather (and backward-scatter) per-sample rows, so
        // accesses scale with batch.
        "dnn/DLRM?task=training&batch=65536",
        // Unscaled pokec with gathered vector entries (SpMSpV): the
        // per-edge gathers are what make full-size graphs big.
        "graph/pokec/pagerank?scale=1&vector=random",
        // Whole-chromosome alignment at ~1x coverage (~25K reads).
        "genome/chr1",
        // Four minutes of 1080p at 30 fps.
        "video/h264?frames=7200&width=1920&height=1080",
    };
}

} // namespace mgx::sim
