#include "trace_io.h"

#include <cerrno>
#include <cstdarg>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

#include <fcntl.h>
#include <sys/file.h>
#include <unistd.h>

#include "common/checksum.h"
#include "common/failpoint.h"

namespace mgx::sim {
namespace {

// Every filesystem boundary is a failpoint, registered at load so
// `failpoint::all()` sees the complete set before any test arms one.
failpoint::Point &fpReadOpen =
    failpoint::Point::get("trace_io.read.open");
failpoint::Point &fpReadCorrupt =
    failpoint::Point::get("trace_io.read.corrupt");
failpoint::Point &fpWriteOpen =
    failpoint::Point::get("trace_io.write.open");
failpoint::Point &fpWriteEnospc =
    failpoint::Point::get("trace_io.write.enospc");
failpoint::Point &fpWriteShort =
    failpoint::Point::get("trace_io.write.short");
failpoint::Point &fpWriteTorn =
    failpoint::Point::get("trace_io.write.torn");
failpoint::Point &fpLockOpen =
    failpoint::Point::get("trace_io.lock.open");
failpoint::Point &fpLockEintr =
    failpoint::Point::get("trace_io.lock.eintr");

[[noreturn]] void
raise(const char *fmt, ...)
{
    char buf[512];
    va_list args;
    va_start(args, fmt);
    std::vsnprintf(buf, sizeof buf, fmt, args);
    va_end(args);
    throw TraceIoError(buf);
}

const char *
classToken(DataClass dc)
{
    return dataClassName(dc); // already unique, hyphenated tokens
}

DataClass
classFromToken(const std::string &token, unsigned line)
{
    static constexpr DataClass kAll[] = {
        DataClass::Feature,     DataClass::Weight,
        DataClass::Gradient,    DataClass::GraphMatrix,
        DataClass::GraphVector, DataClass::GenomeTable,
        DataClass::GenomeQuery, DataClass::VideoFrame,
        DataClass::Generic,
    };
    for (DataClass dc : kAll)
        if (token == dataClassName(dc))
            return dc;
    raise("trace line %u: unknown data class '%s'", line, token.c_str());
}

/** Serialize one phase header line — shared by every writer. */
void
writePhaseHeader(std::ostream &out, std::string_view name,
                 Cycles compute_cycles)
{
    out << "P " << (name.empty() ? std::string_view{"-"} : name) << ' '
        << compute_cycles << '\n';
}

/** Serialize one access line — shared by every writer. */
void
writeAccessLine(std::ostream &out, const core::LogicalAccess &acc)
{
    out << "A " << (acc.type == AccessType::Write ? 'w' : 'r') << ' '
        << std::hex << acc.addr << std::dec << ' ' << acc.bytes << ' '
        << classToken(acc.cls) << ' ' << std::hex << acc.vn << std::dec
        << ' ' << acc.macGranularity << '\n';
}

/**
 * Incremental line-by-line parser shared by the materializing reader
 * and the streaming FilePhaseSource: accumulates the open phase in a
 * reused scratch buffer and reports when a phase completed (the next
 * "P" line arrived, the checksum footer closed the file, or input
 * ended).
 *
 * Understands the v2 integrity envelope: an `M mgx-trace 2` first
 * line arms CRC32 accumulation over every subsequent payload line,
 * and the `C <crc-hex> <payloadBytes>` footer is verified against
 * it. Once a header was seen, a missing footer at end of input is a
 * truncation error. In `require_checksum` mode, input without the
 * envelope is rejected outright.
 */
class TraceParser
{
  public:
    explicit TraceParser(bool require_checksum = false)
        : requireChecksum_(require_checksum)
    {
    }

    /**
     * Parse one line. Returns true when a phase was completed by
     * this line, in which case it is available via completed() until
     * the next feed()/finish() call. Throws TraceIoError on
     * malformed lines (with the line number).
     */
    bool
    feed(const std::string &line)
    {
        ++lineNo_;
        if (sawFooter_)
            raise("trace line %u: data after checksum footer",
                  lineNo_);
        if (checksummed_ && line.compare(0, 2, "C ") != 0) {
            crc_ = crc32Update(crc_, line.data(), line.size());
            crc_ = crc32Update(crc_, "\n", 1);
            payloadBytes_ += line.size() + 1;
        }
        if (line.empty() || line[0] == '#')
            return false;
        std::istringstream ss(line);
        std::string tag;
        ss >> tag;
        if (tag == "M") {
            std::string magic;
            unsigned version = 0;
            ss >> magic >> version;
            if (lineNo_ != 1 || ss.fail() || magic != "mgx-trace")
                raise("trace line %u: malformed format header",
                      lineNo_);
            if (version != kTraceFormatVersion)
                raise("trace line %u: unsupported trace format "
                      "version %u",
                      lineNo_, version);
            checksummed_ = true;
            return false;
        }
        if (requireChecksum_ && !checksummed_)
            raise("trace line %u: missing integrity header "
                  "(not a checksummed trace file)",
                  lineNo_);
        if (tag == "P") {
            // The incoming header closes the previous phase: move it
            // to the completed slot and start accumulating the new one.
            bool emitted = false;
            if (open_) {
                std::swap(scratch_, completed_);
                emitted = true;
            }
            scratch_.name.clear();
            scratch_.accesses.clear();
            ss >> scratch_.name >> scratch_.computeCycles;
            if (ss.fail())
                raise("trace line %u: malformed phase header", lineNo_);
            if (scratch_.name == "-")
                scratch_.name.clear();
            open_ = true;
            return emitted;
        }
        if (tag == "A") {
            if (!open_)
                raise("trace line %u: access before any phase",
                      lineNo_);
            char rw = 0;
            std::string cls;
            core::LogicalAccess acc;
            ss >> rw >> std::hex >> acc.addr >> std::dec >> acc.bytes >>
                cls >> std::hex >> acc.vn >> std::dec >>
                acc.macGranularity;
            if (ss.fail() || (rw != 'r' && rw != 'w'))
                raise("trace line %u: malformed access", lineNo_);
            acc.type = rw == 'w' ? AccessType::Write : AccessType::Read;
            acc.cls = classFromToken(cls, lineNo_);
            scratch_.accesses.push_back(acc);
            return false;
        }
        if (tag == "C") {
            if (!checksummed_)
                raise("trace line %u: unknown record 'C'", lineNo_);
            u32 expectedCrc = 0;
            u64 expectedBytes = 0;
            ss >> std::hex >> expectedCrc >> std::dec >> expectedBytes;
            if (ss.fail())
                raise("trace line %u: malformed checksum footer",
                      lineNo_);
            if (fpReadCorrupt.fire() || expectedCrc != crc_ ||
                expectedBytes != payloadBytes_)
                raise("trace checksum mismatch (file corrupt): "
                      "footer %08x/%llu, computed %08x/%llu",
                      expectedCrc,
                      static_cast<unsigned long long>(expectedBytes),
                      crc_,
                      static_cast<unsigned long long>(payloadBytes_));
            sawFooter_ = true;
            // The footer closes the file: deliver the final phase.
            if (open_) {
                std::swap(scratch_, completed_);
                open_ = false;
                return true;
            }
            return false;
        }
        raise("trace line %u: unknown record '%s'", lineNo_,
              tag.c_str());
    }

    /**
     * End of input: returns true if a final phase is available.
     * Throws if a checksummed stream ended without its footer
     * (truncation) or a required envelope never appeared.
     */
    bool
    finish()
    {
        if (checksummed_ && !sawFooter_)
            raise("truncated trace (missing checksum footer after "
                  "line %u)",
                  lineNo_);
        if (requireChecksum_ && !checksummed_)
            raise("missing integrity header "
                  "(not a checksummed trace file)");
        if (!open_)
            return false;
        std::swap(scratch_, completed_);
        open_ = false;
        return true;
    }

    const core::Phase &completed() const { return completed_; }

  private:
    core::Phase scratch_;   ///< the phase currently being accumulated
    core::Phase completed_; ///< the last fully parsed phase
    bool open_ = false;
    bool requireChecksum_ = false;
    bool checksummed_ = false; ///< saw the v2 header; verifying CRC
    bool sawFooter_ = false;
    u32 crc_ = 0;
    u64 payloadBytes_ = 0;
    unsigned lineNo_ = 0;
};

} // namespace

void
writeTrace(const core::Trace &trace, std::ostream &out)
{
    for (const auto &phase : trace) {
        writePhaseHeader(out, phase.name, phase.computeCycles);
        for (const auto &acc : phase.accesses)
            writeAccessLine(out, acc);
    }
}

std::string
traceToString(const core::Trace &trace)
{
    std::ostringstream ss;
    writeTrace(trace, ss);
    return ss.str();
}

core::Trace
readTrace(std::istream &in, bool require_checksum)
{
    core::Trace trace;
    TraceParser parser(require_checksum);
    std::string line;
    while (std::getline(in, line))
        if (parser.feed(line))
            trace.push_back(parser.completed());
    if (parser.finish())
        trace.push_back(parser.completed());
    return trace;
}

core::Trace
traceFromString(const std::string &text)
{
    std::istringstream ss(text);
    return readTrace(ss);
}

core::Trace
readTraceFile(const std::string &path)
{
    std::ifstream in(path);
    if (fpReadOpen.fire() || !in)
        raise("cannot read trace file '%s'", path.c_str());
    return readTrace(in);
}

std::optional<core::Trace>
readTraceFileIfReadable(const std::string &path, bool require_checksum)
{
    std::ifstream in(path);
    if (fpReadOpen.fire() || !in)
        return std::nullopt;
    return readTrace(in, require_checksum);
}

bool
quarantineTraceFile(const std::string &path) noexcept
{
    std::error_code ec;
    std::filesystem::rename(path, path + ".bad", ec);
    if (!ec)
        return true;
    // Rename across a broken directory can itself fail; removing the
    // corrupt file still unblocks regeneration.
    std::filesystem::remove(path, ec);
    return false;
}

// ---------------------------------------------------------------------------
// Cross-process cache-key lock
// ---------------------------------------------------------------------------

TraceCacheLock::TraceCacheLock(const std::string &trace_path)
    : lockPath_(trace_path + ".lock")
{
    fd_ = ::open(lockPath_.c_str(), O_CREAT | O_RDWR | O_CLOEXEC, 0644);
    if (fpLockOpen.fire() && fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
        errno = EACCES;
    }
    if (fd_ < 0)
        raise("cannot open trace-cache lock '%s': %s",
              lockPath_.c_str(), std::strerror(errno));
    while (true) {
        if (fpLockEintr.fire())
            continue; // injected EINTR: retry like the real signal
        if (::flock(fd_, LOCK_EX) == 0)
            break;
        if (errno == EINTR)
            continue;
        const int err = errno;
        ::close(fd_);
        fd_ = -1;
        raise("cannot lock trace-cache lock '%s': %s",
              lockPath_.c_str(), std::strerror(err));
    }
}

TraceCacheLock::~TraceCacheLock()
{
    if (fd_ < 0)
        return;
    // close() releases the flock; the .lock file stays (see header).
    ::flock(fd_, LOCK_UN);
    ::close(fd_);
}

// ---------------------------------------------------------------------------
// Streaming writers
// ---------------------------------------------------------------------------

void
TraceWriteSink::consume(const core::Phase &phase)
{
    writePhaseHeader(*out_, phase.name, phase.computeCycles);
    for (const auto &acc : phase.accesses) {
        writeAccessLine(*out_, acc);
        dataBytes_ += acc.bytes;
    }
    ++phases_;
}

struct TraceFileWriteSink::Impl
{
    std::string path;
    std::string tmp;
    std::ofstream out;
    std::ostringstream scratch; ///< per-phase staging for the CRC
    bool finished = false;
    u32 crc = 0;
    u64 payloadBytes = 0;
    u64 phases = 0;
    u64 dataBytes = 0;
};

TraceFileWriteSink::TraceFileWriteSink(const std::string &path)
    : impl_(std::make_unique<Impl>())
{
    // The pid makes the temporary unique across processes sharing a
    // cache directory; rename() at finish() then publishes the
    // complete file atomically, so readers see either nothing or a
    // whole trace.
    impl_->path = path;
    impl_->tmp = path + ".tmp." + std::to_string(::getpid());
    impl_->out.open(impl_->tmp);
    if (fpWriteOpen.fire() && impl_->out) {
        impl_->out.close();
        std::error_code ignored;
        std::filesystem::remove(impl_->tmp, ignored);
        impl_->out.setstate(std::ios::failbit);
    }
    if (!impl_->out)
        raise("cannot write trace file '%s'", impl_->tmp.c_str());
    impl_->out << "M mgx-trace " << kTraceFormatVersion << '\n';
}

TraceFileWriteSink::~TraceFileWriteSink()
{
    if (impl_->finished)
        return;
    // Abandoned (or failed) write: never leave partial temporaries
    // behind in a shared cache directory.
    impl_->out.close();
    std::error_code ignored;
    std::filesystem::remove(impl_->tmp, ignored);
}

void
TraceFileWriteSink::consume(const core::Phase &phase)
{
    // Stage the phase's lines once so the CRC and the file see the
    // same bytes.
    impl_->scratch.str(std::string());
    impl_->scratch.clear();
    writePhaseHeader(impl_->scratch, phase.name, phase.computeCycles);
    for (const auto &acc : phase.accesses) {
        writeAccessLine(impl_->scratch, acc);
        impl_->dataBytes += acc.bytes;
    }
    const std::string text = impl_->scratch.str();
    impl_->crc = crc32Update(impl_->crc, text.data(), text.size());
    impl_->payloadBytes += text.size();
    impl_->out.write(text.data(),
                     static_cast<std::streamsize>(text.size()));
    if (fpWriteEnospc.fire() || !impl_->out) {
        // Simulated (or real) ENOSPC mid-write: drop the temporary
        // immediately so a full disk holds no half-written debris,
        // and surface the failure to the producer.
        impl_->out.close();
        std::error_code ignored;
        std::filesystem::remove(impl_->tmp, ignored);
        raise("short write to trace file '%s' (disk full?)",
              impl_->tmp.c_str());
    }
    ++impl_->phases;
}

u64
TraceFileWriteSink::phases() const
{
    return impl_->phases;
}

u64
TraceFileWriteSink::dataBytes() const
{
    return impl_->dataBytes;
}

void
TraceFileWriteSink::finish()
{
    const auto failCleanup = [this] {
        std::error_code ignored;
        std::filesystem::remove(impl_->tmp, ignored);
    };
    char footer[64];
    std::snprintf(footer, sizeof footer, "C %08x %llu\n", impl_->crc,
                  static_cast<unsigned long long>(impl_->payloadBytes));
    impl_->out << footer;
    if (fpWriteShort.fire() || !impl_->out.flush()) {
        impl_->out.close();
        failCleanup();
        raise("short write to trace file '%s'", impl_->tmp.c_str());
    }
    impl_->out.close();
    if (fpWriteTorn.fire()) {
        // Simulate a crash between the write and the publish: the
        // temporary stays behind (the startup sweep's job), the
        // destination never appears.
        impl_->finished = true;
        raise("cannot publish trace file '%s': injected torn rename",
              impl_->path.c_str());
    }
    std::error_code ec;
    std::filesystem::rename(impl_->tmp, impl_->path, ec);
    if (ec) {
        failCleanup();
        raise("cannot publish trace file '%s': %s",
              impl_->path.c_str(), ec.message().c_str());
    }
    impl_->finished = true;
}

void
writeTraceFile(const core::Trace &trace, const std::string &path)
{
    TraceFileWriteSink sink(path);
    core::TracePhaseSource source(trace);
    source.drainTo(sink);
    sink.finish();
}

// ---------------------------------------------------------------------------
// Streaming reader
// ---------------------------------------------------------------------------

struct FilePhaseSource::Impl
{
    explicit Impl(bool require_checksum) : parser(require_checksum) {}

    std::ifstream in;
    TraceParser parser;
    std::string line;
    bool eof = false;
};

FilePhaseSource::FilePhaseSource(const std::string &path,
                                 bool require_checksum)
    : impl_(std::make_unique<Impl>(require_checksum))
{
    impl_->in.open(path);
    if (fpReadOpen.fire() || !impl_->in)
        raise("cannot read trace file '%s'", path.c_str());
}

FilePhaseSource::FilePhaseSource(std::unique_ptr<Impl> impl)
    : impl_(std::move(impl))
{
}

std::unique_ptr<FilePhaseSource>
FilePhaseSource::openIfReadable(const std::string &path,
                                bool require_checksum)
{
    auto impl = std::make_unique<Impl>(require_checksum);
    impl->in.open(path);
    if (fpReadOpen.fire() || !impl->in)
        return nullptr;
    return std::unique_ptr<FilePhaseSource>(
        new FilePhaseSource(std::move(impl)));
}

FilePhaseSource::~FilePhaseSource() = default;

bool
FilePhaseSource::nextChunk(core::PhaseSink &sink)
{
    if (impl_->eof)
        return false;
    while (std::getline(impl_->in, impl_->line)) {
        if (impl_->parser.feed(impl_->line)) {
            sink.consume(impl_->parser.completed());
            return true;
        }
    }
    impl_->eof = true;
    if (impl_->parser.finish())
        sink.consume(impl_->parser.completed());
    return false;
}

} // namespace mgx::sim
