#include "trace_io.h"

#include <cerrno>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

#include <fcntl.h>
#include <sys/file.h>
#include <unistd.h>

#include "common/log.h"

namespace mgx::sim {
namespace {

const char *
classToken(DataClass dc)
{
    return dataClassName(dc); // already unique, hyphenated tokens
}

DataClass
classFromToken(const std::string &token, unsigned line)
{
    static constexpr DataClass kAll[] = {
        DataClass::Feature,     DataClass::Weight,
        DataClass::Gradient,    DataClass::GraphMatrix,
        DataClass::GraphVector, DataClass::GenomeTable,
        DataClass::GenomeQuery, DataClass::VideoFrame,
        DataClass::Generic,
    };
    for (DataClass dc : kAll)
        if (token == dataClassName(dc))
            return dc;
    fatal("trace line %u: unknown data class '%s'", line, token.c_str());
}

/** Serialize one phase header line — shared by every writer. */
void
writePhaseHeader(std::ostream &out, std::string_view name,
                 Cycles compute_cycles)
{
    out << "P " << (name.empty() ? std::string_view{"-"} : name) << ' '
        << compute_cycles << '\n';
}

/** Serialize one access line — shared by every writer. */
void
writeAccessLine(std::ostream &out, const core::LogicalAccess &acc)
{
    out << "A " << (acc.type == AccessType::Write ? 'w' : 'r') << ' '
        << std::hex << acc.addr << std::dec << ' ' << acc.bytes << ' '
        << classToken(acc.cls) << ' ' << std::hex << acc.vn << std::dec
        << ' ' << acc.macGranularity << '\n';
}

/**
 * Incremental line-by-line parser shared by the materializing reader
 * and the streaming FilePhaseSource: accumulates the open phase in a
 * reused scratch buffer and reports when a phase completed (the next
 * "P" line arrived, or input ended).
 */
class TraceParser
{
  public:
    /**
     * Parse one line. Returns true when the *previous* phase was
     * completed by this line, in which case it is available via
     * completed() until the next feed()/finish() call. Fatal on
     * malformed lines (with the line number).
     */
    bool
    feed(const std::string &line)
    {
        ++lineNo_;
        if (line.empty() || line[0] == '#')
            return false;
        std::istringstream ss(line);
        std::string tag;
        ss >> tag;
        if (tag == "P") {
            // The incoming header closes the previous phase: move it
            // to the completed slot and start accumulating the new one.
            bool emitted = false;
            if (open_) {
                std::swap(scratch_, completed_);
                emitted = true;
            }
            scratch_.name.clear();
            scratch_.accesses.clear();
            ss >> scratch_.name >> scratch_.computeCycles;
            if (ss.fail())
                fatal("trace line %u: malformed phase header", lineNo_);
            if (scratch_.name == "-")
                scratch_.name.clear();
            open_ = true;
            return emitted;
        }
        if (tag == "A") {
            if (!open_)
                fatal("trace line %u: access before any phase",
                      lineNo_);
            char rw = 0;
            std::string cls;
            core::LogicalAccess acc;
            ss >> rw >> std::hex >> acc.addr >> std::dec >> acc.bytes >>
                cls >> std::hex >> acc.vn >> std::dec >>
                acc.macGranularity;
            if (ss.fail() || (rw != 'r' && rw != 'w'))
                fatal("trace line %u: malformed access", lineNo_);
            acc.type = rw == 'w' ? AccessType::Write : AccessType::Read;
            acc.cls = classFromToken(cls, lineNo_);
            scratch_.accesses.push_back(acc);
            return false;
        }
        fatal("trace line %u: unknown record '%s'", lineNo_,
              tag.c_str());
    }

    /** End of input: returns true if a final phase is available. */
    bool
    finish()
    {
        if (!open_)
            return false;
        std::swap(scratch_, completed_);
        open_ = false;
        return true;
    }

    const core::Phase &completed() const { return completed_; }

  private:
    core::Phase scratch_;   ///< the phase currently being accumulated
    core::Phase completed_; ///< the last fully parsed phase
    bool open_ = false;
    unsigned lineNo_ = 0;
};

} // namespace

void
writeTrace(const core::Trace &trace, std::ostream &out)
{
    for (const auto &phase : trace) {
        writePhaseHeader(out, phase.name, phase.computeCycles);
        for (const auto &acc : phase.accesses)
            writeAccessLine(out, acc);
    }
}

std::string
traceToString(const core::Trace &trace)
{
    std::ostringstream ss;
    writeTrace(trace, ss);
    return ss.str();
}

core::Trace
readTrace(std::istream &in)
{
    core::Trace trace;
    TraceParser parser;
    std::string line;
    while (std::getline(in, line))
        if (parser.feed(line))
            trace.push_back(parser.completed());
    if (parser.finish())
        trace.push_back(parser.completed());
    return trace;
}

core::Trace
traceFromString(const std::string &text)
{
    std::istringstream ss(text);
    return readTrace(ss);
}

core::Trace
readTraceFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot read trace file '%s'", path.c_str());
    return readTrace(in);
}

std::optional<core::Trace>
readTraceFileIfReadable(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        return std::nullopt;
    return readTrace(in);
}

// ---------------------------------------------------------------------------
// Cross-process cache-key lock
// ---------------------------------------------------------------------------

TraceCacheLock::TraceCacheLock(const std::string &trace_path)
    : lockPath_(trace_path + ".lock")
{
    fd_ = ::open(lockPath_.c_str(), O_CREAT | O_RDWR | O_CLOEXEC, 0644);
    if (fd_ < 0)
        fatal("cannot open trace-cache lock '%s': %s",
              lockPath_.c_str(), std::strerror(errno));
    while (::flock(fd_, LOCK_EX) != 0) {
        if (errno == EINTR)
            continue;
        const int err = errno;
        ::close(fd_);
        fatal("cannot lock trace-cache lock '%s': %s",
              lockPath_.c_str(), std::strerror(err));
    }
}

TraceCacheLock::~TraceCacheLock()
{
    // close() releases the flock; the .lock file stays (see header).
    ::flock(fd_, LOCK_UN);
    ::close(fd_);
}

// ---------------------------------------------------------------------------
// Streaming writers
// ---------------------------------------------------------------------------

void
TraceWriteSink::consume(const core::Phase &phase)
{
    writePhaseHeader(*out_, phase.name, phase.computeCycles);
    for (const auto &acc : phase.accesses) {
        writeAccessLine(*out_, acc);
        dataBytes_ += acc.bytes;
    }
    ++phases_;
}

struct TraceFileWriteSink::Impl
{
    std::string path;
    std::string tmp;
    std::ofstream out;
    bool finished = false;
    u64 phases = 0;
    u64 dataBytes = 0;
};

TraceFileWriteSink::TraceFileWriteSink(const std::string &path)
    : impl_(std::make_unique<Impl>())
{
    // The pid makes the temporary unique across processes sharing a
    // cache directory; rename() at finish() then publishes the
    // complete file atomically, so readers see either nothing or a
    // whole trace.
    impl_->path = path;
    impl_->tmp = path + ".tmp." + std::to_string(::getpid());
    impl_->out.open(impl_->tmp);
    if (!impl_->out)
        fatal("cannot write trace file '%s'", impl_->tmp.c_str());
}

TraceFileWriteSink::~TraceFileWriteSink()
{
    if (impl_->finished)
        return;
    // Abandoned (or failed) write: never leave partial temporaries
    // behind in a shared cache directory.
    impl_->out.close();
    std::error_code ignored;
    std::filesystem::remove(impl_->tmp, ignored);
}

void
TraceFileWriteSink::consume(const core::Phase &phase)
{
    writePhaseHeader(impl_->out, phase.name, phase.computeCycles);
    for (const auto &acc : phase.accesses) {
        writeAccessLine(impl_->out, acc);
        impl_->dataBytes += acc.bytes;
    }
    ++impl_->phases;
}

u64
TraceFileWriteSink::phases() const
{
    return impl_->phases;
}

u64
TraceFileWriteSink::dataBytes() const
{
    return impl_->dataBytes;
}

void
TraceFileWriteSink::finish()
{
    const auto failCleanup = [this] {
        std::error_code ignored;
        std::filesystem::remove(impl_->tmp, ignored);
    };
    if (!impl_->out.flush()) {
        impl_->out.close();
        failCleanup();
        fatal("short write to trace file '%s'", impl_->tmp.c_str());
    }
    impl_->out.close();
    std::error_code ec;
    std::filesystem::rename(impl_->tmp, impl_->path, ec);
    if (ec) {
        failCleanup();
        fatal("cannot publish trace file '%s': %s",
              impl_->path.c_str(), ec.message().c_str());
    }
    impl_->finished = true;
}

void
writeTraceFile(const core::Trace &trace, const std::string &path)
{
    TraceFileWriteSink sink(path);
    core::TracePhaseSource source(trace);
    source.drainTo(sink);
    sink.finish();
}

// ---------------------------------------------------------------------------
// Streaming reader
// ---------------------------------------------------------------------------

struct FilePhaseSource::Impl
{
    std::ifstream in;
    TraceParser parser;
    std::string line;
    bool eof = false;
};

FilePhaseSource::FilePhaseSource(const std::string &path)
    : impl_(std::make_unique<Impl>())
{
    impl_->in.open(path);
    if (!impl_->in)
        fatal("cannot read trace file '%s'", path.c_str());
}

FilePhaseSource::FilePhaseSource(std::unique_ptr<Impl> impl)
    : impl_(std::move(impl))
{
}

std::unique_ptr<FilePhaseSource>
FilePhaseSource::openIfReadable(const std::string &path)
{
    auto impl = std::make_unique<Impl>();
    impl->in.open(path);
    if (!impl->in)
        return nullptr;
    return std::unique_ptr<FilePhaseSource>(
        new FilePhaseSource(std::move(impl)));
}

FilePhaseSource::~FilePhaseSource() = default;

bool
FilePhaseSource::nextChunk(core::PhaseSink &sink)
{
    if (impl_->eof)
        return false;
    while (std::getline(impl_->in, impl_->line)) {
        if (impl_->parser.feed(impl_->line)) {
            sink.consume(impl_->parser.completed());
            return true;
        }
    }
    impl_->eof = true;
    if (impl_->parser.finish())
        sink.consume(impl_->parser.completed());
    return false;
}

} // namespace mgx::sim
