#include "trace_io.h"

#include <filesystem>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

#include <unistd.h>

#include "common/log.h"

namespace mgx::sim {
namespace {

const char *
classToken(DataClass dc)
{
    return dataClassName(dc); // already unique, hyphenated tokens
}

DataClass
classFromToken(const std::string &token, unsigned line)
{
    static constexpr DataClass kAll[] = {
        DataClass::Feature,     DataClass::Weight,
        DataClass::Gradient,    DataClass::GraphMatrix,
        DataClass::GraphVector, DataClass::GenomeTable,
        DataClass::GenomeQuery, DataClass::VideoFrame,
        DataClass::Generic,
    };
    for (DataClass dc : kAll)
        if (token == dataClassName(dc))
            return dc;
    fatal("trace line %u: unknown data class '%s'", line, token.c_str());
}

} // namespace

void
writeTrace(const core::Trace &trace, std::ostream &out)
{
    for (const auto &phase : trace) {
        out << "P " << (phase.name.empty() ? std::string_view{"-"}
                                           : phase.name)
            << ' '
            << phase.computeCycles << '\n';
        for (const auto &acc : phase.accesses) {
            out << "A " << (acc.type == AccessType::Write ? 'w' : 'r')
                << ' ' << std::hex << acc.addr << std::dec << ' '
                << acc.bytes << ' ' << classToken(acc.cls) << ' '
                << std::hex << acc.vn << std::dec << ' '
                << acc.macGranularity << '\n';
        }
    }
}

std::string
traceToString(const core::Trace &trace)
{
    std::ostringstream ss;
    writeTrace(trace, ss);
    return ss.str();
}

core::Trace
readTrace(std::istream &in)
{
    core::Trace trace;
    std::string line;
    unsigned line_no = 0;
    while (std::getline(in, line)) {
        ++line_no;
        if (line.empty() || line[0] == '#')
            continue;
        std::istringstream ss(line);
        std::string tag;
        ss >> tag;
        if (tag == "P") {
            core::Phase phase;
            ss >> phase.name >> phase.computeCycles;
            if (ss.fail())
                fatal("trace line %u: malformed phase header", line_no);
            if (phase.name == "-")
                phase.name.clear();
            trace.push_back(phase);
        } else if (tag == "A") {
            if (trace.empty())
                fatal("trace line %u: access before any phase",
                      line_no);
            char rw = 0;
            std::string cls;
            core::LogicalAccess acc;
            ss >> rw >> std::hex >> acc.addr >> std::dec >> acc.bytes >>
                cls >> std::hex >> acc.vn >> std::dec >>
                acc.macGranularity;
            if (ss.fail() || (rw != 'r' && rw != 'w'))
                fatal("trace line %u: malformed access", line_no);
            acc.type =
                rw == 'w' ? AccessType::Write : AccessType::Read;
            acc.cls = classFromToken(cls, line_no);
            trace.appendAccess(acc);
        } else {
            fatal("trace line %u: unknown record '%s'", line_no,
                  tag.c_str());
        }
    }
    return trace;
}

core::Trace
traceFromString(const std::string &text)
{
    std::istringstream ss(text);
    return readTrace(ss);
}

core::Trace
readTraceFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot read trace file '%s'", path.c_str());
    return readTrace(in);
}

void
writeTraceFile(const core::Trace &trace, const std::string &path)
{
    // The pid makes the temporary unique across processes sharing a
    // cache directory; rename() then publishes the complete file
    // atomically, so readers see either nothing or a whole trace.
    const std::string tmp =
        path + ".tmp." + std::to_string(::getpid());
    // Failed writes must not leave partial temporaries behind in a
    // shared cache directory, so every error path unlinks tmp first.
    const auto failCleanup = [&tmp] {
        std::error_code ignored;
        std::filesystem::remove(tmp, ignored);
    };
    {
        std::ofstream out(tmp);
        if (!out)
            fatal("cannot write trace file '%s'", tmp.c_str());
        writeTrace(trace, out);
        if (!out.flush()) {
            out.close();
            failCleanup();
            fatal("short write to trace file '%s'", tmp.c_str());
        }
    }
    std::error_code ec;
    std::filesystem::rename(tmp, path, ec);
    if (ec) {
        failCleanup();
        fatal("cannot publish trace file '%s': %s", path.c_str(),
              ec.message().c_str());
    }
}

} // namespace mgx::sim
