#include "experiment.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <map>
#include <memory>
#include <thread>

#include "common/log.h"
#include "pipeline.h"
#include "shard.h"
#include "trace_io.h"
#include "workload_registry.h"

namespace mgx::sim {
namespace {

/**
 * Trace-generation version, folded into every cache file name so a
 * directory kept across code changes never serves stale traces. Bump
 * it whenever kernels generate different traces for the same
 * workload name or the trace_io format changes — equal keys only
 * guarantee equal traces within one generator version.
 *
 * v2: trace files carry the integrity envelope (magic header +
 * CRC32 footer); v1 files are unverifiable and simply never match.
 */
constexpr unsigned kTraceCacheVersion = 2;

/** Age below which sweepTraceCacheDebris leaves debris alone — far
 *  above any real trace write, so a live writer's temporary always
 *  survives the sweep. */
constexpr std::chrono::seconds kSweepGrace = std::chrono::minutes(15);

/**
 * File name a cached trace is stored under: the cache key with
 * filesystem-hostile characters flattened, plus an FNV-1a hash of the
 * unflattened key and generator version so distinct keys — or the
 * same key across trace-generation changes — never collide.
 */
std::string
traceCacheFileName(const std::string &key)
{
    u64 h = 14695981039346656037ull;
    const auto fold = [&h](char c) {
        h ^= static_cast<u8>(c);
        h *= 1099511628211ull;
    };
    fold(static_cast<char>('0' + kTraceCacheVersion));
    fold('|');
    for (char c : key)
        fold(c);
    std::string name;
    name.reserve(key.size() + 24);
    for (char c : key) {
        const bool keep = (c >= 'a' && c <= 'z') ||
                          (c >= 'A' && c <= 'Z') ||
                          (c >= '0' && c <= '9') || c == '-' ||
                          c == '.' || c == '=';
        name += keep ? c : '_';
    }
    char hash[32];
    std::snprintf(hash, sizeof hash, "-v%u-%016llx", kTraceCacheVersion,
                  static_cast<unsigned long long>(h));
    return name + hash + ".trace";
}

/**
 * Run body(0..n-1) on up to @p threads workers. Work is claimed from
 * one atomic counter, so any body(i) runs exactly once; callers must
 * make bodies independent and write to disjoint slots.
 */
template <typename Body>
void
parallelFor(std::size_t n, u32 threads, const Body &body)
{
    u32 workers = threads != 0 ? threads
                               : std::max(1u, std::thread::hardware_concurrency());
    workers = static_cast<u32>(
        std::min<std::size_t>(workers, n));
    if (workers <= 1) {
        for (std::size_t i = 0; i < n; ++i)
            body(i);
        return;
    }
    std::atomic<std::size_t> next{0};
    auto worker = [&] {
        for (std::size_t i = next.fetch_add(1); i < n;
             i = next.fetch_add(1))
            body(i);
    };
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (u32 w = 0; w < workers; ++w)
        pool.emplace_back(worker);
    for (auto &t : pool)
        t.join();
}

/**
 * TraceFileWriteSink that never lets a cache-write failure disturb
 * the replay consuming the same phase stream: any TraceIoError from
 * the inner sink flips it into a black hole (the abandoned temporary
 * is cleaned up immediately), and finish() reports whether the file
 * was actually published. Results stay exact under ENOSPC; only
 * cache reuse is lost.
 */
class GuardedCacheSink final : public core::PhaseSink
{
  public:
    explicit GuardedCacheSink(const std::string &path)
    {
        try {
            inner_ = std::make_unique<TraceFileWriteSink>(path);
        } catch (const TraceIoError &) {
            failed_ = true;
        }
    }

    void
    consume(const core::Phase &phase) override
    {
        if (failed_)
            return;
        try {
            inner_->consume(phase);
        } catch (const TraceIoError &) {
            failed_ = true;
            inner_.reset();
        }
    }

    /** True when the cache file was published. */
    bool
    finish()
    {
        if (failed_)
            return false;
        try {
            inner_->finish();
            return true;
        } catch (const TraceIoError &) {
            failed_ = true;
            return false;
        }
    }

  private:
    std::unique_ptr<TraceFileWriteSink> inner_;
    bool failed_ = false;
};

} // namespace

void
ResultSet::add(RunRecord record)
{
    records_.push_back(std::move(record));
}

const RunResult *
ResultSet::find(const std::string &workload,
                const std::string &platform,
                protection::Scheme scheme) const
{
    for (const auto &r : records_) {
        if (r.key.scheme == scheme && r.key.workload == workload &&
            r.key.platform == platform)
            return &r.result;
    }
    return nullptr;
}

std::optional<double>
ResultSet::normalizedTime(const std::string &workload,
                          const std::string &platform,
                          protection::Scheme scheme) const
{
    const RunResult *np =
        find(workload, platform, protection::Scheme::NP);
    const RunResult *run = find(workload, platform, scheme);
    if (np == nullptr || run == nullptr || np->totalCycles == 0)
        return std::nullopt;
    return static_cast<double>(run->totalCycles) /
           static_cast<double>(np->totalCycles);
}

std::optional<double>
ResultSet::trafficIncrease(const std::string &workload,
                           const std::string &platform,
                           protection::Scheme scheme) const
{
    const RunResult *np =
        find(workload, platform, protection::Scheme::NP);
    const RunResult *run = find(workload, platform, scheme);
    if (np == nullptr || run == nullptr ||
        np->traffic.totalBytes() == 0)
        return std::nullopt;
    return static_cast<double>(run->traffic.totalBytes()) /
           static_cast<double>(np->traffic.totalBytes());
}

std::vector<std::string>
ResultSet::workloads() const
{
    std::vector<std::string> names;
    for (const auto &r : records_)
        if (std::find(names.begin(), names.end(), r.key.workload) ==
            names.end())
            names.push_back(r.key.workload);
    return names;
}

std::vector<std::string>
ResultSet::platforms() const
{
    std::vector<std::string> names;
    for (const auto &r : records_)
        if (std::find(names.begin(), names.end(), r.key.platform) ==
            names.end())
            names.push_back(r.key.platform);
    return names;
}

std::vector<protection::Scheme>
ResultSet::schemes() const
{
    std::vector<protection::Scheme> ss;
    for (const auto &r : records_)
        if (std::find(ss.begin(), ss.end(), r.key.scheme) == ss.end())
            ss.push_back(r.key.scheme);
    return ss;
}

SchemeComparison
ResultSet::comparison(const std::string &workload,
                      const std::string &platform) const
{
    SchemeComparison cmp;
    for (const auto &r : records_)
        if (r.key.workload == workload && r.key.platform == platform)
            cmp.results[r.key.scheme] = r.result;
    if (cmp.results.empty())
        fatal("ResultSet has no runs of '%s' on '%s'",
              workload.c_str(), platform.c_str());
    return cmp;
}

Experiment &
Experiment::workload(const std::string &name)
{
    entries_.push_back({name, false, {}});
    return *this;
}

Experiment &
Experiment::workloads(const std::vector<std::string> &names)
{
    for (const auto &n : names)
        workload(n);
    return *this;
}

Experiment &
Experiment::trace(const std::string &label, core::Trace trace)
{
    entries_.push_back({label, true, std::move(trace)});
    return *this;
}

Experiment &
Experiment::platform(const Platform &p)
{
    platforms_.push_back(p);
    return *this;
}

Experiment &
Experiment::platforms(const std::vector<Platform> &ps)
{
    platforms_.insert(platforms_.end(), ps.begin(), ps.end());
    return *this;
}

Experiment &
Experiment::schemes(const std::vector<protection::Scheme> &ss)
{
    schemes_ = ss;
    return *this;
}

Experiment &
Experiment::config(const protection::ProtectionConfig &cfg)
{
    config_ = cfg;
    return *this;
}

Experiment &
Experiment::threads(u32 n)
{
    threads_ = n;
    return *this;
}

Experiment &
Experiment::traceCacheDir(const std::string &dir)
{
    traceCacheDir_ = dir;
    return *this;
}

Experiment &
Experiment::traceCacheMaxBytes(u64 bytes)
{
    traceCacheMaxBytes_ = bytes;
    return *this;
}

Experiment &
Experiment::streaming(bool on)
{
    streaming_ = on;
    return *this;
}

Experiment &
Experiment::pipelined(bool on)
{
    pipelined_ = on;
    return *this;
}

Experiment &
Experiment::pipelineRingCapacity(std::size_t phases)
{
    pipelineRingCapacity_ = phases;
    return *this;
}

Experiment &
Experiment::replayThreads(u32 n)
{
    replayThreads_ = n;
    return *this;
}

u64
enforceTraceCacheLimit(const std::string &dir, u64 max_bytes)
{
    namespace fs = std::filesystem;
    struct CacheFile
    {
        fs::path path;
        fs::file_time_type mtime;
        u64 bytes = 0;
    };
    std::vector<CacheFile> files;
    u64 total = 0;
    std::error_code ec;
    for (const auto &entry : fs::directory_iterator(dir, ec)) {
        if (ec)
            break;
        if (!entry.is_regular_file(ec) || ec)
            continue;
        if (entry.path().extension() != ".trace")
            continue; // never delete anything the cache did not write
        std::error_code fec;
        const u64 bytes = entry.file_size(fec);
        if (fec)
            continue;
        const auto mtime = fs::last_write_time(entry.path(), fec);
        if (fec)
            continue;
        files.push_back({entry.path(), mtime, bytes});
        total += bytes;
    }
    std::sort(files.begin(), files.end(),
              [](const CacheFile &a, const CacheFile &b) {
                  return a.mtime != b.mtime ? a.mtime < b.mtime
                                            : a.path < b.path;
              });
    u64 evicted = 0;
    for (const auto &file : files) {
        if (total <= max_bytes)
            break;
        std::error_code rec;
        fs::remove(file.path, rec); // racing deleters are fine
        total -= file.bytes;
        ++evicted;
    }
    return evicted;
}

u64
sweepTraceCacheDebris(const std::string &dir,
                      std::chrono::seconds grace)
{
    namespace fs = std::filesystem;
    u64 removed = 0;
    std::error_code ec;
    const auto now = fs::file_time_type::clock::now();
    for (const auto &entry : fs::directory_iterator(dir, ec)) {
        if (ec)
            break;
        if (!entry.is_regular_file(ec) || ec)
            continue;
        const std::string name = entry.path().filename().string();
        const bool tmp = name.find(".trace.tmp.") != std::string::npos;
        const bool bad =
            name.size() > 10 &&
            name.compare(name.size() - 10, 10, ".trace.bad") == 0;
        if (!tmp && !bad)
            continue;
        std::error_code fec;
        const auto mtime = fs::last_write_time(entry.path(), fec);
        if (fec || now - mtime < grace)
            continue; // young debris may still have a live writer
        std::error_code rec;
        if (fs::remove(entry.path(), rec) && !rec)
            ++removed;
    }
    return removed;
}

ResultSet
Experiment::run() const
{
    const std::vector<protection::Scheme> schemes =
        schemes_.empty() ? allSchemes() : schemes_;

    // Expand the grid: one cell per entry x platform x scheme, where
    // an entry's platforms are the declared axis or (registry
    // workloads only) its domain default.
    struct Cell
    {
        const Entry *entry;
        Platform platform;
        protection::Scheme scheme;
        std::size_t traceJob; ///< index into jobs / traces
    };

    struct TraceJob
    {
        std::string name;     ///< registry name (generated jobs)
        Platform platform;    ///< platform it is generated for
        std::string cacheKey; ///< traceCacheKey (generated jobs)
        const core::Trace *explicitTrace = nullptr;
        u32 cellCount = 0;    ///< grid cells consuming this trace
        bool deferred = false; ///< cache fill happens in phase 2 (tee)
    };

    std::vector<Cell> cells;
    std::vector<TraceJob> jobs;
    std::map<std::string, std::size_t> jobByKey;

    for (const auto &entry : entries_) {
        std::vector<Platform> entry_platforms = platforms_;
        if (entry_platforms.empty()) {
            if (entry.isExplicitTrace)
                fatal("experiment trace '%s' needs platforms(...); "
                      "only registry workloads have a default platform",
                      entry.label.c_str());
            entry_platforms.push_back(defaultPlatform(entry.label));
        }
        for (const auto &platform : entry_platforms) {
            const std::string key =
                entry.isExplicitTrace
                    ? "trace:" + entry.label
                    : traceCacheKey(entry.label, platform);
            auto [it, inserted] =
                jobByKey.try_emplace(key, jobs.size());
            if (inserted)
                jobs.push_back({entry.label, platform,
                                entry.isExplicitTrace ? std::string{}
                                                      : key,
                                entry.isExplicitTrace
                                    ? &entry.explicitTrace
                                    : nullptr});
            else if (entry.isExplicitTrace &&
                     jobs[it->second].explicitTrace !=
                         &entry.explicitTrace)
                fatal("experiment has two different traces under the "
                      "label '%s'",
                      entry.label.c_str());
            for (protection::Scheme scheme : schemes)
                cells.push_back(
                    {&entry, platform, scheme, it->second});
        }
    }
    for (const Cell &cell : cells)
        ++jobs[cell.traceJob].cellCount;

    // Resolve the pipelining decision and the thread budget it must
    // respect. A pipelined cell occupies two threads (producer +
    // replay), so the pool shrinks to floor(budget / 2) workers —
    // `threads` stays a true concurrency cap either way — and a
    // one-thread budget cannot pipeline at all. The automatic default
    // pipelines only a single-cell grid: with several cells the pool
    // already uses the budget, and serial cells keep scheduling out
    // of the results entirely (the pipeline stall counters are the
    // one nondeterministic RunResult field).
    const u32 budget =
        threads_ != 0
            ? threads_
            : std::max(1u, std::thread::hardware_concurrency());
    const bool pipelined =
        streaming_ && budget >= 2 &&
        (pipelined_.has_value() ? *pipelined_ : cells.size() == 1);
    // Channel-sharded replay width per streamed cell (sim/shard.h),
    // clamped so one cell's thread cost — the replay pool plus a
    // producer when pipelined — never exceeds the budget. The cell
    // pool shrinks by the same cost, keeping `threads` a true cap.
    const u32 shardWidth =
        streaming_ ? std::min(std::max(1u, replayThreads_),
                              std::max(1u, pipelined ? budget - 1
                                                     : budget))
                   : 1u;
    const u32 cellCost = (pipelined ? 1u : 0u) + shardWidth;
    const u32 replayWorkers = std::max(1u, budget / cellCost);

    // A cache-missing trace consumed by exactly one pipelined cell
    // skips phase 1: the cell's producer thread tees phases into the
    // cache file while the replay consumes them, so the kernel runs
    // once instead of twice.
    if (pipelined && !traceCacheDir_.empty())
        for (TraceJob &job : jobs)
            job.deferred =
                job.explicitTrace == nullptr && job.cellCount == 1;

    // Phase 1: make each distinct trace available once, in parallel.
    // A fresh kernel per job keeps generation deterministic regardless
    // of scheduling. With a trace-cache directory set, a key that was
    // serialized by an earlier run (any process) is reused — its
    // mtime is touched so LRU eviction sees the use — and a missing
    // key is produced exactly once; distinct jobs write distinct
    // files, so the parallel writers never collide. On the streaming
    // path the kernel is serialized phase by phase (TraceFileWriteSink)
    // and nothing is materialized; without a cache directory the
    // streaming path needs no phase 1 at all — every cell streams its
    // own fresh kernel.
    // The cache directory is treated as unreliable: if it cannot be
    // created (or later misbehaves), the run degrades to streaming
    // kernels directly — results are exact either way, only reuse is
    // lost — and the fault is reported through the ResultSet's
    // cache-health stats instead of killing the process (the serving
    // daemon must outlive a broken disk; the CLI prints a warning).
    std::string cacheDir = traceCacheDir_;
    u64 cache_swept = 0;
    std::atomic<u64> cache_faults{0};
    if (!cacheDir.empty()) {
        std::error_code ec;
        std::filesystem::create_directories(cacheDir, ec);
        if (ec) {
            MGX_WARN("cannot create trace-cache dir '%s' (%s); "
                     "running uncached",
                     cacheDir.c_str(), ec.message().c_str());
            cache_faults.fetch_add(1, std::memory_order_relaxed);
            cacheDir.clear();
        } else {
            // Startup sweep: crashed writers leak `*.trace.tmp.*`
            // forever, quarantined files pile up; both go once aged.
            cache_swept = sweepTraceCacheDebris(cacheDir, kSweepGrace);
        }
    }
    const auto cacheFilePath = [&cacheDir](const TraceJob &job) {
        return (std::filesystem::path(cacheDir) /
                traceCacheFileName(job.cacheKey))
            .string();
    };
    std::vector<core::Trace> traces(jobs.size());
    std::atomic<u64> cache_hits{0};
    std::atomic<u64> cache_misses{0};
    std::atomic<u64> cache_quarantined{0};
    parallelFor(jobs.size(), budget, [&](std::size_t i) {
        if (jobs[i].explicitTrace != nullptr)
            return;
        if (jobs[i].deferred)
            return; // phase 2 fills the cache through the tee
        if (cacheDir.empty()) {
            if (!streaming_)
                traces[i] = makeKernel(jobs[i].name, jobs[i].platform)
                                ->generate();
            return;
        }
        const std::string file = cacheFilePath(jobs[i]);
        // Hit probe, shared by the fast path and the post-lock
        // re-check. The cache is shared across processes, so a foreign
        // evictor may delete the file at any instant: the materialized
        // path opens first and only counts a hit when the open
        // succeeded, the streaming path leaves the open to phase 2,
        // which already falls back to the kernel. A file that opens
        // but fails integrity verification is quarantined here so the
        // miss path below regenerates it.
        const auto tryHit = [&]() -> bool {
            if (!streaming_) {
                std::optional<core::Trace> trace;
                try {
                    trace = readTraceFileIfReadable(
                        file, /*require_checksum=*/true);
                } catch (const TraceIoError &) {
                    quarantineTraceFile(file);
                    cache_quarantined.fetch_add(
                        1, std::memory_order_relaxed);
                    return false;
                }
                if (!trace)
                    return false;
                traces[i] = std::move(*trace);
            } else {
                std::error_code ec;
                if (!std::filesystem::exists(file, ec) || ec)
                    return false;
            }
            std::error_code ec;
            std::filesystem::last_write_time(
                file, std::filesystem::file_time_type::clock::now(),
                ec); // touch-on-hit keeps mtime order = LRU order
            return true;
        };
        if (tryHit()) {
            cache_hits.fetch_add(1, std::memory_order_relaxed);
            return;
        }
        // Miss: take the per-key cross-process lock so two processes
        // missing on the same key generate once between them — the
        // loser of the race waits here, then finds the winner's file
        // on the re-check. (In-process, distinct jobs have distinct
        // keys, so the lock never self-serializes a grid.) Any cache
        // I/O failure inside the boundary — lock, write, publish —
        // degrades this job to uncached: the trace the cells need is
        // (re)generated from the kernel, which never touches disk.
        try {
            TraceCacheLock lock(file);
            if (tryHit()) {
                cache_hits.fetch_add(1, std::memory_order_relaxed);
                return;
            }
            if (streaming_) {
                auto kernel =
                    makeKernel(jobs[i].name, jobs[i].platform);
                TraceFileWriteSink sink(file);
                kernel->stream()->drainTo(sink);
                sink.finish();
            } else {
                traces[i] = makeKernel(jobs[i].name, jobs[i].platform)
                                ->generate();
                writeTraceFile(traces[i], file);
            }
            cache_misses.fetch_add(1, std::memory_order_relaxed);
        } catch (const TraceIoError &) {
            cache_faults.fetch_add(1, std::memory_order_relaxed);
            if (!streaming_ && traces[i].empty())
                traces[i] = makeKernel(jobs[i].name, jobs[i].platform)
                                ->generate();
            // Streaming cells find no file in phase 2 and stream
            // their own fresh kernel.
        }
    });

    // Phase 2: simulate every cell on fresh per-cell state. Streamed
    // cells pull phases from the cache file (when caching) or from
    // their own fresh kernel — deterministic either way, so the two
    // are bitwise-identical on every model output. Pipelined runs
    // consume the identical stream through the SPSC ring and differ
    // only in the scheduling-dependent pipeline counters.
    std::vector<RunResult> results(cells.size());
    parallelFor(cells.size(), replayWorkers, [&](std::size_t i) {
        const Cell &cell = cells[i];
        const TraceJob &job = jobs[cell.traceJob];
        // Model state is built fresh per simulation attempt: when a
        // cached replay dies mid-stream on a corrupt file, the retry
        // from the kernel must not inherit half-replayed DRAM or
        // metadata state.
        const auto simulateTrace =
            [&](const core::Trace &trace) -> RunResult {
            dram::DramSystem dram(cell.platform.dram);
            protection::ProtectionConfig cfg = config_;
            cfg.scheme = cell.scheme;
            protection::ProtectionEngine engine(cfg, &dram);
            PerfModel model(&engine, cell.platform.clockMhz);
            return model.run(trace);
        };
        const auto simulateStream =
            [&](core::PhaseSource &source,
                core::PhaseSink *tee) -> RunResult {
            dram::DramSystem dram(cell.platform.dram);
            protection::ProtectionConfig cfg = config_;
            cfg.scheme = cell.scheme;
            protection::ProtectionEngine engine(cfg, &dram);
            PerfModel model(&engine, cell.platform.clockMhz);
            // The pool lives for the whole replay (all phases plus
            // the final flush share its workers) and dies with the
            // attempt's DramSystem: a retry on fresh state gets a
            // fresh pool.
            std::optional<ShardPool> shard;
            if (shardWidth >= 2)
                shard.emplace(dram, shardWidth);
            if (!pipelined)
                return shard ? model.run(source, *shard)
                             : model.run(source);
            PipelineOptions options;
            options.ringCapacity = pipelineRingCapacity_;
            options.tee = tee;
            options.shard = shard ? &*shard : nullptr;
            return runPipelined(model, source, options);
        };
        if (job.explicitTrace != nullptr) {
            results[i] = simulateTrace(*job.explicitTrace);
            return;
        }
        if (!streaming_) {
            results[i] = simulateTrace(traces[cell.traceJob]);
            return;
        }
        if (!cacheDir.empty()) {
            const std::string file = cacheFilePath(job);
            // The cache is shared across processes, so another run's
            // eviction may have deleted the file since phase 1
            // touched it; fall back to streaming the kernel directly
            // (equal keys guarantee the identical phase stream). A
            // file that opens but fails verification — the checksum
            // footer is only reached at the end of the replay — is
            // quarantined, and the cell restarts on fresh state from
            // the kernel.
            if (auto source = FilePhaseSource::openIfReadable(
                    file, /*require_checksum=*/true)) {
                try {
                    RunResult r = simulateStream(*source, nullptr);
                    if (job.deferred) {
                        // Phase 1 never probed this key: account the
                        // hit and refresh the mtime for LRU order.
                        std::error_code ec;
                        std::filesystem::last_write_time(
                            file,
                            std::filesystem::file_time_type::clock::
                                now(),
                            ec);
                        cache_hits.fetch_add(
                            1, std::memory_order_relaxed);
                    }
                    results[i] = r;
                    return;
                } catch (const TraceIoError &) {
                    quarantineTraceFile(file);
                    cache_quarantined.fetch_add(
                        1, std::memory_order_relaxed);
                }
            }
            if (job.deferred) {
                // Single-cell cache miss: take the per-key
                // cross-process lock (another process may be
                // generating this very key right now), re-check, and
                // only then stream the kernel once, teeing each phase
                // into the cache file on the producer thread while
                // this thread replays it. The guarded tee absorbs
                // cache-write failures (ENOSPC mid-tee must not kill
                // the replay sharing its phase stream); lock failures
                // degrade the cell to plain uncached streaming below.
                try {
                    auto lock = std::make_unique<TraceCacheLock>(file);
                    if (auto raced = FilePhaseSource::openIfReadable(
                            file, /*require_checksum=*/true)) {
                        bool replayed = false;
                        try {
                            RunResult r =
                                simulateStream(*raced, nullptr);
                            std::error_code ec;
                            std::filesystem::last_write_time(
                                file,
                                std::filesystem::file_time_type::
                                    clock::now(),
                                ec);
                            cache_hits.fetch_add(
                                1, std::memory_order_relaxed);
                            results[i] = r;
                            replayed = true;
                        } catch (const TraceIoError &) {
                            quarantineTraceFile(file);
                            cache_quarantined.fetch_add(
                                1, std::memory_order_relaxed);
                        }
                        if (replayed)
                            return;
                        // fall through: regenerate under the lock
                    }
                    auto kernel = makeKernel(job.name, job.platform);
                    auto source = kernel->stream();
                    GuardedCacheSink sink(file);
                    results[i] = simulateStream(*source, &sink);
                    if (sink.finish())
                        cache_misses.fetch_add(
                            1, std::memory_order_relaxed);
                    else
                        cache_faults.fetch_add(
                            1, std::memory_order_relaxed);
                    lock.reset(); // published; waiters can hit now
                    return;
                } catch (const TraceIoError &) {
                    cache_faults.fetch_add(1,
                                           std::memory_order_relaxed);
                }
            }
        }
        auto kernel = makeKernel(job.name, job.platform);
        auto source = kernel->stream();
        results[i] = simulateStream(*source, nullptr);
    });

    if (!cacheDir.empty() && traceCacheMaxBytes_ > 0)
        enforceTraceCacheLimit(cacheDir, traceCacheMaxBytes_);

    ResultSet rs;
    rs.setTraceCacheStats(cache_hits.load(), cache_misses.load());
    rs.setTraceCacheHealth(cache_quarantined.load(), cache_swept,
                           cache_faults.load());
    for (std::size_t i = 0; i < cells.size(); ++i)
        rs.add({{cells[i].entry->label, cells[i].platform.name,
                 cells[i].scheme},
                results[i]});
    return rs;
}

} // namespace mgx::sim
