#include "experiment.h"

#include <algorithm>
#include <atomic>
#include <map>
#include <thread>

#include "common/log.h"
#include "workload_registry.h"

namespace mgx::sim {
namespace {

/**
 * Run body(0..n-1) on up to @p threads workers. Work is claimed from
 * one atomic counter, so any body(i) runs exactly once; callers must
 * make bodies independent and write to disjoint slots.
 */
template <typename Body>
void
parallelFor(std::size_t n, u32 threads, const Body &body)
{
    u32 workers = threads != 0 ? threads
                               : std::max(1u, std::thread::hardware_concurrency());
    workers = static_cast<u32>(
        std::min<std::size_t>(workers, n));
    if (workers <= 1) {
        for (std::size_t i = 0; i < n; ++i)
            body(i);
        return;
    }
    std::atomic<std::size_t> next{0};
    auto worker = [&] {
        for (std::size_t i = next.fetch_add(1); i < n;
             i = next.fetch_add(1))
            body(i);
    };
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (u32 w = 0; w < workers; ++w)
        pool.emplace_back(worker);
    for (auto &t : pool)
        t.join();
}

} // namespace

void
ResultSet::add(RunRecord record)
{
    records_.push_back(std::move(record));
}

const RunResult *
ResultSet::find(const std::string &workload,
                const std::string &platform,
                protection::Scheme scheme) const
{
    for (const auto &r : records_) {
        if (r.key.scheme == scheme && r.key.workload == workload &&
            r.key.platform == platform)
            return &r.result;
    }
    return nullptr;
}

std::optional<double>
ResultSet::normalizedTime(const std::string &workload,
                          const std::string &platform,
                          protection::Scheme scheme) const
{
    const RunResult *np =
        find(workload, platform, protection::Scheme::NP);
    const RunResult *run = find(workload, platform, scheme);
    if (np == nullptr || run == nullptr || np->totalCycles == 0)
        return std::nullopt;
    return static_cast<double>(run->totalCycles) /
           static_cast<double>(np->totalCycles);
}

std::optional<double>
ResultSet::trafficIncrease(const std::string &workload,
                           const std::string &platform,
                           protection::Scheme scheme) const
{
    const RunResult *np =
        find(workload, platform, protection::Scheme::NP);
    const RunResult *run = find(workload, platform, scheme);
    if (np == nullptr || run == nullptr ||
        np->traffic.totalBytes() == 0)
        return std::nullopt;
    return static_cast<double>(run->traffic.totalBytes()) /
           static_cast<double>(np->traffic.totalBytes());
}

std::vector<std::string>
ResultSet::workloads() const
{
    std::vector<std::string> names;
    for (const auto &r : records_)
        if (std::find(names.begin(), names.end(), r.key.workload) ==
            names.end())
            names.push_back(r.key.workload);
    return names;
}

std::vector<std::string>
ResultSet::platforms() const
{
    std::vector<std::string> names;
    for (const auto &r : records_)
        if (std::find(names.begin(), names.end(), r.key.platform) ==
            names.end())
            names.push_back(r.key.platform);
    return names;
}

std::vector<protection::Scheme>
ResultSet::schemes() const
{
    std::vector<protection::Scheme> ss;
    for (const auto &r : records_)
        if (std::find(ss.begin(), ss.end(), r.key.scheme) == ss.end())
            ss.push_back(r.key.scheme);
    return ss;
}

SchemeComparison
ResultSet::comparison(const std::string &workload,
                      const std::string &platform) const
{
    SchemeComparison cmp;
    for (const auto &r : records_)
        if (r.key.workload == workload && r.key.platform == platform)
            cmp.results[r.key.scheme] = r.result;
    if (cmp.results.empty())
        fatal("ResultSet has no runs of '%s' on '%s'",
              workload.c_str(), platform.c_str());
    return cmp;
}

Experiment &
Experiment::workload(const std::string &name)
{
    entries_.push_back({name, false, {}});
    return *this;
}

Experiment &
Experiment::workloads(const std::vector<std::string> &names)
{
    for (const auto &n : names)
        workload(n);
    return *this;
}

Experiment &
Experiment::trace(const std::string &label, core::Trace trace)
{
    entries_.push_back({label, true, std::move(trace)});
    return *this;
}

Experiment &
Experiment::platform(const Platform &p)
{
    platforms_.push_back(p);
    return *this;
}

Experiment &
Experiment::platforms(const std::vector<Platform> &ps)
{
    platforms_.insert(platforms_.end(), ps.begin(), ps.end());
    return *this;
}

Experiment &
Experiment::schemes(const std::vector<protection::Scheme> &ss)
{
    schemes_ = ss;
    return *this;
}

Experiment &
Experiment::config(const protection::ProtectionConfig &cfg)
{
    config_ = cfg;
    return *this;
}

Experiment &
Experiment::threads(u32 n)
{
    threads_ = n;
    return *this;
}

ResultSet
Experiment::run() const
{
    const std::vector<protection::Scheme> schemes =
        schemes_.empty() ? allSchemes() : schemes_;

    // Expand the grid: one cell per entry x platform x scheme, where
    // an entry's platforms are the declared axis or (registry
    // workloads only) its domain default.
    struct Cell
    {
        const Entry *entry;
        Platform platform;
        protection::Scheme scheme;
        std::size_t traceJob; ///< index into jobs / traces
    };

    struct TraceJob
    {
        std::string name;     ///< registry name (generated jobs)
        Platform platform;    ///< platform it is generated for
        const core::Trace *explicitTrace = nullptr;
    };

    std::vector<Cell> cells;
    std::vector<TraceJob> jobs;
    std::map<std::string, std::size_t> jobByKey;

    for (const auto &entry : entries_) {
        std::vector<Platform> entry_platforms = platforms_;
        if (entry_platforms.empty()) {
            if (entry.isExplicitTrace)
                fatal("experiment trace '%s' needs platforms(...); "
                      "only registry workloads have a default platform",
                      entry.label.c_str());
            entry_platforms.push_back(defaultPlatform(entry.label));
        }
        for (const auto &platform : entry_platforms) {
            const std::string key =
                entry.isExplicitTrace
                    ? "trace:" + entry.label
                    : traceCacheKey(entry.label, platform);
            auto [it, inserted] =
                jobByKey.try_emplace(key, jobs.size());
            if (inserted)
                jobs.push_back({entry.label, platform,
                                entry.isExplicitTrace
                                    ? &entry.explicitTrace
                                    : nullptr});
            else if (entry.isExplicitTrace &&
                     jobs[it->second].explicitTrace !=
                         &entry.explicitTrace)
                fatal("experiment has two different traces under the "
                      "label '%s'",
                      entry.label.c_str());
            for (protection::Scheme scheme : schemes)
                cells.push_back(
                    {&entry, platform, scheme, it->second});
        }
    }

    // Phase 1: generate each distinct trace once, in parallel. A
    // fresh kernel per job keeps generation deterministic regardless
    // of scheduling.
    std::vector<core::Trace> traces(jobs.size());
    parallelFor(jobs.size(), threads_, [&](std::size_t i) {
        if (jobs[i].explicitTrace == nullptr)
            traces[i] =
                makeKernel(jobs[i].name, jobs[i].platform)->generate();
    });

    // Phase 2: simulate every cell on fresh per-cell state.
    std::vector<RunResult> results(cells.size());
    parallelFor(cells.size(), threads_, [&](std::size_t i) {
        const Cell &cell = cells[i];
        const core::Trace &trace =
            jobs[cell.traceJob].explicitTrace != nullptr
                ? *jobs[cell.traceJob].explicitTrace
                : traces[cell.traceJob];
        dram::DramSystem dram(cell.platform.dram);
        protection::ProtectionConfig cfg = config_;
        cfg.scheme = cell.scheme;
        protection::ProtectionEngine engine(cfg, &dram);
        PerfModel model(&engine, cell.platform.clockMhz);
        results[i] = model.run(trace);
    });

    ResultSet rs;
    for (std::size_t i = 0; i < cells.size(); ++i)
        rs.add({{cells[i].entry->label, cells[i].platform.name,
                 cells[i].scheme},
                results[i]});
    return rs;
}

} // namespace mgx::sim
