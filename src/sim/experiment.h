/**
 * @file
 * The experiment API: declare a workload x platform x scheme grid,
 * run it on a thread pool, and get a structured ResultSet back — the
 * programmatic form of "one paper figure".
 *
 *   ResultSet rs = Experiment()
 *                      .workloads({"dnn/ResNet", "dnn/BERT"})
 *                      .platforms({cloudPlatform(), edgePlatform()})
 *                      .schemes(trafficSchemes())
 *                      .run();
 *   double t = rs.trafficIncrease("dnn/ResNet", "Cloud",
 *                                 protection::Scheme::BP).value();
 *
 * Each grid cell simulates on a fresh DramSystem/ProtectionEngine, so
 * cells are independent and run embarrassingly parallel.
 *
 * Registry workloads run through the streaming phase pipeline by
 * default: each cell pulls phases straight off a fresh kernel (or off
 * the on-disk trace cache, which phase 1 populates by streaming the
 * kernel once per traceCacheKey() without materializing), so memory
 * stays bounded by one phase regardless of workload size —
 * RunResult::peakPhaseBytes reports the high-water mark. streaming
 * (false) restores the materialize-then-replay path: each distinct
 * trace is generated once and shared read-only by every cell that
 * consumes it. Both paths are bitwise-identical on every model output
 * (cycles, traffic, access counts); only the trace-footprint fields
 * (traceBytes, peakPhaseBytes) depend on the path, since they
 * describe the replay's memory behaviour itself. Results are
 * deterministic and independent of the thread count.
 */

#ifndef MGX_SIM_EXPERIMENT_H
#define MGX_SIM_EXPERIMENT_H

#include <chrono>
#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "runner.h"

namespace mgx::sim {

/** Grid coordinates of one simulated run. */
struct RunKey
{
    std::string workload;  ///< registry name or explicit-trace label
    std::string platform;  ///< Platform::name
    protection::Scheme scheme = protection::Scheme::NP;
};

/** One grid cell's coordinates and simulation outcome. */
struct RunRecord
{
    RunKey key;
    RunResult result;
};

/**
 * The results of one experiment, in deterministic grid order
 * (workloads x platforms x schemes as declared).
 *
 * The normalized accessors return std::nullopt when the cell or its
 * NP baseline is missing — never a plausible-looking 0.0.
 */
class ResultSet
{
  public:
    void add(RunRecord record);

    const std::vector<RunRecord> &records() const { return records_; }
    bool empty() const { return records_.empty(); }

    /** Trace-cache outcome of the run (0/0 when caching was off). */
    u64 traceCacheHits() const { return traceCacheHits_; }
    u64 traceCacheMisses() const { return traceCacheMisses_; }

    /** Cache files that failed integrity verification this run and
     *  were renamed to `*.trace.bad` (the cell regenerated from the
     *  kernel instead). */
    u64 traceCacheQuarantined() const { return traceCacheQuarantined_; }

    /** Abandoned `*.trace.tmp.*` / stale `*.trace.bad` files removed
     *  by the startup sweep. */
    u64 traceCacheSwept() const { return traceCacheSwept_; }

    /** Cache-machinery failures (unwritable dir, failed lock, failed
     *  publish) the run absorbed by streaming kernels directly. */
    u64 traceCacheFaults() const { return traceCacheFaults_; }

    /** True when any cell ran uncached because the cache misbehaved —
     *  results are still exact, only reuse was lost. */
    bool cacheDegraded() const { return traceCacheFaults_ > 0; }

    /** Record the trace-cache outcome (set by Experiment::run). */
    void
    setTraceCacheStats(u64 hits, u64 misses)
    {
        traceCacheHits_ = hits;
        traceCacheMisses_ = misses;
    }

    /** Record the cache-health outcome (set by Experiment::run). */
    void
    setTraceCacheHealth(u64 quarantined, u64 swept, u64 faults)
    {
        traceCacheQuarantined_ = quarantined;
        traceCacheSwept_ = swept;
        traceCacheFaults_ = faults;
    }

    /** The cell at @p key, or nullptr if it was never run. */
    const RunResult *find(const std::string &workload,
                          const std::string &platform,
                          protection::Scheme scheme) const;

    /**
     * Execution time of (workload, platform, scheme) normalized to the
     * same cell's NP run; nullopt if either run is missing.
     */
    std::optional<double> normalizedTime(const std::string &workload,
                                         const std::string &platform,
                                         protection::Scheme scheme) const;

    /** Total memory traffic normalized the same way. */
    std::optional<double>
    trafficIncrease(const std::string &workload,
                    const std::string &platform,
                    protection::Scheme scheme) const;

    /** Workload labels in first-seen order. */
    std::vector<std::string> workloads() const;

    /** Platform names in first-seen order. */
    std::vector<std::string> platforms() const;

    /** Schemes in first-seen order. */
    std::vector<protection::Scheme> schemes() const;

    /**
     * Legacy bridge: the (workload, platform) slice as a
     * SchemeComparison. Fatal if no such cells exist.
     */
    SchemeComparison comparison(const std::string &workload,
                                const std::string &platform) const;

  private:
    std::vector<RunRecord> records_;
    u64 traceCacheHits_ = 0;
    u64 traceCacheMisses_ = 0;
    u64 traceCacheQuarantined_ = 0;
    u64 traceCacheSwept_ = 0;
    u64 traceCacheFaults_ = 0;
};

/** Builder for one workload x platform x scheme run grid. */
class Experiment
{
  public:
    /** Add one registry workload (see workload_registry.h). */
    Experiment &workload(const std::string &name);

    /** Add several registry workloads. */
    Experiment &workloads(const std::vector<std::string> &names);

    /**
     * Add an explicit pre-generated trace under @p label — for
     * schedules the registry cannot name (edited traces, replayed
     * files). Requires platforms() to be set.
     */
    Experiment &trace(const std::string &label, core::Trace trace);

    /** Add one platform to the grid. */
    Experiment &platform(const Platform &p);

    /**
     * Set the platform axis. When never called, each registry
     * workload runs on its domain's defaultPlatform().
     */
    Experiment &platforms(const std::vector<Platform> &ps);

    /** Set the scheme axis (default: allSchemes()). */
    Experiment &schemes(const std::vector<protection::Scheme> &ss);

    /** Protection parameters shared by every cell (scheme overwritten). */
    Experiment &config(const protection::ProtectionConfig &cfg);

    /** Worker threads: 0 = hardware concurrency, 1 = serial. */
    Experiment &threads(u32 n);

    /**
     * Cache generated traces on disk under @p dir (created if
     * missing), keyed by traceCacheKey(): a later run — including a
     * separate process — that needs the same trace deserializes it
     * instead of re-running the kernel. Equal keys guarantee equal
     * traces, so a cached cell is bit-identical to a generated one on
     * every model output (cycles, traffic, access counts); only the
     * trace-footprint fields (RunResult::traceBytes, peakPhaseBytes) —
     * which describe how the trace was held in memory — may differ.
     * Explicit traces added with trace() are never cached. Cache hits
     * refresh the file's mtime, so the LRU size cap (see
     * traceCacheMaxBytes) evicts the least recently *used* trace.
     *
     * The directory is safe to share between concurrent processes
     * (several experiments, a serving daemon plus mgx_run, ...):
     * publishes are atomic tmp+rename, a per-key flock
     * (TraceCacheLock) makes concurrent misses on one key generate
     * exactly once between all processes, and a reader racing a
     * foreign eviction falls back to streaming the kernel directly.
     */
    Experiment &traceCacheDir(const std::string &dir);

    /**
     * LRU size cap for the trace-cache directory: after the run,
     * evict the oldest-mtime *.trace files until the directory's
     * total is back under @p bytes (0 = unbounded, the default).
     * Requires traceCacheDir(). A long-lived checkout can leave the
     * cache on without it growing without bound.
     */
    Experiment &traceCacheMaxBytes(u64 bytes);

    /**
     * Select the replay path for registry workloads: true (default)
     * streams phases straight off the kernel / cache file; false
     * materializes each distinct trace first and shares it across
     * cells. Model outputs are identical either way.
     */
    Experiment &streaming(bool on);

    /**
     * Pipeline each streamed cell's trace generation and replay onto
     * two threads over a bounded SPSC phase ring (see sim/pipeline.h)
     * — bitwise-identical results, but a long single cell is no
     * longer bound by one core. When never called the choice is
     * automatic: on when the grid has exactly one cell (the pool
     * cannot help), off otherwise (cross-cell parallelism already
     * fills the thread budget).
     *
     * The thread budget stays a true cap either way: a pipelined cell
     * costs two threads (producer + replay), so the pool runs at most
     * floor(threads / 2) cells at once, and pipelining is disabled
     * when the budget is a single thread. Requires streaming();
     * materialized and explicit-trace cells always replay serially.
     *
     * On a trace-cache miss whose trace only one cell consumes, the
     * producer tees phases into the cache file while the replay
     * consumes them — the cache is populated without a separate
     * generation pass.
     */
    Experiment &pipelined(bool on);

    /**
     * Slots in each pipelined cell's phase ring (default 8). Results
     * are invariant under the capacity; it bounds how far generation
     * runs ahead of replay.
     */
    Experiment &pipelineRingCapacity(std::size_t phases);

    /**
     * Channel-sharded replay width per streamed cell (see
     * sim/shard.h): n >= 2 replays each phase's per-channel DRAM
     * lanes on a persistent pool of n threads (clamped to the
     * platform's channel count) with a deterministic merge pass —
     * bitwise-identical to serial replay on every field except the
     * RunResult::shard* diagnostics, for every n. 0 or 1 (default)
     * replays serially. Composes with pipelined(): such a cell
     * budgets 1 + n threads against threads(), and the pool size
     * shrinks so the cap stays true; a budget too small for the
     * requested width clamps the width rather than oversubscribing.
     * Requires streaming(); materialized and explicit-trace cells
     * always replay serially.
     */
    Experiment &replayThreads(u32 n);

    /** Expand the grid, simulate every cell, return the results. */
    ResultSet run() const;

  private:
    struct Entry
    {
        std::string label;
        bool isExplicitTrace = false;
        core::Trace explicitTrace;
    };

    std::vector<Entry> entries_;
    std::vector<Platform> platforms_;
    std::vector<protection::Scheme> schemes_;
    protection::ProtectionConfig config_;
    u32 threads_ = 0;
    std::string traceCacheDir_;
    u64 traceCacheMaxBytes_ = 0;
    bool streaming_ = true;
    std::optional<bool> pipelined_; ///< unset = automatic (see pipelined())
    std::size_t pipelineRingCapacity_ = 8;
    u32 replayThreads_ = 1;
};

/**
 * Enforce the trace-cache LRU size cap on @p dir: while the total
 * size of its *.trace files exceeds @p max_bytes, delete the one with
 * the oldest mtime (reads touch their file, so mtime order is LRU
 * order). Other files are never touched. Returns the number of files
 * evicted. Missing directories and racing deleters are tolerated —
 * the cache is shared across processes.
 */
u64 enforceTraceCacheLimit(const std::string &dir, u64 max_bytes);

/**
 * Remove trace-cache debris from @p dir: abandoned `*.trace.tmp.*`
 * temporaries (a writer that crashed between open and publish leaks
 * one forever) and stale `*.trace.bad` quarantine files, both only
 * when older than @p grace — a live writer's temporary is never
 * touched. Returns the number of files removed. Experiment::run
 * performs this sweep on its cache directory at startup; racing
 * sweepers across processes are tolerated.
 */
u64 sweepTraceCacheDebris(const std::string &dir,
                          std::chrono::seconds grace);

} // namespace mgx::sim

#endif // MGX_SIM_EXPERIMENT_H
