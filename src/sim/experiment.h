/**
 * @file
 * The experiment API: declare a workload x platform x scheme grid,
 * run it on a thread pool, and get a structured ResultSet back — the
 * programmatic form of "one paper figure".
 *
 *   ResultSet rs = Experiment()
 *                      .workloads({"dnn/ResNet", "dnn/BERT"})
 *                      .platforms({cloudPlatform(), edgePlatform()})
 *                      .schemes(trafficSchemes())
 *                      .run();
 *   double t = rs.trafficIncrease("dnn/ResNet", "Cloud",
 *                                 protection::Scheme::BP).value();
 *
 * Each grid cell simulates on a fresh DramSystem/ProtectionEngine, so
 * cells are independent and run embarrassingly parallel. Each
 * workload's trace is generated once per traceCacheKey() and shared
 * read-only by every cell that consumes it (a Cloud+Edge grid of a
 * platform-independent workload generates one trace, not two).
 * Results are deterministic and independent of the thread count.
 */

#ifndef MGX_SIM_EXPERIMENT_H
#define MGX_SIM_EXPERIMENT_H

#include <optional>
#include <string>
#include <vector>

#include "runner.h"

namespace mgx::sim {

/** Grid coordinates of one simulated run. */
struct RunKey
{
    std::string workload;  ///< registry name or explicit-trace label
    std::string platform;  ///< Platform::name
    protection::Scheme scheme = protection::Scheme::NP;
};

/** One grid cell's coordinates and simulation outcome. */
struct RunRecord
{
    RunKey key;
    RunResult result;
};

/**
 * The results of one experiment, in deterministic grid order
 * (workloads x platforms x schemes as declared).
 *
 * The normalized accessors return std::nullopt when the cell or its
 * NP baseline is missing — never a plausible-looking 0.0.
 */
class ResultSet
{
  public:
    void add(RunRecord record);

    const std::vector<RunRecord> &records() const { return records_; }
    bool empty() const { return records_.empty(); }

    /** Trace-cache outcome of the run (0/0 when caching was off). */
    u64 traceCacheHits() const { return traceCacheHits_; }
    u64 traceCacheMisses() const { return traceCacheMisses_; }

    /** Record the trace-cache outcome (set by Experiment::run). */
    void
    setTraceCacheStats(u64 hits, u64 misses)
    {
        traceCacheHits_ = hits;
        traceCacheMisses_ = misses;
    }

    /** The cell at @p key, or nullptr if it was never run. */
    const RunResult *find(const std::string &workload,
                          const std::string &platform,
                          protection::Scheme scheme) const;

    /**
     * Execution time of (workload, platform, scheme) normalized to the
     * same cell's NP run; nullopt if either run is missing.
     */
    std::optional<double> normalizedTime(const std::string &workload,
                                         const std::string &platform,
                                         protection::Scheme scheme) const;

    /** Total memory traffic normalized the same way. */
    std::optional<double>
    trafficIncrease(const std::string &workload,
                    const std::string &platform,
                    protection::Scheme scheme) const;

    /** Workload labels in first-seen order. */
    std::vector<std::string> workloads() const;

    /** Platform names in first-seen order. */
    std::vector<std::string> platforms() const;

    /** Schemes in first-seen order. */
    std::vector<protection::Scheme> schemes() const;

    /**
     * Legacy bridge: the (workload, platform) slice as a
     * SchemeComparison. Fatal if no such cells exist.
     */
    SchemeComparison comparison(const std::string &workload,
                                const std::string &platform) const;

  private:
    std::vector<RunRecord> records_;
    u64 traceCacheHits_ = 0;
    u64 traceCacheMisses_ = 0;
};

/** Builder for one workload x platform x scheme run grid. */
class Experiment
{
  public:
    /** Add one registry workload (see workload_registry.h). */
    Experiment &workload(const std::string &name);

    /** Add several registry workloads. */
    Experiment &workloads(const std::vector<std::string> &names);

    /**
     * Add an explicit pre-generated trace under @p label — for
     * schedules the registry cannot name (edited traces, replayed
     * files). Requires platforms() to be set.
     */
    Experiment &trace(const std::string &label, core::Trace trace);

    /** Add one platform to the grid. */
    Experiment &platform(const Platform &p);

    /**
     * Set the platform axis. When never called, each registry
     * workload runs on its domain's defaultPlatform().
     */
    Experiment &platforms(const std::vector<Platform> &ps);

    /** Set the scheme axis (default: allSchemes()). */
    Experiment &schemes(const std::vector<protection::Scheme> &ss);

    /** Protection parameters shared by every cell (scheme overwritten). */
    Experiment &config(const protection::ProtectionConfig &cfg);

    /** Worker threads: 0 = hardware concurrency, 1 = serial. */
    Experiment &threads(u32 n);

    /**
     * Cache generated traces on disk under @p dir (created if
     * missing), keyed by traceCacheKey(): a later run — including a
     * separate process — that needs the same trace deserializes it
     * instead of re-running the kernel. Equal keys guarantee equal
     * traces, so a cached cell is bit-identical to a generated one on
     * every model output (cycles, traffic, access counts); only
     * RunResult::traceBytes — the in-memory footprint of the trace
     * container, which depends on how it was built — may differ.
     * Explicit traces added with trace() are never cached.
     */
    Experiment &traceCacheDir(const std::string &dir);

    /** Expand the grid, simulate every cell, return the results. */
    ResultSet run() const;

  private:
    struct Entry
    {
        std::string label;
        bool isExplicitTrace = false;
        core::Trace explicitTrace;
    };

    std::vector<Entry> entries_;
    std::vector<Platform> platforms_;
    std::vector<protection::Scheme> schemes_;
    protection::ProtectionConfig config_;
    u32 threads_ = 0;
    std::string traceCacheDir_;
};

} // namespace mgx::sim

#endif // MGX_SIM_EXPERIMENT_H
