/**
 * @file
 * Channel-sharded replay: the DRAM half of one cell's per-phase step
 * spread over worker threads, one stream per DRAM channel.
 *
 * Why this is bitwise-identical to serial replay. Within a phase every
 * access arrives at the same issue cycle (the perf model's mem_free
 * edge), so the engine expansion never depends on DRAM completion
 * times — only on access order, which the capture pass preserves
 * exactly (it runs the unchanged ProtectionEngine code over the
 * unchanged DramSystem entry points, merely diverting the decoded
 * requests into per-channel lanes instead of timing them inline).
 * Each DramChannel's timing state (banks, bus, activate windows,
 * refresh) is entirely channel-local and evolves only with its own
 * ordered request stream, so replaying each lane in order — on any
 * thread — reproduces the serial per-request completions bit for bit,
 * and the phase's data_ready is their max:
 *
 *   data_ready = max(issue, max_plain, max_crypto + cryptoLatency)
 *
 * where max_crypto ranges over requests of read accesses under a
 * protected scheme (the engine adds the constant AES latency once per
 * such access after maxing its own requests; with a shared arrival
 * the per-access and per-group foldings are equal, because every
 * non-empty access issues at least one request).
 *
 * Determinism across thread counts: lanes are partitioned statically
 * (channel c belongs to participant c % width), each lane replays on
 * exactly one thread, and max/sum merges are order-insensitive — so
 * results are identical for any pool width, and per-channel loads are
 * identical even *across* widths. Only ShardPool::mergeWaits depends
 * on scheduling.
 */

#ifndef MGX_SIM_SHARD_H
#define MGX_SIM_SHARD_H

#include <condition_variable>
#include <mutex>
#include <thread>
#include <vector>

#include "dram/dram_system.h"
#include "perf_model.h"

namespace mgx::sim {

/**
 * A persistent pool of replay workers bound to one DramSystem's
 * channels, reused across all phases (and the final flush) of one
 * cell. Participant 0 is the calling thread itself, so a pool of
 * width W costs W threads total while a replay step is in flight —
 * width 1 replays inline with no background thread at all (the
 * capture/merge machinery still runs, which is what the equivalence
 * tests exercise).
 *
 * The calling thread must not touch the DramSystem between
 * beginning a replay() and its return.
 */
class ShardPool
{
  public:
    /**
     * @param dram    the system whose channels the lanes replay into
     * @param threads requested width; clamped to [1, channelCount]
     */
    ShardPool(dram::DramSystem &dram, u32 threads);

    /** Joins all workers; must not be called mid-replay. */
    ~ShardPool();

    ShardPool(const ShardPool &) = delete;
    ShardPool &operator=(const ShardPool &) = delete;

    /**
     * Replay @p buf's lanes against the channels and merge: returns
     * max(issue, plain completions, crypto completions +
     * @p crypto_latency), never less than @p issue. Also folds this
     * step into the per-channel load counters.
     */
    Cycles replay(const dram::CaptureBuffer &buf, Cycles issue,
                  Cycles crypto_latency);

    /** Actual pool width: min(requested, channels), >= 1. */
    u32 width() const { return width_; }

    /**
     * How often the merge barrier found a worker still replaying and
     * had to block. Scheduling-dependent; diagnostics only.
     */
    u64 mergeWaits() const { return mergeWaits_; }

    /** Per-channel cumulative load (deterministic; see file header). */
    const std::vector<ShardChannelLoad> &
    channelLoads() const
    {
        return loads_;
    }

  private:
    /** One lane's replay outcome for the current step. */
    struct LaneResult
    {
        Cycles plainMax = 0;
        Cycles cryptoMax = 0;
    };

    /** Replay the lanes participant @p p owns (channels p, p+W, ...). */
    void replayLanes(u32 p);

    void workerLoop(u32 p);

    dram::DramSystem &dram_;
    u32 width_ = 1;
    std::vector<ShardChannelLoad> loads_;
    std::vector<LaneResult> results_; ///< per channel, disjoint writers

    // Current step, published under mu_ by bumping generation_.
    const dram::CaptureBuffer *buf_ = nullptr;
    Cycles issue_ = 0;

    std::mutex mu_;
    std::condition_variable startCv_; ///< workers wait for a new step
    std::condition_variable doneCv_;  ///< caller waits for pending_ == 0
    u64 generation_ = 0;
    u32 pending_ = 0;
    bool stop_ = false;
    u64 mergeWaits_ = 0;

    std::vector<std::thread> workers_; ///< participants 1..width-1
};

} // namespace mgx::sim

#endif // MGX_SIM_SHARD_H
