#include "perf_model.h"

#include <algorithm>
#include <cmath>

#include "shard.h"

namespace mgx::sim {

PerfModel::PerfModel(protection::ProtectionEngine *engine,
                     double accel_mhz, double ctrl_mhz)
    : engine_(engine), accelMhz_(accel_mhz), ctrlMhz_(ctrl_mhz)
{
}

Cycles
PerfModel::toCtrl(Cycles accel_cycles) const
{
    return static_cast<Cycles>(
        std::ceil(static_cast<double>(accel_cycles) * ctrlMhz_ /
                  accelMhz_));
}

void
PerfModel::step(Replay &rep, Cycles compute_cycles,
                std::span<const core::LogicalAccess> accesses)
{
    const Cycles issue = rep.memFree;
    Cycles data_ready = issue;
    for (const auto &acc : accesses)
        data_ready = std::max(data_ready, engine_->access(acc, issue));
    rep.memBusy += data_ready - issue;
    rep.memFree = data_ready;

    const Cycles compute = toCtrl(compute_cycles);
    const Cycles start = std::max(data_ready, rep.computeDone);
    rep.computeDone = start + compute;
    rep.computeTotal += compute;
}

void
PerfModel::stepSharded(Replay &rep, Cycles compute_cycles,
                       std::span<const core::LogicalAccess> accesses,
                       ShardPool &shard, dram::CaptureBuffer &capture)
{
    const Cycles issue = rep.memFree;
    dram::DramSystem &dram = engine_->dram();
    const protection::ProtectionConfig &cfg = engine_->config();
    const bool protected_scheme =
        cfg.scheme != protection::Scheme::NP;

    // Expansion: the engine runs unchanged, in the serial access
    // order, over the unchanged DramSystem entry points — its cache,
    // walker, and traffic state cannot diverge from a serial replay.
    // Only the decoded requests are diverted into per-channel lanes
    // (their completions never feed back into the expansion, since
    // every access of a phase shares one arrival).
    capture.reset(dram.channelCount(), issue);
    dram.beginCapture(&capture);
    for (const auto &acc : accesses) {
        capture.setCryptoTag(protected_scheme &&
                             acc.type == AccessType::Read);
        engine_->access(acc, issue);
    }
    dram.endCapture();

    const Cycles data_ready =
        shard.replay(capture, issue, cfg.cryptoLatency);
    rep.memBusy += data_ready - issue;
    rep.memFree = data_ready;

    const Cycles compute = toCtrl(compute_cycles);
    const Cycles start = std::max(data_ready, rep.computeDone);
    rep.computeDone = start + compute;
    rep.computeTotal += compute;
}

RunResult
PerfModel::package(const Replay &rep, Cycles flushed, u64 trace_bytes,
                   u64 peak_phase_bytes)
{
    RunResult result;
    result.totalCycles = std::max(rep.computeDone, flushed);
    result.computeCycles = rep.computeTotal;
    result.memoryCycles = rep.memBusy;
    result.traffic = engine_->traffic();
    result.dramAccesses = engine_->dram().accessCount();
    result.logicalAccesses = engine_->logicalAccesses();
    result.traceBytes = trace_bytes;
    result.peakPhaseBytes = peak_phase_bytes;
    result.metaCacheHits = engine_->metaCache().hits();
    result.metaCacheMisses = engine_->metaCache().misses();
    result.metaCacheWritebacks = engine_->metaCache().writebacks();
    result.seconds =
        static_cast<double>(result.totalCycles) / (ctrlMhz_ * 1e6);
    return result;
}

RunResult
PerfModel::finish(const Replay &rep, u64 trace_bytes,
                  u64 peak_phase_bytes)
{
    return package(rep, engine_->flush(rep.memFree), trace_bytes,
                   peak_phase_bytes);
}

RunResult
PerfModel::run(const core::Trace &trace)
{
    Replay rep;
    for (const auto &phase : trace)
        step(rep, phase.computeCycles, phase.accesses);
    // The whole trace is resident while it replays.
    return finish(rep, trace.memoryBytes(), trace.memoryBytes());
}

/** Feeds each streamed phase into step() the moment it arrives. */
class PerfModel::StreamSink final : public core::PhaseSink
{
  public:
    StreamSink(PerfModel &model, Replay &rep)
        : model_(&model), rep_(&rep)
    {
    }

    void
    consume(const core::Phase &phase) override
    {
        model_->step(*rep_, phase.computeCycles,
                     {phase.accesses.data(), phase.accesses.size()});
        const u64 bytes = core::phaseArenaBytes(phase);
        streamedBytes_ += bytes;
        peakBytes_ = std::max(peakBytes_, bytes);
    }

    u64 streamedBytes() const { return streamedBytes_; }
    u64 peakBytes() const { return peakBytes_; }

  private:
    PerfModel *model_;
    Replay *rep_;
    u64 streamedBytes_ = 0; ///< arena bytes a materialization would hold
    u64 peakBytes_ = 0;     ///< largest phase buffer seen at once
};

RunResult
PerfModel::run(core::PhaseSource &source)
{
    Replay rep;
    StreamSink sink(*this, rep);
    source.drainTo(sink);
    return finish(rep, sink.streamedBytes(), sink.peakBytes());
}

/** StreamSink's sharded twin: each phase goes through stepSharded(). */
class PerfModel::ShardSink final : public core::PhaseSink
{
  public:
    ShardSink(PerfModel &model, Replay &rep, ShardPool &shard,
              dram::CaptureBuffer &capture)
        : model_(&model), rep_(&rep), shard_(&shard),
          capture_(&capture)
    {
    }

    void
    consume(const core::Phase &phase) override
    {
        model_->stepSharded(*rep_, phase.computeCycles,
                            {phase.accesses.data(),
                             phase.accesses.size()},
                            *shard_, *capture_);
        const u64 bytes = core::phaseArenaBytes(phase);
        streamedBytes_ += bytes;
        peakBytes_ = std::max(peakBytes_, bytes);
    }

    u64 streamedBytes() const { return streamedBytes_; }
    u64 peakBytes() const { return peakBytes_; }

  private:
    PerfModel *model_;
    Replay *rep_;
    ShardPool *shard_;
    dram::CaptureBuffer *capture_;
    u64 streamedBytes_ = 0;
    u64 peakBytes_ = 0;
};

RunResult
PerfModel::run(core::PhaseSource &source, ShardPool &shard)
{
    Replay rep;
    dram::DramSystem &dram = engine_->dram();
    dram::CaptureBuffer capture;
    ShardSink sink(*this, rep, shard, capture);
    source.drainTo(sink);

    // End-of-run metadata flush, sharded the same way as a phase: the
    // dirty-line drain order is engine state, so capturing it keeps
    // the writeback stream (and its traffic accounting) serial.
    capture.reset(dram.channelCount(), rep.memFree);
    dram.beginCapture(&capture);
    engine_->flush(rep.memFree);
    dram.endCapture();
    const Cycles flushed = shard.replay(capture, rep.memFree, 0);

    RunResult result =
        package(rep, flushed, sink.streamedBytes(), sink.peakBytes());
    result.shardReplayThreads = shard.width();
    result.shardMergeWaits = shard.mergeWaits();
    result.shardChannels = shard.channelLoads();
    return result;
}

} // namespace mgx::sim
