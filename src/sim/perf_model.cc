#include "perf_model.h"

#include <algorithm>
#include <cmath>

namespace mgx::sim {

PerfModel::PerfModel(protection::ProtectionEngine *engine,
                     double accel_mhz, double ctrl_mhz)
    : engine_(engine), accelMhz_(accel_mhz), ctrlMhz_(ctrl_mhz)
{
}

Cycles
PerfModel::toCtrl(Cycles accel_cycles) const
{
    return static_cast<Cycles>(
        std::ceil(static_cast<double>(accel_cycles) * ctrlMhz_ /
                  accelMhz_));
}

RunResult
PerfModel::run(const core::Trace &trace)
{
    RunResult result;
    Cycles mem_free = 0;     // when the memory stream can take phase i
    Cycles compute_done = 0; // e_{i-1}
    Cycles mem_busy = 0;

    for (const auto &phase : trace) {
        const Cycles issue = mem_free;
        Cycles data_ready = issue;
        for (const auto &acc : phase.accesses)
            data_ready =
                std::max(data_ready, engine_->access(acc, issue));
        mem_busy += data_ready - issue;
        mem_free = data_ready;

        const Cycles compute = toCtrl(phase.computeCycles);
        const Cycles start = std::max(data_ready, compute_done);
        compute_done = start + compute;
        result.computeCycles += compute;
    }

    const Cycles flushed = engine_->flush(mem_free);
    result.totalCycles = std::max(compute_done, flushed);
    result.memoryCycles = mem_busy;
    result.traffic = engine_->traffic();
    result.dramAccesses = engine_->dram().accessCount();
    result.logicalAccesses = engine_->logicalAccesses();
    result.traceBytes = trace.memoryBytes();
    result.metaCacheHits = engine_->metaCache().hits();
    result.metaCacheMisses = engine_->metaCache().misses();
    result.metaCacheWritebacks = engine_->metaCache().writebacks();
    result.seconds =
        static_cast<double>(result.totalCycles) / (ctrlMhz_ * 1e6);
    return result;
}

} // namespace mgx::sim
