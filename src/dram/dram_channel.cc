#include "dram_channel.h"

#include <algorithm>

namespace mgx::dram {

DramChannel::DramChannel(const Ddr4Config &cfg)
    : cfg_(cfg),
      banks_(static_cast<std::size_t>(cfg.banksPerRank) *
             cfg.ranksPerChannel)
{
}

Cycles
DramChannel::refreshAdjust(Cycles t)
{
    // All banks are blocked for tRFC at every tREFI boundary. A command
    // that would start inside the blackout is pushed past it. The
    // division only happens when t leaves the cached tREFI window;
    // streaming accesses stay inside it for thousands of bursts.
    if (t < refreshWinStart_ || t - refreshWinStart_ >= cfg_.tREFI)
        refreshWinStart_ = t / cfg_.tREFI * cfg_.tREFI;
    const Cycles phase = t - refreshWinStart_;
    if (phase < cfg_.tRFC) {
        counters_.refreshStallCycles += cfg_.tRFC - phase;
        return t + (cfg_.tRFC - phase);
    }
    return t;
}

Cycles
DramChannel::earliestActivate(Cycles t) const
{
    Cycles earliest = std::max(t, lastActivate_ + cfg_.tRRD);
    // tFAW: at most four activates per rolling window.
    Cycles fourth = activateWindow_[activateIdx_];
    if (fourth + cfg_.tFAW > earliest)
        earliest = fourth + cfg_.tFAW;
    return earliest;
}

void
DramChannel::recordActivate(Cycles t)
{
    lastActivate_ = t;
    activateWindow_[activateIdx_] = t;
    activateIdx_ = (activateIdx_ + 1) % 4;
}

Cycles
DramChannel::access(const Coord &coord, bool is_write, Cycles arrival)
{
    const u32 bank_id = coord.rank * cfg_.banksPerRank + coord.bank;
    BankState &bank = banks_[bank_id];

    // Same-open-row fast path: a row hit with no bus-direction switch
    // whose start cycle falls inside the cached refresh window (past
    // its blackout) reduces to max/add arithmetic — the activate/
    // precharge machinery below cannot change the outcome. Bitwise
    // identical to the general path.
    if (bank.openRow == coord.row && is_write == lastBurstWrite_) {
        const Cycles start = std::max(arrival, bank.readyAt);
        if (start >= refreshWinStart_ + cfg_.tRFC &&
            start - refreshWinStart_ < cfg_.tREFI) {
            ++counters_.rowHits;
            const Cycles burst_start = std::max(
                start + (is_write ? cfg_.tCWL : cfg_.tCL), busFreeAt_);
            const Cycles burst_end = burst_start + cfg_.burstCycles();
            busFreeAt_ = burst_end;
            bank.readyAt = start + cfg_.tCCD;
            if (is_write) {
                bank.readyAt =
                    std::max(bank.readyAt, burst_end + cfg_.tWR);
                ++counters_.writes;
            } else {
                ++counters_.reads;
            }
            lastCompletion_ = std::max(lastCompletion_, burst_end);
            return burst_end;
        }
    }

    Cycles start = refreshAdjust(std::max(arrival, bank.readyAt));

    Cycles column_cmd; // cycle the RD/WR command issues
    if (bank.openRow == coord.row) {
        // Row hit: column command can go immediately.
        ++counters_.rowHits;
        column_cmd = start;
    } else {
        Cycles act_at;
        if (bank.openRow == BankState::kNoRow) {
            // Bank precharged: just activate.
            ++counters_.rowMisses;
            act_at = earliestActivate(start);
        } else {
            // Conflict: precharge (respecting tRAS), then activate.
            ++counters_.rowConflicts;
            Cycles pre_at =
                std::max(start, bank.activatedAt + cfg_.tRAS);
            act_at = earliestActivate(pre_at + cfg_.tRP);
        }
        recordActivate(act_at);
        bank.openRow = coord.row;
        bank.activatedAt = act_at;
        column_cmd = act_at + cfg_.tRCD;
    }

    const u32 cas = is_write ? cfg_.tCWL : cfg_.tCL;
    // The data burst occupies the shared bus after the CAS latency;
    // switching the bus direction costs a turnaround gap.
    Cycles bus_ready = busFreeAt_;
    if (is_write != lastBurstWrite_)
        bus_ready += lastBurstWrite_ ? cfg_.tWTR : cfg_.tRTW;
    Cycles burst_start = std::max(column_cmd + cas, bus_ready);
    Cycles burst_end = burst_start + cfg_.burstCycles();
    busFreeAt_ = burst_end;
    lastBurstWrite_ = is_write;

    // Next command to this bank must respect column-to-column timing and,
    // for writes, the write-recovery time before a future precharge. The
    // simplified model folds tWR into bank readiness.
    bank.readyAt = column_cmd + cfg_.tCCD;
    if (is_write)
        bank.readyAt = std::max(bank.readyAt, burst_end + cfg_.tWR);

    ++(is_write ? counters_.writes : counters_.reads);
    lastCompletion_ = std::max(lastCompletion_, burst_end);
    return burst_end;
}

} // namespace mgx::dram
