/**
 * @file
 * Multi-channel DRAM system: the Ramulator stand-in. Decodes addresses,
 * routes each 64-byte access to its channel, and reports completion
 * times and aggregate statistics. Contiguous ranges decode
 * incrementally through AddressMap::LineWalker instead of re-deriving
 * every line's coordinates.
 *
 * Channel-sharded replay seam: while a CaptureBuffer is attached
 * (beginCapture), every entry point decodes exactly as it would when
 * timing inline, but appends the pre-decoded request to the buffer's
 * per-channel lane and returns without touching channel state. The
 * captured lanes preserve each channel's serial command order, and a
 * channel's timing depends only on its own ordered stream — so
 * replaying each lane later (possibly on its own thread, see
 * sim/shard.h) reproduces the serial completion times bit for bit.
 */

#ifndef MGX_DRAM_DRAM_SYSTEM_H
#define MGX_DRAM_DRAM_SYSTEM_H

#include <memory>
#include <span>
#include <vector>

#include "address_map.h"
#include "common/stats.h"
#include "ddr4_timing.h"
#include "dram_channel.h"
#include "request.h"

namespace mgx::dram {

/** One pre-decoded request captured for deferred (sharded) replay. */
struct CapturedRequest
{
    Coord coord;
    bool isWrite = false;
    /**
     * Completion feeds the crypto-latency merge group: the request
     * belongs to a read access whose engine completion gets the AES
     * pipeline latency added (see ProtectionEngine::access). The
     * merge adds that constant to the max over this group instead of
     * per access — identical because every access in a phase shares
     * one arrival cycle.
     */
    bool crypto = false;
};

/**
 * Per-channel pre-decoded request lanes for one replay step (a phase's
 * traffic, or the end-of-run flush batch). Reused across steps:
 * reset() keeps lane capacity, so a steady-state phase captures
 * without allocating. All requests in a buffer share one arrival
 * cycle — the perf model issues every access of a phase at the same
 * mem_free edge.
 */
class CaptureBuffer
{
  public:
    /** Clear all lanes for a new step arriving at @p arrival. */
    void
    reset(u32 channels, Cycles arrival)
    {
        if (lanes_.size() != channels)
            lanes_.resize(channels);
        for (auto &lane : lanes_)
            lane.clear();
        arrival_ = arrival;
        crypto_ = false;
        total_ = 0;
    }

    /** Tag subsequently captured requests as crypto-group members. */
    void setCryptoTag(bool on) { crypto_ = on; }

    /** Arrival cycle shared by every captured request. */
    Cycles arrival() const { return arrival_; }

    u32 channels() const { return static_cast<u32>(lanes_.size()); }

    /** Channel @p c's captured stream, in serial command order. */
    std::span<const CapturedRequest>
    lane(u32 c) const
    {
        return {lanes_[c].data(), lanes_[c].size()};
    }

    /** Requests captured across all lanes this step. */
    u64 totalRequests() const { return total_; }

    /** Append one decoded request to its channel's lane. */
    void
    emit(const Coord &coord, bool is_write)
    {
        lanes_[coord.channel].push_back({coord, is_write, crypto_});
        ++total_;
    }

  private:
    std::vector<std::vector<CapturedRequest>> lanes_;
    Cycles arrival_ = 0;
    bool crypto_ = false;
    u64 total_ = 0;
};

/** The full off-chip memory system seen by the protection engine. */
class DramSystem
{
  public:
    explicit DramSystem(const Ddr4Config &cfg);

    /**
     * Serve one access; splits nothing (callers issue block-granular
     * requests). @return completion cycle of the data burst.
     */
    Cycles access(const Request &req);

    /**
     * Serve one access at pre-decoded coordinates — the hot path for
     * callers that walk ranges with a LineWalker and for repeated
     * accesses to the same line (read-modify-write pairs).
     */
    Cycles
    accessCoord(const Coord &coord, bool is_write, Cycles arrival)
    {
        ++accessCount_;
        if (capture_ != nullptr) {
            capture_->emit(coord, is_write);
            return arrival;
        }
        return channels_[coord.channel]->access(coord, is_write,
                                                arrival);
    }

    /**
     * Serve a contiguous @p bytes-long transfer starting at @p addr as a
     * run of block accesses all arriving at @p arrival.
     * @return completion cycle of the last burst.
     */
    Cycles accessRange(Addr addr, u64 bytes, bool is_write, Cycles arrival);

    /**
     * Serve a batch of block requests in order — the replay path for
     * deferred metadata queues. Equivalent to calling access() per
     * request and taking the max completion (the per-channel command
     * streams are identical, so every cycle and statistic matches bit
     * for bit); the win is that runs of same-line and
     * consecutive-line requests — the shape metadata miss streams
     * have — decode incrementally instead of from scratch.
     * @return max completion cycle across the batch; 0 when empty
     */
    Cycles accessBatch(std::span<const Request> reqs);

    /**
     * Divert all entry points into @p buf: decode (and bump
     * accessCount) exactly as inline timing would, but append to the
     * buffer's lanes and return the arrival cycle unchanged. The
     * caller replays the lanes later against the channels (see
     * sim/shard.h) and must endCapture() first.
     */
    void beginCapture(CaptureBuffer *buf) { capture_ = buf; }

    /** Resume inline timing. */
    void endCapture() { capture_ = nullptr; }

    bool capturing() const { return capture_ != nullptr; }

    /** Channel @p c, for shard workers replaying captured lanes. */
    DramChannel &channel(u32 c) { return *channels_[c]; }

    u32
    channelCount() const
    {
        return static_cast<u32>(channels_.size());
    }

    /** Completion time of the latest burst across all channels. */
    Cycles lastCompletion() const;

    /** Number of block accesses served so far. */
    u64 accessCount() const { return accessCount_; }

    /**
     * Aggregate statistics (row hits, misses, refresh stalls, ...).
     * Channels count events locally (so shard workers never share
     * slots); the named group is synced from them on each call.
     */
    const StatGroup &stats() const;

    /** Block (column access) size in bytes. */
    u32 blockBytes() const { return map_.blockBytes(); }

    /** The address map (range walkers for streaming callers). */
    const AddressMap &map() const { return map_; }

    const Ddr4Config &config() const { return cfg_; }

  private:
    Ddr4Config cfg_;
    AddressMap map_;
    /** Synced from the channels' local counters on stats() reads. */
    mutable StatGroup stats_;
    std::vector<std::unique_ptr<DramChannel>> channels_;
    u64 accessCount_ = 0;
    CaptureBuffer *capture_ = nullptr;
};

} // namespace mgx::dram

#endif // MGX_DRAM_DRAM_SYSTEM_H
