/**
 * @file
 * Multi-channel DRAM system: the Ramulator stand-in. Decodes addresses,
 * routes each 64-byte access to its channel, and reports completion
 * times and aggregate statistics. Contiguous ranges decode
 * incrementally through AddressMap::LineWalker instead of re-deriving
 * every line's coordinates.
 */

#ifndef MGX_DRAM_DRAM_SYSTEM_H
#define MGX_DRAM_DRAM_SYSTEM_H

#include <memory>
#include <span>
#include <vector>

#include "address_map.h"
#include "common/stats.h"
#include "ddr4_timing.h"
#include "dram_channel.h"
#include "request.h"

namespace mgx::dram {

/** The full off-chip memory system seen by the protection engine. */
class DramSystem
{
  public:
    explicit DramSystem(const Ddr4Config &cfg);

    /**
     * Serve one access; splits nothing (callers issue block-granular
     * requests). @return completion cycle of the data burst.
     */
    Cycles access(const Request &req);

    /**
     * Serve one access at pre-decoded coordinates — the hot path for
     * callers that walk ranges with a LineWalker and for repeated
     * accesses to the same line (read-modify-write pairs).
     */
    Cycles
    accessCoord(const Coord &coord, bool is_write, Cycles arrival)
    {
        ++accessCount_;
        return channels_[coord.channel]->access(coord, is_write,
                                                arrival);
    }

    /**
     * Serve a contiguous @p bytes-long transfer starting at @p addr as a
     * run of block accesses all arriving at @p arrival.
     * @return completion cycle of the last burst.
     */
    Cycles accessRange(Addr addr, u64 bytes, bool is_write, Cycles arrival);

    /**
     * Serve a batch of block requests in order — the replay path for
     * deferred metadata queues. Equivalent to calling access() per
     * request and taking the max completion (the per-channel command
     * streams are identical, so every cycle and statistic matches bit
     * for bit); the win is that runs of same-line and
     * consecutive-line requests — the shape metadata miss streams
     * have — decode incrementally instead of from scratch.
     * @return max completion cycle across the batch; 0 when empty
     */
    Cycles accessBatch(std::span<const Request> reqs);

    /** Completion time of the latest burst across all channels. */
    Cycles lastCompletion() const;

    /** Number of block accesses served so far. */
    u64 accessCount() const { return accessCount_; }

    /** Aggregate statistics (row hits, misses, refresh stalls, ...). */
    const StatGroup &stats() const { return stats_; }
    StatGroup &stats() { return stats_; }

    /** Block (column access) size in bytes. */
    u32 blockBytes() const { return map_.blockBytes(); }

    /** The address map (range walkers for streaming callers). */
    const AddressMap &map() const { return map_; }

    const Ddr4Config &config() const { return cfg_; }

  private:
    Ddr4Config cfg_;
    AddressMap map_;
    StatGroup stats_;
    std::vector<std::unique_ptr<DramChannel>> channels_;
    u64 accessCount_ = 0;
};

} // namespace mgx::dram

#endif // MGX_DRAM_DRAM_SYSTEM_H
