/**
 * @file
 * Physical-address to device-coordinate mapping.
 *
 * Uses the row:rank:bank:column-high:channel:column-low(block) order,
 * which interleaves consecutive 64-byte blocks across channels and then
 * across column space within a row, so streaming accesses hit open rows
 * on all channels — the mapping Ramulator calls RoBaRaCoCh-style
 * channel interleaving.
 */

#ifndef MGX_DRAM_ADDRESS_MAP_H
#define MGX_DRAM_ADDRESS_MAP_H

#include "common/bitops.h"
#include "ddr4_timing.h"
#include "request.h"

namespace mgx::dram {

/** Splits byte addresses into (channel, rank, bank, row, column). */
class AddressMap
{
  public:
    explicit AddressMap(const Ddr4Config &cfg);

    /** Decode @p addr (any byte address; aligned down to a block). */
    Coord decode(Addr addr) const;

    /** Size of one interleaved block (one column access). */
    u32 blockBytes() const { return blockBytes_; }

  private:
    u32 blockBytes_;
    u32 blockBits_;
    u32 channelBits_;
    u32 columnBits_; ///< bits of column-high (blocks within a row)
    u32 bankBits_;
    u32 rankBits_;
    u32 rowMask_;
    u32 channels_;
    u32 banks_;
    u32 ranks_;
    u32 blocksPerRow_;
};

} // namespace mgx::dram

#endif // MGX_DRAM_ADDRESS_MAP_H
