/**
 * @file
 * Physical-address to device-coordinate mapping.
 *
 * Uses the row:rank:bank:column-high:channel:column-low(block) order,
 * which interleaves consecutive 64-byte blocks across channels and then
 * across column space within a row, so streaming accesses hit open rows
 * on all channels — the mapping Ramulator calls RoBaRaCoCh-style
 * channel interleaving.
 *
 * Two decode paths exist: decode() splits an arbitrary address, and
 * LineWalker advances through consecutive blocks incrementally — one
 * add-and-mask per dimension with early exit, so a streaming range
 * never re-derives the whole coordinate from scratch.
 */

#ifndef MGX_DRAM_ADDRESS_MAP_H
#define MGX_DRAM_ADDRESS_MAP_H

#include "common/bitops.h"
#include "ddr4_timing.h"
#include "request.h"

namespace mgx::dram {

/** Splits byte addresses into (channel, rank, bank, row, column). */
class AddressMap
{
  public:
    explicit AddressMap(const Ddr4Config &cfg);

    /** Decode @p addr (any byte address; aligned down to a block). */
    Coord decode(Addr addr) const;

    /**
     * Incremental decoder over consecutive blocks. Produced by
     * walkerAt(); next() advances exactly one block (blockBytes) and
     * matches decode(addr + i * blockBytes) bit for bit — the unit
     * test pins this equivalence across row crossings.
     */
    class LineWalker
    {
      public:
        const Coord &coord() const { return coord_; }

        /** Advance to the next consecutive block. */
        void
        next()
        {
            // Carry-chain increment in device-coordinate space. Each
            // dimension is a power of two, so "wrapped" is "masked
            // increment landed on zero"; the common streaming case
            // stops at the first dimension.
            coord_.channel = (coord_.channel + 1) & channelMask_;
            if (coord_.channel != 0)
                return;
            coord_.column = (coord_.column + 1) & columnMask_;
            if (coord_.column != 0)
                return;
            coord_.bank = (coord_.bank + 1) & bankMask_;
            if (coord_.bank != 0)
                return;
            coord_.rank = (coord_.rank + 1) & rankMask_;
            if (coord_.rank != 0)
                return;
            coord_.row = (coord_.row + 1) & rowMask_;
        }

      private:
        friend class AddressMap;
        Coord coord_;
        u32 channelMask_ = 0;
        u32 columnMask_ = 0;
        u32 bankMask_ = 0;
        u32 rankMask_ = 0;
        u32 rowMask_ = 0;
    };

    /** Start an incremental walk at the block containing @p addr. */
    LineWalker
    walkerAt(Addr addr) const
    {
        LineWalker w;
        w.coord_ = decode(addr);
        w.channelMask_ = channels_ - 1;
        w.columnMask_ = blocksPerRow_ - 1;
        w.bankMask_ = banks_ - 1;
        w.rankMask_ = ranks_ - 1;
        w.rowMask_ = rowMask_;
        return w;
    }

    /** Size of one interleaved block (one column access). */
    u32 blockBytes() const { return blockBytes_; }

  private:
    u32 blockBytes_;
    u32 blockBits_;
    u32 channelBits_;
    u32 columnBits_; ///< bits of column-high (blocks within a row)
    u32 bankBits_;
    u32 rankBits_;
    u32 rowMask_;
    u32 channels_;
    u32 banks_;
    u32 ranks_;
    u32 blocksPerRow_;
};

} // namespace mgx::dram

#endif // MGX_DRAM_ADDRESS_MAP_H
