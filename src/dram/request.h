/**
 * @file
 * The unit of work presented to the DRAM model: one column access
 * (64 bytes for a 64-bit DDR4 channel).
 */

#ifndef MGX_DRAM_REQUEST_H
#define MGX_DRAM_REQUEST_H

#include "common/types.h"

namespace mgx::dram {

/** One 64-byte DRAM access. */
struct Request
{
    Addr addr = 0;          ///< byte address (aligned down internally)
    bool isWrite = false;   ///< read or write
    Cycles arrival = 0;     ///< earliest controller cycle it may issue
};

/** Decoded device coordinates of a request. */
struct Coord
{
    u32 channel = 0;
    u32 rank = 0;
    u32 bank = 0;
    u32 row = 0;
    u32 column = 0;
};

} // namespace mgx::dram

#endif // MGX_DRAM_REQUEST_H
