/**
 * @file
 * DDR4 timing and organization parameters.
 *
 * All timing values are expressed in memory-controller clock cycles
 * (for DDR4-2400 the controller clock is 1200 MHz, i.e. one cycle per
 * two data-bus transfers). Defaults follow the DDR4-2400R speed grade
 * (CL-nRCD-nRP = 16-16-16) that the paper's Ramulator configuration
 * uses.
 */

#ifndef MGX_DRAM_DDR4_TIMING_H
#define MGX_DRAM_DDR4_TIMING_H

#include "common/types.h"

namespace mgx::dram {

/** Organization and timing of one DDR4 channel. */
struct Ddr4Config
{
    // -- organization ----------------------------------------------------
    u32 channels = 1;        ///< number of independent channels
    u32 ranksPerChannel = 1; ///< ranks sharing the channel bus
    u32 banksPerRank = 16;   ///< 4 bank groups x 4 banks
    u32 rowsPerBank = 32768;
    u32 rowBytes = 8192;     ///< row-buffer (page) size, 8 KB for x8 DIMM
    u32 busBytes = 8;        ///< 64-bit data bus
    u32 burstLength = 8;     ///< BL8: one column access moves 64 bytes

    // -- timing (controller cycles @ 1200 MHz) ----------------------------
    u32 tCK_ps = 833;  ///< controller clock period in picoseconds
    u32 tRCD = 16;     ///< activate to column command
    u32 tRP = 16;      ///< precharge latency
    u32 tCL = 16;      ///< CAS (read) latency
    u32 tCWL = 12;     ///< CAS write latency
    u32 tRAS = 39;     ///< activate to precharge minimum
    u32 tWR = 18;      ///< write recovery
    u32 tRTP = 9;      ///< read to precharge
    u32 tCCD = 6;      ///< column to column (same bank group, tCCD_L)
    u32 tRRD = 6;      ///< activate to activate, different banks
    u32 tFAW = 26;     ///< four-activate window
    u32 tRFC = 420;    ///< refresh cycle time (8 Gb die)
    u32 tREFI = 9360;  ///< average refresh interval (7.8 us)
    u32 tRTW = 8;      ///< read-to-write bus turnaround
    u32 tWTR = 9;      ///< write-to-read turnaround (tWTR_L)

    /** Data-bus occupancy of one burst, in controller cycles. */
    u32 burstCycles() const { return burstLength / 2; }

    /** Bytes moved by one column access. */
    u32 accessBytes() const { return busBytes * burstLength; }

    /** Peak bandwidth in bytes per controller cycle, all channels. */
    double
    peakBytesPerCycle() const
    {
        return static_cast<double>(accessBytes()) / burstCycles() * channels;
    }
};

/** Standard DDR4-2400 channel with @p channels channels. */
inline Ddr4Config
ddr4_2400(u32 channels)
{
    Ddr4Config cfg;
    cfg.channels = channels;
    return cfg;
}

} // namespace mgx::dram

#endif // MGX_DRAM_DDR4_TIMING_H
