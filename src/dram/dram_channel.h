/**
 * @file
 * Timing model of one DDR4 channel.
 *
 * The model is O(1) per request: requests issue in arrival order, but
 * bank-level parallelism is captured through per-bank ready times, the
 * shared data bus through a bus-free time, activates through tRRD/tFAW
 * windows, and refresh through periodic tRFC blackouts. Row-buffer
 * state gives the open-page hit/miss/conflict behaviour that dominates
 * streaming-accelerator bandwidth.
 *
 * Hot-path notes: statistics bump plain channel-local integers (no
 * per-access map lookups; DramSystem aggregates them into its
 * StatGroup on read), the refresh phase is derived from a cached
 * tREFI window (no per-access division in steady state), and
 * same-open-row same-direction bursts take a short fast path that
 * skips the activate/precharge state machine — all
 * cycle-bitwise-identical to the general path.
 *
 * A channel is entirely self-contained: banks, bus, activate windows,
 * refresh phase, and counters are all channel-local, so distinct
 * channels may be driven from distinct threads concurrently (the
 * channel-sharded replay in sim/shard.h does exactly that). One
 * channel must only ever be driven from one thread at a time.
 */

#ifndef MGX_DRAM_DRAM_CHANNEL_H
#define MGX_DRAM_DRAM_CHANNEL_H

#include <vector>

#include "ddr4_timing.h"
#include "request.h"

namespace mgx::dram {

/**
 * Channel-local event counters. Plain integers rather than StatGroup
 * handles so concurrent shard workers never touch shared slots;
 * DramSystem sums them into its named "dram" StatGroup on demand.
 */
struct ChannelCounters
{
    u64 rowHits = 0;
    u64 rowMisses = 0;
    u64 rowConflicts = 0;
    u64 reads = 0;
    u64 writes = 0;
    u64 refreshStallCycles = 0;

    u64 requests() const { return reads + writes; }
};

/** Per-bank row-buffer and availability state. */
struct BankState
{
    static constexpr u32 kNoRow = 0xffffffff;

    u32 openRow = kNoRow;   ///< currently open row, kNoRow if precharged
    Cycles readyAt = 0;     ///< earliest cycle a new command may start
    Cycles activatedAt = 0; ///< when the open row was activated (tRAS)
};

/** One channel: banks, shared data bus, activate windows, refresh. */
class DramChannel
{
  public:
    explicit DramChannel(const Ddr4Config &cfg);

    /**
     * Serve one column access.
     * @param coord   decoded device coordinates (must be this channel)
     * @param is_write write or read
     * @param arrival earliest controller cycle the access may begin
     * @return cycle at which the data burst completes
     */
    Cycles access(const Coord &coord, bool is_write, Cycles arrival);

    /** Completion time of the latest burst seen so far. */
    Cycles lastCompletion() const { return lastCompletion_; }

    /** Channel-local event counters (see ChannelCounters). */
    const ChannelCounters &counters() const { return counters_; }

  private:
    /** Delay @p t past any refresh blackout it overlaps. */
    Cycles refreshAdjust(Cycles t);

    /** Earliest cycle a new ACT may issue given tRRD and tFAW. */
    Cycles earliestActivate(Cycles t) const;

    /** Record an ACT for the tRRD/tFAW windows. */
    void recordActivate(Cycles t);

    const Ddr4Config &cfg_;
    std::vector<BankState> banks_;
    Cycles busFreeAt_ = 0;
    bool lastBurstWrite_ = false;
    Cycles lastActivate_ = 0;
    Cycles activateWindow_[4] = {};
    unsigned activateIdx_ = 0;
    Cycles lastCompletion_ = 0;
    /** Start of the tREFI window containing the last adjusted cycle. */
    Cycles refreshWinStart_ = 0;

    ChannelCounters counters_;
};

} // namespace mgx::dram

#endif // MGX_DRAM_DRAM_CHANNEL_H
