#include "dram_system.h"

#include "common/bitops.h"

namespace mgx::dram {

DramSystem::DramSystem(const Ddr4Config &cfg)
    : cfg_(cfg), map_(cfg), stats_("dram")
{
    channels_.reserve(cfg_.channels);
    for (u32 c = 0; c < cfg_.channels; ++c)
        channels_.push_back(std::make_unique<DramChannel>(cfg_, &stats_));
}

Cycles
DramSystem::access(const Request &req)
{
    Coord coord = map_.decode(req.addr);
    ++accessCount_;
    return channels_[coord.channel]->access(coord, req.isWrite,
                                            req.arrival);
}

Cycles
DramSystem::accessRange(Addr addr, u64 bytes, bool is_write, Cycles arrival)
{
    if (bytes == 0)
        return arrival;
    const u32 block = map_.blockBytes();
    const Addr first = alignDown(addr, block);
    const u64 blocks =
        (alignDown(addr + bytes - 1, block) - first) / block + 1;
    AddressMap::LineWalker walker = map_.walkerAt(first);
    accessCount_ += blocks;
    Cycles done = arrival;
    for (u64 i = 0; i < blocks; ++i, walker.next()) {
        const Coord &coord = walker.coord();
        Cycles c =
            channels_[coord.channel]->access(coord, is_write, arrival);
        done = std::max(done, c);
    }
    return done;
}

Cycles
DramSystem::lastCompletion() const
{
    Cycles t = 0;
    for (const auto &ch : channels_)
        t = std::max(t, ch->lastCompletion());
    return t;
}

} // namespace mgx::dram
