#include "dram_system.h"

#include "common/bitops.h"

namespace mgx::dram {

DramSystem::DramSystem(const Ddr4Config &cfg)
    : cfg_(cfg), map_(cfg), stats_("dram")
{
    channels_.reserve(cfg_.channels);
    for (u32 c = 0; c < cfg_.channels; ++c)
        channels_.push_back(std::make_unique<DramChannel>(cfg_, &stats_));
}

Cycles
DramSystem::access(const Request &req)
{
    Coord coord = map_.decode(req.addr);
    ++accessCount_;
    return channels_[coord.channel]->access(coord, req.isWrite,
                                            req.arrival);
}

Cycles
DramSystem::accessRange(Addr addr, u64 bytes, bool is_write, Cycles arrival)
{
    if (bytes == 0)
        return arrival;
    const u32 block = map_.blockBytes();
    Addr first = alignDown(addr, block);
    Addr last = alignDown(addr + bytes - 1, block);
    Cycles done = arrival;
    for (Addr a = first; a <= last; a += block) {
        Cycles c = access({a, is_write, arrival});
        done = std::max(done, c);
    }
    return done;
}

Cycles
DramSystem::lastCompletion() const
{
    Cycles t = 0;
    for (const auto &ch : channels_)
        t = std::max(t, ch->lastCompletion());
    return t;
}

} // namespace mgx::dram
