#include "dram_system.h"

#include <algorithm>
#include <utility>

#include "common/bitops.h"

namespace mgx::dram {

DramSystem::DramSystem(const Ddr4Config &cfg)
    : cfg_(cfg), map_(cfg), stats_("dram")
{
    channels_.reserve(cfg_.channels);
    for (u32 c = 0; c < cfg_.channels; ++c)
        channels_.push_back(std::make_unique<DramChannel>(cfg_));
}

Cycles
DramSystem::access(const Request &req)
{
    Coord coord = map_.decode(req.addr);
    ++accessCount_;
    if (capture_ != nullptr) {
        capture_->emit(coord, req.isWrite);
        return req.arrival;
    }
    return channels_[coord.channel]->access(coord, req.isWrite,
                                            req.arrival);
}

Cycles
DramSystem::accessRange(Addr addr, u64 bytes, bool is_write, Cycles arrival)
{
    if (bytes == 0)
        return arrival;
    const u32 block = map_.blockBytes();
    const Addr first = alignDown(addr, block);
    const u64 blocks =
        (alignDown(addr + bytes - 1, block) - first) / block + 1;
    AddressMap::LineWalker walker = map_.walkerAt(first);
    accessCount_ += blocks;
    if (capture_ != nullptr) {
        for (u64 i = 0; i < blocks; ++i, walker.next())
            capture_->emit(walker.coord(), is_write);
        return arrival;
    }
    Cycles done = arrival;
    for (u64 i = 0; i < blocks; ++i, walker.next()) {
        const Coord &coord = walker.coord();
        Cycles c =
            channels_[coord.channel]->access(coord, is_write, arrival);
        done = std::max(done, c);
    }
    return done;
}

Cycles
DramSystem::accessBatch(std::span<const Request> reqs)
{
    // Requests are served strictly in the order given: each channel's
    // command stream is timing-visible state (bus direction, open
    // rows, activate windows), so physically regrouping same-row
    // requests here would change cycle counts. The grouping the model
    // wants is already done by the callers' deferred queues; this
    // path only removes redundant address decodes.
    //
    // Metadata queues interleave (up to) two consecutive-line
    // streams: miss fills walk the VN/tree/MAC regions in address
    // order, and the dirty victims they evict — filled one cache
    // capacity earlier — walk their own ascending sequence between
    // them. Two predictor slots (most recent first) catch both; a
    // request neither slot predicts re-seeds the colder one.
    struct Slot
    {
        AddressMap::LineWalker walker;
        Addr prev = 0;
        bool valid = false;
    };
    const u32 block = map_.blockBytes();
    Cycles done = 0;
    Slot slots[2];
    for (const Request &req : reqs) {
        const Addr line = alignDown(req.addr, block);
        if (slots[0].valid && line == slots[0].prev + block) {
            slots[0].walker.next();
        } else if (slots[0].valid && line == slots[0].prev) {
            // same line again: coordinates already current
        } else if (slots[1].valid && (line == slots[1].prev + block ||
                                      line == slots[1].prev)) {
            if (line != slots[1].prev)
                slots[1].walker.next();
            std::swap(slots[0], slots[1]);
        } else {
            std::swap(slots[0], slots[1]);
            slots[0].walker = map_.walkerAt(line);
            slots[0].valid = true;
        }
        slots[0].prev = line;
        ++accessCount_;
        const Coord &coord = slots[0].walker.coord();
        if (capture_ != nullptr) {
            capture_->emit(coord, req.isWrite);
            continue;
        }
        const Cycles c = channels_[coord.channel]->access(
            coord, req.isWrite, req.arrival);
        done = std::max(done, c);
    }
    return done;
}

Cycles
DramSystem::lastCompletion() const
{
    Cycles t = 0;
    for (const auto &ch : channels_)
        t = std::max(t, ch->lastCompletion());
    return t;
}

const StatGroup &
DramSystem::stats() const
{
    ChannelCounters sum;
    for (const auto &ch : channels_) {
        const ChannelCounters &c = ch->counters();
        sum.rowHits += c.rowHits;
        sum.rowMisses += c.rowMisses;
        sum.rowConflicts += c.rowConflicts;
        sum.reads += c.reads;
        sum.writes += c.writes;
        sum.refreshStallCycles += c.refreshStallCycles;
    }
    stats_.set("row_hits", sum.rowHits);
    stats_.set("row_misses", sum.rowMisses);
    stats_.set("row_conflicts", sum.rowConflicts);
    stats_.set("reads", sum.reads);
    stats_.set("writes", sum.writes);
    stats_.set("refresh_stall_cycles", sum.refreshStallCycles);
    return stats_;
}

} // namespace mgx::dram
