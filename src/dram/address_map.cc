#include "address_map.h"

#include "common/log.h"

namespace mgx::dram {

AddressMap::AddressMap(const Ddr4Config &cfg)
{
    blockBytes_ = cfg.accessBytes();
    if (!isPow2(blockBytes_) || !isPow2(cfg.channels) ||
        !isPow2(cfg.banksPerRank) || !isPow2(cfg.ranksPerChannel) ||
        !isPow2(cfg.rowBytes) || !isPow2(cfg.rowsPerBank)) {
        // rowsPerBank included: both decode()'s row mask and the
        // LineWalker row carry assume it.
        fatal("DRAM organization values must be powers of two");
    }
    blockBits_ = log2i(blockBytes_);
    channelBits_ = log2i(cfg.channels);
    blocksPerRow_ = cfg.rowBytes / blockBytes_;
    columnBits_ = log2i(blocksPerRow_);
    bankBits_ = log2i(cfg.banksPerRank);
    rankBits_ = log2i(cfg.ranksPerChannel);
    rowMask_ = cfg.rowsPerBank - 1;
    channels_ = cfg.channels;
    banks_ = cfg.banksPerRank;
    ranks_ = cfg.ranksPerChannel;
}

Coord
AddressMap::decode(Addr addr) const
{
    u64 block = addr >> blockBits_;
    Coord c;
    c.channel = static_cast<u32>(bits(block, 0, channelBits_));
    block >>= channelBits_;
    c.column = static_cast<u32>(bits(block, 0, columnBits_));
    block >>= columnBits_;
    c.bank = static_cast<u32>(bits(block, 0, bankBits_));
    block >>= bankBits_;
    c.rank = static_cast<u32>(bits(block, 0, rankBits_));
    block >>= rankBits_;
    c.row = static_cast<u32>(block) & rowMask_;
    return c;
}

} // namespace mgx::dram
