/**
 * @file
 * A concrete CSR sparse matrix and small-graph utilities, used by the
 * functional PageRank/BFS reference implementations, the secure-memory
 * examples and the tests. The trace-level simulator uses GraphTiles
 * instead and never materializes large graphs.
 */

#ifndef MGX_GRAPH_CSR_H
#define MGX_GRAPH_CSR_H

#include <vector>

#include "common/types.h"

namespace mgx::graph {

/** Compressed-sparse-row adjacency structure (4-byte column ids). */
struct CsrGraph
{
    u64 numVertices = 0;
    std::vector<u64> rowPtr;  ///< size numVertices + 1
    std::vector<u32> colIdx;  ///< size numEdges

    u64 numEdges() const { return colIdx.size(); }

    /** Out-degree of @p v. */
    u64
    degree(u64 v) const
    {
        return rowPtr[v + 1] - rowPtr[v];
    }
};

/**
 * Materialize a small power-law digraph for functional tests:
 * @p vertices vertices, ~@p edges edges, Pareto out-degrees, uniform
 * destinations, deterministic under @p seed.
 */
CsrGraph makeSmallGraph(u64 vertices, u64 edges, u64 seed,
                        double alpha = 1.8);

/** Serialize the CSR arrays into the byte layout the accelerator and
 *  the secure-memory examples use (rowPtr as u64 LE, colIdx as u32 LE). */
std::vector<u8> serializeCsr(const CsrGraph &g);

/** Inverse of serializeCsr (asserts a well-formed buffer). */
CsrGraph deserializeCsr(const std::vector<u8> &bytes);

} // namespace mgx::graph

#endif // MGX_GRAPH_CSR_H
