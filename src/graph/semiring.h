/**
 * @file
 * GraphBLAS semirings (paper §V-A). A semiring (D, x, +, I_x, I_+)
 * instantiates the SpMV engine for a particular graph algorithm:
 *
 *   PageRank:  (R,        *,  +,   1, 0)
 *   BFS:       (Boolean,  &,  |,   1, 0)
 *   SSSP:      (R u inf,  +, min,  0, inf)
 *
 * The functional algorithms below use these directly; the trace
 * simulator only needs the traffic shape, which is semiring-agnostic.
 */

#ifndef MGX_GRAPH_SEMIRING_H
#define MGX_GRAPH_SEMIRING_H

#include <algorithm>
#include <limits>

namespace mgx::graph {

/** PageRank semiring over doubles. */
struct ArithmeticSemiring
{
    using Value = double;
    static constexpr double multIdentity = 1.0;
    static constexpr double addIdentity = 0.0;
    static double mult(double a, double b) { return a * b; }
    static double add(double a, double b) { return a + b; }
};

/** BFS semiring over booleans. */
struct BooleanSemiring
{
    using Value = bool;
    static constexpr bool multIdentity = true;
    static constexpr bool addIdentity = false;
    static bool mult(bool a, bool b) { return a && b; }
    static bool add(bool a, bool b) { return a || b; }
};

/** SSSP (min-plus) semiring. */
struct TropicalSemiring
{
    using Value = double;
    static constexpr double multIdentity = 0.0;
    static constexpr double addIdentity =
        std::numeric_limits<double>::infinity();
    static double mult(double a, double b) { return a + b; }
    static double add(double a, double b) { return std::min(a, b); }
};

} // namespace mgx::graph

#endif // MGX_GRAPH_SEMIRING_H
