#include "pagerank.h"

#include <limits>

#include "semiring.h"

namespace mgx::graph {

std::vector<double>
pagerank(const CsrGraph &g, u32 iters, double damping)
{
    const u64 v = g.numVertices;
    std::vector<double> rank(v, 1.0 / static_cast<double>(v));
    std::vector<double> next(v);

    for (u32 it = 0; it < iters; ++it) {
        std::fill(next.begin(), next.end(),
                  ArithmeticSemiring::addIdentity);
        // Push formulation: u distributes rank[u]/deg(u) along edges.
        for (u64 u = 0; u < v; ++u) {
            const u64 deg = g.degree(u);
            if (deg == 0)
                continue;
            const double share =
                rank[u] / static_cast<double>(deg);
            for (u64 e = g.rowPtr[u]; e < g.rowPtr[u + 1]; ++e) {
                next[g.colIdx[e]] = ArithmeticSemiring::add(
                    next[g.colIdx[e]],
                    ArithmeticSemiring::mult(share, 1.0));
            }
        }
        for (u64 i = 0; i < v; ++i)
            rank[i] = (1.0 - damping) / static_cast<double>(v) +
                      damping * next[i];
    }
    return rank;
}

std::vector<u32>
bfs(const CsrGraph &g, u64 source)
{
    constexpr u32 kUnreached = 0xffffffff;
    const u64 v = g.numVertices;
    std::vector<u32> level(v, kUnreached);
    std::vector<char> frontier(v, 0), next(v);
    frontier[source] = 1;
    level[source] = 0;

    for (u32 depth = 1; depth <= v; ++depth) {
        std::fill(next.begin(), next.end(), 0);
        bool any = false;
        // One SpMV on the Boolean semiring: next = A^T & frontier.
        for (u64 u = 0; u < v; ++u) {
            if (!frontier[u])
                continue;
            for (u64 e = g.rowPtr[u]; e < g.rowPtr[u + 1]; ++e) {
                const u32 w = g.colIdx[e];
                if (level[w] == kUnreached) {
                    next[w] = BooleanSemiring::add(
                        next[w], BooleanSemiring::mult(true, true));
                    level[w] = depth;
                    any = true;
                }
            }
        }
        if (!any)
            break;
        frontier.swap(next);
    }
    return level;
}

std::vector<double>
sssp(const CsrGraph &g, u64 source)
{
    const u64 v = g.numVertices;
    std::vector<double> dist(v, TropicalSemiring::addIdentity);
    dist[source] = 0.0;
    // Bellman-Ford: |V|-1 relaxation rounds max, early exit when stable.
    for (u64 round = 0; round + 1 < v; ++round) {
        bool changed = false;
        for (u64 u = 0; u < v; ++u) {
            if (dist[u] == TropicalSemiring::addIdentity)
                continue;
            for (u64 e = g.rowPtr[u]; e < g.rowPtr[u + 1]; ++e) {
                const u32 w = g.colIdx[e];
                const double cand =
                    TropicalSemiring::mult(dist[u], 1.0);
                if (cand < dist[w]) {
                    dist[w] = TropicalSemiring::add(dist[w], cand);
                    changed = true;
                }
            }
        }
        if (!changed)
            break;
    }
    return dist;
}

} // namespace mgx::graph
