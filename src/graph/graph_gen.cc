#include "graph_gen.h"

#include <algorithm>

#include "common/bitops.h"
#include "common/log.h"
#include "common/rng.h"

namespace mgx::graph {

std::vector<GraphSpec>
paperGraphs()
{
    // Published sizes: SNAP (gplus, pokec, livejournal), GNN-benchmark
    // reddit, and the two OGB graphs the paper quotes (576K/42M and
    // 2449K/124M). Scale factors keep laptop runtimes in seconds.
    return {
        {"google-plus", 107614, 13673453, 4, 1.8},
        {"pokec", 1632803, 30622564, 8, 1.8},
        {"livejournal", 4847571, 68993773, 16, 1.8},
        {"reddit", 232965, 114615892, 16, 1.6},
        {"ogbl-ppa", 576289, 42463862, 8, 1.8},
        {"ogbn-products", 2449029, 123718280, 16, 1.8},
    };
}

GraphSpec
graphByName(const std::string &name)
{
    for (const auto &spec : paperGraphs())
        if (spec.name == name)
            return spec;
    fatal("unknown graph '%s'", name.c_str());
}

GraphTiles
buildTiles(const GraphSpec &spec, u64 dst_block_vertices,
           u64 src_tile_vertices, u64 seed)
{
    const u64 v = std::max<u64>(spec.scaledVertices(), 1);
    const u64 target_edges = std::max<u64>(spec.scaledEdges(), 1);

    GraphTiles tiles;
    tiles.vertices = v;
    tiles.dstBlocks =
        static_cast<u32>(divCeil(v, std::max<u64>(dst_block_vertices, 1)));
    tiles.srcTiles =
        static_cast<u32>(divCeil(v, std::max<u64>(src_tile_vertices, 1)));
    tiles.tileEdges.assign(tiles.dstBlocks,
                           std::vector<u64>(tiles.srcTiles, 0));

    // Pareto out-degrees, rescaled so the total matches target_edges.
    Rng rng(seed);
    std::vector<double> raw(v);
    double sum = 0.0;
    for (u64 i = 0; i < v; ++i) {
        raw[i] = static_cast<double>(rng.pareto(spec.paretoAlpha, 1.0));
        sum += raw[i];
    }
    const double scale = static_cast<double>(target_edges) / sum;

    u64 total = 0;
    for (u64 dst = 0; dst < v; ++dst) {
        u64 degree = static_cast<u64>(raw[dst] * scale);
        if (degree == 0 && rng.chance(raw[dst] * scale))
            degree = 1;
        total += degree;
        const u32 block =
            static_cast<u32>(dst / std::max<u64>(dst_block_vertices, 1));
        // Sources are spread uniformly: a deterministic share per src
        // tile plus a randomly placed remainder.
        const u64 share = degree / tiles.srcTiles;
        u64 rem = degree % tiles.srcTiles;
        for (u32 t = 0; t < tiles.srcTiles; ++t)
            tiles.tileEdges[block][t] += share;
        while (rem--) {
            tiles.tileEdges[block][rng.below(tiles.srcTiles)] += 1;
        }
    }
    tiles.edges = total;
    return tiles;
}

} // namespace mgx::graph
