#include "csr.h"

#include <cstring>

#include "common/log.h"
#include "common/rng.h"

namespace mgx::graph {

CsrGraph
makeSmallGraph(u64 vertices, u64 edges, u64 seed, double alpha)
{
    Rng rng(seed);
    CsrGraph g;
    g.numVertices = vertices;
    g.rowPtr.resize(vertices + 1, 0);

    // Pareto degrees scaled to the requested edge total.
    std::vector<double> raw(vertices);
    double sum = 0.0;
    for (u64 i = 0; i < vertices; ++i) {
        raw[i] = static_cast<double>(rng.pareto(alpha, 1.0));
        sum += raw[i];
    }
    const double scale = static_cast<double>(edges) / sum;

    for (u64 v = 0; v < vertices; ++v) {
        u64 deg = static_cast<u64>(raw[v] * scale);
        if (deg == 0)
            deg = 1; // keep the graph connected-ish
        g.rowPtr[v + 1] = g.rowPtr[v] + deg;
    }
    g.colIdx.resize(g.rowPtr[vertices]);
    for (u64 v = 0; v < vertices; ++v)
        for (u64 e = g.rowPtr[v]; e < g.rowPtr[v + 1]; ++e)
            g.colIdx[e] = static_cast<u32>(rng.below(vertices));
    return g;
}

std::vector<u8>
serializeCsr(const CsrGraph &g)
{
    std::vector<u8> bytes;
    bytes.reserve(16 + g.rowPtr.size() * 8 + g.colIdx.size() * 4);
    auto push64 = [&bytes](u64 v) {
        for (int i = 0; i < 8; ++i)
            bytes.push_back(static_cast<u8>(v >> (8 * i)));
    };
    push64(g.numVertices);
    push64(g.colIdx.size());
    for (u64 p : g.rowPtr)
        push64(p);
    for (u32 c : g.colIdx) {
        for (int i = 0; i < 4; ++i)
            bytes.push_back(static_cast<u8>(c >> (8 * i)));
    }
    return bytes;
}

CsrGraph
deserializeCsr(const std::vector<u8> &bytes)
{
    std::size_t off = 0;
    auto pop64 = [&bytes, &off]() {
        if (off + 8 > bytes.size())
            fatal("CSR buffer truncated");
        u64 v = 0;
        for (int i = 0; i < 8; ++i)
            v |= static_cast<u64>(bytes[off++]) << (8 * i);
        return v;
    };
    CsrGraph g;
    g.numVertices = pop64();
    const u64 num_edges = pop64();
    g.rowPtr.resize(g.numVertices + 1);
    for (auto &p : g.rowPtr)
        p = pop64();
    if (off + num_edges * 4 > bytes.size())
        fatal("CSR buffer truncated (edges)");
    g.colIdx.resize(num_edges);
    for (auto &c : g.colIdx) {
        c = 0;
        for (int i = 0; i < 4; ++i)
            c |= static_cast<u32>(bytes[off++]) << (8 * i);
    }
    return g;
}

} // namespace mgx::graph
