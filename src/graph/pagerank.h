/**
 * @file
 * Functional reference algorithms in the GraphBLAS formulation:
 * PageRank as SpMV on the arithmetic semiring, BFS as SpMV on the
 * Boolean semiring, SSSP on the tropical semiring. Used by the
 * secure-memory examples and tests; the performance study uses the
 * trace-level GraphKernel instead.
 */

#ifndef MGX_GRAPH_PAGERANK_H
#define MGX_GRAPH_PAGERANK_H

#include <vector>

#include "csr.h"

namespace mgx::graph {

/**
 * Standard damped PageRank.
 * @param g     adjacency (edge u->v means u endorses v); we use the
 *              transpose-free pull formulation over out-edges
 * @param iters fixed iteration count
 * @param damping the usual 0.85
 */
std::vector<double> pagerank(const CsrGraph &g, u32 iters,
                             double damping = 0.85);

/**
 * Level-synchronous BFS from @p source; returns the level of each
 * vertex (-1 encoded as max u32 for unreachable).
 */
std::vector<u32> bfs(const CsrGraph &g, u64 source);

/** SSSP with unit edge weights (Bellman-Ford style SpMV iterations). */
std::vector<double> sssp(const CsrGraph &g, u64 source);

} // namespace mgx::graph

#endif // MGX_GRAPH_PAGERANK_H
