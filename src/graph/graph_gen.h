/**
 * @file
 * Benchmark graph specifications and the synthetic generator.
 *
 * The paper evaluates on four SNAP graphs (google-plus, pokec,
 * livejournal, reddit) and two OGB graphs (ogbl-ppa, ogbn-products).
 * Those datasets cannot be redistributed here, so we synthesize
 * power-law graphs with the published vertex/edge counts, optionally
 * scaled down by a per-graph factor (documented in DESIGN.md). The
 * metadata/data traffic ratios MGX measures are scale-invariant
 * because both scale with the edge count.
 *
 * The generator never materializes the adjacency lists; it produces
 * the per-tile edge counts the SpMV engine schedule needs, using a
 * Pareto out-degree distribution and uniform destination spread.
 */

#ifndef MGX_GRAPH_GRAPH_GEN_H
#define MGX_GRAPH_GRAPH_GEN_H

#include <string>
#include <vector>

#include "common/types.h"

namespace mgx::graph {

/** Published size of one benchmark graph plus our scaling factor. */
struct GraphSpec
{
    std::string name;
    u64 vertices = 0;   ///< published vertex count
    u64 edges = 0;      ///< published edge count
    u32 scale = 1;      ///< divide both by this for simulation
    double paretoAlpha = 1.8; ///< degree-distribution tail exponent

    u64 scaledVertices() const { return vertices / scale; }
    u64 scaledEdges() const { return edges / scale; }
};

/** The paper's six graphs in plotting order. */
std::vector<GraphSpec> paperGraphs();

/** Look one up by name ("google-plus", "pokec", ...). */
GraphSpec graphByName(const std::string &name);

/**
 * Edge counts of the (dstBlocks x srcTiles) tiling the SpMV engine
 * iterates over (paper Fig. 10).
 */
struct GraphTiles
{
    u64 vertices = 0;
    u64 edges = 0;
    u32 dstBlocks = 1;
    u32 srcTiles = 1;
    /// tileEdges[b][t] = edges between dst block b and src tile t
    std::vector<std::vector<u64>> tileEdges;
};

/**
 * Synthesize the tiled structure of @p spec (scaled).
 * @param dst_block_vertices vertices whose updated rank fits on chip
 * @param src_tile_vertices  vertices whose rank fits in the vector buf
 */
GraphTiles buildTiles(const GraphSpec &spec, u64 dst_block_vertices,
                      u64 src_tile_vertices, u64 seed);

} // namespace mgx::graph

#endif // MGX_GRAPH_GRAPH_GEN_H
