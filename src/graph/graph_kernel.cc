#include "graph_kernel.h"

#include <algorithm>

#include "common/bitops.h"
#include "common/rng.h"
#include "core/counter.h"

namespace mgx::graph {

using core::makeVn;
using core::Phase;
using core::Trace;

GraphKernel::GraphKernel(GraphTiles tiles, GraphAlgorithm algorithm,
                         u32 iterations, SpmvEngineConfig engine,
                         VectorAccess vector_access)
    : tiles_(std::move(tiles)), algorithm_(algorithm),
      iterations_(iterations), engine_(engine),
      vectorAccess_(vector_access)
{
    state_.setCounter("Iter", 0);
    state_.setCounter("VN_adj", 1); // matrix loaded once at session start
}

std::string
GraphKernel::name() const
{
    const char *prefix = algorithm_ == GraphAlgorithm::PageRank
                             ? "PR-"
                             : algorithm_ == GraphAlgorithm::BFS
                                   ? "BFS-"
                                   : "SSSP-";
    return prefix + std::to_string(tiles_.vertices) + "v";
}

Trace
GraphKernel::generate()
{
    Trace trace;
    const u64 eb = engine_.entryBytes;
    const Vn vn_adj =
        makeVn(DataClass::GraphMatrix, state_.counter("VN_adj"));

    // Byte offset of each adjacency tile, in schedule order.
    std::vector<std::vector<u64>> tile_offset(
        tiles_.dstBlocks, std::vector<u64>(tiles_.srcTiles, 0));
    u64 adj_off = 0;
    for (u32 b = 0; b < tiles_.dstBlocks; ++b) {
        for (u32 t = 0; t < tiles_.srcTiles; ++t) {
            tile_offset[b][t] = adj_off;
            adj_off += alignUp(tiles_.tileEdges[b][t] * eb, 64);
        }
    }

    Rng rng(0x9e3779b9u ^ tiles_.vertices);
    for (u32 it = 1; it <= iterations_; ++it) {
        const Vn iter = state_.bumpCounter("Iter");
        const Vn vn_read = makeVn(DataClass::GraphVector, iter - 1 + 1);
        const Vn vn_write = makeVn(DataClass::GraphVector, iter + 1);
        const Addr buf_in = vectorBase_[(it + 1) % 2];
        const Addr buf_out = vectorBase_[it % 2];

        for (u32 b = 0; b < tiles_.dstBlocks; ++b) {
            const u64 block_lo =
                std::min<u64>(static_cast<u64>(b) *
                                  engine_.dstBlockVertices,
                              tiles_.vertices);
            const u64 block_hi =
                std::min<u64>(block_lo + engine_.dstBlockVertices,
                              tiles_.vertices);
            for (u32 t = 0; t < tiles_.srcTiles; ++t) {
                const u64 edges = tiles_.tileEdges[b][t];
                if (edges == 0)
                    continue;
                Phase p;
                p.name = "it" + std::to_string(it) + ".b" +
                         std::to_string(b) + ".t" + std::to_string(t);
                p.computeCycles =
                    std::max<Cycles>(1, edges / engine_.lanes);
                // Sparse adjacency tile: sequential read, tile-grained
                // MAC (the paper's per-tile MAC; 512 B default covers
                // it since the tile is one contiguous run).
                p.accesses.push_back({adjacencyBase_ + tile_offset[b][t],
                                      edges * eb, vn_adj, AccessType::Read,
                                      DataClass::GraphMatrix, 0});
                // Rank tile for the source vertices of this tile.
                const u64 tile_lo = std::min<u64>(
                    static_cast<u64>(t) * engine_.srcTileVertices,
                    tiles_.vertices);
                const u64 tile_hi = std::min<u64>(
                    tile_lo + engine_.srcTileVertices, tiles_.vertices);
                if (vectorAccess_ == VectorAccess::Sequential) {
                    if (tile_hi > tile_lo) {
                        p.accesses.push_back(
                            {buf_in + tile_lo * eb,
                             (tile_hi - tile_lo) * eb, vn_read,
                             AccessType::Read, DataClass::GraphVector, 0});
                    }
                } else {
                    // SpMSpV: gather one vector entry per edge sample
                    // (capped so trace size stays bounded); fine MACs.
                    const u64 gathers =
                        std::min<u64>(edges, tile_hi - tile_lo);
                    for (u64 i = 0; i < gathers; ++i) {
                        const u64 v =
                            tile_lo + rng.below(tile_hi - tile_lo);
                        p.accesses.push_back(
                            {buf_in + alignDown(v * eb, 64), 64, vn_read,
                             AccessType::Read, DataClass::GraphVector, 64});
                    }
                }
                // Partial updated-rank stays on chip; only the final
                // tile of a block writes it out (Fig. 10).
                if (t + 1 == tiles_.srcTiles && block_hi > block_lo) {
                    p.accesses.push_back(
                        {buf_out + block_lo * eb,
                         (block_hi - block_lo) * eb, vn_write,
                         AccessType::Write, DataClass::GraphVector, 0});
                }
                trace.push_back(std::move(p));
            }
        }
    }
    return trace;
}

} // namespace mgx::graph
