#include "graph_kernel.h"

#include <algorithm>

#include "common/bitops.h"
#include "common/rng.h"
#include "core/counter.h"

namespace mgx::graph {

using core::makeVn;
using core::Phase;
using core::Trace;

GraphKernel::GraphKernel(GraphTiles tiles, GraphAlgorithm algorithm,
                         u32 iterations, SpmvEngineConfig engine,
                         VectorAccess vector_access)
    : tiles_(std::move(tiles)), algorithm_(algorithm),
      iterations_(iterations), engine_(engine),
      vectorAccess_(vector_access)
{
    state_.setCounter("Iter", 0);
    state_.setCounter("VN_adj", 1); // matrix loaded once at session start
}

std::string
GraphKernel::name() const
{
    const char *prefix = algorithm_ == GraphAlgorithm::PageRank
                             ? "PR-"
                             : algorithm_ == GraphAlgorithm::BFS
                                   ? "BFS-"
                                   : "SSSP-";
    return prefix + std::to_string(tiles_.vertices) + "v";
}

/**
 * Streaming producer for the Fig. 10 schedule: one non-empty
 * (iteration, block, tile) phase per chunk, with Iter bumped as each
 * sweep starts and the gather Rng advanced in exactly the order the
 * materializing loop consumed it, so the emitted phase sequence is
 * identical. The per-tile adjacency offsets are precomputed (the
 * schedule metadata, O(blocks x tiles) words — not the trace).
 */
class GraphKernel::Source final : public core::PhaseSource
{
  public:
    explicit Source(GraphKernel &kernel)
        : k_(&kernel),
          vnAdj_(makeVn(DataClass::GraphMatrix,
                        kernel.state_.counter("VN_adj"))),
          rng_(0x9e3779b9u ^ kernel.tiles_.vertices)
    {
        // Byte offset of each adjacency tile, in schedule order.
        const GraphTiles &tiles = k_->tiles_;
        const u64 eb = k_->engine_.entryBytes;
        tileOffset_.assign(tiles.dstBlocks,
                           std::vector<u64>(tiles.srcTiles, 0));
        u64 adj_off = 0;
        for (u32 b = 0; b < tiles.dstBlocks; ++b) {
            for (u32 t = 0; t < tiles.srcTiles; ++t) {
                tileOffset_[b][t] = adj_off;
                adj_off += alignUp(tiles.tileEdges[b][t] * eb, 64);
            }
        }
    }

    bool
    nextChunk(core::PhaseSink &sink) override
    {
        const GraphTiles &tiles = k_->tiles_;
        const SpmvEngineConfig &engine = k_->engine_;
        const u64 eb = engine.entryBytes;

        while (it_ <= k_->iterations_) {
            if (b_ == 0 && t_ == 0 && !iterOpen_) {
                // A new sweep begins: bump Iter, derive this sweep's
                // VNs and double-buffer addresses.
                const Vn iter = k_->state_.bumpCounter("Iter");
                vnRead_ = makeVn(DataClass::GraphVector, iter - 1 + 1);
                vnWrite_ = makeVn(DataClass::GraphVector, iter + 1);
                bufIn_ = k_->vectorBase_[(it_ + 1) % 2];
                bufOut_ = k_->vectorBase_[it_ % 2];
                iterOpen_ = true;
            }
            for (; b_ < tiles.dstBlocks; ++b_, t_ = 0) {
                const u64 block_lo = std::min<u64>(
                    static_cast<u64>(b_) * engine.dstBlockVertices,
                    tiles.vertices);
                const u64 block_hi =
                    std::min<u64>(block_lo + engine.dstBlockVertices,
                                  tiles.vertices);
                for (; t_ < tiles.srcTiles;) {
                    const u32 t = t_++;
                    const u64 edges = tiles.tileEdges[b_][t];
                    if (edges == 0)
                        continue;
                    emitTile(sink, b_, t, edges, block_lo, block_hi,
                             eb);
                    return true;
                }
            }
            // Sweep exhausted; advance to the next iteration.
            iterOpen_ = false;
            b_ = 0;
            t_ = 0;
            ++it_;
        }
        return false;
    }

  private:
    void
    emitTile(core::PhaseSink &sink, u32 b, u32 t, u64 edges,
             u64 block_lo, u64 block_hi, u64 eb)
    {
        const GraphTiles &tiles = k_->tiles_;
        const SpmvEngineConfig &engine = k_->engine_;
        scratch_.name = "it" + std::to_string(it_) + ".b" +
                        std::to_string(b) + ".t" + std::to_string(t);
        scratch_.computeCycles =
            std::max<Cycles>(1, edges / engine.lanes);
        scratch_.accesses.clear();
        // Sparse adjacency tile: sequential read, tile-grained MAC
        // (the paper's per-tile MAC; 512 B default covers it since
        // the tile is one contiguous run).
        scratch_.accesses.push_back(
            {k_->adjacencyBase_ + tileOffset_[b][t], edges * eb, vnAdj_,
             AccessType::Read, DataClass::GraphMatrix, 0});
        // Rank tile for the source vertices of this tile.
        const u64 tile_lo =
            std::min<u64>(static_cast<u64>(t) * engine.srcTileVertices,
                          tiles.vertices);
        const u64 tile_hi = std::min<u64>(
            tile_lo + engine.srcTileVertices, tiles.vertices);
        if (k_->vectorAccess_ == VectorAccess::Sequential) {
            if (tile_hi > tile_lo) {
                scratch_.accesses.push_back(
                    {bufIn_ + tile_lo * eb, (tile_hi - tile_lo) * eb,
                     vnRead_, AccessType::Read, DataClass::GraphVector,
                     0});
            }
        } else {
            // SpMSpV: gather one vector entry per edge sample (capped
            // so trace size stays bounded); fine MACs.
            const u64 gathers = std::min<u64>(edges, tile_hi - tile_lo);
            for (u64 i = 0; i < gathers; ++i) {
                const u64 v = tile_lo + rng_.below(tile_hi - tile_lo);
                scratch_.accesses.push_back(
                    {bufIn_ + alignDown(v * eb, 64), 64, vnRead_,
                     AccessType::Read, DataClass::GraphVector, 64});
            }
        }
        // Partial updated-rank stays on chip; only the final tile of
        // a block writes it out (Fig. 10).
        if (t + 1 == tiles.srcTiles && block_hi > block_lo) {
            scratch_.accesses.push_back(
                {bufOut_ + block_lo * eb, (block_hi - block_lo) * eb,
                 vnWrite_, AccessType::Write, DataClass::GraphVector,
                 0});
        }
        sink.consume(scratch_);
    }

    GraphKernel *k_;
    Vn vnAdj_;
    Rng rng_;
    std::vector<std::vector<u64>> tileOffset_;
    u32 it_ = 1;
    u32 b_ = 0;
    u32 t_ = 0;
    bool iterOpen_ = false;
    Vn vnRead_ = 0;
    Vn vnWrite_ = 0;
    Addr bufIn_ = 0;
    Addr bufOut_ = 0;
    Phase scratch_;
};

std::unique_ptr<core::PhaseSource>
GraphKernel::stream()
{
    return std::make_unique<Source>(*this);
}

} // namespace mgx::graph
