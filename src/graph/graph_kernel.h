/**
 * @file
 * The GraphBLAS accelerator kernel: GraphLily-like tiled SpMV schedule
 * (paper Fig. 10) with MGX VN generation (paper §V-B).
 *
 * VN rules: the adjacency matrix is read-only with a constant VN; the
 * rank / updated-rank vectors double-buffer, with (Iter-1) as the read
 * VN and Iter as the write VN, so the kernel's whole VN state is one
 * 64-bit iteration counter.
 */

#ifndef MGX_GRAPH_GRAPH_KERNEL_H
#define MGX_GRAPH_GRAPH_KERNEL_H

#include "core/kernel.h"
#include "graph_gen.h"

namespace mgx::graph {

/** Which algorithm runs on the SpMV engine. */
enum class GraphAlgorithm { PageRank, BFS, SSSP };

/** GraphLily-like engine configuration. */
struct SpmvEngineConfig
{
    u64 dstBlockVertices = 512 << 10; ///< output-buffer capacity
    u64 srcTileVertices = 512 << 10;  ///< vector-buffer capacity
    u32 lanes = 32;                   ///< edges processed per cycle (HBM-class)
    u32 entryBytes = 4;               ///< per-edge and per-vertex bytes
    double clockMhz = 800.0;
};

/** SpMSpV-style variant knobs (paper §V-B last paragraph). */
enum class VectorAccess {
    Sequential, ///< SpMV: rank vector streamed per tile
    Random,     ///< SpMSpV: per-element gathers, fine-grained MACs
};

/** Control-processor kernel for one graph workload. */
class GraphKernel : public core::Kernel
{
  public:
    /**
     * @param tiles       tiled structure from buildTiles()
     * @param algorithm   PageRank or BFS
     * @param iterations  SpMV sweeps to simulate
     */
    GraphKernel(GraphTiles tiles, GraphAlgorithm algorithm,
                u32 iterations, SpmvEngineConfig engine = {},
                VectorAccess vector_access = VectorAccess::Sequential);

    std::string name() const override;

    /** Stream the tiled SpMV schedule, one (iter, block, tile) phase
     *  per chunk; Iter bumps as each sweep begins. */
    std::unique_ptr<core::PhaseSource> stream() override;

    /** The 64-bit Iter counter after the run (paper: the whole state). */
    Vn iterCounter() const { return state_.counter("Iter"); }

  private:
    class Source; // the streaming producer (graph_kernel.cc)

    GraphTiles tiles_;
    GraphAlgorithm algorithm_;
    u32 iterations_;
    SpmvEngineConfig engine_;
    VectorAccess vectorAccess_;

    Addr adjacencyBase_ = 0;
    Addr vectorBase_[2] = {12ull << 30, 13ull << 30};
};

} // namespace mgx::graph

#endif // MGX_GRAPH_GRAPH_KERNEL_H
