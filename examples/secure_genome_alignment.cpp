/**
 * @file
 * Secure genome alignment (§VII-A): Darwin's GACT accelerator under
 * memory protection.
 *
 * Shows the two-counter VN scheme (CTR_genome for the read-only
 * reference/tables, CTR_genome||CTR_query for query batches and
 * traceback output), runs one workload under BP and MGX_VN, and
 * demonstrates functionally that traceback pointers written by one
 * query batch cannot be replayed into a later batch.
 */

#include <cstdio>
#include <vector>

#include "core/invariant_checker.h"
#include "genome/genome_kernel.h"
#include "protection/secure_memory.h"
#include "sim/runner.h"

int
main()
{
    using namespace mgx;
    using protection::Scheme;

    // -- timing: one Fig. 16 workload ----------------------------------
    genome::GactWorkload workload{"chr1PacBio", 248956422,
                                  genome::pacbioProfile(), 64};
    genome::GenomeKernel kernel(workload);
    core::Trace trace = kernel.generate();

    core::InvariantChecker checker;
    checker.observeTrace(trace);
    std::printf("GACT %s: %zu tile waves, %.1f MB of traffic, "
                "VN invariant %s\n",
                workload.name.c_str(), trace.size(),
                static_cast<double>(core::traceDataBytes(trace)) / 1e6,
                checker.report().ok ? "OK" : "VIOLATED");
    std::printf("on-chip VN state: %llu bytes "
                "(CTR_genome + CTR_query)\n\n",
                static_cast<unsigned long long>(
                    kernel.state().onChipBytes()));

    protection::ProtectionConfig base;
    auto cmp = sim::compareSchemes(
        trace, sim::genomePlatform(), base,
        {Scheme::NP, Scheme::MGX_VN, Scheme::BP});
    std::printf("%-8s %12s %12s\n", "scheme", "norm. time", "traffic");
    for (Scheme s : {Scheme::NP, Scheme::MGX_VN, Scheme::BP})
        std::printf("%-8s %12.3f %12.3f\n", protection::schemeName(s),
                    cmp.normalizedTime(s), cmp.trafficIncrease(s));

    // -- functional: traceback freshness across query batches ----------
    protection::SecureMemoryConfig mcfg;
    mcfg.encKey[7] = 0x77;
    mcfg.macKey[7] = 0x88;
    mcfg.macGranularity = 64;
    protection::SecureMemory mem(mcfg);

    const Addr traceback = 12ull << 30;
    std::vector<u8> ptrs(64, 0x11);
    const Vn batch1 = kernel.queryVn();
    mem.write(traceback, ptrs, batch1);
    auto stale = mem.snapshotBlock(traceback);

    // A second batch arrives: CTR_query increments, the same traceback
    // region is rewritten.
    kernel.generate();
    const Vn batch2 = kernel.queryVn();
    std::vector<u8> ptrs2(64, 0x22);
    mem.write(traceback, ptrs2, batch2);

    // Replay batch 1's traceback into batch 2's readout: rejected.
    mem.restoreBlock(stale);
    std::vector<u8> out(64);
    const bool caught = !mem.read(traceback, out, batch2);
    std::printf("\ncross-batch traceback replay: %s\n",
                caught ? "caught (CTR_query freshness)" : "MISSED");
    return caught ? 0 : 1;
}
