/**
 * @file
 * Quickstart: the MGX library in ~80 lines.
 *
 * 1. Build the paper's Fig. 4 tiled-MatMul kernel; its trace carries a
 *    kernel-generated version number on every access.
 * 2. Check the security invariant (no counter reuse, fresh reads).
 * 3. Run the trace under no protection, MGX, and the traditional
 *    baseline, and print the overhead each one pays.
 * 4. Do one functional encrypt/verify/decrypt round trip through
 *    SecureMemory to show the crypto layer in action.
 *
 * Build & run:  ./build/examples/quickstart
 */

#include <cstdio>
#include <vector>

#include "core/invariant_checker.h"
#include "core/matmul_kernel.h"
#include "protection/secure_memory.h"
#include "sim/runner.h"

int
main()
{
    using namespace mgx;
    using protection::Scheme;

    // -- 1. a kernel that generates its own version numbers -----------
    core::MatMulParams params;
    params.m = params.n = params.k = 1024;
    params.nTiles = 4;
    params.kTiles = 4;
    core::MatMulKernel kernel(params);
    core::Trace trace = kernel.generate();
    std::printf("tiled MatMul: %zu phases, %.1f MB of data movement\n",
                trace.size(),
                static_cast<double>(core::traceDataBytes(trace)) / 1e6);

    // -- 2. the security invariant ------------------------------------
    core::InvariantChecker checker;
    checker.observeTrace(trace);
    auto report = checker.report();
    std::printf("invariant check: %s (%llu writes, %llu reads)\n",
                report.ok ? "OK" : "VIOLATED",
                static_cast<unsigned long long>(report.writesChecked),
                static_cast<unsigned long long>(report.readsChecked));

    // -- 3. timing under three protection schemes ---------------------
    protection::ProtectionConfig base;
    sim::SchemeComparison cmp = sim::compareSchemes(
        trace, sim::edgePlatform(), base,
        {Scheme::NP, Scheme::MGX, Scheme::BP});
    std::printf("\n%-8s %12s %12s\n", "scheme", "norm. time",
                "traffic");
    for (Scheme s : {Scheme::NP, Scheme::MGX, Scheme::BP}) {
        std::printf("%-8s %12.3f %12.3f\n", protection::schemeName(s),
                    cmp.normalizedTime(s), cmp.trafficIncrease(s));
    }

    // -- 4. functional secure memory ----------------------------------
    protection::SecureMemoryConfig mcfg;
    mcfg.encKey[0] = 0x42;
    mcfg.macKey[0] = 0x24;
    protection::SecureMemory mem(mcfg);
    std::vector<u8> secret(512);
    for (std::size_t i = 0; i < secret.size(); ++i)
        secret[i] = static_cast<u8>(i * 13);
    mem.write(0x1000, secret, /*vn=*/7);

    std::vector<u8> out(512);
    bool ok = mem.read(0x1000, out, 7);
    std::printf("\nsecure memory round trip: %s\n",
                ok && out == secret ? "OK" : "FAILED");
    mem.tamperCiphertext(0x1010);
    std::printf("tamper detection: %s\n",
                mem.read(0x1000, out, 7) ? "MISSED" : "caught");
    return 0;
}
