/**
 * @file
 * mgx_fleet: front-end proxy + supervisor for a fleet of mgx_serve
 * workers. Forks N workers (each on its own unix socket, all sharing
 * one trace-cache dir), routes /run by consistent hash of the
 * request's cell set, probes /healthz, restarts dead workers with
 * capped backoff, and fails requests over so a SIGKILLed worker
 * never surfaces as a client error. See src/fleet/ and
 * docs/ARCHITECTURE.md ("The fleet layer").
 *
 * Usage:
 *   mgx_fleet --socket /tmp/mgx.sock --workers 3 \
 *             --trace-cache ~/.cache/mgx
 *   mgx_fleet --port 0 --workers 3     # prints the bound port
 */

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include <poll.h>
#include <sys/stat.h>

#include "fleet/fleet.h"

namespace {

volatile std::sig_atomic_t g_signaled = 0;

void
onSignal(int)
{
    g_signaled = 1;
}

int
usage(std::FILE *out)
{
    std::fprintf(
        out,
        "usage: mgx_fleet [options]\n"
        "  --socket PATH          proxy listens on a unix socket\n"
        "                         (default: TCP loopback)\n"
        "  --port N               proxy TCP port (0 = kernel-assigned;\n"
        "                         printed on startup)\n"
        "  --workers N            mgx_serve worker processes\n"
        "                         (default 3)\n"
        "  --socket-dir DIR       where worker sockets live (default:\n"
        "                         alongside --socket, else /tmp)\n"
        "  --trace-cache DIR      shared trace cache for all workers\n"
        "  --trace-cache-max-bytes N\n"
        "                         LRU cap for the shared cache\n"
        "  --worker-threads N     handler threads per worker\n"
        "                         (default 2)\n"
        "  --serve-binary PATH    the mgx_serve executable (default:\n"
        "                         found next to mgx_fleet)\n"
        "  --probe-interval-ms N  /healthz cadence (default 200)\n"
        "  --hedge-ms N           hedge a slow /run to the next worker\n"
        "                         after N ms (default 0 = off)\n"
        "  --no-keep-alive        one request per client connection\n"
        "  --quiet                no startup/shutdown chatter\n"
        "  --help                 this message\n");
    return out == stdout ? 0 : 2;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace mgx;

    fleet::FleetOptions opts;
    bool quiet = false;
    std::string socket_dir;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "mgx_fleet: %s needs a value\n",
                             arg.c_str());
                std::exit(usage(stderr));
            }
            return argv[++i];
        };
        if (arg == "--help" || arg == "-h")
            return usage(stdout);
        if (arg == "--socket") {
            opts.proxy.listen.unixPath = value();
        } else if (arg == "--port") {
            opts.proxy.listen.port =
                static_cast<u16>(std::strtoul(value(), nullptr, 10));
        } else if (arg == "--workers") {
            opts.supervisor.workers =
                static_cast<int>(std::strtol(value(), nullptr, 10));
        } else if (arg == "--socket-dir") {
            socket_dir = value();
        } else if (arg == "--trace-cache") {
            opts.supervisor.traceCacheDir = value();
        } else if (arg == "--trace-cache-max-bytes") {
            opts.supervisor.traceCacheMaxBytes =
                std::strtoull(value(), nullptr, 10);
        } else if (arg == "--worker-threads") {
            opts.supervisor.workerThreads =
                static_cast<u32>(std::strtoul(value(), nullptr, 10));
        } else if (arg == "--serve-binary") {
            opts.supervisor.serveBinary = value();
        } else if (arg == "--probe-interval-ms") {
            opts.supervisor.probeIntervalMs =
                static_cast<int>(std::strtol(value(), nullptr, 10));
        } else if (arg == "--hedge-ms") {
            opts.proxy.hedgeMs =
                static_cast<int>(std::strtol(value(), nullptr, 10));
        } else if (arg == "--no-keep-alive") {
            opts.proxy.keepAlive = false;
        } else if (arg == "--quiet" || arg == "-q") {
            quiet = true;
        } else {
            std::fprintf(stderr, "mgx_fleet: unknown option '%s'\n",
                         arg.c_str());
            return usage(stderr);
        }
    }

    if (socket_dir.empty()) {
        if (!opts.proxy.listen.unixPath.empty()) {
            const std::string &p = opts.proxy.listen.unixPath;
            const std::size_t slash = p.rfind('/');
            socket_dir =
                slash == std::string::npos ? "." : p.substr(0, slash);
        } else {
            socket_dir = "/tmp";
        }
    }
    ::mkdir(socket_dir.c_str(), 0777); // best effort; bind reports
    opts.supervisor.socketDir = socket_dir;

    fleet::Fleet f(opts);
    f.start();

    std::signal(SIGINT, onSignal);
    std::signal(SIGTERM, onSignal);
    std::signal(SIGPIPE, SIG_IGN);

    if (!quiet)
        std::printf("mgx_fleet: %d workers behind %s\n",
                    opts.supervisor.workers,
                    f.proxy().addressDescription().c_str());
    std::fflush(stdout);

    while (!g_signaled && !f.stopping())
        ::poll(nullptr, 0, 100);

    f.shutdown();

    if (!quiet) {
        const auto &m = f.proxy().metrics();
        std::printf(
            "mgx_fleet: drained; routed %llu, failovers %llu, "
            "restarts %llu\n",
            static_cast<unsigned long long>(
                m.routed.load(std::memory_order_relaxed)),
            static_cast<unsigned long long>(
                m.failovers.load(std::memory_order_relaxed)),
            static_cast<unsigned long long>(
                f.supervisor().restartCount()));
    }
    return 0;
}
