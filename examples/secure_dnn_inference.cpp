/**
 * @file
 * Secure DNN inference (the paper's headline scenario, §IV).
 *
 * Runs ResNet-50 inference on the TPU-like Cloud accelerator under
 * every protection scheme, prints per-scheme execution time, traffic
 * and DRAM statistics, and reports the kernel's on-chip VN state
 * footprint — demonstrating that a full DNN needs only ~1 KB of
 * on-chip counters instead of megabytes of off-chip VNs plus a tree.
 *
 * Usage: secure_dnn_inference [model] [cloud|edge]
 *   model in {VGG, AlexNet, GoogleNet, ResNet, BERT, DLRM}
 */

#include <cstdio>
#include <cstring>

#include "dnn/dnn_kernel.h"
#include "dnn/models.h"
#include "sim/experiment.h"

int
main(int argc, char **argv)
{
    using namespace mgx;
    using protection::Scheme;

    const std::string model_name = argc > 1 ? argv[1] : "ResNet";
    const bool edge = argc > 2 && std::strcmp(argv[2], "edge") == 0;

    dnn::Model model = dnn::modelByName(model_name);
    dnn::DnnAccelConfig accel =
        edge ? dnn::edgeAccel() : dnn::cloudAccel();
    std::printf("%s inference on the %s accelerator "
                "(%ux%u PEs, %.1f MB SRAM, %.0f MHz)\n",
                model.name.c_str(), accel.name.c_str(), accel.peRows,
                accel.peCols,
                static_cast<double>(accel.sramBytes) / (1 << 20),
                accel.clockMhz);
    std::printf("  %zu layers, %.1f M parameters, %.2f GMACs/sample\n",
                model.layers.size(),
                static_cast<double>(model.weightBytes(1)) / 1e6,
                static_cast<double>(model.totalMacs()) / 1e9);

    dnn::DnnKernel kernel(model, accel);
    core::Trace trace = kernel.generate();
    std::printf("  trace: %zu phases, %.1f MB data traffic, "
                "%llu B on-chip VN state\n\n",
                trace.size(),
                static_cast<double>(core::traceDataBytes(trace)) / 1e6,
                static_cast<unsigned long long>(kernel.vnStateBytes()));

    const sim::Platform platform =
        edge ? sim::edgePlatform() : sim::cloudPlatform();
    sim::ResultSet rs = sim::Experiment()
                            .trace(model_name, trace)
                            .platform(platform)
                            .schemes(sim::allSchemes())
                            .run();

    std::printf("%-8s %10s %10s %12s %14s\n", "scheme", "time(ms)",
                "norm.", "traffic", "images/s");
    for (Scheme s : sim::allSchemes()) {
        const auto &r = *rs.find(model_name, platform.name, s);
        std::printf(
            "%-8s %10.3f %10.3f %12.3f %14.1f\n",
            protection::schemeName(s), r.seconds * 1e3,
            rs.normalizedTime(model_name, platform.name, s).value(),
            rs.trafficIncrease(model_name, platform.name, s).value(),
            static_cast<double>(kernel.batch()) / r.seconds);
    }
    std::printf(
        "\nMGX costs %.1f%% over no protection; the baseline "
        "costs %.1f%%.\n",
        100.0 * (rs.normalizedTime(model_name, platform.name,
                                   Scheme::MGX)
                     .value() -
                 1.0),
        100.0 * (rs.normalizedTime(model_name, platform.name,
                                   Scheme::BP)
                     .value() -
                 1.0));
    return 0;
}
