/**
 * @file
 * DNN pruning under MGX (§VII-B).
 *
 * Static pruning is "just another network": we channel-prune ResNet-50
 * and run it like any model. Dynamic pruning skips input-dependent
 * feature tiles at run time; the kernel keeps the same shared VN_F,
 * simply never using the skipped (address, VN) pairs. This example
 * sweeps the feature density, verifies the security invariant at each
 * point, and shows that MGX's overhead stays near zero while the
 * baseline's grows as the compute-to-traffic ratio shifts.
 */

#include <cstdio>

#include "core/invariant_checker.h"
#include "dnn/dnn_kernel.h"
#include "dnn/models.h"
#include "dnn/pruning.h"
#include "sim/runner.h"

int
main()
{
    using namespace mgx;
    using protection::Scheme;

    // -- static channel pruning ---------------------------------------
    dnn::Model dense = dnn::resnet50();
    dnn::Model pruned = dnn::staticChannelPrune(dense, 0.6);
    std::printf("static channel pruning (keep 60%%): %.1f M -> %.1f M "
                "parameters\n\n",
                static_cast<double>(dense.weightBytes(1)) / 1e6,
                static_cast<double>(pruned.weightBytes(1)) / 1e6);

    // -- dynamic pruning density sweep ---------------------------------
    std::printf("%-10s %12s %12s %12s %10s\n", "density",
                "data(MB)", "MGX", "BP", "invariant");
    protection::ProtectionConfig base;
    for (double density : {1.0, 0.75, 0.5, 0.3}) {
        dnn::DnnKernel kernel(pruned, dnn::cloudAccel());
        if (density < 1.0) {
            // Realistic effective density for CSR-compressed features
            // at this value-density, using run-length coding (§VII-B).
            kernel.setFeatureDensity(dnn::effectiveDensity(
                256, 256, density, 1, dnn::SparseFormat::RLC));
        }
        core::Trace trace = kernel.generate();

        core::InvariantChecker checker;
        checker.observeTrace(trace);

        auto cmp = sim::compareSchemes(
            trace, sim::cloudPlatform(), base,
            {Scheme::NP, Scheme::MGX, Scheme::BP});
        std::printf("%-10.2f %12.1f %12.3f %12.3f %10s\n", density,
                    static_cast<double>(core::traceDataBytes(trace)) /
                        1e6,
                    cmp.normalizedTime(Scheme::MGX),
                    cmp.normalizedTime(Scheme::BP),
                    checker.report().ok ? "OK" : "VIOLATED");
    }
    std::printf("\nSkipped VNs are never reused, so dynamic pruning "
                "needs no change to the MGX scheme (paper Fig. 20).\n");
    return 0;
}
