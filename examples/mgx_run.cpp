/**
 * @file
 * mgx_run: the experiment CLI. Runs any registry workload grid under
 * any scheme set and emits the fixed-width table and/or the
 * mgx-resultset-v1 JSON artifact — the machine-readable path for
 * tracking the repo's performance trajectory.
 *
 * Usage:
 *   mgx_run --list
 *   mgx_run --workload dnn/resnet50 --schemes NP,MGX,BP --json out.json
 *   mgx_run --all --platforms cloud,edge --threads 8 --json all.json
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "sim/experiment.h"
#include "sim/report.h"
#include "sim/workload_registry.h"

namespace {

using namespace mgx;

int
usage(std::FILE *out)
{
    std::fprintf(
        out,
        "usage: mgx_run [options]\n"
        "  --list                 print every registry workload and exit\n"
        "  --list-scaled          print the oversized streaming-only\n"
        "                         workload variants and exit\n"
        "  --workload NAME[,...]  add workloads (repeatable); see --list\n"
        "  --all                  run every registry workload\n"
        "  --platforms P[,...]    cloud, edge, graph, genome\n"
        "                         (default: each workload's paper platform)\n"
        "  --schemes S[,...]      NP, MGX, MGX_VN, MGX_MAC, BP\n"
        "                         (default: all five)\n"
        "  --threads N            worker threads (default: all cores)\n"
        "  --trace-cache DIR      reuse generated traces across runs:\n"
        "                         serialize each trace into DIR and\n"
        "                         replay from it instead of regenerating\n"
        "  --trace-cache-max-bytes N\n"
        "                         LRU size cap for the trace cache:\n"
        "                         after the run, evict oldest-mtime\n"
        "                         traces until DIR is back under N\n"
        "  --materialize          build each trace in memory before\n"
        "                         replaying (the pre-streaming path;\n"
        "                         O(workload) memory). Default is the\n"
        "                         streaming pipeline: phases are pulled\n"
        "                         off the kernel or cache file and\n"
        "                         memory stays bounded by one phase\n"
        "  --pipeline             split every cell's trace generation\n"
        "                         and replay onto two threads over a\n"
        "                         bounded SPSC phase ring — bitwise-\n"
        "                         identical results (only the pipeline\n"
        "                         stall counters vary run to run)\n"
        "  --no-pipeline          force serial cells. Default: auto —\n"
        "                         pipeline only a single-cell grid.\n"
        "                         --threads N stays a true concurrency\n"
        "                         cap: a pipelined cell costs two\n"
        "                         threads (producer + replay), so the\n"
        "                         pool runs floor(N/2) cells at once,\n"
        "                         and --threads 1 never pipelines\n"
        "  --replay-threads N     channel-sharded replay: replay each\n"
        "                         phase's per-DRAM-channel command\n"
        "                         lanes on N threads (clamped to the\n"
        "                         platform's channel count) and merge\n"
        "                         deterministically — bitwise-identical\n"
        "                         results for every N (only the shard\n"
        "                         merge-wait counter varies). Composes\n"
        "                         with --pipeline: such a cell budgets\n"
        "                         1 + N threads against --threads.\n"
        "                         Default 1 (serial replay)\n"
        "  --json FILE            write the mgx-resultset-v1 artifact\n"
        "  --quiet                suppress the table on stdout\n"
        "  --help                 this message\n"
        "\n"
        "example:\n"
        "  mgx_run --workload dnn/resnet50 --schemes NP,MGX,BP "
        "--json out.json\n");
    return out == stdout ? 0 : 2;
}

std::vector<std::string>
splitCommas(const std::string &arg)
{
    std::vector<std::string> parts;
    std::size_t start = 0;
    while (start <= arg.size()) {
        std::size_t pos = arg.find(',', start);
        if (pos == std::string::npos)
            pos = arg.size();
        if (pos > start)
            parts.push_back(arg.substr(start, pos - start));
        start = pos + 1;
    }
    return parts;
}

bool
platformByName(const std::string &name, sim::Platform &out)
{
    if (name == "cloud")
        out = sim::cloudPlatform();
    else if (name == "edge")
        out = sim::edgePlatform();
    else if (name == "graph")
        out = sim::graphPlatform();
    else if (name == "genome")
        out = sim::genomePlatform();
    else
        return false;
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<std::string> workloads;
    std::vector<sim::Platform> platforms;
    std::vector<protection::Scheme> schemes;
    std::string json_path;
    std::string trace_cache_dir;
    unsigned long long trace_cache_max_bytes = 0;
    unsigned threads = 0;
    unsigned replay_threads = 1;
    bool quiet = false;
    bool materialize = false;
    int pipeline = -1; // -1 auto, 0 forced off, 1 forced on

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "mgx_run: %s needs a value\n",
                             arg.c_str());
                std::exit(usage(stderr));
            }
            return argv[++i];
        };
        if (arg == "--help" || arg == "-h")
            return usage(stdout);
        if (arg == "--list") {
            for (const auto &name : sim::listWorkloads())
                std::printf("%s\n", name.c_str());
            return 0;
        }
        if (arg == "--list-scaled") {
            for (const auto &name : sim::listScaledWorkloads())
                std::printf("%s\n", name.c_str());
            return 0;
        }
        if (arg == "--workload" || arg == "-w") {
            for (auto &w : splitCommas(value()))
                workloads.push_back(w);
        } else if (arg == "--all") {
            for (auto &w : sim::listWorkloads())
                workloads.push_back(w);
        } else if (arg == "--platforms" || arg == "--platform") {
            for (auto &p : splitCommas(value())) {
                sim::Platform platform;
                if (!platformByName(p, platform)) {
                    std::fprintf(stderr,
                                 "mgx_run: unknown platform '%s'\n",
                                 p.c_str());
                    return usage(stderr);
                }
                platforms.push_back(platform);
            }
        } else if (arg == "--schemes" || arg == "--scheme") {
            for (auto &s : splitCommas(value()))
                schemes.push_back(sim::schemeByName(s));
        } else if (arg == "--threads") {
            const char *v = value();
            char *end = nullptr;
            threads =
                static_cast<unsigned>(std::strtoul(v, &end, 10));
            if (end == v || *end != '\0') {
                std::fprintf(stderr,
                             "mgx_run: --threads needs a number, "
                             "got '%s'\n",
                             v);
                return usage(stderr);
            }
        } else if (arg == "--replay-threads") {
            const char *v = value();
            char *end = nullptr;
            replay_threads =
                static_cast<unsigned>(std::strtoul(v, &end, 10));
            if (end == v || *end != '\0' || replay_threads == 0) {
                std::fprintf(stderr,
                             "mgx_run: --replay-threads needs a "
                             "positive number, got '%s'\n",
                             v);
                return usage(stderr);
            }
        } else if (arg == "--json") {
            json_path = value();
        } else if (arg == "--trace-cache") {
            trace_cache_dir = value();
        } else if (arg == "--trace-cache-max-bytes") {
            const char *v = value();
            char *end = nullptr;
            trace_cache_max_bytes = std::strtoull(v, &end, 10);
            if (end == v || *end != '\0') {
                std::fprintf(stderr,
                             "mgx_run: --trace-cache-max-bytes needs "
                             "a byte count, got '%s'\n",
                             v);
                return usage(stderr);
            }
        } else if (arg == "--materialize") {
            materialize = true;
        } else if (arg == "--pipeline") {
            pipeline = 1;
        } else if (arg == "--no-pipeline") {
            pipeline = 0;
        } else if (arg == "--quiet" || arg == "-q") {
            quiet = true;
        } else {
            std::fprintf(stderr, "mgx_run: unknown option '%s'\n",
                         arg.c_str());
            return usage(stderr);
        }
    }

    if (workloads.empty()) {
        std::fprintf(stderr, "mgx_run: no workloads selected\n");
        return usage(stderr);
    }

    if (trace_cache_max_bytes != 0 && trace_cache_dir.empty()) {
        std::fprintf(stderr, "mgx_run: --trace-cache-max-bytes needs "
                             "--trace-cache\n");
        return usage(stderr);
    }

    if (pipeline == 1 && materialize) {
        std::fprintf(stderr, "mgx_run: --pipeline needs the streaming "
                             "path (drop --materialize)\n");
        return usage(stderr);
    }

    if (replay_threads > 1 && materialize) {
        std::fprintf(stderr,
                     "mgx_run: --replay-threads needs the streaming "
                     "path (drop --materialize)\n");
        return usage(stderr);
    }

    sim::Experiment experiment;
    experiment.workloads(workloads)
        .threads(threads)
        .replayThreads(replay_threads)
        .streaming(!materialize);
    if (pipeline != -1)
        experiment.pipelined(pipeline == 1);
    if (!platforms.empty())
        experiment.platforms(platforms);
    if (!schemes.empty())
        experiment.schemes(schemes);
    if (!trace_cache_dir.empty())
        experiment.traceCacheDir(trace_cache_dir);
    if (trace_cache_max_bytes != 0)
        experiment.traceCacheMaxBytes(trace_cache_max_bytes);

    sim::ResultSet rs = experiment.run();

    if (!trace_cache_dir.empty()) {
        // The "N hit(s), M miss(es)" prefix is a stable interface
        // (smoke scripts grep it); health detail is only appended
        // when something actually happened.
        std::printf("trace-cache: %llu hit(s), %llu miss(es)",
                    static_cast<unsigned long long>(rs.traceCacheHits()),
                    static_cast<unsigned long long>(
                        rs.traceCacheMisses()));
        if (rs.traceCacheQuarantined() != 0)
            std::printf(", %llu quarantined",
                        static_cast<unsigned long long>(
                            rs.traceCacheQuarantined()));
        if (rs.traceCacheSwept() != 0)
            std::printf(", %llu swept",
                        static_cast<unsigned long long>(
                            rs.traceCacheSwept()));
        if (rs.cacheDegraded())
            std::printf(", degraded (%llu fault(s))",
                        static_cast<unsigned long long>(
                            rs.traceCacheFaults()));
        std::printf("\n");
    }

    if (!quiet)
        sim::printTable(rs);

    if (!json_path.empty()) {
        std::ofstream out(json_path);
        if (!out) {
            std::fprintf(stderr, "mgx_run: cannot write '%s'\n",
                         json_path.c_str());
            return 1;
        }
        sim::writeJson(rs, out);
        if (!quiet)
            std::printf("\nwrote %zu records to %s\n",
                        rs.records().size(), json_path.c_str());
    }
    return 0;
}
