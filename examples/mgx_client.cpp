/**
 * @file
 * mgx_client: one-shot CLI client for mgx_serve. Builds the /run
 * query from mgx_run-style flags, prints the response body to stdout,
 * and exits non-zero on any non-2xx answer — so shell scripts can
 * pipe the resultset JSON exactly as they would `mgx_run --json`.
 *
 * Usage:
 *   mgx_client --socket /tmp/mgx.sock --run core/matmul --schemes NP,BP
 *   mgx_client --port 8931 --stats
 *   mgx_client --socket /tmp/mgx.sock --shutdown
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "serve/client.h"

namespace {

int
usage(std::FILE *out)
{
    std::fprintf(
        out,
        "usage: mgx_client (--socket PATH | --port N [--host H]) "
        "ACTION\n"
        "actions:\n"
        "  --run W[,W...]         run workloads; prints resultset JSON\n"
        "    --platforms P[,...]  cloud, edge, graph, genome\n"
        "    --schemes S[,...]    NP, MGX, MGX_VN, MGX_MAC, BP\n"
        "  --stats                print the service's counters\n"
        "  --shutdown             ask the daemon to drain and exit\n"
        "options:\n"
        "  --timeout-ms N         per-request timeout (default 120000)\n"
        "  --retries N            retry transient failures (connect\n"
        "                         refused, IO error, reset after a\n"
        "                         partial response, 429/503) up to N\n"
        "                         times (default 0)\n"
        "  --backoff-ms B         base retry delay; doubles per retry\n"
        "                         with jitter (default 100)\n"
        "  --client-stats         print per-class attempt/failure\n"
        "                         counters to stderr when done\n"
        "  --repeat N             issue the request N times over one\n"
        "                         kept-alive connection; prints a\n"
        "                         latency summary to stderr (default 1)\n"
        "  --no-keep-alive        with --repeat: reconnect for every\n"
        "                         request instead of reusing the\n"
        "                         connection\n"
        "  --help                 this message\n");
    return out == stdout ? 0 : 2;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace mgx;

    serve::SocketAddress addr;
    std::string workloads, platforms, schemes;
    bool stats = false, shutdown = false, client_stats = false;
    bool keep_alive = true;
    int timeout_ms = 120000;
    int repeat = 1;
    serve::RetryOptions retry;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "mgx_client: %s needs a value\n",
                             arg.c_str());
                std::exit(usage(stderr));
            }
            return argv[++i];
        };
        if (arg == "--help" || arg == "-h")
            return usage(stdout);
        if (arg == "--socket") {
            addr.unixPath = value();
        } else if (arg == "--port") {
            addr.port =
                static_cast<u16>(std::strtoul(value(), nullptr, 10));
        } else if (arg == "--host") {
            addr.host = value();
        } else if (arg == "--run" || arg == "--workload" ||
                   arg == "-w") {
            workloads = value();
        } else if (arg == "--platforms" || arg == "--platform") {
            platforms = value();
        } else if (arg == "--schemes" || arg == "--scheme") {
            schemes = value();
        } else if (arg == "--stats") {
            stats = true;
        } else if (arg == "--shutdown") {
            shutdown = true;
        } else if (arg == "--timeout-ms") {
            timeout_ms =
                static_cast<int>(std::strtol(value(), nullptr, 10));
        } else if (arg == "--retries") {
            retry.retries =
                static_cast<int>(std::strtol(value(), nullptr, 10));
        } else if (arg == "--backoff-ms") {
            retry.backoffMs =
                static_cast<int>(std::strtol(value(), nullptr, 10));
        } else if (arg == "--client-stats") {
            client_stats = true;
        } else if (arg == "--repeat") {
            repeat = static_cast<int>(std::strtol(value(), nullptr, 10));
        } else if (arg == "--no-keep-alive") {
            keep_alive = false;
        } else {
            std::fprintf(stderr, "mgx_client: unknown option '%s'\n",
                         arg.c_str());
            return usage(stderr);
        }
    }

    if (addr.unixPath.empty() && addr.port == 0) {
        std::fprintf(stderr,
                     "mgx_client: need --socket PATH or --port N\n");
        return usage(stderr);
    }
    const int actions = (workloads.empty() ? 0 : 1) + (stats ? 1 : 0) +
                        (shutdown ? 1 : 0);
    if (actions != 1) {
        std::fprintf(stderr, "mgx_client: pick exactly one of --run, "
                             "--stats, --shutdown\n");
        return usage(stderr);
    }

    std::string target;
    if (stats) {
        target = "/stats";
    } else if (shutdown) {
        target = "/shutdown";
    } else {
        target = "/run";
        char sep = '?';
        // One workload= per name keeps commas inside parameterized
        // names (e.g. core/matmul?m=64) unambiguous after encoding.
        std::size_t start = 0;
        while (start <= workloads.size()) {
            std::size_t pos = workloads.find(',', start);
            if (pos == std::string::npos)
                pos = workloads.size();
            if (pos > start) {
                target += sep;
                target += "workload=";
                target += serve::percentEncode(
                    workloads.substr(start, pos - start));
                sep = '&';
            }
            start = pos + 1;
        }
        if (!platforms.empty()) {
            target += sep;
            target += "platforms=" + serve::percentEncode(platforms);
            sep = '&';
        }
        if (!schemes.empty()) {
            target += sep;
            // Scheme names are [A-Z_] and the comma separator must
            // stay literal, so the list goes through unencoded.
            target += "schemes=" + schemes;
        }
    }

    serve::HttpResponse resp;
    std::string error;
    int attempts = 0;
    serve::RetryStats rstats;
    const auto printClientStats = [&] {
        if (!client_stats)
            return;
        std::fprintf(
            stderr,
            "mgx_client: stats: attempts %llu, connect %llu, "
            "send %llu, recv %llu, partialResponse %llu, "
            "parse %llu, backpressure %llu\n",
            static_cast<unsigned long long>(rstats.attempts),
            static_cast<unsigned long long>(rstats.connectFailures),
            static_cast<unsigned long long>(rstats.sendFailures),
            static_cast<unsigned long long>(rstats.recvFailures),
            static_cast<unsigned long long>(rstats.partialResponses),
            static_cast<unsigned long long>(rstats.parseFailures),
            static_cast<unsigned long long>(rstats.backpressure));
    };
    if (repeat > 1) {
        // Latency-measurement mode: the same request N times, either
        // over one kept-alive connection or with a fresh connect per
        // request (--no-keep-alive) — the delta is the connect cost.
        serve::ClientConnection conn(addr);
        double total_ms = 0, best_ms = 0, worst_ms = 0;
        u64 reused = 0;
        for (int r = 0; r < repeat; ++r) {
            const auto t0 = std::chrono::steady_clock::now();
            serve::GetFailure f = serve::GetFailure::None;
            const bool ok =
                keep_alive
                    ? conn.get(target, &resp, &error, timeout_ms, &f)
                    : serve::httpGet(addr, target, &resp, &error,
                                     timeout_ms, &f);
            ++rstats.attempts;
            if (!ok) {
                rstats.count(f);
                printClientStats();
                std::fprintf(stderr,
                             "mgx_client: request %d/%d failed (%s): "
                             "%s\n",
                             r + 1, repeat, serve::getFailureName(f),
                             error.c_str());
                return 1;
            }
            const double ms =
                std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
            total_ms += ms;
            best_ms = r == 0 ? ms : std::min(best_ms, ms);
            worst_ms = std::max(worst_ms, ms);
            if (keep_alive && conn.lastReused())
                ++reused;
            if (resp.status < 200 || resp.status >= 300) {
                printClientStats();
                std::fprintf(stderr, "mgx_client: HTTP %d %s\n",
                             resp.status, resp.reason.c_str());
                return 1;
            }
        }
        printClientStats();
        std::fprintf(stderr,
                     "mgx_client: %d requests (%llu on reused "
                     "connections): mean %.3f ms, min %.3f ms, "
                     "max %.3f ms\n",
                     repeat, static_cast<unsigned long long>(reused),
                     total_ms / repeat, best_ms, worst_ms);
        std::fputs(resp.body.c_str(), stdout);
        return 0;
    }

    if (!serve::httpGetRetry(addr, target, &resp, &error, timeout_ms,
                             retry, &attempts, &rstats)) {
        printClientStats();
        if (attempts > 1)
            std::fprintf(stderr,
                         "mgx_client: giving up after %d attempts: "
                         "%s\n",
                         attempts, error.c_str());
        else
            std::fprintf(stderr, "mgx_client: %s\n", error.c_str());
        return 1;
    }
    printClientStats();
    std::fputs(resp.body.c_str(), stdout);
    if (resp.status < 200 || resp.status >= 300) {
        if ((resp.status == 429 || resp.status == 503) && attempts > 1)
            std::fprintf(stderr,
                         "mgx_client: HTTP %d %s (still after %d "
                         "attempts)\n",
                         resp.status, resp.reason.c_str(), attempts);
        else
            std::fprintf(stderr, "mgx_client: HTTP %d %s\n",
                         resp.status, resp.reason.c_str());
        return 1;
    }
    return 0;
}
