/**
 * @file
 * Secure H.264 decoding (§VII-A): decodes an IBPB GOP into encrypted
 * frame buffers using the CTR_IN || F version-number rule, shows that
 * out-of-order B-frame references decrypt correctly, and demonstrates
 * that a frame-replay attack on the decoded-picture buffer is caught.
 */

#include <cstdio>
#include <vector>

#include "protection/secure_memory.h"
#include "video/video_kernel.h"

int
main()
{
    using namespace mgx;

    video::VideoConfig cfg;
    cfg.width = 352; // CIF keeps the functional demo quick
    cfg.height = 288;
    cfg.bytesPerPixel = 1.5;
    cfg.numFrames = 12;
    video::VideoKernel kernel(cfg);
    kernel.generate(); // registers bitstream #1 (CTR_IN = 1)

    protection::SecureMemoryConfig mcfg;
    mcfg.encKey[2] = 0x33;
    mcfg.macKey[2] = 0x44;
    protection::SecureMemory mem(mcfg);
    const u64 fb = (cfg.frameBytes() + 511) & ~511ull;

    auto frame_pixels = [fb](u32 f) {
        std::vector<u8> px(fb);
        for (u64 i = 0; i < fb; ++i)
            px[i] = static_cast<u8>(f * 31 + i * 7);
        return px;
    };

    std::printf("decoding %u CIF frames (IBPB GOP) into three "
                "encrypted frame buffers...\n",
                cfg.numFrames);
    u32 checked = 0;
    for (const auto &f : video::buildDecodeSchedule(cfg)) {
        const char type = f.type == video::FrameType::I
                              ? 'I'
                              : f.type == video::FrameType::P ? 'P'
                                                              : 'B';
        // Inter-prediction: fetch and verify each reference frame.
        for (std::size_t r = 0; r < f.refDisplayNumbers.size(); ++r) {
            std::vector<u8> ref(fb);
            const bool ok = mem.read(
                kernel.bufferAddr(f.refBufferIndices[r]), ref,
                kernel.frameVn(f.refDisplayNumbers[r]));
            if (!ok || ref != frame_pixels(f.refDisplayNumbers[r])) {
                std::printf("reference frame %u FAILED verification\n",
                            f.refDisplayNumbers[r]);
                return 1;
            }
            ++checked;
        }
        mem.write(kernel.bufferAddr(f.bufferIndex),
                  frame_pixels(f.displayNumber),
                  kernel.frameVn(f.displayNumber));
        std::printf("  decoded frame %2u (%c) -> buffer %u, VN = "
                    "CTR_IN||%u\n",
                    f.displayNumber, type, f.bufferIndex,
                    f.displayNumber);
    }
    std::printf("all %u inter-prediction reads verified and decrypted "
                "correctly\n\n",
                checked);

    // Replay attack on the decoded-picture buffer: record an anchor
    // buffer, let the decoder overwrite it, then restore the stale
    // ciphertext. The next read regenerates the *current* VN on-chip
    // and the stale frame fails its MAC.
    auto stale = mem.snapshotBlock(kernel.bufferAddr(0));
    mem.write(kernel.bufferAddr(0), frame_pixels(12),
              kernel.frameVn(12));
    mem.restoreBlock(stale);
    std::vector<u8> out(fb);
    const bool replay_caught =
        !mem.read(kernel.bufferAddr(0), out, kernel.frameVn(12));
    std::printf("frame-replay attack: %s\n",
                replay_caught ? "caught by MAC + on-chip VN"
                              : "MISSED (bug!)");
    return replay_caught ? 0 : 1;
}
