/**
 * @file
 * Trace replay: dump any kernel's trace to a portable text file and
 * re-simulate it later — the workflow for archiving experiment
 * artifacts or inspecting a schedule with standard tools.
 *
 * Usage:
 *   trace_replay dump <model> <file>   # e.g. trace_replay dump AlexNet t.trace
 *   trace_replay run  <file> [edge|cloud]
 */

#include <cstdio>
#include <cstring>
#include <fstream>

#include "core/invariant_checker.h"
#include "dnn/dnn_kernel.h"
#include "dnn/models.h"
#include "sim/runner.h"
#include "sim/trace_io.h"

namespace {

int
usage()
{
    std::fprintf(stderr,
                 "usage:\n"
                 "  trace_replay dump <model> <file>\n"
                 "  trace_replay run <file> [edge|cloud]\n");
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace mgx;
    if (argc < 3)
        return usage();

    if (std::strcmp(argv[1], "dump") == 0) {
        if (argc < 4)
            return usage();
        dnn::DnnKernel kernel(dnn::modelByName(argv[2]),
                              dnn::cloudAccel());
        core::Trace trace = kernel.generate();
        std::ofstream out(argv[3]);
        if (!out)
            fatal("cannot open '%s' for writing", argv[3]);
        sim::writeTrace(trace, out);
        std::printf("wrote %zu phases (%.1f MB of traffic) to %s\n",
                    trace.size(),
                    static_cast<double>(core::traceDataBytes(trace)) /
                        1e6,
                    argv[3]);
        return 0;
    }

    if (std::strcmp(argv[1], "run") == 0) {
        std::ifstream in(argv[2]);
        if (!in)
            fatal("cannot open '%s'", argv[2]);
        core::Trace trace = sim::readTrace(in);
        std::printf("loaded %zu phases, %.1f MB of traffic\n",
                    trace.size(),
                    static_cast<double>(core::traceDataBytes(trace)) /
                        1e6);

        core::InvariantChecker checker;
        checker.observeTrace(trace);
        std::printf("VN invariant: %s\n",
                    checker.report().ok ? "OK" : "VIOLATED");

        const bool edge = argc > 3 && std::strcmp(argv[3], "edge") == 0;
        protection::ProtectionConfig base;
        auto cmp = sim::compareSchemes(trace,
                                       edge ? sim::edgePlatform()
                                            : sim::cloudPlatform(),
                                       base, sim::allSchemes());
        std::printf("%-8s %12s %12s\n", "scheme", "norm. time",
                    "traffic");
        for (auto s : sim::allSchemes())
            std::printf("%-8s %12.3f %12.3f\n",
                        protection::schemeName(s),
                        cmp.normalizedTime(s), cmp.trafficIncrease(s));
        return 0;
    }
    return usage();
}
