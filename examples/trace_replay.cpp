/**
 * @file
 * Trace replay: dump any kernel's trace to a portable text file and
 * re-simulate it later — the workflow for archiving experiment
 * artifacts or inspecting a schedule with standard tools.
 *
 * Both directions stream. `dump` serializes phases as the kernel
 * emits them (TraceFileWriteSink), and `run` replays the file through
 * a pull-based FilePhaseSource once per scheme — so neither command
 * ever materializes the trace, and full-size inputs (the
 * `mgx_run --list-scaled` variants) replay in bounded memory.
 *
 * Usage:
 *   trace_replay dump <workload> <file>  # any registry name; bare DNN
 *                                        # model names still work
 *   trace_replay run  <file> [edge|cloud]
 */

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "core/invariant_checker.h"
#include "dram/dram_system.h"
#include "sim/runner.h"
#include "sim/trace_io.h"
#include "sim/workload_registry.h"

namespace {

using namespace mgx;

int
usage(std::FILE *out)
{
    std::fprintf(
        out,
        "usage:\n"
        "  trace_replay dump <workload> <file>\n"
        "  trace_replay run <file> [edge|cloud]\n"
        "\n"
        "<workload> is a registry name (see `mgx_run --list`), e.g.\n"
        "dnn/ResNet?task=training or graph/pokec/pagerank; a bare DNN\n"
        "model name like AlexNet is shorthand for dnn/<model>.\n");
    return out == stdout ? 0 : 2;
}

/** First streamed pass over the file: VN invariant + shape counters. */
class InspectSink final : public core::PhaseSink
{
  public:
    void
    consume(const core::Phase &phase) override
    {
        ++phases_;
        for (const auto &acc : phase.accesses) {
            dataBytes_ += acc.bytes;
            checker_.observe(acc);
        }
    }

    u64 phases() const { return phases_; }
    u64 dataBytes() const { return dataBytes_; }
    bool invariantOk() const { return checker_.report().ok; }

  private:
    core::InvariantChecker checker_;
    u64 phases_ = 0;
    u64 dataBytes_ = 0;
};

int
run(int argc, char **argv)
{
    if (argc > 1 && (std::strcmp(argv[1], "--help") == 0 ||
                     std::strcmp(argv[1], "-h") == 0))
        return usage(stdout);
    if (argc < 3)
        return usage(stderr);

    if (std::strcmp(argv[1], "dump") == 0) {
        if (argc != 4)
            return usage(stderr);
        std::string name = argv[2];
        if (name.find('/') == std::string::npos)
            name = "dnn/" + name; // legacy bare-model shorthand
        auto kernel = sim::makeKernel(name);
        // Stream straight to the file; the trace is never resident.
        sim::TraceFileWriteSink file(argv[3]);
        kernel->stream()->drainTo(file);
        file.finish();
        std::printf("wrote %llu phases (%.1f MB of traffic) to %s\n",
                    static_cast<unsigned long long>(file.phases()),
                    static_cast<double>(file.dataBytes()) / 1e6,
                    argv[3]);
        return 0;
    }

    if (std::strcmp(argv[1], "run") == 0) {
        if (argc > 4)
            return usage(stderr);

        // Pass 0: stream once for the VN invariant and the counters —
        // also the early-out for files with nothing to simulate.
        InspectSink inspect;
        {
            sim::FilePhaseSource source(argv[2]);
            source.drainTo(inspect);
        }
        if (inspect.phases() == 0 || inspect.dataBytes() == 0) {
            std::fprintf(stderr,
                         "trace_replay: '%s' contains no accesses — "
                         "nothing to simulate\n",
                         argv[2]);
            return 1;
        }
        std::printf("loaded %llu phases, %.1f MB of traffic\n",
                    static_cast<unsigned long long>(inspect.phases()),
                    static_cast<double>(inspect.dataBytes()) / 1e6);
        std::printf("VN invariant: %s\n",
                    inspect.invariantOk() ? "OK" : "VIOLATED");

        const bool edge = argc > 3 && std::strcmp(argv[3], "edge") == 0;
        if (argc > 3 && !edge && std::strcmp(argv[3], "cloud") != 0) {
            std::fprintf(stderr,
                         "trace_replay: platform must be edge or "
                         "cloud, not '%s'\n",
                         argv[3]);
            return usage(stderr);
        }
        const sim::Platform platform =
            edge ? sim::edgePlatform() : sim::cloudPlatform();

        // One streamed pass per scheme on fresh engine state — the
        // trace is re-read from disk instead of held in memory.
        const std::vector<protection::Scheme> schemes =
            sim::allSchemes();
        std::vector<sim::RunResult> results;
        const sim::RunResult *np = nullptr;
        for (protection::Scheme scheme : schemes) {
            dram::DramSystem dram(platform.dram);
            protection::ProtectionConfig cfg;
            cfg.scheme = scheme;
            protection::ProtectionEngine engine(cfg, &dram);
            sim::PerfModel model(&engine, platform.clockMhz);
            sim::FilePhaseSource source(argv[2]);
            results.push_back(model.run(source));
        }
        for (std::size_t i = 0; i < schemes.size(); ++i)
            if (schemes[i] == protection::Scheme::NP)
                np = &results[i];
        if (np == nullptr || np->totalCycles == 0 ||
            np->traffic.totalBytes() == 0) {
            std::fprintf(stderr, "trace_replay: no NP baseline run — "
                                 "cannot normalize\n");
            return 1;
        }
        std::printf("%-8s %12s %12s\n", "scheme", "norm. time",
                    "traffic");
        for (std::size_t i = 0; i < results.size(); ++i)
            std::printf(
                "%-8s %12.3f %12.3f\n",
                protection::schemeName(schemes[i]),
                static_cast<double>(results[i].totalCycles) /
                    static_cast<double>(np->totalCycles),
                static_cast<double>(results[i].traffic.totalBytes()) /
                    static_cast<double>(np->traffic.totalBytes()));
        return 0;
    }
    std::fprintf(stderr, "trace_replay: unknown command '%s'\n",
                 argv[1]);
    return usage(stderr);
}

} // namespace

int
main(int argc, char **argv)
{
    // Trace I/O failures throw (see sim/trace_io.h); for a one-shot
    // CLI the right recovery is a clean message and a non-zero exit.
    try {
        return run(argc, argv);
    } catch (const sim::TraceIoError &e) {
        std::fprintf(stderr, "trace_replay: %s\n", e.what());
        return 1;
    }
}
