/**
 * @file
 * Trace replay: dump any kernel's trace to a portable text file and
 * re-simulate it later — the workflow for archiving experiment
 * artifacts or inspecting a schedule with standard tools.
 *
 * Usage:
 *   trace_replay dump <workload> <file>  # any registry name; bare DNN
 *                                        # model names still work
 *   trace_replay run  <file> [edge|cloud]
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "core/invariant_checker.h"
#include "sim/experiment.h"
#include "sim/trace_io.h"
#include "sim/workload_registry.h"

namespace {

int
usage(std::FILE *out)
{
    std::fprintf(
        out,
        "usage:\n"
        "  trace_replay dump <workload> <file>\n"
        "  trace_replay run <file> [edge|cloud]\n"
        "\n"
        "<workload> is a registry name (see `mgx_run --list`), e.g.\n"
        "dnn/ResNet?task=training or graph/pokec/pagerank; a bare DNN\n"
        "model name like AlexNet is shorthand for dnn/<model>.\n");
    return out == stdout ? 0 : 2;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace mgx;
    if (argc > 1 && (std::strcmp(argv[1], "--help") == 0 ||
                     std::strcmp(argv[1], "-h") == 0))
        return usage(stdout);
    if (argc < 3)
        return usage(stderr);

    if (std::strcmp(argv[1], "dump") == 0) {
        if (argc != 4)
            return usage(stderr);
        std::string name = argv[2];
        if (name.find('/') == std::string::npos)
            name = "dnn/" + name; // legacy bare-model shorthand
        core::Trace trace = sim::makeKernel(name)->generate();
        std::ofstream out(argv[3]);
        if (!out) {
            std::fprintf(stderr,
                         "trace_replay: cannot open '%s' for writing\n",
                         argv[3]);
            return 1;
        }
        sim::writeTrace(trace, out);
        std::printf("wrote %zu phases (%.1f MB of traffic) to %s\n",
                    trace.size(),
                    static_cast<double>(core::traceDataBytes(trace)) /
                        1e6,
                    argv[3]);
        return 0;
    }

    if (std::strcmp(argv[1], "run") == 0) {
        if (argc > 4)
            return usage(stderr);
        std::ifstream in(argv[2]);
        if (!in) {
            std::fprintf(stderr, "trace_replay: cannot open '%s'\n",
                         argv[2]);
            return 1;
        }
        core::Trace trace = sim::readTrace(in);
        if (trace.empty() || core::traceDataBytes(trace) == 0) {
            std::fprintf(stderr,
                         "trace_replay: '%s' contains no accesses — "
                         "nothing to simulate\n",
                         argv[2]);
            return 1;
        }
        std::printf("loaded %zu phases, %.1f MB of traffic\n",
                    trace.size(),
                    static_cast<double>(core::traceDataBytes(trace)) /
                        1e6);

        core::InvariantChecker checker;
        checker.observeTrace(trace);
        std::printf("VN invariant: %s\n",
                    checker.report().ok ? "OK" : "VIOLATED");

        const bool edge = argc > 3 && std::strcmp(argv[3], "edge") == 0;
        if (argc > 3 && !edge && std::strcmp(argv[3], "cloud") != 0) {
            std::fprintf(stderr,
                         "trace_replay: platform must be edge or "
                         "cloud, not '%s'\n",
                         argv[3]);
            return usage(stderr);
        }
        const sim::Platform platform =
            edge ? sim::edgePlatform() : sim::cloudPlatform();
        sim::ResultSet rs = sim::Experiment()
                                .trace(argv[2], trace)
                                .platform(platform)
                                .schemes(sim::allSchemes())
                                .run();
        std::printf("%-8s %12s %12s\n", "scheme", "norm. time",
                    "traffic");
        for (auto s : sim::allSchemes())
            std::printf(
                "%-8s %12.3f %12.3f\n", protection::schemeName(s),
                rs.normalizedTime(argv[2], platform.name, s).value(),
                rs.trafficIncrease(argv[2], platform.name, s).value());
        return 0;
    }
    std::fprintf(stderr, "trace_replay: unknown command '%s'\n",
                 argv[1]);
    return usage(stderr);
}
