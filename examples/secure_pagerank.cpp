/**
 * @file
 * Secure graph processing (§V): PageRank on the GraphBLAS accelerator.
 *
 * Part 1 (functional): computes real PageRank on a small synthetic
 * power-law graph where the rank vectors live in encrypted,
 * integrity-protected memory. The kernel's only VN state is the Iter
 * counter: reads use (Iter-1), writes use Iter, exactly as §V-B.
 *
 * Part 2 (timing): simulates PageRank over the scaled 'pokec' graph
 * under each scheme and prints the overhead figures of Fig. 14.
 */

#include <cstdio>
#include <cstring>
#include <vector>

#include "graph/csr.h"
#include "graph/graph_gen.h"
#include "graph/graph_kernel.h"
#include "graph/pagerank.h"
#include "protection/secure_memory.h"
#include "sim/runner.h"

namespace {

using namespace mgx;

/** PageRank where every vector access goes through SecureMemory. */
std::vector<double>
securePagerank(const graph::CsrGraph &g, u32 iters,
               protection::SecureMemory &mem)
{
    const u64 v = g.numVertices;
    const u64 vec_bytes = v * sizeof(double);
    const u64 gran = mem.macGranularity();
    const u64 padded = (vec_bytes + gran - 1) / gran * gran;
    const Addr buf[2] = {0, padded}; // double-buffered rank vectors

    // Iteration counter: the kernel's entire VN state (§V-B).
    u64 iter = 0;

    // Initial ranks written with VN = Iter (0 -> buffer 0)... the
    // first write uses VN 1 so VN 0 is never consumed from memory.
    std::vector<double> rank(v, 1.0 / static_cast<double>(v));
    std::vector<u8> bytes(padded, 0);
    std::memcpy(bytes.data(), rank.data(), vec_bytes);
    iter = 1;
    mem.write(buf[1], bytes, iter);

    std::vector<double> next(v);
    for (u32 it = 0; it < iters; ++it) {
        // Read the current rank vector with VN = Iter.
        std::vector<u8> in(padded);
        if (!mem.read(buf[iter % 2], in, iter))
            fatal("rank vector failed integrity verification");
        std::memcpy(rank.data(), in.data(), vec_bytes);

        // One SpMV on the arithmetic semiring.
        std::fill(next.begin(), next.end(), 0.0);
        for (u64 u = 0; u < v; ++u) {
            const u64 deg = g.degree(u);
            if (deg == 0)
                continue;
            const double share = rank[u] / static_cast<double>(deg);
            for (u64 e = g.rowPtr[u]; e < g.rowPtr[u + 1]; ++e)
                next[g.colIdx[e]] += share;
        }
        for (u64 i = 0; i < v; ++i)
            next[i] = 0.15 / static_cast<double>(v) + 0.85 * next[i];

        // Write the updated ranks with VN = Iter + 1.
        ++iter;
        std::memcpy(bytes.data(), next.data(), vec_bytes);
        mem.write(buf[iter % 2], bytes, iter);
    }

    std::vector<u8> out(padded);
    if (!mem.read(buf[iter % 2], out, iter))
        fatal("final rank vector failed verification");
    std::memcpy(rank.data(), out.data(), vec_bytes);
    return rank;
}

} // namespace

int
main()
{
    using protection::Scheme;

    // -- Part 1: functional secure PageRank ---------------------------
    graph::CsrGraph g = graph::makeSmallGraph(2000, 20000, 99);
    protection::SecureMemoryConfig mcfg;
    mcfg.encKey[1] = 0xaa;
    mcfg.macKey[1] = 0xbb;
    protection::SecureMemory mem(mcfg);

    auto secure = securePagerank(g, 10, mem);
    auto reference = graph::pagerank(g, 10);
    double max_err = 0;
    for (u64 i = 0; i < g.numVertices; ++i)
        max_err = std::max(max_err,
                           std::abs(secure[i] - reference[i]));
    std::printf("functional secure PageRank over %llu vertices / "
                "%llu edges: max |err| vs plaintext = %.2e\n",
                static_cast<unsigned long long>(g.numVertices),
                static_cast<unsigned long long>(g.numEdges()), max_err);

    // -- Part 2: timing on the scaled pokec benchmark -----------------
    graph::GraphSpec spec = graph::graphByName("pokec");
    std::printf("\ntiming: PageRank on %s (%llu vertices, %llu edges, "
                "1/%u scale)\n",
                spec.name.c_str(),
                static_cast<unsigned long long>(spec.scaledVertices()),
                static_cast<unsigned long long>(spec.scaledEdges()),
                spec.scale);
    graph::GraphTiles tiles =
        graph::buildTiles(spec, 512 << 10, 512 << 10, 17);
    graph::GraphKernel kernel(tiles, graph::GraphAlgorithm::PageRank,
                              3);
    protection::ProtectionConfig base;
    auto cmp = sim::compareSchemes(kernel.generate(),
                                   sim::graphPlatform(), base,
                                   sim::allSchemes());
    std::printf("%-8s %12s %12s\n", "scheme", "norm. time", "traffic");
    for (Scheme s : sim::allSchemes())
        std::printf("%-8s %12.3f %12.3f\n", protection::schemeName(s),
                    cmp.normalizedTime(s), cmp.trafficIncrease(s));
    std::printf("\nkernel on-chip VN state: %llu bytes (one Iter "
                "counter plus the adjacency VN)\n",
                static_cast<unsigned long long>(
                    kernel.state().onChipBytes()));
    return 0;
}
