/**
 * @file
 * mgx_serve: the experiment service daemon. Listens on a unix socket
 * (or TCP loopback), serves /run, /stats and /shutdown, and shares
 * the trace cache with every other mgx process pointed at the same
 * directory. See src/serve/server.h for semantics.
 *
 * Usage:
 *   mgx_serve --socket /tmp/mgx.sock --trace-cache ~/.cache/mgx
 *   mgx_serve --port 0 --workers 4          # prints the bound port
 */

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include <poll.h>

#include "serve/server.h"

namespace {

volatile std::sig_atomic_t g_signaled = 0;

void
onSignal(int)
{
    g_signaled = 1;
}

int
usage(std::FILE *out)
{
    std::fprintf(
        out,
        "usage: mgx_serve [options]\n"
        "  --socket PATH          listen on a unix socket (default:\n"
        "                         TCP loopback)\n"
        "  --port N               TCP port (0 = kernel-assigned; the\n"
        "                         bound port is printed on startup)\n"
        "  --workers N            request handler threads (default 2)\n"
        "  --queue N              admission queue capacity before\n"
        "                         connections get 429 (default 16)\n"
        "  --trace-cache DIR      share generated traces on disk with\n"
        "                         other daemons and mgx_run\n"
        "  --trace-cache-max-bytes N\n"
        "                         LRU size cap for the trace cache\n"
        "  --deadline-ms N        wall-clock budget per /run request;\n"
        "                         503 on expiry (default 0 = none)\n"
        "  --result-memo N        finished cells memoized in memory\n"
        "                         (LRU; warm repeats skip the engine;\n"
        "                         default 64, 0 disables)\n"
        "  --max-request-threads N\n"
        "                         thread cap per cell for requests\n"
        "                         asking pipeline=1/replayThreads=N\n"
        "                         (default 1 = always serial)\n"
        "  --no-keep-alive        one request per connection even when\n"
        "                         the peer asks for keep-alive\n"
        "  --keep-alive-idle-ms N close a kept-alive connection after\n"
        "                         N ms without a next request\n"
        "                         (default 2000)\n"
        "  --quiet                no startup/shutdown chatter\n"
        "  --help                 this message\n");
    return out == stdout ? 0 : 2;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace mgx;

    serve::ServerOptions opts;
    bool quiet = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "mgx_serve: %s needs a value\n",
                             arg.c_str());
                std::exit(usage(stderr));
            }
            return argv[++i];
        };
        if (arg == "--help" || arg == "-h")
            return usage(stdout);
        if (arg == "--socket") {
            opts.listen.unixPath = value();
        } else if (arg == "--port") {
            opts.listen.port =
                static_cast<u16>(std::strtoul(value(), nullptr, 10));
        } else if (arg == "--workers") {
            opts.workers =
                static_cast<u32>(std::strtoul(value(), nullptr, 10));
        } else if (arg == "--queue") {
            opts.admissionCapacity = std::strtoul(value(), nullptr, 10);
        } else if (arg == "--trace-cache") {
            opts.traceCacheDir = value();
        } else if (arg == "--trace-cache-max-bytes") {
            opts.traceCacheMaxBytes =
                std::strtoull(value(), nullptr, 10);
        } else if (arg == "--deadline-ms") {
            opts.requestDeadlineMs =
                static_cast<int>(std::strtol(value(), nullptr, 10));
        } else if (arg == "--result-memo") {
            opts.resultMemoCapacity =
                std::strtoul(value(), nullptr, 10);
        } else if (arg == "--max-request-threads") {
            opts.maxRequestThreads =
                static_cast<u32>(std::strtoul(value(), nullptr, 10));
        } else if (arg == "--no-keep-alive") {
            opts.keepAlive = false;
        } else if (arg == "--keep-alive-idle-ms") {
            opts.keepAliveIdleMs =
                static_cast<int>(std::strtol(value(), nullptr, 10));
        } else if (arg == "--quiet" || arg == "-q") {
            quiet = true;
        } else {
            std::fprintf(stderr, "mgx_serve: unknown option '%s'\n",
                         arg.c_str());
            return usage(stderr);
        }
    }

    serve::Server server(opts);
    server.start();

    std::signal(SIGINT, onSignal);
    std::signal(SIGTERM, onSignal);

    if (!quiet)
        std::printf("mgx_serve: listening on %s\n",
                    server.addressDescription().c_str());
    std::fflush(stdout);

    // Sleep until a signal or a /shutdown request flips the flag.
    while (!g_signaled && !server.stopping())
        ::poll(nullptr, 0, 100);

    server.shutdown();

    if (!quiet) {
        const auto s = server.metricsSnapshot();
        std::printf("mgx_serve: drained; served %llu, rejected %llu, "
                    "cells %llu, collapsed %llu\n",
                    static_cast<unsigned long long>(s.served),
                    static_cast<unsigned long long>(s.rejected),
                    static_cast<unsigned long long>(s.cellsRun),
                    static_cast<unsigned long long>(s.dedupCollapsed));
    }
    return 0;
}
