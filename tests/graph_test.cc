/**
 * @file
 * Graph substrate tests: CSR construction and serialization, the
 * functional GraphBLAS algorithms, the synthetic tile generator, and
 * the graph kernel's one-counter VN scheme (§V-B).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "core/invariant_checker.h"
#include "graph/csr.h"
#include "graph/graph_gen.h"
#include "graph/graph_kernel.h"
#include "graph/pagerank.h"

namespace mgx::graph {
namespace {

// -- CSR ----------------------------------------------------------------------

TEST(Csr, SmallGraphWellFormed)
{
    CsrGraph g = makeSmallGraph(100, 500, 1);
    EXPECT_EQ(g.numVertices, 100u);
    EXPECT_EQ(g.rowPtr.size(), 101u);
    EXPECT_EQ(g.rowPtr.back(), g.numEdges());
    for (u32 c : g.colIdx)
        EXPECT_LT(c, 100u);
    // Roughly the requested edge count (degree rounding adds slack).
    EXPECT_GT(g.numEdges(), 350u);
    EXPECT_LT(g.numEdges(), 700u);
}

TEST(Csr, GenerationIsDeterministic)
{
    CsrGraph a = makeSmallGraph(50, 200, 42);
    CsrGraph b = makeSmallGraph(50, 200, 42);
    EXPECT_EQ(a.rowPtr, b.rowPtr);
    EXPECT_EQ(a.colIdx, b.colIdx);
}

TEST(Csr, SerializeRoundTrip)
{
    CsrGraph g = makeSmallGraph(64, 300, 7);
    CsrGraph back = deserializeCsr(serializeCsr(g));
    EXPECT_EQ(back.numVertices, g.numVertices);
    EXPECT_EQ(back.rowPtr, g.rowPtr);
    EXPECT_EQ(back.colIdx, g.colIdx);
}

// -- functional algorithms -------------------------------------------------------

TEST(PageRank, SumsToOne)
{
    CsrGraph g = makeSmallGraph(200, 1000, 3);
    auto rank = pagerank(g, 20);
    const double sum =
        std::accumulate(rank.begin(), rank.end(), 0.0);
    EXPECT_NEAR(sum, 1.0, 1e-6);
}

TEST(PageRank, HighInDegreeRanksHigher)
{
    // A star graph: every vertex points at vertex 0.
    CsrGraph g;
    g.numVertices = 10;
    g.rowPtr = {0, 0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
    g.rowPtr.resize(11);
    for (u64 v = 0; v <= 10; ++v)
        g.rowPtr[v] = v == 0 ? 0 : v - 1;
    g.rowPtr[10] = 9;
    g.colIdx.assign(9, 0);
    auto rank = pagerank(g, 30);
    for (u64 v = 1; v < 10; ++v)
        EXPECT_GT(rank[0], rank[v]);
}

TEST(Bfs, LevelsAreShortestPaths)
{
    // A path graph 0 -> 1 -> 2 -> 3.
    CsrGraph g;
    g.numVertices = 4;
    g.rowPtr = {0, 1, 2, 3, 3};
    g.colIdx = {1, 2, 3};
    auto level = bfs(g, 0);
    EXPECT_EQ(level[0], 0u);
    EXPECT_EQ(level[1], 1u);
    EXPECT_EQ(level[2], 2u);
    EXPECT_EQ(level[3], 3u);
}

TEST(Bfs, UnreachableStaysMax)
{
    CsrGraph g;
    g.numVertices = 3;
    g.rowPtr = {0, 1, 1, 1};
    g.colIdx = {1};
    auto level = bfs(g, 0);
    EXPECT_EQ(level[2], 0xffffffffu);
}

TEST(Sssp, MatchesBfsOnUnitWeights)
{
    CsrGraph g = makeSmallGraph(64, 256, 5);
    auto level = bfs(g, 0);
    auto dist = sssp(g, 0);
    for (u64 v = 0; v < 64; ++v) {
        if (level[v] == 0xffffffffu) {
            EXPECT_TRUE(std::isinf(dist[v]));
        } else {
            EXPECT_DOUBLE_EQ(dist[v], static_cast<double>(level[v]));
        }
    }
}

// -- synthetic tiles ------------------------------------------------------------

TEST(GraphGen, PaperGraphListMatchesBenchmarks)
{
    auto graphs = paperGraphs();
    ASSERT_EQ(graphs.size(), 6u);
    EXPECT_EQ(graphs[0].name, "google-plus");
    EXPECT_EQ(graphs[5].name, "ogbn-products");
    // Published sizes (unscaled).
    EXPECT_EQ(graphs[4].vertices, 576289u);  // ogbl-ppa: 576K
    EXPECT_EQ(graphs[5].edges, 123718280u);  // ogbn-products: 124M
}

TEST(GraphGen, TileEdgeCountsSumToTotal)
{
    GraphSpec spec = graphByName("google-plus");
    GraphTiles tiles = buildTiles(spec, 8192, 8192, 1);
    u64 sum = 0;
    for (const auto &row : tiles.tileEdges)
        sum += std::accumulate(row.begin(), row.end(), u64{0});
    EXPECT_EQ(sum, tiles.edges);
    // Within 10% of the scaled target.
    const double target =
        static_cast<double>(spec.scaledEdges());
    EXPECT_NEAR(static_cast<double>(tiles.edges), target,
                0.1 * target);
}

TEST(GraphGen, TilingDimensions)
{
    GraphSpec spec{"tiny", 10000, 50000, 1, 1.8};
    GraphTiles tiles = buildTiles(spec, 4000, 2500, 1);
    EXPECT_EQ(tiles.dstBlocks, 3u); // ceil(10000/4000)
    EXPECT_EQ(tiles.srcTiles, 4u);  // ceil(10000/2500)
}

// -- graph kernel ----------------------------------------------------------------

GraphTiles
tinyTiles()
{
    GraphSpec spec{"tiny", 20000, 100000, 1, 1.8};
    return buildTiles(spec, 8192, 8192, 1);
}

TEST(GraphKernel, IterCounterIsTheWholeState)
{
    GraphKernel kernel(tinyTiles(), GraphAlgorithm::PageRank, 5);
    kernel.generate();
    EXPECT_EQ(kernel.iterCounter(), 5u);
    // One Iter counter + one adjacency VN: 16 bytes of on-chip state
    // (the paper quotes 64 bits for Iter alone).
    EXPECT_LE(kernel.state().onChipBytes(), 16u);
}

TEST(GraphKernel, VnInvariantsAcrossIterations)
{
    GraphKernel kernel(tinyTiles(), GraphAlgorithm::PageRank, 6);
    core::InvariantChecker checker;
    checker.observeTrace(kernel.generate());
    auto report = checker.report();
    EXPECT_TRUE(report.ok) << (report.violations.empty()
                                   ? "?"
                                   : report.violations.front());
}

TEST(GraphKernel, RankVectorDoubleBuffers)
{
    GraphKernel kernel(tinyTiles(), GraphAlgorithm::PageRank, 2);
    auto trace = kernel.generate();
    // Writes of iteration 1 and 2 must target different buffers.
    Addr it1_write = 0, it2_write = 0;
    for (const auto &phase : trace) {
        for (const auto &acc : phase.accesses) {
            if (acc.type != AccessType::Write)
                continue;
            if (phase.name.rfind("it1", 0) == 0)
                it1_write = acc.addr;
            if (phase.name.rfind("it2", 0) == 0)
                it2_write = acc.addr;
        }
    }
    EXPECT_NE(it1_write, 0u);
    EXPECT_NE(it2_write, 0u);
    EXPECT_NE(it1_write, it2_write);
}

TEST(GraphKernel, AdjacencyIsReadOnlyConstantVn)
{
    GraphKernel kernel(tinyTiles(), GraphAlgorithm::BFS, 3);
    auto trace = kernel.generate();
    Vn adj_vn = 0;
    for (const auto &phase : trace) {
        for (const auto &acc : phase.accesses) {
            if (acc.cls != DataClass::GraphMatrix)
                continue;
            EXPECT_EQ(acc.type, AccessType::Read);
            if (adj_vn == 0)
                adj_vn = acc.vn;
            EXPECT_EQ(acc.vn, adj_vn);
        }
    }
    EXPECT_NE(adj_vn, 0u);
}

TEST(GraphKernel, SpMSpVUsesFineGrainedGathers)
{
    GraphKernel spmv(tinyTiles(), GraphAlgorithm::PageRank, 1);
    GraphKernel spmspv(tinyTiles(), GraphAlgorithm::PageRank, 1, {},
                       VectorAccess::Random);
    u64 fine_spmv = 0, fine_spmspv = 0;
    for (const auto &phase : spmv.generate())
        for (const auto &acc : phase.accesses)
            fine_spmv += acc.macGranularity == 64;
    for (const auto &phase : spmspv.generate())
        for (const auto &acc : phase.accesses)
            fine_spmspv += acc.macGranularity == 64;
    EXPECT_EQ(fine_spmv, 0u);
    EXPECT_GT(fine_spmspv, 0u);
}

TEST(GraphKernel, TrafficScalesWithEdges)
{
    GraphSpec small{"s", 20000, 50000, 1, 1.8};
    GraphSpec big{"b", 20000, 500000, 1, 1.8};
    GraphKernel ks(buildTiles(small, 8192, 8192, 1),
                   GraphAlgorithm::PageRank, 1);
    GraphKernel kb(buildTiles(big, 8192, 8192, 1),
                   GraphAlgorithm::PageRank, 1);
    EXPECT_GT(core::traceDataBytes(kb.generate()),
              3 * core::traceDataBytes(ks.generate()));
}

} // namespace
} // namespace mgx::graph
