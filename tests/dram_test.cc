/**
 * @file
 * DRAM model tests: address-map properties, row-buffer behaviour,
 * bank-level parallelism, bus saturation, refresh, and channel
 * scaling.
 */

#include <gtest/gtest.h>

#include <set>

#include "dram/dram_system.h"

namespace mgx::dram {
namespace {

TEST(AddressMap, ConsecutiveBlocksInterleaveChannels)
{
    Ddr4Config cfg = ddr4_2400(4);
    AddressMap map(cfg);
    std::set<u32> channels;
    for (Addr a = 0; a < 4 * 64; a += 64)
        channels.insert(map.decode(a).channel);
    EXPECT_EQ(channels.size(), 4u);
}

TEST(AddressMap, SameRowForSequentialAccesses)
{
    Ddr4Config cfg = ddr4_2400(1);
    AddressMap map(cfg);
    Coord first = map.decode(0);
    // A full row is rowBytes; everything below maps to the same row.
    Coord last = map.decode(cfg.rowBytes - 64);
    EXPECT_EQ(first.row, last.row);
    EXPECT_EQ(first.bank, last.bank);
    EXPECT_NE(first.column, last.column);
}

TEST(AddressMap, DistinctCoordsForDistinctBlocks)
{
    Ddr4Config cfg = ddr4_2400(2);
    AddressMap map(cfg);
    std::set<std::tuple<u32, u32, u32, u32, u32>> seen;
    for (Addr a = 0; a < 1 << 20; a += 64) {
        Coord c = map.decode(a);
        auto key = std::make_tuple(c.channel, c.rank, c.bank, c.row,
                                   c.column);
        EXPECT_TRUE(seen.insert(key).second)
            << "alias at address " << a;
    }
}

TEST(AddressMap, LineWalkerMatchesDecodePerLine)
{
    // The incremental carry-chain decode must agree with the full
    // decode for every consecutive block — across channel, column,
    // bank, rank and row carries.
    for (u32 channels : {1u, 4u}) {
        Ddr4Config cfg = ddr4_2400(channels);
        cfg.ranksPerChannel = 2;
        AddressMap map(cfg);
        // Enough blocks to cross several rows on every bank.
        const u64 blocks =
            static_cast<u64>(cfg.rowBytes / 64) * cfg.banksPerRank *
                cfg.ranksPerChannel * channels * 3 +
            17;
        const Addr start = 0x12340; // unaligned start, mid-row
        AddressMap::LineWalker w = map.walkerAt(start);
        for (u64 i = 0; i < blocks; ++i, w.next()) {
            const Coord ref = map.decode(start + i * 64);
            const Coord &got = w.coord();
            ASSERT_EQ(got.channel, ref.channel) << "block " << i;
            ASSERT_EQ(got.column, ref.column) << "block " << i;
            ASSERT_EQ(got.bank, ref.bank) << "block " << i;
            ASSERT_EQ(got.rank, ref.rank) << "block " << i;
            ASSERT_EQ(got.row, ref.row) << "block " << i;
        }
    }
}

TEST(DramSystem, AccessRangeMatchesPerLineAccesses)
{
    // The walker-based range path must time and count exactly like
    // issuing each 64 B request through the decode-per-line path.
    Ddr4Config cfg = ddr4_2400(2);
    DramSystem range_sys(cfg);
    DramSystem line_sys(cfg);
    const Addr base = 0x7ff40; // straddles rows, unaligned
    const u64 bytes = 3 * cfg.rowBytes + 100;

    const Cycles range_done = range_sys.accessRange(base, bytes, false, 5);
    Cycles line_done = 5;
    const Addr first = base & ~Addr{63};
    const Addr last = (base + bytes - 1) & ~Addr{63};
    for (Addr a = first; a <= last; a += 64)
        line_done = std::max(line_done, line_sys.access({a, false, 5}));

    EXPECT_EQ(range_done, line_done);
    EXPECT_EQ(range_sys.accessCount(), line_sys.accessCount());
    EXPECT_EQ(range_sys.stats().get("row_hits"),
              line_sys.stats().get("row_hits"));
    EXPECT_EQ(range_sys.stats().get("row_misses"),
              line_sys.stats().get("row_misses"));
}

TEST(DramChannel, RowHitIsFasterThanMiss)
{
    Ddr4Config cfg = ddr4_2400(1);
    DramSystem sys(cfg);
    // First access opens the row (miss); the second hits it.
    Cycles t1 = sys.access({0, false, 0});
    Cycles t2 = sys.access({64, false, t1});
    const Cycles miss_latency = t1;
    const Cycles hit_latency = t2 - t1;
    EXPECT_LT(hit_latency, miss_latency);
    EXPECT_EQ(sys.stats().get("row_hits"), 1u);
}

TEST(DramChannel, RowConflictCostsPrechargeActivate)
{
    Ddr4Config cfg = ddr4_2400(1);
    DramSystem sys(cfg);
    AddressMap map(cfg);
    // Two rows in the same bank: row stride = one full bank sweep.
    Coord a = map.decode(0);
    Addr conflict = 0;
    for (Addr cand = 64; cand < (1ull << 30); cand += 64) {
        Coord c = map.decode(cand);
        if (c.channel == a.channel && c.bank == a.bank &&
            c.rank == a.rank && c.row != a.row) {
            conflict = cand;
            break;
        }
    }
    ASSERT_NE(conflict, 0u);
    Cycles t1 = sys.access({0, false, 0});
    Cycles t2 = sys.access({conflict, false, t1});
    EXPECT_EQ(sys.stats().get("row_conflicts"), 1u);
    // Conflict pays tRAS residue + tRP + tRCD + CL; far more than a hit.
    EXPECT_GT(t2 - t1, static_cast<Cycles>(cfg.tRP + cfg.tRCD));
}

TEST(DramChannel, StreamSaturatesBusBandwidth)
{
    Ddr4Config cfg = ddr4_2400(1);
    DramSystem sys(cfg);
    const u64 blocks = 4096;
    Cycles done = sys.accessRange(0, blocks * 64, false, 0);
    // Ideal: 4 cycles per 64 B burst. Allow overheads (activates,
    // refresh) but require >70% bus utilization for a pure stream.
    const double ideal = static_cast<double>(blocks) *
                         cfg.burstCycles();
    EXPECT_LT(static_cast<double>(done), ideal / 0.7);
}

TEST(DramChannel, MoreChannelsMoreBandwidth)
{
    const u64 bytes = 1 << 20;
    DramSystem one(ddr4_2400(1));
    DramSystem four(ddr4_2400(4));
    Cycles t1 = one.accessRange(0, bytes, false, 0);
    Cycles t4 = four.accessRange(0, bytes, false, 0);
    EXPECT_GT(t1, 3 * t4); // ~4x, allow slack
}

TEST(DramChannel, RefreshStallsAppear)
{
    Ddr4Config cfg = ddr4_2400(1);
    DramSystem sys(cfg);
    // Stream long enough to cross several tREFI windows.
    sys.accessRange(0, 8ull << 20, false, 0);
    EXPECT_GT(sys.stats().get("refresh_stall_cycles"), 0u);
}

TEST(DramChannel, WritesTracked)
{
    DramSystem sys(ddr4_2400(1));
    sys.accessRange(0, 1024, true, 0);
    EXPECT_EQ(sys.stats().get("writes"), 16u);
    EXPECT_EQ(sys.stats().get("reads"), 0u);
}

TEST(DramSystem, AccessRangeCountsBlocks)
{
    DramSystem sys(ddr4_2400(2));
    sys.accessRange(100, 1, false, 0); // 1 byte -> 1 block
    EXPECT_EQ(sys.accessCount(), 1u);
    sys.accessRange(0, 64 * 7, false, 0);
    EXPECT_EQ(sys.accessCount(), 8u);
    // Unaligned range spanning a block boundary.
    sys.accessRange(60, 8, false, 0);
    EXPECT_EQ(sys.accessCount(), 10u);
}

TEST(DramSystem, CompletionMonotoneWithArrival)
{
    DramSystem sys(ddr4_2400(1));
    Cycles t1 = sys.access({0, false, 1000});
    EXPECT_GE(t1, 1000u);
}

/** Channel-count sweep: utilization must stay high for streams. */
class ChannelSweepTest : public ::testing::TestWithParam<u32>
{
};

TEST_P(ChannelSweepTest, StreamingEfficiency)
{
    const u32 channels = GetParam();
    Ddr4Config cfg = ddr4_2400(channels);
    DramSystem sys(cfg);
    const u64 bytes = 4ull << 20;
    Cycles done = sys.accessRange(0, bytes, false, 0);
    const double ideal_cycles =
        static_cast<double>(bytes) / cfg.peakBytesPerCycle();
    EXPECT_LT(static_cast<double>(done), ideal_cycles / 0.65)
        << "channels=" << channels;
}

INSTANTIATE_TEST_SUITE_P(Channels, ChannelSweepTest,
                         ::testing::Values(1u, 2u, 4u, 8u));

} // namespace
} // namespace mgx::dram
