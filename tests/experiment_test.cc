/**
 * @file
 * Experiment-API tests: registry round trip (every listed workload
 * constructs and generates a non-empty trace), experiment /
 * compareSchemes equivalence (bitwise-identical results, serial and
 * parallel), explicit missing-baseline reporting, and the JSON golden.
 */

#include <gtest/gtest.h>

#include "sim/experiment.h"
#include "sim/report.h"
#include "sim/workload_registry.h"

namespace mgx::sim {
namespace {

using protection::ProtectionConfig;
using protection::Scheme;

// ---------------------------------------------------------------------
// Workload registry
// ---------------------------------------------------------------------

TEST(Registry, EveryListedWorkloadGeneratesATrace)
{
    const auto names = listWorkloads();
    ASSERT_GE(names.size(), 40u); // 5 domains, all their workloads
    for (const auto &name : names) {
        auto kernel = makeKernel(name);
        ASSERT_NE(kernel, nullptr) << name;
        core::Trace trace = kernel->generate();
        EXPECT_FALSE(trace.empty()) << name;
        EXPECT_GT(core::traceDataBytes(trace), 0u) << name;
    }
}

TEST(Registry, ListedNamesAreUnique)
{
    auto names = listWorkloads();
    auto unique = names;
    std::sort(unique.begin(), unique.end());
    unique.erase(std::unique(unique.begin(), unique.end()),
                 unique.end());
    EXPECT_EQ(unique.size(), names.size());
}

TEST(Registry, AliasesAndParamsResolve)
{
    // The ISSUE's canonical example plus a parameterized matmul.
    EXPECT_NE(makeKernel("dnn/resnet50?task=training"), nullptr);
    auto mm = makeKernel("core/matmul?m=64&n=64&k=64&ktiles=1");
    core::Trace trace = mm->generate();
    EXPECT_FALSE(trace.empty());
}

TEST(Registry, PlatformSelectsDnnAccel)
{
    // The same model tiles differently for the Edge accelerator's
    // smaller SRAM, so the cache keys — and traces — must differ.
    EXPECT_NE(traceCacheKey("dnn/ResNet", cloudPlatform()),
              traceCacheKey("dnn/ResNet", edgePlatform()));
    // Pinning accel= makes the key platform-independent again.
    EXPECT_EQ(traceCacheKey("dnn/ResNet?accel=cloud", cloudPlatform()),
              traceCacheKey("dnn/ResNet?accel=cloud", edgePlatform()));
    // Non-DNN workloads never depend on the platform.
    EXPECT_EQ(traceCacheKey("genome/chr1PacBio", cloudPlatform()),
              traceCacheKey("genome/chr1PacBio", edgePlatform()));
}

TEST(RegistryDeathTest, UnknownNamesAreFatal)
{
    EXPECT_DEATH(makeKernel("dnn/NoSuchNet"), "unknown DNN model");
    EXPECT_DEATH(makeKernel("nosuchdomain/x"), "unknown domain");
    EXPECT_DEATH(makeKernel("core/matmul?typo=1"),
                 "unknown parameter");
}

TEST(Registry, DefaultPlatformsMatchThePaper)
{
    EXPECT_EQ(defaultPlatform("dnn/ResNet").name, "Cloud");
    EXPECT_EQ(defaultPlatform("graph/pokec/bfs").name, "Graph");
    EXPECT_EQ(defaultPlatform("genome/chr1PacBio").name, "Genome");
    EXPECT_EQ(defaultPlatform("video/h264").name, "Genome");
}

// ---------------------------------------------------------------------
// Experiment vs compareSchemes equivalence
// ---------------------------------------------------------------------

TEST(Experiment, MatchesCompareSchemesBitwise)
{
    const std::string w = "core/matmul?m=256&n=256&k=256";
    core::Trace trace = makeKernel(w)->generate();
    ProtectionConfig base;
    SchemeComparison legacy =
        compareSchemes(trace, edgePlatform(), base, allSchemes());

    for (u32 threads : {1u, 4u}) {
        ResultSet rs = Experiment()
                           .workload(w)
                           .platform(edgePlatform())
                           .schemes(allSchemes())
                           .config(base)
                           .threads(threads)
                           .run();
        ASSERT_EQ(rs.records().size(), allSchemes().size());
        for (Scheme s : allSchemes()) {
            const RunResult *r = rs.find(w, "Edge", s);
            ASSERT_NE(r, nullptr);
            EXPECT_EQ(r->totalCycles, legacy.results[s].totalCycles)
                << "threads=" << threads;
            EXPECT_EQ(r->traffic.totalBytes(),
                      legacy.results[s].traffic.totalBytes())
                << "threads=" << threads;
            EXPECT_EQ(r->dramAccesses, legacy.results[s].dramAccesses)
                << "threads=" << threads;
        }
    }
}

TEST(Experiment, DeterministicAcrossThreadsAndPipeline)
{
    // The same grid under every --threads x --pipeline combination
    // must be bitwise-identical on every model output: the pool only
    // schedules independent cells, and the SPSC ring only changes
    // which thread pulls the (identical, stream-ordered) phases.
    const std::vector<std::string> ws = {
        "core/matmul?m=128&n=128&k=128", "video/h264?frames=4"};
    auto grid = [&](u32 threads, bool pipeline) {
        return Experiment()
            .workloads(ws)
            .platform(edgePlatform())
            .schemes({Scheme::NP, Scheme::BP})
            .threads(threads)
            .pipelined(pipeline)
            .run();
    };
    const ResultSet base = grid(1, false);
    ASSERT_EQ(base.records().size(), 4u);
    for (u32 threads : {1u, 2u, 4u}) {
        for (bool pipeline : {false, true}) {
            const ResultSet rs = grid(threads, pipeline);
            ASSERT_EQ(rs.records().size(), base.records().size());
            for (std::size_t i = 0; i < rs.records().size(); ++i) {
                const RunResult &a = base.records()[i].result;
                const RunResult &b = rs.records()[i].result;
                const std::string label =
                    rs.records()[i].key.workload + " threads=" +
                    std::to_string(threads) +
                    (pipeline ? " pipelined" : " serial");
                EXPECT_EQ(a.totalCycles, b.totalCycles) << label;
                EXPECT_EQ(a.traffic.totalBytes(),
                          b.traffic.totalBytes())
                    << label;
                EXPECT_EQ(a.dramAccesses, b.dramAccesses) << label;
                EXPECT_EQ(a.metaCacheHits, b.metaCacheHits) << label;
                EXPECT_EQ(a.metaCacheMisses, b.metaCacheMisses)
                    << label;
                // The footprint fields are content-derived on the
                // streaming path, so even they match across the ring.
                EXPECT_EQ(a.traceBytes, b.traceBytes) << label;
                EXPECT_EQ(a.peakPhaseBytes, b.peakPhaseBytes) << label;
                // Pipelining happened exactly when requested and the
                // budget allowed two threads per cell.
                const bool expectPipelined = pipeline && threads != 1;
                EXPECT_EQ(b.pipelineMaxOccupancy > 0, expectPipelined)
                    << label;
            }
        }
    }
}

TEST(Experiment, TraceCacheSharesAcrossPlatforms)
{
    // A platform-independent workload on two platforms: 2x5 grid, one
    // shared trace; the two platforms' NP results differ (different
    // DRAM systems) — i.e. the cache keys collapsed, not the runs.
    ResultSet rs =
        Experiment()
            .workload("core/matmul?m=128&n=128&k=128")
            .platforms({cloudPlatform(), edgePlatform()})
            .schemes({Scheme::NP, Scheme::MGX})
            .run();
    EXPECT_EQ(rs.records().size(), 4u);
    const RunResult *cloud =
        rs.find("core/matmul?m=128&n=128&k=128", "Cloud", Scheme::NP);
    const RunResult *edge =
        rs.find("core/matmul?m=128&n=128&k=128", "Edge", Scheme::NP);
    ASSERT_NE(cloud, nullptr);
    ASSERT_NE(edge, nullptr);
    EXPECT_NE(cloud->totalCycles, edge->totalCycles);
    // Same trace => identical data traffic on both platforms.
    EXPECT_EQ(cloud->traffic.dataBytes, edge->traffic.dataBytes);
}

// ---------------------------------------------------------------------
// Missing-baseline semantics
// ---------------------------------------------------------------------

TEST(ResultSetTest, MissingBaselineIsExplicit)
{
    ResultSet rs = Experiment()
                       .workload("core/matmul?m=64&n=64&k=64")
                       .platform(edgePlatform())
                       .schemes({Scheme::MGX}) // no NP baseline
                       .run();
    const std::string w = "core/matmul?m=64&n=64&k=64";
    // The raw run exists...
    EXPECT_NE(rs.find(w, "Edge", Scheme::MGX), nullptr);
    // ...but the ratios report the missing baseline, not 0.0.
    EXPECT_EQ(rs.normalizedTime(w, "Edge", Scheme::MGX), std::nullopt);
    EXPECT_EQ(rs.trafficIncrease(w, "Edge", Scheme::MGX),
              std::nullopt);
    // Never-run cells are nullptr / nullopt too.
    EXPECT_EQ(rs.find(w, "Edge", Scheme::BP), nullptr);
    EXPECT_EQ(rs.normalizedTime("nope", "Edge", Scheme::MGX),
              std::nullopt);
}

TEST(ExperimentDeathTest, DuplicateTraceLabelsAreFatal)
{
    core::Trace a = makeKernel("core/matmul?m=64&n=64&k=64")->generate();
    core::Trace b = a;
    EXPECT_DEATH(Experiment()
                     .trace("t", a)
                     .trace("t", b)
                     .platform(edgePlatform())
                     .schemes({Scheme::NP})
                     .run(),
                 "two different traces");
}

TEST(ResultSetDeathTest, LegacyWrapperAssertsOnMissingBaseline)
{
    SchemeComparison cmp;
    cmp.results[Scheme::MGX] = RunResult{};
    EXPECT_DEATH(cmp.normalizedTime(Scheme::MGX), "baseline");
    EXPECT_DEATH(cmp.trafficIncrease(Scheme::MGX), "baseline");
}

TEST(ResultSetTest, GridOrderIsDeterministic)
{
    auto run = [] {
        return Experiment()
            .workloads({"core/matmul?m=64&n=64&k=64", "video/h264?frames=4"})
            .platforms({cloudPlatform(), edgePlatform()})
            .schemes(trafficSchemes())
            .run();
    };
    ResultSet a = run();
    ResultSet b = run();
    ASSERT_EQ(a.records().size(), 12u);
    ASSERT_EQ(a.records().size(), b.records().size());
    for (std::size_t i = 0; i < a.records().size(); ++i) {
        EXPECT_EQ(a.records()[i].key.workload,
                  b.records()[i].key.workload);
        EXPECT_EQ(a.records()[i].key.platform,
                  b.records()[i].key.platform);
        EXPECT_EQ(a.records()[i].key.scheme, b.records()[i].key.scheme);
        EXPECT_EQ(a.records()[i].result.totalCycles,
                  b.records()[i].result.totalCycles);
    }
    EXPECT_EQ(a.workloads().size(), 2u);
    EXPECT_EQ(a.platforms().size(), 2u);
    EXPECT_EQ(a.schemes().size(), 3u);
}

// ---------------------------------------------------------------------
// JSON sink
// ---------------------------------------------------------------------

TEST(Report, JsonGolden)
{
    // Hand-built ResultSet with fixed numbers => byte-exact JSON.
    RunResult np;
    np.totalCycles = 1000;
    np.computeCycles = 600;
    np.memoryCycles = 800;
    np.traffic.dataBytes = 4096;
    np.dramAccesses = 64;
    np.logicalAccesses = 2;
    np.traceBytes = 512;
    np.peakPhaseBytes = 256;
    np.seconds = 0.5;

    RunResult mgx = np;
    mgx.totalCycles = 1030;
    mgx.traffic.expandBytes = 64;
    mgx.traffic.macBytes = 64;
    mgx.dramAccesses = 66;
    mgx.metaCacheHits = 7;
    mgx.metaCacheMisses = 3;
    mgx.metaCacheWritebacks = 1;
    mgx.shardReplayThreads = 2;
    mgx.shardMergeWaits = 1;
    mgx.shardChannels = {{40, 900}, {26, 850}};

    ResultSet rs;
    rs.add({{"core/matmul", "Edge", Scheme::NP}, np});
    rs.add({{"core/matmul", "Edge", Scheme::MGX}, mgx});

    const std::string expected =
        "{\n"
        "  \"schema\": \"mgx-resultset-v1\",\n"
        "  \"records\": [\n"
        "    {\"workload\": \"core/matmul\", \"platform\": \"Edge\", "
        "\"scheme\": \"NP\",\n"
        "     \"cycles\": 1000, \"computeCycles\": 600, "
        "\"memoryCycles\": 800, \"seconds\": 0.5, "
        "\"dramAccesses\": 64, \"logicalAccesses\": 2, "
        "\"traceBytes\": 512, \"peakPhaseBytes\": 256,\n"
        "     \"metaCache\": {\"hits\": 0, \"misses\": 0, "
        "\"writebacks\": 0},\n"
        "     \"pipeline\": {\"producerWaits\": 0, "
        "\"consumerWaits\": 0, \"maxOccupancy\": 0},\n"
        "     \"shard\": {\"replayThreads\": 0, \"mergeWaits\": 0, "
        "\"channels\": []},\n"
        "     \"traffic\": {\"data\": 4096, \"expand\": 0, \"mac\": 0, "
        "\"vn\": 0, \"tree\": 0, \"total\": 4096},\n"
        "     \"normalizedTime\": 1, \"trafficIncrease\": 1},\n"
        "    {\"workload\": \"core/matmul\", \"platform\": \"Edge\", "
        "\"scheme\": \"MGX\",\n"
        "     \"cycles\": 1030, \"computeCycles\": 600, "
        "\"memoryCycles\": 800, \"seconds\": 0.5, "
        "\"dramAccesses\": 66, \"logicalAccesses\": 2, "
        "\"traceBytes\": 512, \"peakPhaseBytes\": 256,\n"
        "     \"metaCache\": {\"hits\": 7, \"misses\": 3, "
        "\"writebacks\": 1},\n"
        "     \"pipeline\": {\"producerWaits\": 0, "
        "\"consumerWaits\": 0, \"maxOccupancy\": 0},\n"
        "     \"shard\": {\"replayThreads\": 2, \"mergeWaits\": 1, "
        "\"channels\": [{\"requests\": 40, \"busyCycles\": 900}, "
        "{\"requests\": 26, \"busyCycles\": 850}]},\n"
        "     \"traffic\": {\"data\": 4096, \"expand\": 64, "
        "\"mac\": 64, \"vn\": 0, \"tree\": 0, \"total\": 4224},\n"
        "     \"normalizedTime\": 1.03, \"trafficIncrease\": "
        "1.03125}\n"
        "  ]\n"
        "}\n";
    EXPECT_EQ(toJson(rs), expected);
}

TEST(Report, JsonReportsMissingBaselineAsNull)
{
    RunResult mgx;
    mgx.totalCycles = 1030;
    mgx.traffic.dataBytes = 4096;
    ResultSet rs;
    rs.add({{"w", "Edge", Scheme::MGX}, mgx});
    const std::string json = toJson(rs);
    EXPECT_NE(json.find("\"normalizedTime\": null"),
              std::string::npos);
    EXPECT_NE(json.find("\"trafficIncrease\": null"),
              std::string::npos);
}

TEST(Report, JsonEscapesWorkloadNames)
{
    RunResult r;
    r.totalCycles = 1;
    ResultSet rs;
    rs.add({{"weird\"name\\x", "Edge", Scheme::NP}, r});
    const std::string json = toJson(rs);
    EXPECT_NE(json.find("weird\\\"name\\\\x"), std::string::npos);
}

TEST(Report, SchemeByNameRoundTrips)
{
    for (Scheme s : protection::kAllSchemes)
        EXPECT_EQ(schemeByName(protection::schemeName(s)), s);
}

TEST(ReportDeathTest, SchemeByNameRejectsUnknown)
{
    EXPECT_DEATH(schemeByName("XYZ"), "unknown scheme");
}

} // namespace
} // namespace mgx::sim
