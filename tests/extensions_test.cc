/**
 * @file
 * Tests for the extension features: re-keying on VN overflow
 * (§IV-C), MobileNet / depthwise convolutions, trace serialization,
 * DRAM bus-turnaround timing, and the SSSP kernel variant.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "core/invariant_checker.h"
#include "core/matmul_kernel.h"
#include "core/rekey.h"
#include "dnn/chaidnn.h"
#include "dnn/dnn_kernel.h"
#include "dnn/models.h"
#include "dram/dram_system.h"
#include "graph/graph_kernel.h"
#include "sim/runner.h"
#include "sim/trace_io.h"

namespace mgx {
namespace {

// -- RekeyManager --------------------------------------------------------------

TEST(Rekey, TriggersNearOverflow)
{
    core::RekeyManager manager(1 << 20);
    EXPECT_FALSE(manager.needsRekey(1));
    EXPECT_FALSE(manager.needsRekey(core::kVnValueMax - (2 << 20)));
    EXPECT_TRUE(manager.needsRekey(core::kVnValueMax - 1));
    EXPECT_TRUE(manager.needsRekey(core::kVnValueMax - (1 << 20)));
}

TEST(Rekey, PlanCoversEveryRegionByte)
{
    core::RekeyManager manager;
    std::vector<core::LiveRegion> regions = {
        {0x0000, 3 << 20, DataClass::Weight, 5},
        {4ull << 30, 1 << 19, DataClass::Feature, 9},
    };
    core::Trace trace = manager.planRekey(regions, 1 << 20);
    u64 read_bytes = 0, written_bytes = 0;
    for (const auto &phase : trace) {
        for (const auto &acc : phase.accesses) {
            (acc.type == AccessType::Read ? read_bytes
                                          : written_bytes) += acc.bytes;
        }
    }
    EXPECT_EQ(read_bytes, (3ull << 20) + (1 << 19));
    EXPECT_EQ(written_bytes, (3ull << 20) + (1 << 19));
    // 3 chunks for the first region + 1 for the second.
    EXPECT_EQ(trace.size(), 4u);
    EXPECT_EQ(manager.epoch(), 1u);
}

TEST(Rekey, ReadsUseOldVnWritesRestart)
{
    core::RekeyManager manager;
    core::Trace trace = manager.planRekey(
        {{0, 4096, DataClass::Feature, 777}});
    ASSERT_EQ(trace.size(), 1u);
    ASSERT_EQ(trace[0].accesses.size(), 2u);
    EXPECT_EQ(core::vnValue(trace[0].accesses[0].vn), 777u);
    EXPECT_EQ(core::vnValue(trace[0].accesses[1].vn), 1u);
}

TEST(Rekey, CostIsMeasurable)
{
    // A re-key of 64 MB through the MGX engine: the traffic is twice
    // the region size plus the MAC stream.
    core::RekeyManager manager;
    core::Trace trace = manager.planRekey(
        {{0, 64 << 20, DataClass::Weight, 3}});
    protection::ProtectionConfig cfg;
    auto cmp = sim::compareSchemes(trace, sim::edgePlatform(), cfg,
                                   {protection::Scheme::MGX});
    const auto &traffic =
        cmp.results[protection::Scheme::MGX].traffic;
    EXPECT_EQ(traffic.dataBytes, 2ull * (64 << 20));
    EXPECT_GT(traffic.macBytes, 0u);
}

// -- MobileNet / depthwise -------------------------------------------------------

TEST(MobileNet, ParameterCount)
{
    // MobileNet-v1: ~4.2 M parameters.
    const u64 params = dnn::mobilenetV1().weightBytes(1);
    EXPECT_GT(params, 3900u * 1000);
    EXPECT_LT(params, 4600u * 1000);
}

TEST(MobileNet, MacCount)
{
    // ~569 M MACs per 224x224 image.
    const u64 macs = dnn::mobilenetV1().totalMacs();
    EXPECT_GT(macs, 520ull * 1000 * 1000);
    EXPECT_LT(macs, 620ull * 1000 * 1000);
}

TEST(MobileNet, DepthwiseLayersHaveTinyWeights)
{
    dnn::Model m = dnn::mobilenetV1();
    for (const auto &l : m.layers) {
        if (l.kind == dnn::LayerKind::Depthwise) {
            EXPECT_EQ(l.weightElems(),
                      static_cast<u64>(l.outC) * l.kH * l.kW);
        }
    }
}

TEST(MobileNet, TraceKeepsInvariants)
{
    dnn::DnnKernel kernel(dnn::mobilenetV1(), dnn::edgeAccel());
    core::InvariantChecker checker;
    checker.observeTrace(kernel.generate());
    EXPECT_TRUE(checker.report().ok);
}

TEST(MobileNet, TrainingTraceKeepsInvariants)
{
    dnn::DnnKernel kernel(dnn::mobilenetV1(), dnn::cloudAccel(),
                          dnn::DnnTask::Training);
    core::InvariantChecker checker;
    checker.observeTrace(kernel.generate());
    EXPECT_TRUE(checker.report().ok);
}

TEST(MobileNet, ChaiDnnSupportsDepthwise)
{
    EXPECT_TRUE(dnn::chaiSupports(dnn::mobilenetV1()));
    auto program = dnn::compileForChai(dnn::mobilenetV1());
    // 1 stem + 13x(dw+pw) + 1 pool + 1 fc = 29 instructions.
    EXPECT_EQ(program.instructions.size(), 29u);
}

// -- trace serialization -----------------------------------------------------------

TEST(TraceIo, RoundTripPreservesEverything)
{
    dnn::DnnKernel kernel(dnn::alexnet(), dnn::edgeAccel());
    core::Trace original = kernel.generate();
    core::Trace parsed =
        sim::traceFromString(sim::traceToString(original));
    ASSERT_EQ(parsed.size(), original.size());
    for (std::size_t i = 0; i < original.size(); ++i) {
        EXPECT_EQ(parsed[i].name, original[i].name);
        EXPECT_EQ(parsed[i].computeCycles, original[i].computeCycles);
        ASSERT_EQ(parsed[i].accesses.size(),
                  original[i].accesses.size());
        for (std::size_t a = 0; a < original[i].accesses.size(); ++a) {
            const auto &x = original[i].accesses[a];
            const auto &y = parsed[i].accesses[a];
            EXPECT_EQ(y.addr, x.addr);
            EXPECT_EQ(y.bytes, x.bytes);
            EXPECT_EQ(y.type, x.type);
            EXPECT_EQ(y.cls, x.cls);
            EXPECT_EQ(y.vn, x.vn);
            EXPECT_EQ(y.macGranularity, x.macGranularity);
        }
    }
}

TEST(TraceIo, CommentsAndBlankLinesIgnored)
{
    core::Trace t = sim::traceFromString(
        "# a comment\n\nP warmup 100\nA r 1000 64 feature 4 0\n");
    ASSERT_EQ(t.size(), 1u);
    EXPECT_EQ(t[0].name, "warmup");
    EXPECT_EQ(t[0].accesses[0].addr, 0x1000u);
    EXPECT_EQ(t[0].accesses[0].cls, DataClass::Feature);
}

// Damaged trace text is an environment fault, not a programming
// error: parse failures raise the catchable TraceIoError (see
// sim/trace_io.h) so callers can quarantine and regenerate instead
// of losing the process.
TEST(TraceIo, MalformedInputThrowsTraceIoError)
{
    auto message = [](const char *text) -> std::string {
        try {
            sim::traceFromString(text);
        } catch (const sim::TraceIoError &e) {
            return e.what();
        }
        ADD_FAILURE() << "no TraceIoError for: " << text;
        return {};
    };
    EXPECT_NE(message("A r 0 64 feature 1 0\n").find("before any "
                                                     "phase"),
              std::string::npos);
    EXPECT_NE(
        message("P p 1\nA x 0 64 feature 1 0\n").find("malformed "
                                                      "access"),
        std::string::npos);
    EXPECT_NE(
        message("P p 1\nA r 0 64 nonsense 1 0\n").find("unknown data "
                                                       "class"),
        std::string::npos);
}

TEST(TraceIo, ReplayedTraceSimulatesIdentically)
{
    core::MatMulParams params;
    params.kTiles = 2;
    core::MatMulKernel kernel(params);
    core::Trace original = kernel.generate();
    core::Trace replayed =
        sim::traceFromString(sim::traceToString(original));
    protection::ProtectionConfig cfg;
    auto a = sim::compareSchemes(original, sim::edgePlatform(), cfg,
                                 sim::trafficSchemes());
    auto b = sim::compareSchemes(replayed, sim::edgePlatform(), cfg,
                                 sim::trafficSchemes());
    for (auto s : sim::trafficSchemes())
        EXPECT_EQ(a.results[s].totalCycles, b.results[s].totalCycles);
}

// -- DRAM turnaround ------------------------------------------------------------------

TEST(DramTurnaround, AlternatingRwSlowerThanStreams)
{
    // Same requests, same rows: pure read stream + pure write stream
    // beats strictly alternating read/write on the same data.
    dram::DramSystem mixed(dram::ddr4_2400(1));
    for (int i = 0; i < 256; ++i)
        mixed.access(
            {static_cast<Addr>(i) * 64, (i % 2) == 1, 0});
    const Cycles mixed_done = mixed.lastCompletion();

    dram::DramSystem split(dram::ddr4_2400(1));
    for (int i = 0; i < 256; i += 2)
        split.access({static_cast<Addr>(i) * 64, false, 0});
    for (int i = 1; i < 256; i += 2)
        split.access({static_cast<Addr>(i) * 64, true, 0});
    EXPECT_GT(mixed_done, split.lastCompletion());
}

// -- SSSP kernel -----------------------------------------------------------------------

TEST(Sssp, KernelSharesTheVnScheme)
{
    graph::GraphSpec spec{"tiny", 30000, 150000, 1, 1.8};
    graph::GraphTiles tiles = graph::buildTiles(spec, 8192, 8192, 2);
    graph::GraphKernel kernel(tiles, graph::GraphAlgorithm::SSSP, 4);
    EXPECT_EQ(kernel.name().rfind("SSSP-", 0), 0u);
    core::InvariantChecker checker;
    checker.observeTrace(kernel.generate());
    EXPECT_TRUE(checker.report().ok);
    EXPECT_EQ(kernel.iterCounter(), 4u);
}

} // namespace
} // namespace mgx
