/**
 * @file
 * DNN substrate tests: model-zoo shape/parameter sanity (checked
 * against the published architectures), the systolic compute model,
 * the region allocator, trace generation, and the §IV-C VN rules —
 * every model's full trace must satisfy the security invariant.
 */

#include <gtest/gtest.h>

#include "core/invariant_checker.h"
#include "dnn/dnn_kernel.h"
#include "dnn/models.h"
#include "dnn/pruning.h"

namespace mgx::dnn {
namespace {

using core::InvariantChecker;
using core::Trace;

// -- model zoo -----------------------------------------------------------------

TEST(Models, AlexNetParameterCount)
{
    // AlexNet has ~61 M parameters (mostly in fc6).
    const u64 params = alexnet().weightBytes(1);
    EXPECT_GT(params, 57u * 1000 * 1000);
    EXPECT_LT(params, 64u * 1000 * 1000);
}

TEST(Models, Vgg16ParameterCount)
{
    // VGG-16: ~138 M parameters.
    const u64 params = vgg16().weightBytes(1);
    EXPECT_GT(params, 132u * 1000 * 1000);
    EXPECT_LT(params, 142u * 1000 * 1000);
}

TEST(Models, ResNet50ParameterCount)
{
    // ResNet-50: ~25.5 M parameters.
    const u64 params = resnet50().weightBytes(1);
    EXPECT_GT(params, 23u * 1000 * 1000);
    EXPECT_LT(params, 28u * 1000 * 1000);
}

TEST(Models, Vgg16MacCount)
{
    // ~15.5 GMACs per 224x224 image.
    const u64 macs = vgg16().totalMacs();
    EXPECT_GT(macs, 14ull * 1000 * 1000 * 1000);
    EXPECT_LT(macs, 16ull * 1000 * 1000 * 1000);
}

TEST(Models, ResNet50MacCount)
{
    // ~4.1 GMACs per image.
    const u64 macs = resnet50().totalMacs();
    EXPECT_GT(macs, 3500ull * 1000 * 1000);
    EXPECT_LT(macs, 4600ull * 1000 * 1000);
}

TEST(Models, BertEncoderShapes)
{
    Model bert = bertBase(512);
    // 12 encoder blocks x 8 traffic layers + embed + pooler.
    EXPECT_EQ(bert.layers.size(), 2u + 12u * 8u);
    // BERT-base: ~85 M weight elements in the encoder stack (plus the
    // 23 M-element token embedding we also count).
    EXPECT_GT(bert.weightBytes(1), 100ull << 20);
}

TEST(Models, DlrmEmbeddingTables)
{
    Model m = dlrm();
    int tables = 0;
    for (const auto &l : m.layers)
        tables += l.kind == LayerKind::Embedding;
    EXPECT_EQ(tables, 26);
}

TEST(Models, ProducerIndicesWellFormed)
{
    for (const Model &m : paperModels()) {
        for (std::size_t i = 0; i < m.layers.size(); ++i) {
            for (int p : m.layers[i].inputs) {
                EXPECT_GE(p, -1) << m.name << " layer " << i;
                EXPECT_LT(p, static_cast<int>(i))
                    << m.name << " layer " << i
                    << " consumes a later layer";
            }
        }
    }
}

TEST(Models, ConvOutputShape)
{
    Layer l;
    l.kind = LayerKind::Conv;
    l.inC = 3;
    l.inH = l.inW = 224;
    l.outC = 64;
    l.kH = l.kW = 7;
    l.stride = 2;
    l.pad = 3;
    EXPECT_EQ(l.outH(), 112u);
    EXPECT_EQ(l.outW(), 112u);
}

TEST(Models, LookupByName)
{
    EXPECT_EQ(modelByName("VGG").name, "VGG");
    EXPECT_EQ(modelByName("DLRM").name, "DLRM");
}

// -- systolic model ---------------------------------------------------------------

TEST(Systolic, BiggerArrayIsFaster)
{
    Layer conv;
    conv.kind = LayerKind::Conv;
    conv.inC = 256;
    conv.inH = conv.inW = 56;
    conv.outC = 256;
    conv.kH = conv.kW = 3;
    conv.pad = 1;
    const Cycles cloud = layerComputeCycles(conv, 8, cloudAccel());
    const Cycles edge = layerComputeCycles(conv, 8, edgeAccel());
    EXPECT_LT(cloud, edge);
}

TEST(Systolic, SmallLayerUnderutilizesBigArray)
{
    // A tiny dense layer cannot fill 256x256 PEs; the fill overhead
    // dominates, so the cloud/edge ratio is far below the 64x PE ratio.
    Layer fc;
    fc.kind = LayerKind::Dense;
    fc.inC = 256;
    fc.outC = 64;
    const double ratio =
        static_cast<double>(layerComputeCycles(fc, 1, edgeAccel())) /
        static_cast<double>(layerComputeCycles(fc, 1, cloudAccel()));
    EXPECT_LT(ratio, 8.0);
}

// -- region allocator --------------------------------------------------------------

TEST(RegionAllocator, AllocatesDisjointAligned)
{
    RegionAllocator alloc(0x1000, 1 << 20);
    Addr a = alloc.alloc(100);
    Addr b = alloc.alloc(100);
    EXPECT_EQ(a % 4096, 0u);
    EXPECT_EQ(b % 4096, 0u);
    EXPECT_NE(a, b);
}

TEST(RegionAllocator, ReusesFreedSpace)
{
    RegionAllocator alloc(0, 16 << 10);
    Addr a = alloc.alloc(4096);
    alloc.alloc(4096);
    alloc.free(a);
    // The freed first block is reused first-fit.
    EXPECT_EQ(alloc.alloc(4096), a);
}

TEST(RegionAllocator, CoalescesNeighbours)
{
    RegionAllocator alloc(0, 12 << 10);
    Addr a = alloc.alloc(4096);
    Addr b = alloc.alloc(4096);
    Addr c = alloc.alloc(4096);
    alloc.free(a);
    alloc.free(c);
    alloc.free(b); // middle free must merge all three
    EXPECT_EQ(alloc.alloc(12 << 10), a);
}

TEST(RegionAllocatorDeathTest, DoubleFreePanics)
{
    RegionAllocator alloc(0, 1 << 20);
    Addr a = alloc.alloc(64);
    alloc.free(a);
    EXPECT_DEATH(alloc.free(a), "double free");
}

// -- trace generation ----------------------------------------------------------------

TEST(DnnKernel, TracesAreNonEmptyAndCarryTraffic)
{
    DnnKernel kernel(alexnet(), edgeAccel());
    Trace trace = kernel.generate();
    EXPECT_GT(trace.size(), alexnet().layers.size() - 1);
    EXPECT_GT(core::traceDataBytes(trace), 10ull << 20);
    EXPECT_GT(core::traceComputeCycles(trace), 0u);
}

TEST(DnnKernel, TiledDenseLayerFollowsFig7VnPattern)
{
    // VGG's fc6 weights (~100 MB) cannot fit Edge's SRAM: the kernel
    // must emit K rounds that re-read the partial output with the
    // previous VN and rewrite it with an incremented VN.
    DnnKernel kernel(vgg16(), edgeAccel());
    Trace trace = kernel.generate();

    bool saw_partial_readback = false;
    for (const auto &phase : trace) {
        if (phase.name.rfind("fc6", 0) != 0)
            continue;
        bool has_out_read = false;
        Vn read_vn = 0, write_vn = 0;
        for (const auto &acc : phase.accesses) {
            if (acc.cls != DataClass::Feature)
                continue;
            if (acc.type == AccessType::Read) {
                read_vn = core::vnValue(acc.vn);
                has_out_read = true;
            } else {
                write_vn = core::vnValue(acc.vn);
            }
        }
        if (has_out_read && write_vn == read_vn + 1)
            saw_partial_readback = true;
    }
    EXPECT_TRUE(saw_partial_readback);
}

TEST(DnnKernel, VnStateFitsOnChip)
{
    DnnKernel kernel(resnet50(), cloudAccel());
    kernel.generate();
    // Paper: ~1 KB for 127 layers. ResNet-50's graph has ~120 layers
    // -> two tables + a few counters, comfortably under 4 KB.
    EXPECT_LT(kernel.vnStateBytes(), 4096u);
    EXPECT_GT(kernel.vnStateBytes(), 100u);
}

TEST(DnnKernel, EmbeddingGathersUseFineMacs)
{
    DnnKernel kernel(dlrm(), cloudAccel());
    Trace trace = kernel.generate();
    u64 fine = 0;
    for (const auto &phase : trace)
        for (const auto &acc : phase.accesses)
            if (acc.macGranularity == 64 &&
                acc.cls == DataClass::Weight)
                ++fine;
    // 26 tables x 128 samples (the default DLRM batch).
    EXPECT_EQ(fine, 26u * 128u);
}

TEST(DnnKernel, TrainingAddsGradientTraffic)
{
    DnnKernel inf(vgg16(), cloudAccel(), DnnTask::Inference);
    DnnKernel train(vgg16(), cloudAccel(), DnnTask::Training);
    const u64 inf_bytes = core::traceDataBytes(inf.generate());
    const u64 train_bytes = core::traceDataBytes(train.generate());
    EXPECT_GT(train_bytes, 2 * inf_bytes);
    // Training emits Gradient-class accesses.
    bool has_grad = false;
    DnnKernel t2(alexnet(), cloudAccel(), DnnTask::Training);
    for (const auto &phase : t2.generate())
        for (const auto &acc : phase.accesses)
            has_grad |= acc.cls == DataClass::Gradient;
    EXPECT_TRUE(has_grad);
}

TEST(DnnKernel, PrunedTrafficShrinks)
{
    DnnKernel dense(resnet50(), cloudAccel());
    DnnKernel sparse(resnet50(), cloudAccel());
    sparse.setFeatureDensity(0.5);
    EXPECT_LT(core::traceDataBytes(sparse.generate()),
              core::traceDataBytes(dense.generate()));
}

/** Every paper model x task x platform must satisfy the VN invariant. */
struct InvariantCase
{
    const char *model;
    DnnTask task;
    bool edge;
};

class DnnInvariantTest : public ::testing::TestWithParam<InvariantCase>
{
};

TEST_P(DnnInvariantTest, NoCounterReuseAndFreshReads)
{
    const auto &param = GetParam();
    DnnKernel kernel(modelByName(param.model),
                     param.edge ? edgeAccel() : cloudAccel(),
                     param.task);
    InvariantChecker checker;
    checker.observeTrace(kernel.generate());
    auto report = checker.report();
    EXPECT_TRUE(report.ok) << (report.violations.empty()
                                   ? "?"
                                   : report.violations.front());
    EXPECT_GT(report.writesChecked, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    PaperModels, DnnInvariantTest,
    ::testing::Values(
        InvariantCase{"VGG", DnnTask::Inference, false},
        InvariantCase{"VGG", DnnTask::Training, false},
        InvariantCase{"AlexNet", DnnTask::Inference, true},
        InvariantCase{"AlexNet", DnnTask::Training, false},
        InvariantCase{"GoogleNet", DnnTask::Inference, false},
        InvariantCase{"GoogleNet", DnnTask::Training, false},
        InvariantCase{"ResNet", DnnTask::Inference, true},
        InvariantCase{"ResNet", DnnTask::Training, false},
        InvariantCase{"BERT", DnnTask::Inference, false},
        InvariantCase{"BERT", DnnTask::Training, false},
        InvariantCase{"DLRM", DnnTask::Inference, false}),
    [](const ::testing::TestParamInfo<InvariantCase> &info) {
        std::string name = info.param.model;
        name += info.param.task == DnnTask::Training ? "Train" : "Inf";
        name += info.param.edge ? "Edge" : "Cloud";
        return name;
    });

TEST(DnnKernel, ConsecutiveInferencesKeepInvariants)
{
    // Multiple batches through one kernel: feature buffers are reused
    // with strictly increasing VNs across runs.
    DnnKernel kernel(googlenet(), edgeAccel());
    InvariantChecker checker;
    checker.observeTrace(kernel.generate());
    checker.observeTrace(kernel.generate());
    checker.observeTrace(kernel.generate());
    EXPECT_TRUE(checker.report().ok);
}

// -- pruning helpers ---------------------------------------------------------------

TEST(Pruning, CompressedSizesOrdered)
{
    // At low density the compressed form is far below dense; RLC has
    // the smallest index overhead for pixel sparsity.
    const u64 dense = 256 * 1024;
    const u64 csr = compressedBytes(256, 1024, 0.3, 1, SparseFormat::CSR);
    const u64 rlc = compressedBytes(256, 1024, 0.3, 1, SparseFormat::RLC);
    EXPECT_LT(csr, dense);
    EXPECT_LT(rlc, csr);
}

TEST(Pruning, EffectiveDensityCapsAtOne)
{
    EXPECT_LE(effectiveDensity(16, 16, 1.0, 1, SparseFormat::CSR), 1.0);
    EXPECT_LT(effectiveDensity(256, 256, 0.1, 1, SparseFormat::RLC),
              0.2);
}

TEST(Pruning, StaticChannelPruneShrinksModel)
{
    // GoogLeNet is all-conv, so halving channels quarters the weights
    // (VGG's dense layers would dominate and stay unpruned).
    Model pruned = staticChannelPrune(googlenet(), 0.5);
    EXPECT_LT(pruned.weightBytes(1), googlenet().weightBytes(1) / 2);
    // And the pruned model still generates a valid trace.
    DnnKernel kernel(pruned, edgeAccel());
    InvariantChecker checker;
    checker.observeTrace(kernel.generate());
    EXPECT_TRUE(checker.report().ok);
}

} // namespace
} // namespace mgx::dnn
