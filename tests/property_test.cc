/**
 * @file
 * Property-based tests: randomized access sequences and kernel
 * schedules checked against invariants that must hold for *any*
 * input —
 *
 *  - protection traffic is always >= data traffic, and the scheme
 *    ordering NP <= MGX <= {MGX_VN, MGX_MAC} <= BP holds for traffic;
 *  - the functional SecureMemory and the timing engine agree on the
 *    VN discipline: whatever the random kernel writes/reads with
 *    consistent VNs round-trips, and any stale VN fails;
 *  - the metadata cache behaves identically to a reference
 *    fully-associative-per-set model;
 *  - DRAM completion times are monotone in arrival time.
 */

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "common/rng.h"
#include "core/invariant_checker.h"
#include "protection/protection_engine.h"
#include "protection/secure_memory.h"

namespace mgx {
namespace {

using core::LogicalAccess;
using protection::ProtectionConfig;
using protection::Scheme;

/** A random but VN-consistent access sequence over a small heap. */
std::vector<LogicalAccess>
randomConsistentSequence(u64 seed, unsigned count)
{
    Rng rng(seed);
    std::map<Addr, Vn> last_vn; // per 4 KB chunk
    std::vector<LogicalAccess> seq;
    Vn next_vn = 1;
    for (unsigned i = 0; i < count; ++i) {
        const Addr chunk = rng.below(64) * 4096;
        const bool write = last_vn.count(chunk) == 0 || rng.chance(0.5);
        LogicalAccess acc;
        acc.addr = chunk;
        // Writes cover the whole chunk so all its blocks share one VN;
        // reads may take any prefix.
        acc.bytes = write ? 4096 : (512u << rng.below(4));
        acc.cls = DataClass::Generic;
        if (write) {
            acc.type = AccessType::Write;
            acc.vn = core::makeVn(DataClass::Generic, next_vn);
            last_vn[chunk] = next_vn;
            ++next_vn;
        } else {
            acc.type = AccessType::Read;
            acc.vn = core::makeVn(DataClass::Generic, last_vn[chunk]);
        }
        seq.push_back(acc);
    }
    return seq;
}

class RandomSequenceTest : public ::testing::TestWithParam<u64>
{
};

TEST_P(RandomSequenceTest, TrafficOrderingHolds)
{
    auto seq = randomConsistentSequence(GetParam(), 120);
    std::map<Scheme, u64> totals;
    for (Scheme s :
         {Scheme::NP, Scheme::MGX, Scheme::MGX_VN, Scheme::MGX_MAC,
          Scheme::BP}) {
        dram::DramSystem dram(dram::ddr4_2400(1));
        ProtectionConfig cfg;
        cfg.scheme = s;
        cfg.protectedBytes = 1ull << 30;
        protection::ProtectionEngine engine(cfg, &dram);
        Cycles t = 0;
        for (const auto &acc : seq)
            t = engine.access(acc, t);
        engine.flush(t);
        totals[s] = engine.traffic().totalBytes();
        // Metadata can only add traffic.
        EXPECT_GE(engine.traffic().totalBytes(),
                  engine.traffic().dataBytes);
    }
    EXPECT_LE(totals[Scheme::NP], totals[Scheme::MGX]);
    EXPECT_LE(totals[Scheme::MGX], totals[Scheme::MGX_VN]);
    EXPECT_LE(totals[Scheme::MGX], totals[Scheme::MGX_MAC]);
    EXPECT_LE(totals[Scheme::MGX_VN], totals[Scheme::BP]);
}

TEST_P(RandomSequenceTest, InvariantCheckerAcceptsConsistent)
{
    auto seq = randomConsistentSequence(GetParam() ^ 0xabcd, 300);
    core::InvariantChecker checker(64);
    for (const auto &acc : seq)
        checker.observe(acc);
    EXPECT_TRUE(checker.report().ok);
}

TEST_P(RandomSequenceTest, SecureMemoryRoundTripsConsistentVns)
{
    Rng rng(GetParam() * 31 + 7);
    protection::SecureMemoryConfig mcfg;
    mcfg.encKey[0] = static_cast<u8>(GetParam());
    mcfg.macKey[0] = static_cast<u8>(GetParam() >> 8);
    mcfg.macGranularity = 512;
    protection::SecureMemory mem(mcfg);

    std::map<Addr, std::pair<Vn, u8>> shadow; // chunk -> (vn, fill)
    Vn next_vn = 1;
    for (int i = 0; i < 60; ++i) {
        const Addr chunk = rng.below(16) * 4096;
        if (shadow.count(chunk) == 0 || rng.chance(0.5)) {
            const u8 fill = static_cast<u8>(rng.below(256));
            mem.write(chunk, std::vector<u8>(4096, fill), next_vn);
            shadow[chunk] = {next_vn, fill};
            ++next_vn;
        } else {
            auto [vn, fill] = shadow[chunk];
            std::vector<u8> out(4096);
            ASSERT_TRUE(mem.read(chunk, out, vn));
            EXPECT_EQ(out, std::vector<u8>(4096, fill));
            // A stale VN must always fail once the chunk was
            // rewritten at least once.
            if (vn > 1) {
                EXPECT_FALSE(mem.read(chunk, out, vn - 1));
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomSequenceTest,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u,
                                           21u, 34u));

// -- cache vs reference model ---------------------------------------------------------

/** Simple reference: per-set vector with true LRU. */
class ReferenceCache
{
  public:
    ReferenceCache(u32 sets, u32 ways) : sets_(sets), ways_(ways),
                                         data_(sets)
    {
    }

    protection::CacheResult
    access(Addr addr, bool dirty)
    {
        const Addr line = addr & ~Addr{63};
        auto &set = data_[(line / 64) % sets_];
        for (auto it = set.begin(); it != set.end(); ++it) {
            if (it->first == line) {
                auto entry = *it;
                entry.second |= dirty;
                set.erase(it);
                set.push_back(entry); // move to MRU
                return {true, false, 0};
            }
        }
        protection::CacheResult r;
        if (set.size() == ways_) {
            if (set.front().second) {
                r.writeback = true;
                r.victimAddr = set.front().first;
            }
            set.erase(set.begin());
        }
        set.push_back({line, dirty});
        return r;
    }

  private:
    u32 sets_, ways_;
    std::vector<std::vector<std::pair<Addr, bool>>> data_;
};

TEST(MetaCacheProperty, MatchesReferenceModel)
{
    protection::MetaCache cache(8 << 10, 8); // 16 sets x 8 ways
    ReferenceCache ref(16, 8);
    Rng rng(99);
    for (int i = 0; i < 20000; ++i) {
        const Addr addr = rng.below(1024) * 64;
        const bool dirty = rng.chance(0.3);
        auto got = cache.access(addr, dirty);
        auto want = ref.access(addr, dirty);
        ASSERT_EQ(got.hit, want.hit) << "op " << i;
        ASSERT_EQ(got.writeback, want.writeback) << "op " << i;
        if (want.writeback) {
            ASSERT_EQ(got.victimAddr, want.victimAddr) << "op " << i;
        }
    }
}

// -- DRAM monotonicity ------------------------------------------------------------------

TEST(DramProperty, CompletionMonotoneInArrival)
{
    Rng rng(5);
    for (int trial = 0; trial < 20; ++trial) {
        const Addr addr = rng.below(1 << 20) * 64;
        dram::DramSystem a(dram::ddr4_2400(1));
        dram::DramSystem b(dram::ddr4_2400(1));
        const Cycles t0 = rng.below(10000);
        const Cycles c1 = a.access({addr, false, t0});
        const Cycles c2 = b.access({addr, false, t0 + 500});
        EXPECT_LE(c1, c2);
        EXPECT_GE(c1, t0);
    }
}

TEST(DramProperty, ThroughputNeverExceedsPeak)
{
    Rng rng(6);
    for (u32 channels : {1u, 2u, 4u}) {
        dram::Ddr4Config cfg = dram::ddr4_2400(channels);
        dram::DramSystem sys(cfg);
        const u64 bytes = 1 << 20;
        Cycles done = sys.accessRange(0, bytes, rng.chance(0.5), 0);
        const double min_cycles =
            static_cast<double>(bytes) / cfg.peakBytesPerCycle();
        EXPECT_GE(static_cast<double>(done), min_cycles * 0.999);
    }
}

} // namespace
} // namespace mgx
