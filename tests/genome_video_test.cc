/**
 * @file
 * Case-study tests: the Darwin/GACT genome kernel (§VII-A) and the
 * H.264 decoder model, including the functional decode of an IBPB
 * sequence through SecureMemory with the CTR_IN||F VN rule.
 */

#include <gtest/gtest.h>

#include "core/invariant_checker.h"
#include "genome/genome_kernel.h"
#include "protection/secure_memory.h"
#include "video/video_kernel.h"

namespace mgx {
namespace {

// -- GACT ---------------------------------------------------------------------

TEST(Gact, NineWorkloads)
{
    auto workloads = genome::paperWorkloads();
    ASSERT_EQ(workloads.size(), 9u);
    EXPECT_EQ(workloads[0].name, "chr1PacBio");
    EXPECT_EQ(workloads[8].name, "chrYONT1D");
}

TEST(Gact, HigherErrorRateMeansMoreTiles)
{
    genome::GactWorkload pacbio{"t1", 1000000, genome::pacbioProfile(),
                                16};
    genome::GactWorkload ont1d{"t2", 1000000, genome::ont1dProfile(),
                               16};
    genome::GenomeKernel k1(pacbio), k2(ont1d);
    EXPECT_GT(core::traceDataBytes(k2.generate()),
              core::traceDataBytes(k1.generate()));
}

TEST(Gact, ComputeModelMatchesArrayGeometry)
{
    genome::GactConfig cfg;
    EXPECT_EQ(cfg.tileComputeCycles(), 512u * 512u / 64u);
}

TEST(GenomeKernel, AllAccessesFineGrained)
{
    genome::GenomeKernel kernel(genome::paperWorkloads(8)[0]);
    for (const auto &phase : kernel.generate())
        for (const auto &acc : phase.accesses)
            EXPECT_EQ(acc.macGranularity, 64u);
}

TEST(GenomeKernel, TracebackWritesAreSequentialAndUnique)
{
    genome::GenomeKernel kernel(genome::paperWorkloads(8)[0]);
    core::InvariantChecker checker;
    checker.observeTrace(kernel.generate());
    auto report = checker.report();
    EXPECT_TRUE(report.ok) << (report.violations.empty()
                                   ? "?"
                                   : report.violations.front());
}

TEST(GenomeKernel, QueryVnConcatenatesCounters)
{
    genome::GenomeKernel kernel(genome::paperWorkloads(4)[0]);
    kernel.generate();
    // CTR_genome = 1 in the high half, CTR_query = 1 in the low half.
    EXPECT_EQ(kernel.queryVn(), (1ull << 32) | 1ull);
    kernel.generate(); // second query batch
    EXPECT_EQ(kernel.queryVn(), (1ull << 32) | 2ull);
}

TEST(GenomeKernel, TwoBatchesKeepInvariants)
{
    genome::GenomeKernel kernel(genome::paperWorkloads(8)[4]);
    core::InvariantChecker checker;
    checker.observeTrace(kernel.generate());
    checker.observeTrace(kernel.generate());
    EXPECT_TRUE(checker.report().ok);
}

// -- H.264 ---------------------------------------------------------------------

TEST(H264, DecodeScheduleMatchesFig18)
{
    video::VideoConfig cfg;
    cfg.numFrames = 7;
    auto schedule = video::buildDecodeSchedule(cfg);
    // Display order 0..6, decode order 0 2 1 4 3 6 5.
    std::vector<u32> decode_order;
    for (const auto &f : schedule)
        decode_order.push_back(f.displayNumber);
    EXPECT_EQ(decode_order, (std::vector<u32>{0, 2, 1, 4, 3, 6, 5}));
    // Types: I at multiples of gopPeriod (4), P at other evens, B odd.
    EXPECT_EQ(schedule[0].type, video::FrameType::I);
    EXPECT_EQ(schedule[1].type, video::FrameType::P);
    EXPECT_EQ(schedule[2].type, video::FrameType::B);
    EXPECT_EQ(schedule[3].type, video::FrameType::I);
}

TEST(H264, BFramesReadBothAnchors)
{
    video::VideoConfig cfg;
    cfg.numFrames = 8;
    for (const auto &f : video::buildDecodeSchedule(cfg)) {
        if (f.type == video::FrameType::B) {
            ASSERT_EQ(f.refDisplayNumbers.size(), 2u);
            EXPECT_EQ(f.refDisplayNumbers[0], f.displayNumber - 1);
            EXPECT_EQ(f.refDisplayNumbers[1], f.displayNumber + 1);
        } else if (f.type == video::FrameType::P) {
            ASSERT_EQ(f.refDisplayNumbers.size(), 1u);
            EXPECT_EQ(f.refDisplayNumbers[0], f.displayNumber - 2);
        }
    }
}

TEST(VideoKernel, EachFrameWrittenOncePerAddress)
{
    video::VideoConfig cfg;
    cfg.width = 64;
    cfg.height = 64;
    cfg.numFrames = 12;
    video::VideoKernel kernel(cfg);
    core::InvariantChecker checker;
    checker.observeTrace(kernel.generate());
    auto report = checker.report();
    EXPECT_TRUE(report.ok) << (report.violations.empty()
                                   ? "?"
                                   : report.violations.front());
}

TEST(VideoKernel, SecondBitstreamBumpsCtrIn)
{
    video::VideoConfig cfg;
    cfg.width = 64;
    cfg.height = 64;
    cfg.numFrames = 8;
    video::VideoKernel kernel(cfg);
    core::InvariantChecker checker;
    checker.observeTrace(kernel.generate());
    checker.observeTrace(kernel.generate()); // CTR_IN = 2
    EXPECT_TRUE(checker.report().ok);
    EXPECT_EQ(core::vnValue(kernel.frameVn(3)), (2ull << 32) | 3);
}

TEST(VideoKernel, FunctionalDecodeThroughSecureMemory)
{
    // End-to-end §VII-A check: "decode" frames into SecureMemory with
    // the CTR_IN||F rule, then re-read every reference exactly as the
    // inter-prediction stage would, verifying plaintext and MACs.
    video::VideoConfig cfg;
    cfg.width = 32;
    cfg.height = 32;
    cfg.bytesPerPixel = 1.0;
    cfg.numFrames = 8;
    video::VideoKernel kernel(cfg);

    protection::SecureMemoryConfig mcfg;
    mcfg.encKey[0] = 1;
    mcfg.macKey[0] = 2;
    mcfg.macGranularity = 512;
    protection::SecureMemory mem(mcfg);

    const u64 fb = cfg.frameBytes(); // 1024, multiple of 512
    ASSERT_EQ(fb % 512, 0u);
    kernel.generate(); // advances CTR_IN to 1

    auto frame_content = [fb](u32 f) {
        std::vector<u8> data(fb);
        for (u64 i = 0; i < fb; ++i)
            data[i] = static_cast<u8>(f * 37 + i);
        return data;
    };

    for (const auto &f : video::buildDecodeSchedule(cfg)) {
        // Inter-prediction: read each reference and verify contents.
        for (std::size_t r = 0; r < f.refDisplayNumbers.size(); ++r) {
            std::vector<u8> ref(fb);
            ASSERT_TRUE(mem.read(
                kernel.bufferAddr(f.refBufferIndices[r]), ref,
                kernel.frameVn(f.refDisplayNumbers[r])));
            EXPECT_EQ(ref, frame_content(f.refDisplayNumbers[r]));
        }
        // Write the decoded frame with its own VN.
        mem.write(kernel.bufferAddr(f.bufferIndex),
                  frame_content(f.displayNumber),
                  kernel.frameVn(f.displayNumber));
    }

    // A replayed stale frame buffer must be rejected.
    auto snap = mem.snapshotBlock(kernel.bufferAddr(2));
    mem.write(kernel.bufferAddr(2), frame_content(99),
              kernel.frameVn(99));
    mem.restoreBlock(snap);
    std::vector<u8> out(fb);
    EXPECT_FALSE(mem.read(kernel.bufferAddr(2), out, kernel.frameVn(99)));
}

} // namespace
} // namespace mgx
