/**
 * @file
 * Dataflow-mapping tests for the systolic compute model: SCALE-Sim's
 * OS / WS / IS mappings must differ in the expected directions, and
 * the protection results must be robust to the dataflow choice (the
 * paper's conclusions do not depend on it).
 */

#include <gtest/gtest.h>

#include "dnn/dnn_kernel.h"
#include "dnn/models.h"
#include "sim/runner.h"

namespace mgx::dnn {
namespace {

Layer
bigConv()
{
    Layer conv;
    conv.kind = LayerKind::Conv;
    conv.inC = 256;
    conv.inH = conv.inW = 28;
    conv.outC = 256;
    conv.kH = conv.kW = 3;
    conv.pad = 1;
    return conv;
}

DnnAccelConfig
withDataflow(Dataflow df)
{
    DnnAccelConfig cfg = cloudAccel();
    cfg.dataflow = df;
    return cfg;
}

TEST(Dataflow, AllMappingsProduceWork)
{
    for (Dataflow df : {Dataflow::OutputStationary,
                        Dataflow::WeightStationary,
                        Dataflow::InputStationary}) {
        EXPECT_GT(layerComputeCycles(bigConv(), 8, withDataflow(df)),
                  0u);
    }
}

TEST(Dataflow, WsFavorsManyOutputsPerWeight)
{
    // A conv with a huge output map per weight (large spatial, small
    // K): weight-stationary amortizes the K-tile loads over all P
    // outputs, beating OS's per-output-tile refill.
    Layer conv;
    conv.kind = LayerKind::Conv;
    conv.inC = 32;
    conv.inH = conv.inW = 112;
    conv.outC = 64;
    conv.kH = conv.kW = 3;
    conv.pad = 1;
    const Cycles os = layerComputeCycles(
        conv, 8, withDataflow(Dataflow::OutputStationary));
    const Cycles ws = layerComputeCycles(
        conv, 8, withDataflow(Dataflow::WeightStationary));
    EXPECT_LT(ws, os);
}

TEST(Dataflow, OsFavorsDeepReductions)
{
    // A dense layer with tiny output count but deep K: OS keeps the
    // reduction local, WS pays a pass of P per K tile.
    Layer fc;
    fc.kind = LayerKind::Dense;
    fc.inC = 25088;
    fc.outC = 4096;
    const Cycles os = layerComputeCycles(
        fc, 512, withDataflow(Dataflow::OutputStationary));
    const Cycles ws = layerComputeCycles(
        fc, 512, withDataflow(Dataflow::WeightStationary));
    EXPECT_LT(os, ws + ws / 2); // OS no worse than ~1.5x WS here
}

TEST(Dataflow, IsSymmetricToWsUnderTranspose)
{
    // Swapping (P, Co) while switching WS <-> IS gives identical
    // cycle counts: the mappings are transposes of each other.
    Layer a;
    a.kind = LayerKind::Dense;
    a.inC = 1024;
    a.outC = 333;
    const Cycles ws = layerComputeCycles(
        a, 77, withDataflow(Dataflow::WeightStationary));
    Layer t;
    t.kind = LayerKind::Dense;
    t.inC = 1024;
    t.outC = 77;
    const Cycles is = layerComputeCycles(
        t, 333, withDataflow(Dataflow::InputStationary));
    EXPECT_EQ(ws, is);
}

TEST(Dataflow, ProtectionConclusionsHoldForEveryMapping)
{
    // The MGX-vs-BP result must not hinge on the dataflow choice.
    for (Dataflow df : {Dataflow::OutputStationary,
                        Dataflow::WeightStationary,
                        Dataflow::InputStationary}) {
        DnnAccelConfig cfg = withDataflow(df);
        DnnKernel kernel(alexnet(), cfg);
        protection::ProtectionConfig base;
        auto cmp = sim::compareSchemes(kernel.generate(),
                                       sim::cloudPlatform(), base,
                                       {protection::Scheme::NP,
                                        protection::Scheme::MGX,
                                        protection::Scheme::BP});
        EXPECT_LT(cmp.normalizedTime(protection::Scheme::MGX), 1.10)
            << "dataflow " << static_cast<int>(df);
        EXPECT_GT(cmp.normalizedTime(protection::Scheme::BP),
                  cmp.normalizedTime(protection::Scheme::MGX))
            << "dataflow " << static_cast<int>(df);
    }
}

} // namespace
} // namespace mgx::dnn
