/**
 * @file
 * Exact traffic accounting: for hand-built miniature workloads the
 * kernel traces must move precisely the bytes the shapes dictate —
 * weights read once, features written once per tile round, gradients
 * mirroring features — so the figure-level results rest on verified
 * bookkeeping rather than plausible-looking aggregates.
 */

#include <gtest/gtest.h>

#include <map>

#include "dnn/dnn_kernel.h"
#include "dnn/models.h"
#include "genome/genome_kernel.h"
#include "graph/graph_kernel.h"
#include "video/video_kernel.h"

namespace mgx {
namespace {

using core::Trace;

/** Sum trace bytes by (class, type). */
std::map<std::pair<DataClass, AccessType>, u64>
bytesByKind(const Trace &trace)
{
    std::map<std::pair<DataClass, AccessType>, u64> sums;
    for (const auto &phase : trace)
        for (const auto &acc : phase.accesses)
            sums[{acc.cls, acc.type}] += acc.bytes;
    return sums;
}

dnn::Model
singleConvModel()
{
    dnn::Model m;
    m.name = "single-conv";
    dnn::Layer l;
    l.name = "conv";
    l.kind = dnn::LayerKind::Conv;
    l.inC = 16;
    l.inH = l.inW = 32;
    l.outC = 32;
    l.kH = l.kW = 3;
    l.pad = 1;
    l.inputs = {-1};
    m.layers.push_back(l);
    m.defaultBatch = 4;
    return m;
}

TEST(TrafficAccounting, SingleConvExactBytes)
{
    dnn::Model m = singleConvModel();
    dnn::DnnKernel kernel(m, dnn::cloudAccel()); // everything fits
    auto sums = bytesByKind(kernel.generate());

    const u64 in_bytes = 4ull * 16 * 32 * 32;  // batch x C x H x W
    const u64 w_bytes = 32ull * 16 * 3 * 3;
    const u64 out_bytes = 4ull * 32 * 32 * 32;
    EXPECT_EQ((sums[{DataClass::Feature, AccessType::Read}]), in_bytes);
    EXPECT_EQ((sums[{DataClass::Weight, AccessType::Read}]), w_bytes);
    EXPECT_EQ((sums[{DataClass::Feature, AccessType::Write}]),
              out_bytes);
}

TEST(TrafficAccounting, KTiledLayerReadsWeightsOnceInTotal)
{
    // VGG fc6 on Edge: heavily K-tiled, but the weight chunks across
    // all rounds must sum to exactly one pass over the weights.
    dnn::DnnKernel kernel(dnn::vgg16(), dnn::edgeAccel());
    Trace trace = kernel.generate();
    u64 fc6_weight_bytes = 0;
    u64 fc6_out_writes = 0;
    for (const auto &phase : trace) {
        if (phase.name.rfind("fc6", 0) != 0)
            continue;
        for (const auto &acc : phase.accesses) {
            if (acc.cls == DataClass::Weight)
                fc6_weight_bytes += acc.bytes;
            if (acc.cls == DataClass::Feature &&
                acc.type == AccessType::Write)
                fc6_out_writes += acc.bytes;
        }
    }
    EXPECT_EQ(fc6_weight_bytes, 25088ull * 4096);
    // The output (batch 8 x 4096) is rewritten once per K round.
    const u64 out_tensor = 8ull * 4096;
    EXPECT_GT(fc6_out_writes, out_tensor); // > 1 round
    EXPECT_EQ(fc6_out_writes % out_tensor, 0u);
}

TEST(TrafficAccounting, PoolLayersReadNoWeights)
{
    dnn::DnnKernel kernel(dnn::vgg16(), dnn::cloudAccel());
    for (const auto &phase : kernel.generate()) {
        if (phase.name.rfind("pool", 0) != 0)
            continue;
        for (const auto &acc : phase.accesses)
            EXPECT_NE(acc.cls, DataClass::Weight) << phase.name;
    }
}

TEST(TrafficAccounting, ResidualAddReadsBothProducers)
{
    dnn::DnnKernel kernel(dnn::resnet50(), dnn::cloudAccel());
    Trace trace = kernel.generate();
    // Find the first residual add and count its feature reads.
    for (const auto &phase : trace) {
        if (phase.name.find(".add") == std::string::npos)
            continue;
        u64 reads = 0;
        for (const auto &acc : phase.accesses)
            reads += acc.type == AccessType::Read;
        EXPECT_EQ(reads, 2u) << phase.name;
        break;
    }
}

TEST(TrafficAccounting, TrainingReadsSavedFeatures)
{
    // Backward feature reads must equal at least one more pass over
    // every saved forward activation (they feed the gw computation).
    dnn::Model m = singleConvModel();
    dnn::DnnKernel kernel(m, dnn::cloudAccel(), dnn::DnnTask::Training);
    auto sums = bytesByKind(kernel.generate());
    const u64 in_bytes = 4ull * 16 * 32 * 32;
    // Forward input read + backward re-read of the same tensor.
    EXPECT_GE((sums[{DataClass::Feature, AccessType::Read}]),
              2 * in_bytes);
    // Gradients flow: gy read, gx+gw written.
    EXPECT_GT((sums[{DataClass::Gradient, AccessType::Write}]), 0u);
    EXPECT_GT((sums[{DataClass::Gradient, AccessType::Read}]), 0u);
}

TEST(TrafficAccounting, GraphIterationMovesExactVectors)
{
    graph::GraphSpec spec{"tiny", 65536, 400000, 1, 1.8};
    graph::GraphTiles tiles = graph::buildTiles(spec, 1 << 16, 1 << 16,
                                                5);
    graph::GraphKernel kernel(tiles, graph::GraphAlgorithm::PageRank,
                              2);
    auto sums = bytesByKind(kernel.generate());
    // One dst block, one src tile: per iteration the rank vector is
    // read once and the updated vector written once (4 B entries).
    const u64 vec_bytes = 65536ull * 4;
    EXPECT_EQ((sums[{DataClass::GraphVector, AccessType::Read}]),
              2 * vec_bytes);
    EXPECT_EQ((sums[{DataClass::GraphVector, AccessType::Write}]),
              2 * vec_bytes);
    // Adjacency: every edge entry read once per iteration.
    EXPECT_EQ((sums[{DataClass::GraphMatrix, AccessType::Read}]),
              2 * tiles.edges * 4);
}

TEST(TrafficAccounting, VideoFrameTrafficMatchesSchedule)
{
    video::VideoConfig cfg;
    cfg.width = 64;
    cfg.height = 64;
    cfg.bytesPerPixel = 1.0;
    cfg.numFrames = 8; // decode order: I0 P2 B1 I4 B3 P6 B5
    video::VideoKernel kernel(cfg);
    auto sums = bytesByKind(kernel.generate());
    const u64 fb = cfg.frameBytes();
    // 7 frames decoded; every frame written exactly once.
    EXPECT_EQ((sums[{DataClass::VideoFrame, AccessType::Write}]),
              7 * fb);
    // References: P frames read 1, B frames read 2 -> 2x1 + 3x2 = 8.
    EXPECT_EQ((sums[{DataClass::VideoFrame, AccessType::Read}]),
              8 * fb);
}

TEST(TrafficAccounting, GactTileBytesMatchConfig)
{
    genome::GactWorkload w{"t", 1 << 20, genome::pacbioProfile(), 8};
    genome::GactConfig cfg;
    genome::GenomeKernel kernel(w, cfg);
    auto sums = bytesByKind(kernel.generate());
    const u64 ref = sums[{DataClass::GenomeTable, AccessType::Read}];
    const u64 query = sums[{DataClass::GenomeQuery, AccessType::Read}];
    const u64 tb = sums[{DataClass::GenomeQuery, AccessType::Write}];
    ASSERT_GT(ref, 0u);
    // Per tile: refChunk == queryChunk and traceback = 4x chunk.
    EXPECT_EQ(ref, query);
    EXPECT_EQ(tb, 4 * query);
}

TEST(TrafficAccounting, FeatureBuffersReusedAcrossLayers)
{
    // Inference recycles feature buffers: the address-space footprint
    // stays far below the sum of all activations.
    dnn::DnnKernel kernel(dnn::vgg16(), dnn::cloudAccel());
    Trace trace = kernel.generate();
    Addr max_feature_addr = 0;
    u64 total_writes = 0;
    for (const auto &phase : trace) {
        for (const auto &acc : phase.accesses) {
            if (acc.cls != DataClass::Feature)
                continue;
            if (acc.type == AccessType::Write) {
                max_feature_addr = std::max(
                    max_feature_addr, acc.addr + acc.bytes);
                total_writes += acc.bytes;
            }
        }
    }
    const u64 footprint = max_feature_addr - (4ull << 30);
    EXPECT_LT(footprint, total_writes / 2);
}

} // namespace
} // namespace mgx
