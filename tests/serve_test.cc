/**
 * @file
 * Experiment-service tests: HTTP request/response framing units, the
 * SingleFlight coalescing semantics (deterministic via waiters()),
 * and end-to-end Server tests over a unix socket — resultset parity
 * with the Experiment API, request dedup, queue-full back-pressure,
 * and graceful-shutdown draining. Runs under ThreadSanitizer in CI
 * alongside the other threaded suites.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <cstring>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "serve/client.h"
#include "serve/http.h"
#include "serve/server.h"
#include "serve/singleflight.h"
#include "sim/report.h"
#include "sim/workload_registry.h"

namespace mgx::serve {
namespace {

using Parser = HttpRequestParser;

// ---------------------------------------------------------------------
// HTTP framing units
// ---------------------------------------------------------------------

TEST(Http, ParsesSimpleGet)
{
    Parser p;
    const std::string raw = "GET /stats HTTP/1.1\r\n"
                            "Host: mgx\r\n"
                            "Connection: close\r\n\r\n";
    EXPECT_EQ(p.feed(raw.data(), raw.size()),
              Parser::Status::Complete);
    EXPECT_EQ(p.request().method, "GET");
    EXPECT_EQ(p.request().target, "/stats");
    EXPECT_EQ(p.request().path, "/stats");
    EXPECT_EQ(p.request().header("host").value_or(""), "mgx");
    EXPECT_EQ(p.request().header("HOST").value_or(""), "mgx");
    EXPECT_TRUE(p.request().body.empty());
}

TEST(Http, ParsesByteByByte)
{
    Parser p;
    const std::string raw =
        "GET /run?workload=core%2Fmatmul&schemes=NP HTTP/1.1\r\n\r\n";
    for (std::size_t i = 0; i + 1 < raw.size(); ++i)
        ASSERT_EQ(p.feed(&raw[i], 1), Parser::Status::Incomplete)
            << "byte " << i;
    EXPECT_EQ(p.feed(&raw[raw.size() - 1], 1),
              Parser::Status::Complete);
    EXPECT_EQ(p.request().path, "/run");
    EXPECT_EQ(p.request().queryValue("workload").value_or(""),
              "core/matmul");
    EXPECT_EQ(p.request().queryValue("schemes").value_or(""), "NP");
}

TEST(Http, QueryDecodingAndRepeatedKeys)
{
    Parser p;
    const std::string raw =
        "GET /run?workload=a%3Fb%3D1&workload=c+d&empty= "
        "HTTP/1.1\r\n\r\n";
    ASSERT_EQ(p.feed(raw.data(), raw.size()),
              Parser::Status::Complete);
    const auto values = p.request().queryValues("workload");
    ASSERT_EQ(values.size(), 2u);
    EXPECT_EQ(values[0], "a?b=1");
    EXPECT_EQ(values[1], "c d");
    EXPECT_EQ(p.request().queryValue("empty").value_or("x"), "");
    EXPECT_FALSE(p.request().queryValue("missing"));
}

TEST(Http, ParsesContentLengthBody)
{
    Parser p;
    const std::string raw = "GET /x HTTP/1.1\r\n"
                            "Content-Length: 5\r\n\r\nhel";
    EXPECT_EQ(p.feed(raw.data(), raw.size()),
              Parser::Status::Incomplete);
    EXPECT_EQ(p.feed("lo", 2), Parser::Status::Complete);
    EXPECT_EQ(p.request().body, "hello");
}

TEST(Http, ToleratesBareLfLineEndings)
{
    Parser p;
    const std::string raw = "GET /stats HTTP/1.1\nHost: x\n\n";
    EXPECT_EQ(p.feed(raw.data(), raw.size()),
              Parser::Status::Complete);
    EXPECT_EQ(p.request().header("host").value_or(""), "x");
}

TEST(Http, RejectsMalformedInput)
{
    {
        Parser p;
        const std::string raw = "NONSENSE\r\n\r\n";
        EXPECT_EQ(p.feed(raw.data(), raw.size()),
                  Parser::Status::Error);
        EXPECT_FALSE(p.error().empty());
    }
    {
        Parser p;
        const std::string raw = "GET /x SPDY/3\r\n\r\n";
        EXPECT_EQ(p.feed(raw.data(), raw.size()),
                  Parser::Status::Error);
    }
    {
        Parser p;
        const std::string raw = "GET relative HTTP/1.1\r\n\r\n";
        EXPECT_EQ(p.feed(raw.data(), raw.size()),
                  Parser::Status::Error);
    }
}

TEST(Http, ResponseRoundTrip)
{
    const std::string raw =
        httpResponse(429, "application/json", "{\"error\": \"full\"}");
    HttpResponse resp;
    std::string error;
    ASSERT_TRUE(parseHttpResponse(raw, &resp, &error)) << error;
    EXPECT_EQ(resp.status, 429);
    EXPECT_EQ(resp.reason, "Too Many Requests");
    EXPECT_EQ(resp.body, "{\"error\": \"full\"}");
    EXPECT_EQ(resp.headers.front().first, "content-type");
}

TEST(Http, PercentCodecRoundTrip)
{
    const std::string name =
        "dnn/DLRM?task=training&batch=65536";
    EXPECT_EQ(percentDecode(percentEncode(name)), name);
    EXPECT_EQ(percentEncode(name),
              "dnn/DLRM%3Ftask%3Dtraining%26batch%3D65536");
}

// ---------------------------------------------------------------------
// SingleFlight semantics
// ---------------------------------------------------------------------

TEST(SingleFlightTest, CollapsesConcurrentCallsToOneExecution)
{
    SingleFlight<int> flights;
    std::atomic<int> executions{0};
    std::atomic<int> followers{0};
    constexpr int kThreads = 4;

    std::vector<std::thread> threads;
    for (int i = 0; i < kThreads; ++i) {
        threads.emplace_back([&] {
            auto outcome = flights.run("key", [&] {
                executions.fetch_add(1);
                // Park until every other thread has provably joined
                // this flight, so the collapse count is exact.
                while (flights.waiters("key") <
                       static_cast<std::size_t>(kThreads - 1))
                    std::this_thread::yield();
                return 42;
            });
            EXPECT_EQ(*outcome.value, 42);
            if (!outcome.leader)
                followers.fetch_add(1);
        });
    }
    for (auto &t : threads)
        t.join();
    EXPECT_EQ(executions.load(), 1);
    EXPECT_EQ(followers.load(), kThreads - 1);
}

TEST(SingleFlightTest, DistinctKeysRunIndependently)
{
    SingleFlight<std::string> flights;
    auto a = flights.run("a", [] { return std::string("va"); });
    auto b = flights.run("b", [] { return std::string("vb"); });
    EXPECT_TRUE(a.leader);
    EXPECT_TRUE(b.leader);
    EXPECT_EQ(*a.value, "va");
    EXPECT_EQ(*b.value, "vb");
}

TEST(SingleFlightTest, KeyRetiresAfterCompletion)
{
    SingleFlight<int> flights;
    int calls = 0;
    flights.run("k", [&] { return ++calls; });
    auto second = flights.run("k", [&] { return ++calls; });
    EXPECT_EQ(calls, 2);
    EXPECT_EQ(*second.value, 2);
    EXPECT_TRUE(second.leader);
}

TEST(SingleFlightTest, LeaderExceptionReachesFollowers)
{
    SingleFlight<int> flights;
    std::atomic<int> rethrown{0};
    constexpr int kThreads = 3;
    std::vector<std::thread> threads;
    for (int i = 0; i < kThreads; ++i) {
        threads.emplace_back([&] {
            try {
                flights.run("boom", [&]() -> int {
                    while (flights.waiters("boom") <
                           static_cast<std::size_t>(kThreads - 1))
                        std::this_thread::yield();
                    throw std::runtime_error("engine failed");
                });
            } catch (const std::runtime_error &e) {
                EXPECT_STREQ(e.what(), "engine failed");
                rethrown.fetch_add(1);
            }
        });
    }
    for (auto &t : threads)
        t.join();
    EXPECT_EQ(rethrown.load(), kThreads);
}

// ---------------------------------------------------------------------
// Server end-to-end (unix socket)
// ---------------------------------------------------------------------

std::string
testSocketPath(const char *tag)
{
    return "/tmp/mgx-serve-test-" + std::to_string(::getpid()) + "-" +
           tag + ".sock";
}

/** Poll @p pred (metrics are eventually consistent) with a deadline. */
template <typename Pred>
bool
eventually(Pred pred, int timeout_ms = 10000)
{
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(timeout_ms);
    while (!pred()) {
        if (std::chrono::steady_clock::now() > deadline)
            return false;
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    return true;
}

/** A cheap deterministic record for injected cell runners. */
CellOutcome
syntheticOutcome(const CellKey &cell)
{
    CellOutcome out;
    out.record.key = {cell.workload, cell.platform.name, cell.scheme};
    out.record.result.totalCycles = 1000;
    out.record.result.computeCycles = 600;
    out.record.result.memoryCycles = 400;
    out.record.result.seconds = 0.001;
    out.record.result.traffic.dataBytes = 4096;
    return out;
}

TEST(ServerTest, StatsStartFromZeroAndCount)
{
    ServerOptions opts;
    opts.listen.unixPath = testSocketPath("stats");
    Server server(opts);
    server.start();
    const SocketAddress addr{opts.listen.unixPath, "127.0.0.1", 0};

    HttpResponse resp;
    std::string error;
    ASSERT_TRUE(httpGet(addr, "/stats", &resp, &error)) << error;
    EXPECT_EQ(resp.status, 200);
    EXPECT_NE(resp.body.find("\"schema\": \"mgx-servestats-v1\""),
              std::string::npos);
    EXPECT_NE(resp.body.find("\"served\": 0"), std::string::npos);
    EXPECT_NE(resp.body.find("\"rejected\": 0"), std::string::npos);
    EXPECT_NE(resp.body.find("\"cellsRun\": 0"), std::string::npos);
    EXPECT_NE(resp.body.find("\"draining\": false"),
              std::string::npos);

    // The /stats request itself is the one in-flight accepted conn.
    const auto s = server.metricsSnapshot();
    EXPECT_EQ(s.accepted, 1u);
    EXPECT_EQ(s.served, 1u);
    server.shutdown();
}

TEST(ServerTest, RunMatchesExperimentApiByteForByte)
{
    ServerOptions opts;
    opts.listen.unixPath = testSocketPath("parity");
    Server server(opts);
    server.start();
    const SocketAddress addr{opts.listen.unixPath, "127.0.0.1", 0};

    HttpResponse resp;
    std::string error;
    ASSERT_TRUE(httpGet(addr,
                        "/run?workload=core%2Fmatmul&schemes=NP,BP",
                        &resp, &error))
        << error;
    ASSERT_EQ(resp.status, 200) << resp.body;

    // The same grid through the Experiment API the way mgx_run runs
    // it (serial, unpipelined): the service's JSON must match byte
    // for byte.
    sim::ResultSet rs = sim::Experiment()
                            .workload("core/matmul")
                            .schemes({protection::Scheme::NP,
                                      protection::Scheme::BP})
                            .threads(1)
                            .pipelined(false)
                            .run();
    EXPECT_EQ(resp.body, sim::toJson(rs));

    const auto s = server.metricsSnapshot();
    EXPECT_EQ(s.cellsRun, 2u);
    EXPECT_EQ(s.dedupCollapsed, 0u);
    server.shutdown();
}

TEST(ServerTest, RejectsUnknownNamesWithoutDying)
{
    ServerOptions opts;
    opts.listen.unixPath = testSocketPath("badreq");
    Server server(opts);
    server.start();
    const SocketAddress addr{opts.listen.unixPath, "127.0.0.1", 0};

    HttpResponse resp;
    std::string error;

    // The registry's own diagnostic comes back instead of killing the
    // daemon the way makeKernel()'s fatal() would.
    ASSERT_TRUE(
        httpGet(addr, "/run?workload=nope%2Fx", &resp, &error))
        << error;
    EXPECT_EQ(resp.status, 400);
    EXPECT_NE(resp.body.find("unknown domain"), std::string::npos);

    ASSERT_TRUE(httpGet(addr,
                        "/run?workload=dnn%2FNoSuchModel",
                        &resp, &error))
        << error;
    EXPECT_EQ(resp.status, 400);
    EXPECT_NE(resp.body.find("unknown DNN model"), std::string::npos);

    ASSERT_TRUE(httpGet(
        addr, "/run?workload=core%2Fmatmul&platforms=mars", &resp,
        &error))
        << error;
    EXPECT_EQ(resp.status, 400);
    EXPECT_NE(resp.body.find("unknown platform"), std::string::npos);

    ASSERT_TRUE(httpGet(addr,
                        "/run?workload=core%2Fmatmul&schemes=XX",
                        &resp, &error))
        << error;
    EXPECT_EQ(resp.status, 400);
    EXPECT_NE(resp.body.find("unknown scheme"), std::string::npos);

    ASSERT_TRUE(httpGet(addr, "/run", &resp, &error)) << error;
    EXPECT_EQ(resp.status, 400);

    ASSERT_TRUE(httpGet(addr, "/nope", &resp, &error)) << error;
    EXPECT_EQ(resp.status, 404);

    // The daemon is still alive and serving.
    ASSERT_TRUE(httpGet(addr, "/stats", &resp, &error)) << error;
    EXPECT_EQ(resp.status, 200);
    // Six turned-away requests: four bad names, the missing
    // workload=, and the 404.
    const auto s = server.metricsSnapshot();
    EXPECT_EQ(s.badRequests, 6u);
    EXPECT_EQ(s.cellsRun, 0u);
    server.shutdown();
}

TEST(ServerTest, DedupCollapsesConcurrentRequestsExactly)
{
    constexpr unsigned kClients = 8;

    ServerOptions opts;
    opts.listen.unixPath = testSocketPath("dedup");
    opts.workers = kClients;
    opts.admissionCapacity = kClients * 2;
    Server server(opts);

    // The leader parks inside the runner until every other client's
    // request has joined the flight — so the collapse is exact, not a
    // lucky race.
    std::atomic<bool> release{false};
    server.setCellRunnerForTest([&](const CellKey &cell) {
        while (!release.load(std::memory_order_acquire))
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
        return syntheticOutcome(cell);
    });
    server.start();
    const SocketAddress addr{opts.listen.unixPath, "127.0.0.1", 0};

    const CellKey cell{"core/matmul",
                       sim::defaultPlatform("core/matmul"),
                       protection::Scheme::NP};
    const std::string key = cell.key();

    std::vector<std::thread> clients;
    std::atomic<unsigned> ok{0};
    std::mutex bodies_mu;
    std::vector<std::string> bodies;
    for (unsigned i = 0; i < kClients; ++i) {
        clients.emplace_back([&] {
            HttpResponse resp;
            std::string error;
            if (httpGet(addr,
                        "/run?workload=core%2Fmatmul&schemes=NP",
                        &resp, &error) &&
                resp.status == 200) {
                ok.fetch_add(1);
                std::lock_guard<std::mutex> lock(bodies_mu);
                bodies.push_back(resp.body);
            }
        });
    }

    // All clients but the leader end up as followers of one flight.
    ASSERT_TRUE(eventually([&] {
        return server.cellFlights().waiters(key) == kClients - 1;
    })) << "waiters: " << server.cellFlights().waiters(key);
    release.store(true, std::memory_order_release);

    for (auto &t : clients)
        t.join();

    EXPECT_EQ(ok.load(), kClients);
    const auto s = server.metricsSnapshot();
    EXPECT_EQ(s.cellsRun, 1u);
    EXPECT_EQ(s.dedupCollapsed, kClients - 1);
    EXPECT_EQ(s.served, kClients);
    ASSERT_EQ(bodies.size(), kClients);
    for (const auto &b : bodies)
        EXPECT_EQ(b, bodies.front());
    server.shutdown();
}

TEST(ServerTest, FullAdmissionQueueRejectsWith429)
{
    ServerOptions opts;
    opts.listen.unixPath = testSocketPath("full");
    opts.workers = 1;
    opts.admissionCapacity = 1;
    Server server(opts);

    std::atomic<bool> release{false};
    server.setCellRunnerForTest([&](const CellKey &cell) {
        while (!release.load(std::memory_order_acquire))
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
        return syntheticOutcome(cell);
    });
    server.start();
    const SocketAddress addr{opts.listen.unixPath, "127.0.0.1", 0};
    const std::string target =
        "/run?workload=core%2Fmatmul&schemes=NP";

    // First request occupies the only worker...
    std::thread first([&] {
        HttpResponse resp;
        std::string error;
        ASSERT_TRUE(httpGet(addr, target, &resp, &error)) << error;
        EXPECT_EQ(resp.status, 200);
    });
    ASSERT_TRUE(eventually(
        [&] { return server.metricsSnapshot().inFlight >= 1; }));

    // ...the second fills the admission queue...
    std::thread second([&] {
        HttpResponse resp;
        std::string error;
        ASSERT_TRUE(httpGet(addr, target, &resp, &error)) << error;
        EXPECT_EQ(resp.status, 200);
    });
    ASSERT_TRUE(eventually(
        [&] { return server.metricsSnapshot().queueDepth >= 1; }));

    // ...so the third is turned away immediately with 429.
    HttpResponse resp;
    std::string error;
    ASSERT_TRUE(httpGet(addr, target, &resp, &error)) << error;
    EXPECT_EQ(resp.status, 429);
    EXPECT_NE(resp.body.find("queue full"), std::string::npos);

    release.store(true, std::memory_order_release);
    first.join();
    second.join();

    const auto s = server.metricsSnapshot();
    EXPECT_EQ(s.rejected, 1u);
    EXPECT_EQ(s.served, 2u);
    EXPECT_EQ(s.maxQueueDepth, 1u);
    server.shutdown();
}

TEST(ServerTest, GracefulShutdownDrainsQueuedRequests)
{
    ServerOptions opts;
    opts.listen.unixPath = testSocketPath("drain");
    opts.workers = 1;
    opts.admissionCapacity = 4;
    Server server(opts);

    std::atomic<bool> release{false};
    server.setCellRunnerForTest([&](const CellKey &cell) {
        while (!release.load(std::memory_order_acquire))
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
        return syntheticOutcome(cell);
    });
    server.start();
    const SocketAddress addr{opts.listen.unixPath, "127.0.0.1", 0};
    const std::string target =
        "/run?workload=core%2Fmatmul&schemes=NP";

    // One request in flight, one parked in the admission queue.
    std::atomic<unsigned> ok{0};
    std::thread inflight([&] {
        HttpResponse resp;
        std::string error;
        if (httpGet(addr, target, &resp, &error) &&
            resp.status == 200)
            ok.fetch_add(1);
    });
    ASSERT_TRUE(eventually(
        [&] { return server.metricsSnapshot().inFlight >= 1; }));
    std::thread queued([&] {
        HttpResponse resp;
        std::string error;
        if (httpGet(addr, target, &resp, &error) &&
            resp.status == 200)
            ok.fetch_add(1);
    });
    ASSERT_TRUE(eventually(
        [&] { return server.metricsSnapshot().queueDepth >= 1; }));

    server.requestShutdown();
    EXPECT_TRUE(server.stopping());
    release.store(true, std::memory_order_release);
    server.shutdown(); // must drain both, then join

    inflight.join();
    queued.join();
    EXPECT_EQ(ok.load(), 2u) << "draining dropped a request";

    // The socket is gone: new connections fail instead of hanging.
    HttpResponse resp;
    std::string error;
    EXPECT_FALSE(httpGet(addr, "/stats", &resp, &error));
}

TEST(ServerTest, ShutdownEndpointStopsTheServer)
{
    ServerOptions opts;
    opts.listen.unixPath = testSocketPath("shutdown");
    Server server(opts);
    server.start();
    const SocketAddress addr{opts.listen.unixPath, "127.0.0.1", 0};

    HttpResponse resp;
    std::string error;
    ASSERT_TRUE(httpGet(addr, "/shutdown", &resp, &error)) << error;
    EXPECT_EQ(resp.status, 200);
    EXPECT_NE(resp.body.find("\"shutdown\": true"),
              std::string::npos);
    EXPECT_TRUE(server.stopping());
    server.shutdown();
    EXPECT_TRUE(server.metricsSnapshot().draining);
}

TEST(ServerTest, TcpLoopbackEphemeralPortWorks)
{
    ServerOptions opts; // no unix path: TCP, port 0
    Server server(opts);
    server.start();
    ASSERT_NE(server.port(), 0);

    SocketAddress addr;
    addr.port = server.port();
    HttpResponse resp;
    std::string error;
    ASSERT_TRUE(httpGet(addr, "/stats", &resp, &error)) << error;
    EXPECT_EQ(resp.status, 200);
    server.shutdown();
}

// ---------------------------------------------------------------------
// Robustness: oversized requests, liveness, client retries
// ---------------------------------------------------------------------

TEST(Http, OversizedRequestSetsTooLarge)
{
    // Exceeding the 1 MiB request cap is a distinct failure from
    // garbage framing: the parser flags it so the server can answer
    // 431 instead of a generic 400.
    {
        Parser p;
        std::string raw = "GET /run?workload=";
        raw.append(2u << 20, 'a');
        EXPECT_EQ(p.feed(raw.data(), raw.size()),
                  Parser::Status::Error);
        EXPECT_TRUE(p.tooLarge());
        EXPECT_FALSE(p.error().empty());
    }
    {
        Parser p;
        const std::string raw = "NONSENSE\r\n\r\n";
        EXPECT_EQ(p.feed(raw.data(), raw.size()),
                  Parser::Status::Error);
        EXPECT_FALSE(p.tooLarge());
    }
}

TEST(ServerTest, OversizedRequestAnswers431)
{
    ServerOptions opts;
    opts.listen.unixPath = testSocketPath("431");
    Server server(opts);
    server.setCellRunnerForTest(syntheticOutcome);
    server.start();
    const SocketAddress addr{opts.listen.unixPath, "127.0.0.1", 0};

    // A request line just over the 1 MiB cap: refused with the
    // specific status, counted, and the daemon keeps serving.
    std::string target = "/run?workload=";
    target.append(1u << 20, 'a');
    HttpResponse resp;
    std::string error;
    ASSERT_TRUE(httpGet(addr, target, &resp, &error)) << error;
    EXPECT_EQ(resp.status, 431);
    EXPECT_EQ(resp.reason, "Request Header Fields Too Large");

    ASSERT_TRUE(httpGet(addr, "/stats", &resp, &error)) << error;
    EXPECT_EQ(resp.status, 200);
    EXPECT_NE(resp.body.find("\"oversized\": 1"), std::string::npos);
    EXPECT_EQ(server.metricsSnapshot().oversized, 1u);
    server.shutdown();
}

TEST(ServerTest, HealthzReportsLiveness)
{
    ServerOptions opts;
    opts.listen.unixPath = testSocketPath("healthz");
    Server server(opts);
    server.start();
    const SocketAddress addr{opts.listen.unixPath, "127.0.0.1", 0};

    HttpResponse resp;
    std::string error;
    ASSERT_TRUE(httpGet(addr, "/healthz", &resp, &error)) << error;
    EXPECT_EQ(resp.status, 200);
    EXPECT_NE(resp.body.find("\"ok\": true"), std::string::npos);
    EXPECT_NE(resp.body.find("\"draining\": false"),
              std::string::npos);
    EXPECT_NE(resp.body.find("\"cacheDegraded\": false"),
              std::string::npos);
    server.shutdown();
}

TEST(ClientRetry, ConnectRefusedExhaustsAllAttempts)
{
    // Nothing listens here: every attempt fails at connect, so the
    // retry loop runs to exhaustion and reports the attempt count.
    SocketAddress addr;
    addr.unixPath = testSocketPath("nobody-home");
    RetryOptions retry;
    retry.retries = 2;
    retry.backoffMs = 1;
    retry.seed = 7;

    HttpResponse resp;
    std::string error;
    int attempts = 0;
    EXPECT_FALSE(httpGetRetry(addr, "/stats", &resp, &error, 1000,
                              retry, &attempts));
    EXPECT_EQ(attempts, 3); // first try + 2 retries
    EXPECT_FALSE(error.empty());
}

TEST(ClientRetry, ExhaustedBackpressureReturnsTheLastStatus)
{
    // A server that answers 429 on every attempt: the retry loop
    // exhausts, but the outcome is a *successful* transport with the
    // server's final answer — "the server said no" must stay
    // distinguishable from "the server never answered".
    ServerOptions opts;
    opts.listen.unixPath = testSocketPath("retry429");
    opts.workers = 1;
    opts.admissionCapacity = 1;
    Server server(opts);

    std::atomic<bool> release{false};
    server.setCellRunnerForTest([&](const CellKey &cell) {
        while (!release.load(std::memory_order_acquire))
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
        return syntheticOutcome(cell);
    });
    server.start();
    const SocketAddress addr{opts.listen.unixPath, "127.0.0.1", 0};
    const std::string target =
        "/run?workload=core%2Fmatmul&schemes=NP";

    // Wedge the only worker, then fill the one queue slot.
    std::thread first([&] {
        HttpResponse resp;
        std::string error;
        ASSERT_TRUE(httpGet(addr, target, &resp, &error)) << error;
        EXPECT_EQ(resp.status, 200);
    });
    ASSERT_TRUE(eventually(
        [&] { return server.metricsSnapshot().inFlight >= 1; }));
    std::thread second([&] {
        HttpResponse resp;
        std::string error;
        ASSERT_TRUE(httpGet(addr, target, &resp, &error)) << error;
        EXPECT_EQ(resp.status, 200);
    });
    ASSERT_TRUE(eventually(
        [&] { return server.metricsSnapshot().queueDepth >= 1; }));

    RetryOptions retry;
    retry.retries = 2;
    retry.backoffMs = 1;
    retry.seed = 7;
    HttpResponse resp;
    std::string error;
    int attempts = 0;
    ASSERT_TRUE(httpGetRetry(addr, target, &resp, &error, 5000, retry,
                             &attempts))
        << error;
    EXPECT_EQ(resp.status, 429);
    EXPECT_EQ(attempts, 3);
    EXPECT_EQ(server.metricsSnapshot().rejected, 3u);

    release.store(true, std::memory_order_release);
    first.join();
    second.join();
    server.shutdown();
}

// ---------------------------------------------------------------------
// Keep-alive and response framing
// ---------------------------------------------------------------------

TEST(HttpResponseParserTest, FramesByContentLengthWithoutEof)
{
    const std::string body = "{\"ok\": true}\n";
    const std::string raw = httpResponse(200, "application/json",
                                         body, {}, true);
    HttpResponseParser p;
    // Byte by byte: completion arrives exactly at Content-Length,
    // with no EOF needed — that is what makes reuse possible.
    for (std::size_t i = 0; i + 1 < raw.size(); ++i)
        ASSERT_EQ(p.feed(&raw[i], 1),
                  HttpResponseParser::Status::Incomplete)
            << "byte " << i;
    EXPECT_EQ(p.feed(&raw[raw.size() - 1], 1),
              HttpResponseParser::Status::Complete);
    EXPECT_EQ(p.response().status, 200);
    EXPECT_EQ(p.response().body, body);
    EXPECT_EQ(p.response().header("connection").value_or(""),
              "keep-alive");
}

TEST(HttpResponseParserTest, EofMidBodyIsATruncationError)
{
    const std::string raw = "HTTP/1.1 200 OK\r\n"
                            "Content-Length: 100\r\n\r\n"
                            "only a few bytes";
    HttpResponseParser p;
    EXPECT_EQ(p.feed(raw.data(), raw.size()),
              HttpResponseParser::Status::Incomplete);
    EXPECT_TRUE(p.headersComplete());
    EXPECT_EQ(p.finishEof(), HttpResponseParser::Status::Error);
    EXPECT_NE(p.error().find("mid-response"), std::string::npos);
}

TEST(ServerTest, KeepAliveServesManyRequestsOnOneConnection)
{
    ServerOptions opts;
    opts.listen.unixPath = testSocketPath("keepalive");
    Server server(opts);
    server.start();
    const SocketAddress addr{opts.listen.unixPath, "127.0.0.1", 0};

    ClientConnection conn(addr);
    for (int i = 0; i < 3; ++i) {
        HttpResponse resp;
        std::string error;
        ASSERT_TRUE(conn.get("/healthz", &resp, &error)) << error;
        EXPECT_EQ(resp.status, 200);
        EXPECT_EQ(conn.lastReused(), i > 0) << i;
    }
    const auto s = server.metricsSnapshot();
    EXPECT_EQ(s.accepted, 1u);
    EXPECT_EQ(s.served, 3u);
    EXPECT_EQ(s.keepAliveReused, 2u);
    server.shutdown();
}

TEST(ServerTest, KeepAliveOptOutClosesAfterEveryResponse)
{
    ServerOptions opts;
    opts.listen.unixPath = testSocketPath("nokeepalive");
    opts.keepAlive = false;
    Server server(opts);
    server.start();
    const SocketAddress addr{opts.listen.unixPath, "127.0.0.1", 0};

    // The client asks for keep-alive but the server declines; the
    // connection object transparently reconnects, so requests still
    // succeed — they just never ride a reused socket.
    ClientConnection conn(addr);
    for (int i = 0; i < 2; ++i) {
        HttpResponse resp;
        std::string error;
        ASSERT_TRUE(conn.get("/healthz", &resp, &error)) << error;
        EXPECT_EQ(resp.status, 200);
        EXPECT_FALSE(conn.lastReused()) << i;
    }
    const auto s = server.metricsSnapshot();
    EXPECT_EQ(s.accepted, 2u);
    EXPECT_EQ(s.keepAliveReused, 0u);
    server.shutdown();
}

/**
 * A raw unix-socket listener that answers each accepted connection
 * with the next scripted byte string (after reading a little of the
 * request), then closes — the shape of a worker dying mid-response.
 */
class ScriptedServer
{
  public:
    ScriptedServer(std::string path, std::vector<std::string> scripts)
        : path_(std::move(path)), scripts_(std::move(scripts))
    {
        fd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
        ::unlink(path_.c_str());
        sockaddr_un sa{};
        sa.sun_family = AF_UNIX;
        std::strncpy(sa.sun_path, path_.c_str(),
                     sizeof sa.sun_path - 1);
        if (fd_ < 0 ||
            ::bind(fd_, reinterpret_cast<sockaddr *>(&sa),
                   sizeof sa) != 0 ||
            ::listen(fd_, 8) != 0) {
            ADD_FAILURE() << "ScriptedServer setup failed on "
                          << path_;
            return;
        }
        thread_ = std::thread([this] {
            for (const std::string &script : scripts_) {
                const int c = ::accept(fd_, nullptr, nullptr);
                if (c < 0)
                    return;
                char buf[1024];
                (void)::recv(c, buf, sizeof buf, 0);
                if (!script.empty())
                    (void)::send(c, script.data(), script.size(),
                                 MSG_NOSIGNAL);
                ::close(c);
            }
        });
    }

    ~ScriptedServer()
    {
        ::close(fd_);
        if (thread_.joinable())
            thread_.join();
        ::unlink(path_.c_str());
    }

  private:
    std::string path_;
    std::vector<std::string> scripts_;
    int fd_ = -1;
    std::thread thread_;
};

TEST(ClientFailure, ResetAfterPartialResponseIsClassified)
{
    const std::string path = testSocketPath("partial");
    ScriptedServer scripted(
        path, {"HTTP/1.1 200 OK\r\nContent-Length: 64\r\n\r\nhalf"});
    const SocketAddress addr{path, "127.0.0.1", 0};

    HttpResponse resp;
    std::string error;
    GetFailure failure = GetFailure::None;
    EXPECT_FALSE(httpGet(addr, "/stats", &resp, &error, 5000,
                         &failure));
    // Truncated-but-parseable must never surface as success: the
    // classification is what lets callers know a retry is safe.
    EXPECT_EQ(failure, GetFailure::PartialResponse);
    EXPECT_NE(error.find("mid-response"), std::string::npos);
}

// ---------------------------------------------------------------------
// Result memo and per-request replay budgets
// ---------------------------------------------------------------------

TEST(ServerTest, ResultMemoWarmRepeatSkipsEngine)
{
    ServerOptions opts;
    opts.listen.unixPath = testSocketPath("memo");
    Server server(opts);
    std::atomic<int> runs{0};
    server.setCellRunnerForTest([&](const CellKey &cell) {
        runs.fetch_add(1);
        return syntheticOutcome(cell);
    });
    server.start();
    const SocketAddress addr{opts.listen.unixPath, "127.0.0.1", 0};
    const std::string target =
        "/run?workload=core%2Fmatmul&schemes=NP";

    HttpResponse cold, warm;
    std::string error;
    ASSERT_TRUE(httpGet(addr, target, &cold, &error)) << error;
    ASSERT_EQ(cold.status, 200) << cold.body;
    EXPECT_EQ(runs.load(), 1);
    EXPECT_EQ(server.resultMemo().size(), 1u);

    // The warm repeat answers from the memo: no engine run, same
    // bytes.
    ASSERT_TRUE(httpGet(addr, target, &warm, &error)) << error;
    ASSERT_EQ(warm.status, 200);
    EXPECT_EQ(warm.body, cold.body);
    EXPECT_EQ(runs.load(), 1);

    const auto s = server.metricsSnapshot();
    EXPECT_EQ(s.cellsRun, 1u);
    EXPECT_EQ(s.resultMemoHits, 1u);
    HttpResponse stats;
    ASSERT_TRUE(httpGet(addr, "/stats", &stats, &error)) << error;
    EXPECT_NE(stats.body.find("\"resultMemoHits\": 1"),
              std::string::npos);
    server.shutdown();
}

TEST(ServerTest, ResultMemoEvictsLeastRecentlyUsed)
{
    ServerOptions opts;
    opts.listen.unixPath = testSocketPath("memolru");
    opts.resultMemoCapacity = 1;
    Server server(opts);
    std::atomic<int> runs{0};
    server.setCellRunnerForTest([&](const CellKey &cell) {
        runs.fetch_add(1);
        return syntheticOutcome(cell);
    });
    server.start();
    const SocketAddress addr{opts.listen.unixPath, "127.0.0.1", 0};
    const std::string np = "/run?workload=core%2Fmatmul&schemes=NP";
    const std::string bp = "/run?workload=core%2Fmatmul&schemes=BP";

    HttpResponse resp;
    std::string error;
    ASSERT_TRUE(httpGet(addr, np, &resp, &error)) << error;
    ASSERT_TRUE(httpGet(addr, bp, &resp, &error)) << error;
    // BP evicted NP (capacity 1), so NP runs the engine again...
    ASSERT_TRUE(httpGet(addr, np, &resp, &error)) << error;
    EXPECT_EQ(runs.load(), 3);
    EXPECT_EQ(server.resultMemo().size(), 1u);
    // ...and the immediate repeat is the memo hit.
    ASSERT_TRUE(httpGet(addr, np, &resp, &error)) << error;
    EXPECT_EQ(runs.load(), 3);
    EXPECT_EQ(server.metricsSnapshot().resultMemoHits, 1u);
    server.shutdown();
}

TEST(ServerTest, ResultMemoDisabledRunsEveryTime)
{
    ServerOptions opts;
    opts.listen.unixPath = testSocketPath("nomemo");
    opts.resultMemoCapacity = 0;
    Server server(opts);
    std::atomic<int> runs{0};
    server.setCellRunnerForTest([&](const CellKey &cell) {
        runs.fetch_add(1);
        return syntheticOutcome(cell);
    });
    server.start();
    const SocketAddress addr{opts.listen.unixPath, "127.0.0.1", 0};
    const std::string target =
        "/run?workload=core%2Fmatmul&schemes=NP";

    HttpResponse resp;
    std::string error;
    ASSERT_TRUE(httpGet(addr, target, &resp, &error)) << error;
    ASSERT_TRUE(httpGet(addr, target, &resp, &error)) << error;
    EXPECT_EQ(runs.load(), 2);
    EXPECT_EQ(server.metricsSnapshot().resultMemoHits, 0u);
    EXPECT_EQ(server.resultMemo().size(), 0u);
    server.shutdown();
}

TEST(ServerTest, PerRequestBudgetKeepsBodyByteIdentical)
{
    // Real engine runs. The sharded/pipelined request must answer the
    // exact bytes of the serial one — the replay-mode diagnostics are
    // scrubbed, and the model outputs are bitwise-identical by the
    // sharded-replay guarantee. Memo off so every request really runs.
    ServerOptions opts;
    opts.listen.unixPath = testSocketPath("budget");
    opts.maxRequestThreads = 5;
    opts.resultMemoCapacity = 0;
    Server server(opts);
    server.start();
    const SocketAddress addr{opts.listen.unixPath, "127.0.0.1", 0};
    const std::string grid =
        "/run?workload=core%2Fmatmul&schemes=NP,BP";

    HttpResponse serial, sharded, both;
    std::string error;
    ASSERT_TRUE(httpGet(addr, grid, &serial, &error)) << error;
    ASSERT_EQ(serial.status, 200) << serial.body;
    ASSERT_TRUE(httpGet(addr, grid + "&replayThreads=4", &sharded,
                        &error))
        << error;
    ASSERT_EQ(sharded.status, 200) << sharded.body;
    ASSERT_TRUE(httpGet(addr, grid + "&pipeline=1&replayThreads=4",
                        &both, &error))
        << error;
    ASSERT_EQ(both.status, 200) << both.body;
    EXPECT_EQ(sharded.body, serial.body);
    EXPECT_EQ(both.body, serial.body);

    // And all of them match the CLI-equivalent Experiment run.
    sim::ResultSet rs = sim::Experiment()
                            .workload("core/matmul")
                            .schemes({protection::Scheme::NP,
                                      protection::Scheme::BP})
                            .threads(1)
                            .pipelined(false)
                            .run();
    EXPECT_EQ(serial.body, sim::toJson(rs));
    server.shutdown();
}

TEST(ServerTest, BudgetClampsUnderMaxRequestThreads)
{
    // Default maxRequestThreads = 1: a greedy ask degrades to serial
    // (the Experiment budget is a true cap) and still answers the
    // identical body.
    ServerOptions opts;
    opts.listen.unixPath = testSocketPath("clamp");
    opts.resultMemoCapacity = 0;
    Server server(opts);
    server.start();
    const SocketAddress addr{opts.listen.unixPath, "127.0.0.1", 0};
    const std::string grid = "/run?workload=core%2Fmatmul&schemes=NP";

    HttpResponse serial, greedy;
    std::string error;
    ASSERT_TRUE(httpGet(addr, grid, &serial, &error)) << error;
    ASSERT_TRUE(httpGet(addr, grid + "&pipeline=1&replayThreads=8",
                        &greedy, &error))
        << error;
    ASSERT_EQ(greedy.status, 200) << greedy.body;
    EXPECT_EQ(greedy.body, serial.body);
    server.shutdown();
}

TEST(ServerTest, BadBudgetParamsAnswer400)
{
    ServerOptions opts;
    opts.listen.unixPath = testSocketPath("badbudget");
    Server server(opts);
    server.setCellRunnerForTest(syntheticOutcome);
    server.start();
    const SocketAddress addr{opts.listen.unixPath, "127.0.0.1", 0};
    const std::string grid = "/run?workload=core%2Fmatmul&schemes=NP";

    HttpResponse resp;
    std::string error;
    ASSERT_TRUE(httpGet(addr, grid + "&pipeline=2", &resp, &error))
        << error;
    EXPECT_EQ(resp.status, 400);
    EXPECT_NE(resp.body.find("pipeline="), std::string::npos);
    ASSERT_TRUE(
        httpGet(addr, grid + "&replayThreads=0", &resp, &error))
        << error;
    EXPECT_EQ(resp.status, 400);
    ASSERT_TRUE(
        httpGet(addr, grid + "&replayThreads=abc", &resp, &error))
        << error;
    EXPECT_EQ(resp.status, 400);
    EXPECT_NE(resp.body.find("replayThreads="), std::string::npos);
    EXPECT_EQ(server.metricsSnapshot().cellsRun, 0u);
    server.shutdown();
}

TEST(ClientFailure, PartialResponseIsRetriedToSuccess)
{
    const std::string good =
        httpResponse(200, "application/json", "{\"ok\": true}\n");
    const std::string path = testSocketPath("partial-retry");
    ScriptedServer scripted(
        path,
        {"HTTP/1.1 200 OK\r\nContent-Length: 64\r\n\r\nhalf", good});
    const SocketAddress addr{path, "127.0.0.1", 0};

    RetryOptions retry;
    retry.retries = 2;
    retry.backoffMs = 1;
    retry.seed = 7;
    HttpResponse resp;
    std::string error;
    int attempts = 0;
    RetryStats stats;
    ASSERT_TRUE(httpGetRetry(addr, "/stats", &resp, &error, 5000,
                             retry, &attempts, &stats))
        << error;
    EXPECT_EQ(resp.status, 200);
    EXPECT_EQ(attempts, 2);
    EXPECT_EQ(stats.attempts, 2u);
    EXPECT_EQ(stats.partialResponses, 1u);
}

} // namespace
} // namespace mgx::serve
