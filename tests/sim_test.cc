/**
 * @file
 * Performance-model and runner tests: compute/memory overlap, clock
 * conversion, scheme comparison plumbing, and platform definitions.
 */

#include <gtest/gtest.h>

#include "core/matmul_kernel.h"
#include "sim/runner.h"

namespace mgx::sim {
namespace {

using core::LogicalAccess;
using core::Phase;
using core::Trace;
using protection::ProtectionConfig;
using protection::Scheme;

Trace
syntheticTrace(u64 phases, Cycles compute, u64 bytes)
{
    Trace trace;
    for (u64 i = 0; i < phases; ++i) {
        Phase p;
        // std::string + rvalue here trips GCC 12's -Wrestrict false
        // positive (PR105651) once inlining gets aggressive enough;
        // building the name in place sidesteps it.
        p.name = "p";
        p.name += std::to_string(i);
        p.computeCycles = compute;
        p.accesses.push_back({i * (64ull << 20), bytes, 1, AccessType::Read,
                              DataClass::Generic, 0});
        trace.push_back(std::move(p));
    }
    return trace;
}

RunResult
runNp(const Trace &trace, double accel_mhz = 1200.0)
{
    dram::DramSystem dram(dram::ddr4_2400(1));
    ProtectionConfig cfg;
    cfg.scheme = Scheme::NP;
    protection::ProtectionEngine engine(cfg, &dram);
    PerfModel model(&engine, accel_mhz);
    return model.run(trace);
}

TEST(PerfModel, ComputeBoundWorkloadHidesMemory)
{
    // Tiny traffic, huge compute: total ~= sum of compute.
    RunResult r = runNp(syntheticTrace(10, 100000, 64));
    EXPECT_NEAR(static_cast<double>(r.totalCycles), 10.0 * 100000,
                0.05 * 10 * 100000);
}

TEST(PerfModel, MemoryBoundWorkloadTracksDram)
{
    // Huge traffic, no compute: total ~= memory stream time.
    RunResult r = runNp(syntheticTrace(4, 1, 4 << 20));
    EXPECT_GT(r.memoryCycles, r.computeCycles * 100);
    EXPECT_GE(r.totalCycles, r.memoryCycles);
}

TEST(PerfModel, OverlapBeatsSerialExecution)
{
    // With double buffering, total < compute + memory.
    RunResult r = runNp(syntheticTrace(8, 40000, 2 << 20));
    EXPECT_LT(r.totalCycles, r.computeCycles + r.memoryCycles);
    // And at least the max of both.
    EXPECT_GE(r.totalCycles,
              std::max(r.computeCycles, r.memoryCycles));
}

TEST(PerfModel, ClockConversionScalesCompute)
{
    // The same trace on a half-speed accelerator needs 2x the
    // controller cycles for compute.
    RunResult fast = runNp(syntheticTrace(4, 50000, 64), 1200.0);
    RunResult slow = runNp(syntheticTrace(4, 50000, 64), 600.0);
    EXPECT_NEAR(static_cast<double>(slow.computeCycles),
                2.0 * static_cast<double>(fast.computeCycles), 8.0);
}

TEST(PerfModel, SecondsFollowControllerClock)
{
    RunResult r = runNp(syntheticTrace(1, 1200000, 64));
    EXPECT_NEAR(r.seconds, 0.001, 0.0001); // 1.2M cycles @ 1.2 GHz
}

TEST(Runner, CompareSchemesNormalizes)
{
    core::MatMulParams params;
    params.m = params.n = params.k = 256;
    params.kTiles = 2;
    core::MatMulKernel kernel(params);
    Trace trace = kernel.generate();

    ProtectionConfig base;
    SchemeComparison cmp =
        compareSchemes(trace, edgePlatform(), base, allSchemes());
    ASSERT_EQ(cmp.results.size(), 5u);
    EXPECT_DOUBLE_EQ(cmp.normalizedTime(Scheme::NP), 1.0);
    EXPECT_GE(cmp.normalizedTime(Scheme::MGX), 1.0);
    EXPECT_GE(cmp.normalizedTime(Scheme::BP),
              cmp.normalizedTime(Scheme::MGX));
    EXPECT_GT(cmp.trafficIncrease(Scheme::BP),
              cmp.trafficIncrease(Scheme::MGX));
}

TEST(Runner, PlatformDefinitionsMatchPaper)
{
    EXPECT_EQ(cloudPlatform().dram.channels, 4u);
    EXPECT_DOUBLE_EQ(cloudPlatform().clockMhz, 700.0);
    EXPECT_EQ(edgePlatform().dram.channels, 1u);
    EXPECT_DOUBLE_EQ(edgePlatform().clockMhz, 900.0);
    EXPECT_DOUBLE_EQ(graphPlatform().clockMhz, 800.0);
}

TEST(Runner, FreshStatePerScheme)
{
    // Two identical compareSchemes calls must agree exactly: no state
    // leaks between runs.
    Trace trace = syntheticTrace(4, 1000, 1 << 20);
    ProtectionConfig base;
    SchemeComparison a =
        compareSchemes(trace, edgePlatform(), base, trafficSchemes());
    SchemeComparison b =
        compareSchemes(trace, edgePlatform(), base, trafficSchemes());
    for (auto scheme : trafficSchemes()) {
        EXPECT_EQ(a.results[scheme].totalCycles,
                  b.results[scheme].totalCycles);
    }
}

} // namespace
} // namespace mgx::sim
