/**
 * @file
 * Functional security tests: encryption round-trips, MAC detection of
 * spoofing / splicing / replay, and the baseline's Merkle tree
 * catching the VN replay that plain MACs cannot.
 */

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "protection/secure_memory.h"

namespace mgx::protection {
namespace {

SecureMemoryConfig
testConfig(u32 gran = 512)
{
    SecureMemoryConfig cfg;
    for (int i = 0; i < 16; ++i) {
        cfg.encKey[static_cast<std::size_t>(i)] = static_cast<u8>(i);
        cfg.macKey[static_cast<std::size_t>(i)] =
            static_cast<u8>(0xf0 + i);
    }
    cfg.macGranularity = gran;
    return cfg;
}

std::vector<u8>
pattern(std::size_t n, u8 seed = 1)
{
    std::vector<u8> v(n);
    for (std::size_t i = 0; i < n; ++i)
        v[i] = static_cast<u8>(seed + i * 7);
    return v;
}

// -- MGX-semantics memory -------------------------------------------------------

TEST(SecureMemory, WriteReadRoundTrip)
{
    SecureMemory mem(testConfig());
    auto data = pattern(1024);
    mem.write(0x2000, data, 5);
    std::vector<u8> out(1024);
    ASSERT_TRUE(mem.read(0x2000, out, 5));
    EXPECT_EQ(out, data);
}

TEST(SecureMemory, SubrangeRead)
{
    SecureMemory mem(testConfig());
    auto data = pattern(1024);
    mem.write(0x2000, data, 5);
    std::vector<u8> out(100);
    ASSERT_TRUE(mem.read(0x2000 + 300, out, 5));
    EXPECT_TRUE(std::equal(out.begin(), out.end(), data.begin() + 300));
}

TEST(SecureMemory, WrongVnFailsVerification)
{
    SecureMemory mem(testConfig());
    mem.write(0, pattern(512), 5);
    std::vector<u8> out(512);
    EXPECT_FALSE(mem.read(0, out, 6));
    // Output is scrubbed on failure.
    EXPECT_EQ(std::accumulate(out.begin(), out.end(), 0), 0);
}

TEST(SecureMemory, RewriteWithHigherVn)
{
    SecureMemory mem(testConfig());
    mem.write(0, pattern(512, 1), 5);
    mem.write(0, pattern(512, 2), 6);
    std::vector<u8> out(512);
    ASSERT_TRUE(mem.read(0, out, 6));
    EXPECT_EQ(out, pattern(512, 2));
    // The old VN no longer verifies (the tag moved on).
    EXPECT_FALSE(mem.read(0, out, 5));
}

TEST(SecureMemory, CiphertextTamperDetected)
{
    SecureMemory mem(testConfig());
    mem.write(0, pattern(512), 5);
    mem.tamperCiphertext(17);
    std::vector<u8> out(512);
    EXPECT_FALSE(mem.read(0, out, 5));
}

TEST(SecureMemory, TagTamperDetected)
{
    SecureMemory mem(testConfig());
    mem.write(0, pattern(512), 5);
    mem.tamperTag(0);
    std::vector<u8> out(512);
    EXPECT_FALSE(mem.read(0, out, 5));
}

TEST(SecureMemory, ReplayOfStaleBlockDetected)
{
    SecureMemory mem(testConfig());
    mem.write(0, pattern(512, 1), 5);
    auto snapshot = mem.snapshotBlock(0); // attacker saves v5 state
    mem.write(0, pattern(512, 2), 6);    // victim moves to v6
    mem.restoreBlock(snapshot);           // attacker replays v5
    std::vector<u8> out(512);
    // The kernel regenerates VN 6 on-chip; the stale pair fails.
    EXPECT_FALSE(mem.read(0, out, 6));
}

TEST(SecureMemory, SpliceToOtherAddressDetected)
{
    SecureMemory mem(testConfig());
    mem.write(0, pattern(512, 1), 5);
    mem.write(512, pattern(512, 2), 5);
    mem.spliceBlock(0, 512); // move block 0's ciphertext+tag to 512
    std::vector<u8> out(512);
    // The MAC binds the address, so the relocated block fails.
    EXPECT_FALSE(mem.read(512, out, 5));
}

TEST(SecureMemory, MultipleGranularities)
{
    for (u32 gran : {64u, 128u, 512u, 4096u}) {
        SecureMemory mem(testConfig(gran));
        auto data = pattern(2 * gran);
        mem.write(0, data, 1);
        std::vector<u8> out(2 * gran);
        ASSERT_TRUE(mem.read(0, out, 1)) << "gran=" << gran;
        EXPECT_EQ(out, data);
    }
}

TEST(SecureMemory, SharedVnAcrossAddressesIsSafe)
{
    // The paper's point: one VN for many locations is fine because the
    // counter embeds the address. Same plaintext at two addresses must
    // produce different ciphertext.
    SecureMemory mem(testConfig());
    auto data = pattern(512);
    mem.write(0, data, 9);
    mem.write(4096, data, 9);
    auto s0 = mem.snapshotBlock(0);
    auto s1 = mem.snapshotBlock(4096);
    EXPECT_NE(s0.ciphertext, s1.ciphertext);
    std::vector<u8> out(512);
    ASSERT_TRUE(mem.read(0, out, 9));
    EXPECT_EQ(out, data);
    ASSERT_TRUE(mem.read(4096, out, 9));
    EXPECT_EQ(out, data);
}

// -- Baseline memory -------------------------------------------------------------

TEST(BaselineSecureMemory, RoundTrip)
{
    BaselineSecureMemory mem(testConfig(), 1 << 20);
    auto data = pattern(256);
    mem.write(0x400, data);
    std::vector<u8> out(256);
    ASSERT_TRUE(mem.read(0x400, out));
    EXPECT_EQ(out, data);
}

TEST(BaselineSecureMemory, OverwriteBumpsStoredVn)
{
    BaselineSecureMemory mem(testConfig(), 1 << 20);
    mem.write(0, pattern(64, 1));
    mem.write(0, pattern(64, 2));
    std::vector<u8> out(64);
    ASSERT_TRUE(mem.read(0, out));
    EXPECT_EQ(out, pattern(64, 2));
}

TEST(BaselineSecureMemory, CiphertextTamperDetected)
{
    BaselineSecureMemory mem(testConfig(), 1 << 20);
    mem.write(0, pattern(64));
    mem.tamperCiphertext(3);
    std::vector<u8> out(64);
    EXPECT_FALSE(mem.read(0, out));
}

TEST(BaselineSecureMemory, VnTamperCaughtByTree)
{
    BaselineSecureMemory mem(testConfig(), 1 << 20);
    mem.write(0, pattern(64));
    mem.tamperVn(0); // attacker edits the off-chip VN array
    std::vector<u8> out(64);
    EXPECT_FALSE(mem.read(0, out));
}

TEST(BaselineSecureMemory, FullReplayCaughtOnlyByTree)
{
    // The attack that motivates the integrity tree: restore ciphertext,
    // tag AND stored VN to a consistent stale triple.
    BaselineSecureMemory mem(testConfig(), 1 << 20);
    mem.write(0, pattern(64, 1));
    auto snap = mem.snapshotBlock(0);
    mem.write(0, pattern(64, 2));
    mem.restoreBlock(snap);

    std::vector<u8> out(64);
    // With the tree: detected.
    EXPECT_FALSE(mem.read(0, out));

    // Without the tree the stale triple is self-consistent and the
    // replay silently succeeds — this is why BP must pay for the tree
    // and why MGX's on-chip VNs remove that cost.
    mem.setTreeCheckEnabled(false);
    ASSERT_TRUE(mem.read(0, out));
    EXPECT_EQ(out, pattern(64, 1));
}

TEST(BaselineSecureMemory, UnwrittenReadsAsZero)
{
    BaselineSecureMemory mem(testConfig(), 1 << 20);
    std::vector<u8> out(64, 0xff);
    ASSERT_TRUE(mem.read(0x8000, out));
    EXPECT_EQ(std::accumulate(out.begin(), out.end(), 0), 0);
}

} // namespace
} // namespace mgx::protection
