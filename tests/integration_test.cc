/**
 * @file
 * Cross-module integration tests reproducing the paper's headline
 * claims at reduced scale:
 *
 *  - DNN inference/training: MGX near-zero overhead, BP 1.2-1.5x,
 *    ablations ordered MGX < MGX_VN, MGX_MAC < BP.
 *  - Graph: same orderings on a scaled benchmark graph.
 *  - A functional tiled MatMul over SecureMemory that computes the
 *    correct product while the kernel regenerates every VN.
 *  - Dynamic pruning (§VII-B): sparse features round-trip with the
 *    shared VN_F; skipped VNs cause no harm.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "core/matmul_kernel.h"
#include "dnn/dnn_kernel.h"
#include "dnn/models.h"
#include "graph/graph_gen.h"
#include "graph/graph_kernel.h"
#include "protection/secure_memory.h"
#include "sim/runner.h"

namespace mgx {
namespace {

using protection::ProtectionConfig;
using protection::Scheme;
using sim::SchemeComparison;

// -- DNN end-to-end -------------------------------------------------------------

SchemeComparison
runDnn(const dnn::Model &model, dnn::DnnTask task, bool edge)
{
    dnn::DnnKernel kernel(model, edge ? dnn::edgeAccel()
                                      : dnn::cloudAccel(),
                          task);
    core::Trace trace = kernel.generate();
    ProtectionConfig base;
    return sim::compareSchemes(trace,
                               edge ? sim::edgePlatform()
                                    : sim::cloudPlatform(),
                               base, sim::allSchemes());
}

TEST(IntegrationDnn, AlexNetCloudInferenceOverheads)
{
    // Cloud is memory-bound (600+ MACs/byte roofline), so protection
    // overhead shows up fully in execution time there.
    SchemeComparison cmp =
        runDnn(dnn::alexnet(), dnn::DnnTask::Inference, false);
    const double mgx = cmp.normalizedTime(Scheme::MGX);
    const double bp = cmp.normalizedTime(Scheme::BP);
    EXPECT_LT(mgx, 1.10);       // near-zero overhead
    EXPECT_GT(bp, 1.08);        // baseline pays real cost
    EXPECT_LT(bp, 1.60);
    EXPECT_LE(mgx, cmp.normalizedTime(Scheme::MGX_VN) + 1e-9);
    EXPECT_LE(cmp.normalizedTime(Scheme::MGX_MAC), bp + 1e-9);
}

TEST(IntegrationDnn, EdgeComputeBoundHidesMoreOverhead)
{
    // The Edge config has 64x fewer PEs: compute hides a larger share
    // of the metadata traffic, so BP's slowdown shrinks vs Cloud.
    SchemeComparison edge =
        runDnn(dnn::alexnet(), dnn::DnnTask::Inference, true);
    SchemeComparison cloud =
        runDnn(dnn::alexnet(), dnn::DnnTask::Inference, false);
    EXPECT_LT(edge.normalizedTime(Scheme::BP),
              cloud.normalizedTime(Scheme::BP));
    EXPECT_LT(edge.normalizedTime(Scheme::MGX), 1.05);
}

TEST(IntegrationDnn, ResNetCloudTrainingOrdering)
{
    SchemeComparison cmp =
        runDnn(dnn::resnet50(), dnn::DnnTask::Training, false);
    EXPECT_LT(cmp.normalizedTime(Scheme::MGX),
              cmp.normalizedTime(Scheme::BP));
    EXPECT_GT(cmp.trafficIncrease(Scheme::BP), 1.15);
    EXPECT_LT(cmp.trafficIncrease(Scheme::MGX), 1.08);
}

TEST(IntegrationDnn, DlrmIsWorstCaseForBaseline)
{
    // DLRM's random embedding gathers defeat the VN/MAC cache.
    SchemeComparison dlrm =
        runDnn(dnn::dlrm(1u << 18, 64), dnn::DnnTask::Inference, false);
    SchemeComparison vgg =
        runDnn(dnn::vgg16(), dnn::DnnTask::Inference, false);
    EXPECT_GT(dlrm.trafficIncrease(Scheme::BP),
              vgg.trafficIncrease(Scheme::BP));
}

// -- Graph end-to-end -------------------------------------------------------------

TEST(IntegrationGraph, PageRankOverheadOrdering)
{
    graph::GraphSpec spec{"test", 200000, 2000000, 1, 1.8};
    graph::GraphTiles tiles =
        graph::buildTiles(spec, 1 << 17, 1 << 17, 3);
    graph::GraphKernel kernel(tiles, graph::GraphAlgorithm::PageRank,
                              3);
    core::Trace trace = kernel.generate();
    ProtectionConfig base;
    SchemeComparison cmp = sim::compareSchemes(
        trace, sim::graphPlatform(), base, sim::allSchemes());

    const double mgx = cmp.normalizedTime(Scheme::MGX);
    const double bp = cmp.normalizedTime(Scheme::BP);
    EXPECT_LT(mgx, 1.10);
    EXPECT_GT(bp, mgx);
    EXPECT_LT(cmp.trafficIncrease(Scheme::MGX), 1.05);
    EXPECT_GT(cmp.trafficIncrease(Scheme::BP), 1.15);
}

// -- functional MatMul over SecureMemory --------------------------------------------

TEST(IntegrationFunctional, TiledMatMulOverSecureMemory)
{
    // A real 8x8 integer MatMul, tiled 2x2x2, where every DRAM-level
    // read/write goes through encryption + MAC with kernel-tracked VNs.
    constexpr int kN = 8;
    constexpr int kTile = 4;
    using Mat = std::vector<i32>;

    Mat a(kN * kN), b(kN * kN), c_ref(kN * kN, 0);
    for (int i = 0; i < kN * kN; ++i) {
        a[static_cast<std::size_t>(i)] = i % 7 - 3;
        b[static_cast<std::size_t>(i)] = (i * 5) % 11 - 5;
    }
    for (int i = 0; i < kN; ++i)
        for (int j = 0; j < kN; ++j)
            for (int k = 0; k < kN; ++k)
                c_ref[static_cast<std::size_t>(i * kN + j)] +=
                    a[static_cast<std::size_t>(i * kN + k)] *
                    b[static_cast<std::size_t>(k * kN + j)];

    protection::SecureMemoryConfig mcfg;
    mcfg.encKey[3] = 7;
    mcfg.macKey[5] = 9;
    mcfg.macGranularity = 64; // one 4x4 i32 tile = 64 bytes
    protection::SecureMemory mem(mcfg);

    // Tile layout: row-major tiles of 4x4 at 64-byte blocks.
    auto tile_bytes = [](const Mat &m, int ti, int tj) {
        std::vector<u8> bytes(64);
        for (int r = 0; r < kTile; ++r)
            for (int col = 0; col < kTile; ++col) {
                i32 v = m[static_cast<std::size_t>(
                    (ti * kTile + r) * kN + tj * kTile + col)];
                std::memcpy(&bytes[static_cast<std::size_t>(
                                (r * kTile + col) * 4)],
                            &v, 4);
            }
        return bytes;
    };
    auto addr_a = [](int ti, int tj) {
        return static_cast<Addr>(0x0000 + (ti * 2 + tj) * 64);
    };
    auto addr_b = [](int ti, int tj) {
        return static_cast<Addr>(0x1000 + (ti * 2 + tj) * 64);
    };
    auto addr_c = [](int ti, int tj) {
        return static_cast<Addr>(0x2000 + (ti * 2 + tj) * 64);
    };

    // Session setup: operands written with VN n = 1.
    const Vn n = 1;
    for (int ti = 0; ti < 2; ++ti)
        for (int tj = 0; tj < 2; ++tj) {
            mem.write(addr_a(ti, tj), tile_bytes(a, ti, tj), n);
            mem.write(addr_b(ti, tj), tile_bytes(b, ti, tj), n);
        }

    // Fig. 4 schedule: K rounds with VN[C] incrementing per round.
    Vn vn_c = n;
    for (int k = 0; k < 2; ++k) {
        const Vn vn_read = vn_c;
        const Vn vn_write = ++vn_c;
        for (int ti = 0; ti < 2; ++ti) {
            for (int tj = 0; tj < 2; ++tj) {
                std::vector<u8> abuf(64), bbuf(64), cbuf(64, 0);
                ASSERT_TRUE(mem.read(addr_a(ti, k), abuf, n));
                ASSERT_TRUE(mem.read(addr_b(k, tj), bbuf, n));
                if (k > 0) {
                    ASSERT_TRUE(
                        mem.read(addr_c(ti, tj), cbuf, vn_read));
                }
                // Multiply-accumulate the 4x4 tiles.
                i32 at[16], bt[16], ct[16];
                std::memcpy(at, abuf.data(), 64);
                std::memcpy(bt, bbuf.data(), 64);
                std::memcpy(ct, cbuf.data(), 64);
                for (int r = 0; r < 4; ++r)
                    for (int col = 0; col < 4; ++col)
                        for (int kk = 0; kk < 4; ++kk)
                            ct[r * 4 + col] +=
                                at[r * 4 + kk] * bt[kk * 4 + col];
                std::vector<u8> out(64);
                std::memcpy(out.data(), ct, 64);
                mem.write(addr_c(ti, tj), out, vn_write);
            }
        }
    }

    // Read back the final product and compare with the reference.
    for (int ti = 0; ti < 2; ++ti)
        for (int tj = 0; tj < 2; ++tj) {
            std::vector<u8> cbuf(64);
            ASSERT_TRUE(mem.read(addr_c(ti, tj), cbuf, vn_c));
            EXPECT_EQ(cbuf, tile_bytes(c_ref, ti, tj))
                << "tile " << ti << "," << tj;
        }

    // Stale partial results (round-1 ciphertext) must not be readable
    // as final results.
    std::vector<u8> cbuf(64);
    EXPECT_FALSE(mem.read(addr_c(0, 0), cbuf, vn_c - 1));
}

// -- dynamic pruning (§VII-B) --------------------------------------------------------

TEST(IntegrationFunctional, DynamicPruningSharedVn)
{
    // A layer writes only its unpruned tiles with the shared VN_F; the
    // next layer reads exactly those tiles with the same VN. Skipped
    // VN/tile pairs are simply never used — no reuse, no gap issues.
    protection::SecureMemoryConfig mcfg;
    mcfg.macGranularity = 64;
    protection::SecureMemory mem(mcfg);

    const Vn vn_f = 42;
    std::vector<int> unpruned = {0, 2, 3, 7, 9}; // survives gating
    auto tile_data = [](int t) {
        return std::vector<u8>(64, static_cast<u8>(0x30 + t));
    };
    for (int t : unpruned)
        mem.write(static_cast<Addr>(t) * 64, tile_data(t), vn_f);

    for (int t : unpruned) {
        std::vector<u8> out(64);
        ASSERT_TRUE(
            mem.read(static_cast<Addr>(t) * 64, out, vn_f));
        EXPECT_EQ(out, tile_data(t));
    }
    // A pruned (never-written) tile fails verification if read — the
    // accelerator's index metadata prevents that read in practice.
    std::vector<u8> out(64);
    EXPECT_FALSE(mem.read(4 * 64, out, vn_f));
}

} // namespace
} // namespace mgx
