/**
 * @file
 * SHA-256 NIST known-answer tests and Merkle-tree integrity
 * properties, including parameterized arity sweeps and tamper
 * detection at every tree level.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "crypto/merkle_tree.h"
#include "crypto/sha256.h"

namespace mgx::crypto {
namespace {

std::string
digestToHex(const Digest &d)
{
    static const char *hex = "0123456789abcdef";
    std::string s;
    for (u8 b : d) {
        s.push_back(hex[b >> 4]);
        s.push_back(hex[b & 0xf]);
    }
    return s;
}

std::vector<u8>
bytesOf(const char *s)
{
    return {reinterpret_cast<const u8 *>(s),
            reinterpret_cast<const u8 *>(s) + std::strlen(s)};
}

TEST(Sha256, EmptyString)
{
    EXPECT_EQ(digestToHex(sha256({})),
              "e3b0c44298fc1c149afbf4c8996fb924"
              "27ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, Abc)
{
    EXPECT_EQ(digestToHex(sha256(bytesOf("abc"))),
              "ba7816bf8f01cfea414140de5dae2223"
              "b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockMessage)
{
    EXPECT_EQ(
        digestToHex(sha256(bytesOf(
            "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"))),
        "248d6a61d20638b8e5c026930c3e6039"
        "a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, ExactlyOneBlockOfPadBoundary)
{
    // 56 bytes forces the two-block padding path.
    std::vector<u8> msg(56, 'a');
    Digest d1 = sha256(msg);
    msg.push_back('a');
    Digest d2 = sha256(msg);
    EXPECT_NE(d1, d2);
}

TEST(Sha256, Prefix64)
{
    Digest d = sha256(bytesOf("abc"));
    EXPECT_EQ(digestPrefix64(d), 0xba7816bf8f01cfeaull);
}

// -- Merkle tree ---------------------------------------------------------------

TEST(MerkleTree, FreshTreeVerifiesEmptyLeaves)
{
    MerkleTree tree(10, 8);
    EXPECT_TRUE(tree.verifyLeaf(0, {}));
    EXPECT_TRUE(tree.verifyLeaf(9, {}));
}

TEST(MerkleTree, UpdateThenVerify)
{
    MerkleTree tree(64, 8);
    auto data = bytesOf("version numbers");
    tree.updateLeaf(7, data);
    EXPECT_TRUE(tree.verifyLeaf(7, data));
    EXPECT_TRUE(tree.verifyLeaf(8, {}));
}

TEST(MerkleTree, WrongDataFailsVerification)
{
    MerkleTree tree(64, 8);
    tree.updateLeaf(7, bytesOf("correct"));
    EXPECT_FALSE(tree.verifyLeaf(7, bytesOf("tampered")));
}

TEST(MerkleTree, RootChangesOnUpdate)
{
    MerkleTree tree(64, 8);
    Digest before = tree.root();
    tree.updateLeaf(0, bytesOf("x"));
    EXPECT_NE(before, tree.root());
}

TEST(MerkleTree, TamperedLeafNodeDetected)
{
    MerkleTree tree(64, 8);
    auto data = bytesOf("payload");
    tree.updateLeaf(3, data);
    tree.tamperNode(0, 4); // a stored sibling digest in "DRAM"
    // Verifying leaf 4 itself recomputes its digest from the (empty)
    // data, so the corrupted *stored* copy is not on that path...
    EXPECT_TRUE(tree.verifyLeaf(4, {}));
    // ...but any sibling verification consumes the stored copy and
    // must fail: the attacker cannot forge a consistent group.
    EXPECT_FALSE(tree.verifyLeaf(3, data));
}

TEST(MerkleTree, TamperedInteriorNodeDetected)
{
    MerkleTree tree(512, 8); // depth 3
    ASSERT_GE(tree.depth(), 3u);
    auto data = bytesOf("vn-line");
    tree.updateLeaf(100, data);
    tree.tamperNode(1, 100 / 8);
    EXPECT_FALSE(tree.verifyLeaf(100, data));
}

TEST(MerkleTree, DepthGrowsLogarithmically)
{
    EXPECT_EQ(MerkleTree(8, 8).depth(), 1u);
    EXPECT_EQ(MerkleTree(9, 8).depth(), 2u);
    EXPECT_EQ(MerkleTree(64, 8).depth(), 2u);
    EXPECT_EQ(MerkleTree(65, 8).depth(), 3u);
    EXPECT_EQ(MerkleTree(512, 8).depth(), 3u);
}

/** Arity sweep: the integrity property must hold for any fan-out. */
class MerkleArityTest : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(MerkleArityTest, UpdateVerifyAndTamper)
{
    const unsigned arity = GetParam();
    MerkleTree tree(100, arity);
    for (std::size_t i = 0; i < 100; i += 7) {
        auto data = bytesOf(("leaf" + std::to_string(i)).c_str());
        tree.updateLeaf(i, data);
        EXPECT_TRUE(tree.verifyLeaf(i, data));
    }
    auto data0 = bytesOf("leaf0");
    EXPECT_TRUE(tree.verifyLeaf(0, data0));
    // Corrupt leaf 0's stored digest: every sibling in its group now
    // fails to verify because the group hash no longer matches.
    tree.tamperNode(0, 0);
    EXPECT_FALSE(tree.verifyLeaf(1, {}));
}

INSTANTIATE_TEST_SUITE_P(Arities, MerkleArityTest,
                         ::testing::Values(2u, 4u, 8u, 16u));

} // namespace
} // namespace mgx::crypto
