/**
 * @file
 * Fleet-layer tests: consistent-hash ring stability under node churn
 * (only the removed node's keys move), routing-key normalization,
 * proxy routing / failover order / stats aggregation against
 * in-process serve::Servers, supervisor flap breaking with an
 * injected spawner, and one end-to-end integration test that forks
 * real mgx_serve workers, SIGKILLs the owner of an in-flight cell
 * under sustained load, and requires every answered body to stay
 * byte-identical to the Experiment API reference (what
 * `mgx_run --no-pipeline --json` prints).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <filesystem>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <sys/stat.h>
#include <unistd.h>

#include "fleet/backend.h"
#include "fleet/fleet.h"
#include "fleet/hash_ring.h"
#include "fleet/proxy.h"
#include "fleet/supervisor.h"
#include "serve/client.h"
#include "serve/server.h"
#include "sim/report.h"

namespace mgx::fleet {
namespace {

namespace fs = std::filesystem;

std::string
testSocketPath(const std::string &tag)
{
    return "/tmp/mgx-fleet-test-" + std::to_string(::getpid()) + "-" +
           tag + ".sock";
}

struct TempDir
{
    explicit TempDir(const char *tag)
        : path(fs::temp_directory_path() /
               ("mgx-fleet-test-" + std::to_string(::getpid()) + "-" +
                tag))
    {
        fs::create_directories(path);
    }
    ~TempDir() { fs::remove_all(path); }
    fs::path path;
};

template <typename Pred>
bool
eventually(Pred pred, int timeout_ms = 10000)
{
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(timeout_ms);
    while (!pred()) {
        if (std::chrono::steady_clock::now() > deadline)
            return false;
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    return true;
}

serve::CellOutcome
syntheticOutcome(const serve::CellKey &cell)
{
    serve::CellOutcome out;
    out.record.key = {cell.workload, cell.platform.name, cell.scheme};
    out.record.result.totalCycles = 1000;
    return out;
}

serve::HttpRequest
parseRequest(const std::string &raw)
{
    serve::HttpRequestParser p;
    EXPECT_EQ(p.feed(raw.data(), raw.size()),
              serve::HttpRequestParser::Status::Complete)
        << raw;
    return p.request();
}

// ---------------------------------------------------------------------
// Hash ring
// ---------------------------------------------------------------------

TEST(HashRing, SingleNodeOwnsEverything)
{
    HashRing ring;
    EXPECT_EQ(ring.owner("anything"), "");
    EXPECT_TRUE(ring.route("anything").empty());

    ring.add("w0");
    EXPECT_EQ(ring.size(), 1u);
    for (int i = 0; i < 32; ++i)
        EXPECT_EQ(ring.owner("key" + std::to_string(i)), "w0");
}

TEST(HashRing, OnlyTheRemovedNodesKeysMove)
{
    constexpr int kNodes = 5;
    constexpr int kKeys = 2000;
    HashRing ring;
    for (int n = 0; n < kNodes; ++n)
        ring.add("w" + std::to_string(n));

    std::map<std::string, std::string> before;
    for (int i = 0; i < kKeys; ++i) {
        const std::string key = "cell/" + std::to_string(i);
        before[key] = ring.owner(key);
    }

    ring.remove("w2");
    EXPECT_FALSE(ring.contains("w2"));
    int moved = 0;
    for (const auto &[key, owner] : before) {
        const std::string now = ring.owner(key);
        if (owner == "w2") {
            // Orphaned keys must land somewhere else...
            EXPECT_NE(now, "w2");
            ++moved;
        } else {
            // ...and every other key must not notice the churn.
            EXPECT_EQ(now, owner) << key;
        }
    }
    // ~K/N of the keyspace belonged to the removed node. Wide
    // tolerance: vnode placement is hashed, not perfectly even.
    EXPECT_GT(moved, kKeys / (kNodes * 4));
    EXPECT_LT(moved, kKeys / 2);

    // Re-adding the node restores the original assignment exactly.
    ring.add("w2");
    for (const auto &[key, owner] : before)
        EXPECT_EQ(ring.owner(key), owner) << key;
}

TEST(HashRing, RouteIsTheDistinctFailoverOrder)
{
    HashRing ring;
    for (int n = 0; n < 4; ++n)
        ring.add("w" + std::to_string(n));

    for (int i = 0; i < 64; ++i) {
        const std::string key = "cell/" + std::to_string(i);
        const std::vector<std::string> order = ring.route(key);
        ASSERT_EQ(order.size(), 4u) << key;
        EXPECT_EQ(order[0], ring.owner(key)) << key;
        const std::set<std::string> distinct(order.begin(),
                                             order.end());
        EXPECT_EQ(distinct.size(), 4u) << key;
    }
}

// ---------------------------------------------------------------------
// Routing key
// ---------------------------------------------------------------------

TEST(RoutingKey, WorkloadOrderDoesNotChangeTheKey)
{
    const auto a = parseRequest(
        "GET /run?workload=core%2Fmatmul&workload=dnn%2Flenet"
        "&schemes=NP,BP HTTP/1.1\r\n\r\n");
    const auto b = parseRequest(
        "GET /run?workload=dnn%2Flenet&workload=core%2Fmatmul"
        "&schemes=NP,BP HTTP/1.1\r\n\r\n");
    EXPECT_EQ(Proxy::routingKey(a), Proxy::routingKey(b));
}

TEST(RoutingKey, EachCellAxisParticipates)
{
    const auto base = parseRequest(
        "GET /run?workload=core%2Fmatmul&schemes=NP HTTP/1.1\r\n\r\n");
    const auto schemes = parseRequest(
        "GET /run?workload=core%2Fmatmul&schemes=BP HTTP/1.1\r\n\r\n");
    const auto platforms = parseRequest(
        "GET /run?workload=core%2Fmatmul&schemes=NP&platforms=base"
        " HTTP/1.1\r\n\r\n");
    EXPECT_NE(Proxy::routingKey(base), Proxy::routingKey(schemes));
    EXPECT_NE(Proxy::routingKey(base), Proxy::routingKey(platforms));
}

// ---------------------------------------------------------------------
// Proxy against in-process backends
// ---------------------------------------------------------------------

/** N in-process serve::Servers named w0..wN-1 behind a
 *  StaticDirectory, each counting how many cells it ran. */
struct MiniFleet
{
    explicit MiniFleet(int n, const std::string &tag)
    {
        for (int i = 0; i < n; ++i)
            runs.emplace_back(
                std::make_unique<std::atomic<u64>>(0));
        for (int i = 0; i < n; ++i) {
            serve::ServerOptions opts;
            opts.listen.unixPath =
                testSocketPath(tag + "-w" + std::to_string(i));
            servers.emplace_back(
                std::make_unique<serve::Server>(opts));
            auto *counter = runs[static_cast<std::size_t>(i)].get();
            servers.back()->setCellRunnerForTest(
                [counter](const serve::CellKey &cell) {
                    counter->fetch_add(1);
                    return syntheticOutcome(cell);
                });
            servers.back()->start();
            dir.add("w" + std::to_string(i),
                    {opts.listen.unixPath, "127.0.0.1", 0});
        }
    }

    ~MiniFleet()
    {
        for (auto &s : servers)
            s->shutdown();
    }

    std::vector<std::unique_ptr<serve::Server>> servers;
    std::vector<std::unique_ptr<std::atomic<u64>>> runs;
    StaticDirectory dir;
};

const char *const kTarget = "/run?workload=core%2Fmatmul&schemes=NP";

/** Index of the worker owning kTarget under the proxy's ring. */
std::size_t
ownerIndex(int n, u32 vnodes = 64)
{
    HashRing ring(vnodes);
    for (int i = 0; i < n; ++i)
        ring.add("w" + std::to_string(i));
    const auto req =
        parseRequest(std::string("GET ") + kTarget + " HTTP/1.1\r\n\r\n");
    const std::string owner = ring.owner(Proxy::routingKey(req));
    return static_cast<std::size_t>(owner[1] - '0');
}

TEST(ProxyTest, RoutesRepeatedKeysToTheOwner)
{
    MiniFleet mini(3, "route");
    ProxyOptions popts;
    popts.listen.unixPath = testSocketPath("route-proxy");
    Proxy proxy(popts, &mini.dir);
    proxy.start();
    const serve::SocketAddress addr{popts.listen.unixPath,
                                    "127.0.0.1", 0};

    for (int i = 0; i < 5; ++i) {
        serve::HttpResponse resp;
        std::string error;
        ASSERT_TRUE(serve::httpGet(addr, kTarget, &resp, &error))
            << error;
        ASSERT_EQ(resp.status, 200) << resp.body;
        EXPECT_NE(resp.body.find("mgx-resultset-v1"),
                  std::string::npos);
    }

    // Every request landed on the ring owner; nobody else ran cells.
    const std::size_t owner = ownerIndex(3);
    for (std::size_t i = 0; i < mini.runs.size(); ++i) {
        if (i == owner)
            EXPECT_GT(mini.runs[i]->load(), 0u);
        else
            EXPECT_EQ(mini.runs[i]->load(), 0u) << "w" << i;
    }
    EXPECT_EQ(proxy.metrics().routed.load(), 5u);
    EXPECT_EQ(proxy.metrics().failovers.load(), 0u);
    proxy.shutdown();
}

TEST(ProxyTest, FailsOverToTheNextRingNodeWhenTheOwnerIsDead)
{
    MiniFleet mini(3, "failover");
    const std::size_t owner = ownerIndex(3);
    mini.servers[owner]->shutdown(); // connect refused from now on

    ProxyOptions popts;
    popts.listen.unixPath = testSocketPath("failover-proxy");
    popts.failoverPauseMs = 10;
    Proxy proxy(popts, &mini.dir);
    proxy.start();
    const serve::SocketAddress addr{popts.listen.unixPath,
                                    "127.0.0.1", 0};

    serve::HttpResponse resp;
    std::string error;
    ASSERT_TRUE(serve::httpGet(addr, kTarget, &resp, &error)) << error;
    ASSERT_EQ(resp.status, 200) << resp.body;

    // The next distinct node in ring order picked the request up —
    // not an arbitrary survivor.
    HashRing ring(popts.ringVnodes);
    for (int i = 0; i < 3; ++i)
        ring.add("w" + std::to_string(i));
    const auto req = parseRequest(std::string("GET ") + kTarget +
                                  " HTTP/1.1\r\n\r\n");
    const auto order = ring.route(Proxy::routingKey(req));
    const std::size_t second =
        static_cast<std::size_t>(order[1][1] - '0');
    EXPECT_EQ(mini.runs[owner]->load(), 0u);
    EXPECT_GT(mini.runs[second]->load(), 0u);
    EXPECT_GE(proxy.metrics().failovers.load(), 1u);
    EXPECT_GE(proxy.metrics().backendErrors.load(), 1u);
    proxy.shutdown();
}

TEST(ProxyTest, OutOfRotationOwnerIsSkippedWithoutAFailover)
{
    MiniFleet mini(3, "rotation");
    const std::size_t owner = ownerIndex(3);
    mini.dir.setInRotation("w" + std::to_string(owner), false);

    ProxyOptions popts;
    popts.listen.unixPath = testSocketPath("rotation-proxy");
    Proxy proxy(popts, &mini.dir);
    proxy.start();
    const serve::SocketAddress addr{popts.listen.unixPath,
                                    "127.0.0.1", 0};

    serve::HttpResponse resp;
    std::string error;
    ASSERT_TRUE(serve::httpGet(addr, kTarget, &resp, &error)) << error;
    ASSERT_EQ(resp.status, 200) << resp.body;

    // The owner was demoted to last resort, so the first attempt went
    // to an in-rotation worker and succeeded: no failover happened
    // and the demoted owner never ran a cell.
    EXPECT_EQ(mini.runs[owner]->load(), 0u);
    EXPECT_EQ(proxy.metrics().failovers.load(), 0u);
    proxy.shutdown();
}

TEST(ProxyTest, CacheDegradedOwnerIsDemotedBelowHealthyPeers)
{
    MiniFleet mini(3, "degraded");
    const std::size_t owner = ownerIndex(3);
    // The owner's trace cache went degraded: it still answers
    // correctly, but it re-generates traces, so routing should
    // prefer any healthy peer over it.
    mini.dir.setCacheDegraded("w" + std::to_string(owner), true);

    ProxyOptions popts;
    popts.listen.unixPath = testSocketPath("degraded-proxy");
    Proxy proxy(popts, &mini.dir);
    proxy.start();
    const serve::SocketAddress addr{popts.listen.unixPath,
                                    "127.0.0.1", 0};

    serve::HttpResponse resp;
    std::string error;
    ASSERT_TRUE(serve::httpGet(addr, kTarget, &resp, &error)) << error;
    ASSERT_EQ(resp.status, 200) << resp.body;

    // Demoted, not skipped-and-failed-over: the first attempt went
    // straight to a healthy peer.
    EXPECT_EQ(mini.runs[owner]->load(), 0u);
    EXPECT_EQ(proxy.metrics().failovers.load(), 0u);

    // The degraded worker outranks out-of-rotation ones: with every
    // peer out of rotation it is the first (and successful) attempt.
    for (std::size_t i = 0; i < mini.runs.size(); ++i)
        if (i != owner)
            mini.dir.setInRotation("w" + std::to_string(i), false);
    const u64 failovers_before = proxy.metrics().failovers.load();
    ASSERT_TRUE(serve::httpGet(addr, kTarget, &resp, &error)) << error;
    ASSERT_EQ(resp.status, 200) << resp.body;
    EXPECT_GT(mini.runs[owner]->load(), 0u);
    EXPECT_EQ(proxy.metrics().failovers.load(), failovers_before);

    // Degradation is visible in the aggregated fleet stats.
    serve::HttpResponse stats;
    ASSERT_TRUE(serve::httpGet(addr, "/stats", &stats, &error))
        << error;
    EXPECT_NE(stats.body.find("\"cacheDegraded\": true"),
              std::string::npos);
    proxy.shutdown();
}

TEST(ProxyTest, StatsAggregateProxyCountersAndWorkerDocuments)
{
    MiniFleet mini(2, "stats");
    ProxyOptions popts;
    popts.listen.unixPath = testSocketPath("stats-proxy");
    Proxy proxy(popts, &mini.dir);
    proxy.start();
    const serve::SocketAddress addr{popts.listen.unixPath,
                                    "127.0.0.1", 0};

    serve::HttpResponse run, stats, health;
    std::string error;
    ASSERT_TRUE(serve::httpGet(addr, kTarget, &run, &error)) << error;
    ASSERT_EQ(run.status, 200);
    ASSERT_TRUE(serve::httpGet(addr, "/stats", &stats, &error))
        << error;
    ASSERT_EQ(stats.status, 200);

    // The fleet document embeds supervision state and each worker's
    // own live /stats body.
    EXPECT_NE(stats.body.find("\"schema\": \"mgx-fleetstats-v1\""),
              std::string::npos);
    EXPECT_NE(stats.body.find("\"routed\": 1"), std::string::npos);
    EXPECT_NE(stats.body.find("\"workers\""), std::string::npos);
    EXPECT_NE(stats.body.find("\"w0\""), std::string::npos);
    EXPECT_NE(stats.body.find("\"w1\""), std::string::npos);
    EXPECT_NE(stats.body.find("\"workerStats\""), std::string::npos);
    EXPECT_NE(stats.body.find("mgx-servestats-v1"),
              std::string::npos);

    ASSERT_TRUE(serve::httpGet(addr, "/healthz", &health, &error))
        << error;
    EXPECT_EQ(health.status, 200);
    EXPECT_NE(health.body.find("\"ok\": true"), std::string::npos);
    EXPECT_NE(health.body.find("\"workers\": 2"), std::string::npos);

    mini.dir.setInRotation("w0", false);
    mini.dir.setInRotation("w1", false);
    ASSERT_TRUE(serve::httpGet(addr, "/healthz", &health, &error))
        << error;
    EXPECT_NE(health.body.find("\"ok\": false"), std::string::npos);
    proxy.shutdown();
}

TEST(ProxyTest, KeepAliveClientsReuseTheFrontDoorConnection)
{
    MiniFleet mini(1, "keepalive");
    ProxyOptions popts;
    popts.listen.unixPath = testSocketPath("keepalive-proxy");
    Proxy proxy(popts, &mini.dir);
    proxy.start();
    const serve::SocketAddress addr{popts.listen.unixPath,
                                    "127.0.0.1", 0};

    serve::ClientConnection conn(addr);
    serve::HttpResponse resp;
    std::string error;
    ASSERT_TRUE(conn.get("/healthz", &resp, &error)) << error;
    EXPECT_FALSE(conn.lastReused());
    ASSERT_TRUE(conn.get("/healthz", &resp, &error)) << error;
    EXPECT_TRUE(conn.lastReused());
    EXPECT_GE(proxy.metrics().keepAliveReused.load(), 1u);
    proxy.shutdown();
}

// ---------------------------------------------------------------------
// Supervisor (injected spawner; no real mgx_serve needed)
// ---------------------------------------------------------------------

/** Fork a child that just sleeps; async-signal-safe child path. */
pid_t
spawnSleeper(int, const std::string &)
{
    const pid_t pid = ::fork();
    if (pid == 0) {
        ::execl("/bin/sleep", "sleep", "30",
                static_cast<char *>(nullptr));
        ::_exit(127);
    }
    return pid;
}

/** Fork a child that dies instantly — a crash-looping worker. */
pid_t
spawnCrasher(int, const std::string &)
{
    const pid_t pid = ::fork();
    if (pid == 0)
        ::_exit(1);
    return pid;
}

TEST(SupervisorTest, RestartsAKilledWorkerWithANewPid)
{
    TempDir socks("restart");
    SupervisorOptions opts;
    opts.workers = 1;
    opts.socketDir = socks.path.string();
    opts.probeIntervalMs = 1000000; // probes irrelevant here
    opts.restartBackoffMs = 10;
    Supervisor sup(opts);
    sup.setSpawnFnForTest(spawnSleeper);
    sup.start();

    ASSERT_TRUE(eventually([&] { return sup.status()[0].pid > 0; }));
    const pid_t first = sup.status()[0].pid;
    ASSERT_EQ(::kill(first, SIGKILL), 0);

    EXPECT_TRUE(eventually([&] {
        const auto st = sup.status()[0];
        return st.restarts >= 1 && st.pid > 0 && st.pid != first;
    }));
    EXPECT_GE(sup.restartCount(), 1u);
    sup.shutdown(100);
}

TEST(SupervisorTest, FlapBreakerParksACrashLoopingWorker)
{
    TempDir socks("flap");
    SupervisorOptions opts;
    opts.workers = 1;
    opts.socketDir = socks.path.string();
    opts.probeIntervalMs = 1000000;
    opts.restartBackoffMs = 1;
    opts.restartBackoffMaxMs = 5;
    opts.flapWindowMs = 60000; // instant deaths are always "rapid"
    opts.flapThreshold = 3;
    opts.coolOffMs = 3600 * 1000; // parked for the whole test
    Supervisor sup(opts);
    sup.setSpawnFnForTest(spawnCrasher);
    sup.start();

    EXPECT_TRUE(eventually([&] {
        return sup.status()[0].state == WorkerState::Broken;
    }));
    const auto st = sup.status()[0];
    EXPECT_GE(st.rapidDeaths, 3u);
    EXPECT_FALSE(sup.inRotation("w0"));
    // Parked means parked: the respawn counter stops climbing.
    const u64 restarts = sup.restartCount();
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    EXPECT_EQ(sup.restartCount(), restarts);
    sup.shutdown(100);
}

// ---------------------------------------------------------------------
// Integration: real workers, real SIGKILLs, byte-identical answers
// ---------------------------------------------------------------------

TEST(FleetIntegration, SigkillingOwnersNeverFailsOrDriftsARequest)
{
    const std::string binary = locateServeBinary();
    if (binary.empty())
        GTEST_SKIP() << "mgx_serve binary not found near test";

    TempDir socks("integ");
    FleetOptions opts;
    opts.supervisor.workers = 3;
    opts.supervisor.socketDir = socks.path.string();
    opts.supervisor.serveBinary = binary;
    opts.supervisor.probeIntervalMs = 50;
    opts.supervisor.restartBackoffMs = 50;
    // No shared trace cache here on purpose: every run regenerates
    // its trace, so any worker's answer is bitwise-reproducible
    // against the local reference (a deserialized cached trace may
    // legitimately differ in traceBytes; the chaos bench covers the
    // shared-cache configuration).
    opts.proxy.listen.unixPath = testSocketPath("integ-proxy");
    opts.proxy.failoverPauseMs = 50;
    Fleet fleet(opts);
    fleet.start();
    const serve::SocketAddress addr{opts.proxy.listen.unixPath,
                                    "127.0.0.1", 0};

    // The reference: exactly what mgx_run --no-pipeline --json emits
    // for this grid.
    const std::string reference =
        sim::toJson(sim::Experiment()
                        .workload("core/matmul")
                        .schemes({protection::Scheme::NP,
                                  protection::Scheme::BP})
                        .threads(1)
                        .pipelined(false)
                        .run());
    const std::string target =
        "/run?workload=core%2Fmatmul&schemes=NP,BP";

    // Sanity: a calm fleet answers byte-identically.
    {
        serve::HttpResponse resp;
        std::string error;
        ASSERT_TRUE(
            serve::httpGet(addr, target, &resp, &error, 30000))
            << error;
        ASSERT_EQ(resp.status, 200) << resp.body;
        ASSERT_EQ(resp.body, reference);
    }

    // Sustained load while a killer SIGKILLs the current owner of
    // the in-flight cell. The proxy must absorb every crash: zero
    // failed requests, zero drifted bodies.
    const std::size_t owner = ownerIndex(3);
    const std::string owner_name = "w" + std::to_string(owner);
    std::atomic<bool> stop{false};
    std::atomic<int> kills{0};
    std::thread killer([&] {
        while (!stop.load(std::memory_order_acquire)) {
            for (const auto &st : fleet.supervisor().status()) {
                if (st.name == owner_name && st.pid > 0 &&
                    ::kill(st.pid, SIGKILL) == 0)
                    kills.fetch_add(1);
            }
            std::this_thread::sleep_for(
                std::chrono::milliseconds(300));
        }
    });

    std::atomic<int> ok{0}, failed{0}, drifted{0};
    std::vector<std::thread> clients;
    for (int c = 0; c < 2; ++c) {
        clients.emplace_back([&] {
            const auto deadline = std::chrono::steady_clock::now() +
                                  std::chrono::seconds(2);
            serve::RetryOptions ropts;
            ropts.retries = 3;
            ropts.backoffMs = 50;
            while (std::chrono::steady_clock::now() < deadline) {
                serve::HttpResponse resp;
                std::string error;
                if (serve::httpGetRetry(addr, target, &resp, &error,
                                        30000, ropts) &&
                    resp.status == 200) {
                    ok.fetch_add(1);
                    if (resp.body != reference)
                        drifted.fetch_add(1);
                } else {
                    failed.fetch_add(1);
                }
            }
        });
    }
    for (auto &t : clients)
        t.join();
    stop.store(true, std::memory_order_release);
    killer.join();

    EXPECT_GT(ok.load(), 0);
    EXPECT_GE(kills.load(), 1);
    EXPECT_EQ(failed.load(), 0);
    EXPECT_EQ(drifted.load(), 0);
    EXPECT_GE(fleet.supervisor().restartCount(), 1u);

    // Shutdown leaves nothing behind: no live workers, no sockets.
    std::vector<pid_t> pids;
    for (const auto &st : fleet.supervisor().status())
        if (st.pid > 0)
            pids.push_back(st.pid);
    fleet.shutdown();
    for (const pid_t pid : pids)
        EXPECT_NE(::kill(pid, 0), 0) << "worker " << pid
                                     << " survived shutdown";
    for (const auto &entry : fs::directory_iterator(socks.path))
        EXPECT_NE(entry.path().extension(), ".sock")
            << entry.path();
}

} // namespace
} // namespace mgx::fleet
